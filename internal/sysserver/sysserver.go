// Package sysserver implements the SYSCALL server of §3.1: the dedicated
// process through which applications issue blocking/control-plane socket
// calls. Data transfer bypasses it entirely (the mostly system-call-less
// socket design of §3.2), so under load the SYSCALL core becomes
// increasingly idle — which is why §6.4 colocates it with the NIC driver
// on one hyperthreaded core.
//
// Responsibilities:
//
//   - listen(): fan the subsocket creation out to every replica (§3.3) and
//     acknowledge the application once all replicas answered;
//   - connect(): forward the new connection to the replica the manager's
//     flow placement policy picks — uniformly random under the default
//     hash policy (load balancing and the address-space re-randomization
//     of §3.8), load-aware under the least-loaded policy;
//   - UDP bind: forward to a selected replica.
package sysserver

import (
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/stack"
)

// Manager is the control-plane view the SYSCALL server needs; the NEaT
// core system implements it.
type Manager interface {
	// ConnectTarget returns the socket process of the replica that should
	// own a new outbound connection.
	ConnectTarget() *sim.Proc
	// ListenTargets returns the socket processes of all replicas that must
	// hold a subsocket of each listening socket.
	ListenTargets() []*sim.Proc
	// UDPTarget returns the entry process that should own a UDP binding.
	UDPTarget() *sim.Proc
	// RegisterListen records a listen for replay to future replicas
	// (scale-up and recovery); UnregisterListen removes it when the
	// application closes the listening socket.
	RegisterListen(op stack.OpListen)
	UnregisterListen(reqID uint64)
}

// Stats counts SYSCALL server activity.
type Stats struct {
	Listens  uint64
	Connects uint64
	UDPBinds uint64
}

// Server is the SYSCALL server process.
type Server struct {
	proc    *sim.Proc
	mgr     Manager
	ipcCost ipc.Costs
	conns   map[*sim.Proc]*ipc.Conn

	pending map[uint64]*pendingListen
	stats   Stats
}

type pendingListen struct {
	app  *sim.Proc
	want int
	got  int
	err  error
}

// OpCycles is the per-call cost of the SYSCALL server.
const OpCycles = 1500

// New creates the SYSCALL server on thread th.
func New(th *sim.HWThread, mgr Manager, ipcCost ipc.Costs) *Server {
	s := &Server{mgr: mgr, ipcCost: ipcCost,
		conns: map[*sim.Proc]*ipc.Conn{}, pending: map[uint64]*pendingListen{}}
	s.proc = sim.NewProc(th, "syscall", s, sim.ProcConfig{
		Component: "syscall", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 80,
	})
	return s
}

// Proc returns the server process (the target applications call into).
func (s *Server) Proc() *sim.Proc { return s.proc }

// Restart revives a dead SYSCALL server process in place. The endpoint is
// stable (applications keep their reference; the reincarnation-server
// contract for system services), but all per-incarnation state is gone:
// shared-memory channels are re-established lazily on the next send, and
// in-flight operations that were awaiting replica acks are lost — their
// callers observe a timeout and retry, as against a rebooted kernel. The
// listen table itself lives in the management plane and survives.
func (s *Server) Restart() {
	s.proc.Respawn()
	s.conns = map[*sim.Proc]*ipc.Conn{}
	s.pending = map[uint64]*pendingListen{}
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats { return s.stats }

func (s *Server) send(ctx *sim.Context, to *sim.Proc, msg sim.Message) {
	c, ok := s.conns[to]
	if !ok {
		c = ipc.New(to, s.ipcCost)
		s.conns[to] = c
	}
	c.Send(ctx, msg)
}

// HandleMessage implements sim.Handler.
func (s *Server) HandleMessage(ctx *sim.Context, msg sim.Message) {
	switch m := msg.(type) {
	case stack.OpListen:
		ctx.Charge(OpCycles)
		s.stats.Listens++
		s.mgr.RegisterListen(m)
		targets := s.mgr.ListenTargets()
		if len(targets) == 0 {
			s.send(ctx, m.App, stack.EvListening{ReqID: m.ReqID, Err: stack.ErrNoReplicas})
			return
		}
		s.pending[m.ReqID] = &pendingListen{app: m.App, want: len(targets)}
		fanned := m
		fanned.ReplyTo = s.proc
		for _, t := range targets {
			s.send(ctx, t, fanned)
		}
	case stack.EvListening:
		ctx.Charge(OpCycles / 4)
		p, ok := s.pending[m.ReqID]
		if !ok {
			return // replayed listen after recovery: already acknowledged
		}
		p.got++
		if m.Err != nil && p.err == nil {
			p.err = m.Err
		}
		if p.got >= p.want {
			delete(s.pending, m.ReqID)
			s.send(ctx, p.app, stack.EvListening{ReqID: m.ReqID, Err: p.err})
		}
	case stack.OpCloseListener:
		ctx.Charge(OpCycles)
		s.mgr.UnregisterListen(m.ReqID)
		for _, t := range s.mgr.ListenTargets() {
			s.send(ctx, t, m)
		}
	case stack.OpConnect:
		ctx.Charge(OpCycles)
		s.stats.Connects++
		t := s.mgr.ConnectTarget()
		if t == nil {
			s.send(ctx, m.App, stack.EvConnected{ReqID: m.ReqID, Err: stack.ErrNoReplicas})
			return
		}
		s.send(ctx, t, m)
	case stack.OpUDPBind:
		ctx.Charge(OpCycles)
		s.stats.UDPBinds++
		t := s.mgr.UDPTarget()
		if t == nil {
			s.send(ctx, m.App, stack.EvUDPBound{ReqID: m.ReqID, Err: stack.ErrNoReplicas})
			return
		}
		s.send(ctx, t, m)
	}
}
