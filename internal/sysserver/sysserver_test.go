package sysserver

import (
	"testing"

	"neat/internal/ipc"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
)

// fakeMgr is a scripted Manager.
type fakeMgr struct {
	connectTargets []*sim.Proc
	listenTargets  []*sim.Proc
	udpTarget      *sim.Proc
	registered     []stack.OpListen
	next           int
}

func (m *fakeMgr) ConnectTarget() *sim.Proc {
	if len(m.connectTargets) == 0 {
		return nil
	}
	t := m.connectTargets[m.next%len(m.connectTargets)]
	m.next++
	return t
}
func (m *fakeMgr) ListenTargets() []*sim.Proc       { return m.listenTargets }
func (m *fakeMgr) UDPTarget() *sim.Proc             { return m.udpTarget }
func (m *fakeMgr) RegisterListen(op stack.OpListen) { m.registered = append(m.registered, op) }
func (m *fakeMgr) UnregisterListen(reqID uint64) {
	for i, op := range m.registered {
		if op.ReqID == reqID {
			m.registered = append(m.registered[:i], m.registered[i+1:]...)
			return
		}
	}
}

// recorder collects delivered messages.
type recorder struct {
	proc *sim.Proc
	got  []sim.Message
}

func newRecorder(th *sim.HWThread, name string) *recorder {
	r := &recorder{}
	r.proc = sim.NewProc(th, name, sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		r.got = append(r.got, msg)
	}), sim.ProcConfig{})
	return r
}

func setup(t *testing.T, replicas int) (*sim.Simulator, *Server, *fakeMgr, []*recorder, *recorder) {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 3+replicas, 1, 1_000_000_000)
	mgr := &fakeMgr{}
	var reps []*recorder
	for i := 0; i < replicas; i++ {
		r := newRecorder(m.Thread(2+i, 0), "replica")
		reps = append(reps, r)
		mgr.listenTargets = append(mgr.listenTargets, r.proc)
		mgr.connectTargets = append(mgr.connectTargets, r.proc)
	}
	if replicas > 0 {
		mgr.udpTarget = reps[0].proc
	}
	srv := New(m.Thread(0, 0), mgr, ipc.DefaultCosts())
	app := newRecorder(m.Thread(1, 0), "app")
	return s, srv, mgr, reps, app
}

func TestListenFanOutAndAggregation(t *testing.T) {
	s, srv, mgr, reps, app := setup(t, 3)
	srv.Proc().Deliver(stack.OpListen{App: app.proc, ReqID: 11, Port: 80, Backlog: 8})
	s.RunFor(sim.Millisecond)

	// Fanned out to every replica, with ReplyTo pointing at the server.
	for i, r := range reps {
		if len(r.got) != 1 {
			t.Fatalf("replica %d got %d ops", i, len(r.got))
		}
		op := r.got[0].(stack.OpListen)
		if op.ReplyTo != srv.Proc() || op.App != app.proc || op.ReqID != 11 {
			t.Fatalf("fanned op: %+v", op)
		}
	}
	if len(mgr.registered) != 1 {
		t.Fatal("listen not registered for replay")
	}
	// No ack to the app until all replicas answered.
	if len(app.got) != 0 {
		t.Fatalf("premature ack: %v", app.got)
	}
	srv.Proc().Deliver(stack.EvListening{ReqID: 11, Stack: reps[0].proc})
	srv.Proc().Deliver(stack.EvListening{ReqID: 11, Stack: reps[1].proc})
	s.RunFor(sim.Millisecond)
	if len(app.got) != 0 {
		t.Fatal("acked before last replica")
	}
	srv.Proc().Deliver(stack.EvListening{ReqID: 11, Stack: reps[2].proc})
	s.RunFor(sim.Millisecond)
	if len(app.got) != 1 {
		t.Fatalf("app acks: %v", app.got)
	}
	if ev := app.got[0].(stack.EvListening); ev.ReqID != 11 || ev.Err != nil {
		t.Fatalf("ack: %+v", ev)
	}
	if srv.Stats().Listens != 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}

func TestListenErrorPropagates(t *testing.T) {
	s, srv, _, reps, app := setup(t, 2)
	srv.Proc().Deliver(stack.OpListen{App: app.proc, ReqID: 5, Port: 80})
	s.RunFor(sim.Millisecond)
	srv.Proc().Deliver(stack.EvListening{ReqID: 5, Stack: reps[0].proc, Err: stack.ErrNoReplicas})
	srv.Proc().Deliver(stack.EvListening{ReqID: 5, Stack: reps[1].proc})
	s.RunFor(sim.Millisecond)
	if len(app.got) != 1 {
		t.Fatal("no ack")
	}
	if ev := app.got[0].(stack.EvListening); ev.Err == nil {
		t.Fatal("error swallowed")
	}
}

func TestStrayListenAckIgnored(t *testing.T) {
	s, srv, _, reps, _ := setup(t, 1)
	// A replayed listen (after recovery) acks a request the server already
	// resolved; it must be dropped silently.
	srv.Proc().Deliver(stack.EvListening{ReqID: 999, Stack: reps[0].proc})
	s.RunFor(sim.Millisecond)
}

func TestConnectRoutesToReplica(t *testing.T) {
	s, srv, _, reps, app := setup(t, 2)
	srv.Proc().Deliver(stack.OpConnect{App: app.proc, ReqID: 1, Addr: proto.IPv4(10, 0, 0, 9), Port: 80})
	srv.Proc().Deliver(stack.OpConnect{App: app.proc, ReqID: 2, Addr: proto.IPv4(10, 0, 0, 9), Port: 80})
	s.RunFor(sim.Millisecond)
	total := len(reps[0].got) + len(reps[1].got)
	if total != 2 {
		t.Fatalf("forwarded %d connects", total)
	}
	if srv.Stats().Connects != 2 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}

func TestNoReplicasErrors(t *testing.T) {
	s, srv, _, _, app := setup(t, 0)
	srv.Proc().Deliver(stack.OpConnect{App: app.proc, ReqID: 3, Port: 80})
	srv.Proc().Deliver(stack.OpListen{App: app.proc, ReqID: 4, Port: 81})
	srv.Proc().Deliver(stack.OpUDPBind{App: app.proc, ReqID: 5, Port: 53})
	s.RunFor(sim.Millisecond)
	if len(app.got) != 3 {
		t.Fatalf("acks: %v", app.got)
	}
	if ev := app.got[0].(stack.EvConnected); ev.Err != stack.ErrNoReplicas {
		t.Fatalf("connect err: %+v", ev)
	}
	if ev := app.got[1].(stack.EvListening); ev.Err != stack.ErrNoReplicas {
		t.Fatalf("listen err: %+v", ev)
	}
	if ev := app.got[2].(stack.EvUDPBound); ev.Err != stack.ErrNoReplicas {
		t.Fatalf("udp err: %+v", ev)
	}
}

func TestCloseListenerFansOutAndUnregisters(t *testing.T) {
	s, srv, mgr, reps, app := setup(t, 2)
	srv.Proc().Deliver(stack.OpListen{App: app.proc, ReqID: 77, Port: 80})
	s.RunFor(sim.Millisecond)
	if len(mgr.registered) != 1 {
		t.Fatal("not registered")
	}
	srv.Proc().Deliver(stack.OpCloseListener{App: app.proc, ReqID: 77})
	s.RunFor(sim.Millisecond)
	if len(mgr.registered) != 0 {
		t.Fatal("close did not unregister the listen")
	}
	for i, r := range reps {
		if len(r.got) != 2 {
			t.Fatalf("replica %d got %d ops (want listen+close)", i, len(r.got))
		}
		if _, ok := r.got[1].(stack.OpCloseListener); !ok {
			t.Fatalf("replica %d second op: %T", i, r.got[1])
		}
	}
}

func TestUDPBindForwarded(t *testing.T) {
	s, srv, _, reps, app := setup(t, 1)
	srv.Proc().Deliver(stack.OpUDPBind{App: app.proc, ReqID: 9, Port: 53})
	s.RunFor(sim.Millisecond)
	if len(reps[0].got) != 1 {
		t.Fatalf("udp bind not forwarded: %v", reps[0].got)
	}
	if srv.Stats().UDPBinds != 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}
