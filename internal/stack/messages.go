// Package stack assembles the protocol engines (pfilter, ipeng, tcpeng,
// udpeng) into network stack replicas: isolated, single-threaded processes
// wired together and to the NIC driver by message-passing channels.
//
// Two replica layouts exist, mirroring §3.7 of the paper:
//
//   - single-component: the whole stack runs in one process per replica
//     ("NEaT Nx" configurations);
//   - multi-component: packet filter + IP (+UDP) run in one process and TCP
//     in another, connected by IPC ("Multi Nx" configurations), trading
//     extra cores and messaging for finer fault isolation.
//
// The package also defines the socket wire protocol spoken between
// applications (via socketlib), the SYSCALL server and replicas. The fast
// path — data transfer on established connections — goes app↔replica
// directly; only control-plane calls traverse the SYSCALL server (§3.2).
package stack

import (
	"sync"

	"neat/internal/bufpool"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/tcpeng"
)

// ---- Intra-stack messages (between components of one replica) ----
//
// Inbound TCP frames cross the IP→TCP boundary of a multi-component
// replica as bare *proto.Frame messages — the frame is already a pooled
// reference-counted box, so wrapping it would only add a per-segment
// allocation.

// ipOutput carries a headroom TX frame — the transport segment marshalled
// at proto.TxHeadroom — from the TCP process to the IP process, which fills
// the L2/L3 headers in place and transmits without copying the segment.
// Boxes are pooled (sync.Pool: parallel sweeps run many simulators); the IP
// handler returns each box after consuming it.
type ipOutput struct {
	dst   proto.Addr
	proto proto.IPProto
	frame []byte
}

// ipOutputTSO carries a TSO super-segment towards the IP process. Pooled
// like ipOutput.
type ipOutputTSO struct {
	dst     proto.Addr
	hdr     proto.TCPHeader
	payload []byte
	mss     int
}

var (
	ipOutputPool    = sync.Pool{New: func() any { return new(ipOutput) }}
	ipOutputTSOPool = sync.Pool{New: func() any { return new(ipOutputTSO) }}
)

func newIPOutput(dst proto.Addr, p proto.IPProto, frame []byte) *ipOutput {
	m := ipOutputPool.Get().(*ipOutput)
	m.dst, m.proto, m.frame = dst, p, frame
	return m
}

func newIPOutputTSO(dst proto.Addr, hdr proto.TCPHeader, payload []byte, mss int) *ipOutputTSO {
	m := ipOutputTSOPool.Get().(*ipOutputTSO)
	m.dst, m.hdr, m.payload, m.mss = dst, hdr, payload, mss
	return m
}

// tickMsg runs a deferred closure on the owning process (ARP retries,
// reassembly expiry).
type tickMsg struct{ fn func() }

// ---- Application-facing socket protocol ----
//
// Handles: the application names its own sockets with ReqIDs; the stack
// names live connections with ConnIDs (unique per replica process). The
// pair (replica process, ConnID) is the canonical socket handle after
// establishment.

// OpListen asks a replica to create a listening subsocket (§3.3). The
// SYSCALL server fans one OpListen out to every replica.
type OpListen struct {
	App     *sim.Proc
	ReqID   uint64
	Port    uint16
	Backlog int
	// ReplyTo, when set, receives the EvListening acknowledgment instead
	// of App (the SYSCALL server aggregates the acks of all replicas).
	ReplyTo *sim.Proc
}

// OpCloseListener closes a listening socket: the SYSCALL server fans it
// out to every replica holding a subsocket and unregisters the listen.
type OpCloseListener struct {
	App   *sim.Proc
	ReqID uint64 // the original OpListen request
}

// OpConnect asks a replica to open an active connection. LocalPort, when
// nonzero, fixes the local port instead of drawing from the replica's
// ephemeral partition — the caller then controls the 4-tuple (and so the
// flow hash the peer's RSS sees).
type OpConnect struct {
	App       *sim.Proc
	ReqID     uint64
	Addr      proto.Addr
	Port      uint16
	LocalPort uint16
}

// OpSend appends data to a connection's send stream. WantSpace asks the
// stack to reply with EvSendSpace once send-buffer space is available (the
// library sets it when its send credit runs low).
//
// When Data is carved from a payload slab, Ref carries the reference; the
// stack Releases it after copying Data into the engine's send buffer. The
// zero Ref (plain Data ownership) stays valid: Release is then a no-op.
type OpSend struct {
	ConnID    uint64
	Data      []byte
	Ref       bufpool.Ref
	WantSpace bool
}

// opSendPool recycles *OpSend boxes so the per-send fast path (socketlib →
// replica) allocates nothing in steady state. The value form of OpSend
// remains a valid message for callers that don't pool.
var opSendPool = sync.Pool{New: func() any { return new(OpSend) }}

// NewOpSend returns a pooled OpSend box. Ownership transfers with the
// message; the consuming stack recycles the box (and releases Ref) after
// absorbing Data into the connection's send stream.
func NewOpSend(connID uint64, data []byte, ref bufpool.Ref, wantSpace bool) *OpSend {
	m := opSendPool.Get().(*OpSend)
	m.ConnID, m.Data, m.Ref, m.WantSpace = connID, data, ref, wantSpace
	return m
}

// Recycle returns the box to the pool. Callers must have consumed Data and
// released Ref; the box must not be touched afterwards.
func (m *OpSend) Recycle() {
	*m = OpSend{}
	opSendPool.Put(m)
}

// OpClose performs an orderly close of a connection.
type OpClose struct{ ConnID uint64 }

// OpAbort resets a connection.
type OpAbort struct{ ConnID uint64 }

// OpUDPBind binds a UDP port.
type OpUDPBind struct {
	App   *sim.Proc
	ReqID uint64
	Port  uint16 // 0 = ephemeral
}

// OpUDPSendTo transmits one datagram.
type OpUDPSendTo struct {
	UDPID uint64
	Addr  proto.Addr
	Port  uint16
	Data  []byte
}

// OpUDPClose releases a UDP binding.
type OpUDPClose struct{ UDPID uint64 }

// OpCheckpoint asks the TCP host to snapshot its state (checkpoint-based
// stateful recovery — the §2.1/§6.6 alternative to NEaT's stateless
// recovery). The snapshot is handed to the manager via the replica's
// OnCheckpoint hook.
type OpCheckpoint struct{}

// OpRestore loads a checkpoint into a freshly respawned TCP host.
type OpRestore struct{ Snap *tcpeng.Snapshot }

// EvRehomed tells an application that a connection now lives in a new
// stack process (its replica was restored from a checkpoint after a
// crash); the socket library re-keys the socket transparently.
type EvRehomed struct {
	OldStack *sim.Proc
	NewStack *sim.Proc
	ConnID   uint64
}

// EvListening acknowledges OpListen.
type EvListening struct {
	ReqID uint64
	Stack *sim.Proc // the replica process owning the subsocket
	Err   error
}

// EvAccepted announces a new established connection on a listening socket.
type EvAccepted struct {
	ListenerReqID uint64
	ConnID        uint64
	Stack         *sim.Proc
	RemoteAddr    proto.Addr
	RemotePort    uint16
	SendBuf       int // initial send credit
}

// EvConnected resolves OpConnect (Err set on failure).
type EvConnected struct {
	ReqID   uint64
	ConnID  uint64
	Stack   *sim.Proc
	SendBuf int
	Err     error
}

// EvData delivers received bytes (push-mode fast path). EOF marks the
// peer's FIN after all data.
type EvData struct {
	Stack  *sim.Proc
	ConnID uint64
	Data   []byte
	EOF    bool
}

// EvSendSpace advertises the absolute free send window for a connection.
type EvSendSpace struct {
	Stack     *sim.Proc
	ConnID    uint64
	Available int
}

// EvClosed reports a connection leaving service. Reset marks aborts
// (including RSTs from the peer).
type EvClosed struct {
	Stack  *sim.Proc
	ConnID uint64
	Reset  bool
	Err    error
}

// EvUDPBound acknowledges OpUDPBind.
type EvUDPBound struct {
	ReqID uint64
	UDPID uint64
	Port  uint16
	Stack *sim.Proc
	Err   error
}

// EvUDPData delivers one received datagram.
type EvUDPData struct {
	Stack   *sim.Proc
	UDPID   uint64
	Src     proto.Addr
	SrcPort uint16
	Data    []byte
}

// ErrNoReplicas is returned when no live replica can serve a request.
var ErrNoReplicas = errNoReplicas{}

type errNoReplicas struct{}

func (errNoReplicas) Error() string { return "stack: no live replicas" }

// ErrReplicaFailure is the error attached to EvClosed when a connection was
// lost because its replica crashed (stateless recovery, §3.6).
var ErrReplicaFailure = errReplicaFailure{}

type errReplicaFailure struct{}

func (errReplicaFailure) Error() string { return "stack: replica failed; connection state lost" }

// ErrReplicaRetired is the error attached to EvClosed when a connection
// was forcibly closed because its replica's scale-down drain outlived the
// configured drain deadline (graceful drain, §3.4 extension).
var ErrReplicaRetired = errReplicaRetired{}

type errReplicaRetired struct{}

func (errReplicaRetired) Error() string {
	return "stack: replica retired; drain deadline cut the connection short"
}
