package stack

import (
	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/nicdev"
	"neat/internal/pfilter"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/udpeng"
)

// ipHost hosts the packet filter, the IP engine and the UDP engine. In a
// single-component replica it shares the process with tcpHost; in a
// multi-component replica it is the "IP process" of Fig. 3.
type ipHost struct {
	r     *Replica
	proc  *sim.Proc
	costs Costs
	ctx   *sim.Context // current dispatch context

	filter *pfilter.Filter
	ip     *ipeng.Engine
	udp    *udpeng.Engine

	toTCP    func(ctx *sim.Context, f *proto.Frame)
	toDriver *ipc.Conn

	udpSocks map[uint64]*udpSockCtx
	nextUDP  uint64
	appConns map[*sim.Proc]*ipc.Conn
	ipcCosts ipc.Costs
}

// udpSockCtx binds a UDP socket to its owning application.
type udpSockCtx struct {
	app  *sim.Proc
	id   uint64
	sock *udpeng.Socket
}

// The host's dispatch context (h.ctx) is installed for the whole
// activation by the owning handler's BeginBatch, so engine callbacks can
// charge cycles and emit messages without a per-message context swap.

// inputFrame is the RX entry point of the replica.
func (h *ipHost) inputFrame(ctx *sim.Context, f *proto.Frame) {
	ctx.Charge(h.costs.FilterCheck)
	if h.filter.Check(f) == pfilter.Drop {
		f.Release()
		return
	}
	ctx.Charge(h.costs.IPIn)
	h.ip.Input(f)
}

// handleOp processes UDP socket operations.
func (h *ipHost) handleOp(ctx *sim.Context, msg sim.Message) bool {
	switch m := msg.(type) {
	case OpUDPBind:
		ctx.Charge(h.costs.SockOp)
		s, err := h.udp.Bind(m.Port)
		ev := EvUDPBound{ReqID: m.ReqID, Stack: h.proc, Err: err}
		if err == nil {
			h.nextUDP++
			sc := &udpSockCtx{app: m.App, id: h.nextUDP, sock: s}
			s.Ctx = sc
			h.udpSocks[sc.id] = sc
			ev.UDPID = sc.id
			ev.Port = s.Port()
		}
		h.sendApp(ctx, m.App, ev)
		return true
	case OpUDPSendTo:
		sc, ok := h.udpSocks[m.UDPID]
		if !ok {
			return true
		}
		ctx.Charge(h.costs.UDPOut)
		sc.sock.SendTo(m.Addr, m.Port, m.Data)
		return true
	case OpUDPClose:
		if sc, ok := h.udpSocks[m.UDPID]; ok {
			ctx.Charge(h.costs.SockOp)
			sc.sock.Close()
			delete(h.udpSocks, m.UDPID)
		}
		return true
	}
	return false
}

// sendApp posts an event to an application process.
func (h *ipHost) sendApp(ctx *sim.Context, app *sim.Proc, ev sim.Message) {
	ctx.Charge(h.costs.SockEvent)
	conn, ok := h.appConns[app]
	if !ok {
		conn = ipc.New(app, h.ipcCosts)
		h.appConns[app] = conn
	}
	conn.Send(ctx, ev)
}

// ---- ipeng.Env ----

// Now implements ipeng.Env.
func (h *ipHost) Now() sim.Time { return h.proc.Sim().Now() }

// TransmitFrame implements ipeng.Env.
func (h *ipHost) TransmitFrame(raw []byte) {
	h.ctx.Charge(h.costs.IPOut)
	h.toDriver.Send(h.ctx, nicdev.NewTxFrame(raw))
}

// TransmitTSO implements ipeng.Env.
func (h *ipHost) TransmitTSO(eth proto.EthernetHeader, ip proto.IPv4Header, tcp proto.TCPHeader, payload []byte, mss int) {
	h.ctx.Charge(h.costs.IPOut)
	h.toDriver.Send(h.ctx, nicdev.NewTxTSO(nicdev.TxTSO{Eth: eth, IP: ip, TCP: tcp, Payload: payload, MSS: mss}))
}

// DeliverTransport implements ipeng.Env. Frame ownership arrives with the
// call; every branch hands it on or releases it.
func (h *ipHost) DeliverTransport(f *proto.Frame) {
	switch {
	case f.TCP != nil:
		h.toTCP(h.ctx, f)
	case f.UDP != nil:
		h.ctx.Charge(h.costs.UDPIn)
		h.udp.Input(f)
		f.Release()
	default:
		// ICMP echo requests were answered inside the IP engine; anything
		// else has no consumer.
		f.Release()
	}
}

// After implements ipeng.Env.
func (h *ipHost) After(d sim.Time, fn func()) {
	h.ctx.TimerAfter(d, tickMsg{fn})
}

// ---- udpeng.Env ----

// Output implements udpeng.Env.
func (h *ipHost) Output(dst proto.Addr, transport []byte) {
	h.ip.Output(dst, proto.ProtoUDP, transport)
}

// Deliver implements udpeng.Env. data aliases the inbound frame, which is
// released when UDP input returns, so the event carries its own copy.
func (h *ipHost) Deliver(s *udpeng.Socket, src proto.Addr, srcPort uint16, data []byte) {
	sc, ok := s.Ctx.(*udpSockCtx)
	if !ok {
		return
	}
	data = append([]byte(nil), data...)
	h.sendApp(h.ctx, sc.app, EvUDPData{Stack: h.proc, UDPID: sc.id, Src: src, SrcPort: srcPort, Data: data})
}
