package stack

import (
	"bytes"
	"testing"

	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/nicdev"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/wire"
)

var (
	srvMAC = proto.MAC{2, 0, 0, 0, 0, 1}
	cliMAC = proto.MAC{2, 0, 0, 0, 0, 2}
	srvIP  = proto.IPv4(10, 0, 0, 1)
	cliIP  = proto.IPv4(10, 0, 0, 2)
	nmask  = proto.IPv4(255, 255, 255, 0)
)

// rig is a complete two-machine network: server replicas behind a
// multi-queue NIC, one client replica behind its own NIC, 10G link.
type rig struct {
	s        *sim.Simulator
	link     *wire.Link
	srvNIC   *nicdev.NIC
	srvDrv   *nicdev.Driver
	cliNIC   *nicdev.NIC
	cliDrv   *nicdev.Driver
	replicas []*Replica
	client   *Replica
}

func ipCfg(addr proto.Addr, mac proto.MAC, peerIP proto.Addr, peerMAC proto.MAC) Config {
	return Config{
		IP: ipeng.Config{
			Addr: addr, Mask: nmask, MAC: mac,
			StaticARP: map[proto.Addr]proto.MAC{peerIP: peerMAC},
		},
		IPC:   ipc.DefaultCosts(),
		Costs: DefaultCosts(),
	}
}

func newRig(t *testing.T, kind Kind, nReplicas int, tcpCfg tcpeng.Config) *rig {
	t.Helper()
	s := sim.New(42)
	srv := sim.NewMachine(s, "srv", 12, 1, 1_900_000_000)
	cli := sim.NewMachine(s, "cli", 4, 1, 1_900_000_000)
	l := wire.NewLink(s)

	r := &rig{s: s, link: l}
	r.srvNIC = nicdev.NewNIC(s, "srvnic", srvMAC, l, 0, nReplicas)
	r.srvDrv = nicdev.NewDriver(srv.Thread(0, 0), "srvdrv", r.srvNIC, nicdev.DefaultDriverCosts())
	r.cliNIC = nicdev.NewNIC(s, "clinic", cliMAC, l, 1, 1)
	r.cliDrv = nicdev.NewDriver(cli.Thread(0, 0), "clidrv", r.cliNIC, nicdev.DefaultDriverCosts())

	threadsPerReplica := 1
	if kind == Multi {
		threadsPerReplica = 2
	}
	for i := 0; i < nReplicas; i++ {
		cfg := ipCfg(srvIP, srvMAC, cliIP, cliMAC)
		cfg.Kind = kind
		cfg.Name = "neat" + string(rune('0'+i))
		cfg.TCP = tcpCfg
		base := 1 + i*threadsPerReplica
		var threads []*sim.HWThread
		for j := 0; j < threadsPerReplica; j++ {
			threads = append(threads, srv.Thread(base+j, 0))
		}
		rep := NewReplica(threads, r.srvDrv.Proc(), cfg)
		r.srvDrv.BindQueue(i, rep.EntryProc())
		r.replicas = append(r.replicas, rep)
	}
	ccfg := ipCfg(cliIP, cliMAC, srvIP, srvMAC)
	ccfg.Name = "clistack"
	ccfg.TCP = tcpCfg
	r.client = NewReplica([]*sim.HWThread{cli.Thread(1, 0)}, r.cliDrv.Proc(), ccfg)
	r.cliDrv.BindQueue(0, r.client.EntryProc())
	return r
}

// echoServer is a minimal app: listens, echoes everything, closes on EOF.
type echoServer struct {
	proc     *sim.Proc
	stack    *ipc.Conn
	listened bool
	accepted int
	closed   int
	got      map[uint64][]byte
}

func newEchoServer(th *sim.HWThread, target *sim.Proc) *echoServer {
	a := &echoServer{got: map[uint64][]byte{}}
	a.proc = sim.NewProc(th, "echoSrv", a, sim.ProcConfig{Component: "app"})
	a.stack = ipc.New(target, ipc.DefaultCosts())
	return a
}

func (a *echoServer) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(500)
	switch m := msg.(type) {
	case string: // "listen"
		a.stack.Send(ctx, OpListen{App: a.proc, ReqID: 1, Port: 80, Backlog: 64})
	case EvListening:
		if m.Err == nil {
			a.listened = true
		}
	case EvAccepted:
		a.accepted++
	case EvData:
		a.got[m.ConnID] = append(a.got[m.ConnID], m.Data...)
		if len(m.Data) > 0 {
			a.stack.Send(ctx, OpSend{ConnID: m.ConnID, Data: m.Data})
		}
		if m.EOF {
			a.stack.Send(ctx, OpClose{ConnID: m.ConnID})
		}
	case EvClosed:
		a.closed++
	}
}

// echoClient connects, sends a payload, collects the echo, then closes.
type echoClient struct {
	proc    *sim.Proc
	stack   *ipc.Conn
	payload []byte
	connID  uint64
	got     []byte
	done    bool
	fail    error
}

func newEchoClient(th *sim.HWThread, target *sim.Proc, payload []byte) *echoClient {
	a := &echoClient{payload: payload}
	a.proc = sim.NewProc(th, "echoCli", a, sim.ProcConfig{Component: "app"})
	a.stack = ipc.New(target, ipc.DefaultCosts())
	return a
}

func (a *echoClient) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(500)
	switch m := msg.(type) {
	case string: // "start"
		a.stack.Send(ctx, OpConnect{App: a.proc, ReqID: 7, Addr: srvIP, Port: 80})
	case EvConnected:
		if m.Err != nil {
			a.fail = m.Err
			return
		}
		a.connID = m.ConnID
		a.stack.Send(ctx, OpSend{ConnID: m.ConnID, Data: a.payload})
	case EvData:
		a.got = append(a.got, m.Data...)
		if len(a.got) >= len(a.payload) {
			a.stack.Send(ctx, OpClose{ConnID: a.connID})
			a.done = true
		}
	}
}

func runEcho(t *testing.T, kind Kind) {
	t.Helper()
	r := newRig(t, kind, 1, tcpeng.DefaultConfig())
	cliM := r.s.Machines()[1]

	srvApp := newEchoServer(r.s.Machines()[0].Thread(5, 0), r.replicas[0].SockProc())
	payload := bytes.Repeat([]byte("neat-echo-"), 500) // 5 KB
	cliApp := newEchoClient(cliM.Thread(2, 0), r.client.SockProc(), payload)

	srvApp.proc.Deliver("listen")
	r.s.RunFor(sim.Millisecond)
	if !srvApp.listened {
		t.Fatal("listen failed")
	}
	cliApp.proc.Deliver("start")
	r.s.RunFor(500 * sim.Millisecond)

	if cliApp.fail != nil {
		t.Fatalf("connect failed: %v", cliApp.fail)
	}
	if !cliApp.done || !bytes.Equal(cliApp.got, payload) {
		t.Fatalf("echo incomplete: got %d of %d bytes (done=%v)",
			len(cliApp.got), len(payload), cliApp.done)
	}
	if srvApp.accepted != 1 {
		t.Fatalf("accepted=%d", srvApp.accepted)
	}
	// Full teardown: wait out TIME_WAIT.
	r.s.RunFor(sim.Second)
	if n := r.replicas[0].TCP().NumConns(); n != 0 {
		t.Fatalf("server PCBs leaked: %d", n)
	}
	if n := r.client.TCP().NumConns(); n != 0 {
		t.Fatalf("client PCBs leaked: %d", n)
	}
}

func TestEchoEndToEndSingle(t *testing.T) { runEcho(t, Single) }
func TestEchoEndToEndMulti(t *testing.T)  { runEcho(t, Multi) }

func TestMultiReplicaSteering(t *testing.T) {
	r := newRig(t, Single, 4, tcpeng.DefaultConfig())
	srvM, cliM := r.s.Machines()[0], r.s.Machines()[1]

	// Install NEaT manager hooks: exact filters per accepted connection.
	for qi, rep := range r.replicas {
		q := qi
		rep.OnConnEstablished = func(rr *Replica, c *tcpeng.Conn) {
			r.srvNIC.InstallFilter(c.InboundFlow(), q)
		}
		rep.OnConnRemoved = func(rr *Replica, c *tcpeng.Conn) {
			r.srvNIC.RemoveFilter(c.InboundFlow())
		}
	}

	// Listen on every replica (replicated subsockets, §3.3).
	apps := make([]*echoServer, 4)
	for i, rep := range r.replicas {
		apps[i] = newEchoServer(srvM.Thread(5+i, 0), rep.SockProc())
		apps[i].proc.Deliver("listen")
	}
	r.s.RunFor(sim.Millisecond)

	// 16 client connections spread by RSS.
	clients := make([]*echoClient, 16)
	for i := range clients {
		clients[i] = newEchoClient(cliM.Thread(2, 0), r.client.SockProc(), []byte("hello-from-client"))
		clients[i].proc.Deliver("start")
	}
	r.s.RunFor(sim.Second)

	totalAccepted, replicasUsed := 0, 0
	for i, app := range apps {
		totalAccepted += app.accepted
		if app.accepted > 0 {
			replicasUsed++
		}
		_ = i
	}
	if totalAccepted != 16 {
		t.Fatalf("accepted %d of 16", totalAccepted)
	}
	if replicasUsed < 2 {
		t.Fatalf("RSS did not spread: only %d replicas used", replicasUsed)
	}
	for i, c := range clients {
		if !c.done {
			t.Fatalf("client %d incomplete (got %d bytes)", i, len(c.got))
		}
	}
	if r.srvNIC.Stats().RxFiltered == 0 {
		t.Fatal("flow-director filters never matched")
	}
	// Filters are uninstalled as connections die.
	r.s.RunFor(sim.Second)
	if n := r.srvNIC.NumFilters(); n != 0 {
		t.Fatalf("filters leaked: %d", n)
	}
}

func TestReplicaCrashIsolatesOtherReplicas(t *testing.T) {
	r := newRig(t, Single, 2, tcpeng.DefaultConfig())
	srvM, cliM := r.s.Machines()[0], r.s.Machines()[1]
	for qi, rep := range r.replicas {
		q := qi
		rep.OnConnEstablished = func(rr *Replica, c *tcpeng.Conn) {
			r.srvNIC.InstallFilter(c.InboundFlow(), q)
		}
	}
	apps := []*echoServer{
		newEchoServer(srvM.Thread(5, 0), r.replicas[0].SockProc()),
		newEchoServer(srvM.Thread(6, 0), r.replicas[1].SockProc()),
	}
	for _, a := range apps {
		a.proc.Deliver("listen")
	}
	r.s.RunFor(sim.Millisecond)

	clients := make([]*echoClient, 8)
	big := bytes.Repeat([]byte("x"), 200_000)
	for i := range clients {
		clients[i] = newEchoClient(cliM.Thread(2, 0), r.client.SockProc(), big)
		clients[i].proc.Deliver("start")
	}
	r.s.RunFor(5 * sim.Millisecond) // connections established, transfers running
	if apps[0].accepted == 0 || apps[1].accepted == 0 {
		t.Skip("RSS put all connections on one replica for this seed")
	}

	// Crash replica 0 mid-transfer; unbind its queue like the driver does.
	r.replicas[0].Kill()
	r.srvDrv.BindQueue(0, nil)
	r.s.RunFor(2 * sim.Second)

	// Every client whose connection went to replica 1 must complete.
	doneCount := 0
	for _, c := range clients {
		if c.done {
			doneCount++
		}
	}
	if doneCount == 0 {
		t.Fatal("crash of one replica killed all connections")
	}
	if doneCount == len(clients) {
		t.Fatal("crash had no effect — test not exercising the failure")
	}
	if got := r.replicas[1].TCP().Stats().DataBytesOut; got == 0 {
		t.Fatal("surviving replica did no work")
	}
}

func TestUDPEndToEnd(t *testing.T) {
	r := newRig(t, Single, 1, tcpeng.DefaultConfig())
	srvM, cliM := r.s.Machines()[0], r.s.Machines()[1]

	type udpApp struct {
		proc  *sim.Proc
		stack *ipc.Conn
		id    uint64
		port  uint16
		got   []string
	}
	mkApp := func(th *sim.HWThread, target *sim.Proc, name string, echo bool) *udpApp {
		a := &udpApp{}
		a.stack = ipc.New(target, ipc.DefaultCosts())
		a.proc = sim.NewProc(th, name, sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
			ctx.Charge(300)
			switch m := msg.(type) {
			case uint16: // "bind to port m"
				a.stack.Send(ctx, OpUDPBind{App: a.proc, ReqID: 1, Port: m})
			case EvUDPBound:
				a.id, a.port = m.UDPID, m.Port
			case EvUDPData:
				a.got = append(a.got, string(m.Data))
				if echo {
					a.stack.Send(ctx, OpUDPSendTo{UDPID: a.id, Addr: m.Src, Port: m.SrcPort, Data: append([]byte("re:"), m.Data...)})
				}
			case []byte: // "send this to the server"
				a.stack.Send(ctx, OpUDPSendTo{UDPID: a.id, Addr: srvIP, Port: 5353, Data: m})
			}
		}), sim.ProcConfig{Component: "app"})
		return a
	}
	// UDP ops are handled by the entry (IP) process; for single-component
	// replicas that is the same process as SockProc.
	srvApp := mkApp(srvM.Thread(5, 0), r.replicas[0].EntryProc(), "udpsrv", true)
	cliApp := mkApp(cliM.Thread(2, 0), r.client.EntryProc(), "udpcli", false)
	srvApp.proc.Deliver(uint16(5353))
	cliApp.proc.Deliver(uint16(0)) // ephemeral
	r.s.RunFor(sim.Millisecond)
	if srvApp.port != 5353 || cliApp.port < 32768 {
		t.Fatalf("binds: srv=%d cli=%d", srvApp.port, cliApp.port)
	}
	cliApp.proc.Deliver([]byte("ping"))
	r.s.RunFor(50 * sim.Millisecond)
	if len(srvApp.got) != 1 || srvApp.got[0] != "ping" {
		t.Fatalf("server got %v", srvApp.got)
	}
	if len(cliApp.got) != 1 || cliApp.got[0] != "re:ping" {
		t.Fatalf("client got %v", cliApp.got)
	}
}

func TestReplicaAccessors(t *testing.T) {
	r := newRig(t, Multi, 1, tcpeng.DefaultConfig())
	rep := r.replicas[0]
	if rep.Kind() != Multi || rep.Kind().String() != "multi" {
		t.Fatal("kind")
	}
	if len(rep.Procs()) != 2 {
		t.Fatalf("procs=%d", len(rep.Procs()))
	}
	if rep.EntryProc() == rep.SockProc() {
		t.Fatal("multi replica should split entry and sock procs")
	}
	if rep.IP() == nil || rep.UDP() == nil || rep.Filter() == nil || rep.TCP() == nil {
		t.Fatal("accessors nil")
	}
	if rep.Dead() {
		t.Fatal("fresh replica dead")
	}
	rep.Kill()
	if !rep.Dead() {
		t.Fatal("killed replica alive")
	}
	if rep.String() == "" || Single.String() != "single" {
		t.Fatal("strings")
	}
}
