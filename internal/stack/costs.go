package stack

// Costs is the per-operation cycle budget of stack components. The defaults
// are calibrated in internal/experiments/calibrate.go so that one
// single-component replica on a 1.9 GHz core saturates at roughly the
// request rate the paper's Figure 7 shows; see that file for the
// derivations. All values are cycles.
type Costs struct {
	FilterCheck  int64 // packet filter rule evaluation per packet
	IPIn         int64 // IP input path per packet
	IPOut        int64 // IP output path per packet
	TCPSegIn     int64 // TCP segment processing (demux + state machine)
	TCPSegOut    int64 // TCP segment build + checksum
	TCPConnSetup int64 // PCB allocation on SYN / connect
	UDPIn        int64
	UDPOut       int64
	SockOp       int64 // socket control-plane operation
	SockEvent    int64 // posting an event to an application channel
	TimerOp      int64 // timer bookkeeping per firing
}

// DefaultCosts returns the calibrated default cycle costs.
func DefaultCosts() Costs {
	return Costs{
		FilterCheck:  300,
		IPIn:         900,
		IPOut:        1100,
		TCPSegIn:     2600,
		TCPSegOut:    2200,
		TCPConnSetup: 3500,
		UDPIn:        900,
		UDPOut:       900,
		SockOp:       1200,
		SockEvent:    600,
		TimerOp:      400,
	}
}
