package stack

import (
	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/tcpeng"
)

// tcpHost hosts the TCP engine and the TCP-side socket bookkeeping. In a
// single-component replica it shares the process with ipHost; in a
// multi-component replica it is the "TCP process" of Fig. 3 — the one
// stateful component whose crash loses connections (§6.6).
type tcpHost struct {
	r     *Replica
	proc  *sim.Proc
	costs Costs
	ctx   *sim.Context

	tcp *tcpeng.Engine

	// outFrame hands a headroom TX frame (transport marshalled at
	// proto.TxHeadroom in a pooled buffer) to the IP layer, which fills the
	// L2/L3 headers in place — no per-hop copy. Ownership of the buffer
	// transfers with the call; the IP side eventually Puts or transmits it.
	outFrame func(ctx *sim.Context, dst proto.Addr, p proto.IPProto, frame []byte)
	outTSO   func(ctx *sim.Context, t ipeng.TSO)

	conns     map[uint64]*tcpeng.Conn     // by ConnID (= engine conn ID)
	listeners map[uint64]*tcpeng.Listener // by the app's listen ReqID
	appConns  map[*sim.Proc]*ipc.Conn
	ipcCosts  ipc.Costs
}

// sockCtx is the per-connection socket bookkeeping.
type sockCtx struct {
	app         *sim.Proc
	reqID       uint64 // OpConnect correlation (active opens)
	established bool
	pending     []byte // OpSend bytes not yet accepted by the engine
	wantSpace   bool   // app asked to be told when space frees
}

// listenCtx binds a listener subsocket to its owning application.
type listenCtx struct {
	app   *sim.Proc
	reqID uint64
}

// The host's dispatch context (h.ctx) is installed for the whole
// activation by the owning handler's BeginBatch, so methods invoked from
// HandleMessage run with it already in place.

func (h *tcpHost) onTimer(ctx *sim.Context, m *tcpeng.ConnTimer) {
	ctx.Charge(h.costs.TimerOp)
	h.tcp.OnTimer(m.C, m.Kind)
}

// handleOp processes TCP socket operations; reports whether msg was one.
func (h *tcpHost) handleOp(ctx *sim.Context, msg sim.Message) bool {
	switch m := msg.(type) {
	case OpListen:
		ctx.Charge(h.costs.SockOp)
		l, err := h.tcp.Listen(proto.Addr{}, m.Port, m.Backlog)
		if err == nil {
			l.Ctx = &listenCtx{app: m.App, reqID: m.ReqID}
			h.listeners[m.ReqID] = l
		}
		ackTo := m.App
		if m.ReplyTo != nil {
			ackTo = m.ReplyTo
		}
		h.sendApp(ctx, ackTo, EvListening{ReqID: m.ReqID, Stack: h.proc, Err: err})
		return true
	case OpConnect:
		ctx.Charge(h.costs.TCPConnSetup)
		c, err := h.tcp.ConnectFrom(m.Addr, m.Port, m.LocalPort)
		if err != nil {
			h.sendApp(ctx, m.App, EvConnected{ReqID: m.ReqID, Stack: h.proc, Err: err})
			return true
		}
		c.Ctx = &sockCtx{app: m.App, reqID: m.ReqID}
		h.conns[c.ID] = c
		if h.r.OnConnCreated != nil {
			h.r.OnConnCreated(h.r, c)
		}
		return true
	case *OpSend:
		// Pooled fast-path form (socketlib): recycle the box once Data has
		// been absorbed and Ref released.
		h.opSend(ctx, m.ConnID, m.Data, m.Ref, m.WantSpace)
		m.Recycle()
		return true
	case OpSend:
		h.opSend(ctx, m.ConnID, m.Data, m.Ref, m.WantSpace)
		return true
	case OpClose:
		if c, ok := h.conns[m.ConnID]; ok {
			ctx.Charge(h.costs.SockOp)
			c.Close()
		}
		return true
	case OpAbort:
		if c, ok := h.conns[m.ConnID]; ok {
			ctx.Charge(h.costs.SockOp)
			c.Abort()
		}
		return true
	case OpCloseListener:
		if l, ok := h.listeners[m.ReqID]; ok {
			ctx.Charge(h.costs.SockOp)
			delete(h.listeners, m.ReqID)
			l.Close()
		}
		return true
	case OpCheckpoint:
		snap := h.tcp.Snapshot()
		snap.Owner = h.proc
		// Checkpointing is the run-time overhead the paper warns about
		// (§2.1): a process-image snapshot costs a fixed quiesce+copy of
		// the process plus the per-connection state.
		ctx.Charge(300_000 + 3*int64(snap.StateBytes()))
		if h.r.OnCheckpoint != nil {
			h.r.OnCheckpoint(h.r, snap)
		}
		return true
	case OpRestore:
		h.restore(ctx, m.Snap)
		return true
	}
	return false
}

// opSend appends send-stream bytes to a connection: the shared body of the
// pooled (*OpSend) and value (OpSend) message forms.
func (h *tcpHost) opSend(ctx *sim.Context, connID uint64, data []byte, ref bufpool.Ref, wantSpace bool) {
	c, ok := h.conns[connID]
	if !ok {
		ref.Release()
		return // connection already gone; app learns via EvClosed
	}
	sc := c.Ctx.(*sockCtx)
	sc.pending = append(sc.pending, data...)
	ref.Release() // data now lives in sc.pending
	if wantSpace {
		sc.wantSpace = true
	}
	ctx.Charge(h.costs.SockOp)
	h.drainPending(c, sc)
	h.maybeAdvertiseSpace(c, sc)
}

// restore loads a checkpoint into this (fresh) TCP host: PCBs come back
// with their socket bookkeeping, the manager hooks re-register them (and
// re-install NIC filters), and the owning applications are told the new
// home of each connection.
func (h *tcpHost) restore(ctx *sim.Context, snap *tcpeng.Snapshot) {
	if snap == nil {
		return
	}
	ctx.Charge(2000 + int64(snap.StateBytes())/2)
	n := h.tcp.Restore(snap)
	for _, ls := range snap.Listeners {
		if lc, ok := ls.Ctx.(*listenCtx); ok {
			if l := h.tcp.LookupListener(ls.Port); l != nil {
				h.listeners[lc.reqID] = l
			}
		}
	}
	for _, cs := range snap.Conns {
		sc, ok := cs.Ctx.(*sockCtx)
		if !ok {
			continue
		}
		c := h.tcp.LookupByID(cs.ConnID)
		if c == nil {
			continue
		}
		h.conns[c.ID] = c
		if h.r.OnConnEstablished != nil {
			h.r.OnConnEstablished(h.r, c)
		}
		h.sendApp(ctx, sc.app, EvRehomed{OldStack: snap.Owner, NewStack: h.proc, ConnID: c.ID})
	}
	if h.r.OnRestored != nil {
		h.r.OnRestored(h.r, n)
	}
}

// drainPending moves buffered OpSend bytes into the engine.
func (h *tcpHost) drainPending(c *tcpeng.Conn, sc *sockCtx) {
	for len(sc.pending) > 0 {
		n := c.Send(sc.pending)
		if n == 0 {
			return
		}
		sc.pending = sc.pending[n:]
	}
	sc.pending = nil
}

// maybeAdvertiseSpace tells a waiting app how much send window is free.
func (h *tcpHost) maybeAdvertiseSpace(c *tcpeng.Conn, sc *sockCtx) {
	if !sc.wantSpace {
		return
	}
	avail := c.SendSpaceFree() - len(sc.pending)
	if avail <= 0 {
		return
	}
	sc.wantSpace = false
	h.sendApp(h.ctx, sc.app, EvSendSpace{Stack: h.proc, ConnID: c.ID, Available: avail})
}

// sendApp posts an event to an application process.
func (h *tcpHost) sendApp(ctx *sim.Context, app *sim.Proc, ev sim.Message) {
	ctx.Charge(h.costs.SockEvent)
	conn, ok := h.appConns[app]
	if !ok {
		conn = ipc.New(app, h.ipcCosts)
		h.appConns[app] = conn
	}
	conn.Send(ctx, ev)
}

// ---- tcpeng.Env ----

// Now implements tcpeng.Env.
func (h *tcpHost) Now() sim.Time { return h.proc.Sim().Now() }

// SendSegment implements tcpeng.Env: serialize (or TSO-describe) and hand
// to the IP layer.
func (h *tcpHost) SendSegment(c *tcpeng.Conn, seg tcpeng.OutSegment) {
	h.ctx.Charge(h.costs.TCPSegOut)
	if seg.TSO && len(seg.Payload) > seg.MSS {
		h.outTSO(h.ctx, ipeng.TSO{TCP: seg.Hdr, Dst: seg.Dst, Payload: seg.Payload, MSS: seg.MSS})
		return
	}
	n := seg.Hdr.EncodedLen(len(seg.Payload))
	frame := seg.Hdr.Marshal(bufpool.Get(proto.TxHeadroom + n)[:proto.TxHeadroom], seg.Src, seg.Dst, seg.Payload)
	h.outFrame(h.ctx, seg.Dst, proto.ProtoTCP, frame)
}

// ArmTimer implements tcpeng.Env: (re)arm the connection's intrusive timer
// node. The node doubles as the fire message, so arming allocates nothing.
func (h *tcpHost) ArmTimer(c *tcpeng.Conn, k tcpeng.TimerKind, d sim.Time) {
	t := &c.Timers[k]
	h.ctx.Retimer(&t.Timer, d, t)
}

// StopTimer implements tcpeng.Env.
func (h *tcpHost) StopTimer(c *tcpeng.Conn, k tcpeng.TimerKind) {
	c.Timers[k].Stop()
}

// Accepted implements tcpeng.Env.
func (h *tcpHost) Accepted(c *tcpeng.Conn) {
	h.ctx.Charge(h.costs.TCPConnSetup)
	lc, ok := c.Listener.Ctx.(*listenCtx)
	if !ok {
		return
	}
	// NEaT sockets hand accepted connections straight to the application;
	// the library "accepts" them without a syscall (§3.3).
	c.Listener.Accept()
	sc := &sockCtx{app: lc.app, established: true}
	c.Ctx = sc
	h.conns[c.ID] = c
	if h.r.OnConnEstablished != nil {
		h.r.OnConnEstablished(h.r, c)
	}
	ra, rp := c.RemoteAddr()
	h.sendApp(h.ctx, lc.app, EvAccepted{
		ListenerReqID: lc.reqID, ConnID: c.ID, Stack: h.proc,
		RemoteAddr: ra, RemotePort: rp,
		SendBuf: c.SendSpaceFree(),
	})
}

// Connected implements tcpeng.Env.
func (h *tcpHost) Connected(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	sc.established = true
	if h.r.OnConnEstablished != nil {
		h.r.OnConnEstablished(h.r, c)
	}
	h.sendApp(h.ctx, sc.app, EvConnected{
		ReqID: sc.reqID, ConnID: c.ID, Stack: h.proc, SendBuf: c.SendSpaceFree(),
	})
}

// DataReadable implements tcpeng.Env: fast-path push of received bytes.
func (h *tcpHost) DataReadable(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	data := c.Recv(0)
	eof := c.EOF()
	if len(data) == 0 && !eof {
		return
	}
	h.sendApp(h.ctx, sc.app, EvData{Stack: h.proc, ConnID: c.ID, Data: data, EOF: eof})
}

// SendSpace implements tcpeng.Env.
func (h *tcpHost) SendSpace(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	h.drainPending(c, sc)
	h.maybeAdvertiseSpace(c, sc)
}

// ConnClosed implements tcpeng.Env.
func (h *tcpHost) ConnClosed(c *tcpeng.Conn, reset bool) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	if !sc.established {
		// Active open failed.
		h.sendApp(h.ctx, sc.app, EvConnected{ReqID: sc.reqID, Stack: h.proc, Err: c.Err})
		return
	}
	h.sendApp(h.ctx, sc.app, EvClosed{Stack: h.proc, ConnID: c.ID, Reset: reset, Err: c.Err})
}

// ConnRemoved implements tcpeng.Env.
func (h *tcpHost) ConnRemoved(c *tcpeng.Conn) {
	delete(h.conns, c.ID)
	if h.r.OnConnRemoved != nil {
		h.r.OnConnRemoved(h.r, c)
	}
}

// RandUint32 implements tcpeng.Env.
func (h *tcpHost) RandUint32() uint32 { return h.proc.Sim().Rand().Uint32() }
