package stack

import (
	"fmt"

	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/pfilter"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/udpeng"
)

// Kind selects the replica layout.
type Kind int

// Replica layouts (§3.7).
const (
	// Single runs the whole stack in one process ("NEaT Nx").
	Single Kind = iota
	// Multi splits packet filter+IP(+UDP) and TCP into two processes
	// ("Multi Nx").
	Multi
)

// String names the kind.
func (k Kind) String() string {
	if k == Single {
		return "single"
	}
	return "multi"
}

// Config assembles a replica.
type Config struct {
	Name  string
	Kind  Kind
	IP    ipeng.Config
	TCP   tcpeng.Config
	Costs Costs
	IPC   ipc.Costs
}

// Replica is one partition of the network stack: its own TCP/IP state, its
// own processes, its own NIC queue. Replicas never talk to each other.
type Replica struct {
	name string
	kind Kind
	s    *sim.Simulator
	cfg  Config

	procs []*sim.Proc
	iph   *ipHost
	tcph  *tcpHost

	// Rebindable channels between the components of a Multi replica (nil
	// for Single); the recovery manager splices restarted processes in.
	connToTCP *ipc.Conn
	connToIP  *ipc.Conn
	driver    *sim.Proc

	// OnConnCreated fires when an active open allocates its 4-tuple; the
	// NEaT manager installs the NIC flow filter here, BEFORE the SYN goes
	// out, so the SYN-ACK already steers to the owning replica (§3.3:
	// "both the NIC and the libraries must honor the choice").
	OnConnCreated func(r *Replica, c *tcpeng.Conn)
	// OnCheckpoint receives periodic TCP snapshots when checkpointing is
	// enabled; the manager stores the latest one per replica.
	OnCheckpoint func(r *Replica, snap *tcpeng.Snapshot)
	// OnRestored reports how many connections a checkpoint restore
	// revived.
	OnRestored func(r *Replica, n int)
	// OnConnEstablished/OnConnRemoved are the NEaT manager hooks for
	// installing/removing NIC flow filters and tracking connection counts
	// (lazy termination, §3.4). Called on the TCP process's dispatch.
	OnConnEstablished func(r *Replica, c *tcpeng.Conn)
	OnConnRemoved     func(r *Replica, c *tcpeng.Conn)

	dead bool
}

// NewReplica builds a replica pinned to the given hardware threads:
// threads[0] hosts the (single-component) stack or the IP process;
// Multi additionally requires threads[1] for the TCP process.
// driver is the NIC driver process frames are transmitted through.
func NewReplica(threads []*sim.HWThread, driver *sim.Proc, cfg Config) *Replica {
	if cfg.Kind == Multi && len(threads) < 2 {
		panic("stack: multi-component replica needs two hardware threads")
	}
	if cfg.Name == "" {
		cfg.Name = "stack"
	}
	r := &Replica{name: cfg.Name, kind: cfg.Kind, s: threads[0].Machine().Sim(),
		cfg: cfg, driver: driver}

	switch cfg.Kind {
	case Single:
		r.buildSingle(threads[0])
	case Multi:
		r.buildIPHost(threads[0])
		r.buildTCPHost(threads[1])
		r.procs = []*sim.Proc{r.iph.proc, r.tcph.proc}
	}
	return r
}

// newIPHost constructs a fresh ipHost (engines rebuilt from configuration —
// the component is stateless, §3.7).
func (r *Replica) newIPHost() *ipHost {
	h := &ipHost{r: r, costs: r.cfg.Costs, udpSocks: map[uint64]*udpSockCtx{},
		appConns: map[*sim.Proc]*ipc.Conn{}, ipcCosts: r.cfg.IPC}
	h.toDriver = ipc.New(r.driver, r.cfg.IPC)
	h.filter = pfilter.New()
	h.ip = ipeng.NewEngine(h, r.cfg.IP)
	h.udp = udpeng.NewEngine(h, r.cfg.IP.Addr)
	return h
}

// newTCPHost constructs a fresh tcpHost with an empty TCP engine.
func (r *Replica) newTCPHost() *tcpHost {
	h := &tcpHost{r: r, costs: r.cfg.Costs, conns: map[uint64]*tcpeng.Conn{},
		listeners: map[uint64]*tcpeng.Listener{},
		appConns:  map[*sim.Proc]*ipc.Conn{}, ipcCosts: r.cfg.IPC}
	h.tcp = tcpeng.NewEngine(h, r.cfg.IP.Addr, r.cfg.TCP)
	return h
}

func stackProcConfig(component string) sim.ProcConfig {
	return sim.ProcConfig{Component: component,
		WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 80}
}

// buildSingle (re)creates the whole single-component stack on one thread.
func (r *Replica) buildSingle(th *sim.HWThread) {
	r.iph = r.newIPHost()
	r.tcph = r.newTCPHost()
	// A single-component replica is one process; its fault-injection
	// component label is "tcp" because the TCP engine dominates both the
	// code size and the state (the injector refines by code-size weights).
	p := sim.NewProc(th, r.name, &singleHandler{r}, stackProcConfig("tcp"))
	r.procs = []*sim.Proc{p}
	r.iph.proc, r.tcph.proc = p, p
	costs := r.cfg.Costs
	// Direct in-process calls between the layers. Both hosts' dispatch
	// contexts are installed for the whole activation by the handler's
	// BeginBatch, so no per-call context swap is needed.
	r.iph.toTCP = func(ctx *sim.Context, f *proto.Frame) {
		ctx.Charge(costs.TCPSegIn)
		r.tcph.tcp.Input(f)
		f.Release() // TCP input copies payload into engine buffers
	}
	r.tcph.outFrame = func(ctx *sim.Context, dst proto.Addr, p proto.IPProto, frame []byte) {
		r.iph.ip.OutputFrame(dst, p, frame)
	}
	r.tcph.outTSO = func(ctx *sim.Context, t ipeng.TSO) {
		r.iph.ip.OutputTSO(t)
	}
}

// buildIPHost (re)creates the PF+IP+UDP process of a Multi replica.
func (r *Replica) buildIPHost(th *sim.HWThread) {
	r.iph = r.newIPHost()
	r.iph.proc = sim.NewProc(th, r.name+".ip", &ipHandler{r.iph}, stackProcConfig("ip"))
	if r.connToTCP == nil {
		r.connToTCP = ipc.New(nil, r.cfg.IPC)
	}
	if r.connToIP == nil {
		r.connToIP = ipc.New(nil, r.cfg.IPC)
	}
	r.connToIP.Rebind(r.iph.proc)
	toTCP := r.connToTCP
	r.iph.toTCP = func(ctx *sim.Context, f *proto.Frame) {
		// The frame box crosses the component boundary as-is: it is already
		// pooled and reference-counted, so no wrapper message is needed.
		toTCP.Send(ctx, f)
	}
}

// buildTCPHost (re)creates the TCP process of a Multi replica.
func (r *Replica) buildTCPHost(th *sim.HWThread) {
	r.tcph = r.newTCPHost()
	r.tcph.proc = sim.NewProc(th, r.name+".tcp", &tcpHandler{r.tcph}, stackProcConfig("tcp"))
	if r.connToTCP == nil {
		r.connToTCP = ipc.New(nil, r.cfg.IPC)
	}
	if r.connToIP == nil {
		r.connToIP = ipc.New(nil, r.cfg.IPC)
	}
	r.connToTCP.Rebind(r.tcph.proc)
	toIP := r.connToIP
	r.tcph.outFrame = func(ctx *sim.Context, dst proto.Addr, p proto.IPProto, frame []byte) {
		toIP.Send(ctx, newIPOutput(dst, p, frame))
	}
	r.tcph.outTSO = func(ctx *sim.Context, t ipeng.TSO) {
		toIP.Send(ctx, newIPOutputTSO(t.Dst, t.TCP, t.Payload, t.MSS))
	}
}

// RestartIP replaces a dead IP process of a Multi replica with a fresh,
// stateless incarnation on thread th. Existing TCP state (and therefore
// all connections) survives — this is the paper's transparent recovery
// path for stateless components (§6.6).
func (r *Replica) RestartIP(th *sim.HWThread) *sim.Proc {
	if r.kind != Multi {
		panic("stack: RestartIP on a single-component replica")
	}
	r.buildIPHost(th)
	r.procs = []*sim.Proc{r.iph.proc, r.tcph.proc}
	r.dead = r.tcph.proc.Dead()
	return r.iph.proc
}

// RestartTCP replaces a dead TCP process of a Multi replica. All TCP
// connection state is lost (stateless recovery, §3.6); listening sockets
// must be re-announced by the manager.
func (r *Replica) RestartTCP(th *sim.HWThread) *sim.Proc {
	if r.kind != Multi {
		panic("stack: RestartTCP on a single-component replica")
	}
	r.buildTCPHost(th)
	r.procs = []*sim.Proc{r.iph.proc, r.tcph.proc}
	r.dead = r.iph.proc.Dead()
	return r.tcph.proc
}

// Rebuild replaces a dead single-component replica with a fresh incarnation
// on thread th. All state is lost.
func (r *Replica) Rebuild(th *sim.HWThread) *sim.Proc {
	if r.kind != Single {
		panic("stack: Rebuild is for single-component replicas")
	}
	r.buildSingle(th)
	r.dead = false
	return r.procs[0]
}

// ConnApp returns the application process owning a connection's socket.
func (r *Replica) ConnApp(c *tcpeng.Conn) *sim.Proc {
	if sc, ok := c.Ctx.(*sockCtx); ok {
		return sc.app
	}
	return nil
}

// Conns returns the live connections table of the TCP host (for tests and
// the recovery manager).
func (r *Replica) Conns() map[uint64]*tcpeng.Conn { return r.tcph.conns }

// Name returns the replica name.
func (r *Replica) Name() string { return r.name }

// Kind returns the replica layout.
func (r *Replica) Kind() Kind { return r.kind }

// Procs returns the replica's processes.
func (r *Replica) Procs() []*sim.Proc { return r.procs }

// EntryProc returns the process the NIC driver must deliver RX frames to.
func (r *Replica) EntryProc() *sim.Proc { return r.iph.proc }

// SockProc returns the process applications address socket operations to.
func (r *Replica) SockProc() *sim.Proc { return r.tcph.proc }

// TCP returns the replica's TCP engine (tests and the manager inspect it).
func (r *Replica) TCP() *tcpeng.Engine { return r.tcph.tcp }

// IP returns the replica's IP engine.
func (r *Replica) IP() *ipeng.Engine { return r.iph.ip }

// UDP returns the replica's UDP engine.
func (r *Replica) UDP() *udpeng.Engine { return r.iph.udp }

// Filter returns the replica's packet filter.
func (r *Replica) Filter() *pfilter.Filter { return r.iph.filter }

// Dead reports whether any process of the replica has died.
func (r *Replica) Dead() bool {
	for _, p := range r.procs {
		if p.Dead() {
			return true
		}
	}
	return r.dead
}

// Kill crashes every process of the replica, losing all its state — the
// paper's replica-failure model (§3.6).
func (r *Replica) Kill() {
	r.dead = true
	for _, p := range r.procs {
		p.Kill()
	}
}

// String describes the replica.
func (r *Replica) String() string {
	return fmt.Sprintf("%s(%s, %s)", r.name, r.kind, r.iph.ip.Addr())
}

// ---- process handlers ----
//
// Every handler implements sim.BatchHandler: deliveries now arrive as
// vectors (one simulator event per same-timestamp ring flush), and the
// bracket installs the hosts' dispatch context once per activation instead
// of once per message. The per-message context swaps — and the allocating
// withCtx func literals on the OpSend path — are gone; engine callbacks
// reach the context through the host for the whole drain. The bracket is
// bookkeeping only: it charges no cycles and sends no messages, so batched
// and unbatched delivery produce byte-identical simulations.

// singleHandler runs the entire stack in one process.
type singleHandler struct{ r *Replica }

// BeginBatch implements sim.BatchHandler.
func (h *singleHandler) BeginBatch(ctx *sim.Context, n int) {
	h.r.iph.ctx, h.r.tcph.ctx = ctx, ctx
}

// EndBatch implements sim.BatchHandler.
func (h *singleHandler) EndBatch() {
	h.r.iph.ctx, h.r.tcph.ctx = nil, nil
}

func (h *singleHandler) HandleMessage(ctx *sim.Context, msg sim.Message) {
	r := h.r
	switch m := msg.(type) {
	case *proto.Frame:
		r.iph.inputFrame(ctx, m)
	case tickMsg:
		m.fn()
	case *tcpeng.ConnTimer:
		r.tcph.onTimer(ctx, m)
	default:
		if !r.tcph.handleOp(ctx, msg) {
			r.iph.handleOp(ctx, msg)
		}
	}
}

// ipHandler is the multi-component PF+IP(+UDP) process.
type ipHandler struct{ h *ipHost }

// BeginBatch implements sim.BatchHandler.
func (ih *ipHandler) BeginBatch(ctx *sim.Context, n int) { ih.h.ctx = ctx }

// EndBatch implements sim.BatchHandler.
func (ih *ipHandler) EndBatch() { ih.h.ctx = nil }

func (ih *ipHandler) HandleMessage(ctx *sim.Context, msg sim.Message) {
	h := ih.h
	switch m := msg.(type) {
	case *proto.Frame:
		h.inputFrame(ctx, m)
	case *ipOutput:
		h.ip.OutputFrame(m.dst, m.proto, m.frame) // takes ownership of the frame
		*m = ipOutput{}
		ipOutputPool.Put(m)
	case *ipOutputTSO:
		h.ip.OutputTSO(ipeng.TSO{TCP: m.hdr, Dst: m.dst, Payload: m.payload, MSS: m.mss})
		*m = ipOutputTSO{}
		ipOutputTSOPool.Put(m)
	case tickMsg:
		m.fn()
	default:
		h.handleOp(ctx, msg)
	}
}

// tcpHandler is the multi-component TCP process.
type tcpHandler struct{ h *tcpHost }

// BeginBatch implements sim.BatchHandler.
func (th *tcpHandler) BeginBatch(ctx *sim.Context, n int) { th.h.ctx = ctx }

// EndBatch implements sim.BatchHandler.
func (th *tcpHandler) EndBatch() { th.h.ctx = nil }

func (th *tcpHandler) HandleMessage(ctx *sim.Context, msg sim.Message) {
	h := th.h
	switch m := msg.(type) {
	case *proto.Frame:
		// Inbound segment from the IP process.
		ctx.Charge(h.costs.TCPSegIn)
		h.tcp.Input(m)
		m.Release()
	case *tcpeng.ConnTimer:
		h.onTimer(ctx, m)
	case tickMsg:
		m.fn()
	default:
		h.handleOp(ctx, msg)
	}
}
