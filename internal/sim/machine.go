package sim

import "fmt"

// Machine models one physical host: a set of cores, each with one or more
// hardware threads, running at a nominal frequency. The two machines of the
// paper's testbed are constructed by the experiments package as
//
//	AMD:  12 cores × 1 thread  @ 1.9 GHz
//	Xeon:  8 cores × 2 threads @ 2.26 GHz
type Machine struct {
	sim    *Simulator
	Name   string
	FreqHz int64
	cores  []*Core

	// HTPenalty is the slowdown factor applied to a handler's execution
	// time when the sibling hardware thread of the same core is busy.
	// 1.0 means perfect sharing (no penalty); the default 1.45 reflects
	// the paper's observation that two hyperthreads deliver roughly
	// 1.3-1.4× the throughput of one core, not 2×.
	HTPenalty float64
}

// NewMachine creates a machine with cores×threadsPerCore hardware threads.
// On a PDES control plane (EnablePDES) the machine is placed in a fresh
// event-queue domain: everything derived from the machine — its processes,
// their contexts, the NIC bound to it — schedules on the domain shard that
// Machine.Sim() returns, not on s.
func NewMachine(s *Simulator, name string, cores, threadsPerCore int, freqHz int64) *Machine {
	if cores <= 0 || threadsPerCore <= 0 {
		panic("sim: machine needs at least one core and one thread per core")
	}
	if s.parent != nil {
		panic("sim: machines must be created on the control-plane simulator")
	}
	ms := s
	if s.pdes != nil {
		ms = s.newDomain()
	}
	m := &Machine{sim: ms, Name: name, FreqHz: freqHz, HTPenalty: 1.45}
	for c := 0; c < cores; c++ {
		core := &Core{machine: m, Index: c}
		for t := 0; t < threadsPerCore; t++ {
			core.threads = append(core.threads, &HWThread{core: core, Index: t})
		}
		m.cores = append(m.cores, core)
	}
	s.machines = append(s.machines, m)
	if ms != s {
		ms.machines = append(ms.machines, m)
	}
	return m
}

// Sim returns the simulator the machine schedules on: the owning simulator
// in the default mode, the machine's domain shard in PDES mode. Components
// that need machine-local time, randomness or scheduling must go through
// this (or a Proc/Context), never through a captured control-plane handle.
func (m *Machine) Sim() *Simulator { return m.sim }

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Thread returns hardware thread t of core c.
func (m *Machine) Thread(c, t int) *HWThread { return m.cores[c].threads[t] }

// Cycles converts a cycle count to simulated time at the nominal frequency.
func (m *Machine) Cycles(n int64) Time {
	return Time(n * int64(Second) / m.FreqHz)
}

// Threads returns every hardware thread in core-major order.
func (m *Machine) Threads() []*HWThread {
	var out []*HWThread
	for _, c := range m.cores {
		out = append(out, c.threads...)
	}
	return out
}

// Core is one physical core holding one or more hardware threads.
type Core struct {
	machine *Machine
	Index   int
	threads []*HWThread
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.machine }

// NumThreads returns the number of hardware threads on the core.
func (c *Core) NumThreads() int { return len(c.threads) }

// Thread returns hardware thread i.
func (c *Core) Thread(i int) *HWThread { return c.threads[i] }

// HWThread is a hardware thread (hyperthread). Processes are pinned to a
// thread; the thread executes at most one message handler at a time, and
// colocated processes time-share it. This is the paper's "each OS component
// gets its own core (or hardware thread)" model.
type HWThread struct {
	core  *Core
	Index int

	// freeAt is the earliest time a new handler can start on this thread.
	freeAt Time
	// busyTotal accumulates execution time for utilization accounting.
	busyTotal Time

	procs []*Proc
}

// Core returns the owning core.
func (t *HWThread) Core() *Core { return t.core }

// Machine returns the owning machine.
func (t *HWThread) Machine() *Machine { return t.core.machine }

// String names the thread as machine/cN.tM.
func (t *HWThread) String() string {
	return fmt.Sprintf("%s/c%d.t%d", t.core.machine.Name, t.core.Index, t.Index)
}

// FreeAt returns the time at which the thread becomes free.
func (t *HWThread) FreeAt() Time { return t.freeAt }

// BusyTotal returns the cumulative busy time of the thread.
func (t *HWThread) BusyTotal() Time { return t.busyTotal }

// Procs returns the processes pinned to this thread.
func (t *HWThread) Procs() []*Proc { return t.procs }

// siblingBusy reports whether any other thread of the same core is busy at
// time at. It drives the hyperthreading penalty.
func (t *HWThread) siblingBusy(at Time) bool {
	for _, sib := range t.core.threads {
		if sib != t && sib.freeAt > at {
			return true
		}
	}
	return false
}

// Utilization returns the fraction of the window [since, until] that the
// thread spent executing, given busy totals captured at the window edges.
func Utilization(busyAtStart, busyAtEnd, since, until Time) float64 {
	if until <= since {
		return 0
	}
	u := float64(busyAtEnd-busyAtStart) / float64(until-since)
	if u > 1 {
		u = 1
	}
	return u
}
