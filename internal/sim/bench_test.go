package sim

import "testing"

type benchSink struct{ n uint64 }

func (s *benchSink) OnEvent(tag uint64) { s.n += tag }

// BenchmarkSimSchedule measures the closure-free schedule+dispatch cycle of
// the calendar queue in steady state: one insert and one pop per iteration,
// with the timer horizon spread across the wheel.
func BenchmarkSimSchedule(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	sink := &benchSink{}
	for i := 0; i < b.N; i++ {
		s.AfterEvent(Time(i%1000)*Microsecond, sink, 1)
		s.Step()
	}
	s.Drain()
	if sink.n == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkSimScheduleFar exercises the far-future heap spill: every
// insertion lands beyond the wheel horizon and must migrate back in.
func BenchmarkSimScheduleFar(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	sink := &benchSink{}
	for i := 0; i < b.N; i++ {
		s.AfterEvent(10*Millisecond, sink, 1) // past the 1024-bucket horizon
		s.Step()
	}
	s.Drain()
	if sink.n == 0 {
		b.Fatal("no events ran")
	}
}
