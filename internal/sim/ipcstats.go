package sim

// IPC instrumentation. The ipc package (and the dispatch flush itself)
// report ring activity to the owning simulator through the Note* methods
// below; the counters live per domain shard in PDES mode — every write
// happens domain-locked, exactly like eventsRun — and IPCStats aggregates
// them on the control plane at a barrier.

// ipcBatchBuckets is the number of vector-size histogram buckets: exact
// sizes 1..8, then power-of-two ranges 9-16, 17-32, 33-64 and 65+.
const ipcBatchBuckets = 12

// IPCBatchBucketLabel names histogram bucket i.
func IPCBatchBucketLabel(i int) string {
	switch {
	case i < 8:
		return [...]string{"1", "2", "3", "4", "5", "6", "7", "8"}[i]
	case i == 8:
		return "9-16"
	case i == 9:
		return "17-32"
	case i == 10:
		return "33-64"
	default:
		return "65+"
	}
}

func ipcBatchBucket(n int) int {
	switch {
	case n <= 8:
		return n - 1
	case n <= 16:
		return 8
	case n <= 32:
		return 9
	case n <= 64:
		return 10
	default:
		return 11
	}
}

// ipcCounters is the per-simulator (per-domain) IPC instrumentation state.
type ipcCounters struct {
	sends      uint64
	slowPath   uint64
	wakesSaved uint64
	stalls     uint64
	depthHW    int
	batches    uint64
	batchMsgs  uint64
	batchHist  [ipcBatchBuckets]uint64
}

// IPCStats is the aggregated view of the simulator's IPC instrumentation.
type IPCStats struct {
	// Sends counts messages sent over modeled IPC channels; SlowPath the
	// subset that paid the kernel-assisted (colocated-endpoint) latency.
	Sends    uint64
	SlowPath uint64
	// WakesSaved counts sends that rode an already-armed ring doorbell
	// instead of paying their own (ipc wake coalescing, opt-in).
	WakesSaved uint64
	// Stalls counts sends that found their ring full and waited for the
	// head slot to free (sender-side backpressure).
	Stalls uint64
	// DepthHW is the highest in-flight ring occupancy observed on any
	// single connection.
	DepthHW int
	// Batches counts delivery vectors emitted by dispatch flushes;
	// BatchMsgs counts the messages they carried.
	Batches   uint64
	BatchMsgs uint64
	// BatchHist is the vector-size histogram (see IPCBatchBucketLabel).
	BatchHist [ipcBatchBuckets]uint64
}

// NoteIPCSend records one message sent over an IPC channel; slow marks the
// kernel-assisted path (sender and receiver sharing a hardware thread).
func (s *Simulator) NoteIPCSend(slow bool) {
	s.ipc.sends++
	if slow {
		s.ipc.slowPath++
	}
}

// NoteIPCWakeSaved records one coalesced (ridden) doorbell.
func (s *Simulator) NoteIPCWakeSaved() { s.ipc.wakesSaved++ }

// NoteIPCStall records one full-ring sender stall.
func (s *Simulator) NoteIPCStall() { s.ipc.stalls++ }

// NoteIPCDepth records a ring occupancy observation for the high-water mark.
func (s *Simulator) NoteIPCDepth(d int) {
	if d > s.ipc.depthHW {
		s.ipc.depthHW = d
	}
}

// noteIPCBatch records one emitted delivery vector of n messages.
func (s *Simulator) noteIPCBatch(n int) {
	s.ipc.batches++
	s.ipc.batchMsgs += uint64(n)
	s.ipc.batchHist[ipcBatchBucket(n)]++
}

// IPCStats aggregates the IPC instrumentation. On a PDES control plane it
// totals across all domains (high-water marks take the max); call it only
// at a barrier.
func (s *Simulator) IPCStats() IPCStats {
	out := s.ipc.stats()
	if s.pdes != nil && s.parent == nil {
		for _, d := range s.pdes.domains {
			ds := d.ipc.stats()
			out.Sends += ds.Sends
			out.SlowPath += ds.SlowPath
			out.WakesSaved += ds.WakesSaved
			out.Stalls += ds.Stalls
			if ds.DepthHW > out.DepthHW {
				out.DepthHW = ds.DepthHW
			}
			out.Batches += ds.Batches
			out.BatchMsgs += ds.BatchMsgs
			for i := range out.BatchHist {
				out.BatchHist[i] += ds.BatchHist[i]
			}
		}
	}
	return out
}

func (c *ipcCounters) stats() IPCStats {
	return IPCStats{
		Sends:      c.sends,
		SlowPath:   c.slowPath,
		WakesSaved: c.wakesSaved,
		Stalls:     c.stalls,
		DepthHW:    c.depthHW,
		Batches:    c.batches,
		BatchMsgs:  c.batchMsgs,
		BatchHist:  c.batchHist,
	}
}
