package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: got[%d]=%d", i, v)
		}
	}
}

func TestHeapPropertySorted(t *testing.T) {
	// Property: any set of scheduled times is executed in nondecreasing order.
	f := func(times []int16) bool {
		s := New(2)
		var ran []Time
		for _, ti := range times {
			at := Time(int64(ti) + 40000) // keep nonnegative
			s.At(at, func() { ran = append(ran, s.Now()) })
		}
		s.Drain()
		return sort.SliceIsSorted(ran, func(i, j int) bool { return ran[i] < ran[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(100, func() { ran++ })
	s.At(200, func() { ran++ })
	s.RunUntil(150)
	if ran != 1 {
		t.Fatalf("ran=%d, want 1", ran)
	}
	if s.Now() != 150 {
		t.Fatalf("now=%v, want 150", s.Now())
	}
	s.RunUntil(300)
	if ran != 2 {
		t.Fatalf("ran=%d, want 2", ran)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		s.At(50, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %v, want clamped to 100", s.Now())
			}
		})
	})
	s.Drain()
}

func TestMachineCycles(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "amd", 12, 1, 1_900_000_000)
	if m.NumCores() != 12 {
		t.Fatalf("cores=%d", m.NumCores())
	}
	// 1.9e9 cycles at 1.9 GHz is one second.
	if d := m.Cycles(1_900_000_000); d != Second {
		t.Fatalf("Cycles = %v, want 1s", d)
	}
	if got := len(m.Threads()); got != 12 {
		t.Fatalf("threads=%d, want 12", got)
	}
}

func TestProcChargesAdvanceThread(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000) // 1 GHz: 1 cycle = 1 ns
	var handled int
	p := NewProc(m.Thread(0, 0), "worker", HandlerFunc(func(ctx *Context, msg Message) {
		handled++
		ctx.Charge(1000)
	}), ProcConfig{})
	p.Deliver("job")
	s.Drain()
	if handled != 1 {
		t.Fatalf("handled=%d", handled)
	}
	if p.Thread().BusyTotal() != 1000 {
		t.Fatalf("busy=%v, want 1000ns", p.Thread().BusyTotal())
	}
	if p.Stats().TotalCharged != 1000 {
		t.Fatalf("charged=%d", p.Stats().TotalCharged)
	}
}

func TestProcSerializesDispatches(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	var starts []Time
	p := NewProc(m.Thread(0, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(100)
	}), ProcConfig{})
	// Deliver 3 messages at distinct times while the proc is busy.
	s.At(0, func() { p.Deliver(1); starts = append(starts, s.Now()) })
	s.At(10, func() { p.Deliver(2) })
	s.At(20, func() { p.Deliver(3) })
	s.Drain()
	// msg1 runs 0-100; msgs 2,3 arrive during it and run 100-300 in one or
	// two batched dispatches; total busy must be 300ns.
	if p.Thread().BusyTotal() != 300 {
		t.Fatalf("busy=%v, want 300", p.Thread().BusyTotal())
	}
	if p.Stats().Messages != 3 {
		t.Fatalf("messages=%d", p.Stats().Messages)
	}
}

func TestSendReleasedAtDispatchEnd(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 2, 1, 1_000_000_000)
	var recvAt Time
	dst := NewProc(m.Thread(1, 0), "dst", HandlerFunc(func(ctx *Context, msg Message) {
		recvAt = s.Now()
	}), ProcConfig{})
	src := NewProc(m.Thread(0, 0), "src", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(500)
		ctx.Send(dst, "hi")
	}), ProcConfig{})
	src.Deliver("go")
	s.Drain()
	if recvAt != 500 {
		t.Fatalf("message received at %v, want 500 (end of sender dispatch)", recvAt)
	}
}

func TestHyperthreadPenalty(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "xeon", 1, 2, 1_000_000_000)
	m.HTPenalty = 2.0
	busy := func(th *HWThread, name string) *Proc {
		return NewProc(th, name, HandlerFunc(func(ctx *Context, msg Message) {
			ctx.Charge(1000)
		}), ProcConfig{})
	}
	a := busy(m.Thread(0, 0), "a")
	b := busy(m.Thread(0, 1), "b")
	a.Deliver("x")
	s.RunUntil(1) // a starts at 0 with idle sibling: runs 1000ns unpenalized
	b.Deliver("y")
	s.Drain()
	// b started while a was busy: 1000 cycles * 2.0 = 2000ns.
	if got := b.Thread().BusyTotal(); got != 2000 {
		t.Fatalf("sibling-penalized busy=%v, want 2000", got)
	}
	if got := a.Thread().BusyTotal(); got != 1000 {
		t.Fatalf("unpenalized busy=%v, want 1000", got)
	}
}

func TestCrashDropsMessagesAndNotifies(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	var crashes int
	s.OnCrash(func(p *Proc, cause error) { crashes++ })
	p := NewProc(m.Thread(0, 0), "victim", HandlerFunc(func(ctx *Context, msg Message) {}), ProcConfig{})
	p.Kill()
	if !p.Dead() {
		t.Fatal("proc not dead after Kill")
	}
	if crashes != 1 {
		t.Fatalf("crash notifications=%d", crashes)
	}
	p.Deliver("late")
	s.Drain()
	if p.Stats().Dropped != 1 {
		t.Fatalf("dropped=%d, want 1", p.Stats().Dropped)
	}
	if p.CrashCause() != ErrKilled {
		t.Fatalf("cause=%v", p.CrashCause())
	}
	// Killing twice is a no-op.
	p.Kill()
	if crashes != 1 {
		t.Fatalf("double-kill notified twice")
	}
}

func TestTimerFireAndCancel(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	var fired []string
	var cancel *Timer
	p := NewProc(m.Thread(0, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		switch v := msg.(type) {
		case string:
			switch v {
			case "arm":
				ctx.TimerAfter(100, "t1")
				cancel = ctx.TimerAfter(200, "t2")
			case "t1", "t2":
				fired = append(fired, v)
			}
		}
	}), ProcConfig{})
	p.Deliver("arm")
	s.RunUntil(150)
	cancel.Stop()
	s.Drain()
	if len(fired) != 1 || fired[0] != "t1" {
		t.Fatalf("fired=%v, want [t1]", fired)
	}
	if cancel.Fired() {
		t.Fatal("cancelled timer reported fired")
	}
}

func TestWakeAndHaltKernelCost(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	p := NewProc(m.Thread(0, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(100)
	}), ProcConfig{WakeCycles: 50, HaltCycles: 30})
	p.Deliver("x")
	s.Drain()
	st := p.Stats()
	if st.CyclesByCat[CostKernel] != 80 {
		t.Fatalf("kernel cycles=%d, want 80", st.CyclesByCat[CostKernel])
	}
	if st.CyclesByCat[CostProcessing] != 100 {
		t.Fatalf("processing cycles=%d, want 100", st.CyclesByCat[CostProcessing])
	}
	if st.Halts != 1 {
		t.Fatalf("halts=%d", st.Halts)
	}
	// Thread busy = wake 50 + work 100 + halt 30.
	if got := p.Thread().BusyTotal(); got != 180 {
		t.Fatalf("busy=%v, want 180", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) (Time, uint64, uint64) {
		s := New(seed)
		m := NewMachine(s, "m", 2, 1, 1_000_000_000)
		rng := rand.New(rand.NewSource(7))
		var pa, pb *Proc
		pa = NewProc(m.Thread(0, 0), "a", HandlerFunc(func(ctx *Context, msg Message) {
			ctx.Charge(int64(rng.Intn(500) + 1))
			if n := msg.(int); n > 0 {
				ctx.Send(pb, n-1)
			}
		}), ProcConfig{})
		pb = NewProc(m.Thread(1, 0), "b", HandlerFunc(func(ctx *Context, msg Message) {
			ctx.Charge(int64(rng.Intn(500) + 1))
			if n := msg.(int); n > 0 {
				ctx.Send(pa, n-1)
			}
		}), ProcConfig{})
		pa.Deliver(200)
		s.Drain()
		return s.Now(), s.EventsRun(), pa.Stats().Messages + pb.Stats().Messages
	}
	t1, e1, m1 := run(42)
	t2, e2, m2 := run(42)
	if t1 != t2 || e1 != e2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, e1, m1, t2, e2, m2)
	}
	if m1 != 201 {
		t.Fatalf("ping-pong message count=%d, want 201", m1)
	}
}

func TestASLRSeedDiffersAcrossIncarnations(t *testing.T) {
	s := New(99)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	h := HandlerFunc(func(ctx *Context, msg Message) {})
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		p := NewProc(m.Thread(0, 0), "replica", h, ProcConfig{})
		if seen[p.ASLRSeed] {
			t.Fatalf("duplicate ASLR seed on incarnation %d", i)
		}
		seen[p.ASLRSeed] = true
		p.Kill()
	}
}

func TestUtilizationHelper(t *testing.T) {
	if u := Utilization(0, 500, 0, 1000); u != 0.5 {
		t.Fatalf("u=%v", u)
	}
	if u := Utilization(0, 2000, 0, 1000); u != 1.0 {
		t.Fatalf("clamped u=%v", u)
	}
	if u := Utilization(0, 10, 10, 10); u != 0 {
		t.Fatalf("empty window u=%v", u)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		1500:            "1.500µs",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String()=%q, want %q", int64(in), got, want)
		}
	}
}

func TestHangStopsDrainingButStaysAlive(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	handled := 0
	p := NewProc(m.Thread(0, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		handled++
	}), ProcConfig{})
	p.Deliver("a")
	s.Drain()
	if handled != 1 {
		t.Fatalf("handled=%d", handled)
	}
	p.Hang()
	if p.Dead() || !p.Hung() {
		t.Fatalf("hang state: dead=%v hung=%v", p.Dead(), p.Hung())
	}
	if p.FailedAt() != s.Now() {
		t.Fatalf("FailedAt=%v, want %v", p.FailedAt(), s.Now())
	}
	for i := 0; i < 5; i++ {
		p.Deliver(i)
	}
	s.RunFor(Millisecond)
	if handled != 1 {
		t.Fatalf("hung process handled messages: %d", handled)
	}
	// Deliveries are accepted (not dropped): the inbox piles up.
	if p.QueueLen() != 5 {
		t.Fatalf("queue=%d, want 5", p.QueueLen())
	}
	if p.Stats().Dropped != 0 {
		t.Fatalf("dropped=%d", p.Stats().Dropped)
	}
}

func TestHeartbeatAnsweredOnlyWhenDraining(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 2, 1, 1_000_000_000)
	var acks []HeartbeatAck
	wd := NewProc(m.Thread(0, 0), "wd", HandlerFunc(func(ctx *Context, msg Message) {
		if a, ok := msg.(HeartbeatAck); ok {
			acks = append(acks, a)
		}
	}), ProcConfig{})
	handled := 0
	p := NewProc(m.Thread(1, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		handled++
	}), ProcConfig{})
	p.Deliver(HeartbeatPing{ReplyTo: wd, Seq: 7})
	s.Drain()
	if len(acks) != 1 || acks[0].From != p || acks[0].Seq != 7 {
		t.Fatalf("acks=%v", acks)
	}
	if handled != 0 {
		t.Fatal("heartbeat leaked into the process handler")
	}
	// Hung: ping queues but is never answered.
	p.Hang()
	p.Deliver(HeartbeatPing{ReplyTo: wd, Seq: 8})
	s.RunFor(Millisecond)
	if len(acks) != 1 {
		t.Fatalf("hung process answered a heartbeat: %v", acks)
	}
	// Dead: ping dropped, never answered.
	p.Kill()
	p.Deliver(HeartbeatPing{ReplyTo: wd, Seq: 9})
	s.RunFor(Millisecond)
	if len(acks) != 1 {
		t.Fatalf("dead process answered a heartbeat: %v", acks)
	}
}

func TestDropRateInjectsLoss(t *testing.T) {
	s := New(42)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	handled := 0
	p := NewProc(m.Thread(0, 0), "w", HandlerFunc(func(ctx *Context, msg Message) {
		handled++
	}), ProcConfig{})
	p.SetDropRate(0.5)
	const n = 2000
	for i := 0; i < n; i++ {
		p.Deliver(i)
	}
	s.Drain()
	inj := p.Stats().DropInjected
	if handled+int(inj) != n {
		t.Fatalf("handled=%d dropped=%d, want sum %d", handled, inj, n)
	}
	if inj < n/3 || inj > 2*n/3 {
		t.Fatalf("injected drops=%d out of statistical range for rate 0.5", inj)
	}
	p.SetDropRate(0)
	p.Deliver("x")
	s.Drain()
	if p.Stats().DropInjected != inj {
		t.Fatal("drops injected after rate reset")
	}
}

func TestRespawnRevivesEndpointInPlace(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	handled := 0
	p := NewProc(m.Thread(0, 0), "svc", HandlerFunc(func(ctx *Context, msg Message) {
		handled++
	}), ProcConfig{})
	seed1 := p.ASLRSeed
	s.RunUntil(Microsecond)
	p.Hang()
	p.Deliver("stuck")
	p.Crash(ErrKilled)
	hangT := p.FailedAt()
	if hangT == 0 {
		t.Fatal("no failure time recorded")
	}
	p.Respawn()
	if p.Dead() || p.Hung() {
		t.Fatalf("respawn left proc dead=%v hung=%v", p.Dead(), p.Hung())
	}
	if p.CrashCause() != nil || p.FailedAt() != 0 {
		t.Fatalf("fault state survived respawn: %v %v", p.CrashCause(), p.FailedAt())
	}
	if p.QueueLen() != 0 {
		t.Fatalf("inbox survived respawn: %d", p.QueueLen())
	}
	if p.ASLRSeed == seed1 {
		t.Fatal("respawn reused the address-space layout")
	}
	// The same endpoint keeps working for clients that held the reference.
	p.Deliver("hello")
	s.Drain()
	if handled != 1 {
		t.Fatalf("respawned proc handled=%d", handled)
	}
	// Respawn on a live process is a no-op.
	seed2 := p.ASLRSeed
	p.Respawn()
	if p.ASLRSeed != seed2 {
		t.Fatal("Respawn touched a live process")
	}
}

// ---- eventQueue edge cases: far-heap migration, bucket boundaries ----

// TestQueueFarWheelMigrationBoundary exercises push/pop exactly around the
// wheel horizon: events one tick inside, exactly at, and one tick beyond
// the horizon, plus occupancy-word boundaries, must still pop in (at, seq)
// order.
func TestQueueFarWheelMigrationBoundary(t *testing.T) {
	var q eventQueue
	horizon := Time(wheelBuckets << bucketShift)
	times := []Time{
		horizon - 1,                       // last wheel bucket
		horizon,                           // first far bucket
		horizon + 1,                       // far
		(3 * wheelBuckets) << bucketShift, // far beyond several horizons
		0,                                 // bucket 0
		63<<bucketShift + 1,               // last slot of the first occupancy word
		64 << bucketShift,                 // first slot of the second occupancy word
		(wheelBuckets - 1) << bucketShift, // last wheel slot
	}
	for i, at := range times {
		q.push(event{at: at, seq: uint64(i + 1)})
	}
	var got []Time
	prevSeq := uint64(0)
	prev := Time(-1)
	for !q.empty() {
		e, ok := q.pop(0, false)
		if !ok {
			t.Fatal("pop failed with events pending")
		}
		if e.at < prev {
			t.Fatalf("popped %v after %v", e.at, prev)
		}
		if e.at == prev && e.seq < prevSeq {
			t.Fatalf("same-time events out of seq order: %d after %d", e.seq, prevSeq)
		}
		prev, prevSeq = e.at, e.seq
		got = append(got, e.at)
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d events, want %d", len(got), len(times))
	}
}

// TestQueueSameTickSeqAcrossMigration pins FIFO order within one timestamp
// when some of the tied events migrate from the far heap and others are
// inserted directly into the wheel after the horizon jumped.
func TestQueueSameTickSeqAcrossMigration(t *testing.T) {
	var q eventQueue
	tick := Time((wheelBuckets + 3) << bucketShift) // beyond the initial horizon
	q.push(event{at: tick, seq: 1})                 // far
	q.push(event{at: 100, seq: 2})                  // wheel
	q.push(event{at: tick, seq: 3})                 // far
	if e, _ := q.pop(0, false); e.seq != 2 {
		t.Fatalf("first pop seq = %d, want 2", e.seq)
	}
	// The wheel is now empty; the next operations jump the horizon to tick's
	// bucket and migrate both far events. A direct insertion at the same
	// tick afterwards must still pop in seq order behind them.
	if at, ok := q.peekTime(); !ok || at != tick {
		t.Fatalf("peekTime = %v/%v, want %v", at, ok, tick)
	}
	if e, _ := q.pop(0, false); e.seq != 1 {
		t.Fatalf("second pop seq = %d, want 1", e.seq)
	}
	q.push(event{at: tick, seq: 4}) // now within the horizon: wheel-direct
	if e, _ := q.pop(0, false); e.seq != 3 {
		t.Fatalf("third pop seq = %d, want 3", e.seq)
	}
	if e, _ := q.pop(0, false); e.seq != 4 {
		t.Fatalf("fourth pop seq = %d, want 4", e.seq)
	}
}

// TestQueueInsertBeforeCurParks covers the wheelInsert clamp: a bounded pop
// can advance cur past bucket(now) without running anything; an insertion
// for an earlier time must park in the current bucket and still pop first.
func TestQueueInsertBeforeCurParks(t *testing.T) {
	var q eventQueue
	q.push(event{at: 5 << bucketShift, seq: 1})
	if _, ok := q.pop(10, true); ok {
		t.Fatal("bounded pop returned an event past its limit")
	}
	q.push(event{at: 3, seq: 2}) // bucket(3) = 0 < cur = 5: parks in bucket 5
	if at, ok := q.peekTime(); !ok || at != 3 {
		t.Fatalf("peekTime = %v/%v, want 3", at, ok)
	}
	if e, _ := q.pop(0, false); e.seq != 2 {
		t.Fatalf("first pop seq = %d, want the parked earlier event", e.seq)
	}
	if e, _ := q.pop(0, false); e.seq != 1 {
		t.Fatalf("second pop seq = %d, want 1", e.seq)
	}
}

// TestQueuePeekTimeMatchesPop drives a randomized workload and checks that
// peekTime always announces exactly the timestamp the next pop returns.
func TestQueuePeekTimeMatchesPop(t *testing.T) {
	var q eventQueue
	rng := rand.New(rand.NewSource(3))
	if _, ok := q.peekTime(); ok {
		t.Fatal("peekTime on an empty queue reported an event")
	}
	span := int64(wheelBuckets) << (bucketShift + 2) // 4 horizons worth
	for i := 0; i < 500; i++ {
		q.push(event{at: Time(rng.Int63n(span)), seq: uint64(i + 1)})
	}
	prev := Time(-1)
	for n := 0; !q.empty(); n++ {
		at, ok := q.peekTime()
		if !ok {
			t.Fatal("peekTime reported empty with events pending")
		}
		e, _ := q.pop(0, false)
		if e.at != at {
			t.Fatalf("peekTime = %v but pop returned %v", at, e.at)
		}
		if e.at < prev {
			t.Fatalf("popped %v after %v", e.at, prev)
		}
		prev = e.at
		// Interleave pushes to re-create wheel/far mixtures mid-drain.
		if n%7 == 0 {
			q.push(event{at: prev + Time(rng.Int63n(span)), seq: uint64(1000 + n)})
		}
	}
	if _, ok := q.peekTime(); ok {
		t.Fatal("peekTime on a drained queue reported an event")
	}
}
