package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// pdesPair builds a control-plane simulator with PDES enabled and two
// one-core machines (two domains).
func pdesPair(workers int) (*Simulator, *Machine, *Machine) {
	s := New(1)
	s.EnablePDES(workers)
	a := NewMachine(s, "a", 1, 1, 1_000_000_000)
	b := NewMachine(s, "b", 1, 1, 1_000_000_000)
	return s, a, b
}

func TestPDESMachinesGetOwnDomains(t *testing.T) {
	s, a, b := pdesPair(2)
	if a.Sim() == s || b.Sim() == s || a.Sim() == b.Sim() {
		t.Fatal("PDES machines must each live in their own domain shard")
	}
	if !s.PDESEnabled() {
		t.Fatal("PDESEnabled() = false on the control plane")
	}
	if a.Sim().PDESEnabled() {
		t.Fatal("PDESEnabled() = true on a domain shard")
	}
}

func TestPDESDomainEventsAndClocks(t *testing.T) {
	s, a, b := pdesPair(2)
	var ranA, ranB Time
	a.Sim().At(10*Microsecond, func() { ranA = a.Sim().Now() })
	b.Sim().At(20*Microsecond, func() { ranB = b.Sim().Now() })
	s.RunUntil(Millisecond)
	if ranA != 10*Microsecond || ranB != 20*Microsecond {
		t.Fatalf("domain events ran at %v/%v, want 10µs/20µs", ranA, ranB)
	}
	if s.Now() != Millisecond || a.Sim().Now() != Millisecond || b.Sim().Now() != Millisecond {
		t.Fatalf("clocks = %v/%v/%v, want all at 1ms", s.Now(), a.Sim().Now(), b.Sim().Now())
	}
	if s.EventsRun() != 2 {
		t.Fatalf("EventsRun = %d, want 2 (summed across domains)", s.EventsRun())
	}
}

// TestPDESControlRunsAtBarrier pins the barrier protocol: a control-plane
// event splits windows, runs with every domain clock advanced to its time,
// and precedes same-time domain events.
func TestPDESControlRunsAtBarrier(t *testing.T) {
	s, a, b := pdesPair(1)
	s.RegisterLookahead(Microsecond)
	var order []string
	a.Sim().At(10*Microsecond, func() { order = append(order, "a@10") })
	s.At(20*Microsecond, func() {
		if got := b.Sim().Now(); got != 20*Microsecond {
			t.Errorf("domain clock at control time = %v, want 20µs", got)
		}
		order = append(order, "ctrl@20")
	})
	b.Sim().At(20*Microsecond, func() { order = append(order, "b@20") })
	a.Sim().At(30*Microsecond, func() { order = append(order, "a@30") })
	s.RunUntil(Millisecond)
	want := "[a@10 ctrl@20 b@20 a@30]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("execution order %v, want %v", got, want)
	}
	barriers, horizon, doms := s.PDESStats()
	if barriers == 0 || horizon != Microsecond || len(doms) != 2 {
		t.Fatalf("PDESStats = %d barriers, %v horizon, %d domains", barriers, horizon, len(doms))
	}
}

// TestPDESBarrierFlushDelivery models a cross-domain channel by hand: a
// mailbox written by domain a's events and flushed into domain b at
// barriers, with the registered lookahead keeping the delivery outside the
// sending window.
func TestPDESBarrierFlushDelivery(t *testing.T) {
	const la = 5 * Microsecond
	for _, workers := range []int{1, 2} {
		s, a, b := pdesPair(workers)
		s.RegisterLookahead(la)
		type entry struct {
			at  Time
			val int
		}
		var mbox []entry
		var got []entry
		s.RegisterBarrierFlush(func() {
			for _, e := range mbox {
				e := e
				b.Sim().At(e.at, func() { got = append(got, entry{b.Sim().Now(), e.val}) })
			}
			mbox = mbox[:0]
		})
		for i := 0; i < 5; i++ {
			i := i
			at := Time(i+1) * 7 * Microsecond
			a.Sim().At(at, func() {
				mbox = append(mbox, entry{at: a.Sim().Now() + la, val: i})
			})
		}
		s.RunUntil(Millisecond)
		if len(got) != 5 {
			t.Fatalf("workers=%d: delivered %d cross-domain messages, want 5", workers, len(got))
		}
		for i, e := range got {
			if e.val != i || e.at != Time(i+1)*7*Microsecond+la {
				t.Fatalf("workers=%d: delivery %d = %+v", workers, i, e)
			}
		}
	}
}

// TestPDESWorkerCountInvariance runs an RNG-consuming workload per domain
// and checks the draws are identical under 1 and 2 workers: domain streams
// are seeded at machine creation, never by execution interleaving.
func TestPDESWorkerCountInvariance(t *testing.T) {
	run := func(workers int) string {
		s := New(99)
		s.EnablePDES(workers)
		machines := make([]*Machine, 4)
		for i := range machines {
			machines[i] = NewMachine(s, fmt.Sprintf("m%d", i), 1, 1, 1_000_000_000)
		}
		draws := make([][]int64, len(machines))
		var mu sync.Mutex
		for i, m := range machines {
			i, m := i, m
			for k := 0; k < 8; k++ {
				m.Sim().At(Time(k+1)*Microsecond, func() {
					v := m.Sim().Rand().Int63()
					mu.Lock()
					draws[i] = append(draws[i], v)
					mu.Unlock()
				})
			}
		}
		s.RunUntil(Millisecond)
		return fmt.Sprint(draws)
	}
	if a, b := run(1), run(2); a != b {
		t.Fatalf("per-domain RNG draws differ across worker counts:\n%s\nvs\n%s", a, b)
	}
}

func TestPDESIdleJumpSkipsGaps(t *testing.T) {
	s, a, _ := pdesPair(1)
	s.RegisterLookahead(Microsecond)
	// Two events a full second apart: the window start jumps to the second
	// event instead of crawling there one lookahead at a time.
	a.Sim().At(Microsecond, func() {})
	a.Sim().At(Second, func() {})
	s.RunUntil(2 * Second)
	barriers, _, _ := s.PDESStats()
	if barriers > 10 {
		t.Fatalf("%d barriers for two events: idle jump is not working", barriers)
	}
}

func TestPDESDrain(t *testing.T) {
	s, a, b := pdesPair(2)
	// With no registered lookahead the two domains share one unbounded
	// window, so their events run on concurrent workers: count atomically.
	var ran atomic.Int32
	a.Sim().At(Microsecond, func() { ran.Add(1) })
	b.Sim().At(2*Second, func() { ran.Add(1) })
	if s.Idle() {
		t.Fatal("Idle with domain events pending")
	}
	s.Drain()
	if ran.Load() != 2 {
		t.Fatalf("Drain ran %d events, want 2", ran.Load())
	}
	if !s.Idle() {
		t.Fatal("not Idle after Drain")
	}
}

func TestPDESLookaheadRegistration(t *testing.T) {
	s, _, _ := pdesPair(1)
	s.RegisterLookahead(5 * Microsecond)
	s.RegisterLookahead(2 * Microsecond) // minimum wins
	s.RegisterLookahead(3 * Microsecond) // ignored: larger than current min
	if _, horizon, _ := s.PDESStats(); horizon != 2*Microsecond {
		t.Fatalf("horizon = %v, want 2µs", horizon)
	}
	s.RegisterLookahead(0) // clamped to 1ns, never 0 (a 0 horizon deadlocks)
	if _, horizon, _ := s.PDESStats(); horizon != Nanosecond {
		t.Fatalf("horizon after 0 registration = %v, want 1ns", horizon)
	}
}

func TestPDESGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := New(1)
	NewMachine(s, "m", 1, 1, 1_000_000_000)
	expectPanic("EnablePDES after machines", func() { s.EnablePDES(2) })

	s2, a, _ := pdesPair(2)
	expectPanic("EnablePDES twice", func() { s2.EnablePDES(2) })
	expectPanic("Step on PDES control plane", func() { s2.Step() })
	expectPanic("NewMachine on a shard", func() {
		NewMachine(a.Sim(), "nested", 1, 1, 1_000_000_000)
	})
}

// TestPDESStatsOffMode: the sequential mode reports no PDES stats, so
// metric emission stays byte-identical to pre-PDES builds.
func TestPDESStatsOffMode(t *testing.T) {
	s := New(1)
	if _, _, doms := s.PDESStats(); doms != nil {
		t.Fatal("PDESStats reported domains without EnablePDES")
	}
	s.RegisterLookahead(Microsecond)  // no-op, must not panic
	s.RegisterBarrierFlush(func() {}) // no-op, must not panic
}
