// Package sim implements the deterministic discrete-event machine model that
// the NEaT reproduction runs on. It stands in for the paper's physical
// testbed (NewtOS on a 12-core AMD Opteron and an 8-core/16-thread Xeon):
// simulated machines expose cores and hardware threads, processes pinned to
// threads consume cycles, and all cross-process communication is message
// passing with explicit cost, exactly mirroring the paper's execution model.
//
// The simulation is single-threaded and fully deterministic: events are
// ordered by (time, sequence) and all randomness flows from one seeded
// source. Running the same experiment twice yields identical results.
// An opt-in conservative parallel mode (EnablePDES; see pdes.go) splits the
// run into per-machine event-queue domains advanced in lookahead-bounded
// windows; it trades the sequential mode's global event order for
// machine-local determinism (per-domain RNG streams and sequence counters),
// so its results are reproducible across any worker count but not
// byte-identical to the sequential mode.
//
// The event queue is a calendar queue (timing wheel): near-future events
// live in fixed time buckets whose slot storage is recycled run after run,
// and far-future events (retransmission timeouts, TIME_WAIT expiry) fall
// back to a binary heap until the wheel horizon reaches them. The hottest
// schedule sites use closure-free event kinds so that steady-state
// scheduling performs no allocation at all.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"time"
)

// Time is a simulated timestamp or duration in nanoseconds since the start
// of the simulation.
type Time int64

// Common durations, usable as Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulated Time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// EventHandler receives closure-free scheduled events. Objects on the hot
// path (links, NICs) implement it once and pass a tag identifying the
// pending work, so scheduling does not allocate.
type EventHandler interface {
	OnEvent(tag uint64)
}

type evKind uint8

const (
	evFunc         evKind = iota // run fn()
	evDispatch                   // run proc.runDispatch()
	evDeliver                    // proc.Deliver(msg)
	evHandler                    // h.OnEvent(tag)
	evDeliverBatch               // deliver every message of a msgBatch to proc
)

// event is one queue entry. The kind discriminates which payload fields are
// live; keeping them unioned in one flat struct lets bucket slots be reused
// without any per-event allocation.
type event struct {
	at   Time
	seq  uint64
	kind evKind
	fn   func()
	proc *Proc
	msg  Message
	h    EventHandler
	tag  uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). It holds only
// far-future events that do not fit the wheel horizon.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release references for GC
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Calendar-queue geometry: 1024 buckets of 4096 ns each give a ~4.2 ms
// horizon, comfortably wider than the typical inter-event gap (cycle
// charges, wire latencies, IPC wakeups are all well under a millisecond)
// while keeping the wheel small enough to live inline in the Simulator.
const (
	wheelBits    = 10
	wheelBuckets = 1 << wheelBits
	wheelMask    = wheelBuckets - 1
	bucketShift  = 12 // 4096 ns per bucket
)

// eventQueue is a calendar queue. Events whose bucket index falls within
// [cur, cur+wheelBuckets) live in the wheel; later events wait in the far
// heap and migrate in as cur advances. Invariant: every far event's bucket
// index is >= cur, and at any moment the earliest event overall is in the
// wheel whenever the wheel is non-empty.
type eventQueue struct {
	// wheel slot storage is recycled: bucket slices keep their capacity
	// after being drained, acting as a free list for event slots.
	wheel [wheelBuckets][]event
	// occ is an occupancy bitmap over wheel slots for O(1) next-bucket
	// scans.
	occ   [wheelBuckets / 64]uint64
	cur   int64 // monotonic bucket counter: wheel horizon is [cur, cur+wheelBuckets)
	count int   // events resident in the wheel
	far   eventHeap
}

func (q *eventQueue) empty() bool { return q.count == 0 && len(q.far) == 0 }

func (q *eventQueue) len() int { return q.count + len(q.far) }

func (q *eventQueue) push(e event) {
	if int64(e.at)>>bucketShift >= q.cur+wheelBuckets {
		q.far.push(e)
		return
	}
	q.wheelInsert(e)
}

func (q *eventQueue) wheelInsert(e event) {
	bi := int64(e.at) >> bucketShift
	if bi < q.cur {
		// A bounded pop may advance cur past bucket(now) without running
		// the event it peeked at. Insertions before cur park in the first
		// bucket: the per-bucket (at, seq) scan still pops them first, and
		// cur cannot advance past a non-empty current bucket.
		bi = q.cur
	}
	slot := bi & wheelMask
	q.wheel[slot] = append(q.wheel[slot], e)
	q.occ[slot>>6] |= 1 << uint(slot&63)
	q.count++
}

// migrate pulls far-heap events that now fall inside the wheel horizon.
// It must run whenever cur advances, or a later wheel insertion could be
// popped ahead of an earlier far event.
func (q *eventQueue) migrate() {
	for len(q.far) > 0 && int64(q.far[0].at)>>bucketShift < q.cur+wheelBuckets {
		q.wheelInsert(q.far.pop())
	}
}

// firstSlot returns the first occupied wheel slot at or after cur,
// wrapping. Only valid when count > 0.
func (q *eventQueue) firstSlot() int64 {
	start := q.cur & wheelMask
	w := start >> 6
	if b := q.occ[w] &^ ((1 << uint(start&63)) - 1); b != 0 {
		return w<<6 | int64(bits.TrailingZeros64(b))
	}
	for i := int64(1); i <= int64(len(q.occ)); i++ {
		wi := (w + i) & (int64(len(q.occ)) - 1)
		if q.occ[wi] != 0 {
			return wi<<6 | int64(bits.TrailingZeros64(q.occ[wi]))
		}
	}
	panic("sim: occupancy bitmap empty with count > 0")
}

// peekPos advances the horizon to the first occupied bucket and returns the
// position and (at, seq) key of the earliest event without removing it. The
// horizon advance and far-heap migration it performs are order-neutral, so a
// peek whose event is not taken (the merged pop chose the timer wheel, or a
// bounded run stopped) leaves behavior unchanged.
func (q *eventQueue) peekPos() (slot int64, idx int, at Time, seq uint64, ok bool) {
	if q.count == 0 {
		if len(q.far) == 0 {
			return 0, 0, 0, 0, false
		}
		// The wheel drained with far events pending: jump the horizon to
		// the earliest far bucket and migrate.
		q.cur = int64(q.far[0].at) >> bucketShift
		q.migrate()
	}
	slot = q.firstSlot()
	// Advance cur to the bucket index the slot represents, then migrate:
	// far events that the advance brought inside the horizon land in
	// buckets strictly after this one, preserving order.
	q.cur += (slot - q.cur) & wheelMask
	q.migrate()

	b := q.wheel[slot]
	min := 0
	for i := 1; i < len(b); i++ {
		if b[i].at < b[min].at || (b[i].at == b[min].at && b[i].seq < b[min].seq) {
			min = i
		}
	}
	return slot, min, b[min].at, b[min].seq, true
}

// take removes and returns the event a peekPos located.
func (q *eventQueue) take(slot int64, idx int) event {
	b := q.wheel[slot]
	e := b[idx]
	last := len(b) - 1
	b[idx] = b[last]
	b[last] = event{} // release references for GC; slot capacity is reused
	q.wheel[slot] = b[:last]
	if last == 0 {
		q.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	q.count--
	return e
}

// pop removes and returns the earliest event. If bounded, events after
// limit are left in place and ok is false.
func (q *eventQueue) pop(limit Time, bounded bool) (e event, ok bool) {
	slot, idx, at, _, ok := q.peekPos()
	if !ok || (bounded && at > limit) {
		return event{}, false
	}
	return q.take(slot, idx), true
}

// peekTime returns the timestamp of the earliest pending event without
// mutating the queue. The wheel invariant (the earliest event overall is in
// the wheel whenever the wheel is non-empty, and earlier buckets hold
// strictly earlier times than later ones) makes the first occupied bucket's
// minimum the global minimum. The PDES coordinator uses this at every
// barrier to pick the next window start.
func (q *eventQueue) peekTime() (Time, bool) {
	if q.count == 0 {
		if len(q.far) == 0 {
			return 0, false
		}
		return q.far[0].at, true
	}
	b := q.wheel[q.firstSlot()]
	min := b[0].at
	for i := 1; i < len(b); i++ {
		if b[i].at < min {
			min = b[i].at
		}
	}
	return min, true
}

// Tracer observes the message path of a simulation. It is the hook behind
// the opt-in observability layer: when a tracer is installed, every process
// dispatch reports per-message queueing and processing times, and
// non-process hardware hops (wire serialization, NIC RX queues) report
// spans. With no tracer installed (the default) every trace point is a
// single nil check — zero allocation, zero behavioural impact.
//
// A Tracer is per-Simulator state, never global: parallel experiment
// sweeps run one simulator (and one tracer) per sweep point, which keeps
// concurrent runs byte-identical to sequential ones.
type Tracer interface {
	// OnMessage reports one handled message on process p: it arrived in the
	// inbox at arrivedAt, its handler started at start (queueing time is
	// start-arrivedAt) and finished at end (processing time is end-start).
	OnMessage(p *Proc, msg Message, arrivedAt, start, end Time)
	// OnSpan reports one traversal of a non-process hop (wire direction,
	// NIC RX queue) identified by hop: time spent queued behind other work
	// and time spent being processed/serialized.
	OnSpan(hop string, queued, processed Time)
}

// Simulator owns the virtual clock and the event queue. All machines,
// processes, NICs and links of one experiment hang off a single Simulator.
type Simulator struct {
	now      Time
	q        eventQueue
	seq      uint64
	rng      *rand.Rand
	machines []*Machine
	procs    []*Proc

	// procsMu guards the procs registry: in PDES mode replica rebuilds
	// create processes from inside concurrent domain windows.
	procsMu sync.Mutex

	// PDES mode (see pdes.go). pdes is the shared coordinator state when
	// conservative parallel simulation is enabled; parent points from a
	// domain shard back to the control-plane simulator (nil on the root and
	// in the default sequential mode); domID indexes the shard.
	pdes   *pdesCoord
	parent *Simulator
	domID  int

	crashWatchers []func(*Proc, error)

	// tracer is the installed observability hook, or nil (the default:
	// every trace point reduces to one nil check).
	tracer Tracer

	// batchFree recycles msgBatch carriers (and their message slices) so
	// steady-state batched delivery allocates nothing.
	batchFree []*msgBatch
	// tfFree recycles timerFire boxes between arm and firing for the same
	// reason. Boxes that die in flight (crash, drop injection) are simply
	// collected; the freelist only ever shrinks by reuse.
	tfFree []*timerFire

	// tw holds armed timers outside the event queue (see timerwheel.go);
	// timerBackend selects between it and the legacy per-event path.
	tw           timerWheel
	timerBackend TimerBackend

	// Stats
	eventsRun uint64
	// ipc holds the IPC ring instrumentation (see ipcstats.go); per-domain
	// in PDES mode, aggregated by IPCStats.
	ipc ipcCounters
}

// msgBatch carries the messages of one batched delivery. The simulation is
// single-threaded, so a plain freelist suffices. dsts, when non-empty, is
// parallel to msgs and carries a per-message destination (the flush-vector
// form: one simulator event delivering to several inboxes); empty means
// every message goes to the event's proc (the single-destination form used
// by DeliverBatchAt).
type msgBatch struct {
	msgs []Message
	dsts []*Proc
}

func (s *Simulator) getBatch() *msgBatch {
	if n := len(s.batchFree); n > 0 {
		b := s.batchFree[n-1]
		s.batchFree = s.batchFree[:n-1]
		return b
	}
	return &msgBatch{}
}

// New returns a Simulator whose randomness is derived from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsRun reports how many events have executed so far. On a PDES
// control-plane simulator it totals across all domains; call it only at a
// barrier (i.e. from driver code between Run calls).
func (s *Simulator) EventsRun() uint64 {
	n := s.eventsRun
	if s.pdes != nil && s.parent == nil {
		for _, d := range s.pdes.domains {
			n += d.eventsRun
		}
	}
	return n
}

// rootSim returns the control-plane simulator: s itself unless s is a PDES
// domain shard.
func (s *Simulator) rootSim() *Simulator {
	if s.parent != nil {
		return s.parent
	}
	return s
}

// SetTracer installs (or, with nil, removes) the observability hook.
// Install it before the simulation runs: messages already sitting in
// process inboxes at install time carry no arrival stamp, and their
// dispatch batches are skipped by the per-message trace.
func (s *Simulator) SetTracer(t Tracer) {
	s.tracer = t
	if s.pdes != nil && s.parent == nil {
		// Domains share the control plane's tracer. A tracer is shared
		// mutable state, so the coordinator serializes domain execution
		// (workers=1) whenever one is installed.
		for _, d := range s.pdes.domains {
			d.tracer = t
		}
	}
}

// Tracer returns the installed observability hook, or nil.
func (s *Simulator) Tracer() Tracer { return s.tracer }

// schedule clamps t to now, stamps the sequence number and enqueues.
func (s *Simulator) schedule(t Time, e event) {
	if s.pdes != nil && s.parent == nil && s.pdes.inWindow.Load() {
		// Domain code must never schedule on the control plane while
		// windows execute concurrently: the control queue is only touched
		// at barriers. Cross-domain influence goes through the wire.
		panic("sim: control-plane schedule during a parallel window")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	s.q.push(e)
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the model; it is clamped to "now" to keep the clock monotonic.
func (s *Simulator) At(t Time, fn func()) {
	s.schedule(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// AtEvent schedules h.OnEvent(tag) at absolute time t without allocating.
func (s *Simulator) AtEvent(t Time, h EventHandler, tag uint64) {
	s.schedule(t, event{kind: evHandler, h: h, tag: tag})
}

// AfterEvent schedules h.OnEvent(tag) d nanoseconds from now.
func (s *Simulator) AfterEvent(d Time, h EventHandler, tag uint64) {
	s.AtEvent(s.now+d, h, tag)
}

// DeliverAt delivers msg to p at absolute time t without allocating a
// closure. It is the scheduled-delivery primitive behind NIC interrupts
// and delayed IPC.
func (s *Simulator) DeliverAt(t Time, p *Proc, msg Message) {
	s.schedule(t, event{kind: evDeliver, proc: p, msg: msg})
}

// DeliverBatchAt delivers every message of msgs to p at absolute time t as
// one queue entry: one sequence number, one calendar-queue insertion, one
// pop. The messages land in p's inbox in slice order, exactly as if each had
// been scheduled by consecutive DeliverAt calls (consecutive sequence
// numbers admit no interleaving event between them), and the batch counts as
// len(msgs) events in EventsRun so observable statistics do not depend on
// how deliveries were grouped. msgs is copied; the caller keeps ownership of
// the slice.
func (s *Simulator) DeliverBatchAt(t Time, p *Proc, msgs []Message) {
	switch len(msgs) {
	case 0:
		return
	case 1:
		s.DeliverAt(t, p, msgs[0])
		return
	}
	b := s.getBatch()
	b.msgs = append(b.msgs[:0], msgs...)
	s.schedule(t, event{kind: evDeliverBatch, proc: p, msg: b})
}

// run executes one popped event.
func (s *Simulator) run(e event) {
	s.now = e.at
	s.eventsRun++
	switch e.kind {
	case evFunc:
		e.fn()
	case evDispatch:
		e.proc.runDispatch()
	case evDeliver:
		e.proc.Deliver(e.msg)
	case evHandler:
		e.h.OnEvent(e.tag)
	case evDeliverBatch:
		b := e.msg.(*msgBatch)
		// A batch of N messages is N logical deliveries: count it as N
		// events so EventsRun (and everything reported from it) is
		// independent of how deliveries were grouped.
		s.eventsRun += uint64(len(b.msgs)) - 1
		if len(b.dsts) > 0 {
			// Flush-vector form: deliveries land in slice order, exactly
			// the order the sends were buffered, whatever their targets.
			for i, m := range b.msgs {
				b.dsts[i].Deliver(m)
				b.msgs[i] = nil
				b.dsts[i] = nil
			}
			b.dsts = b.dsts[:0]
		} else {
			for i, m := range b.msgs {
				e.proc.Deliver(m)
				b.msgs[i] = nil
			}
		}
		b.msgs = b.msgs[:0]
		s.batchFree = append(s.batchFree, b)
	}
}

// Idle reports whether no events remain. On a PDES control plane this
// inspects every domain queue (flushing cross-domain mailboxes first) and
// must only be called at a barrier.
func (s *Simulator) Idle() bool {
	if s.pdes != nil && s.parent == nil {
		if !s.idleLocal() {
			return false
		}
		s.pdes.flush()
		for _, d := range s.pdes.domains {
			if !d.idleLocal() {
				return false
			}
		}
		return true
	}
	return s.idleLocal()
}

// Step executes the next event, if any, and reports whether one ran.
// Not supported on a PDES control plane (there is no single next event);
// use RunUntil/RunFor/Drain there.
func (s *Simulator) Step() bool {
	if s.pdes != nil && s.parent == nil {
		panic("sim: Step is not supported in PDES mode; use RunUntil")
	}
	return s.stepNext(0, false)
}

// RunUntil executes events until the clock reaches t or the queue drains.
// The clock is left at t even if the queue drained earlier. On a PDES
// control plane this advances all domains in lookahead-bounded windows.
func (s *Simulator) RunUntil(t Time) {
	if s.pdes != nil && s.parent == nil {
		s.runPDES(t, false)
		return
	}
	for s.stepNext(t, true) {
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Drain runs until no events remain. Experiments with self-sustaining load
// (timers that always re-arm) must use RunUntil instead.
func (s *Simulator) Drain() {
	if s.pdes != nil && s.parent == nil {
		s.runPDES(0, true)
		return
	}
	for s.Step() {
	}
}

// OnCrash registers fn to be called whenever any process crashes.
// The NEaT recovery manager uses this as its failure detector (the paper's
// microkernel notifies the recovery server of process faults the same way).
func (s *Simulator) OnCrash(fn func(*Proc, error)) {
	s.crashWatchers = append(s.crashWatchers, fn)
}

func (s *Simulator) notifyCrash(p *Proc, cause error) {
	for _, fn := range s.crashWatchers {
		fn(p, cause)
	}
}

// Machines returns all machines registered with the simulator. A PDES
// domain shard reports only its own machine; the control plane reports all.
func (s *Simulator) Machines() []*Machine { return s.machines }

// Procs returns all processes ever created, including dead ones. The
// registry lives on the control-plane simulator; in PDES mode call this only
// at a barrier.
func (s *Simulator) Procs() []*Proc { return s.rootSim().procs }

// addProc registers p with the control-plane simulator. Replica rebuilds can
// create processes from inside concurrent domain windows, hence the lock.
func (s *Simulator) addProc(p *Proc) {
	r := s.rootSim()
	r.procsMu.Lock()
	r.procs = append(r.procs, p)
	r.procsMu.Unlock()
}
