// Package sim implements the deterministic discrete-event machine model that
// the NEaT reproduction runs on. It stands in for the paper's physical
// testbed (NewtOS on a 12-core AMD Opteron and an 8-core/16-thread Xeon):
// simulated machines expose cores and hardware threads, processes pinned to
// threads consume cycles, and all cross-process communication is message
// passing with explicit cost, exactly mirroring the paper's execution model.
//
// The simulation is single-threaded and fully deterministic: events are
// ordered by (time, sequence) and all randomness flows from one seeded
// source. Running the same experiment twice yields identical results.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a simulated timestamp or duration in nanoseconds since the start
// of the simulation.
type Time int64

// Common durations, usable as Time values.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulated Time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release fn for GC
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Simulator owns the virtual clock and the event queue. All machines,
// processes, NICs and links of one experiment hang off a single Simulator.
type Simulator struct {
	now      Time
	heap     eventHeap
	seq      uint64
	rng      *rand.Rand
	machines []*Machine
	procs    []*Proc

	crashWatchers []func(*Proc, error)

	// Stats
	eventsRun uint64
}

// New returns a Simulator whose randomness is derived from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsRun reports how many events have executed so far.
func (s *Simulator) EventsRun() uint64 { return s.eventsRun }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the model; it is clamped to "now" to keep the clock monotonic.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Idle reports whether no events remain.
func (s *Simulator) Idle() bool { return len(s.heap) == 0 }

// Step executes the next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap.pop()
	s.now = e.at
	s.eventsRun++
	e.fn()
	return true
}

// RunUntil executes events until the clock reaches t or the queue drains.
// The clock is left at t even if the queue drained earlier.
func (s *Simulator) RunUntil(t Time) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		e := s.heap.pop()
		s.now = e.at
		s.eventsRun++
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d Time) { s.RunUntil(s.now + d) }

// Drain runs until no events remain. Experiments with self-sustaining load
// (timers that always re-arm) must use RunUntil instead.
func (s *Simulator) Drain() {
	for s.Step() {
	}
}

// OnCrash registers fn to be called whenever any process crashes.
// The NEaT recovery manager uses this as its failure detector (the paper's
// microkernel notifies the recovery server of process faults the same way).
func (s *Simulator) OnCrash(fn func(*Proc, error)) {
	s.crashWatchers = append(s.crashWatchers, fn)
}

func (s *Simulator) notifyCrash(p *Proc, cause error) {
	for _, fn := range s.crashWatchers {
		fn(p, cause)
	}
}

// Machines returns all machines registered with the simulator.
func (s *Simulator) Machines() []*Machine { return s.machines }

// Procs returns all processes ever created, including dead ones.
func (s *Simulator) Procs() []*Proc { return s.procs }
