package sim

import "math/bits"

// Hierarchical timer wheel.
//
// Armed timers (TCP retransmission, delayed ACK, TIME_WAIT expiry, keepalive
// guards) used to be ordinary event-queue entries: one calendar-queue event
// per armed timer. At millions of connections that is millions of pending
// simulator events, almost all of which are stopped or re-armed before they
// fire. The wheel moves timers out of the event queue entirely: they live in
// a three-level hierarchy of slot arrays beside the queue, and the
// simulator's pop merges the two sources by (time, sequence), so a run is
// byte-identical to the per-event scheduling it replaced while the event
// queue's pending count stays independent of the number of armed timers.
//
// Determinism. Every arm records the (deadline, sequence) the legacy path
// would have stamped on its delivery event — a run of timer arms flushed by
// one dispatch to the same deadline shares one sequence number, exactly like
// a batched delivery — plus a wheel-global arm order for same-(at, seq)
// ties. The merged pop compares the queue head and the wheel head
// lexicographically by (at, seq); within the wheel, entries order by
// (at, seq, ord). A popped entry is delivered through Proc.Deliver like any
// scheduled message, so drop injection, dead-process drops and trace stamps
// behave identically to the event path.
//
// Stops are lazy: Timer.Stop only bumps the generation, and the entry stays
// resident until its deadline, when it pops and is dropped as stale by the
// dispatch unwrap — the same observable lifecycle a stale in-flight event
// had. Pending counts therefore include stale entries, just as the event
// queue's length did.
//
// Geometry. Level 0 shares the calendar queue's 4096 ns bucket and spans
// ~4.2 ms; each higher level covers twSlots slots of the one below (L1
// ~4.3 s — every RTO and TIME_WAIT in practice — and L2 ~73 min). Entries
// beyond the L2 horizon wait in a small overflow heap. Cascades are lazy:
// a higher-level slot is scattered downward only when the wheel position
// crosses into it while searching for the next deadline.
const (
	twLevels   = 3
	twSlotBits = wheelBits // 1024 slots per level, matching the event queue
	twSlots    = 1 << twSlotBits
	twSlotMask = twSlots - 1
)

// twEntry is one armed timer. Entries are stored by value in slot slices
// (whose capacity is recycled like calendar-queue buckets), so arming in
// steady state allocates nothing.
type twEntry struct {
	at   Time
	seq  uint64 // sequence the legacy event path would have used
	ord  uint64 // wheel-global arm order, tie-break within one (at, seq)
	t    *Timer
	gen  uint64
	msg  Message
	proc *Proc
}

func twLess(a, b *twEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.ord < b.ord
}

// twHeap is a binary min-heap by (at, seq, ord) holding entries beyond the
// L2 horizon.
type twHeap []twEntry

func (h *twHeap) push(e twEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !twLess(&(*h)[i], &(*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *twHeap) pop() twEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = twEntry{} // release references for GC
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && twLess(&old[l], &old[smallest]) {
			smallest = l
		}
		if r < n && twLess(&old[r], &old[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
}

type timerWheel struct {
	slots  [twLevels][twSlots][]twEntry
	occ    [twLevels][twSlots / 64]uint64
	counts [twLevels]int
	cur    int64 // monotonic L0 bucket counter; L0 horizon is [cur, cur+twSlots)
	far    twHeap
	armOrd uint64

	// Cached minimum: valid between a peek and the pop (or insert of a
	// smaller entry) that follows it, so the merged pop's wheel peek is O(1)
	// on the hot path. The cached min always resides in an L0 slot.
	minValid bool
	min      twEntry
	minSlot  int64
	minIdx   int

	cascaded uint64 // entries scattered down a level by lazy cascade
	fired    uint64 // entries popped for delivery (including stale ones)
}

func (w *timerWheel) pending() int {
	return w.counts[0] + w.counts[1] + w.counts[2] + len(w.far)
}

func (w *timerWheel) empty() bool { return w.pending() == 0 }

// insert arms one entry. seq is shared by every arm of one flushed run;
// the wheel-global arm order disambiguates within it.
func (w *timerWheel) insert(at Time, seq uint64, t *Timer, gen uint64, msg Message, p *Proc) {
	e := twEntry{at: at, seq: seq, ord: w.armOrd, t: t, gen: gen, msg: msg, proc: p}
	w.armOrd++
	lvl, slot := w.place(e)
	if w.minValid && lvl == 0 && twLess(&e, &w.min) {
		w.min = e
		w.minSlot = slot
		w.minIdx = len(w.slots[0][slot]) - 1
	}
}

// place routes an entry to the innermost level whose horizon contains it.
// Entries whose bucket already passed park in the current L0 slot: the
// per-slot (at, seq, ord) scan still pops them first, and the position never
// advances past a non-empty current slot.
func (w *timerWheel) place(e twEntry) (level int, slot int64) {
	b0 := int64(e.at) >> bucketShift
	if b0 < w.cur {
		b0 = w.cur
	}
	if b0-w.cur < twSlots {
		s := b0 & twSlotMask
		w.put(0, s, e)
		return 0, s
	}
	b1 := b0 >> twSlotBits
	if b1-w.cur>>twSlotBits < twSlots {
		s := b1 & twSlotMask
		w.put(1, s, e)
		return 1, s
	}
	b2 := b1 >> twSlotBits
	if b2-w.cur>>(2*twSlotBits) < twSlots {
		s := b2 & twSlotMask
		w.put(2, s, e)
		return 2, s
	}
	w.far.push(e)
	return -1, 0
}

func (w *timerWheel) put(level int, slot int64, e twEntry) {
	w.slots[level][slot] = append(w.slots[level][slot], e)
	w.occ[level][slot>>6] |= 1 << uint(slot&63)
	w.counts[level]++
}

// firstSlot returns the first occupied slot of level at or after from,
// wrapping. Only valid when the level is non-empty.
func (w *timerWheel) firstSlot(level int, from int64) int64 {
	start := from & twSlotMask
	occ := &w.occ[level]
	wd := start >> 6
	if b := occ[wd] &^ ((1 << uint(start&63)) - 1); b != 0 {
		return wd<<6 | int64(bits.TrailingZeros64(b))
	}
	for i := int64(1); i <= int64(len(occ)); i++ {
		wi := (wd + i) & (int64(len(occ)) - 1)
		if occ[wi] != 0 {
			return wi<<6 | int64(bits.TrailingZeros64(occ[wi]))
		}
	}
	panic("sim: timer wheel occupancy bitmap empty with entries resident")
}

// cascade scatters one higher-level slot down through place. Runs when the
// wheel position enters the slot's range, so every entry lands at or after
// the current position.
func (w *timerWheel) cascade(level int, slot int64) {
	b := w.slots[level][slot]
	if len(b) == 0 {
		return
	}
	w.slots[level][slot] = b[:0]
	w.occ[level][slot>>6] &^= 1 << uint(slot&63)
	w.counts[level] -= len(b)
	w.cascaded += uint64(len(b))
	for i := range b {
		w.place(b[i])
		b[i] = twEntry{} // release references; slot capacity is recycled
	}
}

// migrateFar pulls overflow entries that now fit the L2 horizon.
func (w *timerWheel) migrateFar() {
	cur2 := w.cur >> (2 * twSlotBits)
	for len(w.far) > 0 && int64(w.far[0].at)>>(bucketShift+2*twSlotBits)-cur2 < twSlots {
		w.place(w.far.pop())
	}
}

// settle advances the wheel position — cascading higher-level slots as their
// boundaries are crossed — until the earliest resident entry sits in the
// current L0 slot. Reports false when the wheel holds nothing at all.
func (w *timerWheel) settle() bool {
	for {
		if w.counts[0] > 0 {
			slot := w.firstSlot(0, w.cur)
			d := (slot - w.cur) & twSlotMask
			boundary := (w.cur>>twSlotBits + 1) << twSlotBits
			if w.cur+d < boundary || (w.counts[1] == 0 && w.counts[2] == 0 && len(w.far) == 0) {
				// No cascade can produce an earlier entry: advance and stop.
				w.cur += d
				return true
			}
		} else if w.counts[1] == 0 && w.counts[2] == 0 {
			if len(w.far) == 0 {
				return false
			}
			// Everything resident is beyond the L2 horizon: jump straight to
			// the earliest overflow entry and pull the heap in.
			w.cur = int64(w.far[0].at) >> bucketShift
			w.migrateFar()
			continue
		}
		// Advance to the next L1 boundary and cascade the slot it opens.
		w.cur = (w.cur>>twSlotBits + 1) << twSlotBits
		cur1 := w.cur >> twSlotBits
		if cur1&twSlotMask == 0 {
			// Crossed an L2 boundary too: open its slot first, so its
			// entries are in place before the L1 slot scatters.
			w.cascade(2, (cur1>>twSlotBits)&twSlotMask)
			w.migrateFar()
		}
		w.cascade(1, cur1&twSlotMask)
	}
}

// peek returns the earliest pending (at, seq) without removing it, settling
// cascades as needed. The result is cached until the next pop.
func (w *timerWheel) peek() (Time, uint64, bool) {
	if w.minValid {
		return w.min.at, w.min.seq, true
	}
	if !w.settle() {
		return 0, 0, false
	}
	slot := w.cur & twSlotMask // settle leaves cur at the first occupied slot
	b := w.slots[0][slot]
	min := 0
	for i := 1; i < len(b); i++ {
		if twLess(&b[i], &b[min]) {
			min = i
		}
	}
	w.minValid = true
	w.min = b[min]
	w.minSlot = slot
	w.minIdx = min
	return w.min.at, w.min.seq, true
}

// pop removes and returns the earliest entry. Callers peek first; pop
// re-peeks only defensively.
func (w *timerWheel) pop() twEntry {
	if !w.minValid {
		if _, _, ok := w.peek(); !ok {
			panic("sim: pop from an empty timer wheel")
		}
	}
	slot, idx := w.minSlot, w.minIdx
	b := w.slots[0][slot]
	e := b[idx]
	last := len(b) - 1
	b[idx] = b[last]
	b[last] = twEntry{} // release references; slot capacity is reused
	w.slots[0][slot] = b[:last]
	if last == 0 {
		w.occ[0][slot>>6] &^= 1 << uint(slot&63)
	}
	w.counts[0]--
	w.minValid = false
	w.fired++
	return e
}

// TimerBackend selects how armed timers are scheduled.
type TimerBackend uint8

const (
	// TimerBackendWheel (the default) keeps armed timers in the
	// hierarchical timer wheel: pending event-queue entries stay
	// independent of the number of armed timers.
	TimerBackendWheel TimerBackend = iota
	// TimerBackendEvent is the legacy reference path: every arm schedules
	// one delivery event on the calendar queue. Byte-identical to the wheel
	// by construction; kept as the oracle for the equivalence property test
	// and the conn-scale sweep's backend axis.
	TimerBackendEvent
)

// SetTimerBackend selects the timer scheduling backend. Call it before the
// simulation runs; switching while timers are armed is unsupported. In PDES
// mode call it before machines are created so domains inherit the choice.
func (s *Simulator) SetTimerBackend(b TimerBackend) {
	s.timerBackend = b
	if s.pdes != nil && s.parent == nil {
		for _, d := range s.pdes.domains {
			d.timerBackend = b
		}
	}
}

// armTimers inserts one flushed run of timer arms sharing a single sequence
// number, mirroring what a batched delivery of the boxed firings would have
// consumed on the legacy path.
func (s *Simulator) armTimers(at Time, arms []outMsg) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	for k := range arms {
		o := &arms[k]
		s.tw.insert(at, s.seq, o.timer, o.tgen, o.msg, o.dst)
	}
}

// fireTimer delivers one popped wheel entry. The boxed firing is built only
// now, from the freelist, and travels through Proc.Deliver exactly like a
// scheduled delivery event: drop injection, dead-process drops, tracer
// arrival stamps and wake scheduling all behave identically.
func (s *Simulator) fireTimer(e twEntry) {
	s.now = e.at
	s.eventsRun++
	e.proc.Deliver(s.newTimerFire(e.t, e.gen, e.msg))
}

// stepNext runs the earliest of the event-queue head and the timer-wheel
// head, merged by (at, seq). If bounded, work after limit is left in place
// and false is returned.
func (s *Simulator) stepNext(limit Time, bounded bool) bool {
	wa, wseq, wok := s.tw.peek()
	if !wok {
		e, ok := s.q.pop(limit, bounded)
		if !ok {
			return false
		}
		s.run(e)
		return true
	}
	slot, idx, qa, qseq, qok := s.q.peekPos()
	if qok && (qa < wa || (qa == wa && qseq < wseq)) {
		if bounded && qa > limit {
			return false
		}
		s.run(s.q.take(slot, idx))
		return true
	}
	if bounded && wa > limit {
		return false
	}
	s.fireTimer(s.tw.pop())
	return true
}

// peekTime returns the earliest pending timestamp across the event queue and
// the timer wheel. The PDES coordinator uses this at every barrier.
func (s *Simulator) peekTime() (Time, bool) {
	qt, qok := s.q.peekTime()
	wt, _, wok := s.tw.peek()
	switch {
	case qok && wok:
		if wt < qt {
			return wt, true
		}
		return qt, true
	case qok:
		return qt, true
	case wok:
		return wt, true
	}
	return 0, false
}

// idleLocal reports whether this simulator (queue and wheel) has no pending
// work of its own.
func (s *Simulator) idleLocal() bool { return s.q.empty() && s.tw.empty() }

// TimerStats reports timer-wheel counters: entries resident (including
// lazily-stopped ones awaiting their deadline), entries scattered down a
// level by cascades, and entries popped for delivery. On a PDES control
// plane it totals across all domains; call it only at a barrier.
type TimerStats struct {
	Pending  int
	Cascades uint64
	Fired    uint64
}

// TimerStats returns the simulator's timer-wheel counters.
func (s *Simulator) TimerStats() TimerStats {
	st := TimerStats{Pending: s.tw.pending(), Cascades: s.tw.cascaded, Fired: s.tw.fired}
	if s.pdes != nil && s.parent == nil {
		for _, d := range s.pdes.domains {
			st.Pending += d.tw.pending()
			st.Cascades += d.tw.cascaded
			st.Fired += d.tw.fired
		}
	}
	return st
}

// PendingEvents returns the number of events resident in the calendar
// queue(s), excluding wheel-resident timers. With the wheel backend this
// stays independent of the number of armed timers — the conn-scale
// experiments assert exactly that. On a PDES control plane it totals across
// all domains; call it only at a barrier.
func (s *Simulator) PendingEvents() int {
	n := s.q.len()
	if s.pdes != nil && s.parent == nil {
		for _, d := range s.pdes.domains {
			n += d.q.len()
		}
	}
	return n
}
