package sim

import (
	"errors"
	"fmt"
)

// Message is anything delivered to a process. Concrete message types are
// defined by the packages that own each protocol (packets, socket
// operations, timer ticks, ...). Handlers type-switch on them.
type Message interface{}

// Handler is the event-driven body of a process. A process is strictly
// single-threaded: HandleMessage is invoked for one message at a time and
// must charge the cycles it consumed through the Context. This is the
// paper's isolation principle in code — the only way a handler can affect
// the outside world is by sending messages.
type Handler interface {
	HandleMessage(ctx *Context, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx *Context, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(ctx *Context, msg Message) { f(ctx, msg) }

// BatchHandler is an optional extension of Handler. When a process's
// handler implements it, the dispatch loop brackets every inbox batch with
// BeginBatch/EndBatch: the handler learns it is draining a vector of n
// messages in one activation and can hoist per-activation state (its
// Context, connection lookups) out of the per-message path. The bracket is
// bookkeeping only — implementations must not charge cycles or send
// messages from it, so a handler with or without the extension produces a
// byte-identical simulation.
type BatchHandler interface {
	BeginBatch(ctx *Context, n int)
	EndBatch()
}

// CostCategory classifies where a process's cycles went. The driver CPU
// breakdown of the paper's Table 2 (kernel suspend/resume vs polling vs
// useful processing) is reconstructed from these.
type CostCategory int

const (
	// CostProcessing is useful protocol/application work.
	CostProcessing CostCategory = iota
	// CostPolling is time spent checking empty queues.
	CostPolling
	// CostKernel is time spent suspending/resuming in the (micro)kernel,
	// i.e. the MWAIT halt/wake path.
	CostKernel
	numCostCategories
)

// String names the category.
func (c CostCategory) String() string {
	switch c {
	case CostProcessing:
		return "processing"
	case CostPolling:
		return "polling"
	case CostKernel:
		return "kernel"
	default:
		return fmt.Sprintf("CostCategory(%d)", int(c))
	}
}

type procState int

const (
	procIdle procState = iota
	procScheduled
	procRunning
	procDead
)

// ErrKilled is the crash cause recorded when a process is killed
// administratively (e.g. by the fault injector or a scale-down command).
var ErrKilled = errors.New("sim: process killed")

// ProcStats aggregates a process's activity.
type ProcStats struct {
	Dispatches   uint64
	Messages     uint64
	Dropped      uint64 // messages dropped because the process was dead
	DropInjected uint64 // messages dropped by fault injection (SetDropRate)
	Halts        uint64 // idle transitions (MWAIT entries)
	CostNs       [numCostCategories]Time
	CyclesByCat  [numCostCategories]int64
	TotalCharged int64 // cycles
}

// HeartbeatPing probes a process for liveness. It is answered by the
// dispatch loop itself, never by the process handler: a process acks a
// ping if and only if it is actually draining its inbox, so both crashes
// (deliveries dropped) and livelocks (deliveries queued but never
// dispatched) manifest identically to the prober as missing acks.
type HeartbeatPing struct {
	ReplyTo *Proc
	Seq     uint64
}

// HeartbeatAck is the dispatch loop's reply to a HeartbeatPing.
type HeartbeatAck struct {
	From *Proc
	Seq  uint64
}

// HeartbeatCycles is the cost of answering one heartbeat probe (an inbox
// pop plus a channel write — no protocol work).
const HeartbeatCycles = 120

// BusyNs returns total execution time across all categories.
func (st *ProcStats) BusyNs() Time {
	var t Time
	for _, v := range st.CostNs {
		t += v
	}
	return t
}

// Proc is an isolated, single-threaded, event-driven process pinned to a
// hardware thread — the unit of isolation in NEaT. Processes communicate
// exclusively by message passing; a crash destroys the process and all of
// its private state, and a replacement must be spawned from scratch.
type Proc struct {
	sim     *Simulator
	machine *Machine
	thread  *HWThread
	handler Handler
	// bh is handler's BatchHandler extension, asserted once at creation so
	// the dispatch loop pays a nil check instead of a type assertion.
	bh BatchHandler

	// Name identifies the process in logs and topology dumps, e.g.
	// "neat2.tcp" or "nicdrv0".
	Name string

	// Component is a coarse label ("tcp", "ip", "driver", ...) used by the
	// fault injector to weight fault sites by component.
	Component string

	// WakeCycles is the cost of waking the process out of a halt (the
	// MWAIT monitor write path). Charged as CostKernel.
	WakeCycles int64
	// HaltCycles is the cost of entering a halt (MWAIT is privileged, so
	// on NewtOS this enters the kernel). Charged as CostKernel.
	HaltCycles int64
	// DispatchCycles is the fixed per-message dispatch overhead.
	DispatchCycles int64

	// ASLRSeed is the randomized address-space layout token of this
	// incarnation. Every (re)spawn draws a fresh one, modelling the
	// re-randomization security property of §3.8.
	ASLRSeed uint64

	inbox []Message
	spare []Message // recycled inbox storage for the next dispatch
	// inboxAt/spareAt are arrival stamps parallel to inbox/spare. They are
	// populated only while a Tracer is installed (both stay nil otherwise),
	// and their storage is recycled exactly like the inbox double-buffer, so
	// tracing off costs nothing and tracing on costs no steady-state
	// allocation.
	inboxAt      []Time
	spareAt      []Time
	state        procState
	charged      int64
	chargedByCat [numCostCategories]int64
	pending      []outMsg // sends buffered during the current dispatch
	// groups is the flush's open-vector scratch space, recycled like
	// pending so vectorized release allocates nothing in steady state.
	groups []flushGroup
	// ctx is the reusable handler context. Handlers receive *Context, which
	// would force a heap allocation per dispatch if the Context lived on the
	// runDispatch stack; hoisting it into the Proc makes the escape free.
	ctx      Context
	stats    ProcStats
	crashed  error
	hung     bool    // livelocked: alive but never drains the inbox
	dropRate float64 // injected IPC loss probability per delivery
	failedAt Time    // when the current fault (crash or hang) began
}

type outMsg struct {
	dst   *Proc
	msg   Message
	delay Time
	// cyclesAt is the sender's charged-cycle position when the owning
	// message finished processing; the send is released at that point of
	// the dispatch, not at the end of the whole batch.
	cyclesAt int64
	// timer, when non-nil, marks a timer arm for the wheel backend: msg is
	// the unboxed user message and tgen the generation to fire with. The
	// flush routes these to the timer wheel instead of the event queue.
	timer *Timer
	tgen  uint64
}

// flushGroup tracks one open delivery vector while the dispatch flush
// walks the pending sends: every non-timer send sharing a release time
// joins the same simulator event, whatever its destination. A nil batch
// marks a group closed by a timer barrier (its event is already scheduled;
// later sends at the same time must sequence after the firing).
type flushGroup struct {
	at Time
	b  *msgBatch
}

// ProcConfig carries optional knobs for NewProc.
type ProcConfig struct {
	Component      string
	WakeCycles     int64
	HaltCycles     int64
	DispatchCycles int64
}

// NewProc creates a process pinned to thread t. The zero ProcConfig yields
// modest default overheads.
func NewProc(t *HWThread, name string, h Handler, cfg ProcConfig) *Proc {
	m := t.Machine()
	p := &Proc{
		sim:            m.sim,
		machine:        m,
		thread:         t,
		handler:        h,
		Name:           name,
		Component:      cfg.Component,
		WakeCycles:     cfg.WakeCycles,
		HaltCycles:     cfg.HaltCycles,
		DispatchCycles: cfg.DispatchCycles,
		ASLRSeed:       m.sim.rng.Uint64(),
	}
	if p.Component == "" {
		p.Component = name
	}
	p.bh, _ = h.(BatchHandler)
	p.ctx = Context{Sim: m.sim, Proc: p}
	t.procs = append(t.procs, p)
	m.sim.addProc(p)
	return p
}

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Machine returns the machine the process runs on.
func (p *Proc) Machine() *Machine { return p.machine }

// Thread returns the hardware thread the process is pinned to.
func (p *Proc) Thread() *HWThread { return p.thread }

// Stats returns a snapshot of the process statistics.
func (p *Proc) Stats() ProcStats { return p.stats }

// Dead reports whether the process has crashed or been killed.
func (p *Proc) Dead() bool { return p.state == procDead }

// Hung reports whether the process is livelocked (alive but not draining
// its inbox).
func (p *Proc) Hung() bool { return p.hung }

// FailedAt returns the simulated time the current fault (crash or hang)
// began, for measuring failure-detection latency. Zero if never failed.
func (p *Proc) FailedAt() Time { return p.failedAt }

// Hang livelocks the process: it stays alive — deliveries are accepted
// and queue up — but its dispatch loop never runs again, so nothing is
// processed and no heartbeat is answered. This is the fault the crash
// oracle cannot see: only an active prober (a watchdog counting missed
// heartbeats) can detect it. A hung process can still be crashed/killed.
func (p *Proc) Hang() {
	if p.state == procDead || p.hung {
		return
	}
	p.hung = true
	p.failedAt = p.sim.now
}

// SetDropRate injects IPC message loss: every delivery to this process is
// dropped with probability rate (drawn from the simulation's deterministic
// random source). Lost deliveries include heartbeat probes, so a lossy
// channel can cause spurious failure detections — the imperfect-detector
// scenario. Rate 0 disables injection.
func (p *Proc) SetDropRate(rate float64) { p.dropRate = rate }

// Respawn revives a dead process in place as a fresh incarnation: empty
// inbox, fresh ASLR seed, cleared fault state. The Proc object — its IPC
// endpoint — stays the same, modelling the reincarnation-server contract
// for system services (NIC driver, SYSCALL server): clients keep their
// channel to the stable endpoint while the process behind it is replaced.
// Cumulative statistics survive; all in-flight state is gone.
func (p *Proc) Respawn() {
	if p.state != procDead {
		return
	}
	p.state = procIdle
	p.crashed = nil
	p.hung = false
	p.dropRate = 0
	p.failedAt = 0
	p.inbox = nil
	p.inboxAt = nil
	p.pending = p.pending[:0]
	p.ASLRSeed = p.sim.rng.Uint64()
}

// QueueLen returns the number of undelivered messages in the inbox.
func (p *Proc) QueueLen() int { return len(p.inbox) }

// Deliver places msg in the process inbox at the current simulated time and
// wakes the process if it was halted. Messages to dead processes are
// dropped and counted, mirroring the NIC driver holding packets back from a
// crashed replica (§3.6).
func (p *Proc) Deliver(msg Message) {
	if p.state == procDead {
		p.stats.Dropped++
		return
	}
	if p.dropRate > 0 && p.sim.rng.Float64() < p.dropRate {
		p.stats.DropInjected++
		return
	}
	p.inbox = append(p.inbox, msg)
	if p.sim.tracer != nil {
		p.inboxAt = append(p.inboxAt, p.sim.now)
	}
	if p.state == procIdle && !p.hung {
		p.scheduleDispatch()
	}
}

// scheduleDispatch arranges the next dispatch on the pinned thread.
func (p *Proc) scheduleDispatch() {
	p.state = procScheduled
	start := p.sim.now
	if p.thread.freeAt > start {
		start = p.thread.freeAt
	}
	// Waking out of MWAIT costs kernel time before useful work starts.
	if p.WakeCycles > 0 {
		wake := p.machine.Cycles(p.WakeCycles)
		p.accountCost(CostKernel, p.WakeCycles, wake)
		p.thread.busyTotal += wake
		start += wake
	}
	p.sim.schedule(start, event{kind: evDispatch, proc: p})
}

// runDispatch drains the inbox, executing the handler for each message that
// was queued when the dispatch began. All sends are released when the
// dispatch's computed execution time elapses.
func (p *Proc) runDispatch() {
	if p.state != procScheduled {
		return // killed between scheduling and running
	}
	if p.hung {
		// Livelocked: the dispatch fires but drains nothing; queued
		// messages (including heartbeat probes) sit in the inbox forever.
		p.state = procIdle
		return
	}
	p.state = procRunning
	p.stats.Dispatches++

	t0 := p.sim.now
	// Double-buffer the inbox: messages arriving during the dispatch go to
	// the recycled spare slice, so steady state reallocates neither. The
	// arrival stamps rotate in lockstep when tracing is on.
	batch := p.inbox
	batchAt := p.inboxAt
	p.inbox = p.spare[:0]
	p.inboxAt = p.spareAt[:0]
	p.charged = 0
	for i := range p.chargedByCat {
		p.chargedByCat[i] = 0
	}
	// The hyperthreading stretch factor depends only on the dispatch start
	// time, so it can be computed up front; the per-message trace uses it
	// to place each handler's start/end inside the batch's wall time.
	factor := 1.0
	if p.thread.siblingBusy(t0) {
		factor = p.machine.HTPenalty
	}
	tr := p.sim.tracer
	// A tracer installed mid-run sees batches whose older messages carry no
	// arrival stamp; such mixed batches are skipped rather than mismatched.
	traced := tr != nil && len(batchAt) == len(batch)
	ctx := &p.ctx
	bracket := p.bh != nil && len(batch) > 0
	if bracket {
		p.bh.BeginBatch(ctx, len(batch))
	}
	for i, msg := range batch {
		if p.state == procDead {
			break
		}
		if tf, ok := msg.(*timerFire); ok {
			stale := tf.gen != tf.t.gen
			if !stale {
				tf.t.fired = true
			}
			msg = tf.msg
			// The box has served its one delivery; recycle it. Boxes that
			// never reach this point (crashed process, injected drop) simply
			// fall to the garbage collector.
			*tf = timerFire{}
			p.sim.tfFree = append(p.sim.tfFree, tf)
			if stale {
				continue // stopped or re-armed since this firing was scheduled
			}
		}
		if hb, ok := msg.(HeartbeatPing); ok {
			// Liveness probes are answered by the dispatch loop itself:
			// the ack certifies "this process is draining its inbox".
			// They are not part of the message path, so they are not traced.
			p.stats.Messages++
			p.charged += p.DispatchCycles + HeartbeatCycles
			p.chargedByCat[CostProcessing] += p.DispatchCycles + HeartbeatCycles
			p.pending = append(p.pending, outMsg{dst: hb.ReplyTo,
				msg: HeartbeatAck{From: p, Seq: hb.Seq}, cyclesAt: p.charged})
			continue
		}
		p.stats.Messages++
		chargedBefore := p.charged
		p.charged += p.DispatchCycles
		p.chargedByCat[CostProcessing] += p.DispatchCycles
		pendingStart := len(p.pending)
		p.handler.HandleMessage(ctx, msg)
		// Sends emitted while handling this message leave when the
		// message's processing completes, not when the batch ends.
		for j := pendingStart; j < len(p.pending); j++ {
			p.pending[j].cyclesAt = p.charged
		}
		if traced {
			start := t0 + Time(float64(p.machine.Cycles(chargedBefore))*factor)
			end := t0 + Time(float64(p.machine.Cycles(p.charged))*factor)
			tr.OnMessage(p, msg, batchAt[i], start, end)
		}
	}
	if bracket {
		p.bh.EndBatch()
	}
	for i := range batch {
		batch[i] = nil // drop message references before recycling
	}
	p.spare = batch[:0]
	p.spareAt = batchAt[:0]

	// Compute wall time of this dispatch: charged cycles at nominal
	// frequency, stretched if the sibling hyperthread is busy.
	dur := Time(float64(p.machine.Cycles(p.charged)) * factor)
	tEnd := t0 + dur
	p.thread.freeAt = tEnd
	p.thread.busyTotal += dur
	p.stats.TotalCharged += p.charged
	for cat := CostCategory(0); cat < numCostCategories; cat++ {
		cyc := p.chargedByCat[cat]
		if cyc == 0 {
			continue
		}
		p.stats.CyclesByCat[cat] += cyc
		p.stats.CostNs[cat] += Time(float64(p.machine.Cycles(cyc)) * factor)
	}

	// Release buffered sends at each message's completion point within the
	// dispatch. All sends sharing a release time — a burst of RX frames
	// forwarded to one replica, a TCP window's worth of segments to the IP
	// component, a syscall reply next to a driver doorbell — coalesce into
	// one delivery vector carried by a single simulator event, whatever
	// their destinations. The vector delivers in buffered order under the
	// sequence number of its first send, and every sequence number between
	// two sends of one flush belongs to this same flush, so the global
	// delivery order is exactly what per-send events would have produced:
	// batching changes the container, not the deliveries.
	pend := p.pending
	groups := p.groups[:0]
	for i := 0; i < len(pend); {
		out := &pend[i]
		at := t0 + Time(float64(p.machine.Cycles(out.cyclesAt))*factor) + out.delay
		if out.timer != nil {
			// A run of timer arms to one release time goes to the wheel
			// under a single shared sequence number — exactly the sequence
			// a batched delivery of the boxed firings would have consumed,
			// so merged pop order matches the legacy backend byte for byte.
			j := i + 1
			for j < len(pend) && pend[j].timer != nil {
				next := &pend[j]
				if t0+Time(float64(p.machine.Cycles(next.cyclesAt))*factor)+next.delay != at {
					break
				}
				j++
			}
			// Timer barrier: an open vector at this release time must close
			// before the run consumes its sequence number. Its event already
			// holds an earlier sequence — it delivers before the firing —
			// and sends buffered after this run must deliver after it.
			for gi := range groups {
				if groups[gi].b != nil && groups[gi].at == at {
					p.sim.noteIPCBatch(len(groups[gi].b.msgs))
					groups[gi].b = nil
				}
			}
			p.sim.armTimers(at, pend[i:j])
			for k := i; k < j; k++ {
				pend[k] = outMsg{} // drop references; the slice is recycled
			}
			i = j
			continue
		}
		var b *msgBatch
		for gi := range groups {
			if groups[gi].b != nil && groups[gi].at == at {
				b = groups[gi].b
				break
			}
		}
		if b == nil {
			b = p.sim.getBatch()
			// Scheduling at group creation fixes the vector's sequence
			// position; messages appended afterwards ride in the same event
			// (the batch is only read when the event pops, strictly after
			// this flush completes).
			p.sim.schedule(at, event{kind: evDeliverBatch, proc: out.dst, msg: b})
			groups = append(groups, flushGroup{at: at, b: b})
		}
		b.msgs = append(b.msgs, out.msg)
		b.dsts = append(b.dsts, out.dst)
		pend[i] = outMsg{}
		i++
	}
	for gi := range groups {
		if groups[gi].b != nil {
			p.sim.noteIPCBatch(len(groups[gi].b.msgs))
		}
		groups[gi] = flushGroup{}
	}
	p.groups = groups[:0]
	p.pending = p.pending[:0]

	if p.state == procDead {
		return
	}
	if len(p.inbox) > 0 && !p.hung {
		// More work arrived while running; go again back-to-back.
		p.state = procScheduled
		p.sim.schedule(tEnd, event{kind: evDispatch, proc: p})
		return
	}
	// Halt (enter MWAIT). The halt path costs kernel time.
	p.state = procIdle
	p.stats.Halts++
	if p.HaltCycles > 0 {
		halt := p.machine.Cycles(p.HaltCycles)
		p.accountCost(CostKernel, p.HaltCycles, halt)
		p.thread.freeAt = tEnd + halt
		p.thread.busyTotal += halt
	}
}

func (p *Proc) accountCost(cat CostCategory, cycles int64, d Time) {
	p.stats.CyclesByCat[cat] += cycles
	p.stats.CostNs[cat] += d
	p.stats.TotalCharged += cycles
}

// Crash terminates the process with the given cause: its inbox and all
// private state are lost, future deliveries are dropped, and crash watchers
// (the recovery manager) are notified.
func (p *Proc) Crash(cause error) {
	if p.state == procDead {
		return
	}
	p.state = procDead
	p.crashed = cause
	if !p.hung {
		// A hung process killed by a watchdog keeps its hang time: failure
		// detection latency is measured from when the fault began.
		p.failedAt = p.sim.now
	}
	p.inbox = nil
	p.inboxAt = nil
	p.pending = p.pending[:0]
	p.sim.notifyCrash(p, cause)
}

// Kill terminates the process administratively (no crash notification
// semantics differ from Crash only in the recorded cause).
func (p *Proc) Kill() { p.Crash(ErrKilled) }

// CrashCause returns the error a dead process crashed with, or nil.
func (p *Proc) CrashCause() error { return p.crashed }

// Context is passed to handlers; it is the only interface through which a
// running process may consume time or emit messages.
type Context struct {
	Sim  *Simulator
	Proc *Proc
}

// Charge records cycles of useful processing for the current dispatch.
func (c *Context) Charge(cycles int64) { c.ChargeAs(CostProcessing, cycles) }

// ChargeAs records cycles against a specific cost category.
func (c *Context) ChargeAs(cat CostCategory, cycles int64) {
	c.Proc.charged += cycles
	c.Proc.chargedByCat[cat] += cycles
}

// Send delivers msg to dst when the current dispatch's execution completes.
func (c *Context) Send(dst *Proc, msg Message) { c.SendDelayed(dst, msg, 0) }

// SendDelayed delivers msg to dst an additional delay after the current
// dispatch completes (used to model channel/notification latency).
func (c *Context) SendDelayed(dst *Proc, msg Message, delay Time) {
	c.Proc.pending = append(c.Proc.pending, outMsg{dst: dst, msg: msg, delay: delay})
}

// Timer is a cancellable self-delivery armed by a handler. A Timer can be
// re-armed with Retimer, in which case any firing already in flight is
// dropped (it carries a stale generation).
type Timer struct {
	gen   uint64 // bumped by Stop and Retimer; stale firings are dropped
	fired bool
}

// Stop cancels the timer if it has not fired.
func (t *Timer) Stop() { t.gen++ }

// Fired reports whether the timer message was delivered.
func (t *Timer) Fired() bool { return t.fired }

// TimerAfter delivers msg back to the calling process d after the current
// dispatch completes, unless stopped.
func (c *Context) TimerAfter(d Time, msg Message) *Timer {
	t := &Timer{}
	c.Retimer(t, d, msg)
	return t
}

// Retimer re-arms t to deliver msg d after the current dispatch completes,
// cancelling any previous arming. Hot paths (TCP retransmission, delayed
// ACK) reuse one Timer per logical timer instead of allocating on every arm.
func (c *Context) Retimer(t *Timer, d Time, msg Message) {
	t.gen++
	t.fired = false
	p := c.Proc
	if p.sim.timerBackend == TimerBackendEvent {
		// Legacy reference path: box the firing now and schedule it as an
		// ordinary delivery event at flush.
		p.pending = append(p.pending, outMsg{dst: p, msg: p.sim.newTimerFire(t, t.gen, msg), delay: d})
		return
	}
	// Wheel path: record the arm unboxed; the flush inserts it into the
	// timer wheel and the firing box is built only at delivery. Appending to
	// the recycled pending slice and inserting into a recycled wheel slot
	// allocate nothing in steady state.
	p.pending = append(p.pending, outMsg{dst: p, msg: msg, delay: d, timer: t, tgen: t.gen})
}

// timerFire wraps a timer delivery; runDispatch unwraps it transparently
// (and drops stale generations) so handlers always see the original message.
// Boxes are recycled through the simulator's freelist: arming a timer in
// steady state reuses the box released by an earlier firing.
type timerFire struct {
	t   *Timer
	gen uint64
	msg Message
}

func (s *Simulator) newTimerFire(t *Timer, gen uint64, msg Message) *timerFire {
	if n := len(s.tfFree); n > 0 {
		tf := s.tfFree[n-1]
		s.tfFree = s.tfFree[:n-1]
		*tf = timerFire{t, gen, msg}
		return tf
	}
	return &timerFire{t, gen, msg}
}
