package sim

import "testing"

// These tests guard the observability layer's overhead contract:
//
//   - the event-scheduling path stays allocation-free (the calendar
//     queue's closure-free 0 allocs/op property);
//   - the deliver → dispatch cycle is allocation-free with no tracer
//     installed (the Context is hoisted into the Proc, so the Handler
//     interface escape costs nothing) — the arrival-stamp machinery must
//     never be touched on the untraced path;
//   - installing a tracer adds zero steady-state allocations (stamps
//     recycle like the inbox double-buffers, spans are keyed by process).

func TestScheduleZeroAlloc(t *testing.T) {
	s := New(1)
	sink := &benchSink{}
	for i := 0; i < 64; i++ {
		s.AfterEvent(Time(i%8)*Microsecond, sink, 1)
		s.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		s.AfterEvent(Microsecond, sink, 1)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step allocates %.1f allocs/op, want 0", allocs)
	}
}

// dispatchAllocs measures steady-state allocations of one deliver → drain
// cycle on a fresh one-proc simulator, optionally traced.
func dispatchAllocs(traced bool) float64 {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	p := NewProc(m.Thread(0, 0), "p", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(100)
	}), ProcConfig{})
	if traced {
		s.SetTracer(countingTracer{n: new(int)})
	}
	// Warm up: let the inbox double-buffers (and stamp slices, if traced)
	// reach steady-state capacity.
	for i := 0; i < 64; i++ {
		p.Deliver("x")
		s.Drain()
	}
	return testing.AllocsPerRun(500, func() {
		p.Deliver("x")
		s.Drain()
	})
}

func TestUntracedDispatchAllocBudget(t *testing.T) {
	// The deliver → dispatch cycle must not allocate in steady state: the
	// Context lives in the Proc, the inbox double-buffers recycle, and timer
	// boxes come from the simulator freelist. Anything above zero means an
	// allocation leaked onto the untraced hot path.
	if allocs := dispatchAllocs(false); allocs != 0 {
		t.Fatalf("untraced dispatch allocates %.1f allocs/op, budget is 0", allocs)
	}
}

// TestBatchedDeliveryZeroAlloc guards the batched fan-out path: a handler
// that emits a burst of sends to one destination at one release time must
// coalesce them into a single pooled batch event, and the whole
// burst-deliver → batch-dispatch cycle must be allocation-free in steady
// state with tracing off.
func TestBatchedDeliveryZeroAlloc(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 2, 1_000_000_000)
	sink := NewProc(m.Thread(0, 0), "sink", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(10)
	}), ProcConfig{})
	src := NewProc(m.Thread(0, 1), "src", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(50)
		for i := 0; i < 16; i++ {
			ctx.Send(sink, "frame") // one burst, one release time → one batch
		}
	}), ProcConfig{})
	for i := 0; i < 64; i++ {
		src.Deliver("kick")
		s.Drain()
	}
	events := s.EventsRun()
	allocs := testing.AllocsPerRun(200, func() {
		src.Deliver("kick")
		s.Drain()
	})
	if allocs != 0 {
		t.Fatalf("batched burst delivery allocates %.1f allocs/op, budget is 0", allocs)
	}
	// The burst must actually have been batched: 16 messages still count as
	// 16 events (EventsRun is grouping-independent), and the sink must have
	// received every message.
	src.Deliver("kick")
	s.Drain()
	if got := s.EventsRun() - events; got < 17*201 {
		t.Fatalf("EventsRun advanced by %d across 201 bursts, want >= %d (batches must count as N events)", got, 17*201)
	}
	if got := sink.Stats().Messages; got < 16*266 {
		t.Fatalf("sink handled %d messages, want >= %d", got, 16*266)
	}
}

func TestTracedDispatchNoExtraAllocs(t *testing.T) {
	un, tr := dispatchAllocs(false), dispatchAllocs(true)
	if tr > un {
		t.Fatalf("tracing adds allocations in steady state: traced %.1f vs untraced %.1f allocs/op", tr, un)
	}
}

type countingTracer struct{ n *int }

func (c countingTracer) OnMessage(p *Proc, msg Message, arrivedAt, start, end Time) { *c.n++ }
func (c countingTracer) OnSpan(hop string, queued, processed Time)                  { *c.n++ }
