package sim

import "testing"

// These tests guard the observability layer's overhead contract:
//
//   - the event-scheduling path stays allocation-free (the calendar
//     queue's closure-free 0 allocs/op property);
//   - the deliver → dispatch cycle costs exactly its pre-tracing budget
//     (one Context escape per dispatch) with no tracer installed — the
//     arrival-stamp machinery must never be touched on the untraced path;
//   - installing a tracer adds zero steady-state allocations (stamps
//     recycle like the inbox double-buffers, spans are keyed by process).

func TestScheduleZeroAlloc(t *testing.T) {
	s := New(1)
	sink := &benchSink{}
	for i := 0; i < 64; i++ {
		s.AfterEvent(Time(i%8)*Microsecond, sink, 1)
		s.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		s.AfterEvent(Microsecond, sink, 1)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step allocates %.1f allocs/op, want 0", allocs)
	}
}

// dispatchAllocs measures steady-state allocations of one deliver → drain
// cycle on a fresh one-proc simulator, optionally traced.
func dispatchAllocs(traced bool) float64 {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	p := NewProc(m.Thread(0, 0), "p", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(100)
	}), ProcConfig{})
	if traced {
		s.SetTracer(countingTracer{n: new(int)})
	}
	// Warm up: let the inbox double-buffers (and stamp slices, if traced)
	// reach steady-state capacity.
	for i := 0; i < 64; i++ {
		p.Deliver("x")
		s.Drain()
	}
	return testing.AllocsPerRun(500, func() {
		p.Deliver("x")
		s.Drain()
	})
}

func TestUntracedDispatchAllocBudget(t *testing.T) {
	// One allocation per dispatch is the pre-existing budget: the Context
	// escapes through the Handler interface call. Anything above that means
	// the tracing hooks leaked onto the untraced path.
	if allocs := dispatchAllocs(false); allocs > 1 {
		t.Fatalf("untraced dispatch allocates %.1f allocs/op, budget is 1 (the Context escape)", allocs)
	}
}

func TestTracedDispatchNoExtraAllocs(t *testing.T) {
	un, tr := dispatchAllocs(false), dispatchAllocs(true)
	if tr > un {
		t.Fatalf("tracing adds allocations in steady state: traced %.1f vs untraced %.1f allocs/op", tr, un)
	}
}

type countingTracer struct{ n *int }

func (c countingTracer) OnMessage(p *Proc, msg Message, arrivedAt, start, end Time) { *c.n++ }
func (c countingTracer) OnSpan(hop string, queued, processed Time)                  { *c.n++ }
