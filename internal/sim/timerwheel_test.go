package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Property test: under a seeded random workload of arm / stop / re-arm
// operations — including reactions taken from inside timer fires — the
// hierarchical timer wheel delivers exactly the same firing sequence as the
// reference per-event scheduler (TimerBackendEvent, the calendar-queue path
// every release before the wheel used). Same-tick ordering by (deadline,
// arm-seq) is covered implicitly: any divergence reorders the trace.

type twArm struct {
	id    int
	delay Time
}

type twStop struct{ id int }

// timerTrace runs one backend over the script and returns the sequence of
// timer firings as "id@time" strings. The reaction RNG draws in fire order,
// so a single divergence amplifies into a visibly different trace.
func timerTrace(backend TimerBackend, script []Message, reseed int64) []string {
	s := New(7)
	s.SetTimerBackend(backend)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	rng := rand.New(rand.NewSource(reseed))
	timers := make([]Timer, 64)
	var trace []string
	p := NewProc(m.Thread(0, 0), "p", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(5)
		switch op := msg.(type) {
		case twArm:
			ctx.Retimer(&timers[op.id], op.delay, op.id)
		case twStop:
			timers[op.id].Stop()
		case int:
			trace = append(trace, fmt.Sprintf("%d@%d", op, s.Now()))
			switch rng.Intn(4) {
			case 0: // re-arm self, short horizon (level 0/1)
				ctx.Retimer(&timers[op], Time(rng.Int63n(int64(40*Millisecond))), op)
			case 1: // arm a sibling, long horizon (level 2 / far heap)
				j := rng.Intn(len(timers))
				ctx.Retimer(&timers[j], Time(rng.Int63n(int64(7200*Second))), j)
			case 2: // stop a sibling (possibly not armed)
				timers[rng.Intn(len(timers))].Stop()
			}
		}
	}), ProcConfig{})
	for i, op := range script {
		op := op
		s.At(Time(i)*50*Microsecond, func() { p.Deliver(op) })
	}
	s.RunUntil(30 * Second)
	return trace
}

func TestTimerWheelMatchesReferenceScheduler(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		var script []Message
		for i := 0; i < 300; i++ {
			switch rng.Intn(6) {
			case 0:
				script = append(script, twStop{id: rng.Intn(64)})
			case 1: // far-future arm: exercises the overflow heap + cascade
				script = append(script, twArm{
					id: rng.Intn(64), delay: Time(rng.Int63n(int64(3*3600) * int64(Second)))})
			default:
				script = append(script, twArm{
					id: rng.Intn(64), delay: Time(rng.Int63n(int64(200 * Millisecond)))})
			}
		}
		wheel := timerTrace(TimerBackendWheel, script, seed)
		ref := timerTrace(TimerBackendEvent, script, seed)
		if len(wheel) == 0 {
			t.Fatalf("seed %d: empty trace (script did not fire)", seed)
		}
		if !reflect.DeepEqual(wheel, ref) {
			n := len(wheel)
			if len(ref) < n {
				n = len(ref)
			}
			for i := 0; i < n; i++ {
				if wheel[i] != ref[i] {
					t.Fatalf("seed %d: traces diverge at %d: wheel=%s ref=%s",
						seed, i, wheel[i], ref[i])
				}
			}
			t.Fatalf("seed %d: trace lengths differ: wheel=%d ref=%d",
				seed, len(wheel), len(ref))
		}
	}
}

// TestTimerArmStopZeroAlloc guards the steady-state contract: arming,
// stopping and firing timers through the wheel allocates nothing once the
// slot buckets it touches are warm. The workload is exactly periodic (the
// period is a power-of-two multiple of the slot width) so every arm lands on
// a slot residue already visited during warmup; a drifting workload would
// instead measure the one-time cost of cold calendar slots, which amortizes
// to zero but never exactly reaches it.
func TestTimerArmStopZeroAlloc(t *testing.T) {
	const (
		period  = Time(1 << 21) // ~2.1 ms: half an L0 wrap, exact slot multiple
		scratch = Time(1 << 20) // lazy-stopped arm, pops stale within the period
	)
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	var timers [8]Timer // 0..3 periodic, 4..7 scratch (armed then stopped)
	p := NewProc(m.Thread(0, 0), "p", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(10)
		if msg == Message("kick") {
			for i := 0; i < 4; i++ {
				ctx.Retimer(&timers[i], Time(i+1)*(period/8), i)
			}
			return
		}
		// Timer fire: the tcpeng per-segment pattern — re-arm the long-lived
		// timer, arm a helper, cancel it again (the lazy stop leaves a stale
		// entry that is popped and recycled without reaching the handler).
		i := msg.(int)
		ctx.Retimer(&timers[i], period, i)
		ctx.Retimer(&timers[4+i], scratch, 4+i)
		timers[4+i].Stop()
	}), ProcConfig{})
	p.Deliver("kick")
	cursor := Time(0)
	for i := 0; i < 64; i++ {
		cursor += period
		s.RunUntil(cursor)
	}
	allocs := testing.AllocsPerRun(500, func() {
		cursor += period
		s.RunUntil(cursor)
	})
	if allocs != 0 {
		t.Fatalf("timer arm/stop/fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTimerStatsPendingAndCascades checks the observability counters: the
// pending gauge tracks armed-but-unfired entries and cascades accumulate
// when long-horizon timers migrate down the levels.
func TestTimerStatsPendingAndCascades(t *testing.T) {
	s := New(1)
	m := NewMachine(s, "m", 1, 1, 1_000_000_000)
	var timers [32]Timer
	p := NewProc(m.Thread(0, 0), "p", HandlerFunc(func(ctx *Context, msg Message) {
		ctx.Charge(10)
		if msg == Message("arm") {
			for i := range timers {
				// Beyond level 0 (~4.2 ms): these must cascade to fire.
				ctx.Retimer(&timers[i], 10*Millisecond+Time(i)*Millisecond, i)
			}
		}
	}), ProcConfig{})
	p.Deliver("arm")
	s.Step() // dispatch
	ts := s.TimerStats()
	if ts.Pending != len(timers) {
		t.Fatalf("pending=%d, want %d", ts.Pending, len(timers))
	}
	s.Drain()
	ts = s.TimerStats()
	if ts.Pending != 0 {
		t.Fatalf("pending=%d after drain, want 0", ts.Pending)
	}
	if ts.Fired != uint64(len(timers)) {
		t.Fatalf("fired=%d, want %d", ts.Fired, len(timers))
	}
	if ts.Cascades == 0 {
		t.Fatal("no cascades recorded for level-1 timers")
	}
}
