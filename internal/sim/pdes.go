package sim

// Conservative parallel discrete-event simulation (PDES).
//
// EnablePDES splits one simulation into per-machine domains: every Machine
// created afterwards owns a private event queue, clock, sequence counter,
// RNG stream and freelists (a full shard Simulator), while the simulator
// EnablePDES was called on remains the control plane — it keeps the driver
// code's At/After closures (experiment harness steps, fault-storm strikes)
// on its own queue and coordinates the domains.
//
// Correctness rests on lookahead: the only cross-machine channel is the
// wire, and a link never delivers earlier than serialization floor +
// propagation delay after the send. The coordinator therefore advances all
// domains in parallel through windows no wider than the minimum registered
// lookahead; influence generated inside a window lands strictly after it,
// so domains never see each other mid-window. Cross-domain deliveries
// travel through per-link mailboxes that registered flushers drain into the
// receiving domain's queue at each barrier, in deterministic order.
//
// Determinism: each domain's execution depends only on its own queue, RNG
// and the barrier-flushed mailbox contents — all of which are independent
// of the worker count — so a run with N workers is byte-identical to the
// same run with 1 worker. The sequential (non-PDES) mode is a different
// schedule: it interleaves shared-RNG draws and event sequence numbers
// globally, which no parallel execution can reproduce, so the determinism
// oracle for PDES is workers=1 vs workers=N, and the sequential mode keeps
// its own md5-pinned oracles.

import (
	"math/rand"
	"sync/atomic"
)

// maxTime is a sentinel far beyond any reachable simulation time.
const maxTime = Time(1<<62 - 1)

// pdesCoord is the coordinator state shared by the control plane and all
// domain shards of one parallel simulation.
type pdesCoord struct {
	root    *Simulator
	workers int
	domains []*Simulator

	// lookahead is the minimum registered cross-domain latency; 0 means no
	// channel was registered and windows are unbounded.
	lookahead Time
	// flushers drain cross-domain mailboxes into domain queues at each
	// barrier, in registration order.
	flushers []func()
	// inWindow is set while worker goroutines execute a window; the
	// control-plane schedule path panics if touched during one.
	inWindow atomic.Bool

	barriers uint64
}

func (c *pdesCoord) flush() {
	for _, fn := range c.flushers {
		fn()
	}
}

// EnablePDES switches the simulator into conservative parallel mode: every
// machine created afterwards receives its own event-queue domain, and
// RunUntil advances all domains in windows bounded by the registered
// cross-domain lookahead, workers domains at a time. Must be called before
// any machine is created. workers=1 executes domains sequentially in
// creation order and is the determinism oracle for every other worker
// count; the default (never calling EnablePDES) keeps the single global
// event loop.
func (s *Simulator) EnablePDES(workers int) {
	if s.parent != nil {
		panic("sim: EnablePDES on a domain shard")
	}
	if s.pdes != nil {
		panic("sim: EnablePDES called twice")
	}
	if len(s.machines) > 0 {
		panic("sim: EnablePDES must be called before machines are created")
	}
	if workers < 1 {
		workers = 1
	}
	s.pdes = &pdesCoord{root: s, workers: workers}
}

// PDESEnabled reports whether this simulator is a PDES control plane.
func (s *Simulator) PDESEnabled() bool { return s.pdes != nil && s.parent == nil }

// newDomain creates one domain shard. Its RNG stream is seeded from the
// control plane's RNG, so domain randomness is fixed at creation and
// independent of the runtime interleaving.
func (s *Simulator) newDomain() *Simulator {
	d := &Simulator{
		rng:          rand.New(rand.NewSource(s.rng.Int63())),
		tracer:       s.tracer,
		pdes:         s.pdes,
		parent:       s,
		domID:        len(s.pdes.domains),
		timerBackend: s.timerBackend,
	}
	s.pdes.domains = append(s.pdes.domains, d)
	return d
}

// RegisterLookahead informs the coordinator of a lower bound d on the
// latency of one cross-domain channel: nothing sent over the channel at
// time t may take effect before t+d. The window horizon is the minimum over
// all registered channels. No-op when PDES is off.
func (s *Simulator) RegisterLookahead(d Time) {
	c := s.rootSim().pdes
	if c == nil {
		return
	}
	if d < Nanosecond {
		d = Nanosecond
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// RegisterBarrierFlush registers fn to run at every barrier, before the
// coordinator inspects domain queues. Cross-domain channels use it to move
// mailbox entries into the receiving domain's queue; fn always runs with
// every domain quiescent. No-op when PDES is off.
func (s *Simulator) RegisterBarrierFlush(fn func()) {
	c := s.rootSim().pdes
	if c == nil {
		return
	}
	c.flushers = append(c.flushers, fn)
}

// DomainStat is one domain's contribution to PDESStats.
type DomainStat struct {
	Name   string // the domain's machine name
	Events uint64
}

// PDESStats reports coordinator counters: barriers executed, the effective
// lookahead horizon, and per-domain event totals. domains is nil when PDES
// is not enabled. Call only at a barrier.
func (s *Simulator) PDESStats() (barriers uint64, horizon Time, domains []DomainStat) {
	if s.pdes == nil || s.parent != nil {
		return 0, 0, nil
	}
	c := s.pdes
	domains = make([]DomainStat, 0, len(c.domains))
	for _, d := range c.domains {
		name := ""
		if len(d.machines) > 0 {
			name = d.machines[0].Name
		}
		domains = append(domains, DomainStat{Name: name, Events: d.eventsRun})
	}
	return c.barriers, c.lookahead, domains
}

// advanceDomains moves every domain clock forward to t (never backward).
func (s *Simulator) advanceDomains(t Time) {
	for _, d := range s.pdes.domains {
		if d.now < t {
			d.now = t
		}
	}
}

// runPDES is the coordinator loop behind RunUntil (drain=false) and Drain
// (drain=true) on a PDES control plane.
//
// Loop invariant at the top: all mailbox entries not yet flushed were
// posted by the most recent window, every domain clock equals the window
// end, and no queued event anywhere precedes a domain clock.
func (s *Simulator) runPDES(limit Time, drain bool) {
	c := s.pdes
	doms := c.domains
	horizon := c.lookahead
	if horizon <= 0 {
		horizon = maxTime // no cross-domain channel: domains are independent
	}
	workers := c.workers
	if s.tracer != nil {
		workers = 1 // the tracer is shared state; serialize domain execution
	}
	if workers > len(doms) {
		workers = len(doms)
	}
	var pool *pdesPool
	if workers > 1 {
		pool = newPDESPool(doms, workers)
		defer pool.stop()
	}
	for {
		c.flush()
		ctrlAt, hasCtrl := s.peekTime()
		next := maxTime
		for _, d := range doms {
			if t, ok := d.peekTime(); ok && t < next {
				next = t
			}
		}
		first := next
		if hasCtrl && ctrlAt < first {
			first = ctrlAt
		}
		if first == maxTime {
			break // every queue empty (mailboxes were just flushed)
		}
		if !drain && first > limit {
			break
		}
		if hasCtrl && ctrlAt <= next {
			// No domain event strictly precedes the control event: run it
			// with every clock advanced to its time. Control events execute
			// at barriers with all domains quiescent, so they may touch any
			// domain (deliver messages, kill processes, read stats).
			s.advanceDomains(ctrlAt)
			s.stepNext(0, false)
			continue
		}
		// Parallel window [T, W]: every domain runs its events with
		// at <= W. Cross-domain influence generated inside the window lands
		// at >= T+lookahead > W, so domains are independent within it. T
		// jumps to the earliest pending event, which skips idle stretches
		// in one barrier.
		T := next
		W := T + horizon - 1
		if W < T {
			W = maxTime // horizon overflow: unbounded window
		}
		if hasCtrl && ctrlAt-1 < W {
			W = ctrlAt - 1 // control runs before same-time domain events
		}
		if !drain && limit < W {
			W = limit
		}
		c.barriers++
		if pool != nil {
			c.inWindow.Store(true)
			pool.runWindow(W)
			c.inWindow.Store(false)
		} else {
			for _, d := range doms {
				d.RunUntil(W)
			}
		}
		if s.now < W {
			s.now = W
		}
	}
	if !drain {
		s.advanceDomains(limit)
		if s.now < limit {
			s.now = limit
		}
	}
}

// pdesPool is a window-scoped worker pool: one goroutine per worker, each
// owning a contiguous block of domains. Contiguous partitioning spreads
// load evenly when machines are created in (heavy server, light client)
// pairs. The pool lives for one RunUntil/Drain call — simulations are
// created in bulk by experiment sweeps, and per-call goroutines cannot leak.
type pdesPool struct {
	cmd  []chan Time
	done chan struct{}
}

func newPDESPool(doms []*Simulator, workers int) *pdesPool {
	p := &pdesPool{done: make(chan struct{}, workers)}
	per := (len(doms) + workers - 1) / workers
	for lo := 0; lo < len(doms); lo += per {
		hi := lo + per
		if hi > len(doms) {
			hi = len(doms)
		}
		ch := make(chan Time, 1)
		p.cmd = append(p.cmd, ch)
		go func(part []*Simulator, ch chan Time) {
			for w := range ch {
				for _, d := range part {
					d.RunUntil(w)
				}
				p.done <- struct{}{}
			}
		}(doms[lo:hi], ch)
	}
	return p
}

// runWindow advances every domain to w and waits for all of them. The
// channel hand-offs double as the happens-before edges that make
// barrier-separated accesses (mailbox lanes, stats reads) race-free.
func (p *pdesPool) runWindow(w Time) {
	for _, ch := range p.cmd {
		ch <- w
	}
	for range p.cmd {
		<-p.done
	}
}

func (p *pdesPool) stop() {
	for _, ch := range p.cmd {
		close(ch)
	}
}
