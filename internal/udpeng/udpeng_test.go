package udpeng

import (
	"bytes"
	"testing"
	"testing/quick"

	"neat/internal/proto"
)

var (
	ipA = proto.IPv4(10, 0, 0, 1)
	ipB = proto.IPv4(10, 0, 0, 2)
)

type fakeUDPEnv struct {
	out       [][]byte
	outDst    []proto.Addr
	delivered []delivery
}

type delivery struct {
	s    *Socket
	src  proto.Addr
	port uint16
	data []byte
}

func (e *fakeUDPEnv) Output(dst proto.Addr, transport []byte) {
	e.out = append(e.out, transport)
	e.outDst = append(e.outDst, dst)
}

func (e *fakeUDPEnv) Deliver(s *Socket, src proto.Addr, srcPort uint16, data []byte) {
	e.delivered = append(e.delivered, delivery{s, src, srcPort, data})
}

func frameFor(t *testing.T, dstPort uint16, data []byte) *proto.Frame {
	t.Helper()
	raw := proto.BuildUDP(
		proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: ipB, Dst: ipA},
		proto.UDPHeader{SrcPort: 9999, DstPort: dstPort}, data)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBindSendReceive(t *testing.T) {
	env := &fakeUDPEnv{}
	e := NewEngine(env, ipA)
	s, err := e.Bind(2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SendTo(ipB, 3000, []byte("out")); err != nil {
		t.Fatal(err)
	}
	if len(env.out) != 1 || env.outDst[0] != ipB {
		t.Fatalf("output: %v", env.outDst)
	}
	var h proto.UDPHeader
	payload, err := h.Unmarshal(env.out[0], ipA, ipB)
	if err != nil || h.SrcPort != 2000 || h.DstPort != 3000 || string(payload) != "out" {
		t.Fatalf("datagram: %+v %q err=%v", h, payload, err)
	}

	e.Input(frameFor(t, 2000, []byte("in")))
	if len(env.delivered) != 1 {
		t.Fatal("no delivery")
	}
	d := env.delivered[0]
	if d.s != s || d.src != ipB || d.port != 9999 || !bytes.Equal(d.data, []byte("in")) {
		t.Fatalf("delivery: %+v", d)
	}
}

func TestUnboundPortDropped(t *testing.T) {
	env := &fakeUDPEnv{}
	e := NewEngine(env, ipA)
	e.Input(frameFor(t, 4000, []byte("x")))
	if len(env.delivered) != 0 || e.Stats().NoSocket != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestDuplicateBindRejected(t *testing.T) {
	e := NewEngine(&fakeUDPEnv{}, ipA)
	if _, err := e.Bind(53); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Bind(53); err != ErrPortInUse {
		t.Fatalf("want ErrPortInUse, got %v", err)
	}
}

func TestEphemeralBindUniqueProperty(t *testing.T) {
	e := NewEngine(&fakeUDPEnv{}, ipA)
	f := func(n uint8) bool {
		seen := map[uint16]bool{}
		for i := 0; i < int(n); i++ {
			s, err := e.Bind(0)
			if err != nil {
				return false
			}
			if seen[s.Port()] || s.Port() < 32768 {
				return false
			}
			seen[s.Port()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseReleasesPort(t *testing.T) {
	env := &fakeUDPEnv{}
	e := NewEngine(env, ipA)
	s, _ := e.Bind(1234)
	s.Close()
	if e.NumBound() != 0 {
		t.Fatal("port not released")
	}
	if err := s.SendTo(ipB, 1, nil); err != ErrClosed {
		t.Fatalf("send on closed: %v", err)
	}
	if _, err := e.Bind(1234); err != nil {
		t.Fatal("rebind after close failed")
	}
	s.Close() // double close is a no-op
}
