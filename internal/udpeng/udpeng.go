// Package udpeng implements the UDP component of a stack replica. The
// paper treats UDP as "fairly simple ... stateless" (§3.3): there is no
// connection state, only port bindings, which is why a crashed UDP
// component recovers transparently — bindings are re-created from the
// socket layer's records.
package udpeng

import (
	"errors"

	"neat/internal/bufpool"
	"neat/internal/proto"
)

// Env is the world as seen by the UDP component.
type Env interface {
	// Output transmits a serialized UDP datagram (header+payload) to dst
	// via the IP component.
	Output(dst proto.Addr, transport []byte)
	// Deliver passes a received datagram to the socket bound to s.
	Deliver(s *Socket, src proto.Addr, srcPort uint16, data []byte)
}

// Engine errors.
var (
	ErrPortInUse = errors.New("udpeng: port already bound")
	ErrClosed    = errors.New("udpeng: socket closed")
)

// Stats counts UDP events.
type Stats struct {
	In, Out           uint64
	NoSocket          uint64
	BytesIn, BytesOut uint64
}

// Engine is one replica's UDP state: a port table.
type Engine struct {
	env       Env
	addr      proto.Addr
	binds     map[uint16]*Socket
	nextEphem uint16
	stats     Stats
}

// Socket is a bound UDP port.
type Socket struct {
	engine *Engine
	port   uint16
	closed bool
	// Ctx is opaque owner context.
	Ctx interface{}
}

// NewEngine creates a UDP component bound to the local address addr.
func NewEngine(env Env, addr proto.Addr) *Engine {
	return &Engine{env: env, addr: addr, binds: make(map[uint16]*Socket), nextEphem: 32768}
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// NumBound returns the number of bound ports.
func (e *Engine) NumBound() int { return len(e.binds) }

// Bind binds a socket to port; port 0 picks an ephemeral port.
func (e *Engine) Bind(port uint16) (*Socket, error) {
	if port == 0 {
		for tries := 0; tries < 65536-32768; tries++ {
			p := e.nextEphem
			e.nextEphem++
			if e.nextEphem == 0 {
				e.nextEphem = 32768
			}
			if p >= 32768 {
				if _, used := e.binds[p]; !used {
					port = p
					break
				}
			}
		}
		if port == 0 {
			return nil, ErrPortInUse
		}
	} else if _, used := e.binds[port]; used {
		return nil, ErrPortInUse
	}
	s := &Socket{engine: e, port: port}
	e.binds[port] = s
	return s, nil
}

// Port returns the bound port.
func (s *Socket) Port() uint16 { return s.port }

// Close releases the port.
func (s *Socket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.engine.binds, s.port)
}

// SendTo transmits a datagram to dst:port.
func (s *Socket) SendTo(dst proto.Addr, port uint16, data []byte) error {
	if s.closed {
		return ErrClosed
	}
	e := s.engine
	h := proto.UDPHeader{SrcPort: s.port, DstPort: port}
	// Output is synchronous (IP copies the datagram into the frame), so
	// the scratch buffer goes straight back to the pool.
	raw := h.Marshal(bufpool.Get(proto.UDPHeaderLen + len(data))[:0], e.addr, dst, data)
	e.stats.Out++
	e.stats.BytesOut += uint64(len(data))
	e.env.Output(dst, raw)
	bufpool.Put(raw)
	return nil
}

// Input demultiplexes an inbound UDP frame.
func (e *Engine) Input(f *proto.Frame) {
	if f.UDP == nil || f.IP == nil {
		return
	}
	s, ok := e.binds[f.UDP.DstPort]
	if !ok {
		e.stats.NoSocket++
		return // a full stack would send ICMP port-unreachable
	}
	e.stats.In++
	e.stats.BytesIn += uint64(len(f.Payload))
	e.env.Deliver(s, f.IP.Src, f.UDP.SrcPort, f.Payload)
}
