// Package trace is the opt-in message-tracing half of the observability
// layer: it implements sim.Tracer, aggregating per-hop queueing and
// processing latency as messages cross wire → NIC → driver → replica
// components → SYSCALL server → socket library, and records the
// management plane's lifecycle events (respawns, watchdog escalations,
// RSS rebinds) on the same timeline.
//
// Overhead contract: with no Tracer installed, every trace point in the
// hot path is a single nil check and no arrival stamps are kept — zero
// allocation, zero behavioural impact. With a Tracer installed, samples
// land in per-hop log-bucketed histograms keyed by process identity (one
// map lookup per message, no per-message records), and the arrival-stamp
// slices recycle exactly like the inbox double-buffers they shadow.
//
// Determinism contract: a Tracer is per-Simulator state. Parallel
// experiment sweeps build one simulator+tracer per sweep point and
// assemble results in configuration order, so trace output is
// byte-identical between sequential and concurrent runs.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"neat/internal/metrics"
	"neat/internal/report"
	"neat/internal/sim"
)

// Span is the aggregate view of one hop of the message path: how many
// messages traversed it, how long they queued before the hop ran, and how
// long the hop spent processing them.
type Span struct {
	// Hop names the trace point, machine-qualified: "amd.nicdrv",
	// "amd.neat0.tcp", "wire.dir0", "amd.nic.rxq0", ...
	Hop string
	// Component is the coarse label used for path ordering ("wire", "nic",
	// "driver", "ip", "tcp", "syscall", "app", ...).
	Component string
	// Count is the number of traversals.
	Count uint64
	// Queue aggregates arrival → handling-start latency.
	Queue metrics.Histogram
	// Proc aggregates handling-start → handling-end latency.
	Proc metrics.Histogram
}

// Event is one lifecycle/fault event on the trace timeline.
type Event struct {
	At     sim.Time
	Kind   string // e.g. "respawn", "escalate", "quarantine", "rss"
	Detail string
}

// Tracer implements sim.Tracer. Create one with New, install it with
// sim.Simulator.SetTracer (Attach does both) before the simulation runs,
// and read the aggregates back with Breakdown and Events.
type Tracer struct {
	procSpans map[*sim.Proc]*Span
	nameSpans map[string]*Span
	events    []Event
	sim       *sim.Simulator
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{
		procSpans: map[*sim.Proc]*Span{},
		nameSpans: map[string]*Span{},
	}
}

// Attach installs the tracer on s (and binds the event timeline's clock).
// Call it before the simulation runs.
func (t *Tracer) Attach(s *sim.Simulator) *Tracer {
	t.sim = s
	s.SetTracer(t)
	return t
}

// OnMessage implements sim.Tracer: one handled message on process p.
func (t *Tracer) OnMessage(p *sim.Proc, msg sim.Message, arrivedAt, start, end sim.Time) {
	sp := t.procSpans[p]
	if sp == nil {
		sp = &Span{Hop: hopName(p), Component: p.Component}
		t.procSpans[p] = sp
	}
	sp.Count++
	sp.Queue.Observe(start - arrivedAt)
	sp.Proc.Observe(end - start)
}

// OnSpan implements sim.Tracer: one traversal of a non-process hop.
func (t *Tracer) OnSpan(hop string, queued, processed sim.Time) {
	sp := t.nameSpans[hop]
	if sp == nil {
		sp = &Span{Hop: hop, Component: classify(hop)}
		t.nameSpans[hop] = sp
	}
	sp.Count++
	sp.Queue.Observe(queued)
	sp.Proc.Observe(processed)
}

// Emit records a lifecycle event at the current simulated time. The
// management plane calls it (via its observability hook) on respawns,
// escalations, quarantines, RSS rebinds and scaling actions.
func (t *Tracer) Emit(kind, detail string) {
	var at sim.Time
	if t.sim != nil {
		at = t.sim.Now()
	}
	t.events = append(t.events, Event{At: at, Kind: kind, Detail: detail})
}

// Events returns the lifecycle timeline in emission (= simulated time)
// order. The slice is owned by the tracer; do not modify.
func (t *Tracer) Events() []Event { return t.events }

// hopName machine-qualifies a process name, except when the name already
// carries the machine prefix (the NIC driver is named "<host>.nicdrv").
func hopName(p *sim.Proc) string {
	m := p.Machine().Name
	if strings.HasPrefix(p.Name, m+".") {
		return p.Name
	}
	return m + "." + p.Name
}

// componentRank orders hops along the message path for rendering.
var componentRank = map[string]int{
	"wire": 0, "switch": 1, "nic": 2, "driver": 3, "pf": 4, "ip": 5,
	"udp": 6, "tcp": 7, "syscall": 8, "app": 9,
}

func rank(component string) int {
	if r, ok := componentRank[component]; ok {
		return r
	}
	return len(componentRank)
}

// classify derives the component of a named (non-process) hop.
func classify(hop string) string {
	switch {
	case strings.HasPrefix(hop, "wire"):
		return "wire"
	case strings.HasPrefix(hop, "switch"):
		return "switch"
	case strings.Contains(hop, ".nic."):
		return "nic"
	default:
		return hop
	}
}

// Breakdown is the per-hop latency breakdown, ordered along the message
// path (wire → NIC → driver → stack components → SYSCALL → apps) and by
// hop name within a component.
type Breakdown []*Span

// Breakdown snapshots the current per-hop aggregates.
func (t *Tracer) Breakdown() Breakdown {
	out := make(Breakdown, 0, len(t.procSpans)+len(t.nameSpans))
	for _, sp := range t.procSpans {
		out = append(out, sp)
	}
	for _, sp := range t.nameSpans {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i].Component), rank(out[j].Component)
		if ri != rj {
			return ri < rj
		}
		return out[i].Hop < out[j].Hop
	})
	return out
}

// Filter returns the spans whose hop name has the given prefix (typically
// a machine name, to isolate the server side of a two-machine bed).
func (b Breakdown) Filter(prefix string) Breakdown {
	var out Breakdown
	for _, sp := range b {
		if strings.HasPrefix(sp.Hop, prefix) {
			out = append(out, sp)
		}
	}
	return out
}

// Table renders the breakdown as a report table: queueing vs processing
// per hop, with mean and p99 for each.
func (b Breakdown) Table(title string) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{"hop", "component", "msgs",
			"queue mean", "queue p99", "proc mean", "proc p99"},
	}
	for _, sp := range b {
		t.AddRow(sp.Hop, sp.Component, sp.Count,
			sp.Queue.Mean(), sp.Queue.Quantile(0.99),
			sp.Proc.Mean(), sp.Proc.Quantile(0.99))
	}
	return t
}

// String renders the breakdown table with a default title.
func (b Breakdown) String() string {
	return b.Table("Per-hop latency breakdown (queueing vs processing)").String()
}

// Timeline renders the lifecycle events as a report table.
func Timeline(events []Event, title string) *report.Table {
	t := &report.Table{Title: title, Columns: []string{"t", "event", "detail"}}
	for _, e := range events {
		t.AddRow(e.At, e.Kind, e.Detail)
	}
	if len(events) == 0 {
		t.AddRow("-", "none", "no lifecycle events recorded")
	}
	return t
}

// EventCounts summarizes the timeline as kind → count, rendered sorted.
func EventCounts(events []Event) string {
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s×%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}
