package trace

import (
	"strings"
	"testing"

	"neat/internal/sim"
)

// newBusyProc builds a one-proc simulator with a handler that charges a
// fixed cycle cost per message.
func newBusyProc(t *testing.T) (*sim.Simulator, *sim.Proc, *Tracer) {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 1, 1, 1_000_000_000)
	p := sim.NewProc(m.Thread(0, 0), "p", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(1000) // 1 µs at 1 GHz
	}), sim.ProcConfig{})
	tr := New().Attach(s)
	return s, p, tr
}

func TestTracerRecordsMessageSpans(t *testing.T) {
	s, p, tr := newBusyProc(t)
	for i := 0; i < 10; i++ {
		p.Deliver("x")
		s.Drain()
	}
	bd := tr.Breakdown()
	if len(bd) != 1 {
		t.Fatalf("spans=%d, want 1", len(bd))
	}
	sp := bd[0]
	if sp.Hop != "m.p" {
		t.Fatalf("hop=%q, want machine-qualified %q", sp.Hop, "m.p")
	}
	if sp.Count != 10 || sp.Queue.Count() != 10 || sp.Proc.Count() != 10 {
		t.Fatalf("count=%d queue=%d proc=%d, want 10 each", sp.Count, sp.Queue.Count(), sp.Proc.Count())
	}
	// The handler charges 1000 cycles at 1 GHz: processing time is 1 µs
	// (plus the configured dispatch overhead, zero here).
	if mean := sp.Proc.Mean(); mean != sim.Microsecond {
		t.Fatalf("proc mean=%v, want 1µs", mean)
	}
}

func TestTracerNamedSpansAndOrdering(t *testing.T) {
	_, p, tr := newBusyProc(t)
	p.Deliver("x")
	tr.OnSpan("wire.dir0", 5, 3)
	tr.OnSpan("m.nic.rxq0", 7, 0)
	tr.OnSpan("wire.dir0", 9, 3)
	bd := tr.Breakdown()
	// Path order: wire (rank 0) before nic (rank 1) before the app proc.
	if len(bd) != 2 {
		// The delivered message has not dispatched yet (sim never ran), so
		// only the two named spans exist.
		t.Fatalf("spans=%d, want 2", len(bd))
	}
	if bd[0].Hop != "wire.dir0" || bd[0].Component != "wire" {
		t.Fatalf("first span %q (%s), want wire.dir0", bd[0].Hop, bd[0].Component)
	}
	if bd[1].Hop != "m.nic.rxq0" || bd[1].Component != "nic" {
		t.Fatalf("second span %q (%s), want m.nic.rxq0", bd[1].Hop, bd[1].Component)
	}
	if bd[0].Count != 2 || bd[0].Queue.Max() != 9 {
		t.Fatalf("wire span count=%d max=%v", bd[0].Count, bd[0].Queue.Max())
	}
}

func TestBreakdownFilterAndTable(t *testing.T) {
	tr := New()
	tr.OnSpan("amd.nicdrv", 10, 20)
	tr.OnSpan("client.nicdrv", 10, 20)
	got := tr.Breakdown().Filter("amd.")
	if len(got) != 1 || got[0].Hop != "amd.nicdrv" {
		t.Fatalf("filtered=%v", got)
	}
	out := got.Table("title").String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "amd.nicdrv") {
		t.Fatalf("table:\n%s", out)
	}
	if strings.Contains(out, "client.nicdrv") {
		t.Fatalf("filter leaked client hop:\n%s", out)
	}
}

func TestEventsTimelineAndCounts(t *testing.T) {
	s, _, tr := newBusyProc(t)
	tr.Emit("spawn", "replica 0")
	s.RunFor(3 * sim.Millisecond)
	tr.Emit("rss", "rebind")
	tr.Emit("spawn", "replica 1")
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("events=%d", len(ev))
	}
	if ev[0].At != 0 || ev[1].At != 3*sim.Millisecond {
		t.Fatalf("timestamps %v, %v", ev[0].At, ev[1].At)
	}
	if got := EventCounts(ev); got != "rss×1 spawn×2" {
		t.Fatalf("counts=%q", got)
	}
	out := Timeline(ev, "events").String()
	if !strings.Contains(out, "replica 1") || !strings.Contains(out, "3.000ms") {
		t.Fatalf("timeline:\n%s", out)
	}
	empty := Timeline(nil, "events").String()
	if !strings.Contains(empty, "none") {
		t.Fatalf("empty timeline:\n%s", empty)
	}
}

// TestTracerMidRunAttachSkipsUnstampedBatch documents the mid-run attach
// contract: messages delivered before the tracer was installed carry no
// arrival stamp, so their batch is skipped rather than mis-attributed.
func TestTracerMidRunAttachSkipsUnstampedBatch(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 1, 1, 1_000_000_000)
	p := sim.NewProc(m.Thread(0, 0), "p", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(1000)
	}), sim.ProcConfig{})
	p.Deliver("before") // unstamped: no tracer yet
	tr := New().Attach(s)
	s.Drain()
	if got := len(tr.Breakdown()); got != 0 {
		t.Fatalf("unstamped batch was traced: %d spans", got)
	}
	p.Deliver("after")
	s.Drain()
	bd := tr.Breakdown()
	if len(bd) != 1 || bd[0].Count != 1 {
		t.Fatalf("stamped message not traced: %v", bd)
	}
}
