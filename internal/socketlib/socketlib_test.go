package socketlib

import (
	"errors"
	"testing"

	"neat/internal/ipc"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
)

// fakeStack scripts the stack side of the socket protocol: it records ops
// and replies according to a small rule set.
type fakeStack struct {
	proc    *sim.Proc
	ops     []sim.Message
	appConn *ipc.Conn
	refuse  bool // refuse connects
}

func (f *fakeStack) HandleMessage(ctx *sim.Context, msg sim.Message) {
	f.ops = append(f.ops, msg)
	switch m := msg.(type) {
	case stack.OpListen:
		f.appConn = ipc.New(m.App, ipc.DefaultCosts())
		f.appConn.Send(ctx, stack.EvListening{ReqID: m.ReqID, Stack: f.proc})
	case stack.OpConnect:
		f.appConn = ipc.New(m.App, ipc.DefaultCosts())
		if f.refuse {
			f.appConn.Send(ctx, stack.EvConnected{ReqID: m.ReqID, Stack: f.proc, Err: errors.New("refused")})
			return
		}
		f.appConn.Send(ctx, stack.EvConnected{ReqID: m.ReqID, ConnID: 77, Stack: f.proc, SendBuf: 1000})
	case *stack.OpSend:
		// Echo the data back. The box is retained in f.ops for the tests'
		// op-sequence assertions, so it is deliberately not recycled.
		f.appConn.Send(ctx, stack.EvData{Stack: f.proc, ConnID: m.ConnID, Data: m.Data})
		if m.WantSpace {
			f.appConn.Send(ctx, stack.EvSendSpace{Stack: f.proc, ConnID: m.ConnID, Available: 1000})
		}
	case stack.OpCloseListener:
		// recorded in ops; nothing to reply
	case stack.OpUDPBind:
		f.appConn = ipc.New(m.App, ipc.DefaultCosts())
		f.appConn.Send(ctx, stack.EvUDPBound{ReqID: m.ReqID, UDPID: 5, Port: 5353, Stack: f.proc})
	}
}

type testApp struct {
	proc *sim.Proc
	lib  *Lib
	on   func(ctx *sim.Context, msg sim.Message)
}

func (a *testApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	if a.on != nil {
		a.on(ctx, msg)
	}
}

func setup(t *testing.T) (*sim.Simulator, *fakeStack, *testApp) {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 2, 1, 1_000_000_000)
	fs := &fakeStack{}
	fs.proc = sim.NewProc(m.Thread(0, 0), "fakestack", fs, sim.ProcConfig{})
	app := &testApp{}
	app.proc = sim.NewProc(m.Thread(1, 0), "app", app, sim.ProcConfig{})
	app.lib = New(app.proc, fs.proc, ipc.DefaultCosts())
	return s, fs, app
}

func TestConnectSendReceiveClose(t *testing.T) {
	s, _, app := setup(t)
	var sock *Socket
	var got []byte
	connected := false
	app.on = func(ctx *sim.Context, msg sim.Message) {
		if msg != "go" {
			return
		}
		sock = app.lib.Connect(ctx, proto.IPv4(10, 0, 0, 1), 80)
		sock.OnConnect = func(ctx *sim.Context, err error) {
			if err != nil {
				t.Errorf("connect err: %v", err)
				return
			}
			connected = true
			sock.Send(ctx, []byte("abc"))
		}
		sock.OnData = func(ctx *sim.Context, data []byte, eof bool) {
			got = append(got, data...)
		}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if !connected || sock.State() != SockOpen {
		t.Fatal("not connected")
	}
	if string(got) != "abc" {
		t.Fatalf("echo got %q", got)
	}
	// The tiny 1000-byte test buffer sits below SendLowWater, so the Send
	// requested a space notification and the stack refreshed the credit.
	if sock.Credit() != 1000 {
		t.Fatalf("credit=%d", sock.Credit())
	}
	if app.lib.NumOpenSockets() != 1 {
		t.Fatal("open socket count")
	}
}

func TestConnectRefused(t *testing.T) {
	s, fs, app := setup(t)
	_ = fs
	fs.refuse = true
	var gotErr error
	app.on = func(ctx *sim.Context, msg sim.Message) {
		sk := app.lib.Connect(ctx, proto.IPv4(10, 0, 0, 1), 81)
		sk.OnConnect = func(ctx *sim.Context, err error) { gotErr = err }
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if gotErr == nil {
		t.Fatal("refused connect reported success")
	}
	if app.lib.NumOpenSockets() != 0 {
		t.Fatal("refused socket left open")
	}
}

func TestListenAcceptFlow(t *testing.T) {
	s, fs, app := setup(t)
	var accepted *Socket
	ready := false
	app.on = func(ctx *sim.Context, msg sim.Message) {
		ln := app.lib.Listen(ctx, 80, 16)
		ln.OnReady = func(ctx *sim.Context, err error) { ready = err == nil }
		ln.OnAccept = func(ctx *sim.Context, sk *Socket) { accepted = sk }
		// Simulate the stack announcing an accepted connection. The
		// ListenerReqID must match, so capture it via the fake stack after
		// the op arrives.
		_ = ln
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if !ready {
		t.Fatal("listener not ready")
	}
	op := fs.ops[0].(stack.OpListen)
	app.proc.Deliver(stack.EvAccepted{
		ListenerReqID: op.ReqID, ConnID: 9, Stack: fs.proc,
		RemoteAddr: proto.IPv4(10, 0, 0, 2), RemotePort: 5555, SendBuf: 500,
	})
	s.RunFor(sim.Millisecond)
	if accepted == nil {
		t.Fatal("no accept callback")
	}
	if accepted.RemotePort != 5555 || accepted.Credit() != 500 || accepted.State() != SockOpen {
		t.Fatalf("accepted socket: %+v", accepted)
	}
}

func TestEOFAndClosedEvents(t *testing.T) {
	s, fs, app := setup(t)
	var sock *Socket
	var sawEOF, sawClosed, sawReset bool
	app.on = func(ctx *sim.Context, msg sim.Message) {
		sock = app.lib.Connect(ctx, proto.IPv4(10, 0, 0, 1), 80)
		sock.OnData = func(ctx *sim.Context, data []byte, eof bool) { sawEOF = sawEOF || eof }
		sock.OnClosed = func(ctx *sim.Context, reset bool, err error) {
			sawClosed = true
			sawReset = reset
		}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	app.proc.Deliver(stack.EvData{Stack: fs.proc, ConnID: 77, EOF: true})
	app.proc.Deliver(stack.EvClosed{Stack: fs.proc, ConnID: 77, Reset: true, Err: stack.ErrReplicaFailure})
	s.RunFor(sim.Millisecond)
	if !sawEOF || !sawClosed || !sawReset {
		t.Fatalf("eof=%v closed=%v reset=%v", sawEOF, sawClosed, sawReset)
	}
	if sock.State() != SockClosed {
		t.Fatal("socket not closed")
	}
	// A second EvClosed for the same conn is ignored (already removed).
	sawClosed = false
	app.proc.Deliver(stack.EvClosed{Stack: fs.proc, ConnID: 77})
	s.RunFor(sim.Millisecond)
	if sawClosed {
		t.Fatal("duplicate close delivered")
	}
}

func TestSendSpaceCreditProtocol(t *testing.T) {
	s, _, app := setup(t)
	var sock *Socket
	gotSpace := 0
	app.on = func(ctx *sim.Context, msg sim.Message) {
		sock = app.lib.Connect(ctx, proto.IPv4(10, 0, 0, 1), 80)
		sock.OnConnect = func(ctx *sim.Context, err error) {
			// Exhaust credit below the low-water mark in one send; the lib
			// must set WantSpace and the stack reply refreshes the credit.
			sock.Send(ctx, make([]byte, 900))
		}
		sock.OnSendSpace = func(ctx *sim.Context, avail int) { gotSpace = avail }
		sock.OnData = func(ctx *sim.Context, data []byte, eof bool) {}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if gotSpace != 1000 {
		t.Fatalf("send-space credit not refreshed: %d", gotSpace)
	}
	if sock.Credit() != 1000 {
		t.Fatalf("credit=%d", sock.Credit())
	}
}

func TestSendOnClosedSocketRefused(t *testing.T) {
	s, _, app := setup(t)
	var sock *Socket
	app.on = func(ctx *sim.Context, msg sim.Message) {
		sock = app.lib.Connect(ctx, proto.IPv4(10, 0, 0, 1), 80)
		sock.OnConnect = func(ctx *sim.Context, err error) {
			sock.Close(ctx)
			if sock.Send(ctx, []byte("x")) {
				t.Error("send after close accepted")
			}
			sock.Close(ctx) // double close is a no-op
		}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if sock.State() != SockClosed {
		t.Fatal("not closed")
	}
}

func TestUDPBindSendReceive(t *testing.T) {
	s, fs, app := setup(t)
	var u *UDPSocket
	var got string
	ready := false
	app.on = func(ctx *sim.Context, msg sim.Message) {
		u = app.lib.BindUDP(ctx, 5353)
		u.OnReady = func(ctx *sim.Context, err error) { ready = err == nil }
		u.OnData = func(ctx *sim.Context, src proto.Addr, sport uint16, data []byte) {
			got = string(data)
		}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	if !ready || u.Port != 5353 {
		t.Fatalf("bind: ready=%v port=%d", ready, u.Port)
	}
	app.proc.Deliver(stack.EvUDPData{Stack: fs.proc, UDPID: 5, Src: proto.IPv4(1, 2, 3, 4), SrcPort: 9, Data: []byte("dgram")})
	s.RunFor(sim.Millisecond)
	if got != "dgram" {
		t.Fatalf("udp data %q", got)
	}
	// SendTo reaches the stack.
	before := len(fs.ops)
	appCtxSend(s, app, u)
	s.RunFor(sim.Millisecond)
	if len(fs.ops) <= before {
		t.Fatal("SendTo never reached the stack")
	}
	appCtxClose(s, app, u)
	s.RunFor(sim.Millisecond)
}

// appCtxSend drives u.SendTo from within the app's dispatch context.
func appCtxSend(s *sim.Simulator, app *testApp, u *UDPSocket) {
	prev := app.on
	app.on = func(ctx *sim.Context, msg sim.Message) {
		if msg == "sendto" {
			u.SendTo(ctx, proto.IPv4(10, 0, 0, 1), 5353, []byte("out"))
		}
	}
	app.proc.Deliver("sendto")
	s.RunFor(sim.Microsecond)
	app.on = prev
}

func appCtxClose(s *sim.Simulator, app *testApp, u *UDPSocket) {
	app.on = func(ctx *sim.Context, msg sim.Message) {
		if msg == "close" {
			u.Close(ctx)
			u.Close(ctx) // idempotent
		}
	}
	app.proc.Deliver("close")
}

func TestListenerClose(t *testing.T) {
	s, fs, app := setup(t)
	var ln *Listener
	app.on = func(ctx *sim.Context, msg sim.Message) {
		switch msg {
		case "go":
			ln = app.lib.Listen(ctx, 80, 8)
		case "close":
			ln.Close(ctx)
			ln.Close(ctx) // idempotent
		}
	}
	app.proc.Deliver("go")
	s.RunFor(sim.Millisecond)
	app.proc.Deliver("close")
	s.RunFor(sim.Millisecond)
	var closes int
	for _, op := range fs.ops {
		if _, ok := op.(stack.OpCloseListener); ok {
			closes++
		}
	}
	if closes != 1 {
		t.Fatalf("close ops = %d, want exactly 1", closes)
	}
	// Accept events for the closed listener are ignored.
	op := fs.ops[0].(stack.OpListen)
	app.proc.Deliver(stack.EvAccepted{ListenerReqID: op.ReqID, ConnID: 3, Stack: fs.proc})
	s.RunFor(sim.Millisecond)
	if app.lib.NumOpenSockets() != 0 {
		t.Fatal("closed listener accepted a connection")
	}
}

func TestUnknownEventsIgnored(t *testing.T) {
	s, fs, app := setup(t)
	app.proc.Deliver(stack.EvData{Stack: fs.proc, ConnID: 999, Data: []byte("stray")})
	app.proc.Deliver(stack.EvSendSpace{Stack: fs.proc, ConnID: 999})
	app.proc.Deliver(stack.EvAccepted{ListenerReqID: 424242, ConnID: 1, Stack: fs.proc})
	s.RunFor(sim.Millisecond) // must not panic
	if app.lib.NumOpenSockets() != 0 {
		t.Fatal("stray events created sockets")
	}
}
