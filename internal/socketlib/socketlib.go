// Package socketlib is the user-space socket library of §3.2/§3.3: the
// layer that hides NEaT's replication from applications. It speaks the
// stack package's socket protocol — control-plane calls (listen, connect,
// UDP bind) go to the SYSCALL server, while all data transfer flows
// directly between the application process and the replica owning the
// connection ("mostly system-call-less" sockets).
//
// The library is event-driven like everything else in the simulation: the
// owning application process forwards incoming stack events to
// Lib.HandleEvent and receives completion callbacks. The application never
// learns which replica owns a socket; the library tracks the
// (replica process, connection ID) pair internally, exactly like the
// paper's library translates between socket numbers and communication
// channels.
package socketlib

import (
	"sync/atomic"

	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
)

// reqIDs are globally unique so the SYSCALL server can correlate
// acknowledgments without knowing about applications. The counter is
// atomic because independent simulations may run concurrently (parallel
// experiment sweeps); IDs are pure correlation keys, so which values a
// simulation draws does not influence its behaviour.
var nextReqID atomic.Uint64

func newReqID() uint64 {
	return nextReqID.Add(1)
}

// SendLowWater is the credit level below which Send asks the stack for an
// EvSendSpace notification.
const SendLowWater = 32 << 10

// Lib is one application process's socket library instance.
type Lib struct {
	proc    *sim.Proc
	sysConn *ipc.Conn
	costs   ipc.Costs

	stackConns map[*sim.Proc]*ipc.Conn
	conns      map[connKey]*Socket
	connecting map[uint64]*Socket
	listeners  map[uint64]*Listener
	udps       map[connKey]*UDPSocket
	udpBinding map[uint64]*UDPSocket
}

type connKey struct {
	stack *sim.Proc
	id    uint64
}

// New creates a library bound to the application process app, issuing
// control-plane calls to syscallProc.
func New(app *sim.Proc, syscallProc *sim.Proc, costs ipc.Costs) *Lib {
	return &Lib{
		proc:       app,
		sysConn:    ipc.New(syscallProc, costs),
		costs:      costs,
		stackConns: map[*sim.Proc]*ipc.Conn{},
		conns:      map[connKey]*Socket{},
		connecting: map[uint64]*Socket{},
		listeners:  map[uint64]*Listener{},
		udps:       map[connKey]*UDPSocket{},
		udpBinding: map[uint64]*UDPSocket{},
	}
}

// Proc returns the owning application process.
func (l *Lib) Proc() *sim.Proc { return l.proc }

func (l *Lib) stackConn(p *sim.Proc) *ipc.Conn {
	c, ok := l.stackConns[p]
	if !ok {
		c = ipc.New(p, l.costs)
		l.stackConns[p] = c
	}
	return c
}

// Listener is a listening socket. The replication into per-replica
// subsockets is invisible here: accepted connections simply arrive via
// OnAccept, whatever replica they landed on.
type Listener struct {
	lib   *Lib
	reqID uint64
	Port  uint16

	// OnReady fires once the listen completed on every replica.
	OnReady func(ctx *sim.Context, err error)
	// OnAccept fires per accepted connection.
	OnAccept func(ctx *sim.Context, s *Socket)
}

// Close stops listening: every replica's subsocket is torn down and the
// listen is unregistered from replay.
func (ln *Listener) Close(ctx *sim.Context) {
	if _, ok := ln.lib.listeners[ln.reqID]; !ok {
		return
	}
	delete(ln.lib.listeners, ln.reqID)
	ln.lib.sysConn.Send(ctx, stack.OpCloseListener{App: ln.lib.proc, ReqID: ln.reqID})
}

// Listen creates a listening socket on port.
func (l *Lib) Listen(ctx *sim.Context, port uint16, backlog int) *Listener {
	ln := &Listener{lib: l, reqID: newReqID(), Port: port}
	l.listeners[ln.reqID] = ln
	l.sysConn.Send(ctx, stack.OpListen{App: l.proc, ReqID: ln.reqID, Port: port, Backlog: backlog})
	return ln
}

// SocketState tracks a socket's lifecycle.
type SocketState int

// Socket states.
const (
	SockConnecting SocketState = iota
	SockOpen
	SockClosed
)

// Socket is a connected (or connecting) TCP socket.
type Socket struct {
	lib    *Lib
	stack  *sim.Proc
	connID uint64
	state  SocketState
	credit int

	// RemoteAddr/RemotePort are filled for accepted sockets.
	RemoteAddr proto.Addr
	RemotePort uint16

	// Ctx is free application context (e.g. per-connection HTTP state).
	Ctx interface{}

	// OnConnect resolves Connect (nil error on success).
	OnConnect func(ctx *sim.Context, err error)
	// OnData delivers received bytes; eof marks the peer's FIN.
	OnData func(ctx *sim.Context, data []byte, eof bool)
	// OnSendSpace fires when requested send space became available.
	OnSendSpace func(ctx *sim.Context, avail int)
	// OnClosed fires when the connection dies (orderly close completion is
	// silent; this is for resets and replica failures). err distinguishes
	// the causes: stack.ErrReplicaFailure for a crash that lost the
	// connection's state, stack.ErrReplicaRetired when a scale-down drain
	// deadline force-closed it, nil for a peer reset.
	OnClosed func(ctx *sim.Context, reset bool, err error)
}

// Connect opens a TCP connection via the SYSCALL server, which assigns it
// to a random replica (§3.8).
func (l *Lib) Connect(ctx *sim.Context, addr proto.Addr, port uint16) *Socket {
	return l.ConnectFrom(ctx, addr, port, 0)
}

// ConnectFrom is Connect with an explicit local port (0 = ephemeral). By
// fixing the local port the caller fixes the connection's 4-tuple and so
// the flow hash the server's RSS computes — the adversarial campaigns use
// this to aim traffic at a chosen replica.
func (l *Lib) ConnectFrom(ctx *sim.Context, addr proto.Addr, port, localPort uint16) *Socket {
	s := &Socket{lib: l, state: SockConnecting}
	reqID := newReqID()
	l.connecting[reqID] = s
	l.sysConn.Send(ctx, stack.OpConnect{App: l.proc, ReqID: reqID, Addr: addr, Port: port,
		LocalPort: localPort})
	return s
}

// State returns the socket lifecycle state.
func (s *Socket) State() SocketState { return s.state }

// Credit returns the known free send-buffer space.
func (s *Socket) Credit() int { return s.credit }

// Send streams data on the socket (fast path: directly to the owning
// replica). It returns false if the socket is not open. When the tracked
// credit falls below SendLowWater the stack is asked to notify via
// OnSendSpace; large transfers should chunk on that signal.
func (s *Socket) Send(ctx *sim.Context, data []byte) bool {
	if s.state != SockOpen {
		return false
	}
	s.credit -= len(data)
	want := s.credit < SendLowWater
	s.lib.stackConn(s.stack).Send(ctx, stack.NewOpSend(s.connID, data, bufpool.Ref{}, want))
	return true
}

// SendRef streams slab-carved data on the socket. Ownership of the Ref
// transfers to the stack, which releases it after absorbing the bytes into
// the connection's send stream; if the socket is not open the Ref is
// released here and false is returned. Applications that batch payloads in
// a bufpool.Arena use this to avoid a fresh []byte allocation per send.
func (s *Socket) SendRef(ctx *sim.Context, ref bufpool.Ref) bool {
	if s.state != SockOpen {
		ref.Release()
		return false
	}
	s.credit -= len(ref.B)
	want := s.credit < SendLowWater
	s.lib.stackConn(s.stack).Send(ctx, stack.NewOpSend(s.connID, ref.B, ref, want))
	return true
}

// Close performs an orderly close.
func (s *Socket) Close(ctx *sim.Context) {
	if s.state != SockOpen {
		return
	}
	s.state = SockClosed
	s.lib.stackConn(s.stack).Send(ctx, stack.OpClose{ConnID: s.connID})
}

// Abort resets the connection.
func (s *Socket) Abort(ctx *sim.Context) {
	if s.state != SockOpen {
		return
	}
	s.state = SockClosed
	s.lib.stackConn(s.stack).Send(ctx, stack.OpAbort{ConnID: s.connID})
}

// UDPSocket is a bound UDP socket.
type UDPSocket struct {
	lib   *Lib
	stack *sim.Proc
	udpID uint64
	Port  uint16

	// OnReady resolves BindUDP.
	OnReady func(ctx *sim.Context, err error)
	// OnData delivers received datagrams.
	OnData func(ctx *sim.Context, src proto.Addr, srcPort uint16, data []byte)
}

// BindUDP binds a UDP port (0 = ephemeral) on a replica chosen by the
// SYSCALL server.
func (l *Lib) BindUDP(ctx *sim.Context, port uint16) *UDPSocket {
	u := &UDPSocket{lib: l}
	reqID := newReqID()
	l.udpBinding[reqID] = u
	l.sysConn.Send(ctx, stack.OpUDPBind{App: l.proc, ReqID: reqID, Port: port})
	return u
}

// SendTo transmits one datagram.
func (u *UDPSocket) SendTo(ctx *sim.Context, addr proto.Addr, port uint16, data []byte) {
	if u.stack == nil {
		return
	}
	u.lib.stackConn(u.stack).Send(ctx, stack.OpUDPSendTo{UDPID: u.udpID, Addr: addr, Port: port, Data: data})
}

// Close releases the binding.
func (u *UDPSocket) Close(ctx *sim.Context) {
	if u.stack == nil {
		return
	}
	u.lib.stackConn(u.stack).Send(ctx, stack.OpUDPClose{UDPID: u.udpID})
	delete(u.lib.udps, connKey{u.stack, u.udpID})
	u.stack = nil
}

// HandleEvent dispatches a stack event to the owning socket; it reports
// whether msg was a socket event (applications pass every message through
// and handle the rest themselves).
func (l *Lib) HandleEvent(ctx *sim.Context, msg sim.Message) bool {
	switch m := msg.(type) {
	case stack.EvListening:
		ln, ok := l.listeners[m.ReqID]
		if ok && ln.OnReady != nil {
			ln.OnReady(ctx, m.Err)
		}
		return true
	case stack.EvAccepted:
		ln, ok := l.listeners[m.ListenerReqID]
		if !ok {
			// Listener gone: refuse silently (the conn will be reset when
			// the app never writes; a real library would abort here).
			return true
		}
		s := &Socket{lib: l, stack: m.Stack, connID: m.ConnID, state: SockOpen,
			credit: m.SendBuf, RemoteAddr: m.RemoteAddr, RemotePort: m.RemotePort}
		l.conns[connKey{m.Stack, m.ConnID}] = s
		if ln.OnAccept != nil {
			ln.OnAccept(ctx, s)
		}
		return true
	case stack.EvConnected:
		s, ok := l.connecting[m.ReqID]
		if !ok {
			return true
		}
		delete(l.connecting, m.ReqID)
		if m.Err != nil {
			s.state = SockClosed
			if s.OnConnect != nil {
				s.OnConnect(ctx, m.Err)
			}
			return true
		}
		s.stack = m.Stack
		s.connID = m.ConnID
		s.credit = m.SendBuf
		s.state = SockOpen
		l.conns[connKey{m.Stack, m.ConnID}] = s
		if s.OnConnect != nil {
			s.OnConnect(ctx, nil)
		}
		return true
	case stack.EvData:
		s, ok := l.conns[connKey{m.Stack, m.ConnID}]
		if ok && s.OnData != nil {
			s.OnData(ctx, m.Data, m.EOF)
		}
		return true
	case stack.EvSendSpace:
		s, ok := l.conns[connKey{m.Stack, m.ConnID}]
		if ok {
			s.credit = m.Available
			if s.OnSendSpace != nil {
				s.OnSendSpace(ctx, m.Available)
			}
		}
		return true
	case stack.EvClosed:
		k := connKey{m.Stack, m.ConnID}
		s, ok := l.conns[k]
		if ok {
			delete(l.conns, k)
			wasOpen := s.state == SockOpen
			s.state = SockClosed
			if s.OnClosed != nil && (wasOpen || m.Reset) {
				s.OnClosed(ctx, m.Reset, m.Err)
			}
		}
		return true
	case stack.EvUDPBound:
		u, ok := l.udpBinding[m.ReqID]
		if !ok {
			return true
		}
		delete(l.udpBinding, m.ReqID)
		if m.Err == nil {
			u.stack = m.Stack
			u.udpID = m.UDPID
			u.Port = m.Port
			l.udps[connKey{m.Stack, m.UDPID}] = u
		}
		if u.OnReady != nil {
			u.OnReady(ctx, m.Err)
		}
		return true
	case stack.EvRehomed:
		// The connection's replica was restored from a checkpoint into a
		// new process: re-key the socket so the fast path follows it.
		oldKey := connKey{m.OldStack, m.ConnID}
		s, ok := l.conns[oldKey]
		if !ok {
			return true
		}
		delete(l.conns, oldKey)
		s.stack = m.NewStack
		l.conns[connKey{m.NewStack, m.ConnID}] = s
		return true
	case stack.EvUDPData:
		u, ok := l.udps[connKey{m.Stack, m.UDPID}]
		if ok && u.OnData != nil {
			u.OnData(ctx, m.Src, m.SrcPort, m.Data)
		}
		return true
	}
	return false
}

// NumOpenSockets counts sockets in SockOpen state (tests).
func (l *Lib) NumOpenSockets() int {
	n := 0
	for _, s := range l.conns {
		if s.state == SockOpen {
			n++
		}
	}
	return n
}
