package ipc

import (
	"testing"

	"neat/internal/sim"
)

// ringHarness is a two-process (sender on core 0, receiver on core 1)
// channel fixture. The sender forwards every inbox message over the
// connection; the receiver appends to got.
type ringHarness struct {
	s    *sim.Simulator
	conn *Conn
	src  *sim.Proc
	got  []sim.Message
}

func newRingHarness(costs Costs) *ringHarness {
	h := &ringHarness{s: sim.New(1)}
	m := sim.NewMachine(h.s, "m", 2, 1, 1_000_000_000)
	dst := sim.NewProc(m.Thread(1, 0), "dst", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		h.got = append(h.got, msg)
	}), sim.ProcConfig{})
	h.conn = New(dst, costs)
	h.src = sim.NewProc(m.Thread(0, 0), "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		if burst, ok := msg.(int); ok {
			for i := 0; i < burst; i++ {
				h.conn.Send(ctx, i)
			}
			return
		}
		h.conn.Send(ctx, msg)
	}), sim.ProcConfig{})
	return h
}

// TestIPCSendRecvZeroAlloc pins the steady-state fast path: once the ring
// owns its pooled segments and the receiver's inbox its double buffers,
// one send → deliver → receive round trip allocates nothing.
func TestIPCSendRecvZeroAlloc(t *testing.T) {
	h := newRingHarness(DefaultCosts())
	for i := 0; i < 64; i++ {
		h.src.Deliver("warm")
		h.s.Drain()
	}
	allocs := testing.AllocsPerRun(500, func() {
		h.src.Deliver("x")
		h.s.Drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state send/recv allocates %v per round trip, want 0", allocs)
	}
}

// TestIPCBatchDrainZeroAlloc is the vector variant: a 32-message burst in
// one sender activation — pushed through the ring as in-flight slots and
// drained by the receiver as same-timestamp batches — stays allocation-free
// too. The burst wraps segment boundaries over the runs, so this also pins
// the free-list reuse (segments recycle, never reallocate).
func TestIPCBatchDrainZeroAlloc(t *testing.T) {
	costs := DefaultCosts()
	costs.CoalesceWakes = true // exercise the ride path as well
	h := newRingHarness(costs)
	for i := 0; i < 64; i++ {
		h.src.Deliver(32)
		h.s.Drain()
	}
	allocs := testing.AllocsPerRun(500, func() {
		h.src.Deliver(32)
		h.s.Drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch drain allocates %v per burst, want 0", allocs)
	}
}

// TestIPCRingOverflowStalls pins the deterministic backpressure semantics:
// a burst overrunning RingDepth stalls the sender on the head slot, counts
// the stall on both the connection and the simulator, keeps delivery FIFO,
// and never delivers a stalled message before the slot it waited for freed.
func TestIPCRingOverflowStalls(t *testing.T) {
	costs := Costs{SendCycles: 100, FastLatency: 300, SlowLatency: 5000, RingDepth: 2}
	h := newRingHarness(costs)
	h.src.Deliver(4) // one activation, four sends, depth 2 → two stalls
	h.s.Drain()

	if got := h.conn.Stats().Stalls; got != 2 {
		t.Fatalf("conn stalls = %d, want 2", got)
	}
	if got := h.s.IPCStats().Stalls; got != 2 {
		t.Fatalf("sim.ipc.stalls = %d, want 2", got)
	}
	if len(h.got) != 4 {
		t.Fatalf("received %d messages, want 4", len(h.got))
	}
	for i, m := range h.got {
		if m.(int) != i {
			t.Fatalf("FIFO violated: got %v", h.got)
		}
	}
	// The stalled sends waited: their extra delay is the head deadline
	// (300) on top of their own latency, so the run takes strictly longer
	// than four unstalled sends (4×100 cycles + 300 < end).
	if end := h.s.Now(); end < 1000 {
		t.Fatalf("drain finished at %v; stalled sends should have waited past 1000", end)
	}

	// Determinism regression: an identical run reproduces the schedule.
	h2 := newRingHarness(costs)
	h2.src.Deliver(4)
	h2.s.Drain()
	if h2.s.Now() != h.s.Now() || len(h2.got) != len(h.got) {
		t.Fatalf("overflow schedule not reproducible: %v/%d vs %v/%d",
			h2.s.Now(), len(h2.got), h.s.Now(), len(h.got))
	}
}

// TestIPCInjectOrdering pins Inject's contract: an injected message lands
// in the peer's inbox immediately, ahead of every in-flight ring message
// (those are still in transit and deliver at their deadlines).
func TestIPCInjectOrdering(t *testing.T) {
	h := newRingHarness(Costs{SendCycles: 100, FastLatency: 300, SlowLatency: 5000})
	h.src.Deliver(3) // in-flight ring batch, deliveries at t≈400..600
	h.s.After(50, func() { h.conn.Inject("mgmt") })
	h.s.Drain()

	if len(h.got) != 4 {
		t.Fatalf("received %d messages, want 4: %v", len(h.got), h.got)
	}
	if h.got[0] != "mgmt" {
		t.Fatalf("injected message did not overtake the in-flight ring batch: %v", h.got)
	}
	for i := 1; i < 4; i++ {
		if h.got[i].(int) != i-1 {
			t.Fatalf("ring batch order violated after inject: %v", h.got)
		}
	}
	if h.conn.Stats().Sent != 4 {
		t.Fatalf("inject not accounted on the channel: %+v", h.conn.Stats())
	}
}

// TestIPCCoalescedRideFIFO pins the wake-coalescing model: a send finding
// the ring armed skips its doorbell (counted on connection and simulator),
// shares the predecessor's delivery window, and never overtakes it — on the
// colocated slow path just as on the fast path.
func TestIPCCoalescedRideFIFO(t *testing.T) {
	for _, tc := range []struct {
		name      string
		colocated bool
	}{{"fast", false}, {"colocated", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(1)
			m := sim.NewMachine(s, "m", 2, 1, 1_000_000_000)
			srcTh := m.Thread(0, 0)
			dstTh := m.Thread(1, 0)
			if tc.colocated {
				dstTh = srcTh
			}
			var got []sim.Message
			var at []sim.Time
			dst := sim.NewProc(dstTh, "dst", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
				got = append(got, msg)
				at = append(at, s.Now())
			}), sim.ProcConfig{})
			costs := Costs{SendCycles: 200, FastLatency: 300, SlowLatency: 5000,
				CoalesceWakes: true, DoorbellCycles: 120}
			conn := New(dst, costs)
			src := sim.NewProc(srcTh, "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
				conn.Send(ctx, 0)
				conn.Send(ctx, 1) // ring armed: rides, no doorbell
			}), sim.ProcConfig{})
			src.Deliver("go")
			s.Drain()

			if len(got) != 2 || got[0].(int) != 0 || got[1].(int) != 1 {
				t.Fatalf("order violated: %v", got)
			}
			if at[1] < at[0] {
				t.Fatalf("rider delivered before its predecessor: %v", at)
			}
			st := conn.Stats()
			if st.WakesSaved != 1 {
				t.Fatalf("wakes saved = %d, want 1 (stats %+v)", st.WakesSaved, st)
			}
			if s.IPCStats().WakesSaved != 1 {
				t.Fatalf("sim.ipc.wakes_saved = %d, want 1", s.IPCStats().WakesSaved)
			}
			wantSlow := uint64(0)
			if tc.colocated {
				wantSlow = 2
			}
			if st.SlowPath != wantSlow {
				t.Fatalf("slow path = %d, want %d", st.SlowPath, wantSlow)
			}
		})
	}
}

// TestIPCDepthHighWater pins the occupancy instrumentation: the high-water
// mark reflects the deepest in-flight burst, on the connection and the
// simulator alike, and InFlight drains as simulated time passes deadlines.
func TestIPCDepthHighWater(t *testing.T) {
	h := newRingHarness(DefaultCosts())
	h.src.Deliver(8)
	h.s.Drain()
	if hw := h.conn.Stats().DepthHW; hw != 8 {
		t.Fatalf("conn depth high-water = %d, want 8", hw)
	}
	if hw := h.s.IPCStats().DepthHW; hw != 8 {
		t.Fatalf("sim.ipc.depth_hw = %d, want 8", hw)
	}
	if n := h.conn.InFlight(); n != 8 {
		// Drain ran past every deadline, but retirement is lazy (popped on
		// the next send); InFlight reports the modeled occupancy as-is.
		t.Logf("in-flight after drain: %d", n)
	}
	h.src.Deliver("late") // expires the 8 passed deadlines, pushes 1
	h.s.Drain()
	if n := h.conn.InFlight(); n != 1 {
		t.Fatalf("in-flight after expiry = %d, want 1", n)
	}
}
