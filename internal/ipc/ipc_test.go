package ipc

import (
	"testing"

	"neat/internal/sim"
)

func TestFastPathLatency(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 2, 1, 1_000_000_000)
	var recvAt sim.Time
	dst := sim.NewProc(m.Thread(1, 0), "dst", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		recvAt = s.Now()
	}), sim.ProcConfig{})
	conn := New(dst, Costs{SendCycles: 100, FastLatency: 300, SlowLatency: 5000})
	src := sim.NewProc(m.Thread(0, 0), "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		conn.Send(ctx, "hi")
	}), sim.ProcConfig{})
	src.Deliver("go")
	s.Drain()
	// Sender dispatch: 100 cycles = 100ns, then 300ns fast wake.
	if recvAt != 400 {
		t.Fatalf("recvAt=%v, want 400", recvAt)
	}
	st := conn.Stats()
	if st.Sent != 1 || st.SlowPath != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSlowPathWhenColocated(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 1, 1, 1_000_000_000)
	th := m.Thread(0, 0)
	var recvAt sim.Time
	dst := sim.NewProc(th, "dst", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		recvAt = s.Now()
	}), sim.ProcConfig{})
	conn := New(dst, Costs{SendCycles: 100, FastLatency: 300, SlowLatency: 5000})
	src := sim.NewProc(th, "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		conn.Send(ctx, "hi")
	}), sim.ProcConfig{})
	src.Deliver("go")
	s.Drain()
	if recvAt != 5100 {
		t.Fatalf("recvAt=%v, want 5100 (slow path)", recvAt)
	}
	if conn.Stats().SlowPath != 1 {
		t.Fatalf("slow path not counted: %+v", conn.Stats())
	}
}

func TestRebindAfterCrash(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 3, 1, 1_000_000_000)
	var got []string
	mk := func(th *sim.HWThread, name string) *sim.Proc {
		return sim.NewProc(th, name, sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
			got = append(got, name+":"+msg.(string))
		}), sim.ProcConfig{})
	}
	old := mk(m.Thread(1, 0), "old")
	conn := New(old, DefaultCosts())
	src := sim.NewProc(m.Thread(0, 0), "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		conn.Send(ctx, msg.(string))
	}), sim.ProcConfig{})

	src.Deliver("one")
	s.Drain()
	old.Crash(sim.ErrKilled)
	replacement := mk(m.Thread(2, 0), "new")
	conn.Rebind(replacement)
	src.Deliver("two")
	s.Drain()
	if len(got) != 2 || got[0] != "old:one" || got[1] != "new:two" {
		t.Fatalf("got %v", got)
	}
	if conn.Peer() != replacement {
		t.Fatal("peer not rebound")
	}
}

func TestNilPeerDropsSilently(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 1, 1, 1_000_000_000)
	conn := New(nil, DefaultCosts())
	src := sim.NewProc(m.Thread(0, 0), "src", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		conn.Send(ctx, "x")
	}), sim.ProcConfig{})
	src.Deliver("go")
	s.Drain() // must not panic
	if conn.Stats().Sent != 0 {
		t.Fatalf("sent on nil peer: %+v", conn.Stats())
	}
}
