// Package ipc models the user-space communication channels of NewtOS
// (§3.2, §4 of the paper; detailed in Hruby et al., "On Sockets and System
// Calls", TRIOS 2014). A channel is a shared-memory queue between exactly
// two processes. When both endpoints run on dedicated cores, the receiver
// halts in MWAIT and the sender's memory write wakes it without kernel
// assistance — the fast path. When the endpoints share a core (or hardware
// thread), the kernel must be involved to switch processes, which is the
// slow path NEaT falls back to under low load.
//
// The package charges the sender the enqueue cost and delays delivery by
// the path-appropriate notification latency. Endpoints are rebindable so
// the recovery manager can splice a restarted replica into existing
// channels.
package ipc

import "neat/internal/sim"

// Costs parameterizes a channel.
type Costs struct {
	// SendCycles is charged to the sender per message (queue write +
	// doorbell).
	SendCycles int64
	// FastLatency is the notification latency when the receiver owns its
	// hardware thread (MWAIT wake: a cache-line transfer).
	FastLatency sim.Time
	// SlowLatency is the latency when sender and receiver share a hardware
	// thread and the kernel must schedule the receiver.
	SlowLatency sim.Time
}

// DefaultCosts returns the calibrated channel costs: a ~200-cycle enqueue,
// ~0.3 µs MWAIT wake, ~2.5 µs kernel-assisted switch.
func DefaultCosts() Costs {
	return Costs{
		SendCycles:  200,
		FastLatency: 300 * sim.Nanosecond,
		SlowLatency: 2500 * sim.Nanosecond,
	}
}

// Conn is one direction of a channel: a handle through which the owning
// process sends messages to a peer process.
type Conn struct {
	peer  *sim.Proc
	costs Costs
	stats Stats
}

// Stats counts channel activity.
type Stats struct {
	Sent     uint64
	SlowPath uint64
}

// New creates a connection towards peer.
func New(peer *sim.Proc, costs Costs) *Conn {
	return &Conn{peer: peer, costs: costs}
}

// Peer returns the current destination process.
func (c *Conn) Peer() *sim.Proc { return c.peer }

// Rebind points the connection at a new peer process. The recovery manager
// uses this to splice a freshly spawned replica into the channels of the
// crashed one.
func (c *Conn) Rebind(peer *sim.Proc) { c.peer = peer }

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// Inject delivers msg to the peer immediately, outside any simulated
// process context. The management plane uses it where it previously wrote
// into processes directly (Proc.Deliver): the message still flows through
// — and is accounted on — a channel, but no cycles are charged and no
// notification latency applies, matching the zero-cost semantics of the
// direct write it replaces.
func (c *Conn) Inject(msg sim.Message) {
	if c.peer == nil {
		return
	}
	c.stats.Sent++
	c.peer.Deliver(msg)
}

// Send transmits msg from the running process (ctx) to the peer. The
// sender is charged the enqueue cost; delivery is delayed by the fast or
// slow notification latency depending on whether the peer shares the
// sender's hardware thread.
func (c *Conn) Send(ctx *sim.Context, msg sim.Message) {
	if c.peer == nil {
		return
	}
	ctx.Charge(c.costs.SendCycles)
	c.stats.Sent++
	lat := c.costs.FastLatency
	if c.peer.Thread() == ctx.Proc.Thread() {
		// Colocated processes cannot use MWAIT wake: the kernel must
		// context-switch (§4).
		lat = c.costs.SlowLatency
		c.stats.SlowPath++
	}
	ctx.SendDelayed(c.peer, msg, lat)
}
