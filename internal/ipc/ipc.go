// Package ipc models the user-space communication channels of NewtOS
// (§3.2, §4 of the paper; detailed in Hruby et al., "On Sockets and System
// Calls", TRIOS 2014). A channel is a bounded shared-memory SPSC ring
// between exactly two processes. When both endpoints run on dedicated
// cores, the receiver halts in MWAIT and the sender's memory write wakes
// it without kernel assistance — the fast path. When the endpoints share a
// core (or hardware thread), the kernel must be involved to switch
// processes, which is the slow path NEaT falls back to under low load.
//
// The package charges the sender the enqueue cost and delays delivery by
// the path-appropriate notification latency. It additionally models the
// ring itself: every connection tracks its in-flight slots (sent but not
// yet consumed by the receiver) in a bounded FIFO of delivery deadlines,
// backed by pooled fixed-size segments so steady-state Send is
// allocation-free. The ring drives two behaviors:
//
//   - Backpressure: a send finding the ring full stalls the sender — it
//     spins (CostPolling) until the head slot frees and its message is
//     delayed accordingly, with a Stalls counter on both the connection
//     and the simulator (sim.ipc.stalls).
//   - Wake coalescing (opt-in, Costs.CoalesceWakes): a send finding the
//     ring already armed (occupancy > 0) skips the doorbell — the sender
//     saves the doorbell cycles and the message rides the in-flight
//     predecessor's delivery window, drained by the same receiver
//     activation. Off by default, preserving the calibrated per-message
//     doorbell behavior byte for byte.
//
// Endpoints are rebindable so the recovery manager can splice a restarted
// replica into existing channels.
package ipc

import "neat/internal/sim"

// DefaultRingDepth is the per-connection in-flight bound when
// Costs.RingDepth is zero: deep enough that the default campaigns never
// stall, shallow enough to bound a runaway sender.
const DefaultRingDepth = 8192

// DefaultDoorbellCycles is the share of SendCycles attributed to the
// doorbell write (the MWAIT monitor touch or kernel notify) when
// Costs.DoorbellCycles is zero. A coalesced send saves exactly this.
const DefaultDoorbellCycles = 120

// Costs parameterizes a channel.
type Costs struct {
	// SendCycles is charged to the sender per message (queue write +
	// doorbell).
	SendCycles int64
	// FastLatency is the notification latency when the receiver owns its
	// hardware thread (MWAIT wake: a cache-line transfer).
	FastLatency sim.Time
	// SlowLatency is the latency when sender and receiver share a hardware
	// thread and the kernel must schedule the receiver.
	SlowLatency sim.Time
	// RingDepth bounds the in-flight messages per connection; a send
	// finding the ring full stalls the sender until the head slot frees.
	// 0 selects DefaultRingDepth.
	RingDepth int
	// CoalesceWakes enables doorbell/wake coalescing: a sender touching an
	// already-armed ring skips the doorbell (saving DoorbellCycles) and
	// its message shares the in-flight predecessor's delivery window; the
	// receiver drains the ring until empty before re-arming. Off by
	// default — per-message doorbells, the calibrated legacy behavior.
	CoalesceWakes bool
	// DoorbellCycles is the portion of SendCycles a coalesced send skips.
	// Only read when CoalesceWakes is on; 0 selects DefaultDoorbellCycles.
	DoorbellCycles int64
}

// DefaultCosts returns the calibrated channel costs: a ~200-cycle enqueue,
// ~0.3 µs MWAIT wake, ~2.5 µs kernel-assisted switch. Ring depth and
// doorbell share take the package defaults; coalescing is off.
func DefaultCosts() Costs {
	return Costs{
		SendCycles:  200,
		FastLatency: 300 * sim.Nanosecond,
		SlowLatency: 2500 * sim.Nanosecond,
	}
}

func (c Costs) ringDepth() int {
	if c.RingDepth <= 0 {
		return DefaultRingDepth
	}
	return c.RingDepth
}

func (c Costs) doorbellCycles() int64 {
	if c.DoorbellCycles <= 0 {
		return DefaultDoorbellCycles
	}
	return c.DoorbellCycles
}

// ringSegSlots is the capacity of one pooled ring segment. 256 deadlines
// per segment keeps a default-depth ring under three dozen segments while
// making segment turnover (the only pool traffic) rare.
const ringSegSlots = 256

// ringSeg is one fixed-size block of ring slots. Segments are chained
// FIFO; drained segments return to the owning ring's free list, never to
// the garbage collector, so steady-state push/pop allocates nothing.
//
// Ownership contract: a segment belongs to exactly one ring at a time —
// either chained between head and tail holding live deadlines, or parked
// on that ring's free list. Rings never share segments (connections may
// live in different PDES domains), and slots outside [headIdx, tailIdx)
// are dead by index bookkeeping alone, never cleared.
type ringSeg struct {
	next *ringSeg
	at   [ringSegSlots]sim.Time
}

// ring is a bounded FIFO of in-flight delivery deadlines: one slot per
// sent-but-not-yet-consumed message, retired from the head as simulated
// time passes the deadline — the model analogue of the receiver freeing
// SPSC slots in consumption order.
type ring struct {
	head, tail       *ringSeg
	headIdx, tailIdx int
	n                int
	free             *ringSeg
}

func (r *ring) getSeg() *ringSeg {
	if s := r.free; s != nil {
		r.free = s.next
		s.next = nil
		return s
	}
	return new(ringSeg)
}

func (r *ring) push(at sim.Time) {
	switch {
	case r.tail == nil:
		seg := r.getSeg()
		r.head, r.tail = seg, seg
		r.headIdx, r.tailIdx = 0, 0
	case r.tailIdx == ringSegSlots:
		seg := r.getSeg()
		r.tail.next = seg
		r.tail = seg
		r.tailIdx = 0
	}
	r.tail.at[r.tailIdx] = at
	r.tailIdx++
	r.n++
}

// headAt returns the oldest in-flight deadline; only valid when n > 0.
func (r *ring) headAt() sim.Time { return r.head.at[r.headIdx] }

func (r *ring) pop() sim.Time {
	at := r.head.at[r.headIdx]
	r.headIdx++
	r.n--
	if r.headIdx == ringSegSlots || r.n == 0 {
		seg := r.head
		r.head = seg.next
		r.headIdx = 0
		seg.next = r.free
		r.free = seg
		if r.head == nil {
			r.tail = nil
			r.tailIdx = 0
		}
	}
	return at
}

// reset drops all in-flight slots (endpoint replaced: nothing already sent
// will be consumed by the new incarnation's ring).
func (r *ring) reset() {
	for r.n > 0 {
		r.pop()
	}
}

// Conn is one direction of a channel: a handle through which the owning
// process sends messages to a peer process.
type Conn struct {
	peer  *sim.Proc
	costs Costs
	stats Stats
	ring  ring
	// lastDelay is the notification delay of the newest in-flight send.
	// Later sends never use a smaller delay while the ring is occupied,
	// which keeps per-connection delivery FIFO even when a coalesced send
	// skips the doorbell.
	lastDelay sim.Time
}

// Stats counts channel activity.
type Stats struct {
	Sent     uint64
	SlowPath uint64
	// WakesSaved counts sends that rode an armed ring instead of paying
	// their own doorbell (CoalesceWakes only).
	WakesSaved uint64
	// Stalls counts sends that found the ring full and waited for the
	// head slot to free.
	Stalls uint64
	// DepthHW is the in-flight occupancy high-water mark.
	DepthHW int
}

// New creates a connection towards peer.
func New(peer *sim.Proc, costs Costs) *Conn {
	return &Conn{peer: peer, costs: costs}
}

// Peer returns the current destination process.
func (c *Conn) Peer() *sim.Proc { return c.peer }

// Rebind points the connection at a new peer process and discards the
// in-flight ring state: messages queued towards the old incarnation are
// gone with it. The recovery manager uses this to splice a freshly spawned
// replica into the channels of the crashed one.
func (c *Conn) Rebind(peer *sim.Proc) {
	c.peer = peer
	c.ring.reset()
	c.lastDelay = 0
}

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() Stats { return c.stats }

// InFlight returns the current modeled ring occupancy (sent messages whose
// delivery deadline has not yet passed).
func (c *Conn) InFlight() int { return c.ring.n }

// Inject delivers msg to the peer immediately, outside any simulated
// process context. The management plane uses it where it previously wrote
// into processes directly (Proc.Deliver): the message still flows through
// — and is accounted on — a channel, but no cycles are charged and no
// notification latency applies, matching the zero-cost semantics of the
// direct write it replaces. An injected message bypasses the ring: it
// lands in the peer's inbox now, ahead of every in-flight ring message
// (those are still in transit and deliver at their deadlines).
func (c *Conn) Inject(msg sim.Message) {
	if c.peer == nil {
		return
	}
	c.stats.Sent++
	c.peer.Deliver(msg)
}

// Send transmits msg from the running process (ctx) to the peer. The
// sender is charged the enqueue cost; delivery is delayed by the fast or
// slow notification latency depending on whether the peer shares the
// sender's hardware thread. The in-flight ring modulates both: a full ring
// stalls the sender until its head slot frees, and (with CoalesceWakes) an
// armed ring lets the message skip the doorbell and ride its predecessor's
// delivery window.
func (c *Conn) Send(ctx *sim.Context, msg sim.Message) {
	if c.peer == nil {
		return
	}
	now := ctx.Sim.Now()
	// Retire slots whose delivery deadline has passed: the receiver has
	// consumed them, freeing ring space in FIFO order.
	for c.ring.n > 0 && c.ring.headAt() <= now {
		c.ring.pop()
	}
	c.stats.Sent++
	lat := c.costs.FastLatency
	slow := c.peer.Thread() == ctx.Proc.Thread()
	if slow {
		// Colocated processes cannot use MWAIT wake: the kernel must
		// context-switch (§4).
		lat = c.costs.SlowLatency
		c.stats.SlowPath++
	}
	ctx.Sim.NoteIPCSend(slow)
	cycles := c.costs.SendCycles
	delay := lat
	switch {
	case c.ring.n >= c.costs.ringDepth():
		// Full ring: deterministic sender-side backpressure. The sender
		// spins until the receiver consumes the head slot, then enqueues;
		// the message cannot deliver before that slot freed.
		c.stats.Stalls++
		ctx.Sim.NoteIPCStall()
		ctx.ChargeAs(sim.CostPolling, c.costs.SendCycles)
		head := c.ring.pop()
		delay = head - now + lat
		if delay < c.lastDelay {
			delay = c.lastDelay // never overtake in-flight predecessors
		}
	case c.costs.CoalesceWakes && c.ring.n > 0:
		// Armed ring: the predecessor's doorbell is still pending, so
		// this send skips its own and the message is drained by the same
		// receiver activation — no earlier, no later.
		c.stats.WakesSaved++
		ctx.Sim.NoteIPCWakeSaved()
		if cycles -= c.costs.doorbellCycles(); cycles < 0 {
			cycles = 0
		}
		delay = c.lastDelay
	}
	ctx.Charge(cycles)
	c.ring.push(now + delay)
	c.lastDelay = delay
	if c.ring.n > c.stats.DepthHW {
		c.stats.DepthHW = c.ring.n
		ctx.Sim.NoteIPCDepth(c.ring.n)
	}
	ctx.SendDelayed(c.peer, msg, delay)
}
