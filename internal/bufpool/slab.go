package bufpool

import "sync"

// Slab support: refcounted payload blocks carved into Refs, so application
// payloads hand off by reference (scatter-gather) instead of allocating a
// fresh []byte per message.
//
// Ownership contract (extends the package contract): a Ref is a view into a
// refcounted slab block. Whoever holds a Ref may read r.B until it calls
// Release; handing a Ref across a channel transfers that obligation to the
// receiver. Retain makes an additional independent obligation. When the last
// reference drops, the block returns to the ordinary size-class pools.
//
// The refcount is a plain int, not atomic: a slab is only ever touched by
// one simulator goroutine at a time (Refs never cross simulators), and
// cross-goroutine block recycling is synchronized by the sync.Pools.

// slab is one refcounted block.
type slab struct {
	buf  []byte
	refs int
}

var slabPool = sync.Pool{New: func() any { return new(slab) }}

func newSlab(n int) *slab {
	s := slabPool.Get().(*slab)
	s.buf = Get(n)
	s.refs = 1
	return s
}

func (s *slab) release() {
	s.refs--
	if s.refs == 0 {
		Put(s.buf)
		s.buf = nil
		slabPool.Put(s)
	}
}

// Ref is a reference-counted view of bytes inside a slab block. The zero
// Ref is valid and inert: B is nil and Release is a no-op, so non-slab
// code paths can pass Refs around unconditionally.
type Ref struct {
	s *slab
	B []byte
}

// Retain adds an independent reference to the underlying block and returns
// the same view. Each Retain obligates one more Release.
func (r Ref) Retain() Ref {
	if r.s != nil {
		r.s.refs++
	}
	return r
}

// Release drops this reference. The last Release returns the block to the
// buffer pools. Using r.B after Release is a use-after-free.
func (r Ref) Release() {
	if r.s != nil {
		r.s.release()
	}
}

// Arena carves Refs out of pooled blocks. Small allocations share a block;
// an allocation larger than half the block size gets a dedicated block so
// one big payload does not pin a mostly-idle shared block. The arena holds
// its own reference on the current block, dropped when it moves to the
// next, so a block is recycled exactly when the arena has moved on AND
// every Ref carved from it has been released.
type Arena struct {
	// BlockSize is the shared-block capacity; zero defaults to 16 KiB.
	BlockSize int

	cur *slab
	off int
}

const defaultArenaBlock = 16384

// Alloc returns a Ref over n writable bytes. The caller fills r.B and hands
// the Ref off (or Releases it on error paths).
func (a *Arena) Alloc(n int) Ref {
	bs := a.BlockSize
	if bs == 0 {
		bs = defaultArenaBlock
	}
	if n > bs/2 {
		s := newSlab(n)
		return Ref{s: s, B: s.buf[:n:n]}
	}
	if a.cur == nil || a.off+n > len(a.cur.buf) {
		if a.cur != nil {
			a.cur.release()
		}
		a.cur = newSlab(bs)
		a.off = 0
	}
	b := a.cur.buf[a.off : a.off+n : a.off+n]
	a.off += n
	a.cur.refs++
	return Ref{s: a.cur, B: b}
}

// AllocCopy is Alloc plus a copy-in of p.
func (a *Arena) AllocCopy(p []byte) Ref {
	r := a.Alloc(len(p))
	copy(r.B, p)
	return r
}

// AllocString is Alloc plus a copy-in of s, avoiding a []byte(s) conversion
// allocation at the caller.
func (a *Arena) AllocString(s string) Ref {
	r := a.Alloc(len(s))
	copy(r.B, s)
	return r
}
