package bufpool

import "testing"

func TestGetLenAndClassCap(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1514, 2048, 60000, 300000} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len=%d", n, len(b))
		}
		if ci := classIndex(n); ci >= 0 && cap(b) < classes[ci] {
			t.Fatalf("Get(%d): cap=%d, want >= %d", n, cap(b), classes[ci])
		}
		Put(b)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	b := Get(100)
	b[0] = 0xAB
	Put(b)
	// The next Get of the same class may return the same backing array.
	c := Get(100)
	if cap(c) != 256 {
		t.Fatalf("cap=%d, want class size 256", cap(c))
	}
	Put(c)
}

func TestPutForeignBuffer(t *testing.T) {
	Put(nil)                  // no-op
	Put(make([]byte, 0, 100)) // off-class capacity: dropped
	Put(make([]byte, 1<<20))  // larger than every class: dropped
}

func TestAppendWithinClassDoesNotGrow(t *testing.T) {
	b := Get(1514)[:0]
	for i := 0; i < 1514; i++ {
		b = append(b, byte(i))
	}
	if cap(b) != 2048 {
		t.Fatalf("append within class reallocated: cap=%d", cap(b))
	}
	Put(b)
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(1514)
		Put(buf)
	}
}
