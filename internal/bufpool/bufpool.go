// Package bufpool provides size-classed byte-buffer pools for the packet
// hot path. Frames, marshalled segments and scratch buffers are drawn from
// and returned to these pools instead of being garbage for every hop.
//
// Ownership contract: a buffer obtained with Get belongs to exactly one
// owner at a time. Handing it to a consumer (wire transmit, frame decode)
// transfers ownership; the producer must not touch it again. The terminal
// consumer returns it with Put. Losing a buffer (never calling Put) is
// safe — it is simply collected — so error paths need no careful cleanup.
//
// The pools are safe for concurrent use: the parallel experiment runner
// runs one simulator per goroutine against the same shared pools.
package bufpool

import "sync"

// classes are the pooled capacities. 2048 covers a full Ethernet frame
// (1514 B + overheads); the larger classes serve TSO trains, loopback
// super-frames and reassembly scratch.
var classes = [...]int{64, 256, 1024, 2048, 4096, 16384, 65536, 262144}

// entry wraps a buffer so that pooling a []byte does not re-box the slice
// header on every Put. Wrappers themselves cycle through entryPool.
type entry struct{ buf []byte }

var (
	pools     [len(classes)]sync.Pool
	entryPool = sync.Pool{New: func() any { return new(entry) }}
)

// classIndex returns the smallest class holding n bytes, or -1 if n is
// larger than every class.
func classIndex(n int) int {
	for i, c := range classes {
		if n <= c {
			return i
		}
	}
	return -1
}

// Get returns a buffer with len n. Its capacity is the size class, so
// callers that marshal with append (via b[:0]) never reallocate.
func Get(n int) []byte {
	ci := classIndex(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if e, _ := pools[ci].Get().(*entry); e != nil {
		b := e.buf
		e.buf = nil
		entryPool.Put(e)
		return b[:n]
	}
	return make([]byte, n, classes[ci])
}

// Put returns a buffer to its pool. Only buffers whose capacity exactly
// matches a size class are kept (anything else — including buffers that
// outgrew their class via append — is dropped for the GC). Put of a nil
// or foreign buffer is a no-op, so callers may Put unconditionally.
func Put(b []byte) {
	ci := classIndex(cap(b))
	if ci < 0 || cap(b) != classes[ci] {
		return
	}
	e := entryPool.Get().(*entry)
	e.buf = b[:0:cap(b)]
	pools[ci].Put(e)
}
