package bufpool

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaAllocSizesAndIsolation(t *testing.T) {
	var a Arena
	refs := make([]Ref, 0, 64)
	for i := 0; i < 64; i++ {
		n := 1 + i*7%300
		r := a.Alloc(n)
		if len(r.B) != n {
			t.Fatalf("Alloc(%d) returned len %d", n, len(r.B))
		}
		if cap(r.B) != n {
			t.Fatalf("Alloc(%d) returned cap %d; carves must be capacity-bounded", n, cap(r.B))
		}
		for j := range r.B {
			r.B[j] = byte(i)
		}
		refs = append(refs, r)
	}
	for i, r := range refs {
		for j, b := range r.B {
			if b != byte(i) {
				t.Fatalf("ref %d byte %d clobbered: got %d", i, j, b)
			}
		}
		r.Release()
	}
}

func TestArenaDedicatedBigBlocks(t *testing.T) {
	a := Arena{BlockSize: 1024}
	small := a.Alloc(16)
	big := a.Alloc(4000) // > BlockSize/2: dedicated block
	if big.s == small.s {
		t.Fatal("big allocation shared the arena block")
	}
	if len(big.B) != 4000 {
		t.Fatalf("big alloc len %d", len(big.B))
	}
	big.Release()
	small.Release()
}

func TestZeroRefIsInert(t *testing.T) {
	var r Ref
	r.Release() // must not panic
	r2 := r.Retain()
	r2.Release()
	if r2.B != nil {
		t.Fatal("zero ref has bytes")
	}
}

func TestRetainKeepsBlockAlive(t *testing.T) {
	a := Arena{BlockSize: 256}
	r := a.AllocCopy([]byte("hello"))
	dup := r.Retain()
	r.Release()
	if string(dup.B) != "hello" {
		t.Fatalf("retained view lost data: %q", dup.B)
	}
	dup.Release()
}

// TestSlabOwnershipProperty is the randomized ownership check: several
// goroutines, each with a private arena but all sharing the global pools,
// carve refs, stamp them, retain/release in random order and verify no
// stamp is ever clobbered while a reference is live. Run under -race this
// also proves block recycling across goroutines is race-free.
func TestSlabOwnershipProperty(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			a := Arena{BlockSize: 2048}
			type live struct {
				r     Ref
				stamp byte
			}
			var window []live
			for i := 0; i < 5000; i++ {
				n := 1 + rng.Intn(1500) // crosses the dedicated-block threshold
				r := a.Alloc(n)
				stamp := byte(rng.Intn(256))
				for j := range r.B {
					r.B[j] = stamp
				}
				if rng.Intn(4) == 0 {
					// A second owner holds on and is checked later too.
					window = append(window, live{r.Retain(), stamp})
				}
				window = append(window, live{r, stamp})
				// Release a random prefix of the window once it grows.
				for len(window) > 32 {
					k := rng.Intn(len(window))
					l := window[k]
					for j, b := range l.r.B {
						if b != l.stamp {
							t.Errorf("slab ownership violated: live ref clobbered at byte %d", j)
							return
						}
					}
					l.r.Release()
					window[k] = window[len(window)-1]
					window = window[:len(window)-1]
				}
			}
			for _, l := range window {
				for j, b := range l.r.B {
					if b != l.stamp {
						t.Errorf("slab ownership violated in drain at byte %d", j)
						return
					}
				}
				l.r.Release()
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
