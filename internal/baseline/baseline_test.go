package baseline_test

import (
	"testing"

	"neat/internal/app"
	"neat/internal/baseline"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// linuxBed: AMD host running the monolithic baseline with K cores, one
// lighttpd per core (own port, colocated with its kernel context), 12
// httperf processes on the client host, one per lighttpd port.
type linuxBed struct {
	net     *testbed.Net
	sys     *baseline.System
	servers []*app.HTTPD
	gens    []*app.Loadgen
}

func flatten(slots [][]testbed.ThreadLoc) []testbed.ThreadLoc {
	var out []testbed.ThreadLoc
	for _, s := range slots {
		out = append(out, s...)
	}
	return out
}

func buildLinuxBed(t *testing.T, cores int, tuning baseline.Tuning, conns, reqPerConn, fileSize int) *linuxBed {
	t.Helper()
	n := testbed.New(33)
	server := testbed.DefaultAMDHost(n, 0, cores)
	client := testbed.DefaultClientHost(n, 1, cores)
	sys, err := server.BuildBaseline(client, tuning, tcpeng.DefaultConfig(),
		flatten(testbed.SingleSlots(0, cores)))
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, cores, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &linuxBed{net: n, sys: sys}
	for i := 0; i < cores; i++ {
		// lighttpd i colocated with kernel context i, own port (§6.1).
		h := app.NewHTTPD(server.Machine.Thread(i, 0), "lighttpd", sys.KernelProc(i),
			ipc.DefaultCosts(), app.HTTPDConfig{
				Port:  uint16(8000 + i),
				Files: map[string]int{"/file": fileSize},
			})
		h.Start()
		b.servers = append(b.servers, h)
	}
	n.Sim.RunFor(sim.Millisecond)
	for i, h := range b.servers {
		if !h.Ready() {
			t.Fatalf("lighttpd %d not ready", i)
		}
	}
	for i := 0; i < cores; i++ {
		lg := app.NewLoadgen(client.AppThread(2+cores+i), "httperf", clisys.SyscallProc(),
			ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/file",
				Conns: conns, ReqPerConn: reqPerConn,
			})
		b.gens = append(b.gens, lg)
	}
	return b
}

func (b *linuxBed) run(warm, window sim.Time) (krps float64) {
	for _, g := range b.gens {
		g.Start()
	}
	b.net.Sim.RunFor(warm)
	for _, g := range b.gens {
		g.BeginMeasure()
	}
	b.net.Sim.RunFor(window)
	var good uint64
	for _, g := range b.gens {
		good += g.GoodResponses()
	}
	return float64(good) / window.Seconds() / 1000
}

func TestBaselineServesTraffic(t *testing.T) {
	b := buildLinuxBed(t, 4, baseline.Tuning{SchedDeadline: true, Ethtool: true,
		IRQAffinity: true, RxAffinity: true, ServerPinning: true}, 8, 100, 20)
	rate := b.run(20*sim.Millisecond, 60*sim.Millisecond)
	if rate < 10 {
		t.Fatalf("baseline rate = %.1f krps — too low", rate)
	}
	var errs uint64
	for _, g := range b.gens {
		errs += g.Stats().ConnErrors
	}
	if errs != 0 {
		t.Fatalf("errors=%d", errs)
	}
	if b.sys.Stats().LockedOps == 0 {
		t.Fatal("lock model never charged")
	}
	if b.sys.Stats().IRQs == 0 {
		t.Fatal("per-queue IRQ path unused")
	}
}

func TestBaselineTuningLadderImproves(t *testing.T) {
	defaults := buildLinuxBed(t, 4, baseline.Tuning{}, 8, 100, 20)
	rDefaults := defaults.run(20*sim.Millisecond, 60*sim.Millisecond)

	full := buildLinuxBed(t, 4, baseline.Tuning{SchedDeadline: true, Ethtool: true,
		IRQAffinity: true, RxAffinity: true, ServerPinning: true}, 8, 100, 20)
	rFull := full.run(20*sim.Millisecond, 60*sim.Millisecond)

	if rFull <= rDefaults {
		t.Fatalf("tuning did not help: defaults=%.1f full=%.1f", rDefaults, rFull)
	}
	// Table 1 shows roughly +22 % from defaults to full tuning.
	gain := rFull / rDefaults
	if gain < 1.05 || gain > 1.6 {
		t.Fatalf("tuning gain %.2fx outside plausible band", gain)
	}
}

func TestBaselineSharedListenerAndEngine(t *testing.T) {
	b := buildLinuxBed(t, 2, baseline.Tuning{ServerPinning: true, IRQAffinity: true}, 4, 10, 20)
	_ = b.run(10*sim.Millisecond, 30*sim.Millisecond)
	// All connections live in ONE engine (shared everything).
	if b.sys.TCP().Stats().AcceptedConns == 0 {
		t.Fatal("no accepts")
	}
	if b.sys.TCP().NumConns() == 0 {
		t.Fatal("no live conns in the shared engine")
	}
}

func TestBaselineConfigValidation(t *testing.T) {
	if _, err := baseline.New(baseline.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
