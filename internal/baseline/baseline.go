// Package baseline implements the comparator of the paper's evaluation: a
// monolithic, shared-everything network stack in the style of Linux
// (§6.1). It reuses the exact same protocol engines as NEaT — the
// difference is purely architectural, which is the paper's point:
//
//   - ONE shared TCP/IP instance serves every core. K kernel contexts
//     (softirq/syscall execution, one per core) operate on the shared
//     state concurrently; the applications time-share the same cores.
//   - Sharing costs are modeled explicitly per operation: lock
//     acquisition whose cost grows with the number of contending contexts
//     (the non-scalable ticket-lock behaviour of [16]), cache-line
//     bouncing proportional to the number of other active cores, and a
//     locality penalty when a connection's RX queue, kernel context and
//     application do not sit on the same core.
//   - The NIC runs in per-queue IRQ mode: no dedicated driver core;
//     each queue interrupts the core its affinity names (Table 1's
//     irqAff/rxAff knobs).
//
// The Tuning knobs reproduce the configuration ladder of Table 1.
package baseline

import (
	"errors"
	"fmt"

	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/nicdev"
	"neat/internal/pfilter"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/udpeng"
)

// Tuning is the Table 1 configuration ladder.
type Tuning struct {
	// SchedDeadline switches the scheduler policy to deadline (slightly
	// cheaper wakeups).
	SchedDeadline bool
	// Ethtool turns auto-negotiation off and TSO on.
	Ethtool bool
	// IRQAffinity pins queue i's IRQ to core i (otherwise irqbalance
	// shuffles; modeled as a stable spread with worse locality).
	IRQAffinity bool
	// RxAffinity pins receive-queue processing explicitly.
	RxAffinity bool
	// ServerPinning pins lighttpd instance i to core i, aligning the
	// application with its connections' RX queues.
	ServerPinning bool
}

// LocalityFactor returns the kernel-cycle multiplier for the tuning level:
// how much extra cache-miss work every kernel operation pays because data
// structures follow processes across cores (§2.2). Calibrated against
// Table 1 (defaults 184.1 → full tuning 224.0 krps).
func (t Tuning) LocalityFactor() float64 {
	switch {
	case t.ServerPinning && t.IRQAffinity:
		return 1.0 // app, queue and kernel context aligned
	case t.IRQAffinity && t.RxAffinity:
		// Queues pinned but apps float: lighttpd is scheduled away from
		// the cores its connections arrive on (the rxAff dip of §6.1).
		return 1.30
	case t.IRQAffinity:
		return 1.29
	default:
		return 1.325
	}
}

// Costs parameterizes the kernel cycle model. Values are cycles.
type Costs struct {
	SoftirqPerPacket int64 // NAPI poll + ring handling per packet
	IPIn, IPOut      int64
	TCPSegIn         int64
	TCPSegOut        int64
	TCPConnSetup     int64
	SyscallOp        int64 // syscall entry/exit + copy per socket call
	SockEvent        int64 // data delivery to the app (copyout + wakeup)
	TimerOp          int64

	// LockBase is the uncontended lock/unlock cost charged per locked
	// operation; LockPerContender is added per additional active kernel
	// context; CacheBouncePerContender models false sharing and hot
	// cache-line migration per op per other context.
	LockBase                int64
	LockPerContender        int64
	CacheBouncePerContender int64
}

// DefaultCosts returns the calibrated kernel cost model (see
// internal/experiments/calibrate.go for the derivations).
func DefaultCosts() Costs {
	return Costs{
		SoftirqPerPacket: 1800,
		IPIn:             2600,
		IPOut:            2800,
		TCPSegIn:         11800,
		TCPSegOut:        10300,
		TCPConnSetup:     9000,
		SyscallOp:        3200,
		SockEvent:        2800,
		TimerOp:          500,

		LockBase:                1000,
		LockPerContender:        660,
		CacheBouncePerContender: 280,
	}
}

// Config assembles a baseline system.
type Config struct {
	// KernelThreads lists the hardware threads hosting the kernel
	// contexts (one per core in use). Applications are colocated on the
	// same threads by the caller.
	KernelThreads []*sim.HWThread
	NIC           *nicdev.NIC
	IP            ipeng.Config
	TCP           tcpeng.Config
	Tuning        Tuning
	Costs         Costs
	IPC           ipc.Costs
}

// Stats aggregates baseline-wide counters.
type Stats struct {
	IRQs       uint64
	PacketsIn  uint64
	PacketsOut uint64
	LockedOps  uint64
	LockCycles int64
	SyscallsIn uint64
}

// System is the monolithic stack: K kernel contexts around one shared
// engine set.
type System struct {
	cfg   Config
	procs []*sim.Proc
	host  *kernelHost
}

// New boots a baseline system.
func New(cfg Config) (*System, error) {
	if len(cfg.KernelThreads) == 0 {
		return nil, errors.New("baseline: need at least one kernel context")
	}
	if cfg.NIC == nil {
		return nil, errors.New("baseline: NIC required")
	}
	if cfg.NIC.NumQueues() < len(cfg.KernelThreads) {
		return nil, fmt.Errorf("baseline: %d kernel contexts but NIC has %d queues",
			len(cfg.KernelThreads), cfg.NIC.NumQueues())
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	cfg.TCP.TSO = cfg.TCP.TSO || cfg.Tuning.Ethtool

	s := &System{cfg: cfg}
	s.host = newKernelHost(s)
	for i, th := range cfg.KernelThreads {
		pc := sim.ProcConfig{Component: "kernel",
			WakeCycles: 2600, HaltCycles: 1600, DispatchCycles: 150}
		if cfg.Tuning.SchedDeadline {
			pc.WakeCycles, pc.HaltCycles = 2200, 1400
		}
		p := sim.NewProc(th, fmt.Sprintf("kernel%d", i), &kernelHandler{s.host, i}, pc)
		s.procs = append(s.procs, p)
	}
	s.host.finishInit()

	// IRQ routing per tuning: with affinity queue i → core i; otherwise
	// irqbalance's stable-but-arbitrary spread (rotated by one, denying
	// queue/app alignment).
	k := len(s.procs)
	for q := 0; q < cfg.NIC.NumQueues(); q++ {
		idx := q % k
		if !cfg.Tuning.IRQAffinity {
			idx = (q + 1) % k
		}
		cfg.NIC.SetQueueIRQTarget(q, s.procs[idx])
	}
	return s, nil
}

// KernelProc returns kernel context i — the syscall target for the
// application pinned to core i.
func (s *System) KernelProc(i int) *sim.Proc { return s.procs[i] }

// NumContexts returns the number of kernel contexts.
func (s *System) NumContexts() int { return len(s.procs) }

// TCP exposes the shared TCP engine.
func (s *System) TCP() *tcpeng.Engine { return s.host.tcp }

// IP exposes the shared IP engine.
func (s *System) IP() *ipeng.Engine { return s.host.ip }

// UDP exposes the shared UDP engine.
func (s *System) UDP() *udpeng.Engine { return s.host.udp }

// Filter exposes the netfilter-equivalent packet filter.
func (s *System) Filter() *pfilter.Filter { return s.host.filter }

// Stats returns baseline counters.
func (s *System) Stats() Stats { return s.host.stats }
