package baseline

import (
	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/nicdev"
	"neat/internal/pfilter"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/udpeng"
)

// kernelHost is the shared kernel state every context operates on: one
// TCP engine, one IP engine, one UDP engine, one filter — the monolithic
// "shared everything" model of §2. Because the simulation is serialized,
// the sharing is safe; its *cost* is what the lock/bounce model charges.
type kernelHost struct {
	sys   *System
	costs Costs

	tcp    *tcpeng.Engine
	ip     *ipeng.Engine
	udp    *udpeng.Engine
	filter *pfilter.Filter

	// Current dispatch: which context runs, with what sim context.
	ctx     *sim.Context
	curProc *sim.Proc

	conns     map[uint64]*tcpeng.Conn
	listeners map[uint64]*tcpeng.Listener
	udpSocks  map[uint64]*udpSockCtx
	nextUDP   uint64
	appConns  map[*sim.Proc]*ipc.Conn

	stats Stats
}

type sockCtx struct {
	app   *sim.Proc
	reqID uint64
	// home is the kernel context the owning application issues syscalls
	// to; every event for this socket reports it as the Stack identity so
	// the socket library's (stack, connID) keys stay stable even though
	// RX processing happens on other contexts.
	home        *sim.Proc
	established bool
	pending     []byte
	wantSpace   bool
}

type listenCtx struct {
	app   *sim.Proc
	reqID uint64
	home  *sim.Proc
}

type udpSockCtx struct {
	app  *sim.Proc
	id   uint64
	sock *udpeng.Socket
}

// tickMsg mirrors the stack package's internal deferred-closure message;
// TCP timers fire as *tcpeng.ConnTimer nodes.
type tickMsg struct{ fn func() }

func newKernelHost(s *System) *kernelHost {
	h := &kernelHost{
		sys: s, costs: s.cfg.Costs,
		conns:     map[uint64]*tcpeng.Conn{},
		listeners: map[uint64]*tcpeng.Listener{},
		udpSocks:  map[uint64]*udpSockCtx{},
		appConns:  map[*sim.Proc]*ipc.Conn{},
	}
	return h
}

// finishInit builds the shared engines once the kernel procs exist.
func (h *kernelHost) finishInit() {
	h.filter = pfilter.New()
	h.ip = ipeng.NewEngine(h, h.sys.cfg.IP)
	h.udp = udpeng.NewEngine(h, h.sys.cfg.IP.Addr)
	h.tcp = tcpeng.NewEngine(h, h.sys.cfg.IP.Addr, h.sys.cfg.TCP)
}

// charge bills kernel cycles scaled by the tuning's locality factor.
func (h *kernelHost) charge(cycles int64) {
	h.ctx.Charge(int64(float64(cycles) * h.sys.cfg.Tuning.LocalityFactor()))
}

// lock bills one locked shared-structure operation: base cost plus
// contention and cache-line bouncing that grow with the context count.
func (h *kernelHost) lock() {
	k := int64(len(h.sys.procs))
	c := h.costs.LockBase + (h.costs.LockPerContender+h.costs.CacheBouncePerContender)*(k-1)
	h.stats.LockedOps++
	h.stats.LockCycles += c
	h.ctx.Charge(c)
}

// kernelHandler runs one kernel context.
type kernelHandler struct {
	h   *kernelHost
	idx int
}

// HandleMessage implements sim.Handler.
func (kh *kernelHandler) HandleMessage(ctx *sim.Context, msg sim.Message) {
	h := kh.h
	prevCtx, prevProc := h.ctx, h.curProc
	h.ctx, h.curProc = ctx, h.sys.procs[kh.idx]
	defer func() { h.ctx, h.curProc = prevCtx, prevProc }()

	switch m := msg.(type) {
	case nicdev.QueueIRQ:
		h.stats.IRQs++
		frames := h.sys.cfg.NIC.DrainQueue(m.Queue)
		for i, f := range frames {
			frames[i] = nil
			h.stats.PacketsIn++
			h.charge(h.costs.SoftirqPerPacket)
			if h.filter.Check(f) == pfilter.Drop {
				f.Release()
				continue
			}
			h.charge(h.costs.IPIn)
			h.lock() // shared IP/conntrack structures
			h.ip.Input(f)
		}
		h.sys.cfg.NIC.RearmQueueIRQ(m.Queue)
	case tickMsg:
		m.fn()
	case *tcpeng.ConnTimer:
		h.charge(h.costs.TimerOp)
		h.lock()
		h.tcp.OnTimer(m.C, m.Kind)
	case stack.OpListen:
		h.charge(h.costs.SyscallOp)
		h.lock()
		h.stats.SyscallsIn++
		l, err := h.tcp.Listen(proto.Addr{}, m.Port, m.Backlog)
		if err == nil {
			l.Ctx = &listenCtx{app: m.App, reqID: m.ReqID, home: h.curProc}
			h.listeners[m.ReqID] = l
		}
		ackTo := m.App
		if m.ReplyTo != nil {
			ackTo = m.ReplyTo
		}
		h.sendApp(ackTo, stack.EvListening{ReqID: m.ReqID, Stack: h.curProc, Err: err})
	case stack.OpCloseListener:
		h.charge(h.costs.SyscallOp)
		h.lock()
		if l, ok := h.listeners[m.ReqID]; ok {
			delete(h.listeners, m.ReqID)
			l.Close()
		}
	case stack.OpConnect:
		h.charge(h.costs.TCPConnSetup + h.costs.SyscallOp)
		h.lock()
		h.stats.SyscallsIn++
		c, err := h.tcp.ConnectFrom(m.Addr, m.Port, m.LocalPort)
		if err != nil {
			h.sendApp(m.App, stack.EvConnected{ReqID: m.ReqID, Stack: h.curProc, Err: err})
			return
		}
		c.Ctx = &sockCtx{app: m.App, reqID: m.ReqID, home: h.curProc}
		h.conns[c.ID] = c
	case *stack.OpSend:
		// Pooled fast-path form (socketlib): recycle the box after the
		// bytes are absorbed and the Ref released.
		h.opSend(m.ConnID, m.Data, m.Ref, m.WantSpace)
		m.Recycle()
	case stack.OpSend:
		h.opSend(m.ConnID, m.Data, m.Ref, m.WantSpace)
	case stack.OpClose:
		if c, ok := h.conns[m.ConnID]; ok {
			h.charge(h.costs.SyscallOp)
			h.lock()
			c.Close()
		}
	case stack.OpAbort:
		if c, ok := h.conns[m.ConnID]; ok {
			h.charge(h.costs.SyscallOp)
			h.lock()
			c.Abort()
		}
	case stack.OpUDPBind:
		h.charge(h.costs.SyscallOp)
		h.lock()
		s, err := h.udp.Bind(m.Port)
		ev := stack.EvUDPBound{ReqID: m.ReqID, Stack: h.curProc, Err: err}
		if err == nil {
			h.nextUDP++
			sc := &udpSockCtx{app: m.App, id: h.nextUDP, sock: s}
			s.Ctx = sc
			h.udpSocks[sc.id] = sc
			ev.UDPID = sc.id
			ev.Port = s.Port()
		}
		h.sendApp(m.App, ev)
	case stack.OpUDPSendTo:
		if sc, ok := h.udpSocks[m.UDPID]; ok {
			h.charge(h.costs.SyscallOp)
			h.lock()
			sc.sock.SendTo(m.Addr, m.Port, m.Data)
		}
	case stack.OpUDPClose:
		if sc, ok := h.udpSocks[m.UDPID]; ok {
			h.charge(h.costs.SyscallOp)
			sc.sock.Close()
			delete(h.udpSocks, m.UDPID)
		}
	}
}

// opSend appends send-stream bytes to a connection: the shared body of the
// pooled (*stack.OpSend) and value (stack.OpSend) message forms.
func (h *kernelHost) opSend(connID uint64, data []byte, ref bufpool.Ref, wantSpace bool) {
	c, ok := h.conns[connID]
	if !ok {
		ref.Release()
		return
	}
	h.charge(h.costs.SyscallOp)
	h.lock()
	h.stats.SyscallsIn++
	sc := c.Ctx.(*sockCtx)
	sc.pending = append(sc.pending, data...)
	ref.Release() // data now lives in sc.pending
	if wantSpace {
		sc.wantSpace = true
	}
	h.drainPending(c, sc)
	h.maybeAdvertiseSpace(c, sc)
}

func (h *kernelHost) drainPending(c *tcpeng.Conn, sc *sockCtx) {
	for len(sc.pending) > 0 {
		n := c.Send(sc.pending)
		if n == 0 {
			return
		}
		sc.pending = sc.pending[n:]
	}
	sc.pending = nil
}

func (h *kernelHost) maybeAdvertiseSpace(c *tcpeng.Conn, sc *sockCtx) {
	if !sc.wantSpace {
		return
	}
	avail := c.SendSpaceFree() - len(sc.pending)
	if avail <= 0 {
		return
	}
	sc.wantSpace = false
	h.sendApp(sc.app, stack.EvSendSpace{Stack: sc.home, ConnID: c.ID, Available: avail})
}

func (h *kernelHost) sendApp(app *sim.Proc, ev sim.Message) {
	h.charge(h.costs.SockEvent)
	conn, ok := h.appConns[app]
	if !ok {
		conn = ipc.New(app, h.sys.cfg.IPC)
		h.appConns[app] = conn
	}
	conn.Send(h.ctx, ev)
}

// ---- ipeng.Env ----

// Now implements ipeng.Env and tcpeng.Env.
func (h *kernelHost) Now() sim.Time { return h.curProc.Sim().Now() }

// TransmitFrame implements ipeng.Env.
func (h *kernelHost) TransmitFrame(raw []byte) {
	h.charge(h.costs.IPOut)
	h.stats.PacketsOut++
	h.sys.cfg.NIC.Transmit(raw)
}

// TransmitTSO implements ipeng.Env.
func (h *kernelHost) TransmitTSO(eth proto.EthernetHeader, ip proto.IPv4Header, tcp proto.TCPHeader, payload []byte, mss int) {
	h.charge(h.costs.IPOut)
	h.stats.PacketsOut++
	h.sys.cfg.NIC.SendTSO(nicdev.TxTSO{Eth: eth, IP: ip, TCP: tcp, Payload: payload, MSS: mss})
}

// DeliverTransport implements ipeng.Env. Frame ownership arrives with the
// call; the engines copy what they keep, so every branch releases.
func (h *kernelHost) DeliverTransport(f *proto.Frame) {
	switch {
	case f.TCP != nil:
		h.charge(h.costs.TCPSegIn)
		h.lock()
		h.tcp.Input(f)
	case f.UDP != nil:
		h.charge(h.costs.IPIn)
		h.udp.Input(f)
	}
	f.Release()
}

// After implements ipeng.Env.
func (h *kernelHost) After(d sim.Time, fn func()) {
	h.ctx.TimerAfter(d, tickMsg{fn})
}

// ---- udpeng.Env ----

// Output implements udpeng.Env.
func (h *kernelHost) Output(dst proto.Addr, transport []byte) {
	h.ip.Output(dst, proto.ProtoUDP, transport)
}

// Deliver implements udpeng.Env. data aliases the inbound frame, which is
// released when UDP input returns, so the event carries its own copy.
func (h *kernelHost) Deliver(s *udpeng.Socket, src proto.Addr, srcPort uint16, data []byte) {
	if sc, ok := s.Ctx.(*udpSockCtx); ok {
		data = append([]byte(nil), data...)
		h.sendApp(sc.app, stack.EvUDPData{Stack: h.curProc, UDPID: sc.id, Src: src, SrcPort: srcPort, Data: data})
	}
}

// ---- tcpeng.Env ----

// SendSegment implements tcpeng.Env.
func (h *kernelHost) SendSegment(c *tcpeng.Conn, seg tcpeng.OutSegment) {
	h.charge(h.costs.TCPSegOut)
	h.lock()
	if seg.TSO && len(seg.Payload) > seg.MSS {
		h.ip.OutputTSO(ipeng.TSO{TCP: seg.Hdr, Dst: seg.Dst, Payload: seg.Payload, MSS: seg.MSS})
		return
	}
	n := seg.Hdr.EncodedLen(len(seg.Payload))
	frame := seg.Hdr.Marshal(bufpool.Get(proto.TxHeadroom + n)[:proto.TxHeadroom], seg.Src, seg.Dst, seg.Payload)
	h.ip.OutputFrame(seg.Dst, proto.ProtoTCP, frame)
}

// ArmTimer implements tcpeng.Env. Timers fire on whichever kernel context
// armed them, as in Linux. The connection's intrusive node is its own fire
// message, so the arm/stop path allocates nothing.
func (h *kernelHost) ArmTimer(c *tcpeng.Conn, k tcpeng.TimerKind, d sim.Time) {
	t := &c.Timers[k]
	h.ctx.Retimer(&t.Timer, d, t)
}

// StopTimer implements tcpeng.Env.
func (h *kernelHost) StopTimer(c *tcpeng.Conn, k tcpeng.TimerKind) {
	c.Timers[k].Stop()
}

// Accepted implements tcpeng.Env: contended accept from the single shared
// listening socket (the very bottleneck MegaPipe/Affinity-Accept attack,
// §3.3).
func (h *kernelHost) Accepted(c *tcpeng.Conn) {
	h.charge(h.costs.TCPConnSetup)
	h.lock() // accept queue lock
	lc, ok := c.Listener.Ctx.(*listenCtx)
	if !ok {
		return
	}
	c.Listener.Accept()
	sc := &sockCtx{app: lc.app, established: true, home: lc.home}
	c.Ctx = sc
	h.conns[c.ID] = c
	ra, rp := c.RemoteAddr()
	h.sendApp(lc.app, stack.EvAccepted{
		ListenerReqID: lc.reqID, ConnID: c.ID, Stack: lc.home,
		RemoteAddr: ra, RemotePort: rp, SendBuf: c.SendSpaceFree(),
	})
}

// Connected implements tcpeng.Env.
func (h *kernelHost) Connected(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	sc.established = true
	h.sendApp(sc.app, stack.EvConnected{
		ReqID: sc.reqID, ConnID: c.ID, Stack: sc.home, SendBuf: c.SendSpaceFree(),
	})
}

// DataReadable implements tcpeng.Env.
func (h *kernelHost) DataReadable(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	data := c.Recv(0)
	eof := c.EOF()
	if len(data) == 0 && !eof {
		return
	}
	h.sendApp(sc.app, stack.EvData{Stack: sc.home, ConnID: c.ID, Data: data, EOF: eof})
}

// SendSpace implements tcpeng.Env.
func (h *kernelHost) SendSpace(c *tcpeng.Conn) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	h.drainPending(c, sc)
	h.maybeAdvertiseSpace(c, sc)
}

// ConnClosed implements tcpeng.Env.
func (h *kernelHost) ConnClosed(c *tcpeng.Conn, reset bool) {
	sc, ok := c.Ctx.(*sockCtx)
	if !ok {
		return
	}
	if !sc.established {
		h.sendApp(sc.app, stack.EvConnected{ReqID: sc.reqID, Stack: sc.home, Err: c.Err})
		return
	}
	h.sendApp(sc.app, stack.EvClosed{Stack: sc.home, ConnID: c.ID, Reset: reset, Err: c.Err})
}

// ConnRemoved implements tcpeng.Env.
func (h *kernelHost) ConnRemoved(c *tcpeng.Conn) {
	delete(h.conns, c.ID)
}

// RandUint32 implements tcpeng.Env.
func (h *kernelHost) RandUint32() uint32 { return h.curProc.Sim().Rand().Uint32() }
