package testbed

// Cluster assembly: the multi-machine generalization of the two-host
// testbed. A cluster is a star topology — one store-and-forward switch,
// one access link per machine — carrying N client machines and a set of
// server *farms*: groups of independent NEaT machines behind a shared
// virtual IP, steered by an L4 service on the switch. The paper's
// partitioning argument applied one level up: replicas partition flows
// within a machine, farms partition flows across machines, and the same
// steer.Placer policies drive both layers.
//
// Tenancy: every farm and client belongs to a tenant. A tenant's clients
// only resolve (static ARP) the VIPs of that tenant's farms, and each farm
// has its own placer and backend set, so tenants share the physical
// switch and links but have fully disjoint steering domains and replica
// sets — the NetKernel-style multi-tenant arrangement.
//
// Failure plane: each farm machine runs its NEaT watchdog; the farm
// controller (a control-plane loop on the root simulator) watches every
// member watchdog's ProbesSent counter for progress. A machine whose
// watchdog stops probing — hung kernel, pulled cable, KillMachine — is
// declared dead, its switch backend goes Down, and new flows re-place
// onto the surviving members; the same loop activates and drains standby
// members on per-farm connection watermarks (farm-level autoscaling). In
// PDES runs the controller executes at barriers with every domain
// quiescent, so cross-machine reads and state flips stay deterministic.

import (
	"fmt"

	"neat/internal/core"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/wire"
)

// FarmControlConfig tunes one farm's controller loop.
type FarmControlConfig struct {
	// Interval between health/scale evaluations (default 250 µs).
	Interval sim.Time
	// HighWater activates a standby member when the mean live-connection
	// count per active member exceeds it (0 disables autoscaling up).
	HighWater int
	// LowWater drains the newest-activated member when the mean falls
	// below it and more than MinActive members are active (0 disables
	// autoscaling down).
	LowWater int
	// MinActive floors scale-down (default 1).
	MinActive int
	// Cooldown is the minimum time between scale events (default 4×Interval).
	Cooldown sim.Time
}

// FarmSpec describes one server farm: Members identical NEaT machines
// behind one VIP.
type FarmSpec struct {
	// Name labels the farm (required, unique).
	Name string
	// Tenant is the owning tenant ("" = the default tenant).
	Tenant string
	// Members is the machine count (≥ 1).
	Members int
	// InitialActive is how many members start in the new-flow rotation
	// (default all; the rest are standby capacity for the autoscaler).
	InitialActive int
	// VIP is the farm's virtual IP; zero assigns 10.0.0.(100+farmIndex).
	VIP proto.Addr
	// Host shapes each member machine. Zero value: the 12-core AMD
	// Opteron of §6 with 8 NIC queues. Name/Side/IP/MAC are assigned by
	// the builder (members share the VIP — direct-server-return).
	Host HostConfig
	// NEaT configures each member's system. Zero TCP means
	// tcpeng.DefaultConfig(); nil Slots means two single-component
	// replicas on cores 2-3. The watchdog is forced on: its heartbeat
	// counters are the cross-machine liveness signal.
	NEaT NEaTConfig
	// Steering is the farm-level placement policy (default hash). Must be
	// deterministic (hash or ring — not least-loaded).
	Steering steer.Config
	// Control tunes the farm controller.
	Control FarmControlConfig
}

// ClientSpec describes one load-generator machine.
type ClientSpec struct {
	// Tenant selects which farms this client can reach ("" = default).
	Tenant string
	// Stacks is the client replica count (default 1). Keep 1 when
	// sequential↔PDES byte-identity matters: a single stack makes the
	// connect-side placer draw-free.
	Stacks int
	// Host optionally overrides the machine shape (zero: the oversized
	// default load generator).
	Host HostConfig
}

// SwitchSpec shapes the cluster switch.
type SwitchSpec struct {
	// Name labels the switch (default "tor").
	Name string
	// Latency is the store-and-forward delay (default 1 µs).
	Latency sim.Time
}

// ClusterSpec is a resolved cluster topology. The neat facade's
// ClusterConfig compiles to this; tests may also build it directly.
type ClusterSpec struct {
	Switch  SwitchSpec
	Farms   []FarmSpec
	Clients []ClientSpec
	// LinkBitsPerSec / LinkPropDelay shape every access link (defaults:
	// the 10 Gb/s, 1 µs DAC of the two-host testbed).
	LinkBitsPerSec int64
	LinkPropDelay  sim.Time
}

// FarmMember is one running server machine of a farm.
type FarmMember struct {
	Host    *Host
	Sys     *core.System
	Port    int // switch port index
	Backend int // service backend index

	// controller state
	alive      bool
	lastProbes uint64
	sampled    bool
}

// Alive reports whether the farm controller still considers the member
// live.
func (m *FarmMember) Alive() bool { return m.alive }

// Farm is one running server farm.
type Farm struct {
	Name    string
	Tenant  string
	VIP     proto.Addr
	VMAC    proto.MAC
	Service *wire.L4Service
	Members []*FarmMember

	cluster  *Cluster
	control  FarmControlConfig
	lastFlip sim.Time
	flipped  bool
}

// FarmEventKind enumerates farm-controller lifecycle events.
type FarmEventKind int

// Farm controller events.
const (
	// FarmMemberDead: a member's watchdog stopped making progress and the
	// backend was taken Down.
	FarmMemberDead FarmEventKind = iota
	// FarmScaleUp: a standby member was activated.
	FarmScaleUp
	// FarmScaleDown: an active member was put back to draining standby.
	FarmScaleDown
)

// String names the event kind.
func (k FarmEventKind) String() string {
	switch k {
	case FarmMemberDead:
		return "member-dead"
	case FarmScaleUp:
		return "scale-up"
	case FarmScaleDown:
		return "scale-down"
	default:
		return fmt.Sprintf("FarmEventKind(%d)", int(k))
	}
}

// FarmEvent is one farm-controller decision.
type FarmEvent struct {
	At     sim.Time
	Farm   string
	Kind   FarmEventKind
	Member int
}

// ClusterClient is one running load-generator machine.
type ClusterClient struct {
	Host   *Host
	Sys    *core.System
	Tenant string
	Port   int
}

// Cluster is a running cluster topology.
type Cluster struct {
	Sim     *sim.Simulator
	Switch  *wire.Switch
	Farms   []*Farm
	Clients []*ClusterClient

	// SwitchMachine is the one-core "forwarding ASIC" machine whose
	// scheduling domain the switch runs in (its own PDES shard).
	SwitchMachine *sim.Machine

	events []FarmEvent
}

// Events returns the farm-controller lifecycle log in decision order.
func (c *Cluster) Events() []FarmEvent { return c.events }

// Farm returns the farm named name, or nil.
func (c *Cluster) Farm(name string) *Farm {
	for _, f := range c.Farms {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// TenantFarms returns the farms of one tenant, in spec order.
func (c *Cluster) TenantFarms(tenant string) []*Farm {
	var out []*Farm
	for _, f := range c.Farms {
		if f.Tenant == tenant {
			out = append(out, f)
		}
	}
	return out
}

// Validate reports the first error in the spec, with enough context to
// fix it.
func (spec ClusterSpec) Validate() error {
	if len(spec.Farms) == 0 {
		return fmt.Errorf("testbed: cluster needs at least one farm")
	}
	if len(spec.Farms) > 64 {
		return fmt.Errorf("testbed: %d farms exceed the VIP block 10.0.0.100-163 (max 64)", len(spec.Farms))
	}
	if len(spec.Clients) == 0 {
		return fmt.Errorf("testbed: cluster needs at least one client machine")
	}
	if len(spec.Clients) > 54 {
		return fmt.Errorf("testbed: %d clients exceed the address block 10.0.0.200-253 (max 54)", len(spec.Clients))
	}
	names := make(map[string]bool, len(spec.Farms))
	tenants := make(map[string]bool)
	for i, f := range spec.Farms {
		if f.Name == "" {
			return fmt.Errorf("testbed: farm %d has no name", i)
		}
		if names[f.Name] {
			return fmt.Errorf("testbed: duplicate farm name %q", f.Name)
		}
		names[f.Name] = true
		tenants[f.Tenant] = true
		if f.Members < 1 {
			return fmt.Errorf("testbed: farm %q has %d members; want at least 1", f.Name, f.Members)
		}
		if f.Members > 250 {
			return fmt.Errorf("testbed: farm %q has %d members; the MAC plan allows 250", f.Name, f.Members)
		}
		if f.InitialActive < 0 || f.InitialActive > f.Members {
			return fmt.Errorf("testbed: farm %q InitialActive %d out of range 0..%d (0 means all)",
				f.Name, f.InitialActive, f.Members)
		}
		if _, err := f.Steering.NewDeterministic(); err != nil {
			return fmt.Errorf("testbed: farm %q: %v", f.Name, err)
		}
		if f.Control.Interval < 0 || f.Control.Cooldown < 0 {
			return fmt.Errorf("testbed: farm %q has a negative controller interval or cooldown", f.Name)
		}
		if f.Control.HighWater < 0 || f.Control.LowWater < 0 ||
			(f.Control.HighWater > 0 && f.Control.LowWater >= f.Control.HighWater) {
			return fmt.Errorf("testbed: farm %q watermarks (high %d, low %d) must satisfy 0 <= low < high",
				f.Name, f.Control.HighWater, f.Control.LowWater)
		}
	}
	for i, cl := range spec.Clients {
		if cl.Stacks < 0 {
			return fmt.Errorf("testbed: client %d has %d stacks; want 0 (default 1) or more", i, cl.Stacks)
		}
		if !tenants[cl.Tenant] {
			return fmt.Errorf("testbed: client %d belongs to tenant %q, which owns no farm", i, cl.Tenant)
		}
	}
	return nil
}

// farmVIP and the MAC plan give every cluster element a deterministic
// address: farm f's VIP is 10.0.0.(100+f) with VMAC 02:FE::(f+1), its
// member m has MAC 02:AD::(f+1):(m+1) (and the VIP as its IP —
// direct-server-return), client k is 10.0.0.(200+k) / 02:C1::(k+1).
func farmVIP(f int) proto.Addr { return proto.IPv4(10, 0, 0, byte(100+f)) }

func farmVMAC(f int) proto.MAC { return proto.MAC{0x02, 0xFE, 0, 0, 0, byte(f + 1)} }

func memberMAC(f, m int) proto.MAC { return proto.MAC{0x02, 0xAD, 0, 0, byte(f + 1), byte(m + 1)} }

func clientIP(k int) proto.Addr { return proto.IPv4(10, 0, 0, byte(200+k)) }

func clientMAC(k int) proto.MAC { return proto.MAC{0x02, 0xC1, 0, 0, 0, byte(k + 1)} }

// NewCluster builds and boots the cluster described by spec on simulator
// s. In PDES mode (s.EnablePDES called first) every machine — the switch
// included — runs in its own scheduling domain. Machine creation order is
// fixed (switch, then farms in order, then clients), so domain RNG
// seeding and addressing are reproducible run-to-run.
func NewCluster(s *sim.Simulator, spec ClusterSpec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	swName := spec.Switch.Name
	if swName == "" {
		swName = "tor"
	}
	// The "forwarding ASIC": a one-core machine minted only for its
	// scheduling domain. The switch model costs no cycles on it.
	swm := sim.NewMachine(s, swName, 1, 1, 1_000_000_000)
	sw := wire.NewSwitch(swm.Sim(), swName)
	if spec.Switch.Latency > 0 {
		sw.Latency = spec.Switch.Latency
	}
	c := &Cluster{Sim: s, Switch: sw, SwitchMachine: swm}

	link := func() *Net {
		n := NewOn(s)
		if spec.LinkBitsPerSec > 0 {
			n.Link.BitsPerSec = spec.LinkBitsPerSec
		}
		if spec.LinkPropDelay > 0 {
			n.Link.PropDelay = spec.LinkPropDelay
		}
		return n
	}

	// Client addressing first: farm members need the client ARP entries
	// of their tenant before their stacks boot.
	clientARP := make(map[string]map[proto.Addr]proto.MAC)
	for k, cl := range spec.Clients {
		if clientARP[cl.Tenant] == nil {
			clientARP[cl.Tenant] = make(map[proto.Addr]proto.MAC)
		}
		clientARP[cl.Tenant][clientIP(k)] = clientMAC(k)
	}

	for fi := range spec.Farms {
		fs := &spec.Farms[fi]
		vip := fs.VIP
		if vip == (proto.Addr{}) {
			vip = farmVIP(fi)
		}
		vmac := farmVMAC(fi)
		svc, err := sw.AddService(wire.L4ServiceConfig{
			Name:     fs.Name,
			Tenant:   fs.Tenant,
			VIP:      vip,
			VMAC:     vmac,
			Steering: fs.Steering,
		})
		if err != nil {
			return nil, err
		}
		farm := &Farm{
			Name: fs.Name, Tenant: fs.Tenant, VIP: vip, VMAC: vmac,
			Service: svc, cluster: c, control: fs.Control,
		}
		if farm.control.Interval == 0 {
			farm.control.Interval = 250 * sim.Microsecond
		}
		if farm.control.Cooldown == 0 {
			farm.control.Cooldown = 4 * farm.control.Interval
		}
		if farm.control.MinActive == 0 {
			farm.control.MinActive = 1
		}
		initialActive := fs.InitialActive
		if initialActive == 0 {
			initialActive = fs.Members
		}
		for mi := 0; mi < fs.Members; mi++ {
			hcfg := fs.Host
			hcfg.Name = fmt.Sprintf("%s-m%d", fs.Name, mi)
			hcfg.Side = 0
			hcfg.IP = vip // DSR: every member answers from the VIP
			hcfg.MAC = memberMAC(fi, mi)
			if hcfg.Cores == 0 {
				hcfg.Cores = 12
			}
			if hcfg.Queues == 0 {
				hcfg.Queues = 8
			}
			n := link()
			h := n.AddHost(hcfg)
			ncfg := fs.NEaT
			if ncfg.TCP == (tcpeng.Config{}) {
				ncfg.TCP = tcpeng.DefaultConfig()
			}
			if ncfg.Slots == nil {
				ncfg.Slots = SingleSlots(2, 2)
				ncfg.Syscall = ThreadLoc{Core: 1}
			}
			// The member watchdog is the cross-machine liveness signal:
			// the farm controller reads its probe counter for progress.
			ncfg.Watchdog.Enabled = true
			sys, err := h.BuildNEaTARP(clientARP[fs.Tenant], ncfg)
			if err != nil {
				return nil, fmt.Errorf("testbed: farm %q member %d: %w", fs.Name, mi, err)
			}
			port := sw.AddPort(hcfg.Name, n.Link.End(1), hcfg.MAC)
			state := wire.BackendActive
			if mi >= initialActive {
				state = wire.BackendDraining // standby capacity
			}
			backend := svc.AddBackend(port, hcfg.MAC, state)
			farm.Members = append(farm.Members, &FarmMember{
				Host: h, Sys: sys, Port: port, Backend: backend, alive: true,
			})
		}
		c.Farms = append(c.Farms, farm)
	}

	for k := range spec.Clients {
		cs := &spec.Clients[k]
		stacks := cs.Stacks
		if stacks == 0 {
			stacks = 1
		}
		hcfg := cs.Host
		hcfg.Name = fmt.Sprintf("client%d", k)
		hcfg.Side = 0
		hcfg.IP = clientIP(k)
		hcfg.MAC = clientMAC(k)
		if hcfg.Cores == 0 {
			hcfg.Cores = 2 + 2*stacks + 14
			hcfg.FreqHz = 3_000_000_000
		}
		if hcfg.Queues == 0 {
			hcfg.Queues = stacks
		}
		n := link()
		h := n.AddHost(hcfg)
		// A tenant's client resolves exactly its tenant's VIPs: the ARP
		// table is the tenant boundary.
		arp := make(map[proto.Addr]proto.MAC)
		for _, f := range c.TenantFarms(cs.Tenant) {
			arp[f.VIP] = f.VMAC
		}
		sys, err := h.BuildClientSystemARP(arp, stacks, tcpeng.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("testbed: client %d: %w", k, err)
		}
		port := sw.AddPort(hcfg.Name, n.Link.End(1), hcfg.MAC)
		c.Clients = append(c.Clients, &ClusterClient{
			Host: h, Sys: sys, Tenant: cs.Tenant, Port: port,
		})
	}

	// Start the farm controllers: control-plane loops on the root
	// simulator, which PDES executes at barriers with all domains
	// quiescent. The first tick is offset from the member watchdogs'
	// probe instants (multiples of their 100 µs interval) so counter
	// sampling never ties with a probe event.
	for _, f := range c.Farms {
		farm := f
		var tick func()
		tick = func() {
			farm.controlTick()
			s.After(farm.control.Interval, tick)
		}
		s.At(s.Now()+farm.control.Interval+17*sim.Microsecond, tick)
	}
	return c, nil
}

// controlTick is one farm-controller evaluation: member health first,
// then the scale watermarks.
func (f *Farm) controlTick() {
	now := f.cluster.Sim.Now()

	// Health: a live member's watchdog sends probes every round; a
	// counter that stopped moving means the machine is gone (hung kernel,
	// dead cable, KillMachine). Backend goes Down — pinned flows to it
	// are lost (their state died with the machine), new flows re-place
	// onto the survivors.
	for i, m := range f.Members {
		if !m.alive {
			continue
		}
		probes := m.Sys.Watchdog().Stats().ProbesSent
		if m.sampled && probes == m.lastProbes {
			m.alive = false
			f.Service.SetBackendState(m.Backend, wire.BackendDown)
			f.cluster.events = append(f.cluster.events, FarmEvent{
				At: now, Farm: f.Name, Kind: FarmMemberDead, Member: i,
			})
			continue
		}
		m.lastProbes = probes
		m.sampled = true
	}

	// Autoscale: mean live connections per active member against the
	// watermarks, with a cooldown between flips.
	if f.control.HighWater == 0 && f.control.LowWater == 0 {
		return
	}
	if f.flipped && now-f.lastFlip < f.control.Cooldown {
		return
	}
	active, conns := 0, 0
	for _, m := range f.Members {
		if m.alive && f.Service.BackendState(m.Backend) == wire.BackendActive {
			active++
			conns += m.Sys.TotalConns()
		}
	}
	if active == 0 {
		return
	}
	mean := conns / active
	if f.control.HighWater > 0 && mean > f.control.HighWater {
		for i, m := range f.Members {
			if m.alive && f.Service.BackendState(m.Backend) == wire.BackendDraining {
				f.Service.SetBackendState(m.Backend, wire.BackendActive)
				f.lastFlip, f.flipped = now, true
				f.cluster.events = append(f.cluster.events, FarmEvent{
					At: now, Farm: f.Name, Kind: FarmScaleUp, Member: i,
				})
				return
			}
		}
		return
	}
	if f.control.LowWater > 0 && mean < f.control.LowWater && active > f.control.MinActive {
		// Drain the highest-indexed active member (the steer plane's
		// historical retire choice, one level up).
		for i := len(f.Members) - 1; i >= 0; i-- {
			m := f.Members[i]
			if m.alive && f.Service.BackendState(m.Backend) == wire.BackendActive {
				f.Service.SetBackendState(m.Backend, wire.BackendDraining)
				f.lastFlip, f.flipped = now, true
				f.cluster.events = append(f.cluster.events, FarmEvent{
					At: now, Farm: f.Name, Kind: FarmScaleDown, Member: i,
				})
				return
			}
		}
	}
}

// KillMachine fails farm member (farm, member) completely: every process
// on the machine livelocks (accepting deliveries, processing nothing —
// invisible to the in-machine crash oracle, exactly a hung kernel) and
// the machine's switch port goes down. Detection is the farm
// controller's job. Call from a control-plane event (root-simulator
// At/After) so PDES runs it at a barrier.
func (c *Cluster) KillMachine(farm, member int) {
	f := c.Farms[farm]
	m := f.Members[member]
	mach := m.Host.Machine
	for ci := 0; ci < mach.NumCores(); ci++ {
		core := mach.Core(ci)
		for ti := 0; ti < core.NumThreads(); ti++ {
			for _, p := range mach.Thread(ci, ti).Procs() {
				if !p.Dead() {
					p.Hang()
				}
			}
		}
	}
	c.Switch.SetPortUp(m.Port, false)
}
