// Package testbed assembles complete simulated testbeds: machines, NICs,
// drivers, links, NEaT systems and client stacks. It reproduces the
// paper's physical setup (§6) — two machines connected by a 10GbE DAC
// cable, alternating roles between system under test and load generator —
// and is shared by the integration tests, the examples and the experiment
// harness.
package testbed

import (
	"fmt"

	"neat/internal/baseline"
	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/ipeng"
	"neat/internal/nicdev"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/wire"
)

// Netmask used throughout the testbed (one /24).
var Netmask = proto.IPv4(255, 255, 255, 0)

// Net is a two-endpoint network: one simulator, one 10G link.
type Net struct {
	Sim  *sim.Simulator
	Link *wire.Link
}

// New creates a network with a 10 Gb/s, 1 µs DAC-like link.
func New(seed int64) *Net {
	return NewOn(sim.New(seed))
}

// NewOn creates a network on an existing simulator. Farm topologies (many
// host pairs in one simulation, e.g. the PDES scaling benches) call this
// once per link, sharing the simulator across all of them.
func NewOn(s *sim.Simulator) *Net {
	return &Net{Sim: s, Link: wire.NewLink(s)}
}

// ThreadLoc addresses one hardware thread of a machine.
type ThreadLoc struct {
	Core   int
	Thread int
}

// HostConfig describes one machine and its NIC.
type HostConfig struct {
	Name           string
	Side           int // link endpoint (0 or 1)
	Cores          int
	ThreadsPerCore int
	FreqHz         int64
	Queues         int // NIC RX/TX queue pairs
	IP             proto.Addr
	MAC            proto.MAC
	Driver         ThreadLoc // where the NIC driver runs
	DriverCosts    *nicdev.DriverCosts
}

// Host is a machine with its NIC and driver.
type Host struct {
	Net     *Net
	Machine *sim.Machine
	NIC     *nicdev.NIC
	Driver  *nicdev.Driver
	IP      proto.Addr
	MAC     proto.MAC
}

// AddHost creates a machine attached to the link.
func (n *Net) AddHost(cfg HostConfig) *Host {
	if cfg.ThreadsPerCore == 0 {
		cfg.ThreadsPerCore = 1
	}
	if cfg.FreqHz == 0 {
		cfg.FreqHz = 1_900_000_000
	}
	if cfg.Queues == 0 {
		cfg.Queues = 1
	}
	m := sim.NewMachine(n.Sim, cfg.Name, cfg.Cores, cfg.ThreadsPerCore, cfg.FreqHz)
	nic := nicdev.NewNIC(n.Sim, cfg.Name+".nic", cfg.MAC, n.Link, cfg.Side, cfg.Queues)
	dcosts := nicdev.DefaultDriverCosts()
	if cfg.DriverCosts != nil {
		dcosts = *cfg.DriverCosts
	}
	drv := nicdev.NewDriver(m.Thread(cfg.Driver.Core, cfg.Driver.Thread),
		cfg.Name+".nicdrv", nic, dcosts)
	return &Host{Net: n, Machine: m, NIC: nic, Driver: drv, IP: cfg.IP, MAC: cfg.MAC}
}

// Thread resolves a thread location on the host.
func (h *Host) Thread(loc ThreadLoc) *sim.HWThread {
	return h.Machine.Thread(loc.Core, loc.Thread)
}

// StackConfig returns the replica template for this host, with static ARP
// towards the peer host.
func (h *Host) StackConfig(kind stack.Kind, tcp tcpeng.Config, peer *Host) stack.Config {
	return h.StackConfigARP(kind, tcp, map[proto.Addr]proto.MAC{peer.IP: peer.MAC})
}

// StackConfigARP returns the replica template for this host with an
// arbitrary static ARP table — the multi-peer form cluster topologies
// need, where a farm machine answers many clients and a client resolves
// many service VIPs.
func (h *Host) StackConfigARP(kind stack.Kind, tcp tcpeng.Config, arp map[proto.Addr]proto.MAC) stack.Config {
	return stack.Config{
		Kind: kind,
		IP: ipeng.Config{
			Addr: h.IP, Mask: Netmask, MAC: h.MAC,
			StaticARP: arp,
		},
		TCP:   tcp,
		Costs: stack.DefaultCosts(),
		IPC:   ipc.DefaultCosts(),
	}
}

// NEaTConfig places a NEaT system on a host.
type NEaTConfig struct {
	Kind stack.Kind
	TCP  tcpeng.Config
	// Slots lists the hardware threads of each replica slot (1 thread for
	// single-component, 2 for multi-component replicas).
	Slots [][]ThreadLoc
	// Syscall places the SYSCALL server.
	Syscall ThreadLoc
	// InitialReplicas (default: all slots).
	InitialReplicas int
	// DisableFlowFilters switches to pure-RSS steering (ablation).
	DisableFlowFilters bool
	// UseNICFlowTracking enables the §4 hardware tracking extension
	// (usually combined with DisableFlowFilters).
	UseNICFlowTracking bool
	// DisableRecovery turns the crash watcher off.
	DisableRecovery bool
	// RecoveryDelay overrides the default 500 µs.
	RecoveryDelay sim.Time
	// CheckpointInterval enables stateful TCP recovery (0 = stateless).
	CheckpointInterval sim.Time
	// Watchdog enables heartbeat-based failure detection with the
	// escalation ladder (default: the paper's instantaneous crash oracle).
	Watchdog core.WatchdogConfig
	// Steering configures the flow placement plane (zero value: the
	// legacy RSS hash policy, no drain deadline).
	Steering steer.Config
	// Stack optionally overrides the full replica template (built from
	// StackConfig when nil).
	Stack *stack.Config
	// IPC tunes the modeled message rings of the system's channels; it
	// composes with Stack (applied on top of whichever template is used).
	// The zero value keeps the calibrated per-message doorbell behaviour.
	IPC IPCTuning
	// Observe attaches the observability layer (lifecycle events; combine
	// with trace.Tracer.Attach on the simulator for message tracing).
	Observe core.ObserveConfig
}

// IPCTuning adjusts the ring knobs of the channel costs a NEaT system is
// built with: RingDepth bounds the in-flight messages per channel (0 =
// package default) and CoalesceWakes enables doorbell coalescing.
type IPCTuning struct {
	RingDepth     int
	CoalesceWakes bool
}

// apply overlays the tuning on a channel cost template.
func (t IPCTuning) apply(c *ipc.Costs) {
	if t.RingDepth > 0 {
		c.RingDepth = t.RingDepth
	}
	if t.CoalesceWakes {
		c.CoalesceWakes = true
	}
}

// BuildNEaT boots a NEaT system on host h talking to peer.
func (h *Host) BuildNEaT(peer *Host, cfg NEaTConfig) (*core.System, error) {
	return h.BuildNEaTARP(map[proto.Addr]proto.MAC{peer.IP: peer.MAC}, cfg)
}

// BuildNEaTARP boots a NEaT system on host h with an arbitrary static ARP
// table (the cluster form: one server machine answering many clients).
func (h *Host) BuildNEaTARP(arp map[proto.Addr]proto.MAC, cfg NEaTConfig) (*core.System, error) {
	scfg := h.StackConfigARP(cfg.Kind, cfg.TCP, arp)
	if cfg.Stack != nil {
		scfg = *cfg.Stack
	}
	cfg.IPC.apply(&scfg.IPC)
	threads := make([][]*sim.HWThread, len(cfg.Slots))
	for i, slot := range cfg.Slots {
		for _, loc := range slot {
			threads[i] = append(threads[i], h.Thread(loc))
		}
	}
	return core.New(h.Net.Sim, core.Config{
		Stack:              scfg,
		Threads:            threads,
		InitialReplicas:    cfg.InitialReplicas,
		NIC:                h.NIC,
		Driver:             h.Driver,
		SyscallThread:      h.Thread(cfg.Syscall),
		RecoveryDelay:      cfg.RecoveryDelay,
		CheckpointInterval: cfg.CheckpointInterval,
		AutoRecover:        !cfg.DisableRecovery,
		UseFlowFilters:     !cfg.DisableFlowFilters,
		UseNICFlowTracking: cfg.UseNICFlowTracking,
		Watchdog:           cfg.Watchdog,
		Observe:            cfg.Observe,
		Steering:           cfg.Steering,
	})
}

// SingleSlots builds n single-thread slots on consecutive cores starting
// at core first (thread 0).
func SingleSlots(first, n int) [][]ThreadLoc {
	out := make([][]ThreadLoc, n)
	for i := range out {
		out[i] = []ThreadLoc{{Core: first + i}}
	}
	return out
}

// MultiSlots builds n two-thread slots on consecutive core pairs starting
// at core first: slot i = cores (first+2i, first+2i+1).
func MultiSlots(first, n int) [][]ThreadLoc {
	out := make([][]ThreadLoc, n)
	for i := range out {
		out[i] = []ThreadLoc{{Core: first + 2*i}, {Core: first + 2*i + 1}}
	}
	return out
}

// DefaultAMDHost returns the 12-core AMD Opteron 6168 system-under-test
// host of §6 (1.9 GHz, no hyperthreading).
func DefaultAMDHost(n *Net, side int, queues int) *Host {
	return n.AddHost(HostConfig{
		Name: "amd", Side: side, Cores: 12, ThreadsPerCore: 1,
		FreqHz: 1_900_000_000, Queues: queues,
		IP:  proto.IPv4(10, 0, 0, 1),
		MAC: proto.MAC{0x02, 0xAD, 0, 0, 0, 0x01},
		// Core 0 hosts the NIC driver (the paper dedicates one core to it).
		Driver: ThreadLoc{Core: 0},
	})
}

// DefaultXeonHost returns the dual-socket quad-core Xeon E5520 host of §6
// (8 cores, 2 hardware threads per core, 2.26 GHz).
func DefaultXeonHost(n *Net, side int, queues int, driver ThreadLoc) *Host {
	return n.AddHost(HostConfig{
		Name: "xeon", Side: side, Cores: 8, ThreadsPerCore: 2,
		FreqHz: 2_260_000_000, Queues: queues,
		IP:     proto.IPv4(10, 0, 0, 1),
		MAC:    proto.MAC{0x02, 0x8E, 0, 0, 0, 0x01},
		Driver: driver,
	})
}

// DefaultClientHost returns a deliberately oversized load-generator
// machine (it must never be the bottleneck; the paper uses the second
// testbed machine with 12 httperf instances).
func DefaultClientHost(n *Net, side int, stacks int) *Host {
	cores := 2 + 2*stacks + 14 // driver + syscall + stacks + apps
	return n.AddHost(HostConfig{
		Name: "client", Side: side, Cores: cores, ThreadsPerCore: 1,
		FreqHz: 3_000_000_000, Queues: stacks,
		IP:     proto.IPv4(10, 0, 0, 2),
		MAC:    proto.MAC{0x02, 0xC1, 0, 0, 0, 0x02},
		Driver: ThreadLoc{Core: 0},
	})
}

// BuildClientSystem boots a NEaT system on the (oversized) client host
// with `stacks` single-component replicas: one per load-generator process.
// Client stacks are given a large cycle discount — the load generator must
// saturate the server, not itself (the paper's client machine runs 12
// httperf processes that together generate >300 krps).
func (h *Host) BuildClientSystem(peer *Host, stacks int, tcp tcpeng.Config) (*core.System, error) {
	return h.BuildClientSystemARP(map[proto.Addr]proto.MAC{peer.IP: peer.MAC}, stacks, tcp)
}

// BuildClientSystemARP is BuildClientSystem with an arbitrary static ARP
// table (the cluster form: one load generator resolving many service VIPs).
func (h *Host) BuildClientSystemARP(arp map[proto.Addr]proto.MAC, stacks int, tcp tcpeng.Config) (*core.System, error) {
	scfg := h.StackConfigARP(stack.Single, tcp, arp)
	// Generous client: stack operations cost a tenth of the server's.
	scfg.Costs = cheapCosts()
	cfg := NEaTConfig{Kind: stack.Single, TCP: tcp,
		Slots:   SingleSlots(2, stacks),
		Syscall: ThreadLoc{Core: 1},
		Stack:   &scfg,
	}
	return h.BuildNEaTARP(arp, cfg)
}

// cheapCosts returns stack costs scaled down for the load generator.
func cheapCosts() stack.Costs {
	c := stack.DefaultCosts()
	c.FilterCheck /= 10
	c.IPIn /= 10
	c.IPOut /= 10
	c.TCPSegIn /= 10
	c.TCPSegOut /= 10
	c.TCPConnSetup /= 10
	c.UDPIn /= 10
	c.UDPOut /= 10
	c.SockOp /= 10
	c.SockEvent /= 10
	c.TimerOp /= 10
	return c
}

// AppThread returns thread (core, 0) with a helpful panic when the host is
// too small (misconfigured experiment).
func (h *Host) AppThread(coreIdx int) *sim.HWThread {
	if coreIdx >= h.Machine.NumCores() {
		panic(fmt.Sprintf("testbed: host %s has %d cores, wanted core %d",
			h.Machine.Name, h.Machine.NumCores(), coreIdx))
	}
	return h.Machine.Thread(coreIdx, 0)
}

// BuildBaseline boots a monolithic Linux-model stack on host h: one kernel
// context per entry of kernelLocs, applications to be colocated by the
// caller on the same threads.
func (h *Host) BuildBaseline(peer *Host, tuning baseline.Tuning, tcp tcpeng.Config, kernelLocs []ThreadLoc) (*baseline.System, error) {
	threads := make([]*sim.HWThread, len(kernelLocs))
	for i, loc := range kernelLocs {
		threads[i] = h.Thread(loc)
	}
	return baseline.New(baseline.Config{
		KernelThreads: threads,
		NIC:           h.NIC,
		IP: ipeng.Config{
			Addr: h.IP, Mask: Netmask, MAC: h.MAC,
			StaticARP: map[proto.Addr]proto.MAC{peer.IP: peer.MAC},
		},
		TCP:    tcp,
		Tuning: tuning,
		IPC:    ipc.DefaultCosts(),
	})
}
