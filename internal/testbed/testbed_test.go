package testbed

import (
	"testing"

	"neat/internal/baseline"
	"neat/internal/stack"
	"neat/internal/tcpeng"
)

func TestHostsAndLayouts(t *testing.T) {
	n := New(1)
	amd := DefaultAMDHost(n, 0, 4)
	cli := DefaultClientHost(n, 1, 2)
	if amd.Machine.NumCores() != 12 || amd.Machine.FreqHz != 1_900_000_000 {
		t.Fatalf("AMD host: %d cores @%d", amd.Machine.NumCores(), amd.Machine.FreqHz)
	}
	if amd.NIC.NumQueues() != 4 {
		t.Fatalf("queues=%d", amd.NIC.NumQueues())
	}
	if cli.Machine.NumCores() < 16 {
		t.Fatalf("client too small: %d", cli.Machine.NumCores())
	}
	if amd.Thread(ThreadLoc{Core: 3}).Core().Index != 3 {
		t.Fatal("thread resolution")
	}
}

func TestXeonHostModel(t *testing.T) {
	n := New(1)
	x := DefaultXeonHost(n, 0, 2, ThreadLoc{Core: 0})
	if x.Machine.NumCores() != 8 || x.Machine.Core(0).NumThreads() != 2 {
		t.Fatalf("xeon topology: %d cores × %d threads",
			x.Machine.NumCores(), x.Machine.Core(0).NumThreads())
	}
	if x.Machine.FreqHz != 2_260_000_000 {
		t.Fatalf("freq=%d", x.Machine.FreqHz)
	}
}

func TestSlotHelpers(t *testing.T) {
	s := SingleSlots(2, 3)
	if len(s) != 3 || s[2][0].Core != 4 {
		t.Fatalf("single slots: %v", s)
	}
	m := MultiSlots(2, 2)
	if len(m) != 2 || len(m[1]) != 2 || m[1][0].Core != 4 || m[1][1].Core != 5 {
		t.Fatalf("multi slots: %v", m)
	}
}

func TestBuildNEaTAndBaseline(t *testing.T) {
	n := New(1)
	amd := DefaultAMDHost(n, 0, 2)
	cli := DefaultClientHost(n, 1, 1)
	sys, err := amd.BuildNEaT(cli, NEaTConfig{
		Kind: stack.Single, TCP: tcpeng.DefaultConfig(),
		Slots: SingleSlots(2, 2), Syscall: ThreadLoc{Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumActive() != 2 {
		t.Fatalf("active=%d", sys.NumActive())
	}

	n2 := New(2)
	amd2 := DefaultAMDHost(n2, 0, 4)
	cli2 := DefaultClientHost(n2, 1, 1)
	bl, err := amd2.BuildBaseline(cli2, baseline.Tuning{}, tcpeng.DefaultConfig(),
		[]ThreadLoc{{Core: 0}, {Core: 1}, {Core: 2}, {Core: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if bl.NumContexts() != 4 {
		t.Fatalf("contexts=%d", bl.NumContexts())
	}
	if _, err := cli2.BuildClientSystem(amd2, 1, tcpeng.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}
