// Package cliutil carries the flag, boot and report plumbing shared by
// the repository's command-line tools (neat-bench, neat-faults,
// neat-demo), so each main() holds only its own campaign logic. The
// helpers preserve the tools' historical output byte for byte — the
// determinism oracles hash it.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"neat"
	"neat/internal/experiments"
)

// ExperimentFlags is the standard flag bundle of an experiment-running
// command: seed, quick mode, sweep concurrency, in-simulation parallelism
// and profiling outputs.
type ExperimentFlags struct {
	Quick    *bool
	Seed     *int64
	Parallel *bool
	Workers  *int
	PDES     *int
	Scale    *int

	CPUProfile *string
	MemProfile *string
}

// Experiment registers the shared experiment flags on the default
// FlagSet with the command's default seed. Call flag.Parse() afterwards,
// then Options() and StartProfiles().
func Experiment(defaultSeed int64) *ExperimentFlags {
	return &ExperimentFlags{
		Quick:      flag.Bool("quick", false, "shorter warmup/measurement windows and fewer runs"),
		Seed:       flag.Int64("seed", defaultSeed, "simulation seed"),
		Parallel:   flag.Bool("parallel", true, "measure independent sweep points concurrently (output is identical either way)"),
		Workers:    flag.Int("workers", 0, "worker count for -parallel (default GOMAXPROCS)"),
		PDES:       flag.Int("pdes", 0, "run each simulation in parallel: conservative PDES with N domain workers (0 = sequential event loop)"),
		Scale:      flag.Int("scale", 1, "multiply the cluster campaign's connection ladder (1 fits a 1-CPU container; 8000 targets >1M aggregate connections)"),
		CPUProfile: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		MemProfile: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Options converts the parsed flags into experiment options.
func (f *ExperimentFlags) Options() experiments.Options {
	return experiments.Options{
		Quick: *f.Quick, Seed: *f.Seed,
		Parallel: *f.Parallel, Workers: *f.Workers,
		PDESWorkers: *f.PDES, Scale: *f.Scale,
	}
}

// StartProfiles starts the profiles requested by -cpuprofile/-memprofile
// and returns the function to defer in main(): it stops the CPU profile
// and writes the heap profile. With neither flag set it does nothing.
func (f *ExperimentFlags) StartProfiles() func() {
	if *f.CPUProfile != "" {
		cf, err := os.Create(*f.CPUProfile)
		if err != nil {
			Fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			Fail("cpuprofile: %v", err)
		}
	}
	return func() {
		if *f.CPUProfile != "" {
			pprof.StopCPUProfile()
		}
		if *f.MemProfile != "" {
			mf, err := os.Create(*f.MemProfile)
			if err != nil {
				Fail("memprofile: %v", err)
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				Fail("memprofile: %v", err)
			}
			mf.Close()
		}
	}
}

// Emit prints one experiment report to stdout.
func Emit(res *experiments.Result) { fmt.Print(res.String()) }

// EmitAll prints a sequence of reports, each followed by a blank line
// (the neat-bench full-run format).
func EmitAll(results []*experiments.Result) {
	for _, res := range results {
		fmt.Print(res.String())
		fmt.Println()
	}
}

// Fail reports a usage or runtime error and exits with status 2.
func Fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Farm is a booted facade-level demo topology: a NEaT server machine and
// an oversized load-generator client machine with its client-side stack.
type Farm struct {
	Net    *neat.Network
	Server *neat.Machine
	Client *neat.Machine
	Sys    *neat.System
	CliSys *neat.System
}

// BootCluster builds a multi-machine topology through the public
// facade's declarative API, failing with the config's actionable error.
// Tools that outgrow the two-machine BootFarm shape declare their world
// here instead of assuming Net.Link.
func BootCluster(cfg neat.ClusterConfig) (*neat.Cluster, error) {
	return cfg.Build()
}

// BootFarm builds the demo topology through the public facade: an AMD
// server running a NEaT system per cfg, a client machine with `stacks`
// client replicas. tune, when non-nil, runs against the server system
// before the client side boots (scale adjustments, fault arming) so its
// events land at the same simulated time as a hand-rolled boot sequence.
// It is a thin wrapper over the declarative neat.TopologyConfig surface,
// which performs the historical boot sequence byte for byte.
func BootFarm(seed int64, stacks int, cfg neat.SystemConfig, tune func(*neat.System) error) (*Farm, error) {
	tb, err := neat.TopologyConfig{
		Seed: seed, ClientStacks: stacks, System: cfg, Tune: tune,
	}.Build()
	if err != nil {
		return nil, err
	}
	return &Farm{Net: tb.Net, Server: tb.Server, Client: tb.Client,
		Sys: tb.System, CliSys: tb.ClientSystem}, nil
}
