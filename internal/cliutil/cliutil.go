// Package cliutil carries the flag, boot and report plumbing shared by
// the repository's command-line tools (neat-bench, neat-faults,
// neat-demo), so each main() holds only its own campaign logic. The
// helpers preserve the tools' historical output byte for byte — the
// determinism oracles hash it.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"neat"
	"neat/internal/experiments"
)

// ExperimentFlags is the standard flag bundle of an experiment-running
// command: seed, quick mode and sweep concurrency.
type ExperimentFlags struct {
	Quick    *bool
	Seed     *int64
	Parallel *bool
	Workers  *int
}

// Experiment registers the shared experiment flags on the default
// FlagSet with the command's default seed. Call flag.Parse() afterwards,
// then Options().
func Experiment(defaultSeed int64) *ExperimentFlags {
	return &ExperimentFlags{
		Quick:    flag.Bool("quick", false, "shorter warmup/measurement windows and fewer runs"),
		Seed:     flag.Int64("seed", defaultSeed, "simulation seed"),
		Parallel: flag.Bool("parallel", true, "measure independent sweep points concurrently (output is identical either way)"),
		Workers:  flag.Int("workers", 0, "worker count for -parallel (default GOMAXPROCS)"),
	}
}

// Options converts the parsed flags into experiment options.
func (f *ExperimentFlags) Options() experiments.Options {
	return experiments.Options{
		Quick: *f.Quick, Seed: *f.Seed,
		Parallel: *f.Parallel, Workers: *f.Workers,
	}
}

// Emit prints one experiment report to stdout.
func Emit(res *experiments.Result) { fmt.Print(res.String()) }

// EmitAll prints a sequence of reports, each followed by a blank line
// (the neat-bench full-run format).
func EmitAll(results []*experiments.Result) {
	for _, res := range results {
		fmt.Print(res.String())
		fmt.Println()
	}
}

// Fail reports a usage or runtime error and exits with status 2.
func Fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// Farm is a booted facade-level demo topology: a NEaT server machine and
// an oversized load-generator client machine with its client-side stack.
type Farm struct {
	Net    *neat.Network
	Server *neat.Machine
	Client *neat.Machine
	Sys    *neat.System
	CliSys *neat.System
}

// BootFarm builds the demo topology through the public facade: an AMD
// server running a NEaT system per cfg, a client machine with `stacks`
// client replicas. tune, when non-nil, runs against the server system
// before the client side boots (scale adjustments, fault arming) so its
// events land at the same simulated time as a hand-rolled boot sequence.
func BootFarm(seed int64, stacks int, cfg neat.SystemConfig, tune func(*neat.System) error) (*Farm, error) {
	net := neat.NewNetwork(seed)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, stacks)
	sys, err := neat.StartNEaT(server, client, cfg)
	if err != nil {
		return nil, err
	}
	if tune != nil {
		if err := tune(sys); err != nil {
			return nil, err
		}
	}
	clisys, err := neat.StartClientSystem(client, server, stacks)
	if err != nil {
		return nil, err
	}
	return &Farm{Net: net, Server: server, Client: client, Sys: sys, CliSys: clisys}, nil
}
