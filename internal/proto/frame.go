package proto

import (
	"fmt"
	"sync"

	"neat/internal/bufpool"
)

// Flow is the 5-tuple identifying one transport flow. It is the unit the
// NIC's flow-director filters and RSS hashing operate on (§4 of the paper):
// every packet of a flow must reach the same network stack replica.
type Flow struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            IPProto
}

// Reverse returns the flow seen from the other direction.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// String formats the flow as proto src:port>dst:port.
func (f Flow) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Hash returns a fast non-cryptographic hash of the 5-tuple (FNV-1a over
// the tuple bytes), in the spirit of the i82599's RSS hash. It is
// direction-sensitive, like hardware RSS with a non-symmetric key; the NIC
// model hashes inbound packets only, so each inbound flow is stable.
func (f Flow) Hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	step := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	for _, b := range f.Src {
		step(b)
	}
	for _, b := range f.Dst {
		step(b)
	}
	step(byte(f.SrcPort >> 8))
	step(byte(f.SrcPort))
	step(byte(f.DstPort >> 8))
	step(byte(f.DstPort))
	step(byte(f.Proto))
	return h
}

// Frame is a fully decoded Ethernet frame as seen by the stack components.
// Only the layers present are populated; Payload is the innermost payload.
//
// Frames returned by DecodeFrame are pooled: the terminal consumer calls
// Release, after which the frame, its header pointers and its Raw/Payload
// slices must not be touched. Frames constructed by hand (struct literal,
// as tests do) are not pooled and Release is a no-op on them.
type Frame struct {
	Eth  EthernetHeader
	ARP  *ARPPacket
	IP   *IPv4Header
	TCP  *TCPHeader
	UDP  *UDPHeader
	ICMP *ICMPEcho
	// Payload is the transport payload (TCP/UDP data or ICMP echo data).
	Payload []byte
	// Raw is the complete frame as it appeared on the wire.
	Raw []byte
	// RxQueue is the NIC RX queue the frame was classified onto; the driver
	// stamps it before handing the frame to the owning replica, so a frame
	// delivers itself without a wrapper message (and without the wrapper's
	// per-frame allocation).
	RxQueue int

	// Inline header storage: DecodeFrame points the header fields above at
	// these so a decode performs no per-layer allocation.
	arpStore  ARPPacket
	ipStore   IPv4Header
	tcpStore  TCPHeader
	udpStore  UDPHeader
	icmpStore ICMPEcho
	pooled    bool
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// Release returns a decoded frame to the frame pool and its Raw buffer to
// the buffer pool. Only the terminal consumer of a frame may call it;
// dropping a frame without Release is safe (it is garbage collected).
func (f *Frame) Release() {
	if f == nil || !f.pooled {
		return
	}
	raw := f.Raw
	*f = Frame{}
	framePool.Put(f)
	bufpool.Put(raw)
}

// Flow returns the frame's 5-tuple; ok is false for non-transport frames.
func (f *Frame) Flow() (Flow, bool) {
	if f.IP == nil {
		return Flow{}, false
	}
	fl := Flow{Src: f.IP.Src, Dst: f.IP.Dst, Proto: f.IP.Protocol}
	switch {
	case f.TCP != nil:
		fl.SrcPort, fl.DstPort = f.TCP.SrcPort, f.TCP.DstPort
	case f.UDP != nil:
		fl.SrcPort, fl.DstPort = f.UDP.SrcPort, f.UDP.DstPort
	default:
		return fl, true // ICMP: ports zero
	}
	return fl, true
}

// DecodeFrame parses raw bytes off the wire into a Frame, validating every
// checksum on the way in. IP fragments (FragOff != 0 or MF set) are decoded
// down to the IP layer only; reassembly is the IP component's job.
//
// The returned frame is pooled and takes ownership of raw; the terminal
// consumer must call Release. On error the caller keeps ownership of raw.
func DecodeFrame(raw []byte) (*Frame, error) {
	f := framePool.Get().(*Frame)
	*f = Frame{Raw: raw, pooled: true}
	rest, err := f.Eth.Unmarshal(raw)
	if err != nil {
		return nil, f.decodeFail(err)
	}
	switch f.Eth.Type {
	case EtherTypeARP:
		f.ARP = &f.arpStore
		if err := f.ARP.Unmarshal(rest); err != nil {
			return nil, f.decodeFail(err)
		}
		return f, nil
	case EtherTypeIPv4:
		f.IP = &f.ipStore
		rest, err = f.IP.Unmarshal(rest)
		if err != nil {
			return nil, f.decodeFail(err)
		}
	default:
		return nil, f.decodeFail(fmt.Errorf("%w: ethertype %#04x", ErrBadField, uint16(f.Eth.Type)))
	}
	if f.IP.FragOff != 0 || f.IP.Flags&IPFlagMF != 0 {
		f.Payload = rest // fragment: transport header may be incomplete
		return f, nil
	}
	switch f.IP.Protocol {
	case ProtoTCP:
		f.TCP = &f.tcpStore
		f.Payload, err = f.TCP.Unmarshal(rest, f.IP.Src, f.IP.Dst)
	case ProtoUDP:
		f.UDP = &f.udpStore
		f.Payload, err = f.UDP.Unmarshal(rest, f.IP.Src, f.IP.Dst)
	case ProtoICMP:
		f.ICMP = &f.icmpStore
		f.Payload, err = f.ICMP.Unmarshal(rest)
	default:
		f.Payload = rest
	}
	if err != nil {
		return nil, f.decodeFail(err)
	}
	return f, nil
}

// decodeFail recycles the frame shell (but not raw, which the caller still
// owns) and passes the error through.
func (f *Frame) decodeFail(err error) error {
	*f = Frame{}
	framePool.Put(f)
	return err
}

// WireSizeTCP returns the on-wire size of a TCP frame carrying payloadLen
// bytes, for sizing pooled build buffers.
func WireSizeTCP(tcp *TCPHeader, payloadLen int) int {
	return EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + tcp.optionsLen() + payloadLen
}

// AppendTCP serializes a complete Ethernet/IPv4/TCP frame, appending to b.
// Hot paths pass a pooled scratch (bufpool.Get(WireSizeTCP(...))[:0]) so the
// build allocates nothing.
func AppendTCP(b []byte, eth EthernetHeader, ip IPv4Header, tcp TCPHeader, payload []byte) []byte {
	ip.Protocol = ProtoTCP
	ip.TotalLen = uint16(IPv4HeaderLen + TCPHeaderLen + tcp.optionsLen() + len(payload))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	return tcp.Marshal(b, ip.Src, ip.Dst, payload)
}

// BuildTCP serializes a complete Ethernet/IPv4/TCP frame.
func BuildTCP(eth EthernetHeader, ip IPv4Header, tcp TCPHeader, payload []byte) []byte {
	return AppendTCP(make([]byte, 0, WireSizeTCP(&tcp, len(payload))), eth, ip, tcp, payload)
}

// AppendUDP serializes a complete Ethernet/IPv4/UDP frame, appending to b.
func AppendUDP(b []byte, eth EthernetHeader, ip IPv4Header, udp UDPHeader, payload []byte) []byte {
	ip.Protocol = ProtoUDP
	ip.TotalLen = uint16(IPv4HeaderLen + UDPHeaderLen + len(payload))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	return udp.Marshal(b, ip.Src, ip.Dst, payload)
}

// BuildUDP serializes a complete Ethernet/IPv4/UDP frame.
func BuildUDP(eth EthernetHeader, ip IPv4Header, udp UDPHeader, payload []byte) []byte {
	b := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	return AppendUDP(b, eth, ip, udp, payload)
}

// AppendICMP serializes a complete Ethernet/IPv4/ICMP echo frame, appending
// to b.
func AppendICMP(b []byte, eth EthernetHeader, ip IPv4Header, icmp ICMPEcho, payload []byte) []byte {
	ip.Protocol = ProtoICMP
	ip.TotalLen = uint16(IPv4HeaderLen + ICMPHeaderLen + len(payload))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	return icmp.Marshal(b, payload)
}

// BuildICMP serializes a complete Ethernet/IPv4/ICMP echo frame.
func BuildICMP(eth EthernetHeader, ip IPv4Header, icmp ICMPEcho, payload []byte) []byte {
	b := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+ICMPHeaderLen+len(payload))
	return AppendICMP(b, eth, ip, icmp, payload)
}

// AppendARP serializes a complete Ethernet/ARP frame, appending to b.
func AppendARP(b []byte, eth EthernetHeader, arp ARPPacket) []byte {
	b = eth.Marshal(b)
	return arp.Marshal(b)
}

// BuildARP serializes a complete Ethernet/ARP frame.
func BuildARP(eth EthernetHeader, arp ARPPacket) []byte {
	return AppendARP(make([]byte, 0, EthernetHeaderLen+ARPPacketLen), eth, arp)
}
