package proto

import (
	"testing"

	"neat/internal/bufpool"
)

// BenchmarkProtoMarshal measures one hop of the pooled marshal/decode
// cycle: build a TCP frame into pooled scratch, decode it into a pooled
// Frame, release both. This is the per-packet byte-shuffling cost the
// simulator pays on every link crossing.
func BenchmarkProtoMarshal(b *testing.B) {
	b.ReportAllocs()
	eth := EthernetHeader{Src: MAC{1}, Dst: MAC{2}, Type: EtherTypeIPv4}
	ip := IPv4Header{Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2), TTL: 64}
	tcp := TCPHeader{SrcPort: 1234, DstPort: 80, Seq: 1, Ack: 1, Flags: TCPAck, Window: 65535}
	payload := make([]byte, 1448)
	b.SetBytes(int64(WireSizeTCP(&tcp, len(payload))))
	for i := 0; i < b.N; i++ {
		raw := AppendTCP(bufpool.Get(WireSizeTCP(&tcp, len(payload)))[:0], eth, ip, tcp, payload)
		f, err := DecodeFrame(raw)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
}
