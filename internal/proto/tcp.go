package proto

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// FlagString renders TCP flags as a compact string like "SA" or "FPA".
func FlagString(flags uint8) string {
	names := []struct {
		bit uint8
		ch  byte
	}{{TCPFin, 'F'}, {TCPSyn, 'S'}, {TCPRst, 'R'}, {TCPPsh, 'P'}, {TCPAck, 'A'}, {TCPUrg, 'U'}}
	out := make([]byte, 0, 6)
	for _, n := range names {
		if flags&n.bit != 0 {
			out = append(out, n.ch)
		}
	}
	if len(out) == 0 {
		return "."
	}
	return string(out)
}

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP option kinds supported by the stack.
const (
	tcpOptEnd    uint8 = 0
	tcpOptNop    uint8 = 1
	tcpOptMSS    uint8 = 2
	tcpOptWScale uint8 = 3
)

// TCPOptions carries the negotiable TCP options the stack understands.
type TCPOptions struct {
	MSS       uint16 // 0 = absent
	WScale    uint8  // window scale shift; valid if HasWScale
	HasWScale bool
}

// TCPHeader is a TCP segment header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Opts             TCPOptions
}

// optionsLen returns the encoded, padded options length.
func (h *TCPHeader) optionsLen() int {
	n := 0
	if h.Opts.MSS != 0 {
		n += 4
	}
	if h.Opts.HasWScale {
		n += 3
	}
	return (n + 3) &^ 3 // pad to 4-byte boundary
}

// EncodedLen returns the marshalled size of the header (with options) plus
// payloadLen bytes of data, for sizing pooled scratch buffers.
func (h *TCPHeader) EncodedLen(payloadLen int) int {
	return TCPHeaderLen + h.optionsLen() + payloadLen
}

// Marshal appends header+payload with the pseudo-header checksum computed.
func (h *TCPHeader) Marshal(b []byte, src, dst Addr, payload []byte) []byte {
	start := len(b)
	optLen := h.optionsLen()
	dataOff := (TCPHeaderLen + optLen) / 4
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, uint8(dataOff)<<4, h.Flags)
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, h.Urgent)
	// Options.
	optStart := len(b)
	if h.Opts.MSS != 0 {
		b = append(b, tcpOptMSS, 4)
		b = binary.BigEndian.AppendUint16(b, h.Opts.MSS)
	}
	if h.Opts.HasWScale {
		b = append(b, tcpOptWScale, 3, h.Opts.WScale)
	}
	for len(b)-optStart < optLen {
		b = append(b, tcpOptNop)
	}
	b = append(b, payload...)
	segLen := uint16(TCPHeaderLen + optLen + len(payload))
	ck := Checksum(b[start:], pseudoHeaderSum(src, dst, ProtoTCP, segLen))
	binary.BigEndian.PutUint16(b[start+16:], ck)
	h.Checksum = ck
	return b
}

// Unmarshal parses a TCP header, verifying the pseudo-header checksum, and
// returns the payload.
func (h *TCPHeader) Unmarshal(b []byte, src, dst Addr) ([]byte, error) {
	if len(b) < TCPHeaderLen {
		return nil, ErrTruncated
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return nil, ErrTruncated
	}
	if Checksum(b, pseudoHeaderSum(src, dst, ProtoTCP, uint16(len(b)))) != 0 {
		return nil, fmt.Errorf("%w: bad TCP checksum", ErrBadField)
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.Urgent = binary.BigEndian.Uint16(b[18:20])
	h.Opts = TCPOptions{}
	opts := b[TCPHeaderLen:dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case tcpOptEnd:
			opts = nil
		case tcpOptNop:
			opts = opts[1:]
		case tcpOptMSS:
			if len(opts) < 4 || opts[1] != 4 {
				return nil, fmt.Errorf("%w: malformed MSS option", ErrBadField)
			}
			h.Opts.MSS = binary.BigEndian.Uint16(opts[2:4])
			opts = opts[4:]
		case tcpOptWScale:
			if len(opts) < 3 || opts[1] != 3 {
				return nil, fmt.Errorf("%w: malformed WScale option", ErrBadField)
			}
			h.Opts.WScale = opts[2]
			h.Opts.HasWScale = true
			opts = opts[3:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return nil, fmt.Errorf("%w: malformed TCP option %d", ErrBadField, opts[0])
			}
			opts = opts[opts[1]:]
		}
	}
	return b[dataOff:], nil
}

// String summarizes the segment for traces.
func (h *TCPHeader) String() string {
	return fmt.Sprintf("tcp %d>%d %s seq=%d ack=%d win=%d",
		h.SrcPort, h.DstPort, FlagString(h.Flags), h.Seq, h.Ack, h.Window)
}

// SeqLT reports whether a < b in 32-bit sequence space (RFC 793 wraparound).
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports whether a <= b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports whether a > b in sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports whether a >= b in sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}
