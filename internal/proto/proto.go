// Package proto implements the wire formats spoken on the simulated
// network: Ethernet, ARP, IPv4, ICMP, UDP and TCP. Packets are real bytes;
// every layer has Marshal/Unmarshal with full checksum support, so the
// stacks on both simulated machines interoperate through serialized frames
// exactly as physical hosts would.
//
// The layer/decoding style follows gopacket: fixed header structs with
// explicit field order, a DecodeFrame helper that peels layers, and a Flow
// 5-tuple with a fast symmetric-capable hash used for NIC RSS steering.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("proto: truncated packet")
	ErrBadField  = errors.New("proto: invalid header field")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the MAC in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Addr is an IPv4 address.
type Addr [4]byte

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4 builds an Addr from four octets.
func IPv4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// Uint32 returns the address as a big-endian integer.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Supported EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// IPProto identifies the payload protocol of an IPv4 packet.
type IPProto uint8

// Supported IP protocols.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names the protocol.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// EthernetHeaderLen is the length of an Ethernet II header (no VLAN, no FCS).
const EthernetHeaderLen = 14

// EthernetHeader is an Ethernet II frame header.
type EthernetHeader struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// Marshal appends the wire encoding of h to b and returns the result.
func (h *EthernetHeader) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(h.Type))
}

// Unmarshal parses an Ethernet header from b, returning the payload.
func (h *EthernetHeader) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return b[EthernetHeaderLen:], nil
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacketLen is the length of an IPv4-over-Ethernet ARP packet.
const ARPPacketLen = 28

// ARPPacket is an ARP request or reply for IPv4 over Ethernet.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  Addr
	TargetMAC MAC
	TargetIP  Addr
}

// Marshal appends the wire encoding of a to b and returns the result.
func (a *ARPPacket) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1)      // HTYPE: Ethernet
	b = binary.BigEndian.AppendUint16(b, 0x0800) // PTYPE: IPv4
	b = append(b, 6, 4)                          // HLEN, PLEN
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderMAC[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetMAC[:]...)
	b = append(b, a.TargetIP[:]...)
	return b
}

// Unmarshal parses an ARP packet from b.
func (a *ARPPacket) Unmarshal(b []byte) error {
	if len(b) < ARPPacketLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return fmt.Errorf("%w: unsupported ARP hardware/protocol type", ErrBadField)
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return nil
}

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// TxHeadroom is the room a transport layer reserves at the front of a TX
// frame buffer for the Ethernet and IPv4 headers (the skb-headroom idiom):
// the transport marshals its segment at offset TxHeadroom, and the IP layer
// fills the headers in place instead of copying the segment behind them.
const TxHeadroom = EthernetHeaderLen + IPv4HeaderLen

// IPv4 fragmentation flag bits (in the Flags/FragOff word).
const (
	IPFlagDF = 0x4000 // don't fragment
	IPFlagMF = 0x2000 // more fragments
)

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint16 // DF/MF bits only (mask 0x6000)
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Protocol IPProto
	Checksum uint16 // filled by Marshal
	Src, Dst Addr
}

// Marshal appends the wire encoding, computing the header checksum.
func (h *IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, h.TOS)
	b = binary.BigEndian.AppendUint16(b, h.TotalLen)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, (h.Flags&0x6000)|(h.FragOff&0x1fff))
	b = append(b, h.TTL, uint8(h.Protocol))
	b = binary.BigEndian.AppendUint16(b, 0) // checksum placeholder
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	ck := Checksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+10:], ck)
	h.Checksum = ck
	return b
}

// Unmarshal parses an IPv4 header, verifying version and checksum, and
// returns the payload trimmed to TotalLen.
func (h *IPv4Header) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: IP version %d", ErrBadField, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, ErrTruncated
	}
	if Checksum(b[:ihl], 0) != 0 {
		return nil, fmt.Errorf("%w: bad IPv4 header checksum", ErrBadField)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = ff & 0x6000
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = IPProto(b[9])
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return nil, ErrTruncated
	}
	return b[ihl:h.TotalLen], nil
}

// ICMP types used by the stack.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPHeaderLen is the length of an ICMP echo header.
const ICMPHeaderLen = 8

// ICMPEcho is an ICMP echo request/reply header.
type ICMPEcho struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Ident    uint16
	Seq      uint16
}

// Marshal appends header+payload with checksum computed over both.
func (h *ICMPEcho) Marshal(b, payload []byte) []byte {
	start := len(b)
	b = append(b, h.Type, h.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, h.Ident)
	b = binary.BigEndian.AppendUint16(b, h.Seq)
	b = append(b, payload...)
	ck := Checksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+2:], ck)
	h.Checksum = ck
	return b
}

// Unmarshal parses an ICMP echo header, verifying the checksum, and returns
// the payload.
func (h *ICMPEcho) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < ICMPHeaderLen {
		return nil, ErrTruncated
	}
	if Checksum(b, 0) != 0 {
		return nil, fmt.Errorf("%w: bad ICMP checksum", ErrBadField)
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.Ident = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return b[ICMPHeaderLen:], nil
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Marshal appends header+payload with the pseudo-header checksum computed.
func (h *UDPHeader) Marshal(b []byte, src, dst Addr, payload []byte) []byte {
	start := len(b)
	h.Length = uint16(UDPHeaderLen + len(payload))
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = binary.BigEndian.AppendUint16(b, 0)
	b = append(b, payload...)
	ck := Checksum(b[start:], pseudoHeaderSum(src, dst, ProtoUDP, h.Length))
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted all-ones when computed zero
	}
	binary.BigEndian.PutUint16(b[start+6:], ck)
	h.Checksum = ck
	return b
}

// Unmarshal parses a UDP header, verifying the pseudo-header checksum, and
// returns the payload.
func (h *UDPHeader) Unmarshal(b []byte, src, dst Addr) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return nil, ErrTruncated
	}
	if h.Checksum != 0 {
		if Checksum(b[:h.Length], pseudoHeaderSum(src, dst, ProtoUDP, h.Length)) != 0 {
			return nil, fmt.Errorf("%w: bad UDP checksum", ErrBadField)
		}
	}
	return b[UDPHeaderLen:h.Length], nil
}

// Checksum computes the Internet checksum (RFC 1071) of b folded together
// with an initial partial sum. Verifying a buffer that embeds a correct
// checksum yields 0.
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial checksum of the IPv4 pseudo-header
// used by TCP and UDP.
func pseudoHeaderSum(src, dst Addr, proto IPProto, length uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
