package proto

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xaa}
	macB = MAC{0x02, 0, 0, 0, 0, 0xbb}
	ipA  = IPv4(10, 0, 0, 1)
	ipB  = IPv4(10, 0, 0, 2)
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Canonical example from RFC 1071 §3.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// Odd final byte is padded with zero: words 0x0102, 0x0300.
	want := ^uint16(0x0102 + 0x0300)
	if got := Checksum(b, 0); got != want {
		t.Fatalf("checksum = %#04x, want %#04x", got, want)
	}
}

func TestChecksumVerifyProperty(t *testing.T) {
	// Property: embedding the computed checksum makes verification yield 0.
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		buf := append([]byte(nil), data...)
		buf[0], buf[1] = 0, 0
		ck := Checksum(buf, 0)
		binary.BigEndian.PutUint16(buf[0:2], ck)
		return Checksum(buf, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHeader{Dst: macB, Src: macA, Type: EtherTypeIPv4}
	b := h.Marshal(nil)
	b = append(b, 1, 2, 3)
	var g EthernetHeader
	payload, err := g.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
	if !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("payload %v", payload)
	}
	if _, err := g.Unmarshal(b[:10]); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARPPacket{Op: ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	b := a.Marshal(nil)
	if len(b) != ARPPacketLen {
		t.Fatalf("len=%d", len(b))
	}
	var g ARPPacket
	if err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g != a {
		t.Fatalf("round trip: got %+v want %+v", g, a)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{TOS: 0, TotalLen: IPv4HeaderLen + 4, ID: 77, Flags: IPFlagDF, TTL: 64, Protocol: ProtoTCP, Src: ipA, Dst: ipB}
	b := h.Marshal(nil)
	b = append(b, 9, 9, 9, 9)
	var g IPv4Header
	payload, err := g.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Src != h.Src || g.Dst != h.Dst || g.ID != h.ID || g.Protocol != h.Protocol || g.Flags != IPFlagDF {
		t.Fatalf("round trip: got %+v", g)
	}
	if len(payload) != 4 {
		t.Fatalf("payload len=%d", len(payload))
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	h := IPv4Header{TotalLen: IPv4HeaderLen, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB}
	b := h.Marshal(nil)
	b[8] ^= 0xff // corrupt TTL
	var g IPv4Header
	if _, err := g.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	payload := []byte("hello udp")
	h := UDPHeader{SrcPort: 1234, DstPort: 53}
	b := h.Marshal(nil, ipA, ipB, payload)
	var g UDPHeader
	got, err := g.Unmarshal(b, ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if g.SrcPort != 1234 || g.DstPort != 53 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %+v %q", g, got)
	}
	// Wrong pseudo-header (different dst IP) must fail.
	if _, err := g.Unmarshal(b, ipA, IPv4(10, 0, 0, 3)); err == nil {
		t.Fatal("UDP checksum ignored pseudo-header")
	}
	// Payload corruption must fail.
	b[len(b)-1] ^= 0x01
	if _, err := g.Unmarshal(b, ipA, ipB); err == nil {
		t.Fatal("corrupted UDP payload accepted")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	h := ICMPEcho{Type: ICMPEchoRequest, Ident: 7, Seq: 3}
	b := h.Marshal(nil, []byte("ping"))
	var g ICMPEcho
	payload, err := g.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != ICMPEchoRequest || g.Ident != 7 || g.Seq != 3 || string(payload) != "ping" {
		t.Fatalf("round trip: %+v %q", g, payload)
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	h := TCPHeader{
		SrcPort: 40000, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x12345678,
		Flags: TCPSyn | TCPAck, Window: 65535,
		Opts: TCPOptions{MSS: 1460, WScale: 7, HasWScale: true},
	}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	b := h.Marshal(nil, ipA, ipB, payload)
	var g TCPHeader
	got, err := g.Unmarshal(b, ipA, ipB)
	if err != nil {
		t.Fatal(err)
	}
	if g.Seq != h.Seq || g.Ack != h.Ack || g.Flags != h.Flags || g.Window != h.Window {
		t.Fatalf("fields: %+v", g)
	}
	if g.Opts.MSS != 1460 || !g.Opts.HasWScale || g.Opts.WScale != 7 {
		t.Fatalf("options: %+v", g.Opts)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestTCPChecksumCoversPayloadAndPseudoHeader(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPAck}
	b := h.Marshal(nil, ipA, ipB, []byte("data"))
	var g TCPHeader
	b[len(b)-1] ^= 0x40
	if _, err := g.Unmarshal(b, ipA, ipB); err == nil {
		t.Fatal("corrupted TCP payload accepted")
	}
	b[len(b)-1] ^= 0x40
	// Note: swapping src/dst would NOT change the (commutative) checksum;
	// a genuinely different address must.
	if _, err := g.Unmarshal(b, ipA, IPv4(10, 0, 9, 9)); err == nil {
		t.Fatal("TCP checksum ignored pseudo-header")
	}
}

func TestTCPRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		h := TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags, Window: win}
		b := h.Marshal(nil, ipA, ipB, payload)
		var g TCPHeader
		got, err := g.Unmarshal(b, ipA, ipB)
		if err != nil {
			return false
		}
		return g.SrcPort == srcPort && g.DstPort == dstPort && g.Seq == seq &&
			g.Ack == ack && g.Flags == flags && g.Window == win && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceArithmetic(t *testing.T) {
	if !SeqLT(0xffffffff, 1) {
		t.Fatal("wraparound LT failed")
	}
	if !SeqGT(1, 0xffffffff) {
		t.Fatal("wraparound GT failed")
	}
	if !SeqLEQ(5, 5) || !SeqGEQ(5, 5) {
		t.Fatal("equality comparisons failed")
	}
	if SeqMax(0xfffffffe, 2) != 2 {
		t.Fatal("SeqMax across wrap failed")
	}
}

func TestFlowHashStableAndReverse(t *testing.T) {
	fl := Flow{Src: ipA, Dst: ipB, SrcPort: 5555, DstPort: 80, Proto: ProtoTCP}
	if fl.Hash() != fl.Hash() {
		t.Fatal("hash unstable")
	}
	r := fl.Reverse()
	if r.Src != ipB || r.DstPort != 5555 {
		t.Fatalf("reverse: %+v", r)
	}
	if r.Reverse() != fl {
		t.Fatal("double reverse != identity")
	}
}

func TestFlowHashDispersionProperty(t *testing.T) {
	// Property: distinct source ports spread across 4 RSS buckets roughly
	// evenly (no bucket empty over 1024 flows).
	counts := [4]int{}
	for p := 0; p < 1024; p++ {
		fl := Flow{Src: ipA, Dst: ipB, SrcPort: uint16(10000 + p), DstPort: 80, Proto: ProtoTCP}
		counts[fl.Hash()%4]++
	}
	for i, c := range counts {
		if c < 128 {
			t.Fatalf("bucket %d starved: %v", i, counts)
		}
	}
}

func TestDecodeFrameTCP(t *testing.T) {
	raw := BuildTCP(
		EthernetHeader{Dst: macB, Src: macA, Type: EtherTypeIPv4},
		IPv4Header{TTL: 64, Src: ipA, Dst: ipB, ID: 42},
		TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 7, Flags: TCPSyn, Window: 100, Opts: TCPOptions{MSS: 1460}},
		nil,
	)
	f, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP == nil || f.TCP.SrcPort != 1000 || f.TCP.Opts.MSS != 1460 {
		t.Fatalf("tcp layer: %+v", f.TCP)
	}
	fl, ok := f.Flow()
	if !ok || fl.Proto != ProtoTCP || fl.SrcPort != 1000 || fl.Dst != ipB {
		t.Fatalf("flow: %+v ok=%v", fl, ok)
	}
}

func TestDecodeFrameUDPAndICMPAndARP(t *testing.T) {
	udpRaw := BuildUDP(EthernetHeader{Dst: macB, Src: macA, Type: EtherTypeIPv4},
		IPv4Header{TTL: 64, Src: ipA, Dst: ipB}, UDPHeader{SrcPort: 9, DstPort: 10}, []byte("u"))
	f, err := DecodeFrame(udpRaw)
	if err != nil || f.UDP == nil || string(f.Payload) != "u" {
		t.Fatalf("udp decode: %v %+v", err, f)
	}

	icmpRaw := BuildICMP(EthernetHeader{Dst: macB, Src: macA, Type: EtherTypeIPv4},
		IPv4Header{TTL: 64, Src: ipA, Dst: ipB}, ICMPEcho{Type: ICMPEchoRequest, Ident: 1}, []byte("p"))
	f, err = DecodeFrame(icmpRaw)
	if err != nil || f.ICMP == nil || f.ICMP.Type != ICMPEchoRequest {
		t.Fatalf("icmp decode: %v %+v", err, f)
	}

	arpRaw := BuildARP(EthernetHeader{Dst: BroadcastMAC, Src: macA, Type: EtherTypeARP},
		ARPPacket{Op: ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB})
	f, err = DecodeFrame(arpRaw)
	if err != nil || f.ARP == nil || f.ARP.Op != ARPRequest {
		t.Fatalf("arp decode: %v %+v", err, f)
	}
	if _, ok := f.Flow(); ok {
		t.Fatal("ARP frame reported a transport flow")
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	eth := EthernetHeader{Dst: macB, Src: macA, Type: 0x1234}
	if _, err := DecodeFrame(eth.Marshal(nil)); err == nil {
		t.Fatal("unknown ethertype accepted")
	}
}

func TestDecodeFragmentStopsAtIP(t *testing.T) {
	ip := IPv4Header{TTL: 64, Src: ipA, Dst: ipB, Protocol: ProtoTCP, Flags: IPFlagMF, FragOff: 0, TotalLen: IPv4HeaderLen + 8}
	b := (&EthernetHeader{Dst: macB, Src: macA, Type: EtherTypeIPv4}).Marshal(nil)
	b = ip.Marshal(b)
	b = append(b, 1, 2, 3, 4, 5, 6, 7, 8)
	f, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.TCP != nil {
		t.Fatal("fragment decoded past IP layer")
	}
	if len(f.Payload) != 8 {
		t.Fatalf("fragment payload len=%d", len(f.Payload))
	}
}

func TestFlagString(t *testing.T) {
	if s := FlagString(TCPSyn | TCPAck); s != "SA" {
		t.Fatalf("got %q", s)
	}
	if s := FlagString(0); s != "." {
		t.Fatalf("got %q", s)
	}
}

func TestFlowReverseInvolutionProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, pr uint8) bool {
		fl := Flow{Src: Addr(a), Dst: Addr(b), SrcPort: sp, DstPort: dp, Proto: IPProto(pr)}
		return fl.Reverse().Reverse() == fl && fl.Hash() == fl.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := UDPHeader{SrcPort: sp, DstPort: dp}
		b := h.Marshal(nil, ipA, ipB, payload)
		var g UDPHeader
		got, err := g.Unmarshal(b, ipA, ipB)
		return err == nil && g.SrcPort == sp && g.DstPort == dp && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		h := IPv4Header{TOS: tos, TotalLen: uint16(IPv4HeaderLen + len(payload)),
			ID: id, TTL: ttl, Protocol: ProtoUDP, Src: ipA, Dst: ipB}
		b := h.Marshal(nil)
		b = append(b, payload...)
		var g IPv4Header
		rest, err := g.Unmarshal(b)
		return err == nil && g.TOS == tos && g.ID == id && g.TTL == ttl &&
			g.Src == ipA && g.Dst == ipB && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
