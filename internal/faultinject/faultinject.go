// Package faultinject reproduces the fault-injection methodology of §6.6:
// faults are injected into randomly selected parts of the network stack
// code, with each component's selection probability proportional to its
// code size (the paper assumes uniform failure probability throughout the
// code). The injected fault crashes the owning process; the observation
// phase then classifies the run:
//
//   - fully transparent recovery — the fault hit a stateless component
//     (packet filter, IP, UDP); the replacement process is respawned and
//     no application or user observes anything worse than a packet delay;
//   - TCP connections lost — the fault hit the TCP component; that
//     replica's connections are gone (and only that replica's).
package faultinject

import (
	"errors"
	"math/rand"

	"neat/internal/core"
	"neat/internal/metrics"
	"neat/internal/sim"
	"neat/internal/stack"
)

// ErrInjected is the crash cause used for injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Component is one fault-injection target with its code-size weight.
// The weights are the paper-calibrated estimate of each stack component's
// share of the code (Table 3 derives 46.2 % of failing runs from TCP):
// TCP dominates with roughly 12 kLoC against ~14 kLoC for the stateless
// components combined.
type Component struct {
	Name   string
	Weight float64 // proportional to estimated code size
}

// DefaultComponents is the per-component code-size model of §6.6: the
// paper injects faults into the stack replicas only.
var DefaultComponents = []Component{
	{Name: "pf", Weight: 155},
	{Name: "ip", Weight: 230},
	{Name: "udp", Weight: 153},
	{Name: "tcp", Weight: 462},
}

// MatrixComponents extends the fault surface to the whole plane for the
// fault-matrix campaign: the singleton NIC driver and SYSCALL server are
// injectable too. Their weights follow the same code-size rationale
// (a 10G driver is a substantial body of code; the SYSCALL server is
// thin). DefaultComponents is deliberately left unchanged so Table 3
// reproduces the paper.
var MatrixComponents = []Component{
	{Name: "pf", Weight: 155},
	{Name: "ip", Weight: 230},
	{Name: "udp", Weight: 153},
	{Name: "tcp", Weight: 462},
	{Name: "driver", Weight: 180},
	{Name: "syscall", Weight: 90},
}

// Kind is the class of injected fault.
type Kind int

// Fault kinds of the extended model. The paper's methodology (§6.6) only
// crashes processes; hangs exercise the imperfect failure detector
// (a hung process is invisible to the crash oracle), and storms exercise
// the escalation ladder.
const (
	// KindCrash kills the target instantly (the paper's fault model).
	KindCrash Kind = iota
	// KindHang livelocks the target: it stays alive but stops draining
	// its inbox. Only a heartbeat watchdog can detect this.
	KindHang
	// KindStorm crashes the target repeatedly in quick succession
	// (callers drive the repeat cadence via ReInject).
	KindStorm
)

// KindFromString parses a fault-kind name ("crash", "hang", "storm").
func KindFromString(s string) (Kind, error) {
	switch s {
	case "crash":
		return KindCrash, nil
	case "hang":
		return KindHang, nil
	case "storm":
		return KindStorm, nil
	}
	return 0, errors.New("faultinject: unknown fault kind " + s)
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindHang:
		return "hang"
	case KindStorm:
		return "storm"
	default:
		return "unknown"
	}
}

// Outcome classifies one failing run.
type Outcome int

// Outcomes of a fault-injection run (Table 3 rows).
const (
	// OutcomeTransparent: recovery was fully transparent.
	OutcomeTransparent Outcome = iota
	// OutcomeTCPLost: TCP connections of one replica were lost.
	OutcomeTCPLost
)

// String names the outcome.
func (o Outcome) String() string {
	if o == OutcomeTransparent {
		return "fully transparent recovery"
	}
	return "TCP connections lost"
}

// Injector selects components by code-size weight and crashes the
// corresponding process of a randomly chosen replica.
type Injector struct {
	rng        *rand.Rand
	components []Component
	total      float64
	// injected counts initial injections by kind (storm repeats applied
	// via ReInject re-trigger an already-counted fault and are not
	// re-counted — the mix records decisions, not crash events).
	injected [3]uint64
}

// New creates an injector drawing from rng (pass the simulation's).
func New(rng *rand.Rand, components []Component) *Injector {
	if len(components) == 0 {
		components = DefaultComponents
	}
	inj := &Injector{rng: rng, components: components}
	for _, c := range components {
		inj.total += c.Weight
	}
	return inj
}

// Pick selects a component name with probability proportional to weight.
func (inj *Injector) Pick() string {
	x := inj.rng.Float64() * inj.total
	for _, c := range inj.components {
		x -= c.Weight
		if x < 0 {
			return c.Name
		}
	}
	return inj.components[len(inj.components)-1].Name
}

// TCPShare returns the probability a fault lands in the TCP component —
// the expected "TCP connections lost" fraction of Table 3 and the state
// survival model of Figure 13.
func (inj *Injector) TCPShare() float64 {
	for _, c := range inj.components {
		if c.Name == "tcp" {
			return c.Weight / inj.total
		}
	}
	return 0
}

// Injection records what one injection did.
type Injection struct {
	Component string
	Replica   *stack.Replica
	Proc      *sim.Proc
	// ExpectTCPLoss is true when the crashed process held TCP state
	// (always true for single-component replicas).
	ExpectTCPLoss bool
}

// Inject crashes the component's process in a random live replica of sys.
// On a drained system (no live replicas — all slots empty or quarantined)
// it reports ok=false without injecting anything.
func (inj *Injector) Inject(sys *core.System) (Injection, bool) {
	replicas := sys.Replicas()
	if len(replicas) == 0 {
		return Injection{}, false
	}
	r := replicas[inj.rng.Intn(len(replicas))]
	comp := inj.Pick()
	target := Target(sys, r, comp)
	injection := Injection{
		Component:     comp,
		Replica:       r,
		Proc:          target,
		ExpectTCPLoss: r.Kind() == stack.Single || comp == "tcp",
	}
	inj.injected[KindCrash]++
	target.Crash(ErrInjected)
	return injection, true
}

// Injected returns how many faults of kind k this injector has injected
// (Inject counts as KindCrash; ReInject repeats are not re-counted).
func (inj *Injector) Injected(k Kind) uint64 {
	if k < 0 || int(k) >= len(inj.injected) {
		return 0
	}
	return inj.injected[k]
}

// PublishMetrics exports the per-kind injection counters into a metrics
// registry as faultinject.injected.crash|hang|storm, so campaigns can
// assert the injection mix they actually applied.
func (inj *Injector) PublishMetrics(r *metrics.Registry) {
	r.SetCounter("faultinject.injected.crash", inj.injected[KindCrash])
	r.SetCounter("faultinject.injected.hang", inj.injected[KindHang])
	r.SetCounter("faultinject.injected.storm", inj.injected[KindStorm])
}

// Target resolves the process currently implementing comp: the singleton
// "driver"/"syscall" system processes, or comp's process within replica r.
// Re-resolving through Target after a recovery finds the replacement
// incarnation (replica restarts create new processes; the singletons keep
// their endpoint).
func Target(sys *core.System, r *stack.Replica, comp string) *sim.Proc {
	switch comp {
	case "driver":
		return sys.Driver().Proc()
	case "syscall":
		return sys.SyscallProc()
	}
	switch {
	case r == nil:
		return nil
	case r.Kind() == stack.Single:
		// Everything lives in one process; any component fault kills it.
		return r.Procs()[0]
	case comp == "tcp":
		return r.SockProc()
	default:
		// pf, ip and udp share the IP process in the two-process layout.
		return r.EntryProc()
	}
}

// InjectKind injects a fault of the given kind into the named component.
// Replica components target a random live replica (ok=false on a drained
// system, as Inject); "driver" and "syscall" target the singleton system
// processes regardless of replica state. KindStorm applies its first
// crash; callers repeat via ReInject at their chosen cadence.
func (inj *Injector) InjectKind(sys *core.System, kind Kind, comp string) (Injection, bool) {
	var r *stack.Replica
	if comp != "driver" && comp != "syscall" {
		replicas := sys.Replicas()
		if len(replicas) == 0 {
			return Injection{}, false
		}
		r = replicas[inj.rng.Intn(len(replicas))]
	}
	target := Target(sys, r, comp)
	if target == nil {
		return Injection{}, false
	}
	injection := Injection{
		Component:     comp,
		Replica:       r,
		Proc:          target,
		ExpectTCPLoss: r != nil && (r.Kind() == stack.Single || comp == "tcp"),
	}
	inj.injected[kind]++
	if kind == KindHang {
		target.Hang()
	} else {
		target.Crash(ErrInjected)
	}
	return injection, true
}

// ReInject repeats a fault against the current incarnation of a previous
// injection's component (for crash storms: each respawn is killed again).
// Reports false once the target is gone (slot quarantined).
func ReInject(sys *core.System, prev Injection) bool {
	target := Target(sys, prev.Replica, prev.Component)
	if target == nil || target.Dead() {
		return false
	}
	target.Crash(ErrInjected)
	return true
}
