// Package faultinject reproduces the fault-injection methodology of §6.6:
// faults are injected into randomly selected parts of the network stack
// code, with each component's selection probability proportional to its
// code size (the paper assumes uniform failure probability throughout the
// code). The injected fault crashes the owning process; the observation
// phase then classifies the run:
//
//   - fully transparent recovery — the fault hit a stateless component
//     (packet filter, IP, UDP); the replacement process is respawned and
//     no application or user observes anything worse than a packet delay;
//   - TCP connections lost — the fault hit the TCP component; that
//     replica's connections are gone (and only that replica's).
package faultinject

import (
	"errors"
	"math/rand"

	"neat/internal/core"
	"neat/internal/sim"
	"neat/internal/stack"
)

// ErrInjected is the crash cause used for injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Component is one fault-injection target with its code-size weight.
// The weights are the paper-calibrated estimate of each stack component's
// share of the code (Table 3 derives 46.2 % of failing runs from TCP):
// TCP dominates with roughly 12 kLoC against ~14 kLoC for the stateless
// components combined.
type Component struct {
	Name   string
	Weight float64 // proportional to estimated code size
}

// DefaultComponents is the per-component code-size model.
var DefaultComponents = []Component{
	{Name: "pf", Weight: 155},
	{Name: "ip", Weight: 230},
	{Name: "udp", Weight: 153},
	{Name: "tcp", Weight: 462},
}

// Outcome classifies one failing run.
type Outcome int

// Outcomes of a fault-injection run (Table 3 rows).
const (
	// OutcomeTransparent: recovery was fully transparent.
	OutcomeTransparent Outcome = iota
	// OutcomeTCPLost: TCP connections of one replica were lost.
	OutcomeTCPLost
)

// String names the outcome.
func (o Outcome) String() string {
	if o == OutcomeTransparent {
		return "fully transparent recovery"
	}
	return "TCP connections lost"
}

// Injector selects components by code-size weight and crashes the
// corresponding process of a randomly chosen replica.
type Injector struct {
	rng        *rand.Rand
	components []Component
	total      float64
}

// New creates an injector drawing from rng (pass the simulation's).
func New(rng *rand.Rand, components []Component) *Injector {
	if len(components) == 0 {
		components = DefaultComponents
	}
	inj := &Injector{rng: rng, components: components}
	for _, c := range components {
		inj.total += c.Weight
	}
	return inj
}

// Pick selects a component name with probability proportional to weight.
func (inj *Injector) Pick() string {
	x := inj.rng.Float64() * inj.total
	for _, c := range inj.components {
		x -= c.Weight
		if x < 0 {
			return c.Name
		}
	}
	return inj.components[len(inj.components)-1].Name
}

// TCPShare returns the probability a fault lands in the TCP component —
// the expected "TCP connections lost" fraction of Table 3 and the state
// survival model of Figure 13.
func (inj *Injector) TCPShare() float64 {
	for _, c := range inj.components {
		if c.Name == "tcp" {
			return c.Weight / inj.total
		}
	}
	return 0
}

// Injection records what one injection did.
type Injection struct {
	Component string
	Replica   *stack.Replica
	Proc      *sim.Proc
	// ExpectTCPLoss is true when the crashed process held TCP state
	// (always true for single-component replicas).
	ExpectTCPLoss bool
}

// Inject crashes the component's process in a random live replica of sys.
func (inj *Injector) Inject(sys *core.System) (Injection, bool) {
	replicas := sys.Replicas()
	if len(replicas) == 0 {
		return Injection{}, false
	}
	r := replicas[inj.rng.Intn(len(replicas))]
	comp := inj.Pick()
	var target *sim.Proc
	switch {
	case r.Kind() == stack.Single:
		// Everything lives in one process; any component fault kills it.
		target = r.Procs()[0]
	case comp == "tcp":
		target = r.SockProc()
	default:
		// pf, ip and udp share the IP process in the two-process layout.
		target = r.EntryProc()
	}
	injection := Injection{
		Component:     comp,
		Replica:       r,
		Proc:          target,
		ExpectTCPLoss: r.Kind() == stack.Single || comp == "tcp",
	}
	target.Crash(ErrInjected)
	return injection, true
}
