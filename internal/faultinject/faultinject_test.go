package faultinject

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeightsMatchPaper(t *testing.T) {
	inj := New(rand.New(rand.NewSource(1)), nil)
	share := inj.TCPShare()
	// Table 3: 46.2 % of failing runs lose TCP connections.
	if math.Abs(share-0.462) > 0.005 {
		t.Fatalf("TCP code share = %.3f, want ≈0.462", share)
	}
}

func TestPickDistribution(t *testing.T) {
	inj := New(rand.New(rand.NewSource(7)), nil)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[inj.Pick()]++
	}
	got := float64(counts["tcp"]) / n
	if math.Abs(got-0.462) > 0.02 {
		t.Fatalf("empirical tcp share %.3f, want ≈0.462", got)
	}
	for _, c := range DefaultComponents {
		if counts[c.Name] == 0 {
			t.Fatalf("component %s never picked", c.Name)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OutcomeTransparent.String() == OutcomeTCPLost.String() {
		t.Fatal("outcome names collide")
	}
}

func TestCustomComponents(t *testing.T) {
	inj := New(rand.New(rand.NewSource(1)), []Component{{Name: "only", Weight: 1}})
	if inj.Pick() != "only" {
		t.Fatal("single component not picked")
	}
	if inj.TCPShare() != 0 {
		t.Fatal("no tcp component should mean zero share")
	}
}
