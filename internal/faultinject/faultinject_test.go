package faultinject

import (
	"math"
	"math/rand"
	"testing"

	"neat/internal/core"
	"neat/internal/metrics"
	"neat/internal/stack"
	"neat/internal/testbed"
)

func TestWeightsMatchPaper(t *testing.T) {
	inj := New(rand.New(rand.NewSource(1)), nil)
	share := inj.TCPShare()
	// Table 3: 46.2 % of failing runs lose TCP connections.
	if math.Abs(share-0.462) > 0.005 {
		t.Fatalf("TCP code share = %.3f, want ≈0.462", share)
	}
}

func TestPickDistribution(t *testing.T) {
	inj := New(rand.New(rand.NewSource(7)), nil)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[inj.Pick()]++
	}
	got := float64(counts["tcp"]) / n
	if math.Abs(got-0.462) > 0.02 {
		t.Fatalf("empirical tcp share %.3f, want ≈0.462", got)
	}
	// Every component's empirical share must track its code-size weight,
	// not just TCP's.
	var total float64
	for _, c := range DefaultComponents {
		total += c.Weight
	}
	for _, c := range DefaultComponents {
		want := c.Weight / total
		emp := float64(counts[c.Name]) / n
		if math.Abs(emp-want) > 0.02 {
			t.Fatalf("component %s: empirical share %.3f, want ≈%.3f", c.Name, emp, want)
		}
	}
}

func TestMatrixComponentsExtendDefault(t *testing.T) {
	inj := New(rand.New(rand.NewSource(3)), MatrixComponents)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[inj.Pick()]++
	}
	for _, name := range []string{"driver", "syscall"} {
		if counts[name] == 0 {
			t.Fatalf("matrix component %s never picked", name)
		}
	}
	// Adding plane components must dilute the TCP share below the
	// replica-only 46.2 %.
	if s := inj.TCPShare(); s >= 0.462 {
		t.Fatalf("matrix TCP share %.3f, want < 0.462", s)
	}
}

// drainableBed boots a minimal 2-replica NEaT system for injection tests.
func drainableBed(t *testing.T) (*testbed.Net, *core.System) {
	t.Helper()
	net := testbed.New(11)
	server := testbed.DefaultAMDHost(net, 0, 4)
	client := testbed.DefaultClientHost(net, 1, 1)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind:    stack.Single,
		Slots:   testbed.SingleSlots(2, 2),
		Syscall: testbed.ThreadLoc{Core: 1},
	})
	if err != nil {
		t.Fatalf("BuildNEaT: %v", err)
	}
	return net, sys
}

func TestInjectDrainedSystemNoPanic(t *testing.T) {
	net, sys := drainableBed(t)
	inj := New(net.Sim.Rand(), nil)

	// Live system: injection works.
	if _, ok := inj.Inject(sys); !ok {
		t.Fatal("injection on a live system failed")
	}

	// Drain it: quarantine every slot (the crashed replica included).
	for i := 0; i < 2; i++ {
		if err := sys.Quarantine(i); err != nil {
			t.Fatalf("quarantine slot %d: %v", i, err)
		}
	}
	if n := len(sys.Replicas()); n != 0 {
		t.Fatalf("system not drained: %d replicas", n)
	}

	// Replica-targeted injections must decline, not panic.
	if _, ok := inj.Inject(sys); ok {
		t.Fatal("Inject on a drained system reported ok")
	}
	if _, ok := inj.InjectKind(sys, KindCrash, "tcp"); ok {
		t.Fatal("InjectKind(tcp) on a drained system reported ok")
	}
	// The singleton system services remain injectable.
	if _, ok := inj.InjectKind(sys, KindHang, "driver"); !ok {
		t.Fatal("driver injection should not depend on replica state")
	}
	if !sys.Driver().Proc().Hung() {
		t.Fatal("driver hang not applied")
	}
}

func TestInjectKindHangAndStorm(t *testing.T) {
	net, sys := drainableBed(t)
	inj := New(net.Sim.Rand(), MatrixComponents)

	hi, ok := inj.InjectKind(sys, KindHang, "tcp")
	if !ok {
		t.Fatal("hang injection failed")
	}
	if !hi.Proc.Hung() || hi.Proc.Dead() {
		t.Fatal("hang target should be alive and hung")
	}

	si, ok := inj.InjectKind(sys, KindStorm, "syscall")
	if !ok {
		t.Fatal("storm injection failed")
	}
	if !si.Proc.Dead() {
		t.Fatal("storm target should be dead after the first strike")
	}
	// ReInject declines while the incarnation is still dead...
	if ReInject(sys, si) {
		t.Fatal("ReInject hit an already-dead incarnation")
	}
	// ...and hits again once it respawns.
	sys.Syscall().Restart()
	if !ReInject(sys, si) {
		t.Fatal("ReInject missed the respawned incarnation")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OutcomeTransparent.String() == OutcomeTCPLost.String() {
		t.Fatal("outcome names collide")
	}
}

func TestCustomComponents(t *testing.T) {
	inj := New(rand.New(rand.NewSource(1)), []Component{{Name: "only", Weight: 1}})
	if inj.Pick() != "only" {
		t.Fatal("single component not picked")
	}
	if inj.TCPShare() != 0 {
		t.Fatal("no tcp component should mean zero share")
	}
}

func TestInjectedCountersByKind(t *testing.T) {
	net, sys := drainableBed(t)
	inj := New(net.Sim.Rand(), MatrixComponents)

	if _, ok := inj.Inject(sys); !ok {
		t.Fatal("Inject failed")
	}
	if _, ok := inj.InjectKind(sys, KindCrash, "ip"); !ok {
		t.Fatal("crash injection failed")
	}
	if _, ok := inj.InjectKind(sys, KindHang, "driver"); !ok {
		t.Fatal("hang injection failed")
	}
	si, ok := inj.InjectKind(sys, KindStorm, "syscall")
	if !ok {
		t.Fatal("storm injection failed")
	}
	// Storm repeats re-trigger the counted fault; the mix must not move.
	sys.Syscall().Restart()
	if !ReInject(sys, si) {
		t.Fatal("ReInject missed the respawned incarnation")
	}

	if got := inj.Injected(KindCrash); got != 2 {
		t.Fatalf("crash count = %d, want 2 (Inject counts as crash)", got)
	}
	if got := inj.Injected(KindHang); got != 1 {
		t.Fatalf("hang count = %d, want 1", got)
	}
	if got := inj.Injected(KindStorm); got != 1 {
		t.Fatalf("storm count = %d, want 1 (ReInject not re-counted)", got)
	}

	r := metrics.NewRegistry()
	inj.PublishMetrics(r)
	for name, want := range map[string]uint64{
		"faultinject.injected.crash": 2,
		"faultinject.injected.hang":  1,
		"faultinject.injected.storm": 1,
	} {
		if got := r.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}
