package experiments

import (
	"fmt"
	"strings"

	"neat/internal/report"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/testbed"
)

// The steering campaign compares the three flow placement policies under a
// uniform and a skewed (elephant-flow) workload. It is not a figure from
// the paper: the paper fixes RSS-modulo placement (§3.4) and the campaign
// measures what the placement plane extension buys on top of it.
//
//   - uniform: every lighttpd serves the paper's 20 B file, so every
//     connection costs the same and hash placement is already balanced;
//   - skewed: one lighttpd serves a 64 KiB file (an "elephant" stream per
//     request) while the rest serve 20 B mice, so the replica that the
//     elephant flows hash onto saturates while its siblings idle — unless
//     the policy is load-aware.
//
// Reported per cell: goodput, errors, p99 latency, and the per-replica
// spread of accepted connections (max/mean imbalance), which is the figure
// the least-loaded policy optimizes.

// steeringPolicies enumerates the campaign's policy axis in report order.
var steeringPolicies = []steer.PolicyKind{
	steer.PolicyHash, steer.PolicyRing, steer.PolicyLeastLoaded,
}

// steeringOut is one cell's measurement plus the per-replica placement
// spread.
type steeringOut struct {
	m        Measurement
	accepted []uint64
	err      error
}

// SteeringSkew runs the placement-policy comparison: every policy against
// a uniform and an elephant-flow workload, same seed per cell.
func SteeringSkew(o Options) *Result {
	res := &Result{Name: "Steering: placement policy × workload skew"}

	type cell struct {
		policy steer.PolicyKind
		skewed bool
	}
	var cells []cell
	for _, skewed := range []bool{false, true} {
		for _, p := range steeringPolicies {
			cells = append(cells, cell{policy: p, skewed: skewed})
		}
	}

	outs := RunParallel(len(cells), o.workers(), func(i int) steeringOut {
		c := cells[i]
		return steeringRun(o, c.policy, c.skewed)
	})

	tab := &report.Table{
		Title: "Goodput and placement balance per policy (4 single-component replicas)",
		Columns: []string{"workload", "policy", "krps", "errors", "p99 lat",
			"accepted/replica", "imbalance"},
	}
	for i, c := range cells {
		out := outs[i]
		wl := "uniform"
		if c.skewed {
			wl = "skewed"
		}
		if out.err != nil {
			tab.AddRow(wl, c.policy.String(), "-", "-", "-", out.err.Error(), "-")
			continue
		}
		tab.AddRow(wl, c.policy.String(),
			fmt.Sprintf("%.1f", out.m.KRPS), out.m.Errors,
			fmt.Sprintf("%v", out.m.P99Lat),
			joinCounts(out.accepted),
			fmt.Sprintf("%.2f", imbalance(out.accepted)))
	}
	res.Tables = append(res.Tables, tab)
	res.Notef("skewed workload: lighttpd0 serves a 64 KiB elephant file, the rest 20 B mice")
	res.Notef("imbalance = max/mean accepted connections per replica (1.00 = perfectly even)")
	res.Notef("established connections never migrate under any policy: flow-director filters pin them (§3.4)")
	return res
}

// steeringRun measures one (policy, workload) cell on a fresh bed.
func steeringRun(o Options, policy steer.PolicyKind, skewed bool) steeringOut {
	const replicas = 4
	cfg := BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        o.seed(), Machine: AMD, Kind: stack.Single,
		ReplicaSlots: testbed.SingleSlots(2, replicas),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(2+replicas, 4),
		ConnsPerGen:  16, ReqPerConn: 100,
		Steering: steer.Config{Policy: policy},
	}
	if skewed {
		cfg.FileSizes = []int{64 << 10, 20, 20, 20}
	}
	b, err := NewBed(cfg)
	if err != nil {
		return steeringOut{err: err}
	}
	m := b.Run(o.warm(), o.window())
	var accepted []uint64
	for _, r := range b.NEaT.Replicas() {
		accepted = append(accepted, r.TCP().Stats().AcceptedConns)
	}
	return steeringOut{m: m, accepted: accepted}
}

// joinCounts renders a per-replica count vector.
func joinCounts(v []uint64) string {
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, "/")
}

// imbalance is max/mean of a count vector (1.0 = perfectly even).
func imbalance(v []uint64) float64 {
	if len(v) == 0 {
		return 0
	}
	var sum, max uint64
	for _, c := range v {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(v))
	return float64(max) / mean
}
