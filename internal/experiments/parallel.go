package experiments

import (
	"sync"
	"sync/atomic"
)

// RunParallel evaluates fn(0), ..., fn(n-1) on up to workers goroutines and
// returns the results in index order. With workers <= 1 it degenerates to a
// plain sequential loop, so callers need no separate code path.
//
// Every sweep point in this package builds its own Bed (and therefore its
// own Simulator, RNG and metric sinks) from an explicit seed, so points are
// independent and the assembled tables and figures are byte-identical to a
// sequential run regardless of scheduling.
func RunParallel[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// outcome pairs a sweep point's measurement with its configuration error;
// experiment drivers assemble reports from these in configuration order.
type outcome struct {
	m   Measurement
	err error
}
