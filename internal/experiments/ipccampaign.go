package experiments

import (
	"fmt"

	"neat/internal/app"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// The IPC fast-path campaign measures the modeled message rings under the
// repository's three pipeline shapes — a single-component replica stack, a
// multi-component (IP|TCP split) stack and the multi-machine cluster — each
// in both wake modes: per-message doorbells (the calibrated default) and
// opt-in wake coalescing, where a send finding its ring already armed skips
// the doorbell and rides the in-flight predecessor's delivery window.
//
// Every number printed is simulation-derived (no wall clock), and the
// workload follows the cluster campaign's determinism recipe — fixed
// local-port plans, no loss, no behavior-relevant randomness — so a
// sequential run and a PDES run of the same campaign are byte-identical
// (the verify target diffs the two).

// IPCPoint is one measured (pipeline, wake mode) cell.
type IPCPoint struct {
	Pipeline string // "single", "multi" or "cluster"
	Coalesce bool
	KRPS     float64
	Stats    sim.IPCStats
}

// ipcLinkBed measures one single-link pipeline (single- or multi-component
// replicas) under the given wake mode. Determinism shape: one web instance,
// so the client system runs one stack and connect placement is draw-free,
// and a planned local-port range, so connection 4-tuples — and with them
// RSS placement — are invariant to event interleaving (seq == PDES).
func ipcLinkBed(o Options, kind stack.Kind, coalesce bool) (Measurement, sim.IPCStats, error) {
	const replicas, webs = 2, 1
	stackCores := replicas
	slots := testbed.SingleSlots(2, replicas)
	if kind == stack.Multi {
		stackCores = 2 * replicas
		slots = testbed.MultiSlots(2, replicas)
	}
	conns := 32
	if o.Quick {
		conns = 16
	}
	plans := make([]app.PortPlan, webs)
	for i := range plans {
		plans[i] = sequentialPorts(uint16(20000 + i*2048))
	}
	b, err := NewBed(BedConfig{
		Seed: o.seed(), Machine: AMD, Kind: kind,
		PDESWorkers:  o.PDESWorkers,
		ReplicaSlots: slots,
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(2+stackCores, webs),
		ConnsPerGen:  conns, ReqPerConn: 50,
		// Multi-segment responses: consecutive segments of one response are
		// back-to-back sends on the same channel, the window coalescing
		// exists to batch.
		FileSize: 8192,
		GenPorts: plans,
		IPC:      testbed.IPCTuning{CoalesceWakes: coalesce},
	})
	if err != nil {
		return Measurement{}, sim.IPCStats{}, err
	}
	m := b.Run(o.warm(), o.window())
	return m, b.Net.Sim.IPCStats(), nil
}

// ipcClusterBed measures the cluster pipeline (farms behind the L4 tier)
// under the given wake mode.
func ipcClusterBed(o Options, coalesce bool) (Measurement, sim.IPCStats, error) {
	// The default topology and single-segment responses: the cluster's
	// engine identity (the recipe in cluster.go) holds for this shape —
	// multi-segment responses introduce same-timestamp ties the two
	// engines may order differently.
	b, err := NewClusterBed(ClusterBedConfig{
		Seed:        o.seed(),
		PDESWorkers: o.PDESWorkers,
		Farms:       2, MembersPerFarm: 2, ReplicasPerMember: 2,
		Clients: 2, Tenants: 2,
		ConnsPerGen: 4, ReqPerConn: 25,
		IPC: testbed.IPCTuning{CoalesceWakes: coalesce},
	})
	if err != nil {
		return Measurement{}, sim.IPCStats{}, err
	}
	m := b.Run(o.warm(), o.window())
	return m, b.Sim.IPCStats(), nil
}

// IPCFastPathPoints measures all (pipeline, wake mode) cells.
func IPCFastPathPoints(o Options) ([]IPCPoint, error) {
	var points []IPCPoint
	for _, p := range []struct {
		name string
		kind stack.Kind
	}{{"single", stack.Single}, {"multi", stack.Multi}, {"cluster", 0}} {
		for _, coalesce := range []bool{false, true} {
			var (
				m   Measurement
				is  sim.IPCStats
				err error
			)
			if p.name == "cluster" {
				m, is, err = ipcClusterBed(o, coalesce)
			} else {
				m, is, err = ipcLinkBed(o, p.kind, coalesce)
			}
			if err != nil {
				return nil, fmt.Errorf("%s pipeline: %w", p.name, err)
			}
			points = append(points, IPCPoint{
				Pipeline: p.name, Coalesce: coalesce, KRPS: m.KRPS, Stats: is})
		}
	}
	return points, nil
}

// IPCFastPath runs the campaign and reports it as tables.
func IPCFastPath(o Options) *Result {
	res := &Result{Name: "IPC fast path: message rings and doorbell coalescing across pipeline shapes"}
	points, err := IPCFastPathPoints(o)
	if err != nil {
		res.Notef("campaign failed: %v", err)
		return res
	}

	tab := &report.Table{
		Title: "Channel activity per wake mode (doorbells = sends - saved)",
		Columns: []string{"pipeline", "wakes", "sends", "doorbells", "saved",
			"slow", "stalls", "depth hw", "vectors", "avg vec", "krps"},
	}
	for _, p := range points {
		mode := "per-msg"
		if p.Coalesce {
			mode = "coalesced"
		}
		avg := 0.0
		if p.Stats.Batches > 0 {
			avg = float64(p.Stats.BatchMsgs) / float64(p.Stats.Batches)
		}
		tab.AddRow(p.Pipeline, mode,
			fmt.Sprintf("%d", p.Stats.Sends),
			fmt.Sprintf("%d", p.Stats.Sends-p.Stats.WakesSaved),
			fmt.Sprintf("%d", p.Stats.WakesSaved),
			fmt.Sprintf("%d", p.Stats.SlowPath),
			fmt.Sprintf("%d", p.Stats.Stalls),
			fmt.Sprintf("%d", p.Stats.DepthHW),
			fmt.Sprintf("%d", p.Stats.Batches),
			fmt.Sprintf("%.2f", avg),
			fmt.Sprintf("%.1f", p.KRPS))
	}
	res.Tables = append(res.Tables, tab)

	hist := &report.Table{
		Title:   "Delivery vector size histogram (per-msg wake mode)",
		Columns: append([]string{"pipeline"}, ipcBucketLabels()...),
	}
	for _, p := range points {
		if p.Coalesce {
			continue
		}
		row := []interface{}{p.Pipeline}
		for _, n := range p.Stats.BatchHist {
			row = append(row, fmt.Sprintf("%d", n))
		}
		hist.AddRow(row...)
	}
	res.Tables = append(res.Tables, hist)

	res.Notef("sends traverse modeled SPSC rings; \"saved\" counts sends that found the ring armed and skipped their doorbell (coalesced mode only)")
	res.Notef("\"slow\" sends paid the kernel-assisted latency (colocated endpoints); \"stalls\" found the ring full and waited for the head slot")
	res.Notef("\"vectors\" are same-timestamp delivery batches the dispatcher carried as one event; \"avg vec\" their mean size")
	res.Notef("all numbers are simulation-derived: a -pdes N re-run of this campaign must be byte-identical (make verify diffs sequential vs -pdes 4)")
	return res
}

// ipcBucketLabels names the histogram columns.
func ipcBucketLabels() []string {
	out := make([]string, 0, 12)
	for i := 0; ; i++ {
		l := sim.IPCBatchBucketLabel(i)
		out = append(out, l)
		if l == "65+" {
			return out
		}
	}
}
