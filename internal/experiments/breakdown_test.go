package experiments

import (
	"crypto/md5"
	"testing"
)

// TestBreakdownDeterminism is the acceptance gate for the tracing layer:
// the per-hop latency breakdown must be byte-identical between a
// sequential and a parallel sweep (same seed), i.e. tracing must not
// perturb simulation order and parallel assembly must be deterministic.
// The md5 comparison mirrors how the -breakdown CLI output is checked.
func TestBreakdownDeterminism(t *testing.T) {
	seq := LatencyBreakdown(Options{Quick: true}).String()
	par := LatencyBreakdown(Options{Quick: true, Parallel: true, Workers: 4}).String()
	if seq != par {
		t.Fatalf("breakdown differs between sequential (md5 %x) and parallel (md5 %x) runs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			md5.Sum([]byte(seq)), md5.Sum([]byte(par)), seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("empty breakdown report")
	}
}

// TestBreakdownHasServerHops sanity-checks the traced table contents:
// every layer of the server path must appear.
func TestBreakdownHasServerHops(t *testing.T) {
	out := LatencyBreakdown(Options{Quick: true}).String()
	for _, hop := range []string{"wire.dir0", "amd.nic.rxq0", "amd.nicdrv", "amd.syscall", "amd.lighttpd0"} {
		if !contains(out, hop) {
			t.Fatalf("breakdown lacks hop %q:\n%s", hop, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
