package experiments

import (
	"testing"

	"neat/internal/baseline"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// measure builds a bed and runs a quick measurement.
func measure(t *testing.T, cfg BedConfig) Measurement {
	t.Helper()
	o := Options{Quick: true}
	b, err := NewBed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b.Run(o.warm(), o.window())
}

// TestAnchorWebInstance checks anchor a1: one lighttpd ≈ 50 krps when the
// stack is not the bottleneck.
func TestAnchorWebInstance(t *testing.T) {
	m := measure(t, BedConfig{
		Machine: AMD, Kind: stack.Single,
		ReplicaSlots: testbed.SingleSlots(2, 3),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      []testbed.ThreadLoc{{Core: 5}},
		ConnsPerGen:  64,
	})
	t.Logf("1 web, 3 replicas: %.1f krps (errors=%d, mean=%v)", m.KRPS, m.Errors, m.MeanLat)
	if m.KRPS < 42 || m.KRPS > 60 {
		t.Fatalf("web anchor off: %.1f krps, want ≈50", m.KRPS)
	}
}

// TestAnchorSingleReplica checks anchor a2: one single-component replica
// saturates ≈125 krps with plenty of webs.
func TestAnchorSingleReplica(t *testing.T) {
	m := measure(t, BedConfig{
		Machine: AMD, Kind: stack.Single,
		ReplicaSlots: testbed.SingleSlots(2, 1),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs: []testbed.ThreadLoc{
			{Core: 3}, {Core: 4}, {Core: 5}, {Core: 6}, {Core: 7}, {Core: 8},
		},
		ConnsPerGen: 64,
	})
	t.Logf("6 webs, 1 replica: %.1f krps (errors=%d, mean=%v)", m.KRPS, m.Errors, m.MeanLat)
	if m.KRPS < 90 || m.KRPS > 160 {
		t.Fatalf("replica anchor off: %.1f krps, want ≈125", m.KRPS)
	}
}

// TestAnchorMultiReplica checks anchor a3: one multi-component replica
// (TCP on its own core) saturates ≈200 krps.
func TestAnchorMultiReplica(t *testing.T) {
	m := measure(t, BedConfig{
		Machine: AMD, Kind: stack.Multi,
		ReplicaSlots: testbed.MultiSlots(2, 1),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs: []testbed.ThreadLoc{
			{Core: 4}, {Core: 5}, {Core: 6}, {Core: 7}, {Core: 8}, {Core: 9},
		},
		ConnsPerGen: 64,
	})
	t.Logf("6 webs, 1 multi replica: %.1f krps (errors=%d)", m.KRPS, m.Errors)
	if m.KRPS < 160 || m.KRPS > 240 {
		t.Fatalf("multi anchor off: %.1f krps, want ≈200", m.KRPS)
	}
}

// TestAnchorLinuxAMD checks anchor a4: fully tuned Linux on 12 cores ≈ 224
// krps.
func TestAnchorLinuxAMD(t *testing.T) {
	m := measure(t, BedConfig{
		Machine:    AMD,
		LinuxCores: 12,
		LinuxTuning: baseline.Tuning{SchedDeadline: true, Ethtool: true,
			IRQAffinity: true, RxAffinity: true, ServerPinning: true},
		WebLocs:     coreRange(0, 12),
		ConnsPerGen: 128,
	})
	t.Logf("Linux 12-core tuned: %.1f krps (errors=%d)", m.KRPS, m.Errors)
	if m.KRPS < 190 || m.KRPS > 260 {
		t.Fatalf("Linux anchor off: %.1f krps, want ≈224", m.KRPS)
	}
}
