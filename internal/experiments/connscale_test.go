package experiments

import (
	"testing"

	"neat/internal/sim"
)

// TestConnScaleSmallRung checks the bed itself at a small rung: every
// requested connection establishes, PDES reproduces the sequential digest,
// and the two timer backends differ exactly where they should — calendar
// residency.
func TestConnScaleSmallRung(t *testing.T) {
	const conns = 768
	wheel := connScaleRun(7, conns, 0, sim.TimerBackendWheel)
	if wheel.Established != conns {
		t.Fatalf("wheel: established %d of %d", wheel.Established, conns)
	}
	if wheel.PendingTimers != conns {
		t.Fatalf("wheel: %d resident timers, want %d idle guards", wheel.PendingTimers, conns)
	}
	if wheel.PendingEvents >= conns/2 {
		t.Fatalf("wheel: %d calendar events pending — timers are leaking into the queue", wheel.PendingEvents)
	}

	pdes := connScaleRun(7, conns, 2, sim.TimerBackendWheel)
	if pdes.Established != conns {
		t.Fatalf("pdes: established %d of %d", pdes.Established, conns)
	}
	if pdes.digest != wheel.digest {
		t.Fatalf("digest mismatch: seq=%s pdes2=%s", wheel.digest, pdes.digest)
	}

	event := connScaleRun(7, conns, 0, sim.TimerBackendEvent)
	if event.Established != conns {
		t.Fatalf("event: established %d of %d", event.Established, conns)
	}
	// The legacy backend plants one calendar event per armed idle guard.
	if event.PendingEvents < conns {
		t.Fatalf("event backend: %d pending events, want >= %d", event.PendingEvents, conns)
	}
}

func TestConnScaleQuickLadderReport(t *testing.T) {
	res := ConnScale(Options{Quick: true, Seed: 11})
	if len(res.Tables) != 1 {
		t.Fatalf("tables: %d", len(res.Tables))
	}
	if rows := len(res.Tables[0].Rows); rows != 4 { // 2 rungs x {wheel, event}
		t.Fatalf("rows: %d", rows)
	}
	for _, p := range ConnScaleLadder(Options{Quick: true, Seed: 11}, []int{600}) {
		if p.Backend == "wheel" && !p.PDESIdentical {
			t.Fatal("wheel rung not PDES-identical")
		}
		if p.Established != 600 {
			t.Fatalf("%s rung established %d of 600", p.Backend, p.Established)
		}
	}
}

// BenchmarkMillionConns is the headline number: one replica's TCP engine
// holding a million established connections, each with an armed idle-guard
// timer, while the simulator's calendar queue stays effectively empty.
// Run with -benchtime=1x; one iteration is one full establishment storm.
func BenchmarkMillionConns(b *testing.B) {
	const conns = 1_000_000
	for i := 0; i < b.N; i++ {
		p := connScaleRun(int64(42+i), conns, 0, sim.TimerBackendWheel)
		if p.Established != conns {
			b.Fatalf("established %d of %d", p.Established, conns)
		}
		if p.PendingTimers != conns {
			b.Fatalf("resident timers %d, want %d", p.PendingTimers, conns)
		}
		// The point of the wheel: calendar residency is O(levels), not
		// O(conns). 1024 is generous — typically it is single digits.
		if p.PendingEvents >= 1024 {
			b.Fatalf("calendar queue holds %d events with %d armed timers", p.PendingEvents, conns)
		}
		if p.Cascades == 0 {
			b.Fatal("no cascades: the ladder never exercised upper wheel levels")
		}
		b.ReportMetric(float64(p.PendingEvents), "pending-events")
		b.ReportMetric(p.BytesPerConn, "B/conn")
		b.ReportMetric(float64(p.Cascades), "cascades")
	}
}
