package experiments

import (
	"testing"

	"neat/internal/stack"
)

// TestDebugFig12LightLoad is a diagnostic for the light-load ordering of
// Figure 12 (not part of the reproduction assertions).
func TestDebugFig12LightLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, c := range []struct {
		label    string
		replicas int
	}{{"Multi 1x", 1}, {"Multi 2x", 2}} {
		m, err := amdFig7Config(Options{Quick: true}, stack.Multi, c.replicas, 1, 8, 1, 20)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s 8conns: krps=%.1f raw=%.1f errors=%d mean=%v p99=%v",
			c.label, m.KRPS, m.RawKRPS, m.Errors, m.MeanLat, m.P99Lat)
	}
}
