package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

// cell parses a float out of a table cell like "224.0" or "53.8%".
func cell(s string) float64 {
	s = strings.TrimSuffix(s, "%")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func TestTable1Shape(t *testing.T) {
	res := Table1(quick)
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 3 {
		t.Fatalf("table shape: %+v", res)
	}
	rows := res.Tables[0].Rows
	defaults, mid, serv := cell(rows[0][1]), cell(rows[1][1]), cell(rows[2][1])
	t.Logf("Table1: defaults=%.1f mid=%.1f serv=%.1f (paper 184.1/186.7/224.0)", defaults, mid, serv)
	if !(serv > mid && mid >= defaults*0.97) {
		t.Fatalf("tuning ladder out of order: %.1f %.1f %.1f", defaults, mid, serv)
	}
	if serv/defaults < 1.08 || serv/defaults > 1.45 {
		t.Fatalf("serv gain %.2fx vs paper's 1.22x", serv/defaults)
	}
}

func TestFigure7Shape(t *testing.T) {
	res := Figure7(quick)
	fig := res.Figures[0]
	byLabel := map[string]float64{}
	at6 := map[string]float64{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s.MaxY()
		for i, x := range s.X {
			if x == 6 {
				at6[s.Label] = s.Y[i]
			}
		}
	}
	t.Logf("Figure7 peaks: %+v (at 6 webs: %+v)", byLabel, at6)
	// NEaT 3x must scale further than Multi 1x (one TCP proc saturates).
	if byLabel["NEaT 3x"] <= byLabel["Multi 1x"] {
		t.Fatalf("NEaT 3x (%.1f) should beat Multi 1x (%.1f)", byLabel["NEaT 3x"], byLabel["Multi 1x"])
	}
	// NEaT 3x peak in the paper's ballpark (302 krps).
	if byLabel["NEaT 3x"] < 240 || byLabel["NEaT 3x"] > 360 {
		t.Fatalf("NEaT 3x peak %.1f outside [240,360] (paper 302)", byLabel["NEaT 3x"])
	}
	// NEaT 3x above NEaT 2x at 6 instances (2 replicas saturate).
	if at6["NEaT 3x"] <= at6["NEaT 2x"] {
		t.Fatalf("no benefit from 3rd replica at 6 webs: %.1f vs %.1f", at6["NEaT 3x"], at6["NEaT 2x"])
	}
	// Headline: NEaT 3x beats the paper-calibrated Linux peak (≈224).
	if byLabel["NEaT 3x"] < 224*1.1 {
		t.Fatalf("NEaT 3x (%.1f) not clearly above Linux 224", byLabel["NEaT 3x"])
	}
}

func TestFigure9Shape(t *testing.T) {
	res := Figure9(quick)
	fig := res.Figures[0]
	peaks := map[string]float64{}
	for _, s := range fig.Series {
		peaks[s.Label] = s.MaxY()
	}
	t.Logf("Figure9 peaks: %+v (paper peak 322)", peaks)
	if peaks["Multi 2x"] <= peaks["Multi 1x"] {
		t.Fatalf("second replica did not help: %+v", peaks)
	}
	if peaks["Multi 2x"] < 250 || peaks["Multi 2x"] > 400 {
		t.Fatalf("Multi 2x peak %.1f outside [250,400] (paper 322)", peaks["Multi 2x"])
	}
	// HT colocation reaches comparable throughput with half the cores.
	if peaks["Multi 2x HT"] < peaks["Multi 2x"]*0.75 {
		t.Fatalf("HT colocation collapsed: %+v", peaks)
	}
}

func TestFigure11Shape(t *testing.T) {
	res := Figure11(quick)
	fig := res.Figures[0]
	peaks := map[string]float64{}
	for _, s := range fig.Series {
		peaks[s.Label] = s.MaxY()
	}
	t.Logf("Figure11 peaks: %+v (paper best 372)", peaks)
	best := peaks["NEaT 4x HT"]
	if best < 300 || best > 450 {
		t.Fatalf("NEaT 4x HT peak %.1f outside [300,450] (paper 372)", best)
	}
	if best <= peaks["NEaT 1x"] || best <= peaks["NEaT 2x"] {
		t.Fatalf("4 replicas not better: %+v", peaks)
	}
	// Paper headline: +13.4% over Linux's 328 on the Xeon.
	if best < 328 {
		t.Logf("warning: best %.1f below paper's Linux 328 — shape holds, magnitude low", best)
	}
}

func TestFigure12Shape(t *testing.T) {
	res := Figure12(quick)
	fig := res.Figures[0]
	if len(fig.Series) != 5 {
		t.Fatalf("series=%d", len(fig.Series))
	}
	get := func(label string, x float64) float64 {
		for _, s := range fig.Series {
			if s.Label != label {
				continue
			}
			for i, sx := range s.X {
				if sx == x {
					return s.Y[i]
				}
			}
		}
		return 0
	}
	// At light load (8 conns) the single multi-component replica beats two
	// (lightly loaded components sleep; extra replicas only add latency).
	// The paper reports Multi 1x slightly AHEAD of Multi 2x here because
	// lightly loaded components sleep and pay wake latency; our wake model
	// is shallower, so we only require the two to be comparable (see
	// EXPERIMENTS.md).
	l1, l2 := get("Multi 1x", 8), get("Multi 2x", 8)
	t.Logf("Figure12 at 8 conns: Multi1x=%.1f Multi2x=%.1f", l1, l2)
	if l1 < l2*0.7 {
		t.Fatalf("light-load ordering unexpected: Multi1x=%.1f Multi2x=%.1f", l1, l2)
	}
	// At the heaviest workload more replicas win.
	h2, h1 := get("NEaT 3x", 164), get("NEaT 1x", 164)
	t.Logf("Figure12 at 4srv,64: NEaT1x=%.1f NEaT3x=%.1f", h1, h2)
	if h2 <= h1 {
		t.Fatalf("heavy-load ordering: NEaT3x=%.1f <= NEaT1x=%.1f", h2, h1)
	}
}

func TestTable2Shape(t *testing.T) {
	res := Table2(quick)
	rows := res.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i, r := range rows {
		t.Logf("Table2 row %d: %v", i, r)
	}
	// CPU load grows down the table; kernel and polling shares shrink.
	loadFirst, loadLast := cell(rows[0][0]), cell(rows[3][0])
	if loadLast <= loadFirst {
		t.Fatalf("load not increasing: %v", rows)
	}
	kernFirst, kernLast := cell(rows[0][1]), cell(rows[3][1])
	if kernLast >= kernFirst {
		t.Fatalf("kernel share not shrinking: %v", rows)
	}
	pollFirst, pollLast := cell(rows[0][2]), cell(rows[3][2])
	if pollLast >= pollFirst {
		t.Fatalf("polling share not shrinking: %v", rows)
	}
	// Idle driver: most active time is overhead (kernel+polling > 50%).
	if kernFirst+pollFirst < 40 {
		t.Fatalf("idle driver overhead only %.1f%%", kernFirst+pollFirst)
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(quick)
	rows := res.Tables[0].Rows
	transparent, lost := cell(rows[0][2]), cell(rows[1][2])
	t.Logf("Table3: transparent=%.1f%% lost=%.1f%% (paper 53.8/46.2)", transparent, lost)
	if transparent+lost < 99 {
		t.Fatalf("shares do not add up: %v", rows)
	}
	// With 24 quick runs the binomial noise is ±20 points.
	if lost < 20 || lost > 75 {
		t.Fatalf("TCP-loss share %.1f%% implausible vs paper's 46.2%%", lost)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "unreachable") {
			t.Fatalf("recovery failed in some runs: %s", n)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	res := Figure13(quick)
	rows := res.Tables[0].Rows
	if len(rows) != 7 {
		t.Fatalf("rows=%d", len(rows))
	}
	byLabel := map[string][2]float64{}
	for _, r := range rows {
		byLabel[r[0]] = [2]float64{cell(r[1]), cell(r[2])}
		t.Logf("Figure13: %-32s preserved=%5.1f%% max=%6.1f krps", r[0], cell(r[1]), cell(r[2]))
	}
	n1 := byLabel["NEaT 1x (1 core)"]
	n4 := byLabel["NEaT 4x (2 cores, 4 threads)"]
	if n1[0] != 0 {
		t.Fatalf("NEaT 1x should preserve 0%%: %v", n1)
	}
	if n4[0] != 75 {
		t.Fatalf("NEaT 4x should preserve 75%%: %v", n4)
	}
	// The paper's punchline: more replicas give more preserved state AND
	// more throughput.
	if !(n4[0] > n1[0] && n4[1] > n1[1]) {
		t.Fatalf("reliability and performance do not co-improve: %v vs %v", n1, n4)
	}
	m1 := byLabel["Multi 1x (2 cores)"]
	if m1[0] < 50 || m1[0] > 58 {
		t.Fatalf("Multi 1x preserved %.1f%%, want ≈53.8%%", m1[0])
	}
}
