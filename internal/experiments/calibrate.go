// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6), plus the calibration constants that map the
// simulator's cycle model onto the paper's measured throughput anchors.
//
// We calibrate to the paper's *anchor points* and let the shape — who
// wins, where curves flatten, where crossovers fall — emerge from the
// simulation (queueing, message passing, hyperthread contention, link
// serialization are all simulated, not scripted).
package experiments

import (
	"neat/internal/baseline"
	"neat/internal/stack"
)

// Calibration anchors, all from §6 of the paper:
//
//	a1. One lighttpd instance saturates a 1.9 GHz AMD core at ≈50 krps
//	    (Figure 7: 6 instances ≈ 302 krps ⇒ ≈50 krps each).
//	    ⇒ application cost ≈ 1.9e9/50e3 = 38 k cycles per request.
//	a2. One single-component NEaT replica saturates at ≈125-130 krps
//	    (Figure 7: NEaT 2x serves 5 instances ≈ 250 krps).
//	    ⇒ stack cost ≈ 1.9e9/128e3 ≈ 14.8 k cycles per request,
//	    split over: request in (filter+IP+TCP), response out (TCP+IP),
//	    ~0.5 ACK in per request (delayed ACKs), socket events, IPC.
//	a3. The TCP process of a multi-component replica saturates at
//	    ≈200 krps (Figure 7: Multi 1x scales linearly to 4 instances).
//	    ⇒ TCP-only cost ≈ 9.5 k cycles per request. This falls out of a2
//	    once the IP/filter share moves to the IP process.
//	a4. Fully tuned Linux on the 12-core AMD peaks at 224 krps (Table 1)
//	    ⇒ ≈101.8 k cycles per request across kernel+application;
//	    app is 38 k (a1) ⇒ kernel ≈64 k, of which ≈30 k is the
//	    contention share at 12 contexts (locks + cache-line bouncing).
//	a5. Linux on the 8-core/16-thread Xeon peaks at 328 krps (§6.4)
//	    with 16 lighttpd instances ⇒ per-request cost ≈25 % lower in
//	    cycles than on the AMD (Nehalem vs K10 microarchitecture);
//	    applied as XeonKernelScale on the baseline cost model only.
//	a6. Hyperthreads: the paper's §6.4 treats 2 threads ≈ 1.3-1.4× one
//	    core; the machine model uses HTPenalty 1.45 (each thread runs at
//	    1/1.45 speed when its sibling is busy ⇒ 2 threads = 1.38× core).

// AppCyclesPerRequest is anchor a1 minus the library/dispatch overhead the
// application process pays per request (~2 k cycles measured in the sim).
const AppCyclesPerRequest = 36000

// XeonKernelScale is anchor a5.
const XeonKernelScale = 0.75

// ServerStackCosts returns the NEaT per-operation stack costs satisfying
// anchors a2/a3.
func ServerStackCosts() stack.Costs {
	return stack.Costs{
		FilterCheck:  300,
		IPIn:         1000,
		IPOut:        1100,
		TCPSegIn:     4700,
		TCPSegOut:    3900,
		TCPConnSetup: 3500,
		UDPIn:        800,
		UDPOut:       800,
		SockOp:       1000,
		SockEvent:    500,
		TimerOp:      400,
	}
}

// LinuxCosts returns the baseline kernel cost model satisfying anchor a4.
func LinuxCosts() baseline.Costs {
	return baseline.DefaultCosts()
}

// ScaleBaselineCosts returns c with every cycle figure scaled by f
// (anchor a5's microarchitecture adjustment).
func ScaleBaselineCosts(c baseline.Costs, f float64) baseline.Costs {
	s := func(v int64) int64 { return int64(float64(v) * f) }
	return baseline.Costs{
		SoftirqPerPacket:        s(c.SoftirqPerPacket),
		IPIn:                    s(c.IPIn),
		IPOut:                   s(c.IPOut),
		TCPSegIn:                s(c.TCPSegIn),
		TCPSegOut:               s(c.TCPSegOut),
		TCPConnSetup:            s(c.TCPConnSetup),
		SyscallOp:               s(c.SyscallOp),
		SockEvent:               s(c.SockEvent),
		TimerOp:                 s(c.TimerOp),
		LockBase:                s(c.LockBase),
		LockPerContender:        s(c.LockPerContender),
		CacheBouncePerContender: s(c.CacheBouncePerContender),
	}
}
