package experiments

import (
	"crypto/md5"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"neat/internal/proto"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/wire"
)

// The connection-scale sweep measures what the million-connection refactor
// claims: one replica's TCP engine holds ~1M established connections while
// the simulator's calendar queue stays small — armed per-connection timers
// live in the hierarchical timer wheel, not as individual events. The sweep
// runs a conns ladder against both timer backends (the wheel and the legacy
// one-event-per-arm path) and, for the wheel rows, checks that a 2-worker
// PDES run reproduces the sequential run's protocol state byte for byte.
//
// The bed is deliberately minimal: two machines joined by a real wire.Link
// (so PDES gets its lookahead and mailbox physics), each hosting raw
// tcpeng.Engines in one process — no NIC, driver, IP layer or sockets. The
// client side shards its connections across several engines (one per source
// address) because a single 4-tuple space caps out at the ephemeral range.

// csFrame is one wire frame delivered to a connHost.
type csFrame []byte

// csConnect asks the client host to open n connections from engine `from`.
type csConnect struct {
	from proto.Addr
	dst  proto.Addr
	port uint16
	n    int
}

// connHost hosts TCP engines on one machine of the conn-scale bed. It is
// the tcpeng.Env for every engine it hosts, the wire.Port for its link
// endpoint, and the sim.Handler for its process.
type connHost struct {
	ds   *sim.Simulator // the machine's scheduling domain
	proc *sim.Proc
	ctx  *sim.Context
	ep   wire.Endpoint

	engines map[proto.Addr]*tcpeng.Engine
	isn     uint64 // splitmix64 state: ISN entropy independent of sim RNG streams
}

func newConnHost(m *sim.Machine, name string, ep wire.Endpoint) *connHost {
	h := &connHost{ds: m.Sim(), ep: ep, engines: map[proto.Addr]*tcpeng.Engine{}}
	h.proc = sim.NewProc(m.Thread(0, 0), name, h, sim.ProcConfig{Component: "connscale"})
	ep.Attach(h)
	ep.Bind(m.Sim())
	return h
}

func (h *connHost) addEngine(addr proto.Addr, cfg tcpeng.Config) *tcpeng.Engine {
	e := tcpeng.NewEngine(h, addr, cfg)
	h.engines[addr] = e
	return e
}

// Receive implements wire.Port: frames land in the process inbox.
func (h *connHost) Receive(frame []byte) { h.proc.Deliver(csFrame(frame)) }

// HandleMessage implements sim.Handler.
func (h *connHost) HandleMessage(ctx *sim.Context, msg sim.Message) {
	h.ctx = ctx
	switch m := msg.(type) {
	case csFrame:
		ctx.Charge(300)
		if f, err := proto.DecodeFrame(m); err == nil {
			if e := h.engines[f.IP.Dst]; e != nil {
				e.Input(f)
			}
		}
	case *tcpeng.ConnTimer:
		ctx.Charge(100)
		la, _ := m.C.LocalAddr()
		if e := h.engines[la]; e != nil {
			e.OnTimer(m.C, m.Kind)
		}
	case csConnect:
		ctx.Charge(int64(m.n) * 50)
		e := h.engines[m.from]
		for i := 0; i < m.n; i++ {
			if _, err := e.Connect(m.dst, m.port); err != nil {
				break
			}
		}
	}
	h.ctx = nil
}

// tcpeng.Env implementation.

func (h *connHost) Now() sim.Time { return h.ds.Now() }

func (h *connHost) SendSegment(c *tcpeng.Conn, seg tcpeng.OutSegment) {
	h.ctx.Charge(200)
	raw := proto.BuildTCP(
		proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: seg.Src, Dst: seg.Dst},
		seg.Hdr, seg.Payload)
	h.ep.Transmit(raw)
}

func (h *connHost) ArmTimer(c *tcpeng.Conn, k tcpeng.TimerKind, d sim.Time) {
	t := &c.Timers[k]
	h.ctx.Retimer(&t.Timer, d, t)
}

func (h *connHost) StopTimer(c *tcpeng.Conn, k tcpeng.TimerKind) {
	c.Timers[k].Stop()
}

func (h *connHost) Accepted(c *tcpeng.Conn) {
	// Keep the accept queue flat: this bed has no application, so pop the
	// FIFO head immediately (it is c — accepts arrive one at a time).
	if c.Listener != nil {
		c.Listener.Accept()
	}
}

func (h *connHost) Connected(c *tcpeng.Conn)            {}
func (h *connHost) DataReadable(c *tcpeng.Conn)         {}
func (h *connHost) SendSpace(c *tcpeng.Conn)            {}
func (h *connHost) ConnClosed(c *tcpeng.Conn, rst bool) {}
func (h *connHost) ConnRemoved(c *tcpeng.Conn)          {}

func (h *connHost) RandUint32() uint32 {
	h.isn += 0x9e3779b97f4a7c15
	z := h.isn
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return uint32(z)
}

// ConnScalePoint is one measured rung of the connection ladder.
type ConnScalePoint struct {
	Conns         int
	Backend       string // "wheel" or "event"
	Established   int    // server-side established connections at measurement
	PendingEvents int    // calendar-queue events resident at measurement
	PendingTimers int    // timer-wheel entries resident at measurement
	Cascades      uint64 // wheel cascade operations during the run
	BytesPerConn  float64
	WallSeconds   float64
	// PDESIdentical reports that a 2-worker PDES run of the same rung
	// reproduced the sequential run's digest (wheel rows only; false means
	// "not checked" on event rows).
	PDESIdentical bool

	digest string
}

func backendName(b sim.TimerBackend) string {
	if b == sim.TimerBackendEvent {
		return "event"
	}
	return "wheel"
}

// connScaleRun measures one rung: conns connections established through a
// batched, staggered connect storm, then a quiescent hold. The horizon is a
// fixed function of the rung, so sequential and PDES runs of the same rung
// execute an identical schedule.
func connScaleRun(seed int64, conns, pdesWorkers int, backend sim.TimerBackend) ConnScalePoint {
	const (
		port      = uint16(80)
		batchSize = 1024
		// One 1024-conn batch serializes ~137 µs of handshake frames per
		// direction at 10 Gb/s; a slightly larger stagger keeps the wire
		// backlog shallow so no handshake ever reaches its RTO.
		stagger = 150 * sim.Microsecond
		// Conns per client engine, safely inside the 1024..65535 ephemeral
		// range even after batch-granular round-robin imbalance.
		perEngine = 60000
	)
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	// The live heap grows to ~1.5 GB at the million rung; the default GOGC
	// re-scans it dozens of times during the storm for no benefit. The
	// explicit runtime.GC() below keeps the footprint measurement honest.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	start := time.Now()

	s := sim.New(seed)
	s.SetTimerBackend(backend)
	if pdesWorkers > 0 {
		s.EnablePDES(pdesWorkers)
	}
	link := wire.NewLink(s)
	srvM := sim.NewMachine(s, "server", 1, 1, 3_000_000_000)
	cliM := sim.NewMachine(s, "client", 1, 1, 3_000_000_000)
	srv := newConnHost(srvM, "srv", link.End(0))
	cli := newConnHost(cliM, "cli", link.End(1))

	srvIP := proto.IPv4(10, 0, 0, 1)
	scfg := tcpeng.DefaultConfig()
	// One armed timer per established conn: the idle guard, far beyond the
	// horizon. This is the load the timer-backend axis contrasts.
	scfg.Guard.IdleDeadline = 30 * sim.Second
	se := srv.addEngine(srvIP, scfg)
	if _, err := se.Listen(proto.Addr{}, port, conns+16); err != nil {
		panic(err)
	}

	ccfg := tcpeng.DefaultConfig()
	ccfg.EphemeralLo, ccfg.EphemeralHi = 1024, 65535
	numCli := (conns + perEngine - 1) / perEngine
	cliIPs := make([]proto.Addr, numCli)
	for i := range cliIPs {
		cliIPs[i] = proto.IPv4(10, 0, byte(1+i/250), byte(1+i%250))
		cli.addEngine(cliIPs[i], ccfg)
	}

	// The connect storm: fixed-size batches round-robined across client
	// engines at a fixed stagger. Everything is scheduled up front, so the
	// event schedule is a pure function of (seed, conns).
	at := sim.Time(0)
	for remaining, i := conns, 0; remaining > 0; i++ {
		n := batchSize
		if n > remaining {
			n = remaining
		}
		remaining -= n
		s.DeliverAt(at, cli.proc, csConnect{
			from: cliIPs[i%numCli], dst: srvIP, port: port, n: n})
		at += stagger
	}

	// Horizon: storm end + handshake drain + one client RTO, so the lazily
	// stopped handshake rexmit timers have all popped (stale) and the only
	// resident timers are the servers' idle guards.
	s.RunUntil(at + 200*sim.Millisecond)

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	ts := s.TimerStats()
	p := ConnScalePoint{
		Conns:         conns,
		Backend:       backendName(backend),
		Established:   se.NumEstablished(),
		PendingEvents: s.PendingEvents(),
		PendingTimers: ts.Pending,
		Cascades:      ts.Cascades,
		WallSeconds:   time.Since(start).Seconds(),
	}
	if p.Established > 0 {
		p.BytesPerConn = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(p.Established)
	}

	d := md5.New()
	fmt.Fprintf(d, "now=%d est=%d %+v", s.Now(), p.Established, se.Stats())
	for _, ip := range cliIPs {
		fmt.Fprintf(d, "%+v", cli.engines[ip].Stats())
	}
	p.digest = fmt.Sprintf("%x", d.Sum(nil))
	return p
}

// ConnScaleLadder measures the conns ladder across both timer backends.
// Wheel rows additionally run 2-worker PDES and verify digest identity.
func ConnScaleLadder(o Options, conns []int) []ConnScalePoint {
	var points []ConnScalePoint
	for _, n := range conns {
		wheel := connScaleRun(o.seed(), n, 0, sim.TimerBackendWheel)
		pdes := connScaleRun(o.seed(), n, 2, sim.TimerBackendWheel)
		wheel.PDESIdentical = wheel.digest == pdes.digest
		points = append(points, wheel)
		points = append(points, connScaleRun(o.seed(), n, 0, sim.TimerBackendEvent))
	}
	return points
}

// connScaleConns picks the ladder for the options.
func connScaleConns(o Options) []int {
	if o.Quick {
		return []int{512, 2048}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// ConnScale runs the connection-scale campaign and reports it as a table.
func ConnScale(o Options) *Result {
	res := &Result{Name: "Connection scale: one replica's engine under a conns ladder x timer backend"}
	points := ConnScaleLadder(o, connScaleConns(o))
	tab := &report.Table{
		Title: "Established connections vs simulator load (idle guard armed per conn)",
		Columns: []string{"conns", "backend", "established", "pending events",
			"pending timers", "cascades", "B/conn", "wall", "seq==pdes2"},
	}
	for _, p := range points {
		ident := "-"
		if p.Backend == "wheel" {
			if p.PDESIdentical {
				ident = "yes"
			} else {
				ident = "NO"
			}
		}
		tab.AddRow(
			fmt.Sprintf("%d", p.Conns), p.Backend,
			fmt.Sprintf("%d", p.Established),
			fmt.Sprintf("%d", p.PendingEvents),
			fmt.Sprintf("%d", p.PendingTimers),
			fmt.Sprintf("%d", p.Cascades),
			fmt.Sprintf("%.0f", p.BytesPerConn),
			fmt.Sprintf("%.2fs", p.WallSeconds),
			ident)
	}
	res.Tables = append(res.Tables, tab)
	res.Notef("every established conn arms a 30s idle-guard timer; \"pending events\" is the calendar queue, \"pending timers\" the wheel residency")
	res.Notef("with the wheel backend the calendar queue stays O(1) in conns; the event backend plants one calendar event per armed timer")
	res.Notef("B/conn is heap growth per established connection, both endpoints plus wheel entries included")
	res.Notef("seq==pdes2: the same rung re-run under 2-worker PDES reproduces identical protocol-state digests")
	return res
}
