package experiments

import (
	"testing"

	"neat/internal/sim"
	"neat/internal/testbed"
	"neat/internal/wire"
)

// TestClusterDeterminism is the cluster determinism gate: the full
// campaign output over the 3-farm topology must be byte-identical between
// the sequential engine and conservative PDES with 1 and 4 workers. This
// is stronger than the two-host PDES contract (workers=1 vs workers=N)
// and holds because the cluster workload is RNG-free on every
// behavior-relevant path — see the package comment in cluster.go.
func TestClusterDeterminism(t *testing.T) {
	render := func(workers int) string {
		return ClusterScale(Options{Quick: true, PDESWorkers: workers}).String()
	}
	seq := render(0)
	if p1 := render(1); seq != p1 {
		t.Fatalf("sequential and PDES-1 cluster runs diverged:\n--- sequential ---\n%s\n--- pdes 1 ---\n%s", seq, p1)
	}
	if p4 := render(4); seq != p4 {
		t.Fatalf("sequential and PDES-4 cluster runs diverged:\n--- sequential ---\n%s\n--- pdes 4 ---\n%s", seq, p4)
	}
}

// runFailover drives the default 3-farm bed; if kill is true, farm 0's
// member 1 machine dies mid-window (hung kernel: every process livelocks,
// the switch port goes dark). The short client timeout lets connections
// stuck on the dead machine recycle within the window. Returns per-farm
// (goodResponses, connErrors, discardedResponses).
func runFailover(t *testing.T, kill bool) (*ClusterBed, [3]uint64, [3]uint64, [3]uint64) {
	t.Helper()
	b, err := NewClusterBed(ClusterBedConfig{
		Seed: 1, ConnsPerGen: 2, ReqPerConn: 20,
		Timeout: 5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Sim.RunFor(10 * sim.Millisecond)
	for _, g := range b.Gens {
		g.BeginMeasure()
	}
	if kill {
		// An off-beat instant: not a multiple of the watchdog probe
		// interval or the farm controller tick.
		b.Sim.After(3*sim.Millisecond+137*sim.Microsecond, func() {
			b.Cluster.KillMachine(0, 1)
		})
	}
	b.Sim.RunFor(40 * sim.Millisecond)
	var good, errs, disc [3]uint64
	for i, g := range b.Gens {
		st := g.Stats()
		f := b.GenFarm[i]
		good[f] += g.GoodResponses()
		errs[f] += st.ConnErrors
		disc[f] += st.WindowDiscarded
	}
	return b, good, errs, disc
}

// TestClusterFailover kills one server machine mid-run and checks the
// cross-machine failover contract: the farm controller declares the
// machine dead from its stalled watchdog heartbeats, the untouched
// tenant's farm keeps exactly the goodput of an undisturbed run, and no
// surviving connection loses bytes — only connections pinned to the dead
// machine are discarded.
func TestClusterFailover(t *testing.T) {
	_, baseGood, baseErrs, _ := runFailover(t, false)
	b, good, errs, disc := runFailover(t, true)

	// The farm controller must have declared farm 0's member 1 dead —
	// and nothing else.
	var declared bool
	for _, ev := range b.Cluster.Events() {
		if ev.Kind == testbed.FarmMemberDead {
			if ev.Farm != "farm0" || ev.Member != 1 {
				t.Fatalf("wrong member declared dead: %+v", ev)
			}
			declared = true
		}
	}
	if !declared {
		t.Fatalf("farm controller never declared the killed machine dead; events: %+v", b.Cluster.Events())
	}
	if b.Cluster.Farms[0].Members[1].Alive() {
		t.Fatal("killed member still marked alive")
	}
	if st := b.Cluster.Farms[0].Service.BackendState(1); st != wire.BackendDown {
		t.Fatalf("killed member's backend is %v, want down", st)
	}

	// No clean farm sees an error or a discarded (partial) response:
	// zero lost bytes outside the blast radius.
	for f := 1; f <= 2; f++ {
		if errs[f] != 0 || baseErrs[f] != 0 {
			t.Fatalf("clean farm %d saw connection errors: %d (baseline %d)", f, errs[f], baseErrs[f])
		}
		if disc[f] != 0 {
			t.Fatalf("clean farm %d discarded %d responses", f, disc[f])
		}
	}
	// Farm 1 belongs to the other tenant — no shared client machines, no
	// shared farm machines, so its goodput is byte-for-byte that of the
	// undisturbed run.
	if good[1] != baseGood[1] {
		t.Fatalf("isolated tenant's farm goodput %d != undisturbed %d", good[1], baseGood[1])
	}
	// Farm 2 shares client machines with farm 0's generators (same
	// tenant), so retransmission work on those machines shifts its timing
	// by a few responses either way — but every response it did serve was
	// complete (zero discards above), and throughput stays whole.
	if good[2] < baseGood[2]-baseGood[2]/100 {
		t.Fatalf("same-tenant clean farm goodput %d well under undisturbed %d", good[2], baseGood[2])
	}

	// The wounded farm: connections pinned to the dead machine error
	// (their state died with it — the paper's partitioning boundary, at
	// machine granularity), but the survivor keeps serving.
	if errs[0] == 0 {
		t.Fatal("no connection errors on the wounded farm; kill had no effect")
	}
	if good[0] == 0 {
		t.Fatal("wounded farm lost all goodput; the survivor should keep serving")
	}
	if st := b.Cluster.Farms[0].Service.Stats(); st.DropDown == 0 {
		t.Fatal("no frames dropped toward the dead backend")
	}
	// New flows re-place onto the survivor; the service never reaches
	// zero active backends.
	if n := b.Cluster.Farms[0].Service.NumActive(); n != 1 {
		t.Fatalf("wounded farm has %d active backends, want 1", n)
	}
}

// TestClusterAutoscale drives one farm past its high watermark and checks
// the controller activates standby capacity, then drains it when the load
// falls away.
func TestClusterAutoscale(t *testing.T) {
	b, err := NewClusterBed(ClusterBedConfig{
		Seed:           1,
		Farms:          1,
		Tenants:        1,
		Clients:        2,
		MembersPerFarm: 3,
		InitialActive:  1,
		ConnsPerGen:    8,
		ReqPerConn:     20,
		Control: testbed.FarmControlConfig{
			HighWater: 4,
			LowWater:  1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	farm := b.Cluster.Farms[0]
	if n := farm.Service.NumActive(); n != 1 {
		t.Fatalf("farm starts with %d active members, want 1", n)
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Sim.RunFor(20 * sim.Millisecond)
	ups := 0
	for _, ev := range b.Cluster.Events() {
		if ev.Kind == testbed.FarmScaleUp {
			ups++
		}
	}
	if ups == 0 {
		t.Fatalf("no scale-up under load; events: %+v, active=%d",
			b.Cluster.Events(), farm.Service.NumActive())
	}
	if n := farm.Service.NumActive(); n < 2 {
		t.Fatalf("farm has %d active members after load, want >= 2", n)
	}
	// Load off: generators stop replacing finished connections. The drain
	// run must outlive TIME_WAIT — TotalConns counts every live PCB, and
	// the controller only sees the mean drop once reaping clears them.
	for _, g := range b.Gens {
		g.Stop()
	}
	b.Sim.RunFor(3 * sim.Second)
	downs := 0
	for _, ev := range b.Cluster.Events() {
		if ev.Kind == testbed.FarmScaleDown {
			downs++
		}
	}
	if downs == 0 {
		t.Fatalf("no scale-down after load fell away; events: %+v", b.Cluster.Events())
	}
}

// TestClusterTenantIsolation checks the steering-domain boundary: every
// farm serves exactly its own tenant's generators (the ARP walls hold —
// the topology cannot even express a cross-tenant connection), and each
// service carries its tenant's label.
func TestClusterTenantIsolation(t *testing.T) {
	b, err := NewClusterBed(ClusterBedConfig{Seed: 1, ConnsPerGen: 2, ReqPerConn: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Sim.RunFor(5 * sim.Millisecond)
	for _, g := range b.Gens {
		g.BeginMeasure()
	}
	b.Sim.RunFor(10 * sim.Millisecond)
	perFarm := b.FarmGoodput()
	for fi, f := range b.Cluster.Farms {
		var want uint64
		for i, g := range b.Gens {
			if b.GenFarm[i] == fi {
				want += g.GoodResponses()
			}
		}
		if perFarm[fi] != want {
			t.Fatalf("farm %d (%s) goodput %d != its tenant's generators %d",
				fi, f.Tenant, perFarm[fi], want)
		}
		if perFarm[fi] == 0 {
			t.Fatalf("farm %d (%s) served nothing", fi, f.Tenant)
		}
		if f.Service.Config().Tenant != f.Tenant {
			t.Fatalf("farm %s service belongs to tenant %q", f.Name, f.Service.Config().Tenant)
		}
	}
}

// TestClusterSpecValidation exercises the actionable-error surface.
func TestClusterSpecValidation(t *testing.T) {
	s := sim.New(1)
	cases := []testbed.ClusterSpec{
		{}, // no farms
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 1}}}, // no clients
		{Farms: []testbed.FarmSpec{{Name: "", Members: 1}},
			Clients: []testbed.ClientSpec{{}}}, // unnamed farm
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 0}},
			Clients: []testbed.ClientSpec{{}}}, // no members
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 1}, {Name: "f", Members: 1}},
			Clients: []testbed.ClientSpec{{}}}, // duplicate name
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 1}},
			Clients: []testbed.ClientSpec{{Tenant: "ghost"}}}, // tenant owns no farm
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 2, InitialActive: 3}},
			Clients: []testbed.ClientSpec{{}}}, // InitialActive > Members
		{Farms: []testbed.FarmSpec{{Name: "f", Members: 1,
			Control: testbed.FarmControlConfig{HighWater: 2, LowWater: 5}}},
			Clients: []testbed.ClientSpec{{}}}, // low >= high
	}
	for i, spec := range cases {
		if _, err := testbed.NewCluster(s, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		} else if err.Error() == "" {
			t.Errorf("case %d: empty error message", i)
		}
	}
	ok := testbed.ClusterSpec{
		Farms:   []testbed.FarmSpec{{Name: "f", Members: 1}},
		Clients: []testbed.ClientSpec{{}},
	}
	if _, err := testbed.NewCluster(sim.New(1), ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestClusterLadderScale checks the -scale knob multiplies every rung.
func TestClusterLadderScale(t *testing.T) {
	o := Options{Quick: true, Scale: 3}
	pts, err := ClusterLadder(o, []int{2}, o.clusterScale())
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ConnsPerGen != 6 {
		t.Fatalf("scale 3 on rung 2 gave conns/gen %d, want 6", pts[0].ConnsPerGen)
	}
	// 6 generators (tenant0: clients 0,2 × farms 0,2; tenant1: clients
	// 1,3 × farm 1) × 6 connections each.
	if pts[0].Aggregate != 36 {
		t.Fatalf("aggregate %d, want 36", pts[0].Aggregate)
	}
}
