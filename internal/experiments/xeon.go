package experiments

import (
	"fmt"

	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// Xeon placements follow the paper's Figures 8 and 10: hyperthreading lets
// NEaT colocate the NIC driver with the SYSCALL server and pack replicas
// two per core, freeing cores for the application.

// xeonSeries describes one curve of Figure 9 or 11: the replica slots, the
// driver/SYSCALL placement, and the lighttpd fill order.
type xeonSeries struct {
	label   string
	kind    stack.Kind
	slots   [][]testbed.ThreadLoc
	driver  testbed.ThreadLoc
	syscall testbed.ThreadLoc
	webFill []testbed.ThreadLoc
	points  []int // which web counts to measure
}

// xeonPoint measures one web count of a series.
func xeonPoint(o Options, s xeonSeries, webs, conns int) (Measurement, error) {
	if webs > len(s.webFill) {
		return Measurement{}, fmt.Errorf("xeon series %s: %d webs exceed fill order", s.label, webs)
	}
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        o.seed(), Machine: Xeon, Kind: s.kind,
		ReplicaSlots: s.slots,
		SyscallLoc:   s.syscall,
		DriverLoc:    s.driver,
		WebLocs:      s.webFill[:webs],
		ConnsPerGen:  conns, ReqPerConn: 100,
	})
	if err != nil {
		return Measurement{}, err
	}
	return b.Run(o.warm(), o.window()), nil
}

// runXeonSeries measures the series at each web count.
func runXeonSeries(o Options, s xeonSeries, fig *report.Figure, conns int) *report.Series {
	series := fig.NewSeries(s.label)
	outs := RunParallel(len(s.points), o.workers(), func(i int) outcome {
		m, err := xeonPoint(o, s, s.points[i], conns)
		return outcome{m: m, err: err}
	})
	for i, webs := range s.points {
		if outs[i].err != nil {
			continue
		}
		series.Add(float64(webs), outs[i].m.KRPS)
	}
	return series
}

// threadFill lists (core,0) for cores in order, then (core,1).
func threadFill(cores ...int) []testbed.ThreadLoc {
	var out []testbed.ThreadLoc
	for _, c := range cores {
		out = append(out, testbed.ThreadLoc{Core: c, Thread: 0})
	}
	for _, c := range cores {
		out = append(out, testbed.ThreadLoc{Core: c, Thread: 1})
	}
	return out
}

func loc(c, t int) testbed.ThreadLoc { return testbed.ThreadLoc{Core: c, Thread: t} }

// Figure9 reproduces the Xeon multi-component scaling: Multi 1x, Multi 2x
// (spilling lighttpd onto the stack cores' spare threads) and Multi 2x HT
// (both replicas colocated on two cores). Paper: peaks at 322 krps with 8
// lighttpd instances.
func Figure9(o Options) *Result {
	res := &Result{Name: "Figure 9: Xeon — scaling the multi-component stack"}
	fig := &report.Figure{Title: "Request rate vs lighttpd instances (Xeon, 8 cores × 2 threads)",
		XLabel: "#lighttpd", YLabel: "krps"}

	multi1x := xeonSeries{
		label: "Multi 1x", kind: stack.Multi,
		slots:  [][]testbed.ThreadLoc{{loc(2, 0), loc(3, 0)}},
		driver: loc(0, 0), syscall: loc(1, 0),
		webFill: threadFill(4, 5, 6, 7),
		points:  []int{1, 2, 3, 4},
	}
	// Multi 2x on dedicated cores: only cores 6,7 remain for lighttpd;
	// points 3,4 use their sibling threads, 6 adds the TCP cores' and 8
	// the IP cores' spare threads (§6.4).
	multi2x := xeonSeries{
		label: "Multi 2x", kind: stack.Multi,
		slots:  [][]testbed.ThreadLoc{{loc(2, 0), loc(3, 0)}, {loc(4, 0), loc(5, 0)}},
		driver: loc(0, 0), syscall: loc(1, 0),
		webFill: []testbed.ThreadLoc{loc(6, 0), loc(7, 0), loc(6, 1), loc(7, 1),
			loc(3, 1), loc(5, 1), loc(2, 1), loc(4, 1)},
		points: []int{1, 2, 3, 4, 6, 8},
	}
	// Multi 2x HT (Fig. 8c): both TCP processes share one core, both IP
	// processes another; driver and SYSCALL share core 0.
	multi2xHT := xeonSeries{
		label: "Multi 2x HT", kind: stack.Multi,
		slots:  [][]testbed.ThreadLoc{{loc(2, 0), loc(1, 0)}, {loc(2, 1), loc(1, 1)}},
		driver: loc(0, 0), syscall: loc(0, 1),
		webFill: threadFill(3, 4, 5, 6, 7),
		points:  []int{2, 4, 6, 8},
	}
	var peak float64
	for _, s := range []xeonSeries{multi1x, multi2x, multi2xHT} {
		series := runXeonSeries(o, s, fig, 24)
		if m := series.MaxY(); m > peak {
			peak = m
		}
	}
	res.Figures = append(res.Figures, fig)
	res.Notef("peak: %.1f krps (paper: 322 krps at 8 lighttpd instances)", peak)
	res.Notef("paper shape: throughput peaks at 4 instances per Multi 1x; Multi 2x scales on via spare hyperthreads")
	return res
}

// Figure11 reproduces the Xeon single-component scaling: NEaT 1x/2x with
// and without hyperthread packing and the best configuration NEaT 4x HT
// (Fig. 10). Paper: NEaT 4x sustains 372 krps, 13.4 % above the best
// Linux result (328 krps) on the same machine.
func Figure11(o Options) *Result {
	res := &Result{Name: "Figure 11: Xeon — scaling the single-component stack"}
	fig := &report.Figure{Title: "Request rate vs lighttpd instances (Xeon, single-component)",
		XLabel: "#lighttpd", YLabel: "krps"}

	series := []xeonSeries{
		{
			label: "NEaT 1x", kind: stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: threadFill(3, 4, 5, 6, 7),
			points:  []int{1, 2, 3, 4, 5},
		},
		{
			label: "NEaT 1x HT", kind: stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(1, 0)}},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(2, 3, 4, 5, 6, 7),
			points:  []int{1, 2, 3, 4, 5, 6, 8, 9},
		},
		{
			label: "NEaT 2x", kind: stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0)}, {loc(3, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: threadFill(4, 5, 6, 7),
			points:  []int{2, 3, 4, 5, 6, 8},
		},
		{
			label: "NEaT 2x HT", kind: stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(1, 0)}, {loc(1, 1)}},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(2, 3, 4, 5, 6, 7),
			points:  []int{2, 4, 6, 8, 9},
		},
		{
			// Fig. 10: the best-performing configuration, fully exploiting
			// hyperthreading: 4 replicas on 2 cores, driver+SYSCALL on one.
			label: "NEaT 4x HT", kind: stack.Single,
			slots: [][]testbed.ThreadLoc{
				{loc(1, 0)}, {loc(1, 1)}, {loc(2, 0)}, {loc(2, 1)},
			},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(3, 4, 5, 6, 7),
			points:  []int{4, 6, 8, 9, 10},
		},
	}
	var best float64
	for _, s := range series {
		sr := runXeonSeries(o, s, fig, 24)
		if m := sr.MaxY(); m > best {
			best = m
		}
	}
	res.Figures = append(res.Figures, fig)
	res.Notef("best: %.1f krps (paper: NEaT 4x HT sustains 372 krps = +13.4%% over Linux's 328)", best)
	return res
}

// Table2 reproduces the driver CPU usage breakdown: a mostly idle 10G
// driver spends its active cycles suspending/resuming in the kernel and
// polling; under load it converts that "wasted" time into processing.
// Paper rows (CPU load / kernel / polling / web krps):
// 6/33.3/51.8/3 — 60/14.2/27.9/45 — 88/5.4/19.7/90 — 97/0.1/7.4/242.
func Table2(o Options) *Result {
	res := &Result{Name: "Table 2: 10G driver CPU usage breakdown (Xeon, 3 replicas)"}
	tab := &report.Table{
		Title:   "Driver CPU usage at increasing load (paper: 6/60/88/97 % load rows)",
		Columns: []string{"CPU load", "kernel", "polling", "web krps", "paper row"},
	}
	rows := []struct {
		webs  int
		conns int
		think sim.Time
		paper string
	}{
		{1, 6, 2 * sim.Millisecond, "6% / 33.3% / 51.8% / 3"},
		{1, 42, 850 * sim.Microsecond, "60% / 14.2% / 27.9% / 45"},
		{2, 42, 850 * sim.Microsecond, "88% / 5.4% / 19.7% / 90"},
		{4, 24, 0, "97% / 0.1% / 7.4% / 242"},
	}
	type t2out struct {
		load, kernel, polling string
		krps                  float64
		err                   error
	}
	outs := RunParallel(len(rows), o.workers(), func(i int) t2out {
		row := rows[i]
		b, err := NewBed(BedConfig{
			PDESWorkers: o.PDESWorkers,
			Seed:        o.seed(), Machine: Xeon, Kind: stack.Single,
			ReplicaSlots: [][]testbed.ThreadLoc{{loc(2, 0)}, {loc(2, 1)}, {loc(3, 0)}},
			DriverLoc:    loc(0, 0), SyscallLoc: loc(1, 0),
			WebLocs:     threadFill(4, 5, 6, 7)[:row.webs],
			ConnsPerGen: row.conns, ReqPerConn: 100, ThinkTime: row.think,
		})
		if err != nil {
			return t2out{err: err}
		}
		for _, g := range b.Gens {
			g.Start()
		}
		b.Net.Sim.RunFor(o.warm())
		drv := b.Server.Driver.Proc()
		before := drv.Stats()
		busy0 := drv.Thread().BusyTotal()
		t0 := b.Net.Sim.Now()
		for _, g := range b.Gens {
			g.BeginMeasure()
		}
		b.Net.Sim.RunFor(o.window())
		after := drv.Stats()
		window := b.Net.Sim.Now() - t0

		active := float64(after.BusyNs() - before.BusyNs())
		kernel := float64(after.CostNs[sim.CostKernel] - before.CostNs[sim.CostKernel])
		polling := float64(after.CostNs[sim.CostPolling] - before.CostNs[sim.CostPolling])
		load := sim.Utilization(busy0, drv.Thread().BusyTotal(), t0, b.Net.Sim.Now())
		var good uint64
		for _, g := range b.Gens {
			good += g.GoodResponses()
		}
		if active == 0 {
			active = 1
		}
		return t2out{
			load:    fmt.Sprintf("%.0f%%", load*100),
			kernel:  fmt.Sprintf("%.1f%%", kernel/active*100),
			polling: fmt.Sprintf("%.1f%%", polling/active*100),
			krps:    float64(good) / window.Seconds() / 1000,
		}
	})
	for i, row := range rows {
		if outs[i].err != nil {
			res.Notef("row %s: %v", row.paper, outs[i].err)
			continue
		}
		tab.AddRow(outs[i].load, outs[i].kernel, outs[i].polling, outs[i].krps, row.paper)
	}
	res.Tables = append(res.Tables, tab)
	res.Notef("kernel/polling are shares of the driver's *active* time; their absolute share shrinks as load grows")
	return res
}
