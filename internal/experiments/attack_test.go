package experiments

import (
	"fmt"
	"testing"

	"neat/internal/sim"
	"neat/internal/steer"
)

// TestAttackContainment is the campaign's acceptance criterion: with the
// attack aimed at replica 0 under hash placement, the three clean replicas
// retain at least 90 % of their attack-free goodput, and the guard that
// defeats each attack actually engaged.
func TestAttackContainment(t *testing.T) {
	o := Options{Quick: true}
	base := attackRun(o, attackNone, steer.PolicyHash)
	if base.err != nil {
		t.Fatal(base.err)
	}
	if base.cleanKRPS <= 0 || base.total.Errors != 0 {
		t.Fatalf("attack-free cell unhealthy: %+v", base.total)
	}
	for _, kind := range []attackKind{attackSlowloris, attackSynFlood, attackChurn} {
		out := attackRun(o, kind, steer.PolicyHash)
		if out.err != nil {
			t.Fatalf("%v: %v", kind, out.err)
		}
		if out.cleanKRPS < 0.9*base.cleanKRPS {
			t.Fatalf("%v: clean replicas retained %.1f of %.1f krps (< 90%%)",
				kind, out.cleanKRPS, base.cleanKRPS)
		}
		switch kind {
		case attackSlowloris:
			if out.guard.SlowlorisReaped == 0 {
				t.Fatalf("%v: header-progress guard never reaped", kind)
			}
		case attackSynFlood:
			if out.guard.SynShed == 0 {
				t.Fatalf("%v: bounded SYN backlog never shed", kind)
			}
			if out.guard.DroppedSynBacklog != 0 {
				t.Fatalf("%v: listener backlog overflowed %d times despite the guard",
					kind, out.guard.DroppedSynBacklog)
			}
		}
	}
}

// TestSynCookieOffload is the handshake-offload acceptance criterion: under
// a flood hot enough to defeat backlog shedding, stateless cookies leave the
// victim's PCB table free of embryonic entries and win back goodput on the
// attacked replica.
func TestSynCookieOffload(t *testing.T) {
	o := Options{Quick: true}
	shed := attackGuard()
	shed.SynBacklog = 16
	cookie := shed
	cookie.SynCookies = true
	cookie.SynCookieWatermark = -1
	tune := attackTuning{floodBurst: 4, floodInterval: 25 * sim.Microsecond}

	a := attackRunGuard(o, attackSynFlood, steer.PolicyHash, shed, tune)
	b := attackRunGuard(o, attackSynFlood, steer.PolicyHash, cookie, tune)
	if a.err != nil || b.err != nil {
		t.Fatalf("errs: %v / %v", a.err, b.err)
	}
	if b.embryonic != 0 {
		t.Fatalf("cookies left %d embryonic PCBs on the victim", b.embryonic)
	}
	if a.embryonic == 0 {
		t.Fatal("shed baseline shows no embryonic pressure — the flood never engaged")
	}
	if b.guard.SynCookiesSent == 0 || b.guard.SynCookiesValidated == 0 {
		t.Fatalf("cookie path inactive: %+v", b.guard)
	}
	if b.attackedKRPS < 2*a.attackedKRPS || b.attackedKRPS <= 0 {
		t.Fatalf("cookies did not improve attacked-replica goodput: %.1f vs %.1f krps",
			b.attackedKRPS, a.attackedKRPS)
	}
	if b.total.Errors >= a.total.Errors {
		t.Fatalf("cookie cell errors %d not below shed cell %d", b.total.Errors, a.total.Errors)
	}
}

// TestAttackDeterminism pins the campaign's PDES contract: the same cell
// produces identical results for any worker count >= 1.
func TestAttackDeterminism(t *testing.T) {
	cell := func(workers int) string {
		out := attackRun(Options{Quick: true, PDESWorkers: workers},
			attackSynFlood, steer.PolicyHash)
		if out.err != nil {
			t.Fatalf("workers=%d: %v", workers, out.err)
		}
		return fmt.Sprintf("%+v", out)
	}
	if c1, c4 := cell(1), cell(4); c1 != c4 {
		t.Fatalf("attack cell differs between 1 and 4 workers:\n%s\nvs\n%s", c1, c4)
	}
}
