package experiments

// ClusterScale: the datacenter campaign. One simulated cluster — a
// store-and-forward switch, N load-generator machines, M-member NEaT
// server farms behind L4 virtual services, two tenants — driven up a
// connection-count ladder. The paper's partitioning argument measured one
// level up: flows partition across machines the way they partition across
// replicas within a machine, and goodput should scale with active members
// the way Figure 9 scales with replicas.
//
// Determinism contract: a cluster run is byte-identical between the
// sequential engine and conservative PDES at any worker count. This is a
// stronger property than the two-host beds have (those keep separate
// oracles per engine, because shared-RNG interleaving differs) and it
// holds here because the cluster workload is RNG-free on every
// behavior-relevant path: one stack per client machine (the connect-side
// placer has a single choice), deterministic farm steering (hash over the
// active set), no loss/duplication on any link, and fixed port plans. The
// report prints only simulation-derived numbers — never wall-clock times
// or PDES coordinator counters, which legitimately differ across engines.

import (
	"fmt"

	"neat/internal/app"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/testbed"
	"neat/internal/trace"
)

// ClusterBedConfig describes one cluster configuration plus its workload.
type ClusterBedConfig struct {
	Seed        int64
	PDESWorkers int // 0 = sequential global event loop

	// Topology (defaults: 3 farms × 2 members × 2 replicas, 4 clients,
	// 2 tenants — the smallest shape exercising multi-farm steering,
	// multi-client load and tenant isolation).
	Farms             int
	MembersPerFarm    int
	ReplicasPerMember int
	Clients           int
	Tenants           int
	// InitialActive members per farm (default all; fewer leaves standby
	// capacity for the farm autoscaler).
	InitialActive int
	// Control tunes every farm's controller (health interval, autoscale
	// watermarks).
	Control testbed.FarmControlConfig

	// Workload: each client machine runs one load generator per farm of
	// its tenant, targeting the farm VIP.
	ConnsPerGen int      // concurrent connections per generator (default 8)
	ReqPerConn  int      // requests per connection (default 50)
	FileSize    int      // response body bytes (default 64)
	Timeout     sim.Time // request timeout (default: the loadgen's own 2 s)

	// Observe attaches the message tracer (per-tier latency breakdowns).
	Observe bool

	// IPC tunes every member's modeled message rings (ring depth, doorbell
	// coalescing). Zero value: calibrated per-message doorbells.
	IPC testbed.IPCTuning
}

func (cfg *ClusterBedConfig) fillDefaults() {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Farms == 0 {
		cfg.Farms = 3
	}
	if cfg.MembersPerFarm == 0 {
		cfg.MembersPerFarm = 2
	}
	if cfg.ReplicasPerMember == 0 {
		cfg.ReplicasPerMember = 2
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 2
	}
	if cfg.Tenants > cfg.Farms {
		cfg.Tenants = cfg.Farms
	}
	if cfg.Tenants > cfg.Clients {
		cfg.Tenants = cfg.Clients
	}
	if cfg.ConnsPerGen == 0 {
		cfg.ConnsPerGen = 8
	}
	if cfg.ReqPerConn == 0 {
		cfg.ReqPerConn = 50
	}
	if cfg.FileSize == 0 {
		cfg.FileSize = 64
	}
}

// tenantName labels tenant t ("tenant0", "tenant1", ...).
func tenantName(t int) string { return fmt.Sprintf("tenant%d", t) }

// clusterFarmPort is farm fi's service port (all members listen on it;
// clients dial VIP:port).
func clusterFarmPort(fi int) uint16 { return uint16(8000 + fi) }

// ClusterBed is an instantiated cluster ready to measure.
type ClusterBed struct {
	Cfg     ClusterBedConfig
	Sim     *sim.Simulator
	Cluster *testbed.Cluster
	// Webs[farm][member] is the member's web server.
	Webs [][]*app.HTTPD
	// Gens are all load generators, grouped client-major then farm-major
	// (GenFarm maps each to its target farm index).
	Gens    []*app.Loadgen
	GenFarm []int
	Trace   *trace.Tracer
}

// NewClusterBed builds and boots a cluster configuration.
func NewClusterBed(cfg ClusterBedConfig) (*ClusterBed, error) {
	cfg.fillDefaults()
	s := sim.New(cfg.Seed)
	if cfg.PDESWorkers > 0 {
		// Must precede machine creation: every machine built afterwards
		// (the switch included) gets its own event-queue domain.
		s.EnablePDES(cfg.PDESWorkers)
	}
	var tr *trace.Tracer
	if cfg.Observe {
		tr = trace.New().Attach(s)
	}

	spec := testbed.ClusterSpec{}
	for fi := 0; fi < cfg.Farms; fi++ {
		// The member machine: driver core 0, SYSCALL core 1, replicas
		// from core 2, the web server above them.
		cores := 2 + cfg.ReplicasPerMember + 1
		if cores < 12 {
			cores = 12
		}
		spec.Farms = append(spec.Farms, testbed.FarmSpec{
			Name:          fmt.Sprintf("farm%d", fi),
			Tenant:        tenantName(fi % cfg.Tenants),
			Members:       cfg.MembersPerFarm,
			InitialActive: cfg.InitialActive,
			Host:          testbed.HostConfig{Cores: cores},
			NEaT: testbed.NEaTConfig{
				Slots:   testbed.SingleSlots(2, cfg.ReplicasPerMember),
				Syscall: testbed.ThreadLoc{Core: 1},
				IPC:     cfg.IPC,
			},
			Control: cfg.Control,
		})
	}
	for k := 0; k < cfg.Clients; k++ {
		spec.Clients = append(spec.Clients, testbed.ClientSpec{
			Tenant: tenantName(k % cfg.Tenants),
			Stacks: 1, // one stack per client machine: connect placement is draw-free
		})
	}
	cluster, err := testbed.NewCluster(s, spec)
	if err != nil {
		return nil, err
	}
	b := &ClusterBed{Cfg: cfg, Sim: s, Cluster: cluster, Trace: tr}

	// One web server per farm member, on the core above the replicas,
	// listening on the farm port. Every member of a farm serves the same
	// file — they are interchangeable backends.
	webCore := 2 + cfg.ReplicasPerMember
	for fi, farm := range cluster.Farms {
		var row []*app.HTTPD
		for mi, m := range farm.Members {
			h := app.NewHTTPD(m.Host.Thread(testbed.ThreadLoc{Core: webCore}),
				fmt.Sprintf("lighttpd-f%dm%d", fi, mi), m.Sys.SyscallProc(),
				ipc.DefaultCosts(), app.HTTPDConfig{
					Port:             clusterFarmPort(fi),
					Files:            map[string]int{"/file": cfg.FileSize},
					CyclesPerRequest: AppCyclesPerRequest,
				})
			h.Start()
			row = append(row, h)
		}
		b.Webs = append(b.Webs, row)
	}
	s.RunFor(2 * sim.Millisecond)
	for fi, row := range b.Webs {
		for mi, h := range row {
			if !h.Ready() {
				return nil, fmt.Errorf("experiments: farm %d member %d web failed to listen", fi, mi)
			}
		}
	}

	// Load generators: client k runs one per farm of its tenant,
	// targeting the farm VIP — the L4 service on the switch spreads its
	// flows across the farm members. Each generator walks its own fixed
	// local-port range: generators sharing a client stack would otherwise
	// race for the ephemeral allocator, making the k-th connection's
	// 4-tuple (and so its farm-member placement) depend on event
	// interleaving — the one thing that may differ between the
	// sequential and PDES engines.
	for k, cl := range cluster.Clients {
		genCore := 4 // client cores: 0 driver, 1 syscall, 2 stack, 3 spare
		for fi, farm := range cluster.Farms {
			if farm.Tenant != cl.Tenant {
				continue
			}
			lg := app.NewLoadgen(cl.Host.AppThread(genCore),
				fmt.Sprintf("httperf-c%df%d", k, fi), cl.Sys.SyscallProc(),
				ipc.DefaultCosts(), app.LoadgenConfig{
					Target: farm.VIP, Port: clusterFarmPort(fi), URI: "/file",
					Conns: cfg.ConnsPerGen, ReqPerConn: cfg.ReqPerConn,
					Timeout: cfg.Timeout,
					Ports:   sequentialPorts(uint16(20000 + len(b.Gens)*2048)),
				})
			b.Gens = append(b.Gens, lg)
			b.GenFarm = append(b.GenFarm, fi)
			genCore++
		}
	}
	return b, nil
}

// sequentialPorts is a local-port plan walking upward from base: the k-th
// connection of one generator always gets base+k, whatever the global
// event order. Ranges of 2048 per generator never collide within a run.
func sequentialPorts(base uint16) app.PortPlan {
	p := base
	return func() uint16 {
		port := p
		p++
		return port
	}
}

// Run starts the load, warms up, measures for window and returns the
// aggregate measurement.
func (b *ClusterBed) Run(warm, window sim.Time) Measurement {
	for _, g := range b.Gens {
		g.Start()
	}
	b.Sim.RunFor(warm)
	for _, g := range b.Gens {
		g.BeginMeasure()
	}
	b.Sim.RunFor(window)
	return measurementFrom(b.workloadRegistry(), window)
}

// workloadRegistry collects the generators' counters.
func (b *ClusterBed) workloadRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	good := r.Counter("loadgen.responses_good")
	raw := r.Counter("loadgen.window_responses")
	bytes := r.Counter("loadgen.window_bytes")
	errs := r.Counter("loadgen.conn_errors")
	lat := r.Histogram("loadgen.latency")
	for _, g := range b.Gens {
		st := g.Stats()
		good.Add(g.GoodResponses())
		raw.Add(st.WindowResponses)
		bytes.Add(st.WindowBytes)
		errs.Add(st.ConnErrors)
		lat.Merge(g.Latency())
	}
	return r
}

// FarmGoodput sums good responses per farm across generators.
func (b *ClusterBed) FarmGoodput() []uint64 {
	out := make([]uint64, len(b.Cluster.Farms))
	for i, g := range b.Gens {
		out[b.GenFarm[i]] += g.GoodResponses()
	}
	return out
}

// AggregateConns is the configured concurrent-connection total across all
// generators.
func (b *ClusterBed) AggregateConns() int { return len(b.Gens) * b.Cfg.ConnsPerGen }

// tier buckets one Breakdown span into the cluster's path tiers.
func clusterTier(sp *trace.Span) string {
	switch {
	case sp.Component == "wire":
		return "wire"
	case sp.Component == "switch":
		return "lb (switch + L4 steering)"
	case len(sp.Hop) >= 6 && sp.Hop[:6] == "client":
		return "client machines"
	case sp.Component == "nic" || sp.Component == "driver":
		return "farm machine (NIC + driver)"
	default:
		return "replica (stack + SYSCALL + app)"
	}
}

// clusterTierOrder fixes the render order along the request path.
var clusterTierOrder = []string{
	"client machines",
	"wire",
	"lb (switch + L4 steering)",
	"farm machine (NIC + driver)",
	"replica (stack + SYSCALL + app)",
}

// TierTable aggregates the traced per-hop breakdown into per-tier rows:
// client → wire → LB → farm machine → replica.
func (b *ClusterBed) TierTable(title string) *report.Table {
	type agg struct {
		count       uint64
		queue, proc metrics.Histogram
	}
	tiers := make(map[string]*agg)
	for _, sp := range b.Trace.Breakdown() {
		name := clusterTier(sp)
		a := tiers[name]
		if a == nil {
			a = &agg{}
			tiers[name] = a
		}
		a.count += sp.Count
		a.queue.Merge(&sp.Queue)
		a.proc.Merge(&sp.Proc)
	}
	t := &report.Table{
		Title:   title,
		Columns: []string{"tier", "traversals", "mean queued", "mean busy", "p99 queued"},
	}
	for _, name := range clusterTierOrder {
		a := tiers[name]
		if a == nil {
			continue
		}
		t.AddRow(name, a.count, a.queue.Mean(), a.proc.Mean(), a.queue.Quantile(0.99))
	}
	return t
}

// ClusterPoint is one rung of the connection ladder.
type ClusterPoint struct {
	ConnsPerGen int
	Aggregate   int // total concurrent connections across generators
	KRPS        float64
	Errors      uint64
	MeanLat     sim.Time
	P99Lat      sim.Time
	PerFarm     []uint64 // good responses per farm
}

// ClusterLadder runs the connection-count ladder: the same topology at
// increasing per-generator connection counts (each rung a fresh
// simulation, same seed). scale multiplies every rung — the -scale knob
// that turns the container-sized default into a machine-room run (at
// scale 8000 the top rung carries >1.1M aggregate connections).
func ClusterLadder(o Options, rungs []int, scale int) ([]ClusterPoint, error) {
	if scale < 1 {
		scale = 1
	}
	var out []ClusterPoint
	for _, r := range rungs {
		cfg := ClusterBedConfig{
			Seed:        o.seed(),
			PDESWorkers: o.PDESWorkers,
			ConnsPerGen: r * scale,
		}
		b, err := NewClusterBed(cfg)
		if err != nil {
			return nil, err
		}
		m := b.Run(o.farmWarm(), o.farmWindow())
		out = append(out, ClusterPoint{
			ConnsPerGen: cfg.ConnsPerGen,
			Aggregate:   b.AggregateConns(),
			KRPS:        m.KRPS,
			Errors:      m.Errors,
			MeanLat:     m.MeanLat,
			P99Lat:      m.P99Lat,
			PerFarm:     b.FarmGoodput(),
		})
	}
	return out, nil
}

// clusterRungs picks the ladder rungs for the options.
func clusterRungs(o Options) []int {
	if o.Quick {
		return []int{2, 4}
	}
	return []int{4, 8, 16}
}

// ClusterScale is the cluster campaign: the connection ladder plus a
// traced per-tier latency breakdown of the default point.
func ClusterScale(o Options) *Result {
	// Unlike the other PDES-aware campaigns, the title carries no
	// engine-mode tag: the whole report is byte-identical between the
	// sequential engine and PDES at any worker count, and the md5 oracle
	// in `make verify` depends on that.
	res := &Result{Name: "Cluster scale: L4-balanced NEaT farms behind a switch"}

	points, err := ClusterLadder(o, clusterRungs(o), o.clusterScale())
	if err != nil {
		res.Notef("ladder failed: %v", err)
		return res
	}
	probe, err := NewClusterBed(ClusterBedConfig{Seed: o.seed(), PDESWorkers: o.PDESWorkers})
	if err != nil {
		res.Notef("probe bed failed: %v", err)
		return res
	}
	lt := &report.Table{
		Title: fmt.Sprintf("connection ladder: %d farms × %d members × %d replicas, %d clients, %d tenants",
			probe.Cfg.Farms, probe.Cfg.MembersPerFarm, probe.Cfg.ReplicasPerMember,
			probe.Cfg.Clients, probe.Cfg.Tenants),
		Columns: []string{"conns/gen", "aggregate conns", "krps", "errors", "mean lat", "p99 lat", "per-farm good"},
	}
	for _, p := range points {
		lt.AddRow(p.ConnsPerGen, p.Aggregate, p.KRPS, p.Errors, p.MeanLat, p.P99Lat,
			fmt.Sprint(p.PerFarm))
	}
	res.Tables = append(res.Tables, lt)

	// Per-tier latency: a traced run of the default point. Tracing
	// serializes PDES domain execution but changes no behavior, so the
	// table is engine-independent like everything else here.
	tb, err := NewClusterBed(ClusterBedConfig{
		Seed: o.seed(), PDESWorkers: o.PDESWorkers, Observe: true,
	})
	if err != nil {
		res.Notef("traced bed failed: %v", err)
		return res
	}
	tb.Run(o.farmWarm(), o.farmWindow())
	res.Tables = append(res.Tables,
		tb.TierTable("per-tier latency: client → LB → farm machine → replica"))

	res.Notef("every farm member shares its farm VIP (direct-server-return); the switch L4 service rewrites only the destination MAC")
	res.Notef("tenant isolation: a tenant's clients resolve only its own VIPs, and each farm steers with its own placer over its own members")
	res.Notef("scale knob: -scale N multiplies every rung (the default fits a 1-CPU container; -scale 8000 puts >1.1M connections on the top rung)")
	return res
}
