package experiments

import (
	"fmt"

	"neat/internal/baseline"
	"neat/internal/report"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// Result is one reproduced experiment: its tables/figures plus notes
// comparing against the paper's reported numbers.
type Result struct {
	Name    string
	Tables  []*report.Table
	Figures []*report.Figure
	Notes   []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full result.
func (r *Result) String() string {
	out := "== " + r.Name + " ==\n"
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, f := range r.Figures {
		out += f.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// fullLinuxTuning is Table 1's best row.
var fullLinuxTuning = baseline.Tuning{SchedDeadline: true, Ethtool: true,
	IRQAffinity: true, RxAffinity: true, ServerPinning: true}

// Table1 reproduces the Linux tuning ladder: request rate per option set,
// 12 httperf instances, 1000 requests per connection, 20-byte file.
// Paper: defaults 184.1 — sched+eth+irqAff+rxAff 186.7 — +serv 224.0 krps.
func Table1(o Options) *Result {
	res := &Result{Name: "Table 1: Linux request rate per tuning option (AMD, 12 cores)"}
	tab := &report.Table{
		Title:   "Request rate breakdown per option tuned (paper: 184.1 / 186.7 / 224.0)",
		Columns: []string{"Option tuned", "krps", "paper krps"},
	}
	conns := 128
	if o.Quick {
		conns = 64
	}
	rows := []struct {
		label  string
		tuning baseline.Tuning
		paper  float64
	}{
		{"defaults", baseline.Tuning{}, 184.1},
		{"sched+eth+irqAff+rxAff", baseline.Tuning{SchedDeadline: true, Ethtool: true,
			IRQAffinity: true, RxAffinity: true}, 186.7},
		{"sched+eth+irqAff+rxAff+serv", fullLinuxTuning, 224.0},
	}
	outs := RunParallel(len(rows), o.workers(), func(i int) outcome {
		b, err := NewBed(BedConfig{
			PDESWorkers: o.PDESWorkers,
			Seed:        o.seed(), Machine: AMD,
			LinuxCores: 12, LinuxTuning: rows[i].tuning,
			WebLocs:     coreRange(0, 12),
			ConnsPerGen: conns, ReqPerConn: 1000,
		})
		if err != nil {
			return outcome{err: err}
		}
		return outcome{m: b.Run(o.warm(), o.window())}
	})
	for i, row := range rows {
		if outs[i].err != nil {
			res.Notef("%s: %v", row.label, outs[i].err)
			continue
		}
		tab.AddRow(row.label, outs[i].m.KRPS, row.paper)
	}
	res.Tables = append(res.Tables, tab)
	res.Notef("workload: 12 httperf instances, 1000 req/conn, 20 B file (§6.1)")
	return res
}

// amdFig7Config builds the Figure 7 bed for a config and web count. The
// AMD topology (Fig. 6): core 0 NIC driver, core 1 SYSCALL, stack cores
// next, lighttpd on the remaining cores.
func amdFig7Config(o Options, kind stack.Kind, replicas, webs, connsPerGen, reqPerConn, fileSize int) (Measurement, error) {
	stackCores := replicas
	if kind == stack.Multi {
		stackCores = 2 * replicas
	}
	slots := testbed.SingleSlots(2, replicas)
	if kind == stack.Multi {
		slots = testbed.MultiSlots(2, replicas)
	}
	// Like the paper, one core is reserved for the remaining OS processes
	// (§6.3), one for the NIC driver and one for SYSCALL: 9 cores remain
	// for the stack replicas and lighttpd.
	if 2+stackCores+webs > 11 {
		return Measurement{}, fmt.Errorf("config needs %d cores, AMD has 11 usable", 2+stackCores+webs)
	}
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        o.seed(), Machine: AMD, Kind: kind,
		ReplicaSlots: slots,
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(2+stackCores, webs),
		ConnsPerGen:  connsPerGen, ReqPerConn: reqPerConn,
		FileSize: fileSize,
	})
	if err != nil {
		return Measurement{}, err
	}
	return b.Run(o.warm(), o.window()), nil
}

// Figure7 reproduces the AMD scaling figure: request rate vs number of
// lighttpd instances for NEaT 2x/3x and Multi 1x/2x.
// Paper: Multi 1x linear to 4 instances; Multi 2x to 5; NEaT 2x comparable
// to Multi 2x; NEaT 3x scales to 6 instances at 302 krps (34.8 % above
// Linux's 224).
func Figure7(o Options) *Result {
	res := &Result{Name: "Figure 7: AMD — scaling lighttpd and the network stack"}
	fig := &report.Figure{Title: "Request rate vs lighttpd instances (AMD, 12 cores)",
		XLabel: "#lighttpd", YLabel: "krps"}

	configs := []struct {
		label    string
		kind     stack.Kind
		replicas int
		maxWebs  int
	}{
		{"NEaT 2x", stack.Single, 2, 6},
		{"NEaT 3x", stack.Single, 3, 6},
		{"Multi 1x", stack.Single /*placeholder*/, 1, 6},
		{"Multi 2x", stack.Multi, 2, 6},
	}
	configs[2].kind = stack.Multi

	// Measure all (config, webs) points concurrently; the out-of-cores
	// check runs before the bed is built, so points past a series' break
	// fail cheaply and the break-on-error assembly below matches the
	// sequential shape exactly.
	type job struct{ cfg, webs int }
	var jobs []job
	for ci, c := range configs {
		for w := 1; w <= c.maxWebs; w++ {
			jobs = append(jobs, job{ci, w})
		}
	}
	outs := RunParallel(len(jobs), o.workers(), func(i int) outcome {
		c := configs[jobs[i].cfg]
		m, err := amdFig7Config(o, c.kind, c.replicas, jobs[i].webs, 24, 100, 20)
		return outcome{m: m, err: err}
	})
	var neat3Peak float64
	j := 0
	for _, c := range configs {
		s := fig.NewSeries(c.label)
		for w := 1; w <= c.maxWebs; w++ {
			out := outs[j]
			j++
			if out.err != nil {
				j += c.maxWebs - w // out of cores: stop the series like the paper does
				break
			}
			s.Add(float64(w), out.m.KRPS)
		}
		if c.label == "NEaT 3x" {
			neat3Peak = s.MaxY()
		}
	}
	res.Figures = append(res.Figures, fig)
	res.Notef("NEaT 3x peak: %.1f krps (paper: 302); Linux best: see Table 1 (paper: 224)", neat3Peak)
	res.Notef("paper's headline: NEaT 3x handles 34.8%% more requests than Linux on the same hardware")
	return res
}

// Figure12 reproduces the single-request-per-connection comparison:
// five stack configurations under identical workloads, 1 request per
// connection (maximum per-connection TCP work). Paper y-range: 10-45 krps.
func Figure12(o Options) *Result {
	res := &Result{Name: "Figure 12: AMD — configurations under 1-request-per-connection load"}
	fig := &report.Figure{Title: "Request rate, 1 request per connection (AMD)",
		XLabel: "workload", YLabel: "krps"}

	workloads := []struct {
		x     float64
		label string
		webs  int
		conns int // per generator
	}{
		{8, "1srv,8", 1, 8},
		{16, "1srv,16", 1, 16},
		{32, "1srv,32", 1, 32},
		{64, "1srv,64", 1, 64},
		{132, "2srv,32", 2, 16}, // 32 connections split over 2 instances
		{164, "4srv,64", 4, 16}, // 64 connections split over 4 instances
	}
	configs := []struct {
		label    string
		kind     stack.Kind
		replicas int
	}{
		{"NEaT 1x", stack.Single, 1},
		{"NEaT 2x", stack.Single, 2},
		{"NEaT 3x", stack.Single, 3},
		{"Multi 1x", stack.Multi, 1},
		{"Multi 2x", stack.Multi, 2},
	}
	outs := RunParallel(len(configs)*len(workloads), o.workers(), func(i int) outcome {
		c := configs[i/len(workloads)]
		w := workloads[i%len(workloads)]
		m, err := amdFig7Config(o, c.kind, c.replicas, w.webs, w.conns, 1, 20)
		return outcome{m: m, err: err}
	})
	for ci, c := range configs {
		s := fig.NewSeries(c.label)
		for wi, w := range workloads {
			out := outs[ci*len(workloads)+wi]
			if out.err != nil {
				continue
			}
			s.Add(w.x, out.m.KRPS)
		}
	}
	res.Figures = append(res.Figures, fig)
	res.Notef("x axis encodes the test configuration: conns for 1 server; 2srv,32 and 4srv,64 as in the paper")
	res.Notef("paper: at light load (8 conns) Multi 1x beats Multi 2x (sleep latency); at higher loads more replicas win")
	return res
}

// coreRange builds n thread locs on consecutive cores (thread 0).
func coreRange(first, n int) []testbed.ThreadLoc {
	out := make([]testbed.ThreadLoc, n)
	for i := range out {
		out[i] = testbed.ThreadLoc{Core: first + i}
	}
	return out
}
