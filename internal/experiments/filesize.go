package experiments

import (
	"neat/internal/report"
	"neat/internal/sim"
)

// fileSizes is the sweep of Figures 4 and 5 (1 B to 10 MB).
var fileSizes = []int{1, 10, 100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20}

// fileSizePoint runs the Linux optimal configuration serving one file size
// and reports the measurement. Connection counts shrink for very large
// files to bound simulator memory (the server still saturates the link).
func fileSizePoint(o Options, size int) (Measurement, error) {
	conns := 96
	switch {
	case size >= 10<<20:
		conns = 2
	case size >= 1<<20:
		conns = 12
	case size >= 100<<10:
		conns = 24
	}
	if o.Quick {
		conns /= 2
		if conns == 0 {
			conns = 6
		}
	}
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        o.seed(), Machine: AMD,
		LinuxCores: 12, LinuxTuning: fullLinuxTuning,
		WebLocs:     coreRange(0, 12),
		ConnsPerGen: conns, ReqPerConn: 1000,
		FileSize: size, TSO: true,
		Timeout: 5 * sim.Second,
	})
	if err != nil {
		return Measurement{}, err
	}
	warm, window := o.warm(), o.window()
	switch {
	case size >= 10<<20:
		// A single 10 MB response takes hundreds of ms of link time per
		// connection: the window must cover several whole responses.
		warm, window = 3*warm, 12*window
	case size >= 1<<20:
		warm, window = 2*warm, 3*window
	}
	return b.Run(warm, window), nil
}

// Figure4 reproduces latency and total requests vs file size on the tuned
// Linux baseline. Paper: latency flat in the tens of ms for small files,
// rising dramatically between 100 KB and 1 MB as the link saturates, with
// the request count dropping accordingly.
func Figure4(o Options) *Result {
	res := &Result{Name: "Figure 4: latency and total requests vs file size (Linux optimal)"}
	fig := &report.Figure{Title: "Latency & requests vs requested file size",
		XLabel: "file size (bytes)", YLabel: "see series"}
	lat := fig.NewSeries("latency [ms]")
	reqs := fig.NewSeries("requests [kreq]")
	outs := RunParallel(len(fileSizes), o.workers(), func(i int) outcome {
		m, err := fileSizePoint(o, fileSizes[i])
		return outcome{m: m, err: err}
	})
	for i, size := range fileSizes {
		if outs[i].err != nil {
			res.Notef("%s: %v", report.Bytes(size), outs[i].err)
			continue
		}
		m := outs[i].m
		lat.Add(float64(size), float64(m.MeanLat)/float64(sim.Millisecond))
		reqs.Add(float64(size), float64(m.RawKRPS)*m.Window.Seconds())
	}
	res.Figures = append(res.Figures, fig)
	res.Notef("paper shape: latency rises sharply between 100K and 1M as the 10G link saturates")
	return res
}

// Figure5 reproduces throughput and request rate vs file size. Paper: the
// 10 Gb/s link becomes the bottleneck once the file size exceeds ≈7 KB;
// request rate falls hyperbolically past that point while throughput
// plateaus near line rate.
func Figure5(o Options) *Result {
	res := &Result{Name: "Figure 5: throughput and request rate vs file size (Linux optimal)"}
	fig := &report.Figure{Title: "Throughput & request rate vs requested file size",
		XLabel: "file size (bytes)", YLabel: "see series"}
	rate := fig.NewSeries("request rate [krps]")
	tput := fig.NewSeries("throughput [MB/s]")
	var crossover int
	outs := RunParallel(len(fileSizes), o.workers(), func(i int) outcome {
		m, err := fileSizePoint(o, fileSizes[i])
		return outcome{m: m, err: err}
	})
	for i, size := range fileSizes {
		if outs[i].err != nil {
			res.Notef("%s: %v", report.Bytes(size), outs[i].err)
			continue
		}
		m := outs[i].m
		rate.Add(float64(size), m.KRPS)
		tput.Add(float64(size), m.MBps)
		// Detect the size where the link rather than the CPU limits the
		// rate (payload throughput approaching the ~1.1 GB/s the 10G link
		// carries after header overheads).
		if crossover == 0 && m.MBps > 700 {
			crossover = size
		}
	}
	res.Figures = append(res.Figures, fig)
	if crossover > 0 {
		res.Notef("link saturation from %s (paper: bandwidth becomes the bottleneck past ≈7 KB)", report.Bytes(crossover))
	}
	res.Notef("paper shape: request rate ∝ 1/size once the 10 Gb/s link saturates")
	return res
}
