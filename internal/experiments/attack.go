package experiments

import (
	"fmt"

	"neat/internal/app"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// The goodput-under-attack campaign measures attack containment: every
// hostile-client archetype (internal/app/hostile.go) aimed at exactly one
// of four guarded replicas, under both placement policies. Aiming works by
// 4-tuple selection — the attacker (and each legitimate generator) fixes
// its local ports so the RSS flow hash lands on a chosen replica. Each
// generator is pinned to "its" replica the same way, so client-side
// goodput decomposes per replica and the campaign can report what the
// paper's isolation story predicts: the attacked replica absorbs the
// damage, the clean replicas' goodput is retained.
//
// Guards are on everywhere (bounded SYN backlog, header-progress deadline,
// idle deadline); the unguarded collapse is pinned by the unit tests in
// internal/app instead — without guards a SYN flood starves the listener
// and slowloris holds slots forever.

// attackKind enumerates the campaign's attack axis.
type attackKind int

const (
	attackNone attackKind = iota
	attackSlowloris
	attackSynFlood
	attackChurn
)

func (k attackKind) String() string {
	switch k {
	case attackNone:
		return "none"
	case attackSlowloris:
		return "slowloris"
	case attackSynFlood:
		return "synflood"
	case attackChurn:
		return "churn"
	}
	return "unknown"
}

// attackKinds is the report-order attack axis.
var attackKinds = []attackKind{attackNone, attackSlowloris, attackSynFlood, attackChurn}

// attackPolicies is the report-order placement axis: hash placement can be
// aimed at (the tuple determines the replica), least-loaded resists aiming
// (placement ignores the tuple), so the same attack diffuses.
var attackPolicies = []steer.PolicyKind{steer.PolicyHash, steer.PolicyLeastLoaded}

// AimedPorts returns a deterministic PortPlan yielding monotonically
// increasing local ports whose flow hash places {src, dst, port, dstPort}
// on replica slot of slots under hash placement (QueueFor =
// active[hash%slots]). Plans walking the same (dst, dstPort) tuple space
// must start in disjoint ranges so the client stack never sees a local
// port collide.
func AimedPorts(src, dst proto.Addr, dstPort uint16, slots, slot int, start uint16) app.PortPlan {
	p := uint32(start)
	return func() uint16 {
		for {
			p++
			port := uint16(p)
			if port < 1024 {
				p = 1024
				port = 1024
			}
			f := proto.Flow{Src: src, Dst: dst, SrcPort: port, DstPort: dstPort, Proto: proto.ProtoTCP}
			if int(f.Hash())%slots == slot {
				return port
			}
		}
	}
}

// AimedSpoof returns a SYN-flood spoofing plan cycling 50 unassigned
// in-subnet source addresses, with each source port chosen so the spoofed
// flow hashes onto replica slot of slots.
func AimedSpoof(dst proto.Addr, dstPort uint16, slots, slot int) func(uint64) (proto.Addr, uint16) {
	return func(i uint64) (proto.Addr, uint16) {
		src := dst
		src[3] = byte(200 + i%50)
		p := uint16(1024 + (i*7919)%60000)
		for {
			f := proto.Flow{Src: src, Dst: dst, SrcPort: p, DstPort: dstPort, Proto: proto.ProtoTCP}
			if int(f.Hash())%slots == slot {
				return src, p
			}
			p++
			if p < 1024 {
				p = 1024
			}
		}
	}
}

// attackOut is one cell's measurement, decomposed by generator aim.
type attackOut struct {
	total        Measurement
	attackedKRPS float64 // generator aimed at the attacked replica
	cleanKRPS    float64 // generators aimed at the three clean replicas
	cleanP99     sim.Time
	guard        tcpeng.Stats
	accepted     []uint64
	embryonic    int // half-open PCBs resident when the window closed
	err          error
}

// attackGuard is the campaign's guard configuration: tight enough to
// engage within a quick measurement window, loose enough that the
// header-progress floor sits below one legitimate request head (~32 bytes)
// delivered in a single segment.
func attackGuard() tcpeng.GuardConfig {
	return tcpeng.GuardConfig{
		SynBacklog:     64,
		HeaderDeadline: 20 * sim.Millisecond,
		HeaderMinBytes: 24,
		IdleDeadline:   50 * sim.Millisecond,
	}
}

// attackRun measures one (attack, policy) cell: 4 guarded single-component
// replicas, 4 aimed generators, the attack aimed at replica 0 (k=1 of
// N=4).
func attackRun(o Options, kind attackKind, policy steer.PolicyKind) attackOut {
	return attackRunGuard(o, kind, policy, attackGuard(), attackTuning{})
}

// attackTuning adjusts an attack's intensity beyond the hostile-client
// defaults (zero values keep them).
type attackTuning struct {
	floodBurst    int      // SYNs per flood interval
	floodInterval sim.Time // flood burst pacing
}

// attackRunGuard is attackRun with an explicit guard configuration and
// attack tuning — the SYN-cookie comparison swaps the handshake defense
// (and turns the flood up) while keeping the rest of the cell identical.
func attackRunGuard(o Options, kind attackKind, policy steer.PolicyKind, guard tcpeng.GuardConfig, tune attackTuning) attackOut {
	const replicas = 4
	srvIP := proto.IPv4(10, 0, 0, 1) // testbed.DefaultAMDHost
	cliIP := proto.IPv4(10, 0, 0, 2) // testbed.DefaultClientHost
	// Generator i walks ports from 1024+i*4096 aimed at replica i; the
	// attacks walk disjoint high ranges of web 0's tuple space.
	plans := make([]app.PortPlan, replicas)
	for i := range plans {
		plans[i] = AimedPorts(cliIP, srvIP, uint16(8000+i), replicas, i, uint16(1024+i*4096))
	}
	cfg := BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        o.seed(), Machine: AMD, Kind: stack.Single,
		ReplicaSlots: testbed.SingleSlots(2, replicas),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(2+replicas, replicas),
		ConnsPerGen:  8, ReqPerConn: 100,
		Timeout:  100 * sim.Millisecond,
		Steering: steer.Config{Policy: policy},
		Guard:    guard,
		GenPorts: plans,
	}
	b, err := NewBed(cfg)
	if err != nil {
		return attackOut{err: err}
	}

	// Mount the attack on a free client core, against web 0's port, aimed
	// at replica 0.
	atkCore := 2 + 2*replicas
	switch kind {
	case attackNone:
	case attackSlowloris:
		app.NewSlowloris(b.Client.AppThread(atkCore), "slowloris",
			b.CliSys.SyscallProc(), ipc.DefaultCosts(), app.SlowlorisConfig{
				Target: srvIP, Port: 8000, Conns: 24,
				Ports: AimedPorts(cliIP, srvIP, 8000, replicas, 0, 50000),
			}).Start()
	case attackSynFlood:
		app.NewSYNFlood(b.Client.AppThread(atkCore), "synflood",
			b.Client.Driver.Proc(), ipc.DefaultCosts(), app.SYNFloodConfig{
				Target: srvIP, TargetMAC: b.Server.MAC, SrcMAC: b.Client.MAC,
				Port:     8000,
				Burst:    tune.floodBurst,
				Interval: tune.floodInterval,
				Spoof:    AimedSpoof(srvIP, 8000, replicas, 0),
			}).Start()
	case attackChurn:
		// A short hold bounds the churn rate (and so the port budget) while
		// still burning handshake work and connection slots.
		app.NewConnChurn(b.Client.AppThread(atkCore), "churn",
			b.CliSys.SyscallProc(), ipc.DefaultCosts(), app.ConnChurnConfig{
				Target: srvIP, Port: 8000, Conns: 16, Hold: 2 * sim.Millisecond,
				Ports: AimedPorts(cliIP, srvIP, 8000, replicas, 0, 40000),
			}).Start()
	}

	out := attackOut{total: b.Run(o.warm(), o.window())}
	window := o.window()
	out.attackedKRPS = metrics.KRate(b.Gens[0].GoodResponses(), window)
	var cleanGood uint64
	var cleanLat metrics.Histogram
	for _, g := range b.Gens[1:] {
		cleanGood += g.GoodResponses()
		cleanLat.Merge(g.Latency())
	}
	out.cleanKRPS = metrics.KRate(cleanGood, window)
	out.cleanP99 = cleanLat.Quantile(0.99)
	for _, r := range b.NEaT.Replicas() {
		st := r.TCP().Stats()
		out.guard.SynShed += st.SynShed
		out.guard.SlowlorisReaped += st.SlowlorisReaped
		out.guard.SrcCapped += st.SrcCapped
		out.guard.DroppedSynBacklog += st.DroppedSynBacklog
		out.guard.SynCookiesSent += st.SynCookiesSent
		out.guard.SynCookiesValidated += st.SynCookiesValidated
		out.guard.SynCookiesRejected += st.SynCookiesRejected
		out.accepted = append(out.accepted, st.AcceptedConns)
		out.embryonic += r.TCP().EmbryonicConns()
	}
	return out
}

// GoodputUnderAttack runs the full campaign: every attack kind × placement
// policy, same seed per cell, and reports clean-replica goodput retention
// against the attack-free cell of the same policy.
func GoodputUnderAttack(o Options) *Result {
	res := &Result{Name: "Goodput under attack: hostile clients aimed at 1 of 4 guarded replicas"}

	type cell struct {
		kind   attackKind
		policy steer.PolicyKind
	}
	var cells []cell
	for _, p := range attackPolicies {
		for _, k := range attackKinds {
			cells = append(cells, cell{kind: k, policy: p})
		}
	}
	outs := RunParallel(len(cells), o.workers(), func(i int) attackOut {
		return attackRun(o, cells[i].kind, cells[i].policy)
	})

	// Retention baseline: the attack-free cell of the same policy.
	baseClean := map[steer.PolicyKind]float64{}
	for i, c := range cells {
		if c.kind == attackNone && outs[i].err == nil {
			baseClean[c.policy] = outs[i].cleanKRPS
		}
	}

	tab := &report.Table{
		Title: "Clean-replica goodput retention per attack (guards on; attack aimed at replica 0)",
		Columns: []string{"attack", "policy", "total krps", "attacked krps",
			"clean krps", "retention", "clean p99", "errors", "shed/reaped/dropped",
			"accepted/replica"},
	}
	for i, c := range cells {
		out := outs[i]
		if out.err != nil {
			tab.AddRow(c.kind.String(), c.policy.String(), "-", "-", "-", "-", "-",
				out.err.Error(), "-", "-")
			continue
		}
		retention := "-"
		if base := baseClean[c.policy]; base > 0 && c.kind != attackNone {
			retention = fmt.Sprintf("%.0f%%", 100*out.cleanKRPS/base)
		}
		tab.AddRow(c.kind.String(), c.policy.String(),
			fmt.Sprintf("%.1f", out.total.KRPS),
			fmt.Sprintf("%.1f", out.attackedKRPS),
			fmt.Sprintf("%.1f", out.cleanKRPS),
			retention,
			fmt.Sprintf("%v", out.cleanP99),
			out.total.Errors,
			fmt.Sprintf("%d/%d/%d", out.guard.SynShed, out.guard.SlowlorisReaped,
				out.guard.DroppedSynBacklog),
			joinCounts(out.accepted))
	}
	res.Tables = append(res.Tables, tab)
	res.Tables = append(res.Tables, synCookieComparison(o))
	res.Notef("attacks and generators aim by 4-tuple: local ports are chosen so the RSS flow hash lands on the intended replica")
	res.Notef("generator i is pinned to replica i, so \"clean krps\" is the goodput of the three unattacked replicas")
	res.Notef("retention = clean krps / clean krps of the attack-free cell under the same policy")
	res.Notef("guards: SYN backlog %d (oldest-first shed), header deadline %v (min %d B), idle deadline %v",
		attackGuard().SynBacklog, attackGuard().HeaderDeadline,
		attackGuard().HeaderMinBytes, attackGuard().IdleDeadline)
	res.Notef("least-loaded placement resists aiming (placement ignores the tuple), so the attack diffuses across replicas — as does the generators' pinning")
	res.Notef("SYN cookies: the flood cell re-run with stateless handshake offload instead of backlog shedding — no half-open PCB survives the window and the attacked replica keeps serving")
	return res
}

// synCookieComparison re-runs the aimed SYN-flood cell under two handshake
// defenses: the campaign's backlog-shedding baseline and stateless
// SYN-cookie offload. Cookies hold the victim's PCB table free of
// embryonic entries (a flood SYN allocates nothing), so the attacked
// replica's goodput recovers toward the attack-free level.
func synCookieComparison(o Options) *report.Table {
	// Both rows share a tight 16-slot backlog and a flood hot enough
	// (160k SYN/s) that oldest-first shedding recycles legitimate half-open
	// slots before their ACK returns — the regime the stateless handshake
	// is for. Hotter floods saturate the replica's CPU instead, where no
	// handshake defense can win back goodput.
	shedGuard := attackGuard()
	shedGuard.SynBacklog = 16
	cookieGuard := shedGuard
	cookieGuard.SynCookies = true
	cookieGuard.SynCookieWatermark = -1 // force cookies for every SYN
	guards := []struct {
		name string
		cfg  tcpeng.GuardConfig
	}{
		{"backlog shed", shedGuard},
		{"syn cookies", cookieGuard},
	}
	tune := attackTuning{floodBurst: 4, floodInterval: 25 * sim.Microsecond}
	outs := RunParallel(len(guards), o.workers(), func(i int) attackOut {
		return attackRunGuard(o, attackSynFlood, steer.PolicyHash, guards[i].cfg, tune)
	})
	tab := &report.Table{
		Title: "SYN-flood handshake defense: backlog shedding vs stateless cookies (hash placement, aimed at replica 0)",
		Columns: []string{"defense", "total krps", "attacked krps", "clean krps",
			"errors", "shed/dropped", "cookies sent/valid/rej", "embryonic@end"},
	}
	for i, g := range guards {
		out := outs[i]
		if out.err != nil {
			tab.AddRow(g.name, "-", "-", "-", out.err.Error(), "-", "-", "-")
			continue
		}
		tab.AddRow(g.name,
			fmt.Sprintf("%.1f", out.total.KRPS),
			fmt.Sprintf("%.1f", out.attackedKRPS),
			fmt.Sprintf("%.1f", out.cleanKRPS),
			out.total.Errors,
			fmt.Sprintf("%d/%d", out.guard.SynShed, out.guard.DroppedSynBacklog),
			fmt.Sprintf("%d/%d/%d", out.guard.SynCookiesSent,
				out.guard.SynCookiesValidated, out.guard.SynCookiesRejected),
			fmt.Sprintf("%d", out.embryonic))
	}
	return tab
}
