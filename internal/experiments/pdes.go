package experiments

import (
	"fmt"
	"runtime"
	"time"

	"neat/internal/app"
	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// The PDES benches exercise the conservative parallel simulation mode on a
// topology it is designed for: a farm of independent (server, client)
// machine pairs, each pair joined by its own 10G link, all inside one
// simulation. With 2×pairs machines the coordinator has 2×pairs domains to
// spread over its workers; each domain only ever talks to its link peer,
// so the wire lookahead bounds every window.
//
// PDESFarm is the deterministic campaign (its rendered report is
// byte-identical for any worker count — the determinism test compares
// workers=1 against workers=4); PDESScaling is the wall-clock ladder
// recorded in BENCH_pr6.json.

// farmPair is one (server, client) machine pair of the farm.
type farmPair struct {
	srv, cli *testbed.Host
	sys      *core.System
	clisys   *core.System
	web      *app.HTTPD
	gen      *app.Loadgen
}

// farm is a multi-pair testbed sharing one simulator.
type farm struct {
	sim   *sim.Simulator
	pairs []*farmPair
}

func farmPairCount(o Options) int {
	if o.Quick {
		return 4
	}
	return 6
}

func (o Options) farmWarm() sim.Time {
	if o.Quick {
		return 5 * sim.Millisecond
	}
	return 15 * sim.Millisecond
}

func (o Options) farmWindow() sim.Time {
	if o.Quick {
		return 10 * sim.Millisecond
	}
	return 40 * sim.Millisecond
}

// newFarm builds the farm: pairs (server, client) machine pairs, one link
// each, on a single simulator. pdesWorkers > 0 enables PDES with that many
// workers; 0 keeps the sequential global event loop.
func newFarm(seed int64, pairs, pdesWorkers int) (*farm, error) {
	s := sim.New(seed)
	if pdesWorkers > 0 {
		s.EnablePDES(pdesWorkers)
	}
	f := &farm{sim: s}
	tcp := tcpeng.DefaultConfig()
	for i := 0; i < pairs; i++ {
		n := testbed.NewOn(s)
		// Small hosts: driver on core 0, SYSCALL on core 1, one replica on
		// core 2, the application on core 3. The farm's parallelism comes
		// from the number of pairs, not the size of each machine.
		srv := n.AddHost(testbed.HostConfig{
			Name: fmt.Sprintf("srv%d", i), Side: 0, Cores: 4, ThreadsPerCore: 1,
			FreqHz: 1_900_000_000, Queues: 1,
			IP:     proto.IPv4(10, 0, 0, 1),
			MAC:    proto.MAC{0x02, 0xFA, 0, 0, byte(i), 0x01},
			Driver: testbed.ThreadLoc{Core: 0},
		})
		cli := n.AddHost(testbed.HostConfig{
			Name: fmt.Sprintf("cli%d", i), Side: 1, Cores: 4, ThreadsPerCore: 1,
			FreqHz: 3_000_000_000, Queues: 1,
			IP:     proto.IPv4(10, 0, 0, 2),
			MAC:    proto.MAC{0x02, 0xFA, 0, 0, byte(i), 0x02},
			Driver: testbed.ThreadLoc{Core: 0},
		})
		scfg := srv.StackConfig(stack.Single, tcp, cli)
		scfg.Costs = ServerStackCosts()
		sys, err := srv.BuildNEaT(cli, testbed.NEaTConfig{
			Kind: stack.Single, TCP: tcp,
			Slots:   testbed.SingleSlots(2, 1),
			Syscall: testbed.ThreadLoc{Core: 1},
			Stack:   &scfg,
		})
		if err != nil {
			return nil, fmt.Errorf("pdes farm pair %d server: %w", i, err)
		}
		clisys, err := cli.BuildClientSystem(srv, 1, tcpeng.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("pdes farm pair %d client: %w", i, err)
		}
		web := app.NewHTTPD(srv.Thread(testbed.ThreadLoc{Core: 3}),
			fmt.Sprintf("lighttpd%d", i), sys.SyscallProc(),
			ipc.DefaultCosts(), app.HTTPDConfig{
				Port:             8000,
				Files:            map[string]int{"/file": 20},
				CyclesPerRequest: AppCyclesPerRequest,
			})
		web.Start()
		gen := app.NewLoadgen(cli.AppThread(3), fmt.Sprintf("httperf%d", i),
			clisys.SyscallProc(), ipc.DefaultCosts(), app.LoadgenConfig{
				Target: srv.IP, Port: 8000, URI: "/file",
				Conns: 8, ReqPerConn: 100,
			})
		f.pairs = append(f.pairs, &farmPair{
			srv: srv, cli: cli, sys: sys, clisys: clisys, web: web, gen: gen,
		})
	}
	s.RunFor(2 * sim.Millisecond)
	for i, p := range f.pairs {
		if !p.web.Ready() {
			return nil, fmt.Errorf("pdes farm pair %d: lighttpd failed to listen", i)
		}
	}
	return f, nil
}

// run drives the whole farm: start every generator, warm up, measure.
func (f *farm) run(warm, window sim.Time) {
	for _, p := range f.pairs {
		p.gen.Start()
	}
	f.sim.RunFor(warm)
	for _, p := range f.pairs {
		p.gen.BeginMeasure()
	}
	f.sim.RunFor(window)
}

// table renders the deterministic per-pair report.
func (f *farm) table(window sim.Time) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("PDES farm: %d machine pairs, %v measurement window", len(f.pairs), window),
		Columns: []string{"pair", "krps", "errors", "server events", "client events"},
	}
	var totalKRPS float64
	_, _, doms := f.sim.PDESStats()
	events := map[string]uint64{}
	for _, d := range doms {
		events[d.Name] = d.Events
	}
	for i, p := range f.pairs {
		st := p.gen.Stats()
		krps := metrics.KRate(p.gen.GoodResponses(), window)
		totalKRPS += krps
		t.AddRow(fmt.Sprintf("srv%d/cli%d", i, i), krps, st.ConnErrors,
			events[fmt.Sprintf("srv%d", i)], events[fmt.Sprintf("cli%d", i)])
	}
	t.AddRow("total", totalKRPS, "", "", "")
	return t
}

// PDESFarm runs the farm once and reports per-pair goodput plus
// coordinator statistics. The rendered result is byte-identical for every
// PDESWorkers >= 1 (that is the determinism contract the verify suite
// pins); PDESWorkers == 0 runs the same topology on the sequential global
// event loop, which interleaves RNG streams differently and is therefore a
// different (also deterministic) schedule.
func PDESFarm(o Options) *Result {
	mode := "sequential (global event loop)"
	if o.PDESWorkers > 0 {
		mode = fmt.Sprintf("PDES, %d workers", o.PDESWorkers)
	}
	res := &Result{Name: "PDES farm: independent server/client pairs, one simulation (" + mode + ")"}
	f, err := newFarm(o.seed(), farmPairCount(o), o.PDESWorkers)
	if err != nil {
		res.Notef("farm failed: %v", err)
		return res
	}
	f.run(o.farmWarm(), o.farmWindow())
	res.Tables = append(res.Tables, f.table(o.farmWindow()))
	if barriers, horizon, doms := f.sim.PDESStats(); doms != nil {
		res.Notef("coordinator: %d domains, %d barriers, %v lookahead horizon",
			len(doms), barriers, horizon)
		res.Notef("windows advance all domains in parallel up to the wire lookahead (min-frame serialization + propagation)")
	}
	res.Notef("pairs only talk across their own link, so per-domain event counts are independent of the worker count")
	return res
}

// ScalingPoint is one row of the PDES scaling ladder.
type ScalingPoint struct {
	Workers     int     // 0 = sequential global event loop
	WallSeconds float64 // wall-clock time to build and run the farm
	KRPS        float64 // total farm goodput (sanity: identical for workers >= 1)
}

// PDESScalingLadder times the same farm run at each worker count and
// returns the points (for BENCH_pr6.json) — workers=0 is the sequential
// baseline. Wall-clock speedup beyond workers=1 requires real CPUs; on a
// single-core host the ladder degenerates to the coordination overhead.
func PDESScalingLadder(o Options, workerCounts []int) ([]ScalingPoint, error) {
	pairs := farmPairCount(o)
	var out []ScalingPoint
	for _, w := range workerCounts {
		start := time.Now()
		f, err := newFarm(o.seed(), pairs, w)
		if err != nil {
			return nil, err
		}
		f.run(o.farmWarm(), o.farmWindow())
		wall := time.Since(start).Seconds()
		var total float64
		for _, p := range f.pairs {
			total += metrics.KRate(p.gen.GoodResponses(), o.farmWindow())
		}
		out = append(out, ScalingPoint{Workers: w, WallSeconds: wall, KRPS: total})
	}
	return out, nil
}

// PDESScaling renders the scaling ladder as a result table.
func PDESScaling(o Options) *Result {
	res := &Result{Name: "PDES scaling: wall-clock time vs worker count (same farm, same seed)"}
	points, err := PDESScalingLadder(o, []int{0, 1, 2, 4})
	if err != nil {
		res.Notef("ladder failed: %v", err)
		return res
	}
	t := &report.Table{
		Title:   fmt.Sprintf("farm of %d pairs on a %d-CPU host", farmPairCount(o), runtime.NumCPU()),
		Columns: []string{"workers", "wall (s)", "speedup vs 1 worker", "total krps"},
	}
	var base float64
	for _, p := range points {
		if p.Workers == 1 {
			base = p.WallSeconds
		}
	}
	for _, p := range points {
		label := fmt.Sprint(p.Workers)
		if p.Workers == 0 {
			label = "seq"
		}
		speedup := "-"
		if base > 0 && p.Workers >= 1 {
			speedup = fmt.Sprintf("%.2fx", base/p.WallSeconds)
		}
		t.AddRow(label, fmt.Sprintf("%.2f", p.WallSeconds), speedup, p.KRPS)
	}
	res.Tables = append(res.Tables, t)
	res.Notef("host has %d CPUs (runtime.NumCPU); speedup above 1x requires at least as many CPUs as workers", runtime.NumCPU())
	res.Notef("goodput is identical across worker counts >= 1: the schedule is deterministic, only the wall clock changes")
	return res
}
