package experiments

import (
	"fmt"
	"strings"

	"neat/internal/core"
	"neat/internal/faultinject"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/testbed"
	"neat/internal/trace"
)

// The fault-matrix campaign extends the paper's Table 3 along two axes:
//
//   - fault kinds: besides crashes, processes can hang (livelock — alive
//     but draining nothing, invisible to the crash oracle the paper's
//     methodology assumes) or suffer a crash storm (the same component
//     dies again as soon as it is respawned);
//   - fault surface: besides the stack replicas, the singleton NIC driver
//     and SYSCALL server are injectable — a fault there takes down the
//     whole data or control plane until the service is respawned.
//
// Every matrix run therefore uses watchdog (heartbeat) failure detection
// instead of the instantaneous oracle: hangs are only detectable that
// way, and storms exercise the escalation ladder (component restart →
// whole-replica rebuild → slot quarantine) end to end.

// matrixKinds and matrixComps enumerate the campaign cells in report order.
var matrixKinds = []faultinject.Kind{
	faultinject.KindCrash, faultinject.KindHang, faultinject.KindStorm,
}

var matrixComps = []string{"pf", "ip", "udp", "tcp", "driver", "syscall"}

// Storm cadence: enough strikes, spaced tighter than the sliding window,
// to drive a replica slot past MaxRestarts.
const (
	stormStrikes = 9
	stormGap     = 3 * sim.Millisecond
)

// matrixOut classifies one fault-matrix run.
type matrixOut struct {
	ok        bool // bed built, fault injected, service reachable at the end
	detected  bool
	detectLat sim.Time // mean failure-onset → declaration latency
	outcome   string
}

// Matrix outcome labels (fixed order for deterministic report assembly).
var matrixOutcomes = []string{"transparent", "tcp lost", "quarantined", "plane recovered", "none"}

// FaultMatrix runs the extended fault-injection campaign: every fault
// kind against every component of the plane, R runs each, reported as an
// extended Table 3.
func FaultMatrix(o Options) *Result {
	res := &Result{Name: "Fault matrix: kind × component campaign under watchdog detection"}
	runsPer := 3
	observe := 150 * sim.Millisecond
	if o.Quick {
		runsPer = 1
		observe = 70 * sim.Millisecond
	}

	type cell struct {
		kind faultinject.Kind
		comp string
	}
	var cells []cell
	for _, k := range matrixKinds {
		for _, c := range matrixComps {
			cells = append(cells, cell{kind: k, comp: c})
		}
	}

	outs := RunParallel(len(cells)*runsPer, o.workers(), func(i int) matrixOut {
		c := cells[i/runsPer]
		seed := o.seed() + int64(i)
		return matrixRun(o, seed, c.kind, c.comp, observe)
	})

	tab := &report.Table{
		Title: fmt.Sprintf("Recovery outcome per fault kind × component (%d runs per cell)", runsPer),
		Columns: []string{"kind", "component", "runs", "reachable", "detected",
			"mean detect", "outcomes"},
	}
	var unreachable int
	var latSum sim.Time
	var latN int
	for ci, c := range cells {
		var reach, det int
		var lat sim.Time
		counts := map[string]int{}
		for r := 0; r < runsPer; r++ {
			out := outs[ci*runsPer+r]
			if out.ok {
				reach++
			} else {
				unreachable++
			}
			if out.detected {
				det++
			}
			lat += out.detectLat
			counts[out.outcome]++
		}
		latSum += lat
		latN += runsPer
		var parts []string
		for _, name := range matrixOutcomes {
			if n := counts[name]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s×%d", name, n))
			}
		}
		tab.AddRow(c.kind.String(), c.comp, runsPer, reach, det,
			fmt.Sprintf("%v", lat/sim.Time(runsPer)), strings.Join(parts, " "))
	}
	res.Tables = append(res.Tables, tab)
	if unreachable > 0 {
		res.Notef("%d runs left the server unreachable — recovery failed", unreachable)
	} else {
		res.Notef("after every fault (including hangs and storms) the server was reachable again")
	}
	res.Notef("mean detection latency across the campaign: %v (watchdog interval 100µs, K=3)",
		latSum/sim.Time(latN))
	return res
}

// matrixRun executes one fault-matrix run: boot a watchdog-supervised
// multi-component bed under web load, inject one (kind, component) fault,
// observe, and classify the recovery.
func matrixRun(o Options, seed int64, kind faultinject.Kind, comp string, observe sim.Time) matrixOut {
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        seed, Machine: AMD, Kind: stack.Multi,
		ReplicaSlots: testbed.MultiSlots(2, 2),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(6, 2),
		ConnsPerGen:  16, ReqPerConn: 100,
		Timeout:  150 * sim.Millisecond,
		Watchdog: core.WatchdogConfig{Enabled: true},
	})
	if err != nil {
		return matrixOut{outcome: "none"}
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Net.Sim.RunFor(20 * sim.Millisecond)

	inj := faultinject.New(b.Net.Sim.Rand(), faultinject.MatrixComponents)
	injection, ok := inj.InjectKind(b.NEaT, kind, comp)
	if !ok {
		return matrixOut{outcome: "none"}
	}
	if kind == faultinject.KindStorm {
		// Keep striking the same component: every respawned incarnation is
		// killed again until the escalation ladder fences the slot (or, for
		// the singleton services, until the storm ends and backoff drains).
		var strike func(left int)
		strike = func(left int) {
			if left == 0 {
				return
			}
			faultinject.ReInject(b.NEaT, injection)
			b.Net.Sim.After(stormGap, func() { strike(left - 1) })
		}
		b.Net.Sim.After(stormGap, func() { strike(stormStrikes - 1) })
	}
	b.Net.Sim.RunFor(observe)

	// Reachability: responses must still be flowing at the end.
	var before uint64
	for _, g := range b.Gens {
		before += g.Stats().ResponsesOK
	}
	b.Net.Sim.RunFor(40 * sim.Millisecond)
	var after uint64
	for _, g := range b.Gens {
		after += g.Stats().ResponsesOK
	}

	var out matrixOut
	out.ok = after > before
	st := b.NEaT.Stats()
	wst := b.NEaT.Watchdog().Stats()
	out.detected = wst.CrashesDetected+wst.HangsDetected+wst.SpuriousDetected > 0
	out.detectLat = b.NEaT.Watchdog().DetectionLatency().Mean()
	switch {
	case st.SlotsQuarantined > 0:
		out.outcome = "quarantined"
	case st.DriverRecoveries > 0 || st.SyscallRecoveries > 0:
		out.outcome = "plane recovered"
	case st.TCPStateLost > 0:
		out.outcome = "tcp lost"
	case st.TransparentRecov > 0 && st.ConnectionsLost == 0:
		out.outcome = "transparent"
	default:
		out.outcome = "none"
	}
	return out
}

// FaultReplay re-executes a single fault-matrix run verbosely for
// debugging: the same seed reproduces the same run bit for bit, and the
// report dumps the watchdog and management-plane counters that the
// campaign aggregates away.
func FaultReplay(o Options, seed int64, kind faultinject.Kind, comp string) *Result {
	res := &Result{Name: fmt.Sprintf("Fault replay: %s of %q (seed %d)", kind, comp, seed)}
	observe := 150 * sim.Millisecond
	if o.Quick {
		observe = 70 * sim.Millisecond
	}
	out := matrixRun(o, seed, kind, comp, observe)

	tab := &report.Table{Title: "Run classification",
		Columns: []string{"field", "value"}}
	tab.AddRow("outcome", out.outcome)
	tab.AddRow("service reachable", out.ok)
	tab.AddRow("failure detected", out.detected)
	tab.AddRow("mean detection latency", out.detectLat)
	res.Tables = append(res.Tables, tab)

	// Re-run to snapshot the counters (matrixRun's bed is internal; the
	// replay is deterministic, so the second execution is identical).
	det := replayCounters(o, seed, kind, comp, observe)
	res.Tables = append(res.Tables, det)
	res.Notef("replay is deterministic: the same seed reproduces this run exactly")
	return res
}

// FaultTimeline re-executes a single fault-matrix run with the
// observability layer attached and reports the management plane's
// lifecycle-event timeline: every spawn, detection, escalation, RSS
// rebind and recovery, stamped with simulated time. It is the annotated
// companion to FaultReplay — the counters say what happened, the
// timeline says when and in what order.
func FaultTimeline(o Options, seed int64, kind faultinject.Kind, comp string) *Result {
	res := &Result{Name: fmt.Sprintf("Fault timeline: %s of %q (seed %d)", kind, comp, seed)}
	observe := 150 * sim.Millisecond
	if o.Quick {
		observe = 70 * sim.Millisecond
	}
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        seed, Machine: AMD, Kind: stack.Multi,
		ReplicaSlots: testbed.MultiSlots(2, 2),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(6, 2),
		ConnsPerGen:  16, ReqPerConn: 100,
		Timeout:  150 * sim.Millisecond,
		Watchdog: core.WatchdogConfig{Enabled: true},
		Observe:  true,
	})
	if err != nil {
		res.Notef("bed failed: %v", err)
		return res
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Net.Sim.RunFor(20 * sim.Millisecond)
	// Boot noise (initial spawns, first RSS programming) ends here; keep
	// the timeline focused on the injected fault and its recovery.
	boot := len(b.Trace.Events())

	inj := faultinject.New(b.Net.Sim.Rand(), faultinject.MatrixComponents)
	injection, ok := inj.InjectKind(b.NEaT, kind, comp)
	if !ok {
		res.Notef("no injectable %s component in this configuration", comp)
		return res
	}
	if kind == faultinject.KindStorm {
		var strike func(left int)
		strike = func(left int) {
			if left == 0 {
				return
			}
			faultinject.ReInject(b.NEaT, injection)
			b.Net.Sim.After(stormGap, func() { strike(left - 1) })
		}
		b.Net.Sim.After(stormGap, func() { strike(stormStrikes - 1) })
	}
	b.Net.Sim.RunFor(observe + 40*sim.Millisecond)

	events := b.Trace.Events()[boot:]
	res.Tables = append(res.Tables, trace.Timeline(events,
		fmt.Sprintf("Lifecycle events after injecting %s into %s (%s)",
			kind, injection.Component, injection.Proc.Name)))
	res.Tables = append(res.Tables,
		report.Metrics("Watchdog instruments at the end of the run",
			b.NEaT.Metrics().Filter("watchdog.")))
	if s := trace.EventCounts(events); s != "" {
		res.Notef("event counts: %s", s)
	}
	res.Notef("%d boot-time events before the injection omitted", boot)
	res.Notef("the timeline is deterministic: the same seed reproduces it exactly")
	return res
}

// replayCounters runs the same scenario and tabulates the detector and
// management-plane statistics.
func replayCounters(o Options, seed int64, kind faultinject.Kind, comp string, observe sim.Time) *report.Table {
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        seed, Machine: AMD, Kind: stack.Multi,
		ReplicaSlots: testbed.MultiSlots(2, 2),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(6, 2),
		ConnsPerGen:  16, ReqPerConn: 100,
		Timeout:  150 * sim.Millisecond,
		Watchdog: core.WatchdogConfig{Enabled: true},
	})
	tab := &report.Table{Title: "Watchdog and management-plane counters",
		Columns: []string{"counter", "value"}}
	if err != nil {
		tab.AddRow("bed error", err.Error())
		return tab
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Net.Sim.RunFor(20 * sim.Millisecond)
	inj := faultinject.New(b.Net.Sim.Rand(), faultinject.MatrixComponents)
	injection, ok := inj.InjectKind(b.NEaT, kind, comp)
	if ok && kind == faultinject.KindStorm {
		var strike func(left int)
		strike = func(left int) {
			if left == 0 {
				return
			}
			faultinject.ReInject(b.NEaT, injection)
			b.Net.Sim.After(stormGap, func() { strike(left - 1) })
		}
		b.Net.Sim.After(stormGap, func() { strike(stormStrikes - 1) })
	}
	b.Net.Sim.RunFor(observe + 40*sim.Millisecond)

	wd := b.NEaT.Watchdog()
	wst := wd.Stats()
	st := b.NEaT.Stats()
	tab.AddRow("injected into", fmt.Sprintf("%s (%s)", injection.Component, injection.Proc.Name))
	tab.AddRow("probes sent", wst.ProbesSent)
	tab.AddRow("acks received", wst.AcksReceived)
	tab.AddRow("probes missed", wst.ProbesMissed)
	tab.AddRow("crashes detected", wst.CrashesDetected)
	tab.AddRow("hangs detected", wst.HangsDetected)
	tab.AddRow("spurious detections", wst.SpuriousDetected)
	tab.AddRow("detection latency (mean)", wd.DetectionLatency().Mean())
	tab.AddRow("recoveries", st.Recoveries)
	tab.AddRow("secondary crashes merged", st.SecondaryCrashes)
	tab.AddRow("whole-replica rebuilds", st.ReplicaRebuilds)
	tab.AddRow("slots quarantined", st.SlotsQuarantined)
	tab.AddRow("driver recoveries", st.DriverRecoveries)
	tab.AddRow("syscall recoveries", st.SyscallRecoveries)
	tab.AddRow("connections lost", st.ConnectionsLost)
	tab.AddRow("final slot states", fmt.Sprintf("%v", b.NEaT.SlotStates()))
	return tab
}
