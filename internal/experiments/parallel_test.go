package experiments

import (
	"testing"
)

// TestParallelRunner checks that results land at their own indices no
// matter how many workers race over the work list.
func TestParallelRunner(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 32} {
		got := RunParallel(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
	if out := RunParallel(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("n=0: len=%d", len(out))
	}
}

// TestParallelDeterminism is the regression gate for the concurrent sweep
// runner: a full experiment driver must produce byte-identical reports
// run-to-run sequentially AND when its points are measured concurrently.
// Each sweep point owns its Simulator and RNG (seeded from the config), so
// scheduling must not leak into the results; run under -race this also
// proves the beds share no mutable state.
func TestParallelDeterminism(t *testing.T) {
	seq := Options{Quick: true}
	seq1 := Table1(seq).String()
	seq2 := Table1(seq).String()
	if seq1 != seq2 {
		t.Fatalf("sequential runs differ:\n--- first\n%s\n--- second\n%s", seq1, seq2)
	}
	par := Table1(Options{Quick: true, Parallel: true, Workers: 3}).String()
	if par != seq1 {
		t.Fatalf("parallel run differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq1, par)
	}
}
