package experiments

import (
	"strings"
	"testing"

	"neat/internal/faultinject"
)

func TestFaultMatrixShape(t *testing.T) {
	res := FaultMatrix(quick)
	rows := res.Tables[0].Rows
	if len(rows) != len(matrixKinds)*len(matrixComps) {
		t.Fatalf("rows=%d, want %d", len(rows), len(matrixKinds)*len(matrixComps))
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "unreachable") {
			t.Fatalf("recovery failed in some runs: %s", n)
		}
	}
	byCell := map[string]string{}
	for _, r := range rows {
		byCell[r[0]+"/"+r[1]] = r[6]
		if r[4] == "0" {
			t.Errorf("cell %s/%s: no failure detected", r[0], r[1])
		}
		t.Logf("matrix: %-6s %-8s reachable=%s detected=%s lat=%-10s %s",
			r[0], r[1], r[3], r[4], r[5], r[6])
	}
	// Hangs are invisible to a crash oracle; the watchdog must both catch
	// them and classify a TCP hang as connection-losing.
	if out := byCell["hang/tcp"]; !strings.Contains(out, "tcp lost") {
		t.Errorf("hang/tcp outcome %q, want tcp lost", out)
	}
	if out := byCell["hang/ip"]; !strings.Contains(out, "transparent") {
		t.Errorf("hang/ip outcome %q, want transparent", out)
	}
	// A crash storm on a replica component must converge to quarantine.
	for _, comp := range []string{"pf", "ip", "udp", "tcp"} {
		if out := byCell["storm/"+comp]; !strings.Contains(out, "quarantined") {
			t.Errorf("storm/%s outcome %q, want quarantined", comp, out)
		}
	}
	// Faults in the singleton services recover the whole plane.
	for _, kind := range []string{"crash", "hang"} {
		for _, comp := range []string{"driver", "syscall"} {
			if out := byCell[kind+"/"+comp]; !strings.Contains(out, "plane recovered") {
				t.Errorf("%s/%s outcome %q, want plane recovered", kind, comp, out)
			}
		}
	}
}

// TestFaultMatrixDeterministic is the campaign's determinism oracle: the
// report must be byte-identical between a sequential and a parallel
// execution (each run builds its own simulator from an explicit seed).
func TestFaultMatrixDeterministic(t *testing.T) {
	seq := quick
	seq.Parallel = false
	par := quick
	par.Parallel = true
	par.Workers = 4
	a := FaultMatrix(seq).String()
	b := FaultMatrix(par).String()
	if a != b {
		t.Fatalf("fault matrix not deterministic:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestFaultReplayShape(t *testing.T) {
	res := FaultReplay(quick, 3, faultinject.KindHang, "tcp")
	if len(res.Tables) != 2 {
		t.Fatalf("tables=%d, want 2", len(res.Tables))
	}
	// The replay of the same seed must classify identically both times it
	// executes the scenario (the verbose counter pass re-runs it).
	got := map[string]string{}
	for _, r := range res.Tables[0].Rows {
		got[r[0]] = r[1]
	}
	if got["outcome"] != "tcp lost" {
		t.Errorf("replay outcome %q, want tcp lost", got["outcome"])
	}
	if got["failure detected"] != "true" {
		t.Errorf("replay did not detect the hang: %v", got)
	}
}
