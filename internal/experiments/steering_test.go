package experiments

import (
	"strings"
	"testing"
)

// TestSteeringDeterminism gates the steering campaign on the repo's
// byte-identity oracle: the rendered report must be identical run-to-run
// and between sequential and concurrent sweep execution. Each cell builds
// its own bed from the same explicit seed, so scheduling must not leak
// into the tables.
func TestSteeringDeterminism(t *testing.T) {
	seq := Options{Quick: true}
	seq1 := SteeringSkew(seq).String()
	seq2 := SteeringSkew(seq).String()
	if seq1 != seq2 {
		t.Fatalf("sequential runs differ:\n--- first\n%s\n--- second\n%s", seq1, seq2)
	}
	par := SteeringSkew(Options{Quick: true, Parallel: true, Workers: 3}).String()
	if par != seq1 {
		t.Fatalf("parallel run differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq1, par)
	}
}

// TestSteeringSkewReport sanity-checks the campaign's content: every
// policy appears under both workloads and the beds measured real traffic.
func TestSteeringSkewReport(t *testing.T) {
	out := SteeringSkew(Options{Quick: true}).String()
	for _, want := range []string{"uniform", "skewed", "hash", "ring", "least-loaded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "bed failed") || strings.Contains(out, " - ") && strings.Contains(out, "error") {
		t.Fatalf("a cell failed:\n%s", out)
	}
}
