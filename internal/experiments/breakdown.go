package experiments

import (
	"fmt"
	"strings"

	"neat/internal/report"
	"neat/internal/stack"
	"neat/internal/testbed"
	"neat/internal/trace"
)

// LatencyBreakdown runs the lighttpd-style workload with message tracing
// enabled and reports, per configuration, where a request's time goes:
// one row per hop of the message path (wire → NIC RX queue → driver →
// replica components → SYSCALL server → application), split into
// queueing (waiting for the hop to run) and processing (the hop's own
// execution) latency. This is the instrumented companion to the paper's
// latency figures: it shows *why* the mean and p99 are what they are.
//
// Tracing is enabled only inside this experiment; the default bench
// configurations run untraced, and the traced run is deterministic —
// sequential and parallel sweeps produce byte-identical tables.
func LatencyBreakdown(o Options) *Result {
	res := &Result{Name: "Latency breakdown: per-hop queueing vs processing (lighttpd workload)"}

	type config struct {
		name  string
		kind  stack.Kind
		slots [][]testbed.ThreadLoc
	}
	configs := []config{
		{"single-component, 2 replicas", stack.Single, testbed.SingleSlots(2, 2)},
		{"multi-component, 2 replicas", stack.Multi, testbed.MultiSlots(2, 2)},
	}

	type out struct {
		table  *report.Table
		krps   float64
		events string
		err    error
	}
	outs := RunParallel(len(configs), o.workers(), func(i int) out {
		c := configs[i]
		b, err := NewBed(BedConfig{
			PDESWorkers: o.PDESWorkers,
			Seed:        o.seed(), Machine: AMD, Kind: c.kind,
			ReplicaSlots: c.slots,
			SyscallLoc:   testbed.ThreadLoc{Core: 1},
			WebLocs:      coreRange(6, 2),
			ConnsPerGen:  16, ReqPerConn: 100,
			Observe: true,
		})
		if err != nil {
			return out{err: err}
		}
		m := b.Run(o.warm(), o.window())
		// The table keeps the server-side story: the wire plus every hop on
		// the system under test. (Client-side hops are traced too — the
		// tracer is simulator-wide — but belong to the load generator.)
		var bd trace.Breakdown
		for _, sp := range b.Trace.Breakdown() {
			if sp.Component == "wire" || strings.HasPrefix(sp.Hop, "amd.") {
				bd = append(bd, sp)
			}
		}
		title := fmt.Sprintf("NEaT %s — per-hop latency at %.1f krps", c.name, m.KRPS)
		return out{table: bd.Table(title), krps: m.KRPS,
			events: trace.EventCounts(b.Trace.Events())}
	})

	for i, o := range outs {
		if o.err != nil {
			res.Notef("%s: bed failed: %v", configs[i].name, o.err)
			continue
		}
		res.Tables = append(res.Tables, o.table)
		if o.events != "" {
			res.Notef("%s lifecycle events: %s", configs[i].name, o.events)
		}
	}
	res.Notef("queueing = arrival → handling start; processing = handler execution (per message)")
	res.Notef("tracing is opt-in: default bench runs are untraced and pay zero observation cost")
	return res
}
