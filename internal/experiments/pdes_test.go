package experiments

import (
	"fmt"
	"testing"

	"neat/internal/faultinject"
	"neat/internal/sim"
)

// TestPDESDeterminism pins the PDES contract the verify suite relies on:
// the same simulation produces byte-identical results for every worker
// count >= 1. Run under -race this also exercises the coordinator's
// synchronization on a real multi-domain workload.
func TestPDESDeterminism(t *testing.T) {
	o := Options{Quick: true}

	// Farm: 4 server/client pairs (8 domains) over 1 vs 4 workers.
	render := func(workers int) (table string, barriers uint64, horizon sim.Time) {
		f, err := newFarm(1, farmPairCount(o), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		f.run(o.farmWarm(), o.farmWindow())
		barriers, horizon, _ = f.sim.PDESStats()
		return f.table(o.farmWindow()).String(), barriers, horizon
	}
	t1, b1, h1 := render(1)
	t4, b4, h4 := render(4)
	if t1 != t4 {
		t.Fatalf("farm report differs between 1 and 4 workers:\n%s\nvs\n%s", t1, t4)
	}
	if b1 != b4 || h1 != h4 {
		t.Fatalf("coordinator stats differ: %d barriers/%v horizon vs %d/%v", b1, h1, b4, h4)
	}

	// A fault-matrix cell: detection outcome and latency are schedule-level
	// facts, so they must also be invariant to the worker count.
	cell := func(workers int) string {
		out := matrixRun(Options{Quick: true, PDESWorkers: workers}, 1,
			faultinject.KindCrash, "tcp", 70*sim.Millisecond)
		return fmt.Sprintf("%+v", out)
	}
	if c1, c4 := cell(1), cell(4); c1 != c4 {
		t.Fatalf("fault-matrix cell differs between 1 and 4 workers:\n%s\nvs\n%s", c1, c4)
	}
}
