package experiments

import (
	"fmt"

	"neat/internal/faultinject"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// Table3 reproduces the fault-injection experiment of §6.6: inject faults
// into randomly selected code sites of a running multi-component NEaT
// stack, collect failing runs, and classify the recovery.
// Paper: 53.8 % fully transparent recovery, 46.2 % TCP connections lost.
func Table3(o Options) *Result {
	res := &Result{Name: "Table 3: fault injection — recovery outcome over failing runs"}
	runs := 100
	observe := 300 * sim.Millisecond
	if o.Quick {
		runs = 24
		observe = 80 * sim.Millisecond
	}

	type t3out struct {
		outcome faultinject.Outcome
		ok      bool
	}
	outs := RunParallel(runs, o.workers(), func(i int) t3out {
		oc, ok := faultRun(o, int64(i+1), observe)
		return t3out{outcome: oc, ok: ok}
	})
	var transparent, tcpLost, unreachable int
	for _, out := range outs {
		if !out.ok {
			unreachable++
			continue
		}
		switch out.outcome {
		case faultinject.OutcomeTransparent:
			transparent++
		case faultinject.OutcomeTCPLost:
			tcpLost++
		}
	}
	total := transparent + tcpLost
	tab := &report.Table{
		Title:   fmt.Sprintf("Recovery outcomes over %d failing runs", total),
		Columns: []string{"outcome", "runs", "share", "paper"},
	}
	pct := func(n int) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total)) }
	tab.AddRow("fully transparent recovery", transparent, pct(transparent), "53.8%")
	tab.AddRow("TCP connections lost", tcpLost, pct(tcpLost), "46.2%")
	res.Tables = append(res.Tables, tab)
	if unreachable > 0 {
		res.Notef("%d runs left the server unreachable — recovery failed (paper reports none)", unreachable)
	} else {
		res.Notef("after every failure the server was reachable again and accepted new connections (§6.6)")
	}
	return res
}

// faultRun executes one injection run and classifies it; ok is false if
// the service did not come back.
func faultRun(o Options, seed int64, observe sim.Time) (faultinject.Outcome, bool) {
	b, err := NewBed(BedConfig{
		PDESWorkers: o.PDESWorkers,
		Seed:        seed, Machine: AMD, Kind: stack.Multi,
		ReplicaSlots: testbed.MultiSlots(2, 2),
		SyscallLoc:   testbed.ThreadLoc{Core: 1},
		WebLocs:      coreRange(6, 2),
		ConnsPerGen:  16, ReqPerConn: 100,
		Timeout: 150 * sim.Millisecond,
	})
	if err != nil {
		return 0, false
	}
	for _, g := range b.Gens {
		g.Start()
	}
	b.Net.Sim.RunFor(20 * sim.Millisecond)

	inj := faultinject.New(b.Net.Sim.Rand(), nil)
	injection, ok := inj.Inject(b.NEaT)
	if !ok {
		return 0, false
	}
	b.Net.Sim.RunFor(observe)

	// Service must be reachable again: responses must still flow at the
	// end of the observation window.
	var before uint64
	for _, g := range b.Gens {
		before += g.Stats().ResponsesOK
	}
	b.Net.Sim.RunFor(40 * sim.Millisecond)
	var after uint64
	for _, g := range b.Gens {
		after += g.Stats().ResponsesOK
	}
	if after <= before {
		return 0, false
	}

	st := b.NEaT.Stats()
	if st.TCPStateLost > 0 {
		return faultinject.OutcomeTCPLost, true
	}
	if st.TransparentRecov > 0 {
		// Double-check the claim: transparent means no connection died.
		if st.ConnectionsLost > 0 {
			return faultinject.OutcomeTCPLost, true
		}
		_ = injection
		return faultinject.OutcomeTransparent, true
	}
	return 0, false
}

// Figure13 reproduces the reliability/performance trade-off: expected
// fraction of state preserved after a failure vs maximum throughput for
// the Xeon configurations. Preservation follows the paper's model: with
// the stateless TCP recovery strategy only the failing replica's TCP
// state is lost, so a single-component N-replica stack preserves (N-1)/N
// and a multi-component stack 1 - P(tcp)/N, with P(tcp) = 46.2 % from the
// component code-size weights.
func Figure13(o Options) *Result {
	res := &Result{Name: "Figure 13: expected state preserved after a failure vs max throughput (Xeon)"}
	tab := &report.Table{
		Title:   "State preserved vs max throughput per configuration",
		Columns: []string{"configuration", "preserved", "max krps"},
	}
	pTCP := faultinject.New(nil, nil).TCPShare()

	type cfg struct {
		label    string
		kind     stack.Kind
		replicas int
		series   xeonSeries
	}
	configs := []cfg{
		{"NEaT 1x (1 core)", stack.Single, 1, xeonSeries{
			kind:   stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: threadFill(3, 4, 5, 6, 7), points: []int{4}}},
		{"NEaT 2x (2 cores)", stack.Single, 2, xeonSeries{
			kind:   stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0)}, {loc(3, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: threadFill(4, 5, 6, 7), points: []int{6}}},
		{"NEaT 3x (3 cores)", stack.Single, 3, xeonSeries{
			kind:   stack.Single,
			slots:  [][]testbed.ThreadLoc{{loc(1, 0)}, {loc(2, 0)}, {loc(3, 0)}},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(4, 5, 6, 7), points: []int{8}}},
		{"NEaT 4x (2 cores, 4 threads)", stack.Single, 4, xeonSeries{
			kind: stack.Single,
			slots: [][]testbed.ThreadLoc{
				{loc(1, 0)}, {loc(1, 1)}, {loc(2, 0)}, {loc(2, 1)}},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(3, 4, 5, 6, 7), points: []int{9}}},
		{"Multi 1x (2 cores)", stack.Multi, 1, xeonSeries{
			kind:   stack.Multi,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0), loc(3, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: threadFill(4, 5, 6, 7), points: []int{4}}},
		{"Multi 2x (4 cores)", stack.Multi, 2, xeonSeries{
			kind:   stack.Multi,
			slots:  [][]testbed.ThreadLoc{{loc(2, 0), loc(3, 0)}, {loc(4, 0), loc(5, 0)}},
			driver: loc(0, 0), syscall: loc(1, 0),
			webFill: []testbed.ThreadLoc{loc(6, 0), loc(7, 0), loc(6, 1), loc(7, 1),
				loc(3, 1), loc(5, 1), loc(2, 1), loc(4, 1)},
			points: []int{8}}},
		{"Multi 2x (2 cores, 4 threads)", stack.Multi, 2, xeonSeries{
			kind: stack.Multi,
			slots: [][]testbed.ThreadLoc{
				{loc(2, 0), loc(1, 0)}, {loc(2, 1), loc(1, 1)}},
			driver: loc(0, 0), syscall: loc(0, 1),
			webFill: threadFill(3, 4, 5, 6, 7), points: []int{8}}},
	}

	fig := &report.Figure{Title: "Preserved state vs max throughput",
		XLabel: "max krps", YLabel: "% state preserved"}
	curve := fig.NewSeries("configurations")
	// Each configuration has a single measured point, so the parallelism
	// lives at the configuration level; the series themselves run their
	// (one-point) sweeps sequentially.
	seq := o
	seq.Parallel = false
	maxes := RunParallel(len(configs), o.workers(), func(i int) float64 {
		tmp := &report.Figure{}
		return runXeonSeries(seq, configs[i].series, tmp, 24).MaxY()
	})
	for i, c := range configs {
		preserved := 100 * (1 - 1/float64(c.replicas))
		if c.kind == stack.Multi {
			preserved = 100 * (1 - pTCP/float64(c.replicas))
		}
		tab.AddRow(c.label, fmt.Sprintf("%.1f%%", preserved), maxes[i])
		curve.Add(maxes[i], preserved)
	}
	res.Tables = append(res.Tables, tab)
	res.Figures = append(res.Figures, fig)
	res.Notef("paper: performance AND reliability both increase with the replica count — no trade-off")
	res.Notef("single-component replicas lose all state of the failing replica; multi-component ones only with P(tcp)=%.1f%%", 100*pTCP)
	return res
}

// All runs every experiment in paper order.
func All(o Options) []*Result {
	return []*Result{
		Table1(o),
		Figure4(o),
		Figure5(o),
		Figure7(o),
		Figure9(o),
		Figure11(o),
		Figure12(o),
		Table2(o),
		Table3(o),
		Figure13(o),
	}
}
