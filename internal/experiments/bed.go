package experiments

import (
	"fmt"
	"runtime"

	"neat/internal/app"
	"neat/internal/baseline"
	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
	"neat/internal/trace"
	"neat/internal/wire"
)

// MachineKind selects the system-under-test machine of §6.
type MachineKind int

// The two testbed machines.
const (
	AMD  MachineKind = iota // 12 cores, 1.9 GHz, no SMT
	Xeon                    // 8 cores × 2 threads, 2.26 GHz
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks warmup/measurement windows and run counts so the unit
	// tests stay fast; the full harness (cmd/neat-bench, benchmarks) runs
	// with Quick=false.
	Quick bool
	// Seed drives all randomness (default 1).
	Seed int64
	// Parallel measures independent sweep points concurrently. Reports are
	// assembled in configuration order afterwards, so the output matches a
	// sequential run byte for byte.
	Parallel bool
	// Workers caps sweep concurrency (default GOMAXPROCS).
	Workers int
	// PDESWorkers > 0 runs each simulation itself in parallel: conservative
	// PDES with that many domain workers (sim.EnablePDES). 0 keeps the
	// default single global event loop. Note this changes RNG stream
	// assignment (per-domain streams), so results are comparable across
	// PDES worker counts but not with the sequential mode. (The cluster
	// campaign is the exception: its workload is RNG-free on every
	// behavior-relevant path, so sequential and PDES runs are
	// byte-identical.)
	PDESWorkers int
	// Scale multiplies the cluster campaign's connection ladder (default
	// 1, sized for a 1-CPU container; large values target machine-room
	// aggregate connection counts).
	Scale int
}

func (o Options) clusterScale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Options) workers() int {
	if !o.Parallel {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) warm() sim.Time {
	if o.Quick {
		return 25 * sim.Millisecond
	}
	return 80 * sim.Millisecond
}

func (o Options) window() sim.Time {
	if o.Quick {
		return 50 * sim.Millisecond
	}
	return 200 * sim.Millisecond
}

// TopologyConfig shapes a bed's two-machine network. Zero fields keep
// the defaults (10 Gb/s line rate, 1 µs propagation delay).
type TopologyConfig struct {
	LinkBitsPerSec int64
	LinkPropDelay  sim.Time
}

// shape applies the declared overrides to a freshly built link.
func (t TopologyConfig) shape(l *wire.Link) {
	if t.LinkBitsPerSec > 0 {
		l.BitsPerSec = t.LinkBitsPerSec
	}
	if t.LinkPropDelay > 0 {
		l.PropDelay = t.LinkPropDelay
	}
}

// BedConfig describes one measured configuration: a server system (NEaT or
// the Linux baseline), its lighttpd instances and the matching httperf
// load generators.
type BedConfig struct {
	Seed    int64
	Machine MachineKind

	// PDESWorkers > 0 enables conservative parallel simulation with that
	// many workers (see Options.PDESWorkers). Must be set at bed creation.
	PDESWorkers int

	// Topology declares the network between the two machines instead of
	// assuming the hardwired link. The zero value is the historical
	// testbed shape — one point-to-point 10 Gb/s, 1 µs DAC — byte for
	// byte. (Multi-machine topologies are ClusterBedConfig's job.)
	Topology TopologyConfig

	// NEaT configuration (used when LinuxCores == 0).
	Kind         stack.Kind
	ReplicaSlots [][]testbed.ThreadLoc
	SyscallLoc   testbed.ThreadLoc
	DriverLoc    testbed.ThreadLoc // Xeon only (AMD pins the driver to core 0)
	// Watchdog switches failure detection to heartbeat probing (the
	// fault-matrix campaign; Table 3 keeps the paper's crash oracle).
	Watchdog core.WatchdogConfig

	// Linux baseline configuration (used when LinuxCores > 0): kernel
	// contexts on threads LinuxLocs, web i colocated with context i.
	LinuxCores       int
	LinuxLocs        []testbed.ThreadLoc
	LinuxTuning      baseline.Tuning
	LinuxKernelScale float64

	// Steering configures the server's flow placement plane (zero value:
	// legacy RSS hash, no drain deadline).
	Steering steer.Config

	// Guard configures the server replicas' per-replica resource guards
	// (zero value: no guards — the paper's configuration). Client stacks
	// are never guarded.
	Guard tcpeng.GuardConfig

	// IPC tunes the server system's modeled message rings (ring depth,
	// doorbell coalescing). Zero value: calibrated per-message doorbells.
	IPC testbed.IPCTuning

	// Workload.
	WebLocs     []testbed.ThreadLoc // lighttpd i at WebLocs[i], port 8000+i
	FileSize    int                 // default 20 bytes
	FileSizes   []int               // per-web override of FileSize (skewed workloads)
	ConnsPerGen int                 // default 16
	ReqPerConn  int                 // default 100
	ThinkTime   sim.Time
	TSO         bool
	Timeout     sim.Time
	// GenPorts optionally gives load generator i a local-port plan (see
	// app.PortPlan) — the adversarial campaign pins each generator's
	// flows to one replica this way. Nil entries keep ephemeral ports.
	GenPorts []app.PortPlan

	// Observe attaches the observability layer: a message tracer on the
	// whole simulated network plus the server system's lifecycle event
	// timeline, exposed as Bed.Trace. Off by default — measurement beds
	// must not pay for tracing they do not read.
	Observe bool
}

// Bed is an instantiated configuration ready to measure.
type Bed struct {
	Net    *testbed.Net
	Server *testbed.Host
	Client *testbed.Host
	NEaT   *core.System
	CliSys *core.System
	Linux  *baseline.System
	Webs   []*app.HTTPD
	Gens   []*app.Loadgen
	// Trace is the attached tracer when the bed was built with
	// BedConfig.Observe; nil otherwise.
	Trace *trace.Tracer
}

// NewBed builds and boots a configuration.
func NewBed(cfg BedConfig) (*Bed, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.FileSize == 0 {
		cfg.FileSize = 20
	}
	if cfg.ConnsPerGen == 0 {
		cfg.ConnsPerGen = 16
	}
	if cfg.ReqPerConn == 0 {
		cfg.ReqPerConn = 100
	}
	n := testbed.New(cfg.Seed)
	cfg.Topology.shape(n.Link)
	if cfg.PDESWorkers > 0 {
		// Must precede host creation: machines built afterwards get their
		// own event-queue domains.
		n.Sim.EnablePDES(cfg.PDESWorkers)
	}
	var tr *trace.Tracer
	if cfg.Observe {
		// Attach before anything is built so every delivery carries an
		// arrival stamp from the first event on.
		tr = trace.New().Attach(n.Sim)
	}

	queues := len(cfg.ReplicaSlots)
	if cfg.LinuxCores > 0 {
		queues = cfg.LinuxCores
	}
	var server *testbed.Host
	switch cfg.Machine {
	case AMD:
		server = testbed.DefaultAMDHost(n, 0, queues)
	case Xeon:
		server = testbed.DefaultXeonHost(n, 0, queues, cfg.DriverLoc)
	}
	client := testbed.DefaultClientHost(n, 1, len(cfg.WebLocs))

	tcp := tcpeng.DefaultConfig()
	tcp.TSO = cfg.TSO
	tcp.Guard = cfg.Guard

	b := &Bed{Net: n, Server: server, Client: client, Trace: tr}

	if cfg.LinuxCores > 0 {
		scale := cfg.LinuxKernelScale
		if scale == 0 {
			scale = 1.0
		}
		bl, err := baselineOn(server, client, cfg, tcp, scale)
		if err != nil {
			return nil, err
		}
		b.Linux = bl
	} else {
		scfg := server.StackConfig(cfg.Kind, tcp, client)
		scfg.Costs = ServerStackCosts()
		sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
			Kind: cfg.Kind, TCP: tcp,
			Slots:    cfg.ReplicaSlots,
			Syscall:  cfg.SyscallLoc,
			Stack:    &scfg,
			Watchdog: cfg.Watchdog,
			Observe:  core.ObserveConfig{Trace: tr},
			Steering: cfg.Steering,
			IPC:      cfg.IPC,
		})
		if err != nil {
			return nil, err
		}
		b.NEaT = sys
	}

	clisys, err := client.BuildClientSystem(server, len(cfg.WebLocs), tcpeng.DefaultConfig())
	if err != nil {
		return nil, err
	}
	b.CliSys = clisys

	// Web servers.
	for i, loc := range cfg.WebLocs {
		var syscallProc = clisys.SyscallProc() // placeholder; replaced below
		if b.NEaT != nil {
			syscallProc = b.NEaT.SyscallProc()
		} else {
			syscallProc = b.Linux.KernelProc(i % b.Linux.NumContexts())
		}
		size := cfg.FileSize
		if i < len(cfg.FileSizes) && cfg.FileSizes[i] > 0 {
			size = cfg.FileSizes[i]
		}
		h := app.NewHTTPD(server.Thread(loc), fmt.Sprintf("lighttpd%d", i), syscallProc,
			ipc.DefaultCosts(), app.HTTPDConfig{
				Port:             uint16(8000 + i),
				Files:            map[string]int{"/file": size},
				CyclesPerRequest: AppCyclesPerRequest,
			})
		h.Start()
		b.Webs = append(b.Webs, h)
	}
	n.Sim.RunFor(2 * sim.Millisecond)
	for i, h := range b.Webs {
		if !h.Ready() {
			return nil, fmt.Errorf("experiments: lighttpd %d failed to listen", i)
		}
	}

	// Load generators: one per web instance/port.
	for i := range cfg.WebLocs {
		lcfg := app.LoadgenConfig{
			Target: server.IP, Port: uint16(8000 + i), URI: "/file",
			Conns: cfg.ConnsPerGen, ReqPerConn: cfg.ReqPerConn,
			ThinkTime: cfg.ThinkTime, Timeout: cfg.Timeout,
		}
		if i < len(cfg.GenPorts) {
			lcfg.Ports = cfg.GenPorts[i]
		}
		lg := app.NewLoadgen(client.AppThread(2+len(cfg.WebLocs)+i), fmt.Sprintf("httperf%d", i),
			clisys.SyscallProc(), ipc.DefaultCosts(), lcfg)
		b.Gens = append(b.Gens, lg)
	}
	return b, nil
}

// baselineOn boots the Linux model with web colocation.
func baselineOn(server, client *testbed.Host, cfg BedConfig, tcp tcpeng.Config, scale float64) (*baseline.System, error) {
	locs := cfg.LinuxLocs
	if locs == nil {
		for i := 0; i < cfg.LinuxCores; i++ {
			locs = append(locs, testbed.ThreadLoc{Core: i})
		}
	}
	threads := make([]*sim.HWThread, len(locs))
	for i, loc := range locs {
		threads[i] = server.Thread(loc)
	}
	return baseline.New(baseline.Config{
		KernelThreads: threads,
		NIC:           server.NIC,
		IP:            server.StackConfig(stack.Single, tcp, client).IP,
		TCP:           tcp,
		Tuning:        cfg.LinuxTuning,
		Costs:         ScaleBaselineCosts(LinuxCosts(), scale),
		IPC:           ipc.DefaultCosts(),
	})
}

// Measurement is one httperf-style report plus server-side observations.
type Measurement struct {
	KRPS    float64 // good responses (errors discarded) per second / 1000
	RawKRPS float64
	Errors  uint64
	MBps    float64 // body throughput
	MeanLat sim.Time
	P99Lat  sim.Time
	Window  sim.Time
	Latency metrics.Histogram
}

// Run starts the load, warms up, measures for window and reports. The
// measurement is derived from the bed's workload registry — the registry
// is the source of truth, Measurement its httperf-style view.
func (b *Bed) Run(warm, window sim.Time) Measurement {
	for _, g := range b.Gens {
		g.Start()
	}
	b.Net.Sim.RunFor(warm)
	for _, g := range b.Gens {
		g.BeginMeasure()
	}
	b.Net.Sim.RunFor(window)
	return measurementFrom(b.WorkloadRegistry(), window)
}

// WorkloadRegistry collects the load generators' counters into a fresh
// registry (the client-side "httperf report" instruments).
func (b *Bed) WorkloadRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	good := r.Counter("loadgen.responses_good")
	raw := r.Counter("loadgen.window_responses")
	bytes := r.Counter("loadgen.window_bytes")
	errs := r.Counter("loadgen.conn_errors")
	lat := r.Histogram("loadgen.latency")
	for _, g := range b.Gens {
		st := g.Stats()
		good.Add(g.GoodResponses())
		raw.Add(st.WindowResponses)
		bytes.Add(st.WindowBytes)
		errs.Add(st.ConnErrors)
		lat.Merge(g.Latency())
	}
	return r
}

// Registry assembles the bed's full observability registry: the workload
// instruments plus the server and client systems' metrics under "server."
// and "client." prefixes and the link counters.
func (b *Bed) Registry() *metrics.Registry {
	r := b.WorkloadRegistry()
	if b.NEaT != nil {
		r.Absorb("server.", b.NEaT.Metrics())
	}
	if b.CliSys != nil {
		r.Absorb("client.", b.CliSys.Metrics())
	}
	ls := b.Net.Link.Stats()
	r.SetCounter("link.frames_from_server", ls.Frames[0])
	r.SetCounter("link.frames_from_client", ls.Frames[1])
	r.SetCounter("link.dropped_from_server", ls.Dropped[0])
	r.SetCounter("link.dropped_from_client", ls.Dropped[1])
	if barriers, horizon, doms := b.Net.Sim.PDESStats(); doms != nil {
		r.SetCounter("sim.pdes.barriers", barriers)
		r.SetCounter("sim.pdes.horizon_ns", uint64(horizon))
		for _, d := range doms {
			r.SetCounter("sim.pdes.domain."+d.Name+".events", d.Events)
		}
	}
	ts := b.Net.Sim.TimerStats()
	r.SetCounter("sim.timers.pending", uint64(ts.Pending))
	r.SetCounter("sim.timers.cascades", ts.Cascades)
	r.SetCounter("sim.timers.fired", ts.Fired)
	is := b.Net.Sim.IPCStats()
	r.SetCounter("sim.ipc.sends", is.Sends)
	r.SetCounter("sim.ipc.slow_path", is.SlowPath)
	r.SetCounter("sim.ipc.wakes_saved", is.WakesSaved)
	r.SetCounter("sim.ipc.stalls", is.Stalls)
	r.SetCounter("sim.ipc.depth_hw", uint64(is.DepthHW))
	r.SetCounter("sim.ipc.batches", is.Batches)
	r.SetCounter("sim.ipc.batch_msgs", is.BatchMsgs)
	for i, n := range is.BatchHist {
		if n > 0 {
			r.SetCounter("sim.ipc.batch."+sim.IPCBatchBucketLabel(i), n)
		}
	}
	return r
}

// measurementFrom derives the httperf-style report from the workload
// registry.
func measurementFrom(r *metrics.Registry, window sim.Time) Measurement {
	var m Measurement
	m.Window = window
	m.KRPS = metrics.KRate(r.Counter("loadgen.responses_good").Value(), window)
	m.RawKRPS = metrics.KRate(r.Counter("loadgen.window_responses").Value(), window)
	m.Errors = r.Counter("loadgen.conn_errors").Value()
	m.MBps = float64(r.Counter("loadgen.window_bytes").Value()) / (1 << 20) / window.Seconds()
	m.Latency = *r.Histogram("loadgen.latency")
	m.MeanLat = m.Latency.Mean()
	m.P99Lat = m.Latency.Quantile(0.99)
	return m
}
