package core_test

import (
	"testing"

	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// srvApp is a minimal server application: one listener that echoes data
// and records lifecycle events.
type srvApp struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	ln   *socketlib.Listener

	ready    bool
	accepted int
	failures int // sockets closed by reset / replica failure
	echoed   int
}

func newSrvApp(th *sim.HWThread, syscall *sim.Proc) *srvApp {
	a := &srvApp{}
	a.proc = sim.NewProc(th, "webapp", a, sim.ProcConfig{Component: "app"})
	a.lib = socketlib.New(a.proc, syscall, ipc.DefaultCosts())
	return a
}

func (a *srvApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(400)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	if msg == "closeListener" && a.ln != nil {
		a.ln.Close(ctx)
		return
	}
	if msg == "listen" {
		ln := a.lib.Listen(ctx, 80, 128)
		a.ln = ln
		ln.OnReady = func(ctx *sim.Context, err error) { a.ready = err == nil }
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			a.accepted++
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					a.echoed++
					s.Send(ctx, data)
				}
				if eof {
					s.Close(ctx)
				}
			}
			s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
				if reset {
					a.failures++
				}
			}
		}
	}
}

// cliApp opens one connection per "go" message, sends a probe, waits for
// the echo and closes.
type cliApp struct {
	proc     *sim.Proc
	lib      *socketlib.Lib
	server   *testbed.Host
	done     int
	failed   int
	resets   int
	inflight int
}

func newCliApp(th *sim.HWThread, syscall *sim.Proc, server *testbed.Host) *cliApp {
	a := &cliApp{server: server}
	a.proc = sim.NewProc(th, "cliapp", a, sim.ProcConfig{Component: "app"})
	a.lib = socketlib.New(a.proc, syscall, ipc.DefaultCosts())
	return a
}

func (a *cliApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(400)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	if msg == "go" {
		a.inflight++
		s := a.lib.Connect(ctx, a.server.IP, 80)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err != nil {
				a.failed++
				a.inflight--
				return
			}
			s.Send(ctx, []byte("probe-probe-probe"))
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
			if len(data) > 0 {
				s.Close(ctx)
				a.done++
				a.inflight--
			}
		}
		s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
			if reset {
				a.resets++
				a.inflight--
			}
		}
	}
}

// bed builds: AMD server with a NEaT system + one app, client host with 2
// stacks + one client app.
type bed struct {
	net    *testbed.Net
	server *testbed.Host
	client *testbed.Host
	sys    *core.System
	clisys *core.System
	app    *srvApp
	cli    *cliApp
}

func newBed(t *testing.T, kind stack.Kind, slots [][]testbed.ThreadLoc, initial int) *bed {
	t.Helper()
	n := testbed.New(7)
	server := testbed.DefaultAMDHost(n, 0, len(slots))
	client := testbed.DefaultClientHost(n, 1, 2)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: kind, TCP: tcpeng.DefaultConfig(),
		Slots: slots, Syscall: testbed.ThreadLoc{Core: 1},
		InitialReplicas: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 2, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &bed{net: n, server: server, client: client, sys: sys, clisys: clisys}
	b.app = newSrvApp(server.AppThread(server.Machine.NumCores()-1), sys.SyscallProc())
	b.cli = newCliApp(client.AppThread(client.Machine.NumCores()-1), clisys.SyscallProc(), server)
	b.app.proc.Deliver("listen")
	n.Sim.RunFor(sim.Millisecond)
	if !b.app.ready {
		t.Fatal("listen never became ready")
	}
	return b
}

func (b *bed) connect(n int) {
	for i := 0; i < n; i++ {
		b.cli.proc.Deliver("go")
	}
}

func TestConnectionsSpreadAcrossReplicas(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 3), 3)
	b.connect(30)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 30 {
		t.Fatalf("done=%d failed=%d resets=%d", b.cli.done, b.cli.failed, b.cli.resets)
	}
	if b.app.accepted != 30 {
		t.Fatalf("accepted=%d", b.app.accepted)
	}
	used := 0
	for _, r := range b.sys.Replicas() {
		if r.TCP().Stats().AcceptedConns > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("replicas used = %d, want >= 2", used)
	}
	if b.sys.Stats().FiltersInstalled == 0 {
		t.Fatal("no NIC filters installed")
	}
	// All connections closed: filters removed, PCBs drained.
	b.net.Sim.RunFor(2 * sim.Second)
	if got := b.sys.TotalConns(); got != 0 {
		t.Fatalf("PCBs leaked: %d", got)
	}
}

func TestSingleReplicaCrashRecovery(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 2), 2)
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("warmup failed: %d", b.cli.done)
	}

	// Open long-lived connections (server waits for data that never
	// comes), then crash replica 0.
	holder := newHolderApp(b)
	for i := 0; i < 8; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(100 * sim.Millisecond)
	if holder.open == 0 {
		t.Fatal("no held connections")
	}
	victim := b.sys.Replicas()[0]
	held := victim.TCP().NumConns()
	if held == 0 {
		victim = b.sys.Replicas()[1]
		held = victim.TCP().NumConns()
	}
	victim.Procs()[0].Crash(sim.ErrKilled)
	b.net.Sim.RunFor(100 * sim.Millisecond)

	st := b.sys.Stats()
	if st.Recoveries != 1 || st.TCPStateLost != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if int(st.ConnectionsLost) != held {
		t.Fatalf("lost %d, held %d", st.ConnectionsLost, held)
	}
	// The server application owns the lost sockets; its library observes
	// the channel teardown. (The remote client sees silence, like a real
	// peer of a crashed host.)
	if b.app.failures == 0 {
		t.Fatal("server app never told about lost connections")
	}
	if b.app.failures != held {
		t.Fatalf("server app saw %d failures, want %d", b.app.failures, held)
	}

	// The system serves new connections again, on both replicas.
	before := b.cli.done
	b.connect(20)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != before+20 {
		t.Fatalf("post-recovery connects: done=%d want=%d (failed=%d resets=%d)",
			b.cli.done, before+20, b.cli.failed, b.cli.resets)
	}
	usedAfter := 0
	for _, r := range b.sys.Replicas() {
		if r.TCP().Stats().AcceptedConns > 0 {
			usedAfter++
		}
	}
	if usedAfter != 2 {
		t.Fatalf("recovered replica not serving: used=%d", usedAfter)
	}
}

// holderApp opens connections and never sends, keeping them established.
type holderApp struct {
	proc     *sim.Proc
	lib      *socketlib.Lib
	server   *testbed.Host
	socks    []*socketlib.Socket
	open     int
	failures int
}

func newHolderApp(b *bed) *holderApp {
	a := &holderApp{server: b.server}
	a.proc = sim.NewProc(b.client.AppThread(b.client.Machine.NumCores()-2), "holder", a,
		sim.ProcConfig{Component: "app"})
	a.lib = socketlib.New(a.proc, b.clisys.SyscallProc(), ipc.DefaultCosts())
	return a
}

func (a *holderApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(200)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	switch msg {
	case "hold":
		s := a.lib.Connect(ctx, a.server.IP, 80)
		a.socks = append(a.socks, s)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				a.open++
			}
		}
		s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
			a.failures++
			a.open--
		}
	case "abortAll":
		for _, s := range a.socks {
			s.OnClosed = nil // intentional teardown, not a failure
			s.Abort(ctx)
		}
		a.socks = nil
	}
}

func TestMultiComponentTransparentIPRecovery(t *testing.T) {
	b := newBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	holder := newHolderApp(b)
	for i := 0; i < 6; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	if holder.open != 6 {
		t.Fatalf("held=%d", holder.open)
	}
	victim := b.sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = b.sys.Replicas()[1]
	}
	connsBefore := victim.TCP().NumConns()
	// Crash the stateless IP process.
	victim.EntryProc().Crash(sim.ErrKilled)
	b.net.Sim.RunFor(200 * sim.Millisecond)

	st := b.sys.Stats()
	if st.Recoveries != 1 || st.TransparentRecov != 1 || st.TCPStateLost != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if holder.failures != 0 {
		t.Fatalf("transparent recovery lost %d connections", holder.failures)
	}
	if victim.TCP().NumConns() != connsBefore {
		t.Fatalf("TCP state lost: %d -> %d", connsBefore, victim.TCP().NumConns())
	}
	// Connections still pass traffic after IP restart: echo works.
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("post-recovery traffic: done=%d failed=%d resets=%d",
			b.cli.done, b.cli.failed, b.cli.resets)
	}
}

func TestMultiComponentTCPCrashLosesOnlyThatReplica(t *testing.T) {
	b := newBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	holder := newHolderApp(b)
	for i := 0; i < 10; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	r0, r1 := b.sys.Replicas()[0], b.sys.Replicas()[1]
	if r0.TCP().NumConns() == 0 || r1.TCP().NumConns() == 0 {
		t.Skip("seed put all connections on one replica")
	}
	lost := r0.TCP().NumConns()
	surviving := r1.TCP().NumConns()
	r0.SockProc().Crash(sim.ErrKilled)
	b.net.Sim.RunFor(200 * sim.Millisecond)

	st := b.sys.Stats()
	if st.TCPStateLost != 1 || int(st.ConnectionsLost) != lost {
		t.Fatalf("stats: %+v (lost=%d)", st, lost)
	}
	if r1.TCP().NumConns() != surviving {
		t.Fatalf("crash leaked into the other replica: %d -> %d",
			surviving, r1.TCP().NumConns())
	}
	if b.app.failures != lost {
		t.Fatalf("server app saw %d failures, want %d", b.app.failures, lost)
	}
	if holder.failures != 0 {
		t.Fatal("remote client should see silence, not resets")
	}
}

func TestScaleUpAndLazyScaleDown(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 3), 1)
	if b.sys.NumActive() != 1 {
		t.Fatalf("active=%d", b.sys.NumActive())
	}
	// Overload signal → scale up.
	if _, err := b.sys.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if b.sys.NumActive() != 2 {
		t.Fatalf("active after up=%d", b.sys.NumActive())
	}
	// Hold connections so the later scale-down must be lazy.
	holder := newHolderApp(b)
	for i := 0; i < 16; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	r2 := b.sys.Replicas()[1]
	if r2.TCP().Stats().AcceptedConns == 0 {
		t.Fatal("scaled-up replica got no connections (listen not replayed?)")
	}

	if err := b.sys.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	states := b.sys.SlotStates()
	if states[1] != core.SlotTerminating {
		t.Fatalf("slot states after down: %v", states)
	}
	// Existing connections on the terminating replica keep working; no new
	// ones arrive there. Close all held conns → replica collected.
	if holder.failures != 0 {
		t.Fatalf("scale-down broke %d connections", holder.failures)
	}
	// The holder never closes; crash the client holder app to RST its
	// conns... instead, close via aborting from client side is complex —
	// simply verify lazy GC by waiting: connections are idle and stay, so
	// replica must still be terminating.
	b.net.Sim.RunFor(100 * sim.Millisecond)
	if b.sys.SlotStates()[1] != core.SlotTerminating {
		t.Fatal("terminating replica collected while connections alive")
	}
	// Now drop the held connections (client aborts) and watch the GC.
	holder.proc.Deliver("abortAll")
	b.net.Sim.RunFor(500 * sim.Millisecond)
	_ = r2
	if b.sys.SlotStates()[1] != core.SlotEmpty {
		t.Fatalf("lazy termination never collected: %v (conns=%d)",
			b.sys.SlotStates(), b.sys.TotalConns())
	}
	if b.sys.Stats().ReplicasGarbage != 1 {
		t.Fatalf("stats: %+v", b.sys.Stats())
	}
}

func TestASLRReRandomizationAcrossRecovery(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 1), 1)
	r := b.sys.Replicas()[0]
	seed1 := r.Procs()[0].ASLRSeed
	r.Procs()[0].Crash(sim.ErrKilled)
	b.net.Sim.RunFor(10 * sim.Millisecond)
	seed2 := b.sys.Replicas()[0].Procs()[0].ASLRSeed
	if seed1 == seed2 {
		t.Fatal("replica respawned with identical address-space layout")
	}
}
