package core_test

import (
	"testing"

	"neat/internal/bufpool"
	"neat/internal/core"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// newWatchdogBed is newBed with heartbeat failure detection instead of the
// paper-fidelity crash oracle.
func newWatchdogBed(t *testing.T, kind stack.Kind, slots [][]testbed.ThreadLoc, initial int) *bed {
	t.Helper()
	n := testbed.New(7)
	server := testbed.DefaultAMDHost(n, 0, len(slots))
	client := testbed.DefaultClientHost(n, 1, 2)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: kind, TCP: tcpeng.DefaultConfig(),
		Slots: slots, Syscall: testbed.ThreadLoc{Core: 1},
		InitialReplicas: initial,
		Watchdog:        core.WatchdogConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 2, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &bed{net: n, server: server, client: client, sys: sys, clisys: clisys}
	b.app = newSrvApp(server.AppThread(server.Machine.NumCores()-1), sys.SyscallProc())
	b.cli = newCliApp(client.AppThread(client.Machine.NumCores()-1), clisys.SyscallProc(), server)
	b.app.proc.Deliver("listen")
	n.Sim.RunFor(sim.Millisecond)
	if !b.app.ready {
		t.Fatal("listen never became ready")
	}
	return b
}

// detectionBound is the documented worst-case declaration latency:
// the first probe after the failure lags it by up to one interval, and
// Misses further intervals must elapse before the threshold is crossed.
func detectionBound(cfg core.WatchdogConfig) sim.Time {
	interval := 100 * sim.Microsecond
	if cfg.Interval != 0 {
		interval = cfg.Interval
	}
	misses := 3
	if cfg.Misses != 0 {
		misses = cfg.Misses
	}
	return sim.Time(misses+1) * interval
}

func TestWatchdogDetectsHungReplicaWithinBound(t *testing.T) {
	b := newWatchdogBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	holder := newHolderApp(b)
	for i := 0; i < 8; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	victim := b.sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = b.sys.Replicas()[1]
	}
	held := victim.TCP().NumConns()
	if held == 0 {
		t.Skip("seed put all connections on one replica")
	}

	// Livelock the TCP component: alive, but drains nothing. The crash
	// oracle of paper-fidelity mode would never fire here.
	victim.SockProc().Hang()
	b.net.Sim.RunFor(50 * sim.Millisecond)

	wd := b.sys.Watchdog()
	wst := wd.Stats()
	if wst.HangsDetected != 1 {
		t.Fatalf("hangs detected = %d, want 1 (stats %+v)", wst.HangsDetected, wst)
	}
	if wst.SpuriousDetected != 0 {
		t.Fatalf("spurious detections on a healthy system: %+v", wst)
	}
	if lat := wd.DetectionLatency().Max(); lat > detectionBound(core.WatchdogConfig{}) {
		t.Fatalf("detection latency %v exceeds (K+1)·interval = %v",
			lat, detectionBound(core.WatchdogConfig{}))
	}
	st := b.sys.Stats()
	if st.Recoveries != 1 || st.TCPStateLost != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	if b.app.failures != held {
		t.Fatalf("server app saw %d failures, want %d", b.app.failures, held)
	}

	// Zero unreachable: the service accepts new connections on both
	// replicas after the hang is cleared.
	before := b.cli.done
	b.connect(20)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != before+20 {
		t.Fatalf("post-recovery connects: done=%d want=%d (failed=%d resets=%d)",
			b.cli.done, before+20, b.cli.failed, b.cli.resets)
	}
}

func TestWatchdogRecoversHungDriver(t *testing.T) {
	b := newWatchdogBed(t, stack.Single, testbed.SingleSlots(2, 2), 2)
	b.connect(5)
	b.net.Sim.RunFor(500 * sim.Millisecond)
	if b.cli.done != 5 {
		t.Fatalf("warmup failed: %d", b.cli.done)
	}

	// Livelock the whole data plane: the driver stops moving packets.
	b.sys.Driver().Proc().Hang()
	b.net.Sim.RunFor(50 * sim.Millisecond)

	wst := b.sys.Watchdog().Stats()
	if wst.HangsDetected != 1 {
		t.Fatalf("hangs detected = %d (stats %+v)", wst.HangsDetected, wst)
	}
	if st := b.sys.Stats(); st.DriverRecoveries != 1 {
		t.Fatalf("driver recoveries = %d (stats %+v)", st.DriverRecoveries, st)
	}

	// The respawned driver re-binds every queue: traffic flows again.
	before := b.cli.done
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != before+10 {
		t.Fatalf("post-recovery connects: done=%d want=%d (failed=%d resets=%d)",
			b.cli.done, before+10, b.cli.failed, b.cli.resets)
	}
}

func TestWatchdogRecoversHungSyscallServer(t *testing.T) {
	b := newWatchdogBed(t, stack.Single, testbed.SingleSlots(2, 2), 2)
	b.connect(5)
	b.net.Sim.RunFor(500 * sim.Millisecond)
	if b.cli.done != 5 {
		t.Fatalf("warmup failed: %d", b.cli.done)
	}

	b.sys.Syscall().Proc().Hang()
	b.net.Sim.RunFor(50 * sim.Millisecond)

	if st := b.sys.Stats(); st.SyscallRecoveries != 1 {
		t.Fatalf("syscall recoveries = %d (stats %+v)", st.SyscallRecoveries, st)
	}

	// The listen table lives in the management plane and survived: the
	// server's existing listener keeps accepting without re-listening.
	before := b.cli.done
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != before+10 {
		t.Fatalf("post-recovery connects: done=%d want=%d (failed=%d resets=%d)",
			b.cli.done, before+10, b.cli.failed, b.cli.resets)
	}
}

func TestWatchdogCrashStormConvergesToQuarantine(t *testing.T) {
	b := newWatchdogBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	victim := b.sys.Replicas()[0]

	// Kill the replica's IP component every time it comes back. The ladder
	// must escalate component restart → whole-replica rebuild → quarantine
	// instead of respawning forever.
	for i := 0; i < 10 && b.sys.SlotStates()[0] != core.SlotQuarantined; i++ {
		if p := victim.EntryProc(); !p.Dead() {
			p.Crash(sim.ErrKilled)
		}
		b.net.Sim.RunFor(10 * sim.Millisecond)
	}

	st := b.sys.Stats()
	states := b.sys.SlotStates()
	if states[0] != core.SlotQuarantined || st.SlotsQuarantined != 1 {
		t.Fatalf("storm did not converge to quarantine: states=%v stats=%+v", states, st)
	}
	// Bounded respawn work: at most MaxRestarts-1 recovery cycles before
	// the slot is fenced (default M=5).
	if st.Recoveries >= 5 {
		t.Fatalf("unbounded respawns during storm: %d recoveries", st.Recoveries)
	}
	if st.ReplicaRebuilds == 0 {
		t.Fatal("escalation never reached the whole-replica-rebuild rung")
	}

	// The surviving replica keeps the service up.
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("service down after quarantine: done=%d failed=%d resets=%d",
			b.cli.done, b.cli.failed, b.cli.resets)
	}
	if b.sys.NumActive() != 1 {
		t.Fatalf("active replicas = %d, want 1", b.sys.NumActive())
	}
}

func TestWatchdogSpuriousDetectionOnLossyChannel(t *testing.T) {
	b := newWatchdogBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	victim := b.sys.Replicas()[0]

	// Drop almost every delivery to the IP component: heartbeat probes
	// vanish, so the detector — which cannot distinguish a dead process
	// from an unreachable one — eventually declares it failed even though
	// it is healthy. The kill-and-respawn that follows is safe, just
	// wasted work.
	victim.EntryProc().SetDropRate(0.97)
	b.net.Sim.RunFor(100 * sim.Millisecond)

	wst := b.sys.Watchdog().Stats()
	if wst.SpuriousDetected == 0 {
		t.Fatalf("lossy channel never triggered a spurious detection: %+v", wst)
	}
	if st := b.sys.Stats(); st.Recoveries == 0 {
		t.Fatalf("spurious detection did not trigger recovery: %+v", st)
	}

	// The replacement process has a clean channel: service intact.
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("service degraded after spurious detection: done=%d failed=%d",
			b.cli.done, b.cli.failed)
	}
}

// TestSecondCrashWithinRecoveryWindow is the regression test for the
// recovery-merge fix: in paper-fidelity (oracle) mode, when both
// components of a multi-component replica die within one RecoveryDelay
// window, the second crash used to be silently dropped — its connection
// loss went unrecorded and the recovery stayed classified as transparent.
func TestSecondCrashWithinRecoveryWindow(t *testing.T) {
	b := newBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	holder := newHolderApp(b)
	for i := 0; i < 10; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	victim := b.sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = b.sys.Replicas()[1]
	}
	held := victim.TCP().NumConns()
	if held == 0 {
		t.Skip("seed put all connections on one replica")
	}

	// First the stateless IP component dies (transparent so far), then the
	// TCP component dies 100 µs later — well inside the 500 µs respawn
	// window of the first recovery.
	victim.EntryProc().Crash(sim.ErrKilled)
	b.net.Sim.RunFor(100 * sim.Microsecond)
	victim.SockProc().Crash(sim.ErrKilled)
	b.net.Sim.RunFor(200 * sim.Millisecond)

	st := b.sys.Stats()
	if st.Recoveries != 1 || st.SecondaryCrashes != 1 {
		t.Fatalf("second crash not merged into the cycle: %+v", st)
	}
	if st.TransparentRecov != 0 || st.TCPStateLost != 1 {
		t.Fatalf("recovery misclassified as transparent: %+v", st)
	}
	if int(st.ConnectionsLost) != held {
		t.Fatalf("lost %d connections, held %d", st.ConnectionsLost, held)
	}
	if b.app.failures != held {
		t.Fatalf("server app saw %d failures, want %d", b.app.failures, held)
	}

	// Both components respawned; the replica serves again.
	b.connect(20)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 20 {
		t.Fatalf("post-recovery connects: done=%d failed=%d resets=%d",
			b.cli.done, b.cli.failed, b.cli.resets)
	}
}

// TestQuarantineAllReplicasEntersDropAll covers the zero-active-replicas
// RSS state: with every slot fenced, the NIC is put into the explicit
// drop-all state (empty RSS set, unmatched flows dropped in hardware) and
// connection attempts are refused cleanly instead of hashing onto dead
// queues.
func TestQuarantineAllReplicasEntersDropAll(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 2), 2)
	b.connect(10)
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("warmup failed: %d", b.cli.done)
	}

	if err := b.sys.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	if err := b.sys.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if b.sys.NumActive() != 0 {
		t.Fatalf("active=%d after quarantining all slots", b.sys.NumActive())
	}
	if q := b.server.NIC.RSSQueues(); len(q) != 0 {
		t.Fatalf("RSS set not empty with zero active replicas: %v", q)
	}

	// A fresh inbound SYN (no exact filter, empty RSS set) is dropped in
	// hardware, not hashed onto a dead queue.
	tcp := proto.TCPHeader{SrcPort: 4242, DstPort: 80, Flags: proto.TCPSyn, Window: 65535}
	raw := proto.AppendTCP(bufpool.Get(proto.WireSizeTCP(&tcp, 0))[:0],
		proto.EthernetHeader{Dst: b.server.MAC, Src: b.client.MAC, Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Protocol: proto.ProtoTCP, Src: b.client.IP, Dst: b.server.IP},
		tcp, nil)
	drops := b.server.NIC.Stats().RxDropNoRSS
	b.server.NIC.Receive(raw)
	if got := b.server.NIC.Stats().RxDropNoRSS; got != drops+1 {
		t.Fatalf("RxDropNoRSS = %d, want %d (drop-all not engaged)", got, drops+1)
	}

	// Real client connects see remote silence (their SYNs — and the
	// retransmissions — are dropped in hardware, like against a dead
	// host): nothing completes, nothing panics, and every attempt is
	// accounted as a hardware drop.
	b.connect(3)
	b.net.Sim.RunFor(500 * sim.Millisecond)
	if b.cli.done != 10 || b.cli.resets != 0 {
		t.Fatalf("traffic against a drained system: done=%d resets=%d",
			b.cli.done, b.cli.resets)
	}
	if got := b.server.NIC.Stats().RxDropNoRSS; got < drops+3 {
		t.Fatalf("SYNs not dropped in hardware: RxDropNoRSS=%d want >=%d", got, drops+3)
	}
}

// TestEscalationWindowResetsAfterCleanRecovery is the regression guard for
// the sliding failure window in the escalation ladder: a slot that
// recovers cleanly and then runs clean for longer than WatchdogConfig.Window
// has its failure history pruned, so widely spaced failures are each
// treated as a first strike — component restart only, never rebuild or
// quarantine — no matter how many accumulate over a long run. Failures
// packed inside one window must still climb the ladder to quarantine.
func TestEscalationWindowResetsAfterCleanRecovery(t *testing.T) {
	b := newWatchdogBed(t, stack.Multi, testbed.MultiSlots(2, 2), 2)
	victim := b.sys.Replicas()[0]

	// Eight failures, each spaced well beyond the default 50 ms window:
	// every escalation sees a pruned history and stays on the first rung.
	for i := 0; i < 8; i++ {
		if p := victim.EntryProc(); !p.Dead() {
			p.Crash(sim.ErrKilled)
		}
		b.net.Sim.RunFor(100 * sim.Millisecond)
	}
	st := b.sys.Stats()
	if b.sys.SlotStates()[0] == core.SlotQuarantined || st.SlotsQuarantined != 0 {
		t.Fatalf("spaced failures quarantined the slot: %+v", st)
	}
	if st.ReplicaRebuilds != 0 {
		t.Fatalf("spaced failures reached the rebuild rung: %+v", st)
	}
	if st.Recoveries < 8 {
		t.Fatalf("recoveries = %d, want >= 8 (one per spaced failure)", st.Recoveries)
	}

	// The history is forgotten, not the mechanism: failures packed inside
	// one window still converge to quarantine.
	for i := 0; i < 10 && b.sys.SlotStates()[0] != core.SlotQuarantined; i++ {
		if p := victim.EntryProc(); !p.Dead() {
			p.Crash(sim.ErrKilled)
		}
		b.net.Sim.RunFor(10 * sim.Millisecond)
	}
	if b.sys.SlotStates()[0] != core.SlotQuarantined {
		t.Fatal("tight failures no longer quarantine after the spaced run")
	}
}
