package core_test

import (
	"testing"

	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// newSteerBed is newBed with an explicit seed and steering configuration:
// the placement-plane tests need non-default policies and drain deadlines.
func newSteerBed(t *testing.T, seed int64, kind stack.Kind, slots [][]testbed.ThreadLoc,
	initial int, steering steer.Config) *bed {
	t.Helper()
	n := testbed.New(seed)
	server := testbed.DefaultAMDHost(n, 0, len(slots))
	client := testbed.DefaultClientHost(n, 1, 2)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: kind, TCP: tcpeng.DefaultConfig(),
		Slots: slots, Syscall: testbed.ThreadLoc{Core: 1},
		InitialReplicas: initial,
		Steering:        steering,
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 2, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &bed{net: n, server: server, client: client, sys: sys, clisys: clisys}
	b.app = newSrvApp(server.AppThread(server.Machine.NumCores()-1), sys.SyscallProc())
	b.cli = newCliApp(client.AppThread(client.Machine.NumCores()-1), clisys.SyscallProc(), server)
	b.app.proc.Deliver("listen")
	n.Sim.RunFor(sim.Millisecond)
	if !b.app.ready {
		t.Fatal("listen never became ready")
	}
	return b
}

// talkerApp keeps connections open and exchanges a round of echo traffic
// on demand — the probe for "is this flow still reaching its replica".
type talkerApp struct {
	proc     *sim.Proc
	lib      *socketlib.Lib
	server   *testbed.Host
	socks    []*socketlib.Socket
	open     int
	echoes   int
	failures int
}

func newTalkerApp(b *bed) *talkerApp {
	a := &talkerApp{server: b.server}
	a.proc = sim.NewProc(b.client.AppThread(b.client.Machine.NumCores()-2), "talker", a,
		sim.ProcConfig{Component: "app"})
	a.lib = socketlib.New(a.proc, b.clisys.SyscallProc(), ipc.DefaultCosts())
	return a
}

func (a *talkerApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(200)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	switch msg {
	case "dial":
		s := a.lib.Connect(ctx, a.server.IP, 80)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				a.open++
				a.socks = append(a.socks, s)
			} else {
				a.failures++
			}
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
			if len(data) > 0 {
				a.echoes++
			}
		}
		s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
			a.failures++
			a.open--
		}
	case "ping":
		for _, s := range a.socks {
			s.Send(ctx, []byte("ping"))
		}
	}
}

// pingAll sends one echo round over every open connection and returns how
// many echoes came back within 200 ms of simulated time.
func (a *talkerApp) pingAll(b *bed) int {
	before := a.echoes
	a.proc.Deliver("ping")
	b.net.Sim.RunFor(200 * sim.Millisecond)
	return a.echoes - before
}

// TestDrainScaleDown is the graceful-drain acceptance test: scaling down
// mid-burst must lose zero established connections — in-flight requests
// on the retiring replica complete, only new placement avoids it, and the
// slot is collected once its last connection closes (well before the
// generous deadline).
func TestDrainScaleDown(t *testing.T) {
	b := newSteerBed(t, 7, stack.Single, testbed.SingleSlots(2, 2), 2,
		steer.Config{DrainDeadline: 2 * sim.Second})
	b.connect(30)
	// Let the burst get established but not complete, then retire a slot.
	b.net.Sim.RunFor(500 * sim.Microsecond)
	if err := b.sys.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	b.net.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 30 || b.cli.failed != 0 || b.cli.resets != 0 {
		t.Fatalf("drain lost connections: done=%d failed=%d resets=%d",
			b.cli.done, b.cli.failed, b.cli.resets)
	}
	st := b.sys.Stats()
	if st.DrainForcedCloses != 0 || st.DrainDeadlineFires != 0 {
		t.Fatalf("graceful drain used force: %+v", st)
	}
	if st.ConnectionsLost != 0 {
		t.Fatalf("connections lost during drain: %d", st.ConnectionsLost)
	}
	if b.sys.SlotStates()[1] != core.SlotEmpty {
		t.Fatalf("retired slot not collected: %v (conns=%d)",
			b.sys.SlotStates(), b.sys.TotalConns())
	}
	if b.sys.Stats().ReplicasGarbage != 1 {
		t.Fatalf("stats: %+v", b.sys.Stats())
	}
}

// TestDrainDeadlineForcesRetirement: when the drain deadline fires with
// connections still alive, they are reset (the server app observes
// ErrReplicaRetired) and the slot is collected anyway.
func TestDrainDeadlineForcesRetirement(t *testing.T) {
	b := newSteerBed(t, 7, stack.Single, testbed.SingleSlots(2, 2), 2,
		steer.Config{DrainDeadline: 50 * sim.Millisecond})
	holder := newHolderApp(b)
	for i := 0; i < 12; i++ {
		holder.proc.Deliver("hold")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	if holder.open != 12 {
		t.Fatalf("held=%d", holder.open)
	}
	victim := b.sys.Replicas()[1]
	held := victim.TCP().NumConns()
	if held == 0 {
		t.Skip("seed put no connections on the retiring replica")
	}
	if err := b.sys.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	if b.sys.SlotStates()[1] != core.SlotTerminating {
		t.Fatalf("states after down: %v", b.sys.SlotStates())
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)

	st := b.sys.Stats()
	if st.DrainDeadlineFires != 1 {
		t.Fatalf("deadline fires = %d, want 1 (%+v)", st.DrainDeadlineFires, st)
	}
	if int(st.DrainForcedCloses) != held {
		t.Fatalf("forced closes = %d, want %d", st.DrainForcedCloses, held)
	}
	if b.sys.SlotStates()[1] != core.SlotEmpty {
		t.Fatalf("slot not collected after deadline: %v", b.sys.SlotStates())
	}
	// The server application owns the reset sockets and is told.
	if b.app.failures != held {
		t.Fatalf("server app saw %d resets, want %d", b.app.failures, held)
	}
}

// TestFlowPinningAcrossRebinds is the satellite-3 regression: established
// connections keep landing on their owning replica's queue through
// scale-up, scale-down and a respawn — each of which reprograms the RSS
// indirection (here with the ring policy, which genuinely remaps hash
// space on every membership change).
func TestFlowPinningAcrossRebinds(t *testing.T) {
	b := newSteerBed(t, 7, stack.Multi, testbed.MultiSlots(2, 3), 2,
		steer.Config{Policy: steer.PolicyRing})
	talker := newTalkerApp(b)
	for i := 0; i < 12; i++ {
		talker.proc.Deliver("dial")
	}
	b.net.Sim.RunFor(200 * sim.Millisecond)
	if talker.open != 12 {
		t.Fatalf("open=%d failures=%d", talker.open, talker.failures)
	}
	if got := talker.pingAll(b); got != 12 {
		t.Fatalf("baseline echo round: %d/12", got)
	}

	// Scale-up: ring gains a member, unpinned hash space remaps.
	if _, err := b.sys.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if got := talker.pingAll(b); got != 12 {
		t.Fatalf("echo round after scale-up: %d/12 (failures=%d)", got, talker.failures)
	}

	// Scale-down: the new (empty) replica retires, another remap.
	if err := b.sys.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	if got := talker.pingAll(b); got != 12 {
		t.Fatalf("echo round after scale-down: %d/12 (failures=%d)", got, talker.failures)
	}

	// Respawn: crash a stateless IP component; recovery rebinds the queue
	// and reprograms RSS, the TCP state (and the pinning filters) survive.
	victim := b.sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = b.sys.Replicas()[1]
	}
	victim.EntryProc().Crash(sim.ErrKilled)
	b.net.Sim.RunFor(100 * sim.Millisecond)
	if got := talker.pingAll(b); got != 12 {
		t.Fatalf("echo round after respawn: %d/12 (failures=%d)", got, talker.failures)
	}
	if talker.failures != 0 {
		t.Fatalf("rebinds broke %d connections", talker.failures)
	}
	if st := b.sys.Stats(); st.TransparentRecov != 1 {
		t.Fatalf("expected one transparent recovery: %+v", st)
	}
}

// TestConnectPlacementReproducible is the satellite-1 regression: with
// placement drawing from the simulator's seeded RNG, two runs from the
// same seed place every connection identically — per-replica accepted
// counts match exactly. (A placer with private randomness would diverge.)
func TestConnectPlacementReproducible(t *testing.T) {
	accepted := func() []uint64 {
		b := newSteerBed(t, 11, stack.Single, testbed.SingleSlots(2, 3), 3,
			steer.Config{})
		b.connect(24)
		b.net.Sim.RunFor(2 * sim.Second)
		if b.cli.done != 24 {
			t.Fatalf("done=%d failed=%d resets=%d", b.cli.done, b.cli.failed, b.cli.resets)
		}
		var out []uint64
		for _, r := range b.sys.Replicas() {
			out = append(out, r.TCP().Stats().AcceptedConns)
		}
		return out
	}
	a, bb := accepted(), accepted()
	if len(a) != len(bb) {
		t.Fatalf("replica counts differ: %v vs %v", a, bb)
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("placement diverged between identical runs: %v vs %v", a, bb)
		}
	}
}
