// Watchdog: heartbeat-based failure detection for the whole NEaT plane.
//
// Paper-fidelity mode relies on the microkernel's instantaneous crash
// notification (sim.OnCrash) — a perfect oracle that cannot see a hung
// process, because a livelocked component is alive as far as the kernel is
// concerned while draining no work. The watchdog replaces the oracle with
// an imperfect detector of the kind a real reincarnation server must use:
// it pings every supervised process on a fixed interval and declares a
// process failed after K consecutive unanswered probes.
//
// Heartbeats are answered by the dispatch loop itself, never by the
// component's handler (sim.HeartbeatPing), so an ack certifies exactly
// "this process is draining its inbox". Crashes (deliveries dropped),
// hangs (deliveries queued but never dispatched) and sufficiently lossy
// message channels all look identical to the prober: missed acks. The
// third case makes the detector imperfect — a spurious detection kills and
// respawns a healthy process, which is safe (state loss is the same as a
// crash) but wasted work, the classic trade-off of timeout-based failure
// detectors.
//
// Detection latency is bounded: a process that fails at time t is declared
// dead no later than t + (Misses+1)·Interval + one probe round-trip — the
// first probe after the failure may lag it by up to a full interval, and
// Misses further intervals must elapse before the threshold is crossed.
package core

import (
	"errors"

	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/sim"
)

// ErrWatchdogKilled is the crash cause recorded when the watchdog kills a
// process it declared failed (hung, or spuriously suspected) before
// respawning it.
var ErrWatchdogKilled = errors.New("core: killed by watchdog after missed heartbeats")

// WatchdogConfig tunes heartbeat-based failure detection.
type WatchdogConfig struct {
	// Enabled switches failure detection from the paper-fidelity
	// instantaneous crash oracle to heartbeat probing. Default off: the
	// oracle reproduces §3.6/Table 3 exactly.
	Enabled bool
	// Interval between probe rounds (default 100 µs).
	Interval sim.Time
	// Misses is K: a process is declared failed after K consecutive
	// unanswered probes (default 3).
	Misses int
	// MaxRestarts is M: the M-th failure of one slot within Window
	// quarantines the slot instead of respawning again (default 5).
	MaxRestarts int
	// Window is the sliding failure window for escalation and backoff
	// (default 50 ms).
	Window sim.Time
	// BackoffMax caps the exponential respawn backoff (default 8 ms).
	BackoffMax sim.Time
}

// withDefaults fills zero fields. Called unconditionally by New so the
// backoff parameters are usable even in oracle mode.
func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval == 0 {
		c.Interval = 100 * sim.Microsecond
	}
	if c.Misses == 0 {
		c.Misses = 3
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 5
	}
	if c.Window == 0 {
		c.Window = 50 * sim.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 8 * sim.Millisecond
	}
	return c
}

// WatchdogStats counts detector activity.
type WatchdogStats struct {
	ProbesSent       uint64
	AcksReceived     uint64
	ProbesMissed     uint64
	CrashesDetected  uint64 // declared processes that were dead
	HangsDetected    uint64 // declared processes that were hung (alive, not draining)
	SpuriousDetected uint64 // declared processes that were healthy (lossy channel)
}

// Watchdog is the prober process. It runs on the SYSCALL thread (the
// management-plane core): a distinct process, so a hung SYSCALL server
// does not take the detector down with it. The watchdog itself is the root
// of the supervision tree and is assumed reliable, as the reincarnation
// server is in MINIX-lineage systems.
type Watchdog struct {
	sys  *System
	cfg  WatchdogConfig
	proc *sim.Proc

	seq uint64
	// targets is the ordered supervised set — iteration must be
	// deterministic, so a map is used only for lookup.
	targets []*sim.Proc
	entries map[*sim.Proc]*watchEntry
	timer   sim.Timer

	stats  WatchdogStats
	detect metrics.Histogram // failure-onset → declaration latency
}

type watchEntry struct {
	awaiting bool   // a probe is outstanding
	missed   int    // consecutive unanswered probes
	lastSeq  uint64 // seq of the outstanding probe; stale acks are ignored
	// conn is the probe channel to the target. Probe cost is charged
	// explicitly (wdProbeCycles), so the channel itself carries zero
	// Costs: the watchdog's wake path is the kernel's, not a data channel.
	conn *ipc.Conn
}

// wdTick drives one probe round.
type wdTick struct{}

// Per-operation cycle costs of the prober (small: the watchdog must stay
// negligible next to the data plane).
const (
	wdTickCycles  = 200
	wdProbeCycles = 120
	wdAckCycles   = 60
)

func newWatchdog(sys *System) *Watchdog {
	w := &Watchdog{sys: sys, cfg: sys.cfg.Watchdog,
		entries: map[*sim.Proc]*watchEntry{}}
	w.proc = sim.NewProc(sys.cfg.SyscallThread, "watchdog", w, sim.ProcConfig{
		Component: "watchdog", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 80,
	})
	sys.s.DeliverAt(sys.s.Now()+w.cfg.Interval, w.proc, wdTick{})
	return w
}

// Proc returns the watchdog's process.
func (w *Watchdog) Proc() *sim.Proc { return w.proc }

// Stats returns a snapshot of the detector counters.
func (w *Watchdog) Stats() WatchdogStats { return w.stats }

// DetectionLatency returns the failure-onset → declaration latency
// distribution across all detections.
func (w *Watchdog) DetectionLatency() *metrics.Histogram { return &w.detect }

// NumWatched returns the supervised-process count.
func (w *Watchdog) NumWatched() int { return len(w.targets) }

// Watch adds p to the supervised set (idempotent).
func (w *Watchdog) Watch(p *sim.Proc) {
	if p == nil {
		return
	}
	if _, ok := w.entries[p]; ok {
		return
	}
	w.entries[p] = &watchEntry{conn: ipc.New(p, ipc.Costs{})}
	w.targets = append(w.targets, p)
}

// Unwatch removes p from the supervised set (no-op if absent).
func (w *Watchdog) Unwatch(p *sim.Proc) {
	if _, ok := w.entries[p]; !ok {
		return
	}
	delete(w.entries, p)
	for i, t := range w.targets {
		if t == p {
			w.targets = append(w.targets[:i], w.targets[i+1:]...)
			break
		}
	}
}

// HandleMessage implements sim.Handler.
func (w *Watchdog) HandleMessage(ctx *sim.Context, msg sim.Message) {
	switch m := msg.(type) {
	case wdTick:
		w.tick(ctx)
		ctx.Retimer(&w.timer, w.cfg.Interval, wdTick{})
	case sim.HeartbeatAck:
		ctx.Charge(wdAckCycles)
		if e := w.entries[m.From]; e != nil && m.Seq == e.lastSeq {
			e.awaiting = false
			e.missed = 0
			w.stats.AcksReceived++
		}
	}
}

// tick runs one probe round: count probes that went unanswered since the
// previous round, declare processes that crossed the miss threshold, and
// ping the rest.
func (w *Watchdog) tick(ctx *sim.Context) {
	ctx.Charge(wdTickCycles)
	var failed []*sim.Proc
	for _, p := range w.targets {
		e := w.entries[p]
		if e.awaiting {
			e.missed++
			w.stats.ProbesMissed++
			if e.missed >= w.cfg.Misses {
				// Declared after the loop: declaration mutates the target
				// set (unwatch, escalation kills).
				failed = append(failed, p)
				continue
			}
		}
		w.seq++
		e.lastSeq = w.seq
		e.awaiting = true
		w.stats.ProbesSent++
		ctx.Charge(wdProbeCycles)
		e.conn.Send(ctx, sim.HeartbeatPing{ReplyTo: w.proc, Seq: w.seq})
	}
	for _, p := range failed {
		w.declare(p)
	}
}

// declare classifies and reports a failed process, then hands it to the
// management plane for recovery.
func (w *Watchdog) declare(p *sim.Proc) {
	switch {
	case p.Hung():
		w.stats.HangsDetected++
	case p.Dead():
		w.stats.CrashesDetected++
	default:
		w.stats.SpuriousDetected++
	}
	if p.Dead() || p.Hung() {
		w.detect.Observe(w.sys.s.Now() - p.FailedAt())
	}
	w.Unwatch(p)
	w.sys.watchdogFailure(p)
}
