package core

import (
	"neat/internal/sim"
)

// AutoScaler implements §3.4's dynamic scaling policy: the system boots
// with the minimum number of replicas and, when the stack becomes
// overloaded, automatically spawns a new replica; when the load drops it
// lazily terminates replicas again. Decisions are made from periodic
// utilization samples of the replica hardware threads. The scaler only
// decides when to scale; which replica retires on scale-down is the
// placement policy's call (System.ScaleDown asks the steer.Placer — the
// least-loaded policy retires the emptiest replica, the cheapest drain).
type AutoScaler struct {
	sys  *System
	proc *sim.Proc
	cfg  AutoScalerConfig

	lastBusy map[*sim.HWThread]sim.Time
	lastAt   sim.Time
	stats    AutoScalerStats
}

// AutoScalerConfig tunes the scaling policy.
type AutoScalerConfig struct {
	// Interval between utilization samples (default 20 ms).
	Interval sim.Time
	// HighWater: scale up when any replica's busiest thread exceeds it
	// (default 0.92).
	HighWater float64
	// LowWater: scale down when the whole stack's average utilization
	// would stay below HighWater even with one replica fewer
	// (default 0.55).
	LowWater float64
	// Cooldown samples to skip after a scaling action (default 2); lets
	// the NIC's RSS rebalancing and connection churn settle (§3.4: "we
	// expect the system to rebalance itself as soon as existing
	// connections terminate and new connections appear").
	Cooldown int
}

// AutoScalerStats counts scaling decisions.
type AutoScalerStats struct {
	Samples    uint64
	ScaleUps   uint64
	ScaleDowns uint64
}

type scalerTick struct{}

// StartAutoScaler attaches the policy process to the system on thread th
// (in the paper this logic lives with the other management processes on
// the OS core).
func (sys *System) StartAutoScaler(th *sim.HWThread, cfg AutoScalerConfig) *AutoScaler {
	if cfg.Interval == 0 {
		cfg.Interval = 20 * sim.Millisecond
	}
	if cfg.HighWater == 0 {
		cfg.HighWater = 0.92
	}
	if cfg.LowWater == 0 {
		cfg.LowWater = 0.55
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2
	}
	a := &AutoScaler{sys: sys, cfg: cfg, lastBusy: map[*sim.HWThread]sim.Time{}}
	cooldown := 0
	a.proc = sim.NewProc(th, "autoscaler", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(800)
		maxU, avgU, n := a.sample(ctx.Sim.Now())
		a.stats.Samples++
		defer ctx.TimerAfter(cfg.Interval, scalerTick{})
		if a.stats.Samples == 1 {
			return // first sample only primes the counters
		}
		if cooldown > 0 {
			cooldown--
			return
		}
		switch {
		case maxU > cfg.HighWater:
			if _, err := sys.ScaleUp(); err == nil {
				a.stats.ScaleUps++
				cooldown = cfg.Cooldown
			}
		case n > 1 && avgU < cfg.LowWater && avgU*float64(n)/float64(n-1) < cfg.HighWater:
			if err := sys.ScaleDown(); err == nil {
				a.stats.ScaleDowns++
				cooldown = cfg.Cooldown
			}
		}
	}), sim.ProcConfig{Component: "mgmt"})
	sys.sendProc(a.proc, scalerTick{})
	return a
}

// sample returns (max, average) utilization across active replica threads
// since the previous sample, plus the active replica count.
func (a *AutoScaler) sample(now sim.Time) (maxU, avgU float64, replicas int) {
	var sum float64
	var threads int
	for _, sl := range a.sys.slots {
		if sl.state != SlotActive {
			continue
		}
		replicas++
		for _, p := range sl.replica.Procs() {
			th := p.Thread()
			busy := th.BusyTotal()
			if prev, ok := a.lastBusy[th]; ok && now > a.lastAt {
				u := sim.Utilization(prev, busy, a.lastAt, now)
				sum += u
				threads++
				if u > maxU {
					maxU = u
				}
			}
			a.lastBusy[th] = busy
		}
	}
	a.lastAt = now
	if threads > 0 {
		avgU = sum / float64(threads)
	}
	return maxU, avgU, replicas
}

// Stats returns a snapshot of the scaler counters.
func (a *AutoScaler) Stats() AutoScalerStats { return a.stats }
