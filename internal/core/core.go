// Package core implements NEaT itself: the management plane that turns a
// set of isolated stack replicas into one logical network stack (§3).
//
// It owns:
//
//   - replica lifecycle — spawning replicas on dedicated hardware threads,
//     binding each to its NIC queue, and replaying listening sockets to new
//     incarnations;
//   - connection steering — installing exact flow-director filters in the
//     NIC as connections establish, removing them as connections die, and
//     maintaining the RSS set for new connections (§4);
//   - failure recovery — a crashed component is replaced by a fresh
//     process; stateless components (PF/IP/UDP) recover transparently,
//     while a TCP (or single-component) crash loses exactly that replica's
//     connections and nothing else (§3.6, Table 3);
//   - scaling — spawning replicas under load and lazily terminating them
//     when load drops: terminating replicas leave the RSS set but serve
//     their existing connections until the count drops to zero (§3.4);
//   - the SYSCALL server, which fans out listens and routes connects to a
//     random replica — the address-space re-randomization of §3.8 falls
//     out of that choice because every replica incarnation has a fresh
//     ASLR seed.
package core

import (
	"errors"
	"fmt"

	"neat/internal/nicdev"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/sysserver"
	"neat/internal/tcpeng"
)

// SlotState is the lifecycle state of a replica slot.
type SlotState int

// Slot states.
const (
	SlotEmpty SlotState = iota
	SlotActive
	SlotTerminating // lazy termination: draining connections (§3.4)
	SlotRecovering
)

// String names the state.
func (s SlotState) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotActive:
		return "active"
	case SlotTerminating:
		return "terminating"
	case SlotRecovering:
		return "recovering"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Config assembles a NEaT system.
type Config struct {
	// Stack is the replica template (Name is overridden per replica).
	Stack stack.Config
	// Threads lists, per replica slot, the hardware threads its processes
	// run on (1 for single-component, 2 for multi-component). The number
	// of slots bounds the replica count and must not exceed the NIC queue
	// count.
	Threads [][]*sim.HWThread
	// InitialReplicas is the number of slots activated at boot (default:
	// all).
	InitialReplicas int
	// NIC and Driver are the shared device and its driver process.
	NIC    *nicdev.NIC
	Driver *nicdev.Driver
	// SyscallThread hosts the SYSCALL server.
	SyscallThread *sim.HWThread
	// RecoveryDelay models the time the reincarnation server needs to
	// spawn a replacement process (default 500 µs).
	RecoveryDelay sim.Time
	// AutoRecover enables crash-triggered recovery.
	AutoRecover bool
	// UseFlowFilters steers established connections with exact NIC
	// filters; disabling it is the pure-RSS ablation.
	UseFlowFilters bool
	// CheckpointInterval enables checkpoint-based stateful TCP recovery
	// (§2.1's alternative to stateless recovery): every interval each
	// replica snapshots its TCP state, and after a TCP crash the new
	// incarnation restores the latest snapshot instead of losing the
	// connections. 0 disables (the paper's default, stateless recovery).
	CheckpointInterval sim.Time
	// UseNICFlowTracking enables the paper's proposed hardware extension
	// (§4): the NIC itself pins every flow to the queue RSS first assigned
	// it, removing the need for software-managed per-connection filters.
	// NICTrackingTableSize bounds the hardware table (default 8192, the
	// capacity the paper quotes for Intel 10G filters).
	UseNICFlowTracking   bool
	NICTrackingTableSize int
}

// Stats counts management-plane events.
type Stats struct {
	Recoveries          uint64 // replica/component restarts
	TCPStateLost        uint64 // recoveries that lost TCP connections
	TransparentRecov    uint64 // recoveries with no visible state loss
	ConnectionsLost     uint64 // connections dropped by failures
	Checkpoints         uint64
	ConnectionsRestored uint64
	ScaleUps            uint64
	ScaleDowns          uint64
	ReplicasGarbage     uint64 // lazily terminated replicas collected
	FiltersInstalled    uint64
	FiltersRemoved      uint64
}

// ErrNoFreeSlot is returned by ScaleUp when every slot is in use.
var ErrNoFreeSlot = errors.New("core: no free replica slot")

// System is one NEaT network stack: N replicas, a SYSCALL server, a NIC.
type System struct {
	s   *sim.Simulator
	cfg Config

	slots []*slot
	sys   *sysserver.Server

	listens []stack.OpListen

	// conns tracks (replica, connID) → owning app for crash notification.
	conns map[*stack.Replica]map[uint64]*sim.Proc

	// checkpoints holds the latest TCP snapshot per slot (stateful
	// recovery mode).
	checkpoints map[int]*tcpeng.Snapshot

	// expectedKills marks processes being killed intentionally (GC of
	// terminated replicas) so the crash watcher ignores them.
	expectedKills map[*sim.Proc]bool

	stats Stats
}

type slot struct {
	index   int
	state   SlotState
	replica *stack.Replica
	threads []*sim.HWThread
}

// New boots a NEaT system.
func New(s *sim.Simulator, cfg Config) (*System, error) {
	if cfg.NIC == nil || cfg.Driver == nil {
		return nil, errors.New("core: NIC and Driver are required")
	}
	if len(cfg.Threads) == 0 {
		return nil, errors.New("core: at least one replica slot required")
	}
	if len(cfg.Threads) > cfg.NIC.NumQueues() {
		return nil, fmt.Errorf("core: %d slots but NIC has %d queues",
			len(cfg.Threads), cfg.NIC.NumQueues())
	}
	if cfg.InitialReplicas == 0 {
		cfg.InitialReplicas = len(cfg.Threads)
	}
	if cfg.RecoveryDelay == 0 {
		cfg.RecoveryDelay = 500 * sim.Microsecond
	}
	sys := &System{
		s: s, cfg: cfg,
		conns:         map[*stack.Replica]map[uint64]*sim.Proc{},
		expectedKills: map[*sim.Proc]bool{},
		checkpoints:   map[int]*tcpeng.Snapshot{},
	}
	for i := range cfg.Threads {
		sys.slots = append(sys.slots, &slot{index: i, threads: cfg.Threads[i]})
	}
	if cfg.UseNICFlowTracking {
		size := cfg.NICTrackingTableSize
		if size == 0 {
			size = 8192
		}
		cfg.NIC.EnableFlowTracking(size)
		sys.cfg = cfg
	}
	sys.sys = sysserver.New(cfg.SyscallThread, sys, cfg.Stack.IPC)
	for i := 0; i < cfg.InitialReplicas && i < len(sys.slots); i++ {
		sys.activate(sys.slots[i])
	}
	sys.updateRSS()
	if cfg.CheckpointInterval > 0 {
		sys.scheduleCheckpoints()
	}
	if cfg.AutoRecover {
		s.OnCrash(sys.onCrash)
	}
	return sys, nil
}

// SyscallProc returns the SYSCALL server process — the address
// applications send control-plane socket calls to.
func (sys *System) SyscallProc() *sim.Proc { return sys.sys.Proc() }

// Syscall returns the SYSCALL server.
func (sys *System) Syscall() *sysserver.Server { return sys.sys }

// Stats returns a snapshot of the management counters.
func (sys *System) Stats() Stats { return sys.stats }

// Replicas returns the live replicas (active and terminating).
func (sys *System) Replicas() []*stack.Replica {
	var out []*stack.Replica
	for _, sl := range sys.slots {
		if sl.state == SlotActive || sl.state == SlotTerminating || sl.state == SlotRecovering {
			out = append(out, sl.replica)
		}
	}
	return out
}

// NumActive returns the number of active (non-terminating) replicas.
func (sys *System) NumActive() int {
	n := 0
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			n++
		}
	}
	return n
}

// SlotStates reports each slot's state (for tests and topology dumps).
func (sys *System) SlotStates() []SlotState {
	out := make([]SlotState, len(sys.slots))
	for i, sl := range sys.slots {
		out[i] = sl.state
	}
	return out
}

// TotalConns sums live PCBs across replicas.
func (sys *System) TotalConns() int {
	n := 0
	for _, r := range sys.Replicas() {
		n += r.TCP().NumConns()
	}
	return n
}

// activate builds a replica in an empty slot and wires it up.
func (sys *System) activate(sl *slot) {
	cfg := sys.cfg.Stack
	cfg.Name = fmt.Sprintf("neat%d", sl.index)
	// Partition the ephemeral port space across slots: replicas share the
	// host IP, so distinct ranges guarantee collision-free 4-tuples for
	// active opens — the port-space analogue of NEaT's state partitioning.
	span := (65536 - 32768) / len(sys.slots)
	cfg.TCP.EphemeralLo = uint16(32768 + sl.index*span)
	cfg.TCP.EphemeralHi = uint16(32768 + (sl.index+1)*span - 1)
	r := stack.NewReplica(sl.threads, sys.cfg.Driver.Proc(), cfg)
	sl.replica = r
	sl.state = SlotActive
	sys.conns[r] = map[uint64]*sim.Proc{}
	sys.installHooks(sl)
	sys.cfg.Driver.BindQueue(sl.index, r.EntryProc())
	sys.replayListens(r)
}

// installHooks wires connection-lifecycle hooks for NIC steering, crash
// bookkeeping and lazy termination.
func (sys *System) installHooks(sl *slot) {
	r := sl.replica
	r.OnCheckpoint = func(rr *stack.Replica, snap *tcpeng.Snapshot) {
		sys.stats.Checkpoints++
		sys.checkpoints[sl.index] = snap
	}
	r.OnRestored = func(rr *stack.Replica, n int) {
		sys.stats.ConnectionsRestored += uint64(n)
	}
	r.OnConnCreated = func(rr *stack.Replica, c *tcpeng.Conn) {
		// Steer the reply path to this replica before the SYN leaves.
		sys.conns[rr][c.ID] = rr.ConnApp(c)
		if sys.cfg.UseFlowFilters {
			if err := sys.cfg.NIC.InstallFilter(c.InboundFlow(), sl.index); err == nil {
				sys.stats.FiltersInstalled++
			}
		}
	}
	r.OnConnEstablished = func(rr *stack.Replica, c *tcpeng.Conn) {
		sys.conns[rr][c.ID] = rr.ConnApp(c)
		if sys.cfg.UseFlowFilters {
			if err := sys.cfg.NIC.InstallFilter(c.InboundFlow(), sl.index); err == nil {
				sys.stats.FiltersInstalled++
			}
		}
	}
	r.OnConnRemoved = func(rr *stack.Replica, c *tcpeng.Conn) {
		delete(sys.conns[rr], c.ID)
		if sys.cfg.UseFlowFilters {
			sys.cfg.NIC.RemoveFilter(c.InboundFlow())
			sys.stats.FiltersRemoved++
		}
		if sl.state == SlotTerminating && rr.TCP().NumConns() == 0 {
			sys.collect(sl)
		}
	}
}

// replayListens re-announces every registered listening socket to a new
// replica incarnation.
func (sys *System) replayListens(r *stack.Replica) {
	for _, op := range sys.listens {
		fanned := op
		// Acks land in the SYSCALL server, which ignores requests it
		// already acknowledged.
		fanned.ReplyTo = sys.sys.Proc()
		r.SockProc().Deliver(fanned)
	}
}

// ---- sysserver.Manager ----

// ConnectTarget implements sysserver.Manager: a random active replica
// (§3.8: random placement gives load balancing and unpredictability).
func (sys *System) ConnectTarget() *sim.Proc {
	var candidates []*slot
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			candidates = append(candidates, sl)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sl := candidates[sys.s.Rand().Intn(len(candidates))]
	return sl.replica.SockProc()
}

// ListenTargets implements sysserver.Manager.
func (sys *System) ListenTargets() []*sim.Proc {
	var out []*sim.Proc
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			out = append(out, sl.replica.SockProc())
		}
	}
	return out
}

// UDPTarget implements sysserver.Manager.
func (sys *System) UDPTarget() *sim.Proc {
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			return sl.replica.EntryProc()
		}
	}
	return nil
}

// RegisterListen implements sysserver.Manager.
func (sys *System) RegisterListen(op stack.OpListen) {
	sys.listens = append(sys.listens, op)
}

// UnregisterListen implements sysserver.Manager.
func (sys *System) UnregisterListen(reqID uint64) {
	for i, op := range sys.listens {
		if op.ReqID == reqID {
			sys.listens = append(sys.listens[:i], sys.listens[i+1:]...)
			return
		}
	}
}

// ---- scaling (§3.4) ----

// ScaleUp activates one empty slot and returns its replica. New
// connections immediately include it via RSS; existing connections are
// untouched because their exact filters pin them to their replicas.
func (sys *System) ScaleUp() (*stack.Replica, error) {
	for _, sl := range sys.slots {
		if sl.state == SlotEmpty {
			sys.activate(sl)
			sys.updateRSS()
			sys.stats.ScaleUps++
			return sl.replica, nil
		}
	}
	return nil, ErrNoFreeSlot
}

// ScaleDown marks the highest-indexed active replica as terminating: it
// stops receiving new connections (removed from RSS and from connect
// selection) but keeps serving existing ones until they drain, then is
// collected — the lazy termination strategy of §3.4.
func (sys *System) ScaleDown() error {
	for i := len(sys.slots) - 1; i >= 0; i-- {
		sl := sys.slots[i]
		if sl.state != SlotActive {
			continue
		}
		if sys.NumActive() == 1 {
			return errors.New("core: cannot scale below one replica")
		}
		sl.state = SlotTerminating
		sys.stats.ScaleDowns++
		sys.updateRSS()
		if sl.replica.TCP().NumConns() == 0 {
			sys.collect(sl)
		}
		return nil
	}
	return errors.New("core: no active replica to terminate")
}

// collect garbage-collects a drained terminating replica.
func (sys *System) collect(sl *slot) {
	for _, p := range sl.replica.Procs() {
		sys.expectedKills[p] = true
	}
	sys.cfg.Driver.BindQueue(sl.index, nil)
	sl.replica.Kill()
	delete(sys.conns, sl.replica)
	sl.replica = nil
	sl.state = SlotEmpty
	sys.stats.ReplicasGarbage++
}

// updateRSS points the NIC's RSS indirection at the active replicas only.
func (sys *System) updateRSS() {
	var queues []int
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			queues = append(queues, sl.index)
		}
	}
	if len(queues) > 0 {
		sys.cfg.NIC.SetRSSQueues(queues)
	}
}

// scheduleCheckpoints drives the periodic OpCheckpoint ticks.
func (sys *System) scheduleCheckpoints() {
	sys.s.After(sys.cfg.CheckpointInterval, func() {
		for _, sl := range sys.slots {
			if sl.state == SlotActive || sl.state == SlotTerminating {
				sl.replica.SockProc().Deliver(stack.OpCheckpoint{})
			}
		}
		sys.scheduleCheckpoints()
	})
}

// ---- recovery (§3.6) ----

// onCrash is the failure detector: the microkernel notifies us of a dead
// process and we spawn a replacement after RecoveryDelay.
func (sys *System) onCrash(p *sim.Proc, cause error) {
	if sys.expectedKills[p] {
		delete(sys.expectedKills, p)
		return
	}
	for _, sl := range sys.slots {
		if sl.replica == nil {
			continue
		}
		for _, rp := range sl.replica.Procs() {
			if rp == p {
				sys.recover(sl, p)
				return
			}
		}
	}
}

// recover replaces the dead component. The driver stops passing packets to
// the dead process automatically (deliveries to dead processes are
// dropped) until the replacement announces itself — the paper's "driver
// does not pass any packets to the recovering replica until it announces
// itself again" (§3.6).
func (sys *System) recover(sl *slot, dead *sim.Proc) {
	if sl.state == SlotRecovering {
		return
	}
	prev := sl.state
	sl.state = SlotRecovering
	r := sl.replica
	sys.stats.Recoveries++

	tcpLost := r.Kind() == stack.Single || dead == r.SockProc()
	snap := sys.checkpoints[sl.index]
	stateful := tcpLost && sys.cfg.CheckpointInterval > 0 && snap != nil
	if tcpLost && stateful {
		// Stateful recovery: connections will be restored from the last
		// checkpoint — do not declare them lost.
		sys.stats.TCPStateLost++
		sys.conns[r] = map[uint64]*sim.Proc{}
	} else if tcpLost {
		sys.stats.TCPStateLost++
		// All connections of this replica are gone. Tell the owning apps:
		// their libraries observe the shared-memory channels tearing down.
		for connID, app := range sys.conns[r] {
			sys.stats.ConnectionsLost++
			if app != nil {
				app.Deliver(stack.EvClosed{Stack: dead, ConnID: connID,
					Reset: true, Err: stack.ErrReplicaFailure})
			}
		}
		sys.conns[r] = map[uint64]*sim.Proc{}
	} else {
		sys.stats.TransparentRecov++
	}

	sys.s.After(sys.cfg.RecoveryDelay, func() {
		if r.Kind() == stack.Single {
			r.Rebuild(sl.threads[0])
		} else {
			// Restart whichever components are dead (both, if the whole
			// replica was killed).
			if r.SockProc().Dead() {
				r.RestartTCP(sl.threads[1])
			}
			if r.EntryProc().Dead() {
				r.RestartIP(sl.threads[0])
			}
		}
		sys.installHooks(sl)
		sys.cfg.Driver.BindQueue(sl.index, r.EntryProc())
		if tcpLost && stateful {
			// The snapshot carries the listener table; only genuinely new
			// listens (registered after the snapshot) need replaying, and
			// replaying all is harmless (duplicates are rejected).
			r.SockProc().Deliver(stack.OpRestore{Snap: snap})
			sys.replayListens(r)
		} else if tcpLost {
			sys.replayListens(r)
		}
		if prev == SlotTerminating {
			sl.state = SlotTerminating
		} else {
			sl.state = SlotActive
		}
		sys.updateRSS()
	})
}
