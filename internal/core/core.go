// Package core implements NEaT itself: the management plane that turns a
// set of isolated stack replicas into one logical network stack (§3).
//
// It owns:
//
//   - replica lifecycle — spawning replicas on dedicated hardware threads,
//     binding each to its NIC queue, and replaying listening sockets to new
//     incarnations;
//   - connection steering — installing exact flow-director filters in the
//     NIC as connections establish, removing them as connections die, and
//     feeding the active replica set to the flow placement plane
//     (internal/steer), which drives the NIC's RSS indirection and the
//     connect-side replica choice through a pluggable policy (§4; hash,
//     consistent-hash ring, or power-of-two-choices least-loaded);
//   - failure recovery — a crashed component is replaced by a fresh
//     process; stateless components (PF/IP/UDP) recover transparently,
//     while a TCP (or single-component) crash loses exactly that replica's
//     connections and nothing else (§3.6, Table 3);
//   - scaling — spawning replicas under load and lazily terminating them
//     when load drops: terminating replicas leave the placement plane but
//     serve their existing connections until the count drops to zero or,
//     when a drain deadline is configured, until the deadline force-closes
//     the stragglers (§3.4);
//   - the SYSCALL server, which fans out listens and routes connects to
//     the replica the placement policy picks (random under the default
//     hash policy) — the address-space re-randomization of §3.8 falls out
//     of that choice because every replica incarnation has a fresh ASLR
//     seed.
package core

import (
	"errors"
	"fmt"
	"sort"

	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/nicdev"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/sysserver"
	"neat/internal/tcpeng"
	"neat/internal/trace"
)

// SlotState is the lifecycle state of a replica slot.
type SlotState int

// Slot states.
const (
	SlotEmpty SlotState = iota
	SlotActive
	SlotTerminating // lazy termination: draining connections (§3.4)
	SlotRecovering
	// SlotQuarantined is the escalation terminus: the slot failed too many
	// times within the sliding window and is permanently fenced — processes
	// killed, queue unbound, no further respawns.
	SlotQuarantined
)

// String names the state.
func (s SlotState) String() string {
	switch s {
	case SlotEmpty:
		return "empty"
	case SlotActive:
		return "active"
	case SlotTerminating:
		return "terminating"
	case SlotRecovering:
		return "recovering"
	case SlotQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Config assembles a NEaT system.
type Config struct {
	// Stack is the replica template (Name is overridden per replica).
	Stack stack.Config
	// Threads lists, per replica slot, the hardware threads its processes
	// run on (1 for single-component, 2 for multi-component). The number
	// of slots bounds the replica count and must not exceed the NIC queue
	// count.
	Threads [][]*sim.HWThread
	// InitialReplicas is the number of slots activated at boot (default:
	// all).
	InitialReplicas int
	// NIC and Driver are the shared device and its driver process.
	NIC    *nicdev.NIC
	Driver *nicdev.Driver
	// SyscallThread hosts the SYSCALL server.
	SyscallThread *sim.HWThread
	// RecoveryDelay models the time the reincarnation server needs to
	// spawn a replacement process (default 500 µs).
	RecoveryDelay sim.Time
	// AutoRecover enables crash-triggered recovery.
	AutoRecover bool
	// UseFlowFilters steers established connections with exact NIC
	// filters; disabling it is the pure-RSS ablation.
	UseFlowFilters bool
	// CheckpointInterval enables checkpoint-based stateful TCP recovery
	// (§2.1's alternative to stateless recovery): every interval each
	// replica snapshots its TCP state, and after a TCP crash the new
	// incarnation restores the latest snapshot instead of losing the
	// connections. 0 disables (the paper's default, stateless recovery).
	CheckpointInterval sim.Time
	// UseNICFlowTracking enables the paper's proposed hardware extension
	// (§4): the NIC itself pins every flow to the queue RSS first assigned
	// it, removing the need for software-managed per-connection filters.
	// NICTrackingTableSize bounds the hardware table (default 8192, the
	// capacity the paper quotes for Intel 10G filters).
	UseNICFlowTracking   bool
	NICTrackingTableSize int
	// Steering selects the flow-placement policy and the scale-down drain
	// behaviour (internal/steer). The zero value is the paper's placement:
	// hash steering with a uniformly random connect-side choice, and lazy
	// termination that drains without a deadline.
	Steering steer.Config
	// Watchdog configures heartbeat-based failure detection (watchdog.go).
	// Disabled by default: paper-fidelity mode keeps the instantaneous
	// crash oracle of §3.6. Enabling it supervises every stack component,
	// the NIC driver and the SYSCALL server with periodic heartbeats, which
	// also detects hangs/livelocks the oracle cannot see.
	Watchdog WatchdogConfig
	// Observe attaches the observability layer (default: off, zero cost).
	Observe ObserveConfig
}

// ObserveConfig attaches the observability layer to a system. The zero
// value is fully disabled: no trace points fire and no events are kept.
type ObserveConfig struct {
	// Trace, when non-nil, receives the management plane's lifecycle
	// events (respawns, escalations, quarantines, RSS rebinds, scaling).
	// Callers who also want per-message latency breakdowns attach the same
	// tracer to the simulator (trace.Tracer.Attach) before the run.
	Trace *trace.Tracer
}

// Stats counts management-plane events.
type Stats struct {
	Recoveries          uint64 // replica/component restarts
	TCPStateLost        uint64 // recoveries that lost TCP connections
	TransparentRecov    uint64 // recoveries with no visible state loss
	ConnectionsLost     uint64 // connections dropped by failures
	Checkpoints         uint64
	ConnectionsRestored uint64
	ScaleUps            uint64
	ScaleDowns          uint64
	ReplicasGarbage     uint64 // lazily terminated replicas collected
	FiltersInstalled    uint64
	FiltersRemoved      uint64
	SecondaryCrashes    uint64 // crashes merged into an in-flight recovery
	ReplicaRebuilds     uint64 // whole-replica rebuilds (escalation step 2)
	SlotsQuarantined    uint64 // slots fenced by escalation (step 3)
	DriverRecoveries    uint64 // NIC driver respawns
	SyscallRecoveries   uint64 // SYSCALL server respawns
	DrainDeadlineFires  uint64 // scale-down drains cut short by the deadline
	DrainForcedCloses   uint64 // straggler connections dropped by drain deadlines
}

// ErrNoFreeSlot is returned by ScaleUp when every slot is in use.
var ErrNoFreeSlot = errors.New("core: no free replica slot")

// System is one NEaT network stack: N replicas, a SYSCALL server, a NIC.
type System struct {
	s   *sim.Simulator
	cfg Config

	slots []*slot
	sys   *sysserver.Server

	// placer is the flow-placement plane: the single authority consulted
	// by the NIC's RSS indirection, ConnectTarget and scale-down victim
	// selection (internal/steer).
	placer steer.Placer

	listens []stack.OpListen

	// conns tracks (replica, connID) → owning app for crash notification.
	conns map[*stack.Replica]map[uint64]*sim.Proc

	// checkpoints holds the latest TCP snapshot per slot (stateful
	// recovery mode).
	checkpoints map[int]*tcpeng.Snapshot

	// expectedKills marks processes being killed intentionally (GC of
	// terminated replicas) so the crash watcher ignores them.
	expectedKills map[*sim.Proc]bool

	// mgmtConns are the management plane's injection channels, one per
	// target process, created lazily: every manager→component message goes
	// through internal/ipc rather than writing into the process directly.
	mgmtConns map[*sim.Proc]*ipc.Conn

	// wd is the heartbeat failure detector (nil in paper-fidelity mode).
	wd *Watchdog

	// Sliding failure windows for the singleton system services, driving
	// their exponential respawn backoff.
	driverFails  []sim.Time
	syscallFails []sim.Time

	stats Stats
}

type slot struct {
	index   int
	state   SlotState
	replica *stack.Replica
	threads []*sim.HWThread

	// failTimes is the slot's sliding failure window (escalation + backoff).
	failTimes []sim.Time

	// drainSeq guards drain-deadline callbacks: it advances every time the
	// slot starts terminating, so a deadline armed for an earlier drain
	// cannot fire into a slot that has since been collected and reused.
	drainSeq uint64

	// Recovery-cycle bookkeeping: set when the slot enters SlotRecovering,
	// updated if further components die before the respawn fires, consumed
	// by completeRecovery. Keeping it on the slot (instead of captured in
	// the After closure) is what lets a second crash within the
	// RecoveryDelay window merge into the cycle instead of being dropped.
	recPrev        SlotState
	recTCPLost     bool
	recStateful    bool
	recTransparent bool
	recSnap        *tcpeng.Snapshot
}

// New boots a NEaT system.
func New(s *sim.Simulator, cfg Config) (*System, error) {
	if cfg.NIC == nil || cfg.Driver == nil {
		return nil, errors.New("core: NIC and Driver are required")
	}
	if len(cfg.Threads) == 0 {
		return nil, errors.New("core: at least one replica slot required")
	}
	if len(cfg.Threads) > cfg.NIC.NumQueues() {
		return nil, fmt.Errorf("core: %d slots but NIC has %d queues",
			len(cfg.Threads), cfg.NIC.NumQueues())
	}
	if cfg.InitialReplicas == 0 {
		cfg.InitialReplicas = len(cfg.Threads)
	}
	// Every component of the system lives on the SYSCALL server's machine;
	// schedule on that machine's domain (identical to s outside PDES mode).
	s = cfg.SyscallThread.Machine().Sim()
	if cfg.RecoveryDelay == 0 {
		cfg.RecoveryDelay = 500 * sim.Microsecond
	}
	cfg.Watchdog = cfg.Watchdog.withDefaults()
	sys := &System{
		s: s, cfg: cfg,
		conns:         map[*stack.Replica]map[uint64]*sim.Proc{},
		expectedKills: map[*sim.Proc]bool{},
		checkpoints:   map[int]*tcpeng.Snapshot{},
		mgmtConns:     map[*sim.Proc]*ipc.Conn{},
	}
	for i := range cfg.Threads {
		sys.slots = append(sys.slots, &slot{index: i, threads: cfg.Threads[i]})
	}
	placer, err := steer.New(cfg.Steering, s.Rand(), sys.slotConns)
	if err != nil {
		return nil, err
	}
	sys.placer = placer
	cfg.NIC.SetRSSPolicy(placer)
	if cfg.UseNICFlowTracking {
		size := cfg.NICTrackingTableSize
		if size == 0 {
			size = 8192
		}
		cfg.NIC.EnableFlowTracking(size)
		sys.cfg = cfg
	}
	sys.sys = sysserver.New(cfg.SyscallThread, sys, cfg.Stack.IPC)
	for i := 0; i < cfg.InitialReplicas && i < len(sys.slots); i++ {
		sys.activate(sys.slots[i])
	}
	sys.updatePlacement()
	sys.eventf("steer", "placement policy %s (drain deadline %v)",
		placer.Name(), cfg.Steering.DrainDeadline)
	if cfg.CheckpointInterval > 0 {
		sys.scheduleCheckpoints()
	}
	if cfg.AutoRecover {
		if cfg.Watchdog.Enabled {
			// Watchdog mode: no crash oracle — failures are detected (and
			// hangs can only be detected) by missed heartbeats. The whole
			// plane is supervised: driver, SYSCALL server, every replica.
			sys.wd = newWatchdog(sys)
			sys.wd.Watch(cfg.Driver.Proc())
			sys.wd.Watch(sys.sys.Proc())
			for _, sl := range sys.slots {
				sys.superviseReplica(sl)
			}
		} else {
			s.OnCrash(sys.onCrash)
		}
	}
	return sys, nil
}

// SyscallProc returns the SYSCALL server process — the address
// applications send control-plane socket calls to.
func (sys *System) SyscallProc() *sim.Proc { return sys.sys.Proc() }

// Syscall returns the SYSCALL server.
func (sys *System) Syscall() *sysserver.Server { return sys.sys }

// Driver returns the NIC driver the system manages.
func (sys *System) Driver() *nicdev.Driver { return sys.cfg.Driver }

// Watchdog returns the heartbeat failure detector, or nil in
// paper-fidelity (instant-oracle) mode.
func (sys *System) Watchdog() *Watchdog { return sys.wd }

// Placer returns the flow-placement plane steering this system.
func (sys *System) Placer() steer.Placer { return sys.placer }

// slotConns is the placement plane's load feed: live connections on slot
// i's replica (the same figure Metrics exports as
// core.replicaN.connections).
func (sys *System) slotConns(i int) int {
	if i < 0 || i >= len(sys.slots) || sys.slots[i].replica == nil {
		return 0
	}
	return sys.slots[i].replica.TCP().NumConns()
}

// Stats returns a snapshot of the management counters.
func (sys *System) Stats() Stats { return sys.stats }

// Trace returns the attached lifecycle tracer, or nil when the system was
// built without observability.
func (sys *System) Trace() *trace.Tracer { return sys.cfg.Observe.Trace }

// eventf records a lifecycle event on the observability timeline. With no
// tracer attached (the default) it returns before formatting anything.
func (sys *System) eventf(kind, format string, args ...interface{}) {
	if sys.cfg.Observe.Trace == nil {
		return
	}
	sys.cfg.Observe.Trace.Emit(kind, fmt.Sprintf(format, args...))
}

// Metrics collects the system's live counters into a fresh registry:
// management-plane stats, NIC and driver counters, SYSCALL server
// activity, watchdog detector stats (when enabled) and per-process
// dispatch/cost statistics. Collection is pull-style — nothing on the hot
// path writes to the registry, so building one costs only at read time.
func (sys *System) Metrics() *metrics.Registry {
	r := metrics.NewRegistry()
	st := sys.stats
	r.SetCounter("core.recoveries", st.Recoveries)
	r.SetCounter("core.tcp_state_lost", st.TCPStateLost)
	r.SetCounter("core.transparent_recoveries", st.TransparentRecov)
	r.SetCounter("core.connections_lost", st.ConnectionsLost)
	r.SetCounter("core.checkpoints", st.Checkpoints)
	r.SetCounter("core.connections_restored", st.ConnectionsRestored)
	r.SetCounter("core.scale_ups", st.ScaleUps)
	r.SetCounter("core.scale_downs", st.ScaleDowns)
	r.SetCounter("core.replicas_collected", st.ReplicasGarbage)
	r.SetCounter("core.filters_installed", st.FiltersInstalled)
	r.SetCounter("core.filters_removed", st.FiltersRemoved)
	r.SetCounter("core.secondary_crashes", st.SecondaryCrashes)
	r.SetCounter("core.replica_rebuilds", st.ReplicaRebuilds)
	r.SetCounter("core.slots_quarantined", st.SlotsQuarantined)
	r.SetCounter("core.driver_recoveries", st.DriverRecoveries)
	r.SetCounter("core.syscall_recoveries", st.SyscallRecoveries)
	r.SetCounter("core.drain_deadline_fires", st.DrainDeadlineFires)
	r.SetCounter("core.drain_forced_closes", st.DrainForcedCloses)

	ns := sys.cfg.NIC.Stats()
	r.SetCounter("nic.rx_frames", ns.RxFrames)
	r.SetCounter("nic.rx_drop_full", ns.RxDropFull)
	r.SetCounter("nic.rx_drop_bad", ns.RxDropBad)
	r.SetCounter("nic.rx_drop_no_rss", ns.RxDropNoRSS)
	r.SetCounter("nic.rx_filtered", ns.RxFiltered)
	r.SetCounter("nic.rx_hashed", ns.RxHashed)
	r.SetCounter("nic.tx_frames", ns.TxFrames)
	r.SetCounter("nic.tso_requests", ns.TSORequests)
	r.SetCounter("nic.tso_segments", ns.TSOSegments)
	r.SetCounter("nic.track_hits", ns.TrackHits)
	r.SetCounter("nic.track_inserts", ns.TrackInserts)
	r.SetCounter("nic.track_evictions", ns.TrackEvictions)

	ds := sys.cfg.Driver.Stats()
	r.SetCounter("driver.rx_dispatched", ds.RxDispatched)
	r.SetCounter("driver.rx_unbound", ds.RxUnbound)
	r.SetCounter("driver.tx_sent", ds.TxSent)
	r.SetCounter("driver.polls", ds.Polls)

	ss := sys.sys.Stats()
	r.SetCounter("syscall.listens", ss.Listens)
	r.SetCounter("syscall.connects", ss.Connects)
	r.SetCounter("syscall.udp_binds", ss.UDPBinds)

	// Resource-guard activity, summed across live replicas (all zero
	// unless SystemConfig.Guard enables a guard). The split between
	// attacked and clean replicas shows up in the per-replica connection
	// gauges; the totals here are what the goodput-under-attack campaign
	// asserts on.
	var synShed, slowReaped, srcCapped uint64
	var cookiesSent, cookiesValidated, cookiesRejected uint64
	for _, sl := range sys.slots {
		if sl.replica == nil {
			continue
		}
		ts := sl.replica.TCP().Stats()
		synShed += ts.SynShed
		slowReaped += ts.SlowlorisReaped
		srcCapped += ts.SrcCapped
		cookiesSent += ts.SynCookiesSent
		cookiesValidated += ts.SynCookiesValidated
		cookiesRejected += ts.SynCookiesRejected
	}
	r.SetCounter("stack.syn_shed", synShed)
	r.SetCounter("stack.slowloris_reaped", slowReaped)
	r.SetCounter("stack.src_capped", srcCapped)
	r.SetCounter("stack.syn_cookies_sent", cookiesSent)
	r.SetCounter("stack.syn_cookies_validated", cookiesValidated)
	r.SetCounter("stack.syn_cookies_rejected", cookiesRejected)

	// Per-replica live connection gauges: the load signal the least-loaded
	// steering policy balances on, exported so experiments can report
	// placement imbalance — plus the PCB pool occupancy split (hot compact
	// structs vs buffer-attached ones, and the recycled free lists).
	for i, sl := range sys.slots {
		if sl.state == SlotActive || sl.state == SlotTerminating {
			r.SetGauge(fmt.Sprintf("core.replica%d.connections", i),
				float64(sys.slotConns(i)))
		}
		if sl.replica != nil {
			ps := sl.replica.TCP().PoolStats()
			r.SetGauge(fmt.Sprintf("core.replica%d.pcb_hot", i), float64(ps.LiveHot))
			r.SetGauge(fmt.Sprintf("core.replica%d.pcb_full", i), float64(ps.LiveFull))
			r.SetGauge(fmt.Sprintf("core.replica%d.pcb_free", i),
				float64(ps.FreeConns))
		}
	}

	if sys.wd != nil {
		ws := sys.wd.Stats()
		r.SetCounter("watchdog.probes_sent", ws.ProbesSent)
		r.SetCounter("watchdog.acks_received", ws.AcksReceived)
		r.SetCounter("watchdog.probes_missed", ws.ProbesMissed)
		r.SetCounter("watchdog.crashes_detected", ws.CrashesDetected)
		r.SetCounter("watchdog.hangs_detected", ws.HangsDetected)
		r.SetCounter("watchdog.spurious_detected", ws.SpuriousDetected)
		r.Histogram("watchdog.detection_latency").Merge(sys.wd.DetectionLatency())
	}

	r.SetGauge("core.replicas_active", float64(sys.NumActive()))
	r.SetGauge("core.connections_live", float64(sys.TotalConns()))
	collectProcStats(r, "driver", sys.cfg.Driver.Proc())
	collectProcStats(r, "syscall", sys.sys.Proc())
	for _, sl := range sys.slots {
		if sl.replica == nil {
			continue
		}
		for _, p := range sl.replica.Procs() {
			collectProcStats(r, fmt.Sprintf("replica%d.%s", sl.index, p.Component), p)
		}
	}
	return r
}

// collectProcStats mirrors one process's dispatch statistics into the
// registry under the given prefix.
func collectProcStats(r *metrics.Registry, prefix string, p *sim.Proc) {
	st := p.Stats()
	r.SetCounter("proc."+prefix+".dispatches", st.Dispatches)
	r.SetCounter("proc."+prefix+".messages", st.Messages)
	r.SetCounter("proc."+prefix+".dropped", st.Dropped)
	r.SetCounter("proc."+prefix+".halts", st.Halts)
	r.SetCounter("proc."+prefix+".cycles", uint64(st.TotalCharged))
	r.SetCounter("proc."+prefix+".cycles_processing", uint64(st.CyclesByCat[sim.CostProcessing]))
	r.SetCounter("proc."+prefix+".cycles_polling", uint64(st.CyclesByCat[sim.CostPolling]))
	r.SetCounter("proc."+prefix+".cycles_kernel", uint64(st.CyclesByCat[sim.CostKernel]))
}

// Replicas returns the live replicas (active and terminating).
func (sys *System) Replicas() []*stack.Replica {
	var out []*stack.Replica
	for _, sl := range sys.slots {
		if sl.state == SlotActive || sl.state == SlotTerminating || sl.state == SlotRecovering {
			out = append(out, sl.replica)
		}
	}
	return out
}

// NumActive returns the number of active (non-terminating) replicas.
func (sys *System) NumActive() int {
	n := 0
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			n++
		}
	}
	return n
}

// SlotStates reports each slot's state (for tests and topology dumps).
func (sys *System) SlotStates() []SlotState {
	out := make([]SlotState, len(sys.slots))
	for i, sl := range sys.slots {
		out[i] = sl.state
	}
	return out
}

// TotalConns sums live PCBs across replicas.
func (sys *System) TotalConns() int {
	n := 0
	for _, r := range sys.Replicas() {
		n += r.TCP().NumConns()
	}
	return n
}

// activate builds a replica in an empty slot and wires it up.
func (sys *System) activate(sl *slot) {
	cfg := sys.cfg.Stack
	cfg.Name = fmt.Sprintf("neat%d", sl.index)
	// Partition the ephemeral port space across slots: replicas share the
	// host IP, so distinct ranges guarantee collision-free 4-tuples for
	// active opens — the port-space analogue of NEaT's state partitioning.
	span := (65536 - 32768) / len(sys.slots)
	cfg.TCP.EphemeralLo = uint16(32768 + sl.index*span)
	cfg.TCP.EphemeralHi = uint16(32768 + (sl.index+1)*span - 1)
	r := stack.NewReplica(sl.threads, sys.cfg.Driver.Proc(), cfg)
	sl.replica = r
	sl.state = SlotActive
	sys.conns[r] = map[uint64]*sim.Proc{}
	sys.installHooks(sl)
	sys.cfg.Driver.BindQueue(sl.index, r.EntryProc())
	sys.replayListens(r)
	sys.superviseReplica(sl)
	sys.eventf("spawn", "replica %d activated (%s)", sl.index, cfg.Name)
}

// superviseReplica puts every process of the slot's replica under watchdog
// supervision (no-op in paper-fidelity mode, where the crash oracle covers
// all processes for free).
func (sys *System) superviseReplica(sl *slot) {
	if sys.wd == nil || sl.replica == nil {
		return
	}
	for _, p := range sl.replica.Procs() {
		sys.wd.Watch(p)
	}
}

// installHooks wires connection-lifecycle hooks for NIC steering, crash
// bookkeeping and lazy termination.
func (sys *System) installHooks(sl *slot) {
	r := sl.replica
	r.OnCheckpoint = func(rr *stack.Replica, snap *tcpeng.Snapshot) {
		sys.stats.Checkpoints++
		sys.checkpoints[sl.index] = snap
	}
	r.OnRestored = func(rr *stack.Replica, n int) {
		sys.stats.ConnectionsRestored += uint64(n)
	}
	r.OnConnCreated = func(rr *stack.Replica, c *tcpeng.Conn) {
		// Steer the reply path to this replica before the SYN leaves.
		sys.conns[rr][c.ID] = rr.ConnApp(c)
		if sys.cfg.UseFlowFilters {
			if err := sys.cfg.NIC.InstallFilter(c.InboundFlow(), sl.index); err == nil {
				sys.stats.FiltersInstalled++
			}
		}
	}
	r.OnConnEstablished = func(rr *stack.Replica, c *tcpeng.Conn) {
		sys.conns[rr][c.ID] = rr.ConnApp(c)
		if sys.cfg.UseFlowFilters {
			if err := sys.cfg.NIC.InstallFilter(c.InboundFlow(), sl.index); err == nil {
				sys.stats.FiltersInstalled++
			}
		}
	}
	r.OnConnRemoved = func(rr *stack.Replica, c *tcpeng.Conn) {
		delete(sys.conns[rr], c.ID)
		if sys.cfg.UseFlowFilters {
			sys.cfg.NIC.RemoveFilter(c.InboundFlow())
			sys.stats.FiltersRemoved++
		}
		if sl.state == SlotTerminating && rr.TCP().NumConns() == 0 {
			sys.collect(sl)
		}
	}
}

// sendProc injects msg into p through the management plane's ipc channel
// to that process, creating the channel on first use. Injection is
// immediate and cost-free (ipc.Conn.Inject), preserving the semantics of
// the direct Proc.Deliver writes it replaces while keeping every
// manager→component message on an accounted channel.
func (sys *System) sendProc(p *sim.Proc, msg sim.Message) {
	c, ok := sys.mgmtConns[p]
	if !ok {
		c = ipc.New(p, ipc.Costs{})
		sys.mgmtConns[p] = c
	}
	c.Inject(msg)
}

// replayListens re-announces every registered listening socket to a new
// replica incarnation.
func (sys *System) replayListens(r *stack.Replica) {
	for _, op := range sys.listens {
		fanned := op
		// Acks land in the SYSCALL server, which ignores requests it
		// already acknowledged.
		fanned.ReplyTo = sys.sys.Proc()
		sys.sendProc(r.SockProc(), fanned)
	}
}

// ---- sysserver.Manager ----

// ConnectTarget implements sysserver.Manager by consulting the placement
// plane. The default HashPolicy picks a uniformly random active replica
// (§3.8: random placement gives load balancing and unpredictability),
// drawing from the simulator's seeded RNG so connect-side placement is
// reproducible under the byte-identity determinism oracles.
func (sys *System) ConnectTarget() *sim.Proc {
	idx := sys.placer.PickConnect()
	if idx < 0 {
		return nil
	}
	return sys.slots[idx].replica.SockProc()
}

// ListenTargets implements sysserver.Manager.
func (sys *System) ListenTargets() []*sim.Proc {
	var out []*sim.Proc
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			out = append(out, sl.replica.SockProc())
		}
	}
	return out
}

// UDPTarget implements sysserver.Manager: the lowest-indexed slot the
// placement plane considers eligible for new flows.
func (sys *System) UDPTarget() *sim.Proc {
	active := sys.placer.Active()
	if len(active) == 0 {
		return nil
	}
	return sys.slots[active[0]].replica.EntryProc()
}

// RegisterListen implements sysserver.Manager.
func (sys *System) RegisterListen(op stack.OpListen) {
	sys.listens = append(sys.listens, op)
}

// UnregisterListen implements sysserver.Manager.
func (sys *System) UnregisterListen(reqID uint64) {
	for i, op := range sys.listens {
		if op.ReqID == reqID {
			sys.listens = append(sys.listens[:i], sys.listens[i+1:]...)
			return
		}
	}
}

// ---- scaling (§3.4) ----

// ScaleUp activates one empty slot and returns its replica. New
// connections immediately include it via the placement plane; existing
// connections are untouched because their exact filters pin them to
// their replicas.
func (sys *System) ScaleUp() (*stack.Replica, error) {
	for _, sl := range sys.slots {
		if sl.state == SlotEmpty {
			sys.eventf("scale-up", "activating slot %d", sl.index)
			sys.activate(sl)
			sys.updatePlacement()
			sys.stats.ScaleUps++
			return sl.replica, nil
		}
	}
	return nil, ErrNoFreeSlot
}

// ScaleDown retires the replica the placement plane picks (the
// highest-indexed active one under the default policy; the least-loaded
// one under LeastLoadedPolicy): it stops receiving new connections
// (removed from the placer and from connect selection) but keeps its
// flow-director pins and serves existing connections until they drain,
// then is collected — the lazy termination strategy of §3.4. With
// Steering.DrainDeadline set, a drain that outlives the deadline is cut
// short: the stragglers are forcibly closed and the replica retires.
func (sys *System) ScaleDown() error {
	idx := sys.placer.PickRetire()
	if idx < 0 {
		return errors.New("core: no active replica to terminate")
	}
	if sys.NumActive() == 1 {
		return errors.New("core: cannot scale below one replica")
	}
	sys.retire(sys.slots[idx])
	return nil
}

// retire transitions an active slot into the terminating (draining)
// state and arms the drain deadline when one is configured.
func (sys *System) retire(sl *slot) {
	sl.state = SlotTerminating
	sl.drainSeq++
	sys.stats.ScaleDowns++
	sys.eventf("scale-down", "slot %d terminating lazily (%d conns draining)",
		sl.index, sl.replica.TCP().NumConns())
	sys.updatePlacement()
	if sl.replica.TCP().NumConns() == 0 {
		sys.collect(sl)
		return
	}
	sys.armDrainDeadline(sl)
}

// armDrainDeadline schedules the forced end of a slot's drain when
// Steering.DrainDeadline is configured (no-op otherwise). The callback is
// sequence-guarded so it cannot fire into a slot that drained naturally
// and was since reused.
func (sys *System) armDrainDeadline(sl *slot) {
	dl := sys.cfg.Steering.DrainDeadline
	if dl <= 0 {
		return
	}
	seq := sl.drainSeq
	sys.eventf("drain", "slot %d drain deadline armed (%v)", sl.index, dl)
	sys.s.After(dl, func() { sys.drainDeadline(sl, seq) })
}

// drainDeadline fires when a terminating replica has not drained within
// the configured deadline: every straggler connection is forcibly closed
// (its filter removed, its owning application notified with
// stack.ErrReplicaRetired) and the replica retires immediately.
// Connections are dropped in ascending ID order so the teardown is
// deterministic.
func (sys *System) drainDeadline(sl *slot, seq uint64) {
	if sl.state != SlotTerminating || sl.drainSeq != seq || sl.replica == nil {
		return // drained naturally, recovering, or slot reused since arming
	}
	r := sl.replica
	conns := r.Conns()
	ids := make([]uint64, 0, len(conns))
	for id := range conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sys.stats.DrainDeadlineFires++
	sys.eventf("drain-deadline", "slot %d deadline fired: dropping %d straggler connection(s)",
		sl.index, len(ids))
	for _, id := range ids {
		c := conns[id]
		if sys.cfg.UseFlowFilters {
			sys.cfg.NIC.RemoveFilter(c.InboundFlow())
			sys.stats.FiltersRemoved++
		}
		sys.stats.ConnectionsLost++
		sys.stats.DrainForcedCloses++
		if app := sys.conns[r][id]; app != nil {
			sys.sendProc(app, stack.EvClosed{Stack: r.SockProc(), ConnID: id,
				Reset: true, Err: stack.ErrReplicaRetired})
		}
	}
	sys.collect(sl)
}

// collect garbage-collects a drained terminating replica.
func (sys *System) collect(sl *slot) {
	for _, p := range sl.replica.Procs() {
		if sys.wd != nil {
			sys.wd.Unwatch(p)
		} else {
			sys.expectedKills[p] = true
		}
	}
	sys.cfg.Driver.BindQueue(sl.index, nil)
	sl.replica.Kill()
	delete(sys.conns, sl.replica)
	sl.replica = nil
	sl.state = SlotEmpty
	sys.stats.ReplicasGarbage++
	sys.eventf("collect", "slot %d drained and collected", sl.index)
}

// updatePlacement points the placement plane (and the NIC's RSS
// indirection view) at the active replicas only. With zero active
// replicas (all terminating, recovering or quarantined) the placer's
// empty set is the NIC's explicit drop-all state: unmatched flows are
// dropped in hardware instead of landing on a queue whose replica cannot
// accept them, while exact-match filters keep serving the established
// connections of terminating replicas.
func (sys *System) updatePlacement() {
	var queues []int
	for _, sl := range sys.slots {
		if sl.state == SlotActive {
			queues = append(queues, sl.index)
		}
	}
	sys.placer.SetActive(queues)
	sys.cfg.NIC.SetRSSQueues(queues)
	sys.eventf("rss", "RSS rebind -> queues %v", queues)
}

// scheduleCheckpoints drives the periodic OpCheckpoint ticks.
func (sys *System) scheduleCheckpoints() {
	sys.s.After(sys.cfg.CheckpointInterval, func() {
		for _, sl := range sys.slots {
			if sl.state == SlotActive || sl.state == SlotTerminating {
				sys.sendProc(sl.replica.SockProc(), stack.OpCheckpoint{})
			}
		}
		sys.scheduleCheckpoints()
	})
}

// ---- recovery (§3.6) ----

// onCrash is the instantaneous failure detector of paper-fidelity mode:
// the microkernel notifies us of a dead process and we spawn a replacement
// after RecoveryDelay. Watchdog mode replaces this oracle with heartbeat
// probing (watchdog.go), which additionally catches hangs.
func (sys *System) onCrash(p *sim.Proc, cause error) {
	if sys.expectedKills[p] {
		delete(sys.expectedKills, p)
		return
	}
	if p == sys.cfg.Driver.Proc() {
		sys.recoverDriver()
		return
	}
	if p == sys.sys.Proc() {
		sys.recoverSyscall()
		return
	}
	for _, sl := range sys.slots {
		if sl.replica == nil {
			continue
		}
		for _, rp := range sl.replica.Procs() {
			if rp == p {
				sys.recover(sl, p, sys.cfg.RecoveryDelay)
				return
			}
		}
	}
}

// watchdogFailure routes a watchdog detection to the right recovery path.
// The failed process may still be running (hung, or spuriously suspected
// on a lossy channel): either way the incarnation is no longer trusted and
// is killed before its replacement is spawned.
func (sys *System) watchdogFailure(p *sim.Proc) {
	sys.eventf("watchdog", "declared %s failed", p.Name)
	if !p.Dead() {
		p.Crash(ErrWatchdogKilled)
	}
	if p == sys.cfg.Driver.Proc() {
		sys.recoverDriver()
		return
	}
	if p == sys.sys.Proc() {
		sys.recoverSyscall()
		return
	}
	for _, sl := range sys.slots {
		if sl.replica == nil {
			continue
		}
		for _, rp := range sl.replica.Procs() {
			if rp == p {
				sys.escalate(sl, p)
				return
			}
		}
	}
}

// escalate drives the supervision ladder for a replica failure in watchdog
// mode: component restart on a first failure, whole-replica rebuild on a
// repeated failure within the sliding window, quarantine once the window
// fills up — with exponentially backed-off respawn delays throughout, so a
// crash storm converges to a fenced slot instead of a respawn busy-loop.
func (sys *System) escalate(sl *slot, dead *sim.Proc) {
	if sl.replica == nil || sl.state == SlotQuarantined {
		return
	}
	if sl.state == SlotRecovering {
		// A second component died while its sibling's respawn is pending:
		// merge into the in-flight recovery cycle.
		sys.recover(sl, dead, 0)
		return
	}
	wd := sys.cfg.Watchdog
	now := sys.s.Now()
	kept := sl.failTimes[:0]
	for _, t := range sl.failTimes {
		if t >= now-wd.Window {
			kept = append(kept, t)
		}
	}
	sl.failTimes = append(kept, now)
	n := len(sl.failTimes)
	if n >= wd.MaxRestarts {
		sys.quarantine(sl)
		return
	}
	delay := sys.cfg.RecoveryDelay << (n - 1)
	if delay > wd.BackoffMax || delay <= 0 {
		delay = wd.BackoffMax
	}
	if n >= 2 && sl.replica.Kind() == stack.Multi {
		// Second strike: stop trusting the surviving component and rebuild
		// the whole replica from scratch.
		sys.stats.ReplicaRebuilds++
		sys.eventf("escalate", "slot %d strike %d: whole-replica rebuild", sl.index, n)
		for _, p := range sl.replica.Procs() {
			if !p.Dead() {
				sys.wd.Unwatch(p)
				p.Crash(ErrWatchdogKilled)
			}
		}
		dead = sl.replica.SockProc()
	}
	sys.recover(sl, dead, delay)
}

// recover accounts a dead component of a replica slot and schedules its
// rebuild after delay. The first crash of a recovery cycle opens the
// cycle; further crashes within the same cycle (e.g. the second component
// of a multi-component replica dying inside the RecoveryDelay window)
// merge into it: their consequences are recorded — a TCP-component death
// reclassifies a provisionally transparent recovery as connection-losing —
// instead of being silently dropped. The driver stops passing packets to
// dead processes automatically until the replacement announces itself
// (§3.6).
func (sys *System) recover(sl *slot, dead *sim.Proc, delay sim.Time) {
	r := sl.replica
	first := sl.state != SlotRecovering
	if first {
		sl.recPrev = sl.state
		sl.state = SlotRecovering
		sl.recTCPLost = false
		sl.recStateful = false
		sl.recTransparent = false
		sl.recSnap = nil
		sys.stats.Recoveries++
		sys.eventf("recover", "slot %d: %s failed, respawn in %v", sl.index, dead.Name, delay)
	} else {
		sys.stats.SecondaryCrashes++
		sys.eventf("recover", "slot %d: %s failed, merged into in-flight recovery",
			sl.index, dead.Name)
	}

	tcpLost := r.Kind() == stack.Single || dead == r.SockProc()
	if tcpLost && !sl.recTCPLost {
		sl.recTCPLost = true
		if sl.recTransparent {
			// The earlier crash of this cycle looked transparent; the TCP
			// component dying within the same window reclassifies the whole
			// recovery as connection-losing.
			sys.stats.TransparentRecov--
			sl.recTransparent = false
		}
		snap := sys.checkpoints[sl.index]
		sl.recStateful = sys.cfg.CheckpointInterval > 0 && snap != nil
		sl.recSnap = snap
		sys.stats.TCPStateLost++
		if !sl.recStateful {
			// All connections of this replica are gone. Tell the owning
			// apps: their libraries observe the shared-memory channels
			// tearing down. (Stateful mode restores them from the last
			// checkpoint instead — do not declare them lost.)
			for connID, app := range sys.conns[r] {
				sys.stats.ConnectionsLost++
				if app != nil {
					sys.sendProc(app, stack.EvClosed{Stack: dead, ConnID: connID,
						Reset: true, Err: stack.ErrReplicaFailure})
				}
			}
		}
		sys.conns[r] = map[uint64]*sim.Proc{}
	} else if !tcpLost && first {
		sl.recTransparent = true
		sys.stats.TransparentRecov++
	}

	if first {
		sys.s.After(delay, func() { sys.completeRecovery(sl) })
	}
}

// completeRecovery is the reincarnation step: respawn whatever died,
// splice the new processes into the replica's channels, re-announce the
// NIC queue, and replay or restore state as needed. It reads the slot's
// recovery flags (not closure captures) so crashes merged into the cycle
// after scheduling are honored.
func (sys *System) completeRecovery(sl *slot) {
	r := sl.replica
	if r == nil || sl.state != SlotRecovering {
		return // quarantined (or collected) while the respawn was pending
	}
	if r.Kind() == stack.Single {
		r.Rebuild(sl.threads[0])
	} else {
		// Restart whichever components are dead (both, if the whole
		// replica was killed).
		if r.SockProc().Dead() {
			r.RestartTCP(sl.threads[1])
		}
		if r.EntryProc().Dead() {
			r.RestartIP(sl.threads[0])
		}
	}
	sys.installHooks(sl)
	sys.cfg.Driver.BindQueue(sl.index, r.EntryProc())
	if sl.recTCPLost && sl.recStateful {
		// The snapshot carries the listener table; only genuinely new
		// listens (registered after the snapshot) need replaying, and
		// replaying all is harmless (duplicates are rejected).
		sys.sendProc(r.SockProc(), stack.OpRestore{Snap: sl.recSnap})
		sys.replayListens(r)
	} else if sl.recTCPLost {
		sys.replayListens(r)
	}
	if sl.recPrev == SlotTerminating {
		sl.state = SlotTerminating
	} else {
		sl.state = SlotActive
	}
	sl.recSnap = nil
	sys.updatePlacement()
	sys.superviseReplica(sl)
	sys.eventf("respawn", "slot %d back to %s", sl.index, sl.state)
	if sl.state == SlotTerminating && sys.cfg.Steering.DrainDeadline > 0 {
		// The crash voided the previously armed deadline's view of the
		// world (stateless recovery may have dropped every draining
		// connection). Collect immediately if nothing is left, otherwise
		// restart the drain clock for the new incarnation.
		if r.TCP().NumConns() == 0 {
			sys.collect(sl)
		} else {
			sl.drainSeq++
			sys.armDrainDeadline(sl)
		}
	}
}

// quarantine permanently fences a slot that keeps failing: processes
// killed, connections declared lost, NIC queue unbound, slot removed from
// RSS, and no further respawns attempted. The escalation terminus — a
// slot caught in a crash storm must not consume unbounded respawn work,
// and the remaining replicas keep serving.
func (sys *System) quarantine(sl *slot) {
	r := sl.replica
	if r == nil || sl.state == SlotQuarantined {
		return
	}
	sl.state = SlotQuarantined
	sys.stats.SlotsQuarantined++
	sys.eventf("quarantine", "slot %d fenced permanently", sl.index)
	for connID, app := range sys.conns[r] {
		sys.stats.ConnectionsLost++
		if app != nil {
			sys.sendProc(app, stack.EvClosed{Stack: r.SockProc(), ConnID: connID,
				Reset: true, Err: stack.ErrReplicaFailure})
		}
	}
	delete(sys.conns, r)
	for _, p := range r.Procs() {
		if sys.wd != nil {
			sys.wd.Unwatch(p)
		}
		if !p.Dead() {
			if sys.wd == nil {
				sys.expectedKills[p] = true
			}
			p.Kill()
		}
	}
	sys.cfg.Driver.BindQueue(sl.index, nil)
	sl.replica = nil
	sys.updatePlacement()
}

// Quarantine administratively fences slot i (an ops action; the escalation
// ladder calls the same path).
func (sys *System) Quarantine(i int) error {
	if i < 0 || i >= len(sys.slots) {
		return fmt.Errorf("core: slot %d out of range", i)
	}
	sl := sys.slots[i]
	if sl.replica == nil {
		return fmt.Errorf("core: slot %d has no replica (%s)", i, sl.state)
	}
	sys.quarantine(sl)
	return nil
}

// recoverDriver respawns the NIC driver after a failure. The replacement
// keeps the driver endpoint (replica TX channels stay valid — the
// reincarnation-server contract for system services), but knows no queue
// bindings: the management plane re-announces every live replica and then
// kicks the device to drain whatever accumulated in the hardware queues
// while the driver was down. Frames delivered to the dead incarnation were
// lost; TCP retransmission covers for them.
func (sys *System) recoverDriver() {
	sys.stats.DriverRecoveries++
	delay := sys.backoffDelay(&sys.driverFails)
	sys.eventf("driver-recover", "NIC driver failed, respawn in %v", delay)
	sys.s.After(delay, func() {
		d := sys.cfg.Driver
		d.Restart()
		for _, sl := range sys.slots {
			if sl.replica != nil && sl.state != SlotQuarantined && !sl.replica.EntryProc().Dead() {
				d.BindQueue(sl.index, sl.replica.EntryProc())
			}
		}
		d.Kick()
		if sys.wd != nil {
			sys.wd.Watch(d.Proc())
		}
	})
}

// recoverSyscall respawns the SYSCALL server. The listen table lives in
// the management plane and survives; applications keep their endpoint
// reference; only in-flight control-plane operations are lost.
func (sys *System) recoverSyscall() {
	sys.stats.SyscallRecoveries++
	delay := sys.backoffDelay(&sys.syscallFails)
	sys.eventf("syscall-recover", "SYSCALL server failed, respawn in %v", delay)
	sys.s.After(delay, func() {
		sys.sys.Restart()
		if sys.wd != nil {
			sys.wd.Watch(sys.sys.Proc())
		}
	})
}

// backoffDelay records a failure into the sliding window and returns the
// respawn delay: RecoveryDelay doubled per recent failure, capped at
// BackoffMax — a respawn storm must not busy-loop the reincarnation path.
func (sys *System) backoffDelay(times *[]sim.Time) sim.Time {
	wd := sys.cfg.Watchdog
	now := sys.s.Now()
	kept := (*times)[:0]
	for _, t := range *times {
		if t >= now-wd.Window {
			kept = append(kept, t)
		}
	}
	*times = append(kept, now)
	delay := sys.cfg.RecoveryDelay << (len(*times) - 1)
	if delay > wd.BackoffMax || delay <= 0 {
		delay = wd.BackoffMax
	}
	return delay
}
