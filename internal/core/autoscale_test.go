package core_test

import (
	"testing"

	"neat/internal/app"
	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/socketlib"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// TestAutoScalerGrowsAndShrinks drives §3.4's dynamic policy end to end:
// one replica under heavy web load → the scaler spawns more; load stops →
// lazy termination shrinks the system back.
func TestAutoScalerGrowsAndShrinks(t *testing.T) {
	n := testbed.New(3)
	server := testbed.DefaultAMDHost(n, 0, 3)
	client := testbed.DefaultClientHost(n, 1, 3)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: tcpeng.DefaultConfig(),
		Slots:           testbed.SingleSlots(2, 3),
		Syscall:         testbed.ThreadLoc{Core: 1},
		InitialReplicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 3, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scaler := sys.StartAutoScaler(server.Machine.Thread(11, 0), core.AutoScalerConfig{})

	var gens []*app.Loadgen
	for i := 0; i < 3; i++ {
		h := app.NewHTTPD(server.AppThread(6+i), "web", sys.SyscallProc(),
			ipc.DefaultCosts(), app.HTTPDConfig{Port: uint16(8000 + i), Files: map[string]int{"/f": 20}})
		h.Start()
		lg := app.NewLoadgen(client.AppThread(6+i), "gen", clisys.SyscallProc(),
			ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/f",
				Conns: 24, ReqPerConn: 100, Timeout: 300 * sim.Millisecond,
			})
		gens = append(gens, lg)
	}
	n.Sim.RunFor(2 * sim.Millisecond)
	for _, g := range gens {
		g.Start()
	}

	// Under load: one replica saturates; the scaler must grow the system.
	n.Sim.RunFor(400 * sim.Millisecond)
	grown := sys.NumActive()
	if grown < 2 {
		t.Fatalf("autoscaler never scaled up: active=%d stats=%+v", grown, scaler.Stats())
	}
	if scaler.Stats().ScaleUps == 0 {
		t.Fatalf("stats: %+v", scaler.Stats())
	}

	// Load off: the scaler must lazily shrink back down.
	for _, g := range gens {
		g.Stop()
	}
	n.Sim.RunFor(1500 * sim.Millisecond)
	if sys.NumActive() >= grown {
		t.Fatalf("autoscaler never scaled down: active=%d (was %d) stats=%+v",
			sys.NumActive(), grown, scaler.Stats())
	}
	if scaler.Stats().ScaleDowns == 0 {
		t.Fatalf("stats: %+v", scaler.Stats())
	}
}

// TestNICFlowTrackingReplacesSoftwareFilters exercises the paper's §4
// proposal: with hardware flow tracking, NEaT needs no software-managed
// per-connection filters, and lazy termination still keeps existing
// connections on their replica after the RSS set shrinks.
func TestNICFlowTrackingReplacesSoftwareFilters(t *testing.T) {
	n := testbed.New(13)
	server := testbed.DefaultAMDHost(n, 0, 2)
	client := testbed.DefaultClientHost(n, 1, 2)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: tcpeng.DefaultConfig(),
		Slots:              testbed.SingleSlots(2, 2),
		Syscall:            testbed.ThreadLoc{Core: 1},
		DisableFlowFilters: true,
		UseNICFlowTracking: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 2, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := app.NewHTTPD(server.AppThread(6), "web", sys.SyscallProc(),
		ipc.DefaultCosts(), app.HTTPDConfig{Port: 8000, Files: map[string]int{"/f": 20}})
	h.Start()
	lg := app.NewLoadgen(client.AppThread(6), "gen", clisys.SyscallProc(),
		ipc.DefaultCosts(), app.LoadgenConfig{
			Target: server.IP, Port: 8000, URI: "/f",
			Conns: 16, ReqPerConn: 1 << 30, // effectively endless keep-alive
			Timeout: 300 * sim.Millisecond,
		})
	n.Sim.RunFor(2 * sim.Millisecond)
	lg.Start()
	n.Sim.RunFor(100 * sim.Millisecond)

	if server.NIC.NumFilters() != 0 {
		t.Fatalf("software filters installed despite tracking: %d", server.NIC.NumFilters())
	}
	if server.NIC.NumTrackedFlows() == 0 {
		t.Fatal("hardware tracking table empty")
	}
	usedBoth := 0
	for _, r := range sys.Replicas() {
		if r.TCP().NumEstablished() > 0 {
			usedBoth++
		}
	}
	if usedBoth != 2 {
		t.Skip("seed placed all connections on one replica")
	}

	// Lazy termination: the terminating replica leaves RSS but its tracked
	// flows keep arriving; existing connections must keep completing
	// requests with zero errors.
	if err := sys.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	before := lg.Stats().ResponsesOK
	n.Sim.RunFor(150 * sim.Millisecond)
	if lg.Stats().ConnErrors != 0 {
		t.Fatalf("tracking failed during lazy termination: %d errors", lg.Stats().ConnErrors)
	}
	if lg.Stats().ResponsesOK <= before {
		t.Fatal("no progress during lazy termination")
	}
	if got := sys.SlotStates()[1]; got != core.SlotTerminating {
		t.Fatalf("slot state: %v", sys.SlotStates())
	}
}

// TestCheckpointedRecoveryKeepsConnections enables checkpoint-based
// stateful recovery: connections survive a TCP crash, the applications
// are rehomed to the new process, and traffic continues.
func TestCheckpointedRecoveryKeepsConnections(t *testing.T) {
	n := testbed.New(21)
	server := testbed.DefaultAMDHost(n, 0, 2)
	client := testbed.DefaultClientHost(n, 1, 2)
	scfg := server.StackConfig(stack.Multi, tcpeng.DefaultConfig(), client)
	sys, err := core.New(n.Sim, core.Config{
		Stack: scfg,
		Threads: [][]*sim.HWThread{
			{server.Machine.Thread(2, 0), server.Machine.Thread(3, 0)},
			{server.Machine.Thread(4, 0), server.Machine.Thread(5, 0)},
		},
		NIC: server.NIC, Driver: server.Driver,
		SyscallThread:      server.Machine.Thread(1, 0),
		AutoRecover:        true,
		UseFlowFilters:     true,
		CheckpointInterval: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 2, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Echo server + clients doing periodic request/response on held conns.
	b := &bed{net: n, server: server, client: client, sys: sys, clisys: clisys}
	b.app = newSrvApp(server.AppThread(7), sys.SyscallProc())
	b.cli = newCliApp(client.AppThread(7), clisys.SyscallProc(), server)
	b.app.proc.Deliver("listen")
	n.Sim.RunFor(sim.Millisecond)
	holder := newHolderApp(b)
	for i := 0; i < 10; i++ {
		holder.proc.Deliver("hold")
	}
	n.Sim.RunFor(60 * sim.Millisecond) // several checkpoints elapse
	if holder.open != 10 {
		t.Fatalf("held=%d", holder.open)
	}
	if sys.Stats().Checkpoints < 4 {
		t.Fatalf("checkpoints=%d", sys.Stats().Checkpoints)
	}

	victim := sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = sys.Replicas()[1]
	}
	held := victim.TCP().NumEstablished()
	victim.SockProc().Crash(sim.ErrKilled)
	n.Sim.RunFor(200 * sim.Millisecond)

	st := sys.Stats()
	if st.TCPStateLost != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if int(st.ConnectionsRestored) < held {
		t.Fatalf("restored %d of %d", st.ConnectionsRestored, held)
	}
	if st.ConnectionsLost != 0 {
		t.Fatalf("stateful recovery lost %d connections", st.ConnectionsLost)
	}
	if b.app.failures != 0 {
		t.Fatalf("server app saw %d failures despite checkpointing", b.app.failures)
	}
	if victim.TCP().NumEstablished() < held {
		t.Fatalf("restored engine holds %d, want >= %d", victim.TCP().NumEstablished(), held)
	}

	// Traffic still flows: echo round-trips on fresh connections AND the
	// restored listener.
	b.connect(10)
	n.Sim.RunFor(2 * sim.Second)
	if b.cli.done != 10 {
		t.Fatalf("post-restore echo: done=%d failed=%d resets=%d",
			b.cli.done, b.cli.failed, b.cli.resets)
	}
}

// TestListenerCloseEndToEnd closes a listening socket through the library:
// subsequent connects are refused and the listen is no longer replayed to
// recovered replicas.
func TestListenerCloseEndToEnd(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 2), 2)
	b.connect(4)
	b.net.Sim.RunFor(sim.Second)
	if b.cli.done != 4 {
		t.Fatalf("warmup: %d", b.cli.done)
	}
	b.app.proc.Deliver("closeListener")
	b.net.Sim.RunFor(10 * sim.Millisecond)
	b.connect(3)
	b.net.Sim.RunFor(sim.Second)
	if b.cli.resets != 3 && b.cli.failed != 3 {
		t.Fatalf("connects to a closed listener succeeded: done=%d resets=%d failed=%d",
			b.cli.done, b.cli.resets, b.cli.failed)
	}
	// A crashed replica must not resurrect the closed listener.
	b.sys.Replicas()[0].Procs()[0].Crash(sim.ErrKilled)
	b.net.Sim.RunFor(50 * sim.Millisecond)
	before := b.cli.done
	b.connect(2)
	b.net.Sim.RunFor(sim.Second)
	if b.cli.done != before {
		t.Fatalf("closed listener replayed after recovery: done=%d", b.cli.done)
	}
}

// TestUDPThroughSyscallServer binds a UDP socket via the SYSCALL server
// and exchanges datagrams with a remote peer through the full path.
func TestUDPThroughSyscallServer(t *testing.T) {
	b := newBed(t, stack.Single, testbed.SingleSlots(2, 1), 1)
	var srvGot, cliGot []string
	srvU := newUDPApp(b.server.AppThread(9), b.sys.SyscallProc(), &srvGot, true)
	srvU.proc.Deliver(uint16(5353))
	b.net.Sim.RunFor(2 * sim.Millisecond)
	if srvU.sock == nil || srvU.sock.Port != 5353 {
		t.Fatal("server UDP bind failed")
	}
	cliU := newUDPApp(b.client.AppThread(9), b.clisys.SyscallProc(), &cliGot, false)
	cliU.dst = b.server.IP
	cliU.proc.Deliver(uint16(0))
	b.net.Sim.RunFor(2 * sim.Millisecond)
	cliU.proc.Deliver("send")
	b.net.Sim.RunFor(50 * sim.Millisecond)
	if len(srvGot) != 1 || srvGot[0] != "ping" {
		t.Fatalf("server got %v", srvGot)
	}
	if len(cliGot) != 1 || cliGot[0] != "re:ping" {
		t.Fatalf("client got %v", cliGot)
	}
}

type udpApp struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	sock *socketlib.UDPSocket
	got  *[]string
	echo bool
	dst  proto.Addr
}

func newUDPApp(th *sim.HWThread, syscall *sim.Proc, got *[]string, echo bool) *udpApp {
	a := &udpApp{got: got, echo: echo}
	a.proc = sim.NewProc(th, "udpapp", a, sim.ProcConfig{})
	a.lib = socketlib.New(a.proc, syscall, ipc.DefaultCosts())
	return a
}

func (a *udpApp) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(300)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case uint16:
		a.sock = a.lib.BindUDP(ctx, m)
		sock := a.sock
		a.sock.OnData = func(ctx *sim.Context, src proto.Addr, sport uint16, data []byte) {
			*a.got = append(*a.got, string(data))
			if a.echo {
				sock.SendTo(ctx, src, sport, append([]byte("re:"), data...))
			}
		}
	case string:
		if m == "send" && a.sock != nil {
			a.sock.SendTo(ctx, a.dst, 5353, []byte("ping"))
		}
	}
}
