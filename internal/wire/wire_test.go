package wire

import (
	"math/rand"
	"testing"

	"neat/internal/sim"
)

type capturePort struct {
	frames [][]byte
	times  []sim.Time
	s      *sim.Simulator
}

func (c *capturePort) Receive(frame []byte) {
	c.frames = append(c.frames, frame)
	c.times = append(c.times, c.s.Now())
}

func TestSerializationAndPropagation(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	l.BitsPerSec = 1_000_000_000 // 1 Gb/s: 1 byte = 8 ns
	l.PropDelay = 100
	dst := &capturePort{s: s}
	l.Attach(0, &capturePort{s: s})
	l.Attach(1, dst)

	frame := make([]byte, 1000)
	l.Transmit(0, frame)
	s.Drain()
	if len(dst.frames) != 1 {
		t.Fatalf("delivered %d frames", len(dst.frames))
	}
	// (1000 + 24 overhead) bytes * 8 ns + 100 ns propagation.
	want := sim.Time(1024*8 + 100)
	if dst.times[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.times[0], want)
	}
}

func TestMinFramePadding(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	l.BitsPerSec = 1_000_000_000
	l.PropDelay = 0
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	l.Transmit(0, make([]byte, 10)) // padded to 64 + 24 overhead
	s.Drain()
	if want := sim.Time(88 * 8); dst.times[0] != want {
		t.Fatalf("arrival %v, want %v", dst.times[0], want)
	}
}

func TestFIFOAndBackToBack(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	l.BitsPerSec = 1_000_000_000
	l.PropDelay = 0
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	l.Transmit(0, []byte{1})
	l.Transmit(0, []byte{2}) // queued behind the first
	s.Drain()
	if len(dst.frames) != 2 || dst.frames[0][0] != 1 || dst.frames[1][0] != 2 {
		t.Fatalf("frames out of order: %v", dst.frames)
	}
	if dst.times[1] != 2*dst.times[0] {
		t.Fatalf("second frame not serialized after first: %v", dst.times)
	}
}

func TestFullDuplexIndependent(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	l.BitsPerSec = 1_000_000_000
	l.PropDelay = 0
	a := &capturePort{s: s}
	b := &capturePort{s: s}
	l.Attach(0, a)
	l.Attach(1, b)
	l.Transmit(0, make([]byte, 1000))
	l.Transmit(1, make([]byte, 1000))
	s.Drain()
	if len(a.frames) != 1 || len(b.frames) != 1 {
		t.Fatal("duplex delivery failed")
	}
	if a.times[0] != b.times[0] {
		t.Fatalf("directions interfered: %v vs %v", a.times[0], b.times[0])
	}
}

func TestDropFilter(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	dropped := 0
	l.DropFilter = func(dir int, frame []byte) bool {
		if frame[0] == 0xBA {
			dropped++
			return true
		}
		return false
	}
	l.Transmit(0, []byte{0xBA, 1})
	l.Transmit(0, []byte{0x00, 2})
	s.Drain()
	if dropped != 1 || len(dst.frames) != 1 || dst.frames[0][0] != 0 {
		t.Fatalf("drop filter misbehaved: dropped=%d delivered=%d", dropped, len(dst.frames))
	}
	if l.Stats().Dropped[0] != 1 || l.Stats().Delivered[0] != 1 {
		t.Fatalf("stats: %+v", l.Stats())
	}
}

func TestRandomLoss(t *testing.T) {
	s := sim.New(7)
	l := NewLink(s)
	l.LossProb = 0.5
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	for i := 0; i < 1000; i++ {
		l.Transmit(0, []byte{byte(i)})
	}
	s.Drain()
	got := len(dst.frames)
	if got < 350 || got > 650 {
		t.Fatalf("loss rate implausible: delivered %d of 1000", got)
	}
}

func TestDuplication(t *testing.T) {
	s := sim.New(3)
	l := NewLink(s)
	l.DupProb = 1.0
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	l.Transmit(0, []byte{9})
	s.Drain()
	if len(dst.frames) != 2 {
		t.Fatalf("want duplicate delivery, got %d", len(dst.frames))
	}
}

func TestUtilization(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	l.BitsPerSec = 1_000_000_000
	dst := &capturePort{s: s}
	l.Attach(1, dst)
	start := l.Stats().Bytes[0]
	since := s.Now()
	l.Transmit(0, make([]byte, 12500)) // 100,000 bits = 100µs at 1Gb/s
	s.RunFor(200 * sim.Microsecond)
	u := l.Utilization(0, start, since)
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestLookaheadValue(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s)
	// Minimum on-wire frame: 64 B padded + 24 B overhead = 88 B at 10 Gb/s
	// is 70.4 ns, truncated to 70 ns, plus the 1 µs propagation delay.
	if got, want := l.Lookahead(), sim.Time(1070); got != want {
		t.Fatalf("Lookahead() = %v, want %v", got, want)
	}
	// The bound never collapses to zero, even on an absurdly fast link.
	l.BitsPerSec = 1 << 62
	l.PropDelay = 0
	if got := l.Lookahead(); got < sim.Nanosecond {
		t.Fatalf("Lookahead() = %v, want >= 1ns", got)
	}
}

// TestLookaheadLowerBound pins the PDES safety property: every delivery the
// link ever schedules — tiny padded frames, frames queued behind a busy
// transmitter, even duplicates injected by the fault hook — arrives at
// least Lookahead() after its Transmit call.
func TestLookaheadLowerBound(t *testing.T) {
	s := sim.New(7)
	l := NewLink(s)
	l.DupProb = 1 // every frame also delivers an (earlier-scheduled) duplicate
	dst := [2]*capturePort{{s: s}, {s: s}}
	l.Attach(0, dst[0])
	l.Attach(1, dst[1])
	la := l.Lookahead()

	// Frames are tagged with their send index in byte 0 so arrivals can be
	// matched to their Transmit time. Bursty schedule: many sends land while
	// the transmitter is still serializing earlier frames.
	rng := rand.New(rand.NewSource(42))
	sendAt := make([]sim.Time, 120)
	at := sim.Time(0)
	for i := 0; i < len(sendAt); i++ {
		i := i
		side := rng.Intn(2)
		size := 1 + rng.Intn(1800) // includes sub-minimum frames (padded on the wire)
		at += sim.Time(rng.Intn(2000))
		s.At(at, func() {
			f := make([]byte, size)
			f[0] = byte(i)
			sendAt[i] = s.Now()
			l.Transmit(side, f)
		})
	}
	s.Drain()

	delivered := 0
	for r := 0; r < 2; r++ {
		for j, f := range dst[r].frames {
			delivered++
			idx := int(f[0])
			if arr := dst[r].times[j]; arr < sendAt[idx]+la {
				t.Fatalf("frame %d arrived at %v, sent at %v: below lookahead %v",
					idx, arr, sendAt[idx], la)
			}
		}
	}
	if want := 2 * len(sendAt); delivered != want {
		t.Fatalf("delivered %d frames, want %d (original + duplicate each)", delivered, want)
	}
}
