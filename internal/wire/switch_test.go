package wire

import (
	"testing"

	"neat/internal/bufpool"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/steer"
)

// mkSwitchWorld builds a switch with n station links (host on side 0,
// switch on side 1) and returns the capture ports of the hosts.
func mkSwitchWorld(s *sim.Simulator, n int) (*Switch, []*Link, []*capturePort) {
	sw := NewSwitch(s, "tor")
	links := make([]*Link, n)
	hosts := make([]*capturePort, n)
	for i := 0; i < n; i++ {
		l := NewLink(s)
		l.BitsPerSec = 10_000_000_000
		l.PropDelay = 50
		hosts[i] = &capturePort{s: s}
		l.Attach(0, hosts[i])
		sw.AddPort("host", l.End(1), stationMAC(i))
		links[i] = l
	}
	return sw, links, hosts
}

func stationMAC(i int) proto.MAC {
	return proto.MAC{0x02, 0x55, 0, 0, 0, byte(i + 1)}
}

// frameTo builds a minimal Ethernet frame with the given dst MAC.
func frameTo(dst proto.MAC) []byte {
	f := bufpool.Get(proto.EthernetHeaderLen + 50)
	copy(f[0:6], dst[:])
	f[12], f[13] = 0x08, 0x00
	return f
}

func TestSwitchForwardByMAC(t *testing.T) {
	s := sim.New(1)
	sw, links, hosts := mkSwitchWorld(s, 3)
	links[0].Transmit(0, frameTo(stationMAC(2)))
	s.Drain()
	if len(hosts[2].frames) != 1 {
		t.Fatalf("host 2 got %d frames, want 1", len(hosts[2].frames))
	}
	if len(hosts[1].frames) != 0 {
		t.Fatalf("host 1 got %d frames, want 0", len(hosts[1].frames))
	}
	st := sw.Stats()
	if st.RxFrames != 1 || st.Forwarded != 1 || st.Flooded != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Two link traversals plus the store-and-forward latency.
	if hosts[2].times[0] <= sw.Latency {
		t.Fatalf("arrival %v not after switch latency %v", hosts[2].times[0], sw.Latency)
	}
}

func TestSwitchFloodAndPortDown(t *testing.T) {
	s := sim.New(1)
	sw, links, hosts := mkSwitchWorld(s, 3)
	links[0].Transmit(0, frameTo(proto.BroadcastMAC))
	s.Drain()
	if len(hosts[1].frames) != 1 || len(hosts[2].frames) != 1 {
		t.Fatalf("flood delivered %d/%d, want 1/1", len(hosts[1].frames), len(hosts[2].frames))
	}
	if len(hosts[0].frames) != 0 {
		t.Fatalf("flood echoed to ingress")
	}

	sw.SetPortUp(2, false)
	links[0].Transmit(0, frameTo(stationMAC(2)))
	s.Drain()
	if len(hosts[2].frames) != 1 {
		t.Fatalf("downed port still delivered")
	}
	if sw.Stats().DropPortDwn == 0 {
		t.Fatalf("no port-down drop counted")
	}
}

// tcpFrameTo builds a syntactically valid TCP/IPv4 frame for flow parsing.
func tcpFrameTo(dmac proto.MAC, src, dst proto.Addr, sport, dport uint16) []byte {
	f := bufpool.Get(proto.EthernetHeaderLen + proto.IPv4HeaderLen + 20)
	for i := range f {
		f[i] = 0
	}
	copy(f[0:6], dmac[:])
	f[12], f[13] = 0x08, 0x00
	f[14] = 0x45 // IPv4, IHL 5
	f[23] = byte(proto.ProtoTCP)
	copy(f[26:30], src[:])
	copy(f[30:34], dst[:])
	f[34], f[35] = byte(sport>>8), byte(sport)
	f[36], f[37] = byte(dport>>8), byte(dport)
	return f
}

func TestSwitchL4Service(t *testing.T) {
	s := sim.New(1)
	sw, links, hosts := mkSwitchWorld(s, 4) // 0 = client, 1..3 = farm
	vip := proto.Addr{10, 0, 0, 100}
	vmac := proto.MAC{0x02, 0xFE, 0, 0, 0, 1}
	svc, err := sw.AddService(L4ServiceConfig{Name: "web", VIP: vip, VMAC: vmac})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		svc.AddBackend(i, stationMAC(i), BackendActive)
	}

	// Distinct source ports spread flows across backends; each flow's
	// frames must all land on the same backend with dst MAC rewritten.
	src := proto.Addr{10, 0, 0, 1}
	perHost := make([]int, 4)
	for port := uint16(2000); port < 2040; port++ {
		links[0].Transmit(0, tcpFrameTo(vmac, src, vip, port, 80))
		links[0].Transmit(0, tcpFrameTo(vmac, src, vip, port, 80))
	}
	s.Drain()
	total := 0
	for i := 1; i <= 3; i++ {
		perHost[i] = len(hosts[i].frames)
		total += perHost[i]
		for _, fr := range hosts[i].frames {
			var dm proto.MAC
			copy(dm[:], fr[0:6])
			if dm != stationMAC(i) {
				t.Fatalf("backend %d got frame with dst MAC %v", i, dm)
			}
		}
	}
	if total != 80 {
		t.Fatalf("delivered %d frames, want 80", total)
	}
	st := svc.Stats()
	if st.NewFlows != 40 || st.Hits != 40 {
		t.Fatalf("service stats %+v", st)
	}
	if perHost[1] == 80 || perHost[2] == 80 || perHost[3] == 80 {
		t.Fatalf("hash placed every flow on one backend: %v", perHost)
	}

	// Draining keeps pinned flows but takes no new ones; down drops all.
	before := svc.NumActive()
	svc.SetBackendState(0, BackendDraining)
	if svc.NumActive() != before-1 {
		t.Fatalf("draining backend still active")
	}
	links[0].Transmit(0, tcpFrameTo(vmac, src, vip, 2000, 80)) // pinned flow
	s.Drain()
	svc.SetBackendState(0, BackendDown)
	links[0].Transmit(0, tcpFrameTo(vmac, src, vip, 2000, 80))
	s.Drain()
	if svc.Stats().DropDown == 0 {
		// flow 2000 may be pinned to backend 1 or 2 — find one pinned to
		// the downed backend instead.
		t.Skip("flow 2000 not pinned to backend 0; distribution covered above")
	}
}

func TestSwitchServiceValidation(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "tor")
	vmac := proto.MAC{0x02, 0xFE, 0, 0, 0, 1}
	if _, err := sw.AddService(L4ServiceConfig{Name: "a", VMAC: vmac}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AddService(L4ServiceConfig{Name: "b", VMAC: vmac}); err == nil {
		t.Fatal("duplicate VMAC accepted")
	}
	if _, err := sw.AddService(L4ServiceConfig{
		Name:     "c",
		VMAC:     proto.MAC{0x02, 0xFE, 0, 0, 0, 2},
		Steering: steer.Config{Policy: steer.PolicyLeastLoaded},
	}); err == nil {
		t.Fatal("least-loaded farm steering accepted")
	}
}

func TestSwitchFlowTableEviction(t *testing.T) {
	s := sim.New(1)
	sw, links, _ := mkSwitchWorld(s, 2)
	vip := proto.Addr{10, 0, 0, 100}
	vmac := proto.MAC{0x02, 0xFE, 0, 0, 0, 1}
	svc, err := sw.AddService(L4ServiceConfig{Name: "web", VIP: vip, VMAC: vmac, MaxFlows: 8})
	if err != nil {
		t.Fatal(err)
	}
	svc.AddBackend(1, stationMAC(1), BackendActive)
	src := proto.Addr{10, 0, 0, 1}
	for port := uint16(1); port <= 24; port++ {
		links[0].Transmit(0, tcpFrameTo(vmac, src, vip, port, 80))
	}
	s.Drain()
	if svc.NumFlows() != 8 {
		t.Fatalf("flow table holds %d entries, want 8", svc.NumFlows())
	}
	if svc.Stats().Evictions != 16 {
		t.Fatalf("evictions %d, want 16", svc.Stats().Evictions)
	}
}
