// Switch models the aggregation tier of a datacenter cluster: a
// store-and-forward Ethernet switch with any number of ports, each port
// the far side of one machine's access link. Frames are forwarded by a
// static MAC table (the topology builder knows every machine's MAC, so
// the switch never needs to learn), with unknown and broadcast
// destinations flooded.
//
// The switch also hosts the L4 load-balancer tier: an L4Service owns a
// virtual IP + virtual MAC pair and steers each flow addressed to it onto
// one backend machine of a server farm, reusing the flow-placement plane
// (internal/steer) one level up from where NEaT uses it inside a machine —
// the paper's partitioning argument applied to machines within a farm.
// Forwarding is direct-server-return style: the service rewrites only the
// destination MAC and the backend answers from the VIP it shares, so
// return traffic skips the balancer entirely, exactly like Maglev/DSR
// deployments. Established flows are pinned in a bounded flow table (the
// farm-level analogue of the NIC's flow-director filters), so placement
// policy changes and scale events never move a live connection between
// machines.
//
// In PDES mode the switch occupies its own scheduling domain (the topology
// builder gives it a one-core "forwarding ASIC" machine); every access
// link then crosses domains and contributes its wire lookahead, so a
// switched cluster parallelizes machine-per-domain just like the
// point-to-point farm topologies.
package wire

import (
	"fmt"

	"neat/internal/bufpool"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/steer"
)

// SwitchStats counts switch activity.
type SwitchStats struct {
	RxFrames    uint64
	Forwarded   uint64
	Flooded     uint64 // broadcast/unknown-destination copies transmitted
	DropPortDwn uint64 // frames dropped at a downed ingress or egress port
	DropNoRoute uint64 // unroutable frames (no table entry, flood impossible)
}

// swPort is one switch port: the switch-facing endpoint of an access link.
type swPort struct {
	name string
	ep   Endpoint
	up   bool
}

// swIngress adapts Port (which carries no port identity) onto a port index.
type swIngress struct {
	sw   *Switch
	port int
}

func (in *swIngress) Receive(frame []byte) { in.sw.ingress(in.port, frame) }

// swPend is one store-and-forward delivery in flight inside the switch.
type swPend struct {
	frame []byte
	out   int32
}

// Switch is the device model. Like the NIC it is hardware, not a process:
// it reacts to frame arrivals instantly plus a fixed store-and-forward
// latency, scheduled on its own domain.
type Switch struct {
	dom  *sim.Simulator
	Name string

	// Latency is the store-and-forward delay between a frame fully
	// arriving on the ingress port and its transmission starting on the
	// egress port (default 1 µs). Output-queue contention is modelled by
	// the egress link's transmitter serialization, as on the wire.
	Latency sim.Time

	ports []swPort
	macs  map[proto.MAC]int
	svcs  []*L4Service

	// pend/free recycle forward-event slots so steady-state forwarding
	// schedules without allocating (sim.EventHandler, slot as tag).
	pend []swPend
	free []uint32

	hop   string // fixed trace-hop name
	stats SwitchStats
}

// NewSwitch creates a switch scheduling on domain ds. In the default
// sequential mode ds is the simulator itself; in PDES mode the topology
// builder passes the domain of the switch's own one-core machine so
// forwarding parallelizes alongside the hosts.
func NewSwitch(ds *sim.Simulator, name string) *Switch {
	return &Switch{
		dom:     ds,
		Name:    name,
		Latency: sim.Microsecond,
		macs:    make(map[proto.MAC]int),
		hop:     "switch." + name,
	}
}

// Stats returns a snapshot of the switch counters.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// NumPorts returns the number of attached ports.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// PortName returns the name port i was attached under.
func (sw *Switch) PortName(i int) string { return sw.ports[i].name }

// AddPort attaches the switch to endpoint ep under the given port name and
// returns the port index. macs lists the station addresses reachable
// behind the port (normally the one NIC MAC of the machine on the other
// end); they are entered into the static forwarding table. The endpoint is
// bound to the switch's scheduling domain, which in PDES mode turns the
// access link into a cross-domain mailbox channel.
func (sw *Switch) AddPort(name string, ep Endpoint, macs ...proto.MAC) int {
	idx := len(sw.ports)
	sw.ports = append(sw.ports, swPort{name: name, ep: ep, up: true})
	ep.Attach(&swIngress{sw: sw, port: idx})
	ep.Bind(sw.dom)
	for _, m := range macs {
		sw.macs[m] = idx
	}
	return idx
}

// SetPortUp raises or lowers port i. A downed port drops every frame in
// both directions — the model of an unplugged cable or a powered-off
// machine.
func (sw *Switch) SetPortUp(i int, up bool) { sw.ports[i].up = up }

// PortUp reports whether port i is up.
func (sw *Switch) PortUp(i int) bool { return sw.ports[i].up }

// ingress handles one frame arriving on port in: route, then schedule the
// store-and-forward delivery.
func (sw *Switch) ingress(in int, frame []byte) {
	if !sw.ports[in].up {
		sw.stats.DropPortDwn++
		bufpool.Put(frame)
		return
	}
	sw.stats.RxFrames++
	if len(frame) < proto.EthernetHeaderLen {
		sw.stats.DropNoRoute++
		bufpool.Put(frame)
		return
	}
	var dst proto.MAC
	copy(dst[:], frame[0:6])

	// L4 service tier: frames addressed to a service's virtual MAC are
	// steered onto a farm backend (possibly rewriting the frame's
	// destination MAC in place).
	for _, svc := range sw.svcs {
		if dst == svc.cfg.VMAC {
			out, ok := svc.route(frame)
			if !ok {
				bufpool.Put(frame)
				return
			}
			sw.forward(in, out, frame)
			return
		}
	}

	if out, ok := sw.macs[dst]; ok {
		sw.forward(in, out, frame)
		return
	}
	// Broadcast or unknown unicast: flood to every other up port.
	sw.flood(in, frame)
}

// forward schedules the store-and-forward delivery of frame onto port out.
func (sw *Switch) forward(in, out int, frame []byte) {
	if out == in || !sw.ports[out].up {
		sw.stats.DropPortDwn++
		bufpool.Put(frame)
		return
	}
	sw.stats.Forwarded++
	if tr := sw.dom.Tracer(); tr != nil {
		tr.OnSpan(sw.hop, 0, sw.Latency)
	}
	var slot uint32
	if n := len(sw.free); n > 0 {
		slot = sw.free[n-1]
		sw.free = sw.free[:n-1]
	} else {
		slot = uint32(len(sw.pend))
		sw.pend = append(sw.pend, swPend{})
	}
	sw.pend[slot] = swPend{frame: frame, out: int32(out)}
	sw.dom.AtEvent(sw.dom.Now()+sw.Latency, sw, uint64(slot))
}

// OnEvent transmits the pending frame in slot tag (sim.EventHandler).
func (sw *Switch) OnEvent(tag uint64) {
	p := &sw.pend[tag]
	frame, out := p.frame, int(p.out)
	p.frame = nil
	sw.free = append(sw.free, uint32(tag))
	if !sw.ports[out].up {
		sw.stats.DropPortDwn++
		bufpool.Put(frame)
		return
	}
	sw.ports[out].ep.Transmit(frame)
}

// flood copies the frame onto every up port except the ingress one. With
// static MAC tables and static ARP this only ever runs for genuine
// broadcast traffic (ARP requests in hand-built topologies).
func (sw *Switch) flood(in int, frame []byte) {
	sent := false
	for i := range sw.ports {
		if i == in || !sw.ports[i].up {
			continue
		}
		cp := bufpool.Get(len(frame))
		copy(cp, frame)
		sw.stats.Flooded++
		sw.forward(in, i, cp)
		sent = true
	}
	if !sent {
		sw.stats.DropNoRoute++
	}
	bufpool.Put(frame)
}

// ---- L4 load-balancer tier ----

// BackendState is the service-side lifecycle of one farm machine.
type BackendState int

// Backend states.
const (
	// BackendActive accepts new flows and serves pinned ones.
	BackendActive BackendState = iota
	// BackendDraining is removed from new-flow placement; its pinned
	// flows keep forwarding until they finish — lazy termination, one
	// level up from the paper's replica drain (§3.4).
	BackendDraining
	// BackendDown drops everything, pinned flows included — a dead
	// machine.
	BackendDown
)

// String names the backend state.
func (s BackendState) String() string {
	switch s {
	case BackendActive:
		return "active"
	case BackendDraining:
		return "draining"
	case BackendDown:
		return "down"
	default:
		return fmt.Sprintf("BackendState(%d)", int(s))
	}
}

// L4Backend is one farm machine behind a service.
type L4Backend struct {
	Port  int // switch port the machine is attached to
	MAC   proto.MAC
	State BackendState
}

// L4ServiceConfig configures one virtual service.
type L4ServiceConfig struct {
	// Name labels the service in stats and traces.
	Name string
	// Tenant names the owning tenant ("" = the default tenant). Services
	// are a tenant's steering domain: each tenant's flows are placed by
	// its own Placer over its own replica set, invisible to other
	// tenants.
	Tenant string
	// VIP is the service's virtual IP — the address clients connect to
	// and every backend answers from (DSR).
	VIP proto.Addr
	// VMAC is the virtual MAC clients resolve the VIP to.
	VMAC proto.MAC
	// Steering selects the farm-level placement policy (zero value:
	// deterministic hash over the active backends).
	Steering steer.Config
	// MaxFlows bounds the flow-pinning table (default 1<<20 entries);
	// the oldest pin is evicted first, falling back to policy placement,
	// which under a stable active set re-places the flow on the same
	// backend.
	MaxFlows int
}

// L4Stats counts service activity.
type L4Stats struct {
	NewFlows      uint64 // flows pinned by policy placement
	Hits          uint64 // frames forwarded via an existing pin
	Evictions     uint64 // pins evicted by the table bound
	DropNoBackend uint64 // no active backend could take a new flow
	DropDown      uint64 // pinned backend is down
	DropBad       uint64 // frames to the VMAC that carry no usable flow
}

// L4Service is a running virtual service on a switch.
type L4Service struct {
	sw  *Switch
	cfg L4ServiceConfig

	backends []L4Backend
	placer   steer.Placer

	flows     map[proto.Flow]int32
	flowOrder []proto.Flow
	flowHead  int
	maxFlows  int

	stats L4Stats
}

// AddService installs a virtual service on the switch. Backends are added
// with AddBackend; until the first active backend exists every new flow to
// the VIP is dropped.
func (sw *Switch) AddService(cfg L4ServiceConfig) (*L4Service, error) {
	for _, s := range sw.svcs {
		if s.cfg.VMAC == cfg.VMAC {
			return nil, fmt.Errorf("wire: switch %s already has a service (%s) on VMAC %v",
				sw.Name, s.cfg.Name, cfg.VMAC)
		}
	}
	placer, err := cfg.Steering.NewDeterministic()
	if err != nil {
		return nil, fmt.Errorf("wire: service %s steering: %w", cfg.Name, err)
	}
	maxFlows := cfg.MaxFlows
	if maxFlows == 0 {
		maxFlows = 1 << 20
	}
	svc := &L4Service{
		sw:       sw,
		cfg:      cfg,
		placer:   placer,
		flows:    make(map[proto.Flow]int32),
		maxFlows: maxFlows,
	}
	sw.svcs = append(sw.svcs, svc)
	return svc, nil
}

// Services returns the installed services in installation order.
func (sw *Switch) Services() []*L4Service { return sw.svcs }

// Config returns the service configuration.
func (svc *L4Service) Config() L4ServiceConfig { return svc.cfg }

// Stats returns a snapshot of the service counters.
func (svc *L4Service) Stats() L4Stats { return svc.stats }

// NumFlows returns the flow-pinning table occupancy.
func (svc *L4Service) NumFlows() int { return len(svc.flows) }

// Backends returns the backend set. Callers must not modify it.
func (svc *L4Service) Backends() []L4Backend { return svc.backends }

// AddBackend registers a farm machine (by switch port and MAC) as a
// backend in the given initial state and returns its backend index.
func (svc *L4Service) AddBackend(port int, mac proto.MAC, state BackendState) int {
	idx := len(svc.backends)
	svc.backends = append(svc.backends, L4Backend{Port: port, MAC: mac, State: state})
	svc.updateActive()
	return idx
}

// SetBackendState moves backend i to the given state and reinstalls the
// placement policy's active set. Pinned flows are never remapped: draining
// keeps forwarding them, down drops them.
func (svc *L4Service) SetBackendState(i int, state BackendState) {
	if svc.backends[i].State == state {
		return
	}
	svc.backends[i].State = state
	svc.updateActive()
}

// BackendState returns backend i's state.
func (svc *L4Service) BackendState(i int) BackendState { return svc.backends[i].State }

// NumActive returns the number of backends accepting new flows.
func (svc *L4Service) NumActive() int { return len(svc.placer.Active()) }

func (svc *L4Service) updateActive() {
	active := make([]int, 0, len(svc.backends))
	for i := range svc.backends {
		if svc.backends[i].State == BackendActive {
			active = append(active, i)
		}
	}
	svc.placer.SetActive(active)
}

// route picks the backend for one frame addressed to the service VMAC,
// rewrites the frame's destination MAC to the backend's, and returns the
// egress port. ok is false when the frame must be dropped (counted).
func (svc *L4Service) route(frame []byte) (out int, ok bool) {
	flow, flowOK := parseFlowRaw(frame)
	if !flowOK || flow.Dst != svc.cfg.VIP {
		svc.stats.DropBad++
		return 0, false
	}
	bi, pinned := svc.flows[flow]
	if !pinned {
		b := svc.placer.QueueFor(flow.Hash())
		if b < 0 {
			svc.stats.DropNoBackend++
			return 0, false
		}
		bi = int32(b)
		svc.pin(flow, bi)
		svc.stats.NewFlows++
	} else {
		svc.stats.Hits++
	}
	be := &svc.backends[bi]
	if be.State == BackendDown {
		svc.stats.DropDown++
		return 0, false
	}
	copy(frame[0:6], be.MAC[:])
	return be.Port, true
}

// pin records a flow→backend pinning, evicting the oldest when full
// (the NIC flow-tracking idiom, one level up).
func (svc *L4Service) pin(flow proto.Flow, backend int32) {
	if len(svc.flows) >= svc.maxFlows {
		oldest := svc.flowOrder[svc.flowHead]
		svc.flowHead++
		delete(svc.flows, oldest)
		svc.stats.Evictions++
		if svc.flowHead*2 >= len(svc.flowOrder) {
			svc.flowOrder = svc.flowOrder[:copy(svc.flowOrder, svc.flowOrder[svc.flowHead:])]
			svc.flowHead = 0
		}
	}
	svc.flows[flow] = backend
	svc.flowOrder = append(svc.flowOrder, flow)
}

// parseFlowRaw extracts the 5-tuple from a raw Ethernet frame without
// decoding or validating it — the switch is forwarding hardware, not a
// protocol endpoint. ok is false for non-IPv4 or fragmented-beyond-header
// frames and for IP protocols without ports.
func parseFlowRaw(raw []byte) (proto.Flow, bool) {
	const ethLen = proto.EthernetHeaderLen
	if len(raw) < ethLen+proto.IPv4HeaderLen {
		return proto.Flow{}, false
	}
	if raw[12] != 0x08 || raw[13] != 0x00 { // EtherType IPv4
		return proto.Flow{}, false
	}
	ihl := int(raw[ethLen]&0x0f) * 4
	if ihl < proto.IPv4HeaderLen || len(raw) < ethLen+ihl+4 {
		return proto.Flow{}, false
	}
	var f proto.Flow
	f.Proto = proto.IPProto(raw[ethLen+9])
	copy(f.Src[:], raw[ethLen+12:ethLen+16])
	copy(f.Dst[:], raw[ethLen+16:ethLen+20])
	if f.Proto != proto.ProtoTCP && f.Proto != proto.ProtoUDP {
		return proto.Flow{}, false
	}
	// First fragment carries the ports; later fragments would need
	// reassembly state the switch does not keep.
	fragOff := (uint16(raw[ethLen+6])<<8 | uint16(raw[ethLen+7])) & 0x1fff
	if fragOff != 0 {
		return proto.Flow{}, false
	}
	tp := ethLen + ihl
	f.SrcPort = uint16(raw[tp])<<8 | uint16(raw[tp+1])
	f.DstPort = uint16(raw[tp+2])<<8 | uint16(raw[tp+3])
	return f, true
}
