// Package wire models the physical link of the paper's testbed: a 10GbE
// Direct Attach Copper cable between the system under test and the load
// generator. The link is full duplex with explicit serialization time
// (frame bits at line rate) and propagation delay, which is what makes the
// bandwidth saturation behaviour of the paper's Figures 4 and 5 emerge.
//
// The link also exposes fault hooks (loss, duplication, programmable drop
// filters) used by the TCP retransmission tests and the reliability
// experiments.
package wire

import (
	"neat/internal/bufpool"
	"neat/internal/sim"
)

// Port receives frames from a link endpoint. NICs implement Port.
type Port interface {
	// Receive is called when a frame fully arrives at this endpoint.
	// Ownership of the frame buffer transfers to the port (see
	// Link.Transmit).
	Receive(frame []byte)
}

// DefaultOverheadBytes is the per-frame overhead on the physical medium:
// preamble (8) + FCS (4) + inter-frame gap (12).
const DefaultOverheadBytes = 24

// MinFrameBytes is the minimum Ethernet frame size on the wire.
const MinFrameBytes = 64

// Link is a full-duplex point-to-point link. Endpoint 0 and endpoint 1 are
// attached with Attach; each direction has independent serialization state.
type Link struct {
	sim *sim.Simulator

	// BitsPerSec is the line rate of each direction (default 10 Gb/s).
	BitsPerSec int64
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Time

	ports [2]Port
	// lineFree is the earliest time each direction's transmitter is free.
	lineFree [2]sim.Time

	// LossProb drops each frame independently with this probability.
	LossProb float64
	// DupProb duplicates each delivered frame with this probability.
	DupProb float64
	// DropFilter, if set, is consulted per frame; returning true drops it.
	// Used by tests to lose specific segments deterministically. The filter
	// may inspect the frame but must not retain it.
	DropFilter func(dir int, frame []byte) bool

	// pend holds frames in flight; slots are recycled through free so a
	// delivery schedules without allocating (Link implements
	// sim.EventHandler with the slot index as tag).
	pend []pendDelivery
	free []uint32

	stats LinkStats
}

type pendDelivery struct {
	frame []byte
	side  int8
}

// wireHopName gives each direction a fixed trace-hop name, so the traced
// path allocates no strings per frame.
var wireHopName = [2]string{"wire.dir0", "wire.dir1"}

// LinkStats counts link activity.
type LinkStats struct {
	Frames    [2]uint64 // frames accepted for transmission per direction
	Bytes     [2]uint64 // payload bytes per direction
	Dropped   [2]uint64
	Delivered [2]uint64
}

// NewLink creates a 10 Gb/s link with a 1 µs propagation delay.
func NewLink(s *sim.Simulator) *Link {
	return &Link{sim: s, BitsPerSec: 10_000_000_000, PropDelay: sim.Microsecond}
}

// Attach connects p as endpoint side (0 or 1).
func (l *Link) Attach(side int, p Port) { l.ports[side] = p }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Transmit sends a frame from endpoint side to the opposite endpoint.
// The frame occupies the transmitter for its serialization time; delivery
// happens after serialization plus propagation. Frames are delivered in
// FIFO order per direction.
//
// Ownership contract: the sender relinquishes the frame buffer on Transmit
// and must not touch it afterwards. The link hands it to the receiving
// Port unchanged (no defensive copy — a copy is made only when the
// duplication fault hook needs a second instance), and recycles it via
// bufpool when a fault hook drops the frame instead.
func (l *Link) Transmit(side int, frame []byte) {
	dst := l.ports[1-side]
	if dst == nil {
		bufpool.Put(frame)
		return
	}
	l.stats.Frames[side]++
	l.stats.Bytes[side] += uint64(len(frame))

	onWire := len(frame)
	if onWire < MinFrameBytes {
		onWire = MinFrameBytes
	}
	onWire += DefaultOverheadBytes

	now := l.sim.Now()
	start := now
	if l.lineFree[side] > start {
		start = l.lineFree[side]
	}
	serial := sim.Time(int64(onWire) * 8 * int64(sim.Second) / l.BitsPerSec)
	l.lineFree[side] = start + serial
	if tr := l.sim.Tracer(); tr != nil {
		// Wire hop: queueing is the wait for the transmitter to free up,
		// processing is the serialization time at line rate.
		tr.OnSpan(wireHopName[side], start-now, serial)
	}

	if l.DropFilter != nil && l.DropFilter(side, frame) {
		l.stats.Dropped[side]++
		bufpool.Put(frame)
		return // still consumed line time (collision-free model keeps it simple: drop after serialization accounting)
	}
	if l.LossProb > 0 && l.sim.Rand().Float64() < l.LossProb {
		l.stats.Dropped[side]++
		bufpool.Put(frame)
		return
	}

	arrive := l.lineFree[side] + l.PropDelay
	l.scheduleDeliver(arrive, side, frame)
	if l.DupProb > 0 && l.sim.Rand().Float64() < l.DupProb {
		dup := bufpool.Get(len(frame))
		copy(dup, frame)
		l.scheduleDeliver(arrive+serial, side, dup)
	}
}

// scheduleDeliver parks the frame in a recycled pending slot and schedules
// the closure-free delivery event.
func (l *Link) scheduleDeliver(at sim.Time, side int, frame []byte) {
	var slot uint32
	if n := len(l.free); n > 0 {
		slot = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		slot = uint32(len(l.pend))
		l.pend = append(l.pend, pendDelivery{})
	}
	l.pend[slot] = pendDelivery{frame: frame, side: int8(side)}
	l.sim.AtEvent(at, l, uint64(slot))
}

// OnEvent completes the pending delivery in slot tag (sim.EventHandler).
func (l *Link) OnEvent(tag uint64) {
	p := &l.pend[tag]
	frame, side := p.frame, int(p.side)
	p.frame = nil
	l.free = append(l.free, uint32(tag))
	l.stats.Delivered[side]++
	l.ports[1-side].Receive(frame)
}

// Utilization returns the fraction of capacity used by direction side over
// the window ending now, given a byte count captured at window start.
func (l *Link) Utilization(side int, bytesAtStart uint64, since sim.Time) float64 {
	now := l.sim.Now()
	if now <= since {
		return 0
	}
	bits := float64(l.stats.Bytes[side]-bytesAtStart) * 8
	cap := float64(l.BitsPerSec) * (now - since).Seconds()
	return bits / cap
}
