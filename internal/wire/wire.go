// Package wire models the physical link of the paper's testbed: a 10GbE
// Direct Attach Copper cable between the system under test and the load
// generator. The link is full duplex with explicit serialization time
// (frame bits at line rate) and propagation delay, which is what makes the
// bandwidth saturation behaviour of the paper's Figures 4 and 5 emerge.
//
// The link also exposes fault hooks (loss, duplication, programmable drop
// filters) used by the TCP retransmission tests and the reliability
// experiments.
//
// In PDES mode the wire is the only channel between machine domains, and
// its physics provide the lookahead that makes conservative parallel
// execution correct: no frame can arrive earlier than the minimum
// serialization time plus the propagation delay after its send
// (Lookahead()). Cross-domain deliveries go through per-direction
// mailboxes flushed into the receiving domain's queue at each coordinator
// barrier.
package wire

import (
	"neat/internal/bufpool"
	"neat/internal/sim"
)

// Port receives frames from a link endpoint. NICs implement Port.
type Port interface {
	// Receive is called when a frame fully arrives at this endpoint.
	// Ownership of the frame buffer transfers to the port (see
	// Link.Transmit).
	Receive(frame []byte)
}

// DefaultOverheadBytes is the per-frame overhead on the physical medium:
// preamble (8) + FCS (4) + inter-frame gap (12).
const DefaultOverheadBytes = 24

// MinFrameBytes is the minimum Ethernet frame size on the wire.
const MinFrameBytes = 64

// Link is a full-duplex point-to-point link. Endpoint 0 and endpoint 1 are
// attached with Attach; each direction has independent serialization state.
type Link struct {
	sim *sim.Simulator

	// dom holds each endpoint's scheduling domain. Both default to the
	// constructing simulator; BindEndpoint rebinds a side to its machine's
	// domain, and when the two sides land in different domains the link
	// switches to mailbox delivery (cross == true).
	dom   [2]*sim.Simulator
	bound [2]bool
	cross bool

	// BitsPerSec is the line rate of each direction (default 10 Gb/s).
	BitsPerSec int64
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Time

	ports [2]Port
	// lineFree is the earliest time each direction's transmitter is free.
	lineFree [2]sim.Time

	// LossProb drops each frame independently with this probability.
	LossProb float64
	// DupProb duplicates each delivered frame with this probability.
	DupProb float64
	// DropFilter, if set, is consulted per frame; returning true drops it.
	// Used by tests to lose specific segments deterministically. The filter
	// may inspect the frame but must not retain it.
	DropFilter func(dir int, frame []byte) bool

	// pend holds frames in flight; slots are recycled through free so a
	// delivery schedules without allocating (Link implements
	// sim.EventHandler with receiver<<32|slot as tag). Pools are indexed by
	// the receiving side: in PDES mode each pool is owned by its receiver's
	// domain (and touched by barrier flushes), never by the sender.
	pend [2][]pendDelivery
	free [2][]uint32

	// mbox, indexed by receiving side, parks cross-domain frames between
	// their send and the next barrier. Each direction has exactly one
	// writing domain (the sender) and is drained only at barriers, so no
	// lock is needed: the coordinator's worker hand-off provides the
	// happens-before edges.
	mbox [2][]mboxEntry

	stats LinkStats
}

type pendDelivery struct {
	frame []byte
	side  int8
}

// mboxEntry is one cross-domain frame in flight: its arrival time and
// payload. Entries are flushed in arrival-time order (stable within equal
// times, preserving the sender's FIFO order).
type mboxEntry struct {
	at    sim.Time
	frame []byte
}

// wireHopName gives each direction a fixed trace-hop name, so the traced
// path allocates no strings per frame.
var wireHopName = [2]string{"wire.dir0", "wire.dir1"}

// LinkStats counts link activity.
type LinkStats struct {
	Frames    [2]uint64 // frames accepted for transmission per direction
	Bytes     [2]uint64 // payload bytes per direction
	Dropped   [2]uint64
	Delivered [2]uint64
}

// NewLink creates a 10 Gb/s link with a 1 µs propagation delay.
func NewLink(s *sim.Simulator) *Link {
	return &Link{sim: s, dom: [2]*sim.Simulator{s, s},
		BitsPerSec: 10_000_000_000, PropDelay: sim.Microsecond}
}

// Endpoint is a named attachment point: one side of a link, handed to the
// device that faces it (a NIC, a switch port). It generalizes the
// historical (link, side) pair so topology code can wire a machine to a
// point-to-point peer or to a switch port through the same handle, without
// the caller tracking which integer side it was given.
type Endpoint struct {
	link *Link
	side int
}

// End returns the endpoint handle for side (0 or 1) of the link.
func (l *Link) End(side int) Endpoint { return Endpoint{link: l, side: side} }

// IsZero reports whether the endpoint is unwired.
func (e Endpoint) IsZero() bool { return e.link == nil }

// Link returns the underlying link.
func (e Endpoint) Link() *Link { return e.link }

// Side returns the link side this endpoint occupies.
func (e Endpoint) Side() int { return e.side }

// Attach connects p as the receiver of frames arriving at this endpoint.
func (e Endpoint) Attach(p Port) { e.link.Attach(e.side, p) }

// Transmit sends a frame from this endpoint towards the opposite one.
func (e Endpoint) Transmit(frame []byte) { e.link.Transmit(e.side, frame) }

// Bind rebinds the endpoint to the scheduling domain ds (see
// Link.BindEndpoint).
func (e Endpoint) Bind(ds *sim.Simulator) { e.link.BindEndpoint(e.side, ds) }

// Lookahead returns the link's PDES lookahead (see Link.Lookahead).
func (e Endpoint) Lookahead() sim.Time { return e.link.Lookahead() }

// Attach connects p as endpoint side (0 or 1).
func (l *Link) Attach(side int, p Port) { l.ports[side] = p }

// BindEndpoint rebinds endpoint side to the scheduling domain ds (its
// machine's simulator). The NIC driver calls this when it learns which
// machine hosts the device. In the default sequential mode every domain is
// the constructing simulator and this is a no-op; in PDES mode, once both
// endpoints are bound to different domains, the link registers its
// lookahead with the coordinator and switches to barrier-flushed mailbox
// delivery.
func (l *Link) BindEndpoint(side int, ds *sim.Simulator) {
	l.dom[side] = ds
	l.bound[side] = true
	if l.bound[0] && l.bound[1] && l.dom[0] != l.dom[1] && !l.cross {
		l.cross = true
		l.sim.RegisterLookahead(l.Lookahead())
		l.sim.RegisterBarrierFlush(l.flushMailboxes)
	}
}

// Lookahead returns the hard lower bound on the delay between a Transmit on
// either side and the resulting delivery: the serialization time of a
// minimum-size frame plus the propagation delay. Every arrival the link
// ever schedules — including duplicates injected by the fault hook, which
// land one extra serialization later — is at least this far in the
// transmitter's future, which is what makes it a safe PDES horizon.
func (l *Link) Lookahead() sim.Time {
	minWire := int64(MinFrameBytes + DefaultOverheadBytes)
	serial := sim.Time(minWire * 8 * int64(sim.Second) / l.BitsPerSec)
	la := serial + l.PropDelay
	if la < sim.Nanosecond {
		la = sim.Nanosecond
	}
	return la
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Transmit sends a frame from endpoint side to the opposite endpoint.
// The frame occupies the transmitter for its serialization time; delivery
// happens after serialization plus propagation. Frames are delivered in
// FIFO order per direction.
//
// Ownership contract: the sender relinquishes the frame buffer on Transmit
// and must not touch it afterwards. The link hands it to the receiving
// Port unchanged (no defensive copy — a copy is made only when the
// duplication fault hook needs a second instance), and recycles it via
// bufpool when a fault hook drops the frame instead.
func (l *Link) Transmit(side int, frame []byte) {
	dst := l.ports[1-side]
	if dst == nil {
		bufpool.Put(frame)
		return
	}
	l.stats.Frames[side]++
	l.stats.Bytes[side] += uint64(len(frame))

	onWire := len(frame)
	if onWire < MinFrameBytes {
		onWire = MinFrameBytes
	}
	onWire += DefaultOverheadBytes

	ds := l.dom[side]
	now := ds.Now()
	start := now
	if l.lineFree[side] > start {
		start = l.lineFree[side]
	}
	serial := sim.Time(int64(onWire) * 8 * int64(sim.Second) / l.BitsPerSec)
	l.lineFree[side] = start + serial
	if tr := ds.Tracer(); tr != nil {
		// Wire hop: queueing is the wait for the transmitter to free up,
		// processing is the serialization time at line rate.
		tr.OnSpan(wireHopName[side], start-now, serial)
	}

	if l.DropFilter != nil && l.DropFilter(side, frame) {
		l.stats.Dropped[side]++
		bufpool.Put(frame)
		return // still consumed line time (collision-free model keeps it simple: drop after serialization accounting)
	}
	if l.LossProb > 0 && ds.Rand().Float64() < l.LossProb {
		l.stats.Dropped[side]++
		bufpool.Put(frame)
		return
	}

	arrive := l.lineFree[side] + l.PropDelay
	l.sendOrPark(arrive, side, frame)
	if l.DupProb > 0 && ds.Rand().Float64() < l.DupProb {
		dup := bufpool.Get(len(frame))
		copy(dup, frame)
		l.sendOrPark(arrive+serial, side, dup)
	}
}

// sendOrPark routes one delivery: directly onto the receiver's queue in the
// sequential (same-domain) case, or into the cross-domain mailbox to be
// flushed at the next barrier.
func (l *Link) sendOrPark(at sim.Time, side int, frame []byte) {
	if l.cross {
		r := 1 - side
		l.mbox[r] = append(l.mbox[r], mboxEntry{at: at, frame: frame})
		return
	}
	l.scheduleDeliver(at, side, frame)
}

// flushMailboxes moves parked cross-domain frames into the receiving
// domains' queues. It runs at coordinator barriers with all domains
// quiescent. Entries are insertion-sorted by arrival time (they arrive
// nearly sorted: only duplicate injections land out of order), which keeps
// the merge stable and allocation-free.
func (l *Link) flushMailboxes() {
	for r := 0; r < 2; r++ {
		es := l.mbox[r]
		if len(es) == 0 {
			continue
		}
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && es[j].at < es[j-1].at; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		for i := range es {
			l.scheduleDeliver(es[i].at, 1-r, es[i].frame)
			es[i].frame = nil
		}
		l.mbox[r] = es[:0]
	}
}

// scheduleDeliver parks the frame in a recycled pending slot of the
// receiving side's pool and schedules the closure-free delivery event on
// the receiver's domain.
func (l *Link) scheduleDeliver(at sim.Time, side int, frame []byte) {
	r := 1 - side
	var slot uint32
	if n := len(l.free[r]); n > 0 {
		slot = l.free[r][n-1]
		l.free[r] = l.free[r][:n-1]
	} else {
		slot = uint32(len(l.pend[r]))
		l.pend[r] = append(l.pend[r], pendDelivery{})
	}
	l.pend[r][slot] = pendDelivery{frame: frame, side: int8(side)}
	l.dom[r].AtEvent(at, l, uint64(r)<<32|uint64(slot))
}

// OnEvent completes the pending delivery in slot tag (sim.EventHandler).
func (l *Link) OnEvent(tag uint64) {
	r := tag >> 32
	p := &l.pend[r][uint32(tag)]
	frame, side := p.frame, int(p.side)
	p.frame = nil
	l.free[r] = append(l.free[r], uint32(tag))
	l.stats.Delivered[side]++
	l.ports[r].Receive(frame)
}

// Utilization returns the fraction of capacity used by direction side over
// the window ending now, given a byte count captured at window start.
func (l *Link) Utilization(side int, bytesAtStart uint64, since sim.Time) float64 {
	now := l.sim.Now()
	if now <= since {
		return 0
	}
	bits := float64(l.stats.Bytes[side]-bytesAtStart) * 8
	cap := float64(l.BitsPerSec) * (now - since).Seconds()
	return bits / cap
}
