package wire

import (
	"testing"

	"neat/internal/bufpool"
	"neat/internal/sim"
)

type sinkPort struct{ n int }

func (p *sinkPort) Receive(frame []byte) {
	p.n++
	bufpool.Put(frame)
}

// BenchmarkWireOneHop measures one link crossing end to end: a pooled
// frame is transmitted, serialized, propagated through the recycled-slot
// delivery event and handed to the far port, which returns the buffer.
func BenchmarkWireOneHop(b *testing.B) {
	b.ReportAllocs()
	s := sim.New(1)
	l := NewLink(s)
	l.Attach(0, &sinkPort{})
	far := &sinkPort{}
	l.Attach(1, far)
	b.SetBytes(1514)
	for i := 0; i < b.N; i++ {
		l.Transmit(0, bufpool.Get(1514))
		for s.Step() {
		}
	}
	if far.n != b.N {
		b.Fatalf("delivered %d of %d frames", far.n, b.N)
	}
}
