package ipeng

import (
	"bytes"
	"sort"
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
)

var (
	macA = proto.MAC{2, 0, 0, 0, 0, 0xA}
	macB = proto.MAC{2, 0, 0, 0, 0, 0xB}
	ipA  = proto.IPv4(10, 0, 0, 1)
	ipB  = proto.IPv4(10, 0, 0, 2)
	mask = proto.IPv4(255, 255, 255, 0)
)

// fakeIPEnv collects transmissions and deliveries with a manual clock.
type fakeIPEnv struct {
	now       sim.Time
	frames    [][]byte
	tso       int
	delivered []*proto.Frame
	timers    []ipTimer
}

type ipTimer struct {
	at sim.Time
	fn func()
}

func (e *fakeIPEnv) Now() sim.Time            { return e.now }
func (e *fakeIPEnv) TransmitFrame(raw []byte) { e.frames = append(e.frames, raw) }
func (e *fakeIPEnv) TransmitTSO(eth proto.EthernetHeader, ip proto.IPv4Header, tcp proto.TCPHeader, payload []byte, mss int) {
	e.tso++
}
func (e *fakeIPEnv) DeliverTransport(f *proto.Frame) { e.delivered = append(e.delivered, f) }
func (e *fakeIPEnv) After(d sim.Time, fn func()) {
	e.timers = append(e.timers, ipTimer{at: e.now + d, fn: fn})
}

// advance runs due timers up to t.
func (e *fakeIPEnv) advance(t sim.Time) {
	e.now = t
	sort.SliceStable(e.timers, func(i, j int) bool { return e.timers[i].at < e.timers[j].at })
	for len(e.timers) > 0 && e.timers[0].at <= t {
		tm := e.timers[0]
		e.timers = e.timers[1:]
		tm.fn()
	}
}

func newIP(env Env, addr proto.Addr, mac proto.MAC, static bool) *Engine {
	cfg := Config{Addr: addr, Mask: mask, MAC: mac}
	if static {
		other, otherMAC := ipB, macB
		if addr == ipB {
			other, otherMAC = ipA, macA
		}
		cfg.StaticARP = map[proto.Addr]proto.MAC{other: otherMAC}
	}
	return NewEngine(env, cfg)
}

func udpPayload(t *testing.T, dst proto.Addr, data []byte) []byte {
	t.Helper()
	h := proto.UDPHeader{SrcPort: 1000, DstPort: 2000}
	return h.Marshal(nil, ipA, dst, data)
}

func TestOutputWithStaticARP(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, true)
	e.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, []byte("hi")))
	if len(env.frames) != 1 {
		t.Fatalf("frames=%d", len(env.frames))
	}
	f, err := proto.DecodeFrame(env.frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Eth.Dst != macB || f.IP.Dst != ipB || f.UDP == nil || string(f.Payload) != "hi" {
		t.Fatalf("frame: %+v", f)
	}
}

func TestARPResolutionQueuesAndFlushes(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, false) // no static ARP
	e.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, []byte("q1")))
	e.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, []byte("q2")))
	// Only one ARP request so far; data frames queued.
	if len(env.frames) != 1 {
		t.Fatalf("expected 1 ARP request, got %d frames", len(env.frames))
	}
	arpf, _ := proto.DecodeFrame(env.frames[0])
	if arpf.ARP == nil || arpf.ARP.Op != proto.ARPRequest || arpf.ARP.TargetIP != ipB {
		t.Fatalf("not an ARP request: %+v", arpf)
	}
	// Deliver the ARP reply.
	reply := proto.BuildARP(
		proto.EthernetHeader{Dst: macA, Src: macB, Type: proto.EtherTypeARP},
		proto.ARPPacket{Op: proto.ARPReply, SenderMAC: macB, SenderIP: ipB, TargetMAC: macA, TargetIP: ipA})
	rf, _ := proto.DecodeFrame(reply)
	e.Input(rf)
	if len(env.frames) != 3 {
		t.Fatalf("queued frames not flushed: %d", len(env.frames))
	}
	for _, raw := range env.frames[1:] {
		f, err := proto.DecodeFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if f.Eth.Dst != macB {
			t.Fatalf("flushed frame has wrong MAC: %v", f.Eth.Dst)
		}
	}
	if _, ok := e.ARPEntry(ipB); !ok {
		t.Fatal("ARP entry not cached")
	}
}

func TestARPRetryAndFailure(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, false)
	e.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, []byte("x")))
	env.advance(250 * sim.Millisecond)
	env.advance(500 * sim.Millisecond)
	env.advance(750 * sim.Millisecond)
	st := e.Stats()
	if st.ARPRequestsSent < 2 {
		t.Fatalf("no ARP retry: %+v", st)
	}
	if st.ARPFailed != 1 {
		t.Fatalf("ARP failure not recorded: %+v", st)
	}
}

func TestARPRequestAnswered(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, false)
	req := proto.BuildARP(
		proto.EthernetHeader{Dst: proto.BroadcastMAC, Src: macB, Type: proto.EtherTypeARP},
		proto.ARPPacket{Op: proto.ARPRequest, SenderMAC: macB, SenderIP: ipB, TargetIP: ipA})
	rf, _ := proto.DecodeFrame(req)
	e.Input(rf)
	if len(env.frames) != 1 {
		t.Fatalf("no ARP reply sent")
	}
	f, _ := proto.DecodeFrame(env.frames[0])
	if f.ARP == nil || f.ARP.Op != proto.ARPReply || f.ARP.SenderIP != ipA || f.Eth.Dst != macB {
		t.Fatalf("bad reply: %+v", f)
	}
	// And it learned the requester's mapping.
	if m, ok := e.ARPEntry(ipB); !ok || m != macB {
		t.Fatal("did not learn sender mapping")
	}
}

func TestICMPEchoReplied(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, true)
	ping := proto.BuildICMP(
		proto.EthernetHeader{Dst: macA, Src: macB, Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: ipB, Dst: ipA},
		proto.ICMPEcho{Type: proto.ICMPEchoRequest, Ident: 42, Seq: 7},
		[]byte("payload"))
	pf, _ := proto.DecodeFrame(ping)
	e.Input(pf)
	if len(env.frames) != 1 {
		t.Fatal("no echo reply")
	}
	f, _ := proto.DecodeFrame(env.frames[0])
	if f.ICMP == nil || f.ICMP.Type != proto.ICMPEchoReply || f.ICMP.Ident != 42 ||
		f.ICMP.Seq != 7 || string(f.Payload) != "payload" || f.IP.Dst != ipB {
		t.Fatalf("bad echo reply: %+v payload=%q", f.ICMP, f.Payload)
	}
}

func TestNotForUsDropped(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, true)
	other := proto.BuildUDP(
		proto.EthernetHeader{Dst: macA, Src: macB, Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: ipB, Dst: proto.IPv4(10, 0, 0, 99)},
		proto.UDPHeader{SrcPort: 1, DstPort: 2}, nil)
	f, _ := proto.DecodeFrame(other)
	e.Input(f)
	if len(env.delivered) != 0 || e.Stats().NotForUs != 1 {
		t.Fatalf("misdelivered: %+v", e.Stats())
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	envA := &fakeIPEnv{}
	a := newIP(envA, ipA, macA, true)
	envB := &fakeIPEnv{}
	b := newIP(envB, ipB, macB, true)

	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	a.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, data))
	if a.Stats().FragmentsSent < 3 {
		t.Fatalf("fragments sent = %d", a.Stats().FragmentsSent)
	}
	for _, raw := range envA.frames {
		f, err := proto.DecodeFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 1500+proto.EthernetHeaderLen {
			t.Fatalf("fragment exceeds MTU: %d", len(raw))
		}
		b.Input(f)
	}
	if len(envB.delivered) != 1 {
		t.Fatalf("reassembled deliveries = %d", len(envB.delivered))
	}
	got := envB.delivered[0]
	if got.UDP == nil || !bytes.Equal(got.Payload, data) {
		t.Fatalf("reassembly corrupted: %d bytes", len(got.Payload))
	}
	if b.Stats().Reassembled != 1 {
		t.Fatalf("stats: %+v", b.Stats())
	}
}

func TestFragmentReorderTolerated(t *testing.T) {
	envA := &fakeIPEnv{}
	a := newIP(envA, ipA, macA, true)
	envB := &fakeIPEnv{}
	b := newIP(envB, ipB, macB, true)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	a.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, data))
	// Deliver fragments in reverse order.
	for i := len(envA.frames) - 1; i >= 0; i-- {
		f, _ := proto.DecodeFrame(envA.frames[i])
		b.Input(f)
	}
	if len(envB.delivered) != 1 || !bytes.Equal(envB.delivered[0].Payload, data) {
		t.Fatal("reverse-order reassembly failed")
	}
}

func TestReassemblyTimeout(t *testing.T) {
	envA := &fakeIPEnv{}
	a := newIP(envA, ipA, macA, true)
	envB := &fakeIPEnv{}
	b := newIP(envB, ipB, macB, true)
	a.Output(ipB, proto.ProtoUDP, udpPayload(t, ipB, make([]byte, 4000)))
	// Deliver only the first fragment.
	f, _ := proto.DecodeFrame(envA.frames[0])
	b.Input(f)
	envB.advance(2 * sim.Second)
	if b.Stats().ReassemblyExpired != 1 {
		t.Fatalf("expiry not recorded: %+v", b.Stats())
	}
	if len(envB.delivered) != 0 {
		t.Fatal("partial packet delivered")
	}
}

func TestLoopback(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, true)
	e.Output(ipA, proto.ProtoUDP, udpPayload(t, ipA, []byte("self")))
	if len(env.frames) != 0 {
		t.Fatal("loopback hit the wire")
	}
	if len(env.delivered) != 1 || string(env.delivered[0].Payload) != "self" {
		t.Fatalf("loopback delivery: %+v", env.delivered)
	}
	if e.Stats().Loopback != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestGatewayRouting(t *testing.T) {
	env := &fakeIPEnv{}
	gw := proto.IPv4(10, 0, 0, 254)
	gwMAC := proto.MAC{2, 0, 0, 0, 0, 0xFE}
	e := NewEngine(env, Config{
		Addr: ipA, Mask: mask, Gateway: gw, MAC: macA,
		StaticARP: map[proto.Addr]proto.MAC{gw: gwMAC},
	})
	remote := proto.IPv4(192, 168, 1, 1)
	h := proto.UDPHeader{SrcPort: 1, DstPort: 2}
	e.Output(remote, proto.ProtoUDP, h.Marshal(nil, ipA, remote, []byte("far")))
	if len(env.frames) != 1 {
		t.Fatal("no frame out")
	}
	f, _ := proto.DecodeFrame(env.frames[0])
	if f.Eth.Dst != gwMAC {
		t.Fatalf("frame not sent to gateway MAC: %v", f.Eth.Dst)
	}
	if f.IP.Dst != remote {
		t.Fatalf("IP dst rewritten: %v", f.IP.Dst)
	}
}

func TestNoRouteCounted(t *testing.T) {
	env := &fakeIPEnv{}
	e := NewEngine(env, Config{Addr: ipA, Mask: mask, MAC: macA}) // no gateway
	remote := proto.IPv4(192, 168, 1, 1)
	h := proto.UDPHeader{SrcPort: 1, DstPort: 2}
	e.Output(remote, proto.ProtoUDP, h.Marshal(nil, ipA, remote, nil))
	if e.Stats().NoRoute != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

func TestTSOPath(t *testing.T) {
	env := &fakeIPEnv{}
	e := newIP(env, ipA, macA, true)
	e.OutputTSO(TSO{
		TCP:     proto.TCPHeader{SrcPort: 80, DstPort: 99, Flags: proto.TCPAck},
		Dst:     ipB,
		Payload: make([]byte, 8000),
		MSS:     1460,
	})
	if env.tso != 1 {
		t.Fatalf("TSO descriptors=%d", env.tso)
	}
	// Unresolved MAC falls back to normal output (which queues on ARP).
	env2 := &fakeIPEnv{}
	e2 := newIP(env2, ipA, macA, false)
	e2.OutputTSO(TSO{TCP: proto.TCPHeader{SrcPort: 80, DstPort: 99}, Dst: ipB, Payload: make([]byte, 100), MSS: 1460})
	if env2.tso != 0 {
		t.Fatal("TSO used without ARP entry")
	}
	if e2.Stats().ARPRequestsSent != 1 {
		t.Fatal("fallback did not trigger ARP")
	}
}
