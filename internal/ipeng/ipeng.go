// Package ipeng implements the IP component of a stack replica (§3.7,
// Fig. 3 of the paper): IPv4 input/output with routing to a directly
// attached subnet or a default gateway, ARP resolution with request
// queueing and retry, ICMP echo handling, fragmentation and reassembly,
// and loopback. Apart from the ARP cache and in-flight reassembly buffers
// the component is stateless (or "pseudo-stateless"), which is exactly why
// the paper can recover it transparently after a crash (§6.6): everything
// here can be recreated from configuration.
package ipeng

import (
	"fmt"

	"neat/internal/bufpool"
	"neat/internal/proto"
	"neat/internal/sim"
)

// TSO describes a TCP segmentation-offload transmission: the IP component
// attaches IP and Ethernet headers and hands the NIC one descriptor.
type TSO struct {
	TCP     proto.TCPHeader
	Dst     proto.Addr
	Payload []byte
	MSS     int
}

// Env is the world as seen by the IP component: frame transmission
// (towards the NIC driver), transport delivery (towards TCP/UDP), and
// timers.
type Env interface {
	Now() sim.Time
	// TransmitFrame hands a serialized Ethernet frame to the NIC driver.
	TransmitFrame(raw []byte)
	// TransmitTSO hands the driver a TSO descriptor with prebuilt headers.
	TransmitTSO(eth proto.EthernetHeader, ip proto.IPv4Header, tcp proto.TCPHeader, payload []byte, mss int)
	// DeliverTransport passes a complete (reassembled) packet up the stack.
	DeliverTransport(f *proto.Frame)
	// After schedules fn on the owning process after d.
	After(d sim.Time, fn func())
}

// Config configures an IP component.
type Config struct {
	Addr    proto.Addr
	Mask    proto.Addr // e.g. 255.255.255.0
	Gateway proto.Addr // zero = no gateway (link-local only)
	MAC     proto.MAC
	MTU     int // default 1500
	// StaticARP seeds the ARP cache (the experiments use static entries;
	// dynamic resolution is exercised by tests).
	StaticARP map[proto.Addr]proto.MAC
	// ARPTimeout is the per-try ARP resolution timeout (default 200 ms,
	// 3 tries).
	ARPTimeout sim.Time
	// ReassemblyTimeout discards incomplete fragment groups (default 1 s).
	ReassemblyTimeout sim.Time
}

// Stats counts IP component events.
type Stats struct {
	In, Out           uint64
	Loopback          uint64
	ARPRequestsSent   uint64
	ARPRepliesSent    uint64
	ARPResolved       uint64
	ARPFailed         uint64
	ICMPEchoReplies   uint64
	FragmentsSent     uint64
	FragmentsReceived uint64
	Reassembled       uint64
	ReassemblyExpired uint64
	NotForUs          uint64
	NoRoute           uint64
	QueuedAwaitingARP uint64
}

// Engine is the IP component state.
type Engine struct {
	env Env
	cfg Config

	arp     map[proto.Addr]proto.MAC
	arpWait map[proto.Addr]*arpPending
	ipID    uint16
	reasm   map[reasmKey]*reasmBuf
	stats   Stats
}

type arpPending struct {
	frames [][]byte // serialized frames awaiting the MAC (dst rewritten on resolve)
	tries  int
}

type reasmKey struct {
	src   proto.Addr
	id    uint16
	proto proto.IPProto
}

type reasmBuf struct {
	data     []byte
	have     map[uint16]bool // offsets received (8-byte units)
	total    int             // total length once last fragment seen, else -1
	received int
	deadline sim.Time
}

// NewEngine creates an IP component.
func NewEngine(env Env, cfg Config) *Engine {
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	if cfg.ARPTimeout == 0 {
		cfg.ARPTimeout = 200 * sim.Millisecond
	}
	if cfg.ReassemblyTimeout == 0 {
		cfg.ReassemblyTimeout = sim.Second
	}
	e := &Engine{
		env:     env,
		cfg:     cfg,
		arp:     make(map[proto.Addr]proto.MAC),
		arpWait: make(map[proto.Addr]*arpPending),
		reasm:   make(map[reasmKey]*reasmBuf),
	}
	for ip, mac := range cfg.StaticARP {
		e.arp[ip] = mac
	}
	return e
}

// Addr returns the component's IP address.
func (e *Engine) Addr() proto.Addr { return e.cfg.Addr }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// sameSubnet reports whether dst is on the directly attached network.
func (e *Engine) sameSubnet(dst proto.Addr) bool {
	m := e.cfg.Mask.Uint32()
	return e.cfg.Addr.Uint32()&m == dst.Uint32()&m
}

// nextHop picks the L2 destination for dst.
func (e *Engine) nextHop(dst proto.Addr) (proto.Addr, bool) {
	if e.sameSubnet(dst) || e.cfg.Mask == (proto.Addr{}) {
		return dst, true
	}
	if e.cfg.Gateway != (proto.Addr{}) {
		return e.cfg.Gateway, true
	}
	return proto.Addr{}, false
}

// Output transmits a transport payload to dst, handling loopback, routing,
// ARP and fragmentation. transport is the serialized transport header +
// data (e.g. a marshalled TCP segment).
func (e *Engine) Output(dst proto.Addr, p proto.IPProto, transport []byte) {
	if dst == e.cfg.Addr {
		e.loopback(dst, p, transport)
		return
	}
	e.ipID++
	id := e.ipID
	if len(transport)+proto.IPv4HeaderLen <= e.cfg.MTU {
		ip := proto.IPv4Header{
			TotalLen: uint16(proto.IPv4HeaderLen + len(transport)),
			ID:       id, Flags: proto.IPFlagDF, TTL: 64,
			Protocol: p, Src: e.cfg.Addr, Dst: dst,
		}
		e.sendIP(dst, ip, transport)
		return
	}
	// Fragment: payload chunks in multiples of 8 bytes.
	chunk := (e.cfg.MTU - proto.IPv4HeaderLen) &^ 7
	off := 0
	for off < len(transport) {
		n := chunk
		last := false
		if off+n >= len(transport) {
			n = len(transport) - off
			last = true
		}
		flags := uint16(0)
		if !last {
			flags = proto.IPFlagMF
		}
		ip := proto.IPv4Header{
			TotalLen: uint16(proto.IPv4HeaderLen + n),
			ID:       id, Flags: flags, FragOff: uint16(off / 8),
			TTL: 64, Protocol: p, Src: e.cfg.Addr, Dst: dst,
		}
		e.stats.FragmentsSent++
		e.sendIP(dst, ip, transport[off:off+n])
		off += n
	}
}

// OutputFrame transmits a transport segment that the caller marshalled at
// proto.TxHeadroom into frame (a pooled buffer): the Ethernet and IPv4
// headers are written into the reserved headroom in place and the buffer
// goes to the driver without copying the segment. Ownership of frame passes
// to the engine with the call. Paths that cannot fill in place — loopback
// and fragmentation — delegate to Output on the transport view (which
// copies) and release the buffer; the delegation happens before this
// packet's IP ID is drawn, so ID sequencing matches Output exactly.
func (e *Engine) OutputFrame(dst proto.Addr, p proto.IPProto, frame []byte) {
	transport := frame[proto.TxHeadroom:]
	if dst == e.cfg.Addr || len(transport)+proto.IPv4HeaderLen > e.cfg.MTU {
		e.Output(dst, p, transport)
		bufpool.Put(frame)
		return
	}
	e.ipID++
	ip := proto.IPv4Header{
		TotalLen: uint16(proto.IPv4HeaderLen + len(transport)),
		ID:       e.ipID, Flags: proto.IPFlagDF, TTL: 64,
		Protocol: p, Src: e.cfg.Addr, Dst: dst,
	}
	e.sendIPFrame(dst, ip, frame)
}

// sendIPFrame is sendIP for a prebuilt headroom frame: the headers fill
// the reserved bytes via capacity-bounded appends instead of the segment
// being copied behind freshly marshalled headers.
func (e *Engine) sendIPFrame(dst proto.Addr, ip proto.IPv4Header, frame []byte) {
	hop, ok := e.nextHop(dst)
	if !ok {
		e.stats.NoRoute++
		bufpool.Put(frame)
		return
	}
	mac, resolved := e.arp[hop]
	// With an unresolved hop, mac stays the zero placeholder — the same
	// bytes sendIP queues — and inputARP rewrites frame[0:6] on resolution.
	eth := proto.EthernetHeader{Dst: mac, Src: e.cfg.MAC, Type: proto.EtherTypeIPv4}
	eth.Marshal(frame[:0:proto.EthernetHeaderLen])
	ip.Marshal(frame[proto.EthernetHeaderLen:proto.EthernetHeaderLen:proto.TxHeadroom])
	if resolved {
		e.stats.Out++
		e.env.TransmitFrame(frame)
		return
	}
	pend, waiting := e.arpWait[hop]
	if !waiting {
		pend = &arpPending{}
		e.arpWait[hop] = pend
		e.sendARPRequest(hop)
		e.armARPRetry(hop)
	}
	e.stats.QueuedAwaitingARP++
	if len(pend.frames) < 64 {
		pend.frames = append(pend.frames, frame)
	} else {
		bufpool.Put(frame)
	}
}

// OutputTSO transmits a TCP super-segment via NIC segmentation offload.
func (e *Engine) OutputTSO(t TSO) {
	if t.Dst == e.cfg.Addr {
		// Loopback TSO: software-segment locally.
		transport := t.TCP.Marshal(bufpool.Get(t.TCP.EncodedLen(len(t.Payload)))[:0], e.cfg.Addr, t.Dst, t.Payload)
		e.loopback(t.Dst, proto.ProtoTCP, transport)
		bufpool.Put(transport)
		return
	}
	hop, ok := e.nextHop(t.Dst)
	if !ok {
		e.stats.NoRoute++
		return
	}
	mac, ok := e.arp[hop]
	if !ok {
		// TSO sends always follow established traffic; resolve first with
		// a plain queued frame by falling back to non-TSO output.
		transport := t.TCP.Marshal(bufpool.Get(t.TCP.EncodedLen(len(t.Payload)))[:0], e.cfg.Addr, t.Dst, t.Payload)
		e.Output(t.Dst, proto.ProtoTCP, transport)
		bufpool.Put(transport)
		return
	}
	e.ipID++
	e.stats.Out++
	eth := proto.EthernetHeader{Dst: mac, Src: e.cfg.MAC, Type: proto.EtherTypeIPv4}
	ip := proto.IPv4Header{ID: e.ipID, Flags: proto.IPFlagDF, TTL: 64,
		Protocol: proto.ProtoTCP, Src: e.cfg.Addr, Dst: t.Dst}
	e.env.TransmitTSO(eth, ip, t.TCP, t.Payload, t.MSS)
}

// loopback short-circuits packets addressed to ourselves (§3.3: each
// replica implements its own loopback). transport is copied, not retained.
func (e *Engine) loopback(dst proto.Addr, p proto.IPProto, transport []byte) {
	e.stats.Loopback++
	ip := proto.IPv4Header{
		TotalLen: uint16(proto.IPv4HeaderLen + len(transport)),
		TTL:      64, Protocol: p, Src: e.cfg.Addr, Dst: dst,
	}
	raw := bufpool.Get(proto.EthernetHeaderLen + int(ip.TotalLen))[:0]
	raw = (&proto.EthernetHeader{Dst: e.cfg.MAC, Src: e.cfg.MAC, Type: proto.EtherTypeIPv4}).Marshal(raw)
	raw = ip.Marshal(raw)
	raw = append(raw, transport...)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		bufpool.Put(raw)
		return
	}
	e.Input(f)
}

// sendIP resolves the next hop MAC and transmits, queueing behind ARP.
func (e *Engine) sendIP(dst proto.Addr, ip proto.IPv4Header, payload []byte) {
	hop, ok := e.nextHop(dst)
	if !ok {
		e.stats.NoRoute++
		return
	}
	if mac, ok := e.arp[hop]; ok {
		eth := proto.EthernetHeader{Dst: mac, Src: e.cfg.MAC, Type: proto.EtherTypeIPv4}
		raw := bufpool.Get(proto.EthernetHeaderLen + int(ip.TotalLen))[:0]
		raw = eth.Marshal(raw)
		raw = ip.Marshal(raw)
		raw = append(raw, payload...)
		e.stats.Out++
		e.env.TransmitFrame(raw)
		return
	}
	// Queue the frame with a placeholder MAC; rewrite on resolution.
	raw := bufpool.Get(proto.EthernetHeaderLen + int(ip.TotalLen))[:0]
	raw = (&proto.EthernetHeader{Src: e.cfg.MAC, Type: proto.EtherTypeIPv4}).Marshal(raw)
	raw = ip.Marshal(raw)
	raw = append(raw, payload...)
	pend, waiting := e.arpWait[hop]
	if !waiting {
		pend = &arpPending{}
		e.arpWait[hop] = pend
		e.sendARPRequest(hop)
		e.armARPRetry(hop)
	}
	e.stats.QueuedAwaitingARP++
	if len(pend.frames) < 64 {
		pend.frames = append(pend.frames, raw)
	} else {
		bufpool.Put(raw)
	}
}

func (e *Engine) sendARPRequest(target proto.Addr) {
	e.stats.ARPRequestsSent++
	raw := proto.BuildARP(
		proto.EthernetHeader{Dst: proto.BroadcastMAC, Src: e.cfg.MAC, Type: proto.EtherTypeARP},
		proto.ARPPacket{Op: proto.ARPRequest, SenderMAC: e.cfg.MAC, SenderIP: e.cfg.Addr, TargetIP: target},
	)
	e.env.TransmitFrame(raw)
}

func (e *Engine) armARPRetry(target proto.Addr) {
	e.env.After(e.cfg.ARPTimeout, func() {
		pend, ok := e.arpWait[target]
		if !ok {
			return // resolved
		}
		pend.tries++
		if pend.tries >= 3 {
			e.stats.ARPFailed++
			delete(e.arpWait, target)
			for i, raw := range pend.frames {
				bufpool.Put(raw)
				pend.frames[i] = nil
			}
			return
		}
		e.sendARPRequest(target)
		e.armARPRetry(target)
	})
}

// Input processes one inbound frame: ARP, ICMP, fragments, transport.
// Frames consumed here (ARP, fragments, echo requests, misaddressed) are
// released; only DeliverTransport hands ownership onward.
func (e *Engine) Input(f *proto.Frame) {
	if f.ARP != nil {
		e.inputARP(f.ARP)
		f.Release()
		return
	}
	if f.IP == nil {
		f.Release()
		return
	}
	if f.IP.Dst != e.cfg.Addr {
		e.stats.NotForUs++
		f.Release()
		return
	}
	e.stats.In++
	if f.IP.FragOff != 0 || f.IP.Flags&proto.IPFlagMF != 0 {
		e.inputFragment(f)
		f.Release()
		return
	}
	if f.ICMP != nil {
		e.inputICMP(f)
		return
	}
	e.env.DeliverTransport(f)
}

func (e *Engine) inputARP(a *proto.ARPPacket) {
	// Learn the sender mapping either way.
	e.arp[a.SenderIP] = a.SenderMAC
	if pend, ok := e.arpWait[a.SenderIP]; ok {
		e.stats.ARPResolved++
		delete(e.arpWait, a.SenderIP)
		for _, raw := range pend.frames {
			copy(raw[0:6], a.SenderMAC[:]) // rewrite placeholder dst MAC
			e.stats.Out++
			e.env.TransmitFrame(raw)
		}
	}
	if a.Op == proto.ARPRequest && a.TargetIP == e.cfg.Addr {
		e.stats.ARPRepliesSent++
		raw := proto.BuildARP(
			proto.EthernetHeader{Dst: a.SenderMAC, Src: e.cfg.MAC, Type: proto.EtherTypeARP},
			proto.ARPPacket{Op: proto.ARPReply, SenderMAC: e.cfg.MAC, SenderIP: e.cfg.Addr,
				TargetMAC: a.SenderMAC, TargetIP: a.SenderIP},
		)
		e.env.TransmitFrame(raw)
	}
}

func (e *Engine) inputICMP(f *proto.Frame) {
	if f.ICMP.Type != proto.ICMPEchoRequest {
		e.env.DeliverTransport(f) // echo replies etc. go to the owner (ping)
		return
	}
	e.stats.ICMPEchoReplies++
	reply := proto.ICMPEcho{Type: proto.ICMPEchoReply, Ident: f.ICMP.Ident, Seq: f.ICMP.Seq}
	body := reply.Marshal(bufpool.Get(proto.ICMPHeaderLen + len(f.Payload))[:0], f.Payload)
	e.Output(f.IP.Src, proto.ProtoICMP, body)
	bufpool.Put(body)
	f.Release()
}

// inputFragment buffers fragments and delivers the reassembled packet.
func (e *Engine) inputFragment(f *proto.Frame) {
	e.stats.FragmentsReceived++
	k := reasmKey{src: f.IP.Src, id: f.IP.ID, proto: f.IP.Protocol}
	b, ok := e.reasm[k]
	if !ok {
		b = &reasmBuf{have: make(map[uint16]bool), total: -1,
			deadline: e.env.Now() + e.cfg.ReassemblyTimeout}
		e.reasm[k] = b
		e.env.After(e.cfg.ReassemblyTimeout, func() {
			if cur, still := e.reasm[k]; still && cur == b {
				e.stats.ReassemblyExpired++
				delete(e.reasm, k)
			}
		})
	}
	off := int(f.IP.FragOff) * 8
	end := off + len(f.Payload)
	if end > len(b.data) {
		grown := make([]byte, end)
		copy(grown, b.data)
		b.data = grown
	}
	copy(b.data[off:end], f.Payload)
	if !b.have[f.IP.FragOff] {
		b.have[f.IP.FragOff] = true
		b.received += len(f.Payload)
	}
	if f.IP.Flags&proto.IPFlagMF == 0 {
		b.total = end
	}
	if b.total >= 0 && b.received >= b.total {
		delete(e.reasm, k)
		e.stats.Reassembled++
		e.deliverReassembled(f, b.data[:b.total])
	}
}

// deliverReassembled re-decodes the reassembled transport payload and
// delivers it as a normal frame.
func (e *Engine) deliverReassembled(last *proto.Frame, transport []byte) {
	ip := *last.IP
	ip.Flags, ip.FragOff = 0, 0
	ip.TotalLen = uint16(proto.IPv4HeaderLen + len(transport))
	raw := bufpool.Get(proto.EthernetHeaderLen + int(ip.TotalLen))[:0]
	raw = last.Eth.Marshal(raw)
	raw = ip.Marshal(raw)
	raw = append(raw, transport...)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		bufpool.Put(raw)
		return
	}
	if f.ICMP != nil {
		e.inputICMP(f)
		return
	}
	e.env.DeliverTransport(f)
}

// ARPEntry reports the cached MAC for ip.
func (e *Engine) ARPEntry(ip proto.Addr) (proto.MAC, bool) {
	m, ok := e.arp[ip]
	return m, ok
}

// String describes the component configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("ip %s/%s gw %s mtu %d", e.cfg.Addr, e.cfg.Mask, e.cfg.Gateway, e.cfg.MTU)
}
