package app

import (
	"testing"

	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// echoBed pairs an EchoServer behind NEaT with Talker conversation clients.
func echoBed(t *testing.T, replicas, talkers int, ecfg EchoConfig, tcfg TalkerConfig) (*testbed.Net, *EchoServer, []*Talker) {
	t.Helper()
	n := testbed.New(17)
	server := testbed.DefaultAMDHost(n, 0, replicas)
	client := testbed.DefaultClientHost(n, 1, talkers)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: tcpeng.DefaultConfig(),
		Slots:   testbed.SingleSlots(2, replicas),
		Syscall: testbed.ThreadLoc{Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, talkers, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ecfg.Port == 0 {
		ecfg.Port = 7 // the traditional echo port
	}
	es := NewEchoServer(server.AppThread(2+replicas), "echod", sys.SyscallProc(),
		ipc.DefaultCosts(), ecfg)
	es.Start()
	n.Sim.RunFor(sim.Millisecond)
	if !es.Ready() {
		t.Fatal("echo server not ready")
	}
	tcfg.Target = server.IP
	if tcfg.Port == 0 {
		tcfg.Port = ecfg.Port
	}
	var tks []*Talker
	for i := 0; i < talkers; i++ {
		tk := NewTalker(client.AppThread(2+talkers+i), "talker", clisys.SyscallProc(),
			ipc.DefaultCosts(), tcfg)
		tks = append(tks, tk)
	}
	return n, es, tks
}

func TestEchoConversationEndToEnd(t *testing.T) {
	const rounds = 12
	n, es, tks := echoBed(t, 2, 1, EchoConfig{},
		TalkerConfig{Conns: 4, Rounds: rounds, MsgSize: 384})
	tks[0].Start()
	n.Sim.RunFor(300 * sim.Millisecond)

	st := tks[0].Stats()
	if st.SessionsDone < 8 {
		t.Fatalf("sessions=%d (errors=%d)", st.SessionsDone, st.Errors)
	}
	if st.Errors != 0 || st.Mismatches != 0 {
		t.Fatalf("errors=%d mismatches=%d", st.Errors, st.Mismatches)
	}
	// Every completed session is exactly `rounds` request/reply exchanges on
	// ONE connection: rounds completed must line up with sessions and the
	// number of connections the server accepted.
	if st.RoundsCompleted < st.SessionsDone*rounds {
		t.Fatalf("rounds=%d for %d sessions", st.RoundsCompleted, st.SessionsDone)
	}
	if st.BytesIn != st.RoundsCompleted*384 {
		t.Fatalf("bytes in=%d for %d rounds", st.BytesIn, st.RoundsCompleted)
	}
	ss := es.Stats()
	if ss.Accepted < st.SessionsDone || ss.Accepted > uint64(st.ConnsOpened) {
		t.Fatalf("server accepted %d, client opened %d, %d sessions done",
			ss.Accepted, st.ConnsOpened, st.SessionsDone)
	}
	if ss.BytesIn < st.BytesIn {
		t.Fatalf("server echoed %d bytes, client received %d", ss.BytesIn, st.BytesIn)
	}
	// Conversation latency histogram is populated.
	if tks[0].Latency().Count() == 0 {
		t.Fatal("no latency samples")
	}
}

// TestEchoConversationWithThinkTime keeps connections long-lived and mostly
// idle — the shape the per-connection idle guard must not reap as long as
// think time stays under the deadline.
func TestEchoConversationWithThinkTime(t *testing.T) {
	n, _, tks := echoBed(t, 1, 1, EchoConfig{},
		TalkerConfig{Conns: 3, Rounds: 6, MsgSize: 128, ThinkTime: 10 * sim.Millisecond})
	tks[0].Start()
	n.Sim.RunFor(400 * sim.Millisecond)
	st := tks[0].Stats()
	if st.SessionsDone < 3 {
		t.Fatalf("sessions=%d (errors=%d)", st.SessionsDone, st.Errors)
	}
	if st.Errors != 0 {
		t.Fatalf("errors=%d", st.Errors)
	}
}
