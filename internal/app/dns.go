package app

import (
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// This file is a DNS-shaped UDP request/response workload: a resolver
// server answering fixed-size queries and a client issuing paced lookups
// and matching answers by transaction ID. It exercises the UDP path
// (udpeng, the OpUDPBind/OpUDPSendTo/EvUDPData protocol, ephemeral UDP
// ports) beyond the echo tests: real request/response correlation,
// timeouts, and server-side application cost per query.
//
// The wire format is deliberately minimal — [2-byte ID][name bytes] out,
// [2-byte ID][4-byte answer] back — the point is the traffic shape, not
// RFC 1035.

// DNSServerConfig configures the resolver process.
type DNSServerConfig struct {
	Port uint16 // default 53
	// CyclesPerQuery is the lookup cost (cache hit in a real resolver).
	CyclesPerQuery int64
}

// DNSServerStats counts resolver activity.
type DNSServerStats struct {
	Queries  uint64
	Answers  uint64
	BadQuery uint64
	BytesOut uint64
}

// DNSServer is one resolver process.
type DNSServer struct {
	proc  *sim.Proc
	lib   *socketlib.Lib
	cfg   DNSServerConfig
	sock  *socketlib.UDPSocket
	ready bool
	stats DNSServerStats
}

type dnsSrvStart struct{}

// NewDNSServer creates a resolver on thread th. Call Start to bind.
func NewDNSServer(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg DNSServerConfig) *DNSServer {
	if cfg.Port == 0 {
		cfg.Port = 53
	}
	if cfg.CyclesPerQuery == 0 {
		cfg.CyclesPerQuery = 8000
	}
	s := &DNSServer{cfg: cfg}
	s.proc = sim.NewProc(th, name, s, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	s.lib = socketlib.New(s.proc, syscallProc, ipcCosts)
	return s
}

// Proc returns the resolver process.
func (s *DNSServer) Proc() *sim.Proc { return s.proc }

// Ready reports whether the UDP bind completed.
func (s *DNSServer) Ready() bool { return s.ready }

// Stats returns a snapshot of the counters.
func (s *DNSServer) Stats() DNSServerStats { return s.stats }

// Start binds the resolver port.
func (s *DNSServer) Start() { s.proc.Deliver(dnsSrvStart{}) }

// HandleMessage implements sim.Handler.
func (s *DNSServer) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if s.lib.HandleEvent(ctx, msg) {
		return
	}
	if _, ok := msg.(dnsSrvStart); ok {
		s.sock = s.lib.BindUDP(ctx, s.cfg.Port)
		s.sock.OnReady = func(ctx *sim.Context, err error) { s.ready = err == nil }
		s.sock.OnData = s.onQuery
	}
}

// onQuery answers one query: the 4-byte answer is a deterministic digest
// of the queried name (a stand-in for the cache lookup).
func (s *DNSServer) onQuery(ctx *sim.Context, src proto.Addr, srcPort uint16, data []byte) {
	s.stats.Queries++
	if len(data) < 3 {
		s.stats.BadQuery++
		return
	}
	ctx.Charge(s.cfg.CyclesPerQuery)
	h := uint32(2166136261)
	for _, b := range data[2:] {
		h = (h ^ uint32(b)) * 16777619
	}
	resp := []byte{data[0], data[1], byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
	s.stats.Answers++
	s.stats.BytesOut += uint64(len(resp))
	s.sock.SendTo(ctx, src, srcPort, resp)
}

// DNSClientConfig configures one lookup-generator process.
type DNSClientConfig struct {
	Target proto.Addr
	Port   uint16 // default 53
	// Interval paces queries (default 100 µs).
	Interval sim.Time
	// Names is the rotation of queried names (default a small synthetic
	// zone).
	Names []string
	// Timeout expires an unanswered query (default 100 ms).
	Timeout sim.Time
	// CyclesPerQuery is the client-side cost per lookup.
	CyclesPerQuery int64
}

// DNSClientStats counts lookup activity.
type DNSClientStats struct {
	QueriesSent uint64
	ResponsesOK uint64
	Mismatched  uint64 // answer arrived with an unknown/expired ID
	Timeouts    uint64
}

// DNSClient is one lookup-generator process.
type DNSClient struct {
	proc    *sim.Proc
	lib     *socketlib.Lib
	cfg     DNSClientConfig
	sock    *socketlib.UDPSocket
	ready   bool
	running bool
	stats   DNSClientStats
	latency metrics.Histogram

	nextID uint16
	// outstanding is a FIFO of in-flight queries (IDs are issued in
	// order, so expiry scans from the front — no map iteration, which
	// would be nondeterministic).
	outstanding []dnsPending
}

type dnsPending struct {
	id   uint16
	at   sim.Time
	done bool
}

type dnsCliStart struct{}
type dnsCliStop struct{}
type dnsCliTick struct{}

// NewDNSClient creates a lookup generator on thread th. Call Start to
// bind and begin querying.
func NewDNSClient(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg DNSClientConfig) *DNSClient {
	if cfg.Port == 0 {
		cfg.Port = 53
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * sim.Microsecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 100 * sim.Millisecond
	}
	if len(cfg.Names) == 0 {
		cfg.Names = []string{"www.sut.test", "api.sut.test", "cdn.sut.test", "db.sut.test"}
	}
	if cfg.CyclesPerQuery == 0 {
		cfg.CyclesPerQuery = 2000
	}
	c := &DNSClient{cfg: cfg}
	c.proc = sim.NewProc(th, name, c, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	c.lib = socketlib.New(c.proc, syscallProc, ipcCosts)
	return c
}

// Proc returns the generator process.
func (c *DNSClient) Proc() *sim.Proc { return c.proc }

// Ready reports whether the UDP bind completed.
func (c *DNSClient) Ready() bool { return c.ready }

// Stats returns a snapshot of the counters.
func (c *DNSClient) Stats() DNSClientStats { return c.stats }

// Latency returns the lookup-latency histogram.
func (c *DNSClient) Latency() *metrics.Histogram { return &c.latency }

// Start binds an ephemeral port and begins querying.
func (c *DNSClient) Start() { c.proc.Deliver(dnsCliStart{}) }

// Stop halts query issue (outstanding lookups may still resolve).
func (c *DNSClient) Stop() { c.proc.Deliver(dnsCliStop{}) }

// HandleMessage implements sim.Handler.
func (c *DNSClient) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if c.lib.HandleEvent(ctx, msg) {
		return
	}
	switch msg.(type) {
	case dnsCliStart:
		if c.running {
			return
		}
		c.running = true
		c.sock = c.lib.BindUDP(ctx, 0)
		c.sock.OnReady = func(ctx *sim.Context, err error) {
			c.ready = err == nil
			if c.ready {
				c.tick(ctx)
			}
		}
		c.sock.OnData = c.onAnswer
	case dnsCliStop:
		c.running = false
	case dnsCliTick:
		if c.running {
			c.tick(ctx)
		}
	}
}

// tick issues one query, expires stale ones, and re-arms the pacer.
func (c *DNSClient) tick(ctx *sim.Context) {
	now := ctx.Sim.Now()
	for len(c.outstanding) > 0 {
		p := &c.outstanding[0]
		if !p.done && now-p.at < c.cfg.Timeout {
			break
		}
		if !p.done {
			c.stats.Timeouts++
		}
		c.outstanding = c.outstanding[1:]
	}
	ctx.Charge(c.cfg.CyclesPerQuery)
	name := c.cfg.Names[int(c.nextID)%len(c.cfg.Names)]
	q := make([]byte, 2+len(name))
	q[0], q[1] = byte(c.nextID>>8), byte(c.nextID)
	copy(q[2:], name)
	c.outstanding = append(c.outstanding, dnsPending{id: c.nextID, at: now})
	c.nextID++
	c.stats.QueriesSent++
	c.sock.SendTo(ctx, c.cfg.Target, c.cfg.Port, q)
	ctx.TimerAfter(c.cfg.Interval, dnsCliTick{})
}

// onAnswer matches a response to its in-flight query by transaction ID.
func (c *DNSClient) onAnswer(ctx *sim.Context, src proto.Addr, srcPort uint16, data []byte) {
	if len(data) < 6 {
		c.stats.Mismatched++
		return
	}
	id := uint16(data[0])<<8 | uint16(data[1])
	for i := range c.outstanding {
		p := &c.outstanding[i]
		if p.id == id && !p.done {
			p.done = true
			c.stats.ResponsesOK++
			c.latency.Observe(ctx.Sim.Now() - p.at)
			return
		}
	}
	c.stats.Mismatched++
}
