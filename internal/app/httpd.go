// Package app provides the workload applications of the paper's
// evaluation: a lighttpd-like static web server (httpd) and an
// httperf-like load generator (loadgen). Both are event-driven processes
// built on the socketlib fast-path sockets, and both charge application
// cycles so the CPU-load split between stack and application matches the
// paper's analysis (§3.2: roughly 70-80 % of a loaded web server's cycles
// are spent inside the OS).
package app

import (
	"bytes"
	"fmt"
	"strconv"

	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// HTTPDConfig configures a web server instance (one lighttpd process).
type HTTPDConfig struct {
	Port    uint16
	Backlog int
	// Files maps URI path → content size in bytes (content is synthetic,
	// cached in memory as in the paper's evaluation).
	Files map[string]int
	// MaxRequestsPerConn closes the connection after N requests, like the
	// paper's lighttpd configured for 1000 requests per connection.
	MaxRequestsPerConn int
	// CyclesPerRequest is the application work per request (parse +
	// dispatch + logging). Calibrated in experiments/calibrate.go.
	CyclesPerRequest int64
	// CyclesPerKB is the application copy cost per KiB of response body.
	CyclesPerKB int64
	// ChunkSize bounds how much of a large response is handed to the
	// socket per send-space window (default 64 KiB).
	ChunkSize int
}

// HTTPDStats counts server activity.
type HTTPDStats struct {
	Accepted  uint64
	Requests  uint64
	Responses uint64
	BytesOut  uint64
	BadReqs   uint64
	NotFound  uint64
	Resets    uint64
	Closed    uint64
}

// HTTPD is one web server process.
type HTTPD struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	cfg  HTTPDConfig

	ready bool
	stats HTTPDStats

	// arena carves response payloads out of pooled slab blocks; each send
	// hands a bufpool.Ref to the stack instead of allocating a []byte.
	arena bufpool.Arena
}

type httpConn struct {
	srv    *HTTPD
	sock   *socketlib.Socket
	inbuf  []byte
	served int
	// sendRemaining counts body bytes of a large response still to be
	// generated and sent; bodies are synthetic, so they are produced
	// lazily chunk by chunk instead of being buffered.
	sendRemaining int
	closing       bool
}

// NewHTTPD creates a web server process on thread th, issuing socket calls
// through syscallProc. Call Start to listen.
func NewHTTPD(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg HTTPDConfig) *HTTPD {
	if cfg.Backlog == 0 {
		cfg.Backlog = 1024
	}
	if cfg.MaxRequestsPerConn == 0 {
		cfg.MaxRequestsPerConn = 1000
	}
	if cfg.CyclesPerRequest == 0 {
		cfg.CyclesPerRequest = 30000
	}
	if cfg.CyclesPerKB == 0 {
		cfg.CyclesPerKB = 600
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 64 << 10
	}
	h := &HTTPD{cfg: cfg}
	h.proc = sim.NewProc(th, name, h, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	h.lib = socketlib.New(h.proc, syscallProc, ipcCosts)
	return h
}

// Proc returns the server process.
func (h *HTTPD) Proc() *sim.Proc { return h.proc }

// Ready reports whether the listen completed.
func (h *HTTPD) Ready() bool { return h.ready }

// Stats returns a snapshot of the server counters.
func (h *HTTPD) Stats() HTTPDStats { return h.stats }

// Start begins listening (deliver any message to kick the process).
func (h *HTTPD) Start() { h.proc.Deliver(startMsg{}) }

type startMsg struct{}

// HandleMessage implements sim.Handler.
func (h *HTTPD) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if h.lib.HandleEvent(ctx, msg) {
		return
	}
	if _, ok := msg.(startMsg); ok {
		ln := h.lib.Listen(ctx, h.cfg.Port, h.cfg.Backlog)
		ln.OnReady = func(ctx *sim.Context, err error) { h.ready = err == nil }
		ln.OnAccept = h.accept
	}
}

func (h *HTTPD) accept(ctx *sim.Context, s *socketlib.Socket) {
	h.stats.Accepted++
	c := &httpConn{srv: h, sock: s}
	s.Ctx = c
	s.OnData = c.onData
	s.OnSendSpace = c.onSendSpace
	s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
		if reset {
			h.stats.Resets++
		}
		h.stats.Closed++
	}
}

// onData buffers and parses pipelined HTTP/1.1 requests.
func (c *httpConn) onData(ctx *sim.Context, data []byte, eof bool) {
	c.inbuf = append(c.inbuf, data...)
	for !c.closing {
		end := bytes.Index(c.inbuf, []byte("\r\n\r\n"))
		if end < 0 {
			break
		}
		req := c.inbuf[:end]
		c.inbuf = c.inbuf[end+4:]
		c.handleRequest(ctx, req)
	}
	if eof && !c.closing {
		c.closing = true
		c.sock.Close(ctx)
	}
}

// handleRequest serves one parsed request head.
func (c *httpConn) handleRequest(ctx *sim.Context, req []byte) {
	h := c.srv
	h.stats.Requests++
	ctx.Charge(h.cfg.CyclesPerRequest)

	line := req
	if i := bytes.IndexByte(line, '\r'); i >= 0 {
		line = line[:i]
	}
	parts := bytes.SplitN(line, []byte(" "), 3)
	if len(parts) < 3 || string(parts[0]) != "GET" {
		h.stats.BadReqs++
		c.respond(ctx, 400, []byte("bad request"), true)
		return
	}
	path := string(parts[1])
	wantClose := bytes.Contains(req, []byte("Connection: close"))

	size, ok := h.cfg.Files[path]
	if !ok {
		h.stats.NotFound++
		c.respond(ctx, 404, []byte("not found"), wantClose)
		return
	}
	c.served++
	if c.served >= h.cfg.MaxRequestsPerConn {
		wantClose = true
	}
	c.respondFile(ctx, size, wantClose)
}

// respond sends a small literal response.
func (c *httpConn) respond(ctx *sim.Context, code int, body []byte, closeAfter bool) {
	h := c.srv
	head := fmt.Sprintf("HTTP/1.1 %d X\r\nContent-Length: %d\r\n%s\r\n",
		code, len(body), connHeader(closeAfter))
	h.stats.Responses++
	h.stats.BytesOut += uint64(len(head) + len(body))
	ref := h.arena.Alloc(len(head) + len(body))
	copy(ref.B, head)
	copy(ref.B[len(head):], body)
	c.sock.SendRef(ctx, ref)
	if closeAfter {
		c.closing = true
		c.sock.Close(ctx)
	}
}

// respondFile streams a synthetic file of the given size, chunking large
// bodies lazily on send-space notifications.
func (c *httpConn) respondFile(ctx *sim.Context, size int, closeAfter bool) {
	h := c.srv
	head := "HTTP/1.1 200 OK\r\nContent-Length: " + strconv.Itoa(size) +
		"\r\n" + connHeader(closeAfter) + "\r\n"
	ctx.Charge(h.cfg.CyclesPerKB * int64(size/1024+1))
	h.stats.Responses++
	h.stats.BytesOut += uint64(len(head) + size)

	if closeAfter {
		c.closing = true
	}
	if len(head)+size <= h.cfg.ChunkSize {
		ref := h.arena.Alloc(len(head) + size)
		copy(ref.B, head)
		FillSynthetic(ref.B[len(head):])
		c.sock.SendRef(ctx, ref)
		if closeAfter {
			c.sock.Close(ctx)
		}
		return
	}
	c.sock.SendRef(ctx, h.arena.AllocString(head))
	c.sendRemaining = size
	c.pump(ctx)
}

// pump generates and pushes body chunks within the socket's credit.
func (c *httpConn) pump(ctx *sim.Context) {
	for c.sendRemaining > 0 {
		n := c.srv.cfg.ChunkSize
		if n > c.sendRemaining {
			n = c.sendRemaining
		}
		ref := c.srv.arena.Alloc(n)
		FillSynthetic(ref.B)
		c.sock.SendRef(ctx, ref)
		c.sendRemaining -= n
		if c.sock.Credit() < socketlib.SendLowWater {
			// The Send above requested a space notification; resume in
			// OnSendSpace.
			return
		}
	}
	if c.closing && c.sendRemaining == 0 {
		c.sock.Close(ctx)
	}
}

func (c *httpConn) onSendSpace(ctx *sim.Context, avail int) {
	if c.sendRemaining > 0 {
		c.pump(ctx)
	}
}

func connHeader(closeAfter bool) string {
	if closeAfter {
		return "Connection: close\r\n"
	}
	return "Connection: keep-alive\r\n"
}

// syntheticChunk is shared source material for generated file bodies.
var syntheticChunk = func() []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = 'a' + byte(i%26)
	}
	return b
}()

// FillSynthetic fills b with the deterministic body pattern in place —
// the allocation-free form of SyntheticBody for slab-carved payloads.
func FillSynthetic(b []byte) {
	for off := 0; off < len(b); off += len(syntheticChunk) {
		copy(b[off:], syntheticChunk)
	}
}

// SyntheticBody returns a deterministic body of exactly size bytes.
func SyntheticBody(size int) []byte {
	out := make([]byte, size)
	FillSynthetic(out)
	return out
}
