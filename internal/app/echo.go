package app

import (
	"bytes"

	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// EchoConfig configures an echo responder: every byte received on a
// connection is sent straight back on the same connection. Together with
// the Talker below it forms a conversation workload — many request/reply
// rounds on one long-lived connection — whose traffic shape differs from
// the HTTP pairs in this package: tiny symmetric messages, no framing
// headers, and connection lifetimes measured in rounds rather than
// requests.
type EchoConfig struct {
	Port    uint16
	Backlog int
	// CyclesPerKB is the application cost of echoing 1 KiB (default 2000).
	CyclesPerKB int64
}

// EchoStats counts echo-server activity.
type EchoStats struct {
	Accepted uint64
	BytesIn  uint64
	BytesOut uint64
	Resets   uint64
	Closed   uint64
}

// EchoServer is one echo responder process.
type EchoServer struct {
	proc  *sim.Proc
	lib   *socketlib.Lib
	cfg   EchoConfig
	ready bool
	stats EchoStats
	arena bufpool.Arena
}

type echoConn struct {
	srv  *EchoServer
	sock *socketlib.Socket
	// pending buffers echo bytes that found no send space; flushed from
	// OnSendSpace.
	pending []byte
	done    bool
}

type echoStartMsg struct{}

// NewEchoServer creates an echo responder on thread th. Call Start to
// listen.
func NewEchoServer(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg EchoConfig) *EchoServer {
	if cfg.Backlog == 0 {
		cfg.Backlog = 1024
	}
	if cfg.CyclesPerKB == 0 {
		cfg.CyclesPerKB = 2000
	}
	s := &EchoServer{cfg: cfg}
	s.proc = sim.NewProc(th, name, s, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	s.lib = socketlib.New(s.proc, syscallProc, ipcCosts)
	return s
}

// Proc returns the server process.
func (s *EchoServer) Proc() *sim.Proc { return s.proc }

// Ready reports whether the listen completed.
func (s *EchoServer) Ready() bool { return s.ready }

// Stats returns a snapshot of the counters.
func (s *EchoServer) Stats() EchoStats { return s.stats }

// Start begins listening.
func (s *EchoServer) Start() { s.proc.Deliver(echoStartMsg{}) }

// HandleMessage implements sim.Handler.
func (s *EchoServer) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if s.lib.HandleEvent(ctx, msg) {
		return
	}
	if _, ok := msg.(echoStartMsg); ok {
		ln := s.lib.Listen(ctx, s.cfg.Port, s.cfg.Backlog)
		ln.OnReady = func(ctx *sim.Context, err error) { s.ready = err == nil }
		ln.OnAccept = s.accept
	}
}

func (s *EchoServer) accept(ctx *sim.Context, sock *socketlib.Socket) {
	s.stats.Accepted++
	c := &echoConn{srv: s, sock: sock}
	sock.Ctx = c
	sock.OnData = c.onData
	sock.OnSendSpace = func(ctx *sim.Context, avail int) { c.flush(ctx) }
	sock.OnClosed = func(ctx *sim.Context, reset bool, err error) {
		if reset {
			s.stats.Resets++
		}
		s.stats.Closed++
		c.done = true
	}
}

func (c *echoConn) onData(ctx *sim.Context, data []byte, eof bool) {
	s := c.srv
	if !c.done && len(data) > 0 {
		s.stats.BytesIn += uint64(len(data))
		ctx.Charge(s.cfg.CyclesPerKB * int64(len(data)) / 1024)
		c.pending = append(c.pending, data...)
		c.flush(ctx)
	}
	if eof && !c.done {
		// Peer finished talking; echo whatever is left and close our half.
		c.done = len(c.pending) == 0
		if c.done {
			c.sock.Close(ctx)
		}
	}
}

// flush sends as much pending echo data as the socket's credit allows.
func (c *echoConn) flush(ctx *sim.Context) {
	s := c.srv
	for len(c.pending) > 0 {
		n := c.sock.Credit()
		if n == 0 {
			return
		}
		if n > len(c.pending) {
			n = len(c.pending)
		}
		ref := s.arena.Alloc(n)
		copy(ref.B, c.pending)
		c.sock.SendRef(ctx, ref)
		s.stats.BytesOut += uint64(n)
		c.pending = c.pending[n:]
	}
	c.pending = nil
}

// TalkerConfig configures a conversation client: each connection carries
// Rounds request/reply exchanges of MsgSize bytes before the client closes
// it and opens a replacement.
type TalkerConfig struct {
	Target proto.Addr
	Port   uint16
	// Conns is the number of concurrent conversations kept open.
	Conns int
	// Rounds per connection (the conversation length, default 16).
	Rounds int
	// MsgSize bytes per round in each direction (default 256).
	MsgSize int
	// ThinkTime pauses between receiving an echo and sending the next
	// round (0 = closed loop).
	ThinkTime sim.Time
	// Timeout aborts a round that got no full echo (default 2 s).
	Timeout sim.Time
	// CyclesPerRound is the client-side application cost.
	CyclesPerRound int64
}

// TalkerStats is the conversation-client report.
type TalkerStats struct {
	ConnsOpened     uint64
	SessionsDone    uint64 // conversations that completed every round
	RoundsCompleted uint64
	BytesIn         uint64
	Mismatches      uint64 // echoed payload differed from what was sent
	Errors          uint64 // timeouts + resets + failed connects
}

// Talker is one conversation-client process.
type Talker struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	cfg  TalkerConfig

	stats   TalkerStats
	latency metrics.Histogram // per-round echo latency
	running bool
	gen     uint64
	pattern []byte // the message every round sends (and expects back)
	arena   bufpool.Arena
}

type talkConn struct {
	tk    *Talker
	sock  *socketlib.Socket
	gen   uint64
	round int // completed rounds
	got   int // bytes of the current round's echo received
	bad   bool
	start sim.Time
	timer *sim.Timer
	done  bool
}

type talkTimeout struct {
	c     *talkConn
	round int
}

type talkThinkDone struct {
	c     *talkConn
	round int
}

type talkStart struct{}
type talkStop struct{}

// NewTalker creates a conversation client on thread th.
func NewTalker(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg TalkerConfig) *Talker {
	if cfg.Conns == 0 {
		cfg.Conns = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 16
	}
	if cfg.MsgSize == 0 {
		cfg.MsgSize = 256
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * sim.Second
	}
	if cfg.CyclesPerRound == 0 {
		cfg.CyclesPerRound = 1500
	}
	tk := &Talker{cfg: cfg, pattern: SyntheticBody(cfg.MsgSize)}
	tk.proc = sim.NewProc(th, name, tk, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	tk.lib = socketlib.New(tk.proc, syscallProc, ipcCosts)
	return tk
}

// Proc returns the client process.
func (tk *Talker) Proc() *sim.Proc { return tk.proc }

// Start opens the configured number of conversations.
func (tk *Talker) Start() { tk.proc.Deliver(talkStart{}) }

// Stop ceases opening replacement conversations.
func (tk *Talker) Stop() { tk.proc.Deliver(talkStop{}) }

// Stats returns a snapshot of the counters.
func (tk *Talker) Stats() TalkerStats { return tk.stats }

// Latency returns the per-round echo-latency histogram.
func (tk *Talker) Latency() *metrics.Histogram { return &tk.latency }

// HandleMessage implements sim.Handler.
func (tk *Talker) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if tk.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case talkStart:
		tk.running = true
		for i := 0; i < tk.cfg.Conns; i++ {
			tk.openConn(ctx)
		}
	case talkStop:
		tk.running = false
	case talkTimeout:
		if m.c.round == m.round && !m.c.done {
			tk.connError(ctx, m.c)
		}
	case talkThinkDone:
		if m.c.round == m.round && !m.c.done {
			tk.sendRound(ctx, m.c)
		}
	}
}

func (tk *Talker) openConn(ctx *sim.Context) {
	if !tk.running {
		return
	}
	tk.gen++
	tk.stats.ConnsOpened++
	c := &talkConn{tk: tk, gen: tk.gen}
	s := tk.lib.Connect(ctx, tk.cfg.Target, tk.cfg.Port)
	c.sock = s
	s.Ctx = c
	s.OnConnect = func(ctx *sim.Context, err error) {
		if err != nil {
			tk.connError(ctx, c)
			return
		}
		tk.sendRound(ctx, c)
	}
	s.OnData = func(ctx *sim.Context, data []byte, eof bool) { tk.onData(ctx, c, data, eof) }
	s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
		if !c.done {
			tk.connError(ctx, c)
		}
	}
}

// sendRound sends one message and waits for its echo.
func (tk *Talker) sendRound(ctx *sim.Context, c *talkConn) {
	ctx.Charge(tk.cfg.CyclesPerRound)
	c.got = 0
	c.bad = false
	c.start = ctx.Sim.Now()
	ref := tk.arena.Alloc(len(tk.pattern))
	copy(ref.B, tk.pattern)
	c.sock.SendRef(ctx, ref)
	c.timer = ctx.TimerAfter(tk.cfg.Timeout, talkTimeout{c: c, round: c.round})
}

// onData consumes echo bytes; a full message completes the round.
func (tk *Talker) onData(ctx *sim.Context, c *talkConn, data []byte, eof bool) {
	for len(data) > 0 && !c.done {
		n := len(tk.pattern) - c.got
		if n > len(data) {
			n = len(data)
		}
		if !bytes.Equal(data[:n], tk.pattern[c.got:c.got+n]) {
			c.bad = true
		}
		c.got += n
		tk.stats.BytesIn += uint64(n)
		data = data[n:]
		if c.got < len(tk.pattern) {
			break
		}
		tk.completeRound(ctx, c)
	}
	if eof && !c.done {
		tk.connError(ctx, c)
	}
}

// completeRound accounts one echoed message and advances the conversation.
func (tk *Talker) completeRound(ctx *sim.Context, c *talkConn) {
	ctx.Charge(tk.cfg.CyclesPerRound / 2)
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.bad {
		tk.stats.Mismatches++
	}
	tk.stats.RoundsCompleted++
	tk.latency.Observe(ctx.Sim.Now() - c.start)
	c.round++
	if c.round >= tk.cfg.Rounds {
		// Conversation over: the client owns the close.
		c.done = true
		tk.stats.SessionsDone++
		c.sock.Close(ctx)
		tk.openConn(ctx)
		return
	}
	if tk.cfg.ThinkTime > 0 {
		ctx.TimerAfter(tk.cfg.ThinkTime, talkThinkDone{c: c, round: c.round})
		return
	}
	tk.sendRound(ctx, c)
}

// connError aborts and replaces a failed conversation.
func (tk *Talker) connError(ctx *sim.Context, c *talkConn) {
	if c.done {
		return
	}
	c.done = true
	tk.stats.Errors++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.sock.State() == socketlib.SockOpen {
		c.sock.Abort(ctx)
	}
	tk.openConn(ctx)
}
