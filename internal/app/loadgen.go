package app

import (
	"bytes"
	"strconv"

	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// LoadgenConfig configures one httperf-like load generator process.
type LoadgenConfig struct {
	Target proto.Addr
	Port   uint16
	// URI requested repeatedly (must exist in the server's file map).
	URI string
	// Conns is the number of concurrent connections kept open (httperf's
	// session concurrency).
	Conns int
	// ReqPerConn requests are issued per connection before it is closed
	// and replaced (the paper uses 1000 for Table 1, 100 for §6.3/§6.4,
	// and 1 for Figure 12).
	ReqPerConn int
	// CloseFromClient makes the client half responsible for the active
	// close (server closes otherwise via Connection: close).
	CloseFromClient bool
	// ThinkTime inserts a pause between a response and the next request
	// on the connection (0 = closed-loop as fast as possible). Used to
	// drive the partial-load points of the paper's Table 2.
	ThinkTime sim.Time
	// Timeout aborts a request that got no full response (default 2 s);
	// like httperf, the connection's replies are then discarded from the
	// measured rate.
	Timeout sim.Time
	// Ports optionally fixes each new connection's local port (see
	// PortPlan). Fixing the 4-tuple fixes the flow hash, so a plan aims
	// the generator's flows at one chosen replica under hash placement —
	// the adversarial campaign uses this to attribute goodput per
	// replica. Nil keeps ephemeral ports.
	Ports PortPlan
	// CyclesPerRequest is the client-side application cost.
	CyclesPerRequest int64
}

// LoadgenStats is the httperf-style report.
type LoadgenStats struct {
	ConnsOpened    uint64
	ConnsCompleted uint64
	ConnErrors     uint64 // timeouts + resets + failed connects
	RequestsSent   uint64
	ResponsesOK    uint64
	BytesIn        uint64

	// Windowed measurement (between BeginMeasure and snapshot):
	WindowResponses uint64
	WindowDiscarded uint64 // responses on connections that later errored
	WindowBytes     uint64
}

// Loadgen is one load generator process.
type Loadgen struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	cfg  LoadgenConfig

	stats     LoadgenStats
	latency   metrics.Histogram
	measuring bool
	running   bool
	gen       uint64

	// arena carves request payloads out of pooled slab blocks (see HTTPD).
	arena bufpool.Arena
}

type lgConn struct {
	lg         *Loadgen
	sock       *socketlib.Socket
	gen        uint64
	sent       int
	inbuf      []byte
	expect     int  // bytes remaining of current response body, -1 = header
	bodySeen   int  // body bytes already consumed of the current response
	closeAfter bool // server announced Connection: close on this response
	reqStart   sim.Time
	timer      *sim.Timer
	// windowResponses counts replies during the measuring window for
	// httperf-style discarding on error.
	windowResponses uint64
	done            bool
}

type lgTimeout struct {
	c   *lgConn
	gen uint64
}

type lgThinkDone struct {
	c   *lgConn
	gen uint64
}

type lgStart struct{}
type lgStop struct{}

// NewLoadgen creates a load generator on thread th.
func NewLoadgen(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg LoadgenConfig) *Loadgen {
	if cfg.Conns == 0 {
		cfg.Conns = 8
	}
	if cfg.ReqPerConn == 0 {
		cfg.ReqPerConn = 100
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * sim.Second
	}
	if cfg.CyclesPerRequest == 0 {
		cfg.CyclesPerRequest = 2500
	}
	lg := &Loadgen{cfg: cfg}
	lg.proc = sim.NewProc(th, name, lg, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	lg.lib = socketlib.New(lg.proc, syscallProc, ipcCosts)
	return lg
}

// Proc returns the generator process.
func (lg *Loadgen) Proc() *sim.Proc { return lg.proc }

// Start opens the configured number of connections and begins issuing
// requests.
func (lg *Loadgen) Start() { lg.proc.Deliver(lgStart{}) }

// Stop ceases opening replacement connections (existing ones finish).
func (lg *Loadgen) Stop() { lg.proc.Deliver(lgStop{}) }

// BeginMeasure starts the measurement window (call after warmup).
func (lg *Loadgen) BeginMeasure() {
	lg.measuring = true
	lg.stats.WindowResponses = 0
	lg.stats.WindowDiscarded = 0
	lg.stats.WindowBytes = 0
	lg.latency.Reset()
}

// Stats returns a snapshot of the counters.
func (lg *Loadgen) Stats() LoadgenStats { return lg.stats }

// Latency returns the response-latency histogram of the current window.
func (lg *Loadgen) Latency() *metrics.Histogram { return &lg.latency }

// GoodResponses returns windowed responses minus httperf-style discards.
func (lg *Loadgen) GoodResponses() uint64 {
	if lg.stats.WindowDiscarded > lg.stats.WindowResponses {
		return 0
	}
	return lg.stats.WindowResponses - lg.stats.WindowDiscarded
}

// HandleMessage implements sim.Handler.
func (lg *Loadgen) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if lg.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case lgStart:
		lg.running = true
		for i := 0; i < lg.cfg.Conns; i++ {
			lg.openConn(ctx)
		}
	case lgStop:
		lg.running = false
	case lgTimeout:
		if m.c.gen == m.gen && !m.c.done {
			lg.connError(ctx, m.c, true)
		}
	case lgThinkDone:
		if m.c.gen == m.gen && !m.c.done {
			lg.sendRequest(ctx, m.c)
		}
	}
}

// openConn starts one new connection.
func (lg *Loadgen) openConn(ctx *sim.Context) {
	if !lg.running {
		return
	}
	lg.gen++
	lg.stats.ConnsOpened++
	c := &lgConn{lg: lg, gen: lg.gen, expect: -1}
	var lp uint16
	if lg.cfg.Ports != nil {
		lp = lg.cfg.Ports()
	}
	s := lg.lib.ConnectFrom(ctx, lg.cfg.Target, lg.cfg.Port, lp)
	c.sock = s
	s.Ctx = c
	s.OnConnect = func(ctx *sim.Context, err error) {
		if err != nil {
			lg.connError(ctx, c, false)
			return
		}
		lg.sendRequest(ctx, c)
	}
	s.OnData = func(ctx *sim.Context, data []byte, eof bool) { lg.onData(ctx, c, data, eof) }
	s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
		if !c.done {
			lg.connError(ctx, c, false)
		}
	}
}

// sendRequest issues the next GET on the connection.
func (lg *Loadgen) sendRequest(ctx *sim.Context, c *lgConn) {
	ctx.Charge(lg.cfg.CyclesPerRequest)
	c.sent++
	lg.stats.RequestsSent++
	closeHdr := ""
	if c.sent >= lg.cfg.ReqPerConn && !lg.cfg.CloseFromClient {
		closeHdr = "Connection: close\r\n"
	}
	req := "GET " + lg.cfg.URI + " HTTP/1.1\r\nHost: sut\r\n" + closeHdr + "\r\n"
	c.reqStart = ctx.Sim.Now()
	c.expect = -1
	c.sock.SendRef(ctx, lg.arena.AllocString(req))
	c.timer = ctx.TimerAfter(lg.cfg.Timeout, lgTimeout{c: c, gen: c.gen})
}

// onData consumes response bytes, completing requests as bodies fill.
func (lg *Loadgen) onData(ctx *sim.Context, c *lgConn, data []byte, eof bool) {
	c.inbuf = append(c.inbuf, data...)
	for {
		if c.expect == -1 {
			// Parse response head.
			end := bytes.Index(c.inbuf, []byte("\r\n\r\n"))
			if end < 0 {
				break
			}
			head := c.inbuf[:end]
			c.inbuf = c.inbuf[end+4:]
			c.expect = parseContentLength(head)
			c.closeAfter = bytes.Contains(head, []byte("Connection: close"))
		}
		if c.expect > len(c.inbuf) {
			// Consume (and discard) partial body bytes so huge responses
			// never accumulate in the buffer.
			c.bodySeen += len(c.inbuf)
			c.expect -= len(c.inbuf)
			c.inbuf = nil
			break
		}
		// Rest of the response body is here.
		c.bodySeen += c.expect
		c.inbuf = c.inbuf[c.expect:]
		body := c.bodySeen
		c.bodySeen = 0
		c.expect = -1
		lg.completeResponse(ctx, c, body)
		if c.done {
			return
		}
		if c.closeAfter {
			// The server ends the connection here (its keep-alive limit or
			// our Connection: close); close our half so the PCB and the
			// ephemeral port are released, then open a replacement.
			c.done = true
			lg.stats.ConnsCompleted++
			c.sock.Close(ctx)
			lg.openConn(ctx)
			return
		}
		if c.sent < lg.cfg.ReqPerConn {
			if lg.cfg.ThinkTime > 0 {
				ctx.TimerAfter(lg.cfg.ThinkTime, lgThinkDone{c: c, gen: c.gen})
				break
			}
			lg.sendRequest(ctx, c)
			// Responses cannot be pipelined beyond what we requested.
			if len(c.inbuf) == 0 {
				break
			}
			continue
		}
		// Connection complete.
		c.done = true
		lg.stats.ConnsCompleted++
		c.sock.Close(ctx)
		lg.openConn(ctx)
		return
	}
	if eof && !c.done {
		// Server closed early (e.g. its keep-alive limit) — only an error
		// if a request was outstanding.
		if c.expect != -1 || c.sent < lg.cfg.ReqPerConn {
			lg.connError(ctx, c, false)
		} else {
			c.sock.Close(ctx)
		}
	}
}

// completeResponse accounts one successful reply.
func (lg *Loadgen) completeResponse(ctx *sim.Context, c *lgConn, bodyBytes int) {
	ctx.Charge(lg.cfg.CyclesPerRequest / 2)
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	lg.stats.ResponsesOK++
	lg.stats.BytesIn += uint64(bodyBytes)
	if lg.measuring {
		lg.stats.WindowResponses++
		lg.stats.WindowBytes += uint64(bodyBytes)
		c.windowResponses++
		lg.latency.Observe(ctx.Sim.Now() - c.reqStart)
	}
}

// connError aborts and replaces a failed connection, discarding its
// windowed replies like httperf does.
func (lg *Loadgen) connError(ctx *sim.Context, c *lgConn, timeout bool) {
	if c.done {
		return
	}
	c.done = true
	lg.stats.ConnErrors++
	if lg.measuring {
		lg.stats.WindowDiscarded += c.windowResponses
	}
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.sock.State() == socketlib.SockOpen {
		c.sock.Abort(ctx)
	}
	lg.openConn(ctx)
}

// parseContentLength extracts the Content-Length header value (or 0).
// Field names are case-insensitive and the value tolerates optional
// whitespace after the colon (RFC 9110 §5.1, §5.6.3), so responses from
// stacks that emit "content-length:5" parse the same as the canonical
// form.
func parseContentLength(head []byte) int {
	for len(head) > 0 {
		line := head
		if i := bytes.Index(head, []byte("\r\n")); i >= 0 {
			line, head = head[:i], head[i+2:]
		} else {
			head = nil
		}
		i := bytes.IndexByte(line, ':')
		if i < 0 || !bytes.EqualFold(line[:i], []byte("Content-Length")) {
			continue
		}
		v := bytes.TrimRight(bytes.TrimLeft(line[i+1:], " \t"), " \t")
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}
