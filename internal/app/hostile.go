package app

import (
	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/nicdev"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// This file is the adversarial workload engine: hostile client behaviours
// that attack a server instead of loading it. Three archetypes are
// modelled, each a classic of the genre:
//
//   - Slowloris: complete the handshake, then trickle request-header bytes
//     one at a time forever, holding a connection slot without ever issuing
//     a servable request. Defeated by the header-progress deadline
//     (tcpeng.GuardConfig.HeaderDeadline/HeaderMinBytes).
//   - SYNFlood: blast handshake-opening SYNs from spoofed in-subnet source
//     addresses and never complete them, exhausting the listener's
//     half-open (embryonic) backlog. Defeated by the bounded SYN backlog
//     with deterministic oldest-first shedding (GuardConfig.SynBacklog).
//   - ConnChurn: open fully legitimate connections as fast as possible and
//     abandon them immediately, burning connection-setup work, filter
//     programming and accept-queue slots. Bounded by the per-source
//     open-connection cap (GuardConfig.MaxConnsPerSource).
//
// All three support aiming: with a PortPlan the attacker fixes each
// connection's local port, and therefore its 4-tuple, and therefore the
// flow hash the victim's RSS computes — steering the whole attack onto one
// chosen replica (under hash placement; least-loaded placement resists
// aiming because placement does not depend on the tuple).

// PortPlan yields the local port for each successive attack connection
// (0 = let the stack pick an ephemeral port). Plans must be deterministic:
// campaigns derive them from the flow hash, not from randomness.
type PortPlan func() uint16

// ---- Slowloris ----

// SlowlorisConfig configures one slow-header attacker process.
type SlowlorisConfig struct {
	Target proto.Addr
	Port   uint16
	// Conns is the number of connections held open concurrently.
	Conns int
	// Interval paces the single-byte header sends (default 2 ms — slow
	// enough to starve, fast enough to look alive to naive idle timers).
	Interval sim.Time
	// Ports optionally aims the attack (see PortPlan).
	Ports PortPlan
	// CyclesPerSend is the client-side cost of each trickled byte.
	CyclesPerSend int64
}

// SlowlorisStats counts attacker-side activity.
type SlowlorisStats struct {
	ConnsOpened   uint64
	BytesTrickled uint64
	// Reaped counts connections the server reset — with guards enabled,
	// the slow-read timeout firing.
	Reaped     uint64
	ConnErrors uint64
}

// Slowloris is one slow-header attacker process.
type Slowloris struct {
	proc    *sim.Proc
	lib     *socketlib.Lib
	cfg     SlowlorisConfig
	stats   SlowlorisStats
	running bool
	gen     uint64
	arena   bufpool.Arena
}

type slConn struct {
	sock *socketlib.Socket
	gen  uint64
	sent int
	done bool
}

type slTick struct {
	c   *slConn
	gen uint64
}

type slStart struct{}
type slStop struct{}

// slPreamble opens a plausible request; slPad is trickled forever after it
// — header lines that never end in the blank line a parser waits for.
const (
	slPreamble = "GET /index.html HTTP/1.1\r\nHost: sut\r\n"
	slPad      = "X-Pad: aaaaaaaaaaaaaaaa\r\n"
)

// NewSlowloris creates a slow-header attacker on thread th.
func NewSlowloris(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg SlowlorisConfig) *Slowloris {
	if cfg.Conns == 0 {
		cfg.Conns = 8
	}
	if cfg.Interval == 0 {
		cfg.Interval = 2 * sim.Millisecond
	}
	if cfg.CyclesPerSend == 0 {
		cfg.CyclesPerSend = 500
	}
	a := &Slowloris{cfg: cfg}
	a.proc = sim.NewProc(th, name, a, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	a.lib = socketlib.New(a.proc, syscallProc, ipcCosts)
	return a
}

// Proc returns the attacker process.
func (a *Slowloris) Proc() *sim.Proc { return a.proc }

// Stats returns a snapshot of the counters.
func (a *Slowloris) Stats() SlowlorisStats { return a.stats }

// Start opens the configured number of held connections.
func (a *Slowloris) Start() { a.proc.Deliver(slStart{}) }

// Stop ceases replacing reaped connections (existing ones keep trickling).
func (a *Slowloris) Stop() { a.proc.Deliver(slStop{}) }

// HandleMessage implements sim.Handler.
func (a *Slowloris) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case slStart:
		a.running = true
		for i := 0; i < a.cfg.Conns; i++ {
			a.openConn(ctx)
		}
	case slStop:
		a.running = false
	case slTick:
		if m.c.gen == m.gen && !m.c.done {
			a.trickle(ctx, m.c)
		}
	}
}

func (a *Slowloris) openConn(ctx *sim.Context) {
	if !a.running {
		return
	}
	a.gen++
	a.stats.ConnsOpened++
	c := &slConn{gen: a.gen}
	var lp uint16
	if a.cfg.Ports != nil {
		lp = a.cfg.Ports()
	}
	s := a.lib.ConnectFrom(ctx, a.cfg.Target, a.cfg.Port, lp)
	c.sock = s
	s.Ctx = c
	s.OnConnect = func(ctx *sim.Context, err error) {
		if err != nil {
			a.connGone(ctx, c, false)
			return
		}
		a.trickle(ctx, c)
	}
	// Responses are not expected; drain anything the server says.
	s.OnData = func(ctx *sim.Context, data []byte, eof bool) {}
	s.OnClosed = func(ctx *sim.Context, reset bool, err error) { a.connGone(ctx, c, reset) }
}

// trickle sends the next single header byte and re-arms the pacing timer.
func (a *Slowloris) trickle(ctx *sim.Context, c *slConn) {
	ctx.Charge(a.cfg.CyclesPerSend)
	var b byte
	if c.sent < len(slPreamble) {
		b = slPreamble[c.sent]
	} else {
		b = slPad[(c.sent-len(slPreamble))%len(slPad)]
	}
	c.sent++
	a.stats.BytesTrickled++
	ref := a.arena.Alloc(1)
	ref.B[0] = b
	c.sock.SendRef(ctx, ref)
	ctx.TimerAfter(a.cfg.Interval, slTick{c: c, gen: c.gen})
}

func (a *Slowloris) connGone(ctx *sim.Context, c *slConn, reset bool) {
	if c.done {
		return
	}
	c.done = true
	if reset {
		a.stats.Reaped++
	} else {
		a.stats.ConnErrors++
	}
	a.openConn(ctx)
}

// ---- SYN flood ----

// SYNFloodConfig configures one SYN flooder process. The flood bypasses
// the client's own TCP stack entirely: raw Ethernet/IP/TCP SYN frames with
// spoofed in-subnet source addresses are injected straight at the NIC
// driver, so the victim's SYN-ACKs go to addresses that never answer ARP
// and the half-open connections linger until retransmission gives up (or a
// SynBacklog guard sheds them).
type SYNFloodConfig struct {
	Target    proto.Addr
	TargetMAC proto.MAC
	// SrcMAC is the attacking host's NIC address (frames must carry a valid
	// L2 source to cross the link).
	SrcMAC proto.MAC
	Port   uint16
	// Interval paces bursts (default 50 µs).
	Interval sim.Time
	// Burst is the number of SYNs per interval (default 4).
	Burst int
	// Spoof maps the i-th SYN to its spoofed source address and port. The
	// default cycles 50 unassigned addresses of the target's /24 and walks
	// the port space deterministically.
	Spoof func(i uint64) (proto.Addr, uint16)
	// CyclesPerSyn is the client-side cost of building one frame.
	CyclesPerSyn int64
}

// SYNFloodStats counts flood activity.
type SYNFloodStats struct{ SynsSent uint64 }

// SYNFlood is one SYN flooder process.
type SYNFlood struct {
	proc    *sim.Proc
	drv     *ipc.Conn
	cfg     SYNFloodConfig
	stats   SYNFloodStats
	running bool
	gen     uint64
	sent    uint64
}

type flTick struct{ gen uint64 }
type flStart struct{}
type flStop struct{}

// NewSYNFlood creates a SYN flooder on thread th, injecting frames at the
// host's NIC driver process.
func NewSYNFlood(th *sim.HWThread, name string, driverProc *sim.Proc, ipcCosts ipc.Costs, cfg SYNFloodConfig) *SYNFlood {
	if cfg.Interval == 0 {
		cfg.Interval = 50 * sim.Microsecond
	}
	if cfg.Burst == 0 {
		cfg.Burst = 4
	}
	if cfg.CyclesPerSyn == 0 {
		cfg.CyclesPerSyn = 600
	}
	if cfg.Spoof == nil {
		base := cfg.Target
		cfg.Spoof = func(i uint64) (proto.Addr, uint16) {
			src := base
			src[3] = byte(200 + i%50)
			return src, uint16(1024 + (i*7919)%60000)
		}
	}
	f := &SYNFlood{cfg: cfg}
	f.proc = sim.NewProc(th, name, f, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	f.drv = ipc.New(driverProc, ipcCosts)
	return f
}

// Proc returns the flooder process.
func (f *SYNFlood) Proc() *sim.Proc { return f.proc }

// Stats returns a snapshot of the counters.
func (f *SYNFlood) Stats() SYNFloodStats { return f.stats }

// Start begins flooding.
func (f *SYNFlood) Start() { f.proc.Deliver(flStart{}) }

// Stop halts the flood.
func (f *SYNFlood) Stop() { f.proc.Deliver(flStop{}) }

// HandleMessage implements sim.Handler.
func (f *SYNFlood) HandleMessage(ctx *sim.Context, msg sim.Message) {
	switch m := msg.(type) {
	case flStart:
		if f.running {
			return
		}
		f.running = true
		f.gen++
		f.burst(ctx)
	case flStop:
		f.running = false
	case flTick:
		if f.running && m.gen == f.gen {
			f.burst(ctx)
		}
	}
}

// burst injects one burst of spoofed SYNs and re-arms the pacing timer.
func (f *SYNFlood) burst(ctx *sim.Context) {
	for i := 0; i < f.cfg.Burst; i++ {
		ctx.Charge(f.cfg.CyclesPerSyn)
		src, sport := f.cfg.Spoof(f.sent)
		tcp := proto.TCPHeader{
			SrcPort: sport, DstPort: f.cfg.Port,
			Seq: uint32(f.sent) * 2654435761, Flags: proto.TCPSyn, Window: 65535,
		}
		raw := proto.AppendTCP(bufpool.Get(proto.WireSizeTCP(&tcp, 0))[:0],
			proto.EthernetHeader{Dst: f.cfg.TargetMAC, Src: f.cfg.SrcMAC, Type: proto.EtherTypeIPv4},
			proto.IPv4Header{TTL: 64, Protocol: proto.ProtoTCP, Src: src, Dst: f.cfg.Target},
			tcp, nil)
		f.drv.Send(ctx, nicdev.NewTxFrame(raw))
		f.sent++
		f.stats.SynsSent++
	}
	ctx.TimerAfter(f.cfg.Interval, flTick{gen: f.gen})
}

// ---- Connection churn ----

// ConnChurnConfig configures one connection-churn attacker: fully
// legitimate handshakes opened as fast as possible and abandoned at once,
// burning setup work, filter programming and accept-queue slots.
type ConnChurnConfig struct {
	Target proto.Addr
	Port   uint16
	// Conns is the number of connection attempts kept in flight.
	Conns int
	// Hold keeps each established connection open before abandoning it
	// (default 0: abort the instant the handshake completes).
	Hold sim.Time
	// Ports optionally aims the attack (see PortPlan).
	Ports PortPlan
	// CyclesPerConn is the client-side cost of each open/abandon cycle.
	CyclesPerConn int64
}

// ConnChurnStats counts churn activity.
type ConnChurnStats struct {
	Opened  uint64
	Aborted uint64
	Errors  uint64
}

// ConnChurn is one connection-churn attacker process.
type ConnChurn struct {
	proc    *sim.Proc
	lib     *socketlib.Lib
	cfg     ConnChurnConfig
	stats   ConnChurnStats
	running bool
	gen     uint64
}

type ccConn struct {
	sock *socketlib.Socket
	gen  uint64
	done bool
}

type ccHold struct {
	c   *ccConn
	gen uint64
}

type ccStart struct{}
type ccStop struct{}

// NewConnChurn creates a churn attacker on thread th.
func NewConnChurn(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg ConnChurnConfig) *ConnChurn {
	if cfg.Conns == 0 {
		cfg.Conns = 8
	}
	if cfg.CyclesPerConn == 0 {
		cfg.CyclesPerConn = 1000
	}
	a := &ConnChurn{cfg: cfg}
	a.proc = sim.NewProc(th, name, a, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	a.lib = socketlib.New(a.proc, syscallProc, ipcCosts)
	return a
}

// Proc returns the attacker process.
func (a *ConnChurn) Proc() *sim.Proc { return a.proc }

// Stats returns a snapshot of the counters.
func (a *ConnChurn) Stats() ConnChurnStats { return a.stats }

// Start begins churning.
func (a *ConnChurn) Start() { a.proc.Deliver(ccStart{}) }

// Stop ceases opening replacement connections.
func (a *ConnChurn) Stop() { a.proc.Deliver(ccStop{}) }

// HandleMessage implements sim.Handler.
func (a *ConnChurn) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case ccStart:
		a.running = true
		for i := 0; i < a.cfg.Conns; i++ {
			a.openConn(ctx)
		}
	case ccStop:
		a.running = false
	case ccHold:
		if m.c.gen == m.gen && !m.c.done {
			a.abandon(ctx, m.c)
		}
	}
}

func (a *ConnChurn) openConn(ctx *sim.Context) {
	if !a.running {
		return
	}
	a.gen++
	a.stats.Opened++
	c := &ccConn{gen: a.gen}
	var lp uint16
	if a.cfg.Ports != nil {
		lp = a.cfg.Ports()
	}
	s := a.lib.ConnectFrom(ctx, a.cfg.Target, a.cfg.Port, lp)
	c.sock = s
	s.Ctx = c
	s.OnConnect = func(ctx *sim.Context, err error) {
		ctx.Charge(a.cfg.CyclesPerConn)
		if err != nil {
			a.connGone(ctx, c, true)
			return
		}
		if a.cfg.Hold > 0 {
			ctx.TimerAfter(a.cfg.Hold, ccHold{c: c, gen: c.gen})
			return
		}
		a.abandon(ctx, c)
	}
	s.OnData = func(ctx *sim.Context, data []byte, eof bool) {}
	s.OnClosed = func(ctx *sim.Context, reset bool, err error) { a.connGone(ctx, c, false) }
}

// abandon resets the established connection and opens a replacement.
func (a *ConnChurn) abandon(ctx *sim.Context, c *ccConn) {
	if c.done {
		return
	}
	c.done = true
	a.stats.Aborted++
	c.sock.Abort(ctx)
	a.openConn(ctx)
}

func (a *ConnChurn) connGone(ctx *sim.Context, c *ccConn, isError bool) {
	if c.done {
		return
	}
	c.done = true
	if isError {
		a.stats.Errors++
	}
	a.openConn(ctx)
}
