package app

import (
	"testing"

	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// streamBed reuses the web testbed with the HTTPD replaced by a Streamer
// (newWebBed with zero httpds leaves port 80 free).
func streamBed(t *testing.T, tcp tcpeng.Config, scfg StreamerConfig, lcfg LoadgenConfig) (*webBed, *Streamer) {
	t.Helper()
	b := newWebBed(t, 1, 0, 1, tcp, HTTPDConfig{}, lcfg)
	if scfg.Port == 0 {
		scfg.Port = 80
	}
	s := NewStreamer(b.server.AppThread(3), "streamer", b.sys.SyscallProc(),
		ipc.DefaultCosts(), scfg)
	s.Start()
	b.net.Sim.RunFor(sim.Millisecond)
	if !s.Ready() {
		t.Fatal("streamer not ready")
	}
	return b, s
}

func TestStreamerPacedDelivery(t *testing.T) {
	scfg := StreamerConfig{ChunkSize: 2048, ChunkEvery: 250 * sim.Microsecond,
		ChunksPerResponse: 16}
	b, s := streamBed(t, tcpeng.DefaultConfig(), scfg, LoadgenConfig{Conns: 2})
	b.start()
	b.run(200 * sim.Millisecond)

	resp := b.responses()
	if resp < 20 {
		t.Fatalf("streamed responses=%d errors=%d", resp, b.errors())
	}
	if b.errors() != 0 {
		t.Fatalf("errors=%d", b.errors())
	}
	var bytesIn uint64
	for _, g := range b.gens {
		bytesIn += g.Stats().BytesIn
	}
	if want := resp * uint64(scfg.ChunkSize*scfg.ChunksPerResponse); bytesIn != want {
		t.Fatalf("bytes=%d want %d (corrupt streams?)", bytesIn, want)
	}
	st := s.Stats()
	if st.Completed < resp {
		t.Fatalf("streamer completed %d < client responses %d", st.Completed, resp)
	}
	// Pacing means a stream takes at least ChunksPerResponse-1 intervals.
	if lat := b.gens[0].Latency(); lat.Count() != 0 {
		t.Fatalf("no measurement window was opened but latency has %d samples", lat.Count())
	}
}

// TestStreamerSurvivesGuards is the false-positive check for the slow-read
// guards: a paced streaming response is long-lived and receives nothing
// from the client but ACKs, which must count as activity — the guard reaps
// none of them.
func TestStreamerSurvivesGuards(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.Guard.HeaderDeadline = 2 * sim.Millisecond
	tcp.Guard.HeaderMinBytes = 24
	tcp.Guard.IdleDeadline = 5 * sim.Millisecond
	scfg := StreamerConfig{ChunkSize: 2048, ChunkEvery: 250 * sim.Microsecond,
		ChunksPerResponse: 64} // 16 ms per stream, well past the idle deadline
	b, _ := streamBed(t, tcp, scfg, LoadgenConfig{Conns: 2})
	b.start()
	b.run(200 * sim.Millisecond)

	if b.errors() != 0 {
		t.Fatalf("guards harmed streaming clients: %d errors", b.errors())
	}
	if b.responses() < 10 {
		t.Fatalf("responses=%d", b.responses())
	}
	var reaped uint64
	for _, r := range b.sys.Replicas() {
		reaped += r.TCP().Stats().SlowlorisReaped
	}
	if reaped != 0 {
		t.Fatalf("guard reaped %d legitimate streaming connections", reaped)
	}
}

func TestDNSRequestResponse(t *testing.T) {
	n := testbed.New(11)
	server := testbed.DefaultAMDHost(n, 0, 1)
	client := testbed.DefaultClientHost(n, 1, 1)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: tcpeng.DefaultConfig(),
		Slots:   testbed.SingleSlots(2, 1),
		Syscall: testbed.ThreadLoc{Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, 1, tcpeng.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = sys

	srv := NewDNSServer(server.AppThread(3), "resolver", sys.SyscallProc(),
		ipc.DefaultCosts(), DNSServerConfig{})
	srv.Start()
	n.Sim.RunFor(sim.Millisecond)
	if !srv.Ready() {
		t.Fatal("resolver bind failed")
	}

	cli := NewDNSClient(client.AppThread(3), "lookups", clisys.SyscallProc(),
		ipc.DefaultCosts(), DNSClientConfig{Target: server.IP})
	cli.Start()
	n.Sim.RunFor(100 * sim.Millisecond)

	cst := cli.Stats()
	if cst.QueriesSent < 500 {
		t.Fatalf("queries sent = %d", cst.QueriesSent)
	}
	if cst.Timeouts != 0 || cst.Mismatched != 0 {
		t.Fatalf("lookup failures: %+v", cst)
	}
	// Everything but the last few in-flight lookups resolved.
	if cst.ResponsesOK+8 < cst.QueriesSent {
		t.Fatalf("responses=%d for %d queries", cst.ResponsesOK, cst.QueriesSent)
	}
	sst := srv.Stats()
	if sst.Queries != sst.Answers || sst.BadQuery != 0 {
		t.Fatalf("server view: %+v", sst)
	}
	if cli.Latency().Count() == 0 || cli.Latency().Mean() <= 0 {
		t.Fatal("no lookup latency recorded")
	}

	// Stop cleanly: no further queries issue.
	cli.Stop()
	n.Sim.RunFor(10 * sim.Millisecond)
	sent := cli.Stats().QueriesSent
	n.Sim.RunFor(50 * sim.Millisecond)
	if cli.Stats().QueriesSent != sent {
		t.Fatal("Stop did not halt query issue")
	}
}
