package app

import (
	"testing"

	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// webBed is a full web-serving testbed: AMD server running NEaT +
// N httpd instances, client host running M loadgen instances.
type webBed struct {
	net     *testbed.Net
	server  *testbed.Host
	client  *testbed.Host
	sys     *core.System
	clisys  *core.System
	servers []*HTTPD
	gens    []*Loadgen
}

func newWebBed(t *testing.T, replicas, httpds, loadgens int, tcp tcpeng.Config,
	hcfg HTTPDConfig, lcfg LoadgenConfig) *webBed {
	t.Helper()
	n := testbed.New(11)
	server := testbed.DefaultAMDHost(n, 0, replicas)
	client := testbed.DefaultClientHost(n, 1, loadgens)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: tcp,
		Slots:   testbed.SingleSlots(2, replicas),
		Syscall: testbed.ThreadLoc{Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := client.BuildClientSystem(server, loadgens, tcp)
	if err != nil {
		t.Fatal(err)
	}
	b := &webBed{net: n, server: server, client: client, sys: sys, clisys: clisys}

	if hcfg.Files == nil {
		hcfg.Files = map[string]int{"/f20": 20}
	}
	if hcfg.Port == 0 {
		hcfg.Port = 80
	}
	for i := 0; i < httpds; i++ {
		h := NewHTTPD(server.AppThread(2+replicas+i), "lighttpd", sys.SyscallProc(),
			ipc.DefaultCosts(), hcfg)
		h.Start()
		b.servers = append(b.servers, h)
	}
	n.Sim.RunFor(sim.Millisecond)
	for i, h := range b.servers {
		if !h.Ready() {
			t.Fatalf("httpd %d not ready", i)
		}
	}

	if lcfg.Target == (testbed.Netmask) { // placeholder never true
		t.Fatal("unreachable")
	}
	lcfg.Target = server.IP
	if lcfg.Port == 0 {
		lcfg.Port = 80
	}
	if lcfg.URI == "" {
		lcfg.URI = "/f20"
	}
	appBase := 2 + loadgens
	for i := 0; i < loadgens; i++ {
		lg := NewLoadgen(client.AppThread(appBase+i), "httperf", clisys.SyscallProc(),
			ipc.DefaultCosts(), lcfg)
		b.gens = append(b.gens, lg)
	}
	return b
}

func (b *webBed) start() {
	for _, g := range b.gens {
		g.Start()
	}
}
func (b *webBed) run(d sim.Time) { b.net.Sim.RunFor(d) }
func (b *webBed) responses() uint64 {
	var n uint64
	for _, g := range b.gens {
		n += g.Stats().ResponsesOK
	}
	return n
}
func (b *webBed) errors() uint64 {
	var n uint64
	for _, g := range b.gens {
		n += g.Stats().ConnErrors
	}
	return n
}

func TestHTTPKeepAliveEndToEnd(t *testing.T) {
	b := newWebBed(t, 2, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 4, ReqPerConn: 10})
	b.start()
	b.run(200 * sim.Millisecond)
	resp := b.responses()
	if resp < 100 {
		t.Fatalf("responses=%d (errors=%d)", resp, b.errors())
	}
	if b.errors() != 0 {
		t.Fatalf("errors=%d", b.errors())
	}
	if got := b.servers[0].Stats().Requests; got < resp || got > resp+64 {
		// A few requests may be in flight when the window ends.
		t.Fatalf("server saw %d requests, client got %d responses", got, resp)
	}
	// Persistent connections actually persisted: far fewer conns than
	// requests.
	var opened uint64
	for _, g := range b.gens {
		opened += g.Stats().ConnsOpened
	}
	if opened*5 > resp {
		t.Fatalf("keep-alive broken: %d conns for %d responses", opened, resp)
	}
}

func TestHTTPServerKeepAliveLimit(t *testing.T) {
	b := newWebBed(t, 1, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{MaxRequestsPerConn: 5},
		LoadgenConfig{Conns: 2, ReqPerConn: 100})
	b.start()
	b.run(100 * sim.Millisecond)
	if b.errors() != 0 {
		t.Fatalf("server-side close caused %d client errors", b.errors())
	}
	var completed uint64
	for _, g := range b.gens {
		completed += g.Stats().ConnsCompleted
	}
	if completed < 5 {
		t.Fatalf("completed conns=%d — server limit never engaged?", completed)
	}
	resp := b.responses()
	if resp < completed*5 {
		t.Fatalf("responses=%d for %d completed conns", resp, completed)
	}
}

func TestHTTPLargeFileWithTSO(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.TSO = true
	b := newWebBed(t, 1, 1, 1, tcp,
		HTTPDConfig{Files: map[string]int{"/big": 100 << 10}},
		LoadgenConfig{Conns: 2, ReqPerConn: 5, URI: "/big"})
	b.start()
	for _, g := range b.gens {
		g.BeginMeasure()
	}
	b.run(300 * sim.Millisecond)
	resp := b.responses()
	if resp < 10 {
		t.Fatalf("responses=%d errors=%d", resp, b.errors())
	}
	var bytesIn uint64
	for _, g := range b.gens {
		bytesIn += g.Stats().WindowBytes
	}
	if bytesIn != resp*(100<<10) {
		t.Fatalf("bytes=%d for %d responses (corrupt bodies?)", bytesIn, resp)
	}
	// TSO engaged on the server NIC.
	if b.server.NIC.Stats().TSORequests == 0 {
		t.Fatal("TSO never used")
	}
}

func TestHTTP404Counted(t *testing.T) {
	b := newWebBed(t, 1, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 1, ReqPerConn: 3, URI: "/missing"})
	b.start()
	b.run(50 * sim.Millisecond)
	if b.servers[0].Stats().NotFound == 0 {
		t.Fatal("no 404s recorded")
	}
	// 404 responses still complete the HTTP exchange.
	if b.responses() == 0 {
		t.Fatal("client got no responses")
	}
}

func TestSingleRequestPerConnection(t *testing.T) {
	// Figure 12's workload: every request pays the full handshake.
	b := newWebBed(t, 2, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 8, ReqPerConn: 1})
	b.start()
	b.run(200 * sim.Millisecond)
	resp := b.responses()
	if resp < 50 {
		t.Fatalf("responses=%d errors=%d", resp, b.errors())
	}
	var opened uint64
	for _, g := range b.gens {
		opened += g.Stats().ConnsOpened
	}
	if opened < resp {
		t.Fatalf("1 req/conn but %d conns for %d responses", opened, resp)
	}
	// Under 1-req/conn churn the server holds a steady-state TIME_WAIT
	// population (rate × TimeWait) — the §4 control-plane tunable. Once
	// the load stops, reaping must drain everything.
	if n := b.sys.TotalConns(); n < 100 {
		t.Fatalf("expected a TIME_WAIT population under churn, got %d", n)
	}
	for _, g := range b.gens {
		g.Stop()
	}
	b.run(2 * sim.Second)
	if n := b.sys.TotalConns(); n != 0 {
		t.Fatalf("PCBs leaked after load stopped: %d", n)
	}
}

func TestLoadgenSurvivesServerCrash(t *testing.T) {
	b := newWebBed(t, 2, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 8, ReqPerConn: 1000, Timeout: 100 * sim.Millisecond})
	b.start()
	b.run(50 * sim.Millisecond)
	if b.responses() == 0 {
		t.Fatal("no traffic before crash")
	}
	// Crash one replica mid-run.
	b.sys.Replicas()[0].Procs()[0].Crash(sim.ErrKilled)
	b.run(500 * sim.Millisecond)
	if b.errors() == 0 {
		t.Fatal("crash produced no client-visible errors")
	}
	// Traffic continues after recovery.
	before := b.responses()
	b.run(200 * sim.Millisecond)
	if b.responses() <= before {
		t.Fatalf("no progress after recovery: %d", b.responses())
	}
	if b.sys.Stats().Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}
}

func TestMeasurementWindowing(t *testing.T) {
	b := newWebBed(t, 1, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 4, ReqPerConn: 100})
	b.start()
	b.run(100 * sim.Millisecond) // warmup
	lg := b.gens[0]
	warm := lg.Stats().ResponsesOK
	lg.BeginMeasure()
	b.run(100 * sim.Millisecond)
	st := lg.Stats()
	if st.WindowResponses == 0 {
		t.Fatal("window empty")
	}
	if st.WindowResponses >= st.ResponsesOK || st.ResponsesOK <= warm {
		t.Fatalf("windowing broken: window=%d total=%d warm=%d",
			st.WindowResponses, st.ResponsesOK, warm)
	}
	if lg.Latency().Count() != st.WindowResponses {
		t.Fatalf("latency samples=%d, window=%d", lg.Latency().Count(), st.WindowResponses)
	}
	if lg.Latency().Mean() <= 0 {
		t.Fatal("nonpositive latency")
	}
	if lg.GoodResponses() != st.WindowResponses-st.WindowDiscarded {
		t.Fatal("GoodResponses arithmetic")
	}
}

func TestSyntheticBody(t *testing.T) {
	for _, n := range []int{0, 1, 20, 4096, 10000} {
		b := SyntheticBody(n)
		if len(b) != n {
			t.Fatalf("len=%d want %d", len(b), n)
		}
	}
	if parseContentLength([]byte("HTTP/1.1 200 OK\r\nContent-Length: 123\r\n")) != 123 {
		t.Fatal("content-length parse")
	}
	if parseContentLength([]byte("junk")) != 0 {
		t.Fatal("missing content-length should be 0")
	}
}
