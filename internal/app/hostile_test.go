package app

import (
	"testing"

	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/tcpeng"
)

// attackerCore returns a free client-host core beyond the loadgen block
// (BuildClientSystem occupies cores 2..2+loadgens-1, loadgens sit at
// 2+loadgens..2+2*loadgens-1).
func attackerCore(loadgens, i int) int { return 2 + 2*loadgens + i }

func serverTCPStats(b *webBed) tcpeng.Stats {
	var out tcpeng.Stats
	for _, r := range b.sys.Replicas() {
		st := r.TCP().Stats()
		out.SynShed += st.SynShed
		out.SlowlorisReaped += st.SlowlorisReaped
		out.SrcCapped += st.SrcCapped
		out.DroppedSynBacklog += st.DroppedSynBacklog
	}
	return out
}

func TestSlowlorisHoldsUnguardedServer(t *testing.T) {
	b := newWebBed(t, 1, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{}, LoadgenConfig{Conns: 2, ReqPerConn: 10})
	sl := NewSlowloris(b.client.AppThread(attackerCore(1, 0)), "slowloris",
		b.clisys.SyscallProc(), ipc.DefaultCosts(),
		SlowlorisConfig{Target: b.server.IP, Port: 80, Conns: 16})
	sl.Start()
	b.start()
	b.run(200 * sim.Millisecond)

	st := sl.Stats()
	if st.ConnsOpened != 16 || st.Reaped != 0 {
		t.Fatalf("unguarded server disturbed the attack: %+v", st)
	}
	if st.BytesTrickled == 0 {
		t.Fatal("attack never trickled")
	}
	// The held connections are dead weight the server cannot shed.
	if got := serverTCPStats(b); got.SlowlorisReaped != 0 {
		t.Fatalf("no guards configured but reaped=%d", got.SlowlorisReaped)
	}
	if b.servers[0].Stats().Responses == 0 {
		t.Fatal("legit traffic should still flow at this attack size")
	}
}

func TestGuardReapsSlowloris(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.Guard.HeaderDeadline = 10 * sim.Millisecond
	tcp.Guard.HeaderMinBytes = 24 // below one legit request head (~32 bytes)
	b := newWebBed(t, 1, 1, 1, tcp,
		HTTPDConfig{}, LoadgenConfig{Conns: 4, ReqPerConn: 10})
	sl := NewSlowloris(b.client.AppThread(attackerCore(1, 0)), "slowloris",
		b.clisys.SyscallProc(), ipc.DefaultCosts(),
		SlowlorisConfig{Target: b.server.IP, Port: 80, Conns: 16})
	sl.Start()
	b.start()
	b.run(300 * sim.Millisecond)

	if reaped := serverTCPStats(b).SlowlorisReaped; reaped < 16 {
		t.Fatalf("guard reaped only %d slow readers", reaped)
	}
	// The attacker sees its connections reset and keeps replacing them.
	if st := sl.Stats(); st.Reaped < 16 || st.ConnsOpened <= 16 {
		t.Fatalf("attacker-side view: %+v", st)
	}
	// Legitimate clients are untouched: full request heads arrive at once,
	// far ahead of the deadline.
	if b.errors() != 0 {
		t.Fatalf("guard harmed legit traffic: %d errors", b.errors())
	}
	if b.responses() < 100 {
		t.Fatalf("legit goodput collapsed: %d responses", b.responses())
	}
}

func TestGuardIdleReapsSilentConns(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.Guard.IdleDeadline = 10 * sim.Millisecond
	b := newWebBed(t, 1, 1, 1, tcp,
		HTTPDConfig{}, LoadgenConfig{Conns: 4, ReqPerConn: 10})
	// Silent holders: handshake, then nothing for 500 ms.
	ch := NewConnChurn(b.client.AppThread(attackerCore(1, 0)), "holder",
		b.clisys.SyscallProc(), ipc.DefaultCosts(),
		ConnChurnConfig{Target: b.server.IP, Port: 80, Conns: 8, Hold: 500 * sim.Millisecond})
	ch.Start()
	b.start()
	b.run(300 * sim.Millisecond)

	if reaped := serverTCPStats(b).SlowlorisReaped; reaped < 50 {
		t.Fatalf("idle deadline reaped only %d silent conns", reaped)
	}
	if b.errors() != 0 {
		t.Fatalf("idle deadline harmed legit traffic: %d errors", b.errors())
	}
	if b.responses() < 100 {
		t.Fatalf("legit goodput collapsed: %d responses", b.responses())
	}
}

func TestSYNFloodOverwhelmsUnguardedBacklog(t *testing.T) {
	b := newWebBed(t, 1, 1, 1, tcpeng.DefaultConfig(),
		HTTPDConfig{Backlog: 48},
		LoadgenConfig{Conns: 4, ReqPerConn: 2, Timeout: 100 * sim.Millisecond})
	fl := NewSYNFlood(b.client.AppThread(attackerCore(1, 0)), "synflood",
		b.client.Driver.Proc(), ipc.DefaultCosts(),
		SYNFloodConfig{Target: b.server.IP, TargetMAC: b.server.MAC,
			SrcMAC: b.client.MAC, Port: 80})
	fl.Start()
	b.run(50 * sim.Millisecond) // flood fills the embryonic backlog
	b.start()
	for _, g := range b.gens {
		g.BeginMeasure()
	}
	b.run(200 * sim.Millisecond)

	if fl.Stats().SynsSent < 1000 {
		t.Fatalf("flood too slow: %d SYNs", fl.Stats().SynsSent)
	}
	if dropped := serverTCPStats(b).DroppedSynBacklog; dropped == 0 {
		t.Fatal("backlog never overflowed")
	}
	// New legit connections cannot get in: goodput collapses to the few
	// requests the pre-flood connections still complete.
	var window uint64
	for _, g := range b.gens {
		window += g.Stats().WindowResponses
	}
	if window > 50 {
		t.Fatalf("flood failed to starve the unguarded server: %d window responses", window)
	}
}

func TestGuardShedsSynFloodKeepsService(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.Guard.SynBacklog = 32
	b := newWebBed(t, 1, 1, 1, tcp,
		HTTPDConfig{Backlog: 48},
		LoadgenConfig{Conns: 4, ReqPerConn: 2, Timeout: 100 * sim.Millisecond})
	fl := NewSYNFlood(b.client.AppThread(attackerCore(1, 0)), "synflood",
		b.client.Driver.Proc(), ipc.DefaultCosts(),
		SYNFloodConfig{Target: b.server.IP, TargetMAC: b.server.MAC,
			SrcMAC: b.client.MAC, Port: 80})
	fl.Start()
	b.run(50 * sim.Millisecond)
	b.start()
	for _, g := range b.gens {
		g.BeginMeasure()
	}
	b.run(200 * sim.Millisecond)

	st := serverTCPStats(b)
	if st.SynShed == 0 {
		t.Fatal("guard never shed")
	}
	// The bounded backlog never reaches the listener limit, so legit SYNs
	// always find a slot (shedding the oldest flood embryo) and complete
	// their handshake within an RTT.
	if st.DroppedSynBacklog != 0 {
		t.Fatalf("listener backlog still overflowed %d times", st.DroppedSynBacklog)
	}
	if b.errors() != 0 {
		t.Fatalf("legit errors under guarded flood: %d", b.errors())
	}
	var window uint64
	for _, g := range b.gens {
		window += g.Stats().WindowResponses
	}
	if window < 200 {
		t.Fatalf("goodput under guarded flood too low: %d window responses", window)
	}
}

func TestGuardSourceCapBoundsChurn(t *testing.T) {
	tcp := tcpeng.DefaultConfig()
	tcp.Guard.MaxConnsPerSource = 12
	// Loadgen is built but never started: the churner is alone, so every
	// connection from the client host's (single) source address is hostile.
	b := newWebBed(t, 1, 1, 1, tcp, HTTPDConfig{}, LoadgenConfig{})
	ch := NewConnChurn(b.client.AppThread(attackerCore(1, 0)), "churn",
		b.clisys.SyscallProc(), ipc.DefaultCosts(),
		ConnChurnConfig{Target: b.server.IP, Port: 80, Conns: 32, Hold: 50 * sim.Millisecond})
	ch.Start()
	b.run(300 * sim.Millisecond)

	st := serverTCPStats(b)
	if st.SrcCapped == 0 {
		t.Fatal("source cap never engaged")
	}
	if got := ch.Stats(); got.Opened < 40 {
		t.Fatalf("churn stalled entirely: %+v", got)
	}
	// The server never held more than the cap (plus the handful of
	// handshakes in flight) for this source.
	if n := b.sys.TotalConns(); n > 16 {
		t.Fatalf("source cap leaked: %d live conns on the server", n)
	}
}
