package app

import (
	"bytes"
	"strconv"

	"neat/internal/bufpool"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// StreamerConfig configures a streaming HTTP responder: a server whose
// responses are produced over time (live feeds, long polls, media
// segments) rather than from a cached file. Where HTTPD pushes a complete
// body as fast as send-space allows, the Streamer paces fixed-size chunks
// on a timer, so its connections are long-lived and mostly idle on the
// receive side — exactly the traffic shape a slow-read guard must NOT
// confuse with a Slowloris attack (the client's ACKs count as activity).
type StreamerConfig struct {
	Port    uint16
	Backlog int
	// ChunkSize is the bytes per paced chunk (default 8 KiB).
	ChunkSize int
	// ChunkEvery is the pacing interval (default 1 ms).
	ChunkEvery sim.Time
	// ChunksPerResponse is the stream length; the response advertises
	// ChunkSize*ChunksPerResponse as its Content-Length (default 32).
	ChunksPerResponse int
	// CyclesPerChunk is the application cost of producing one chunk.
	CyclesPerChunk int64
}

// StreamerStats counts streamer activity.
type StreamerStats struct {
	Accepted  uint64
	Streams   uint64 // responses started
	Completed uint64 // responses fully delivered
	BytesOut  uint64
	Resets    uint64
	Closed    uint64
}

// Streamer is one streaming-responder process.
type Streamer struct {
	proc  *sim.Proc
	lib   *socketlib.Lib
	cfg   StreamerConfig
	ready bool
	stats StreamerStats
	arena bufpool.Arena
}

type streamConn struct {
	srv   *Streamer
	sock  *socketlib.Socket
	inbuf []byte
	gen   uint64
	// remaining counts chunks still to produce; stalled marks a stream
	// waiting for send space instead of the pacing timer.
	remaining int
	stalled   bool
	done      bool
}

type streamTick struct {
	c   *streamConn
	gen uint64
}

// NewStreamer creates a streaming responder on thread th. Call Start to
// listen.
func NewStreamer(th *sim.HWThread, name string, syscallProc *sim.Proc, ipcCosts ipc.Costs, cfg StreamerConfig) *Streamer {
	if cfg.Backlog == 0 {
		cfg.Backlog = 1024
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 8 << 10
	}
	if cfg.ChunkEvery == 0 {
		cfg.ChunkEvery = sim.Millisecond
	}
	if cfg.ChunksPerResponse == 0 {
		cfg.ChunksPerResponse = 32
	}
	if cfg.CyclesPerChunk == 0 {
		cfg.CyclesPerChunk = 4000
	}
	s := &Streamer{cfg: cfg}
	s.proc = sim.NewProc(th, name, s, sim.ProcConfig{
		Component: "app", WakeCycles: 1400, HaltCycles: 900, DispatchCycles: 60,
	})
	s.lib = socketlib.New(s.proc, syscallProc, ipcCosts)
	return s
}

// Proc returns the server process.
func (s *Streamer) Proc() *sim.Proc { return s.proc }

// Ready reports whether the listen completed.
func (s *Streamer) Ready() bool { return s.ready }

// Stats returns a snapshot of the counters.
func (s *Streamer) Stats() StreamerStats { return s.stats }

// Start begins listening.
func (s *Streamer) Start() { s.proc.Deliver(streamStartMsg{}) }

type streamStartMsg struct{}

// HandleMessage implements sim.Handler.
func (s *Streamer) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if s.lib.HandleEvent(ctx, msg) {
		return
	}
	switch m := msg.(type) {
	case streamStartMsg:
		ln := s.lib.Listen(ctx, s.cfg.Port, s.cfg.Backlog)
		ln.OnReady = func(ctx *sim.Context, err error) { s.ready = err == nil }
		ln.OnAccept = s.accept
	case streamTick:
		if m.c.gen == m.gen && !m.c.done && !m.c.stalled {
			s.emit(ctx, m.c)
		}
	}
}

func (s *Streamer) accept(ctx *sim.Context, sock *socketlib.Socket) {
	s.stats.Accepted++
	c := &streamConn{srv: s, sock: sock}
	sock.Ctx = c
	sock.OnData = c.onData
	sock.OnSendSpace = c.onSendSpace
	sock.OnClosed = func(ctx *sim.Context, reset bool, err error) {
		if reset {
			s.stats.Resets++
		}
		s.stats.Closed++
		c.done = true
	}
}

// onData waits for one request head, then starts the paced stream.
func (c *streamConn) onData(ctx *sim.Context, data []byte, eof bool) {
	if c.done {
		return
	}
	s := c.srv
	if c.remaining == 0 && c.gen == 0 {
		c.inbuf = append(c.inbuf, data...)
		if bytes.Index(c.inbuf, []byte("\r\n\r\n")) < 0 {
			if eof {
				c.done = true
				c.sock.Close(ctx)
			}
			return
		}
		c.inbuf = nil
		s.stats.Streams++
		c.gen++
		c.remaining = s.cfg.ChunksPerResponse
		total := s.cfg.ChunkSize * s.cfg.ChunksPerResponse
		head := "HTTP/1.1 200 OK\r\nContent-Length: " + strconv.Itoa(total) +
			"\r\nConnection: close\r\n\r\n"
		s.stats.BytesOut += uint64(len(head))
		c.sock.SendRef(ctx, s.arena.AllocString(head))
		s.emit(ctx, c)
		return
	}
	if eof {
		c.done = true
		c.sock.Close(ctx)
	}
}

// emit produces one chunk and re-arms the pacing timer (or parks the
// stream until send space returns).
func (s *Streamer) emit(ctx *sim.Context, c *streamConn) {
	if c.done || c.remaining == 0 {
		return
	}
	if c.sock.Credit() < s.cfg.ChunkSize {
		// Receiver is slower than the pace: resume from OnSendSpace.
		c.stalled = true
		return
	}
	ctx.Charge(s.cfg.CyclesPerChunk)
	ref := s.arena.Alloc(s.cfg.ChunkSize)
	FillSynthetic(ref.B)
	c.sock.SendRef(ctx, ref)
	s.stats.BytesOut += uint64(s.cfg.ChunkSize)
	c.remaining--
	if c.remaining == 0 {
		s.stats.Completed++
		c.done = true
		c.sock.Close(ctx)
		return
	}
	ctx.TimerAfter(s.cfg.ChunkEvery, streamTick{c: c, gen: c.gen})
}

func (c *streamConn) onSendSpace(ctx *sim.Context, avail int) {
	if c.stalled && !c.done {
		c.stalled = false
		c.srv.emit(ctx, c)
	}
}
