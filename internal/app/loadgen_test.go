package app

import "testing"

// TestParseContentLength covers the RFC 9110 tolerances: field names are
// case-insensitive and optional whitespace around the value is ignored.
// Regression: the parser used to require the literal "Content-Length: "
// byte sequence and returned 0 for any other capitalization or spacing.
func TestParseContentLength(t *testing.T) {
	cases := []struct {
		name string
		head string
		want int
	}{
		{"canonical", "HTTP/1.1 200 OK\r\nContent-Length: 512\r\nConnection: keep-alive", 512},
		{"lowercase", "HTTP/1.1 200 OK\r\ncontent-length: 512", 512},
		{"uppercase", "HTTP/1.1 200 OK\r\nCONTENT-LENGTH: 7", 7},
		{"mixed", "HTTP/1.1 200 OK\r\ncOnTeNt-LeNgTh: 42", 42},
		{"no space", "HTTP/1.1 200 OK\r\nContent-Length:99", 99},
		{"extra spaces", "HTTP/1.1 200 OK\r\nContent-Length:   1234", 1234},
		{"tab", "HTTP/1.1 200 OK\r\nContent-Length:\t88", 88},
		{"trailing space", "HTTP/1.1 200 OK\r\nContent-Length: 64 ", 64},
		{"zero", "HTTP/1.1 204 No Content\r\nContent-Length: 0", 0},
		{"absent", "HTTP/1.1 200 OK\r\nConnection: close", 0},
		{"garbage value", "HTTP/1.1 200 OK\r\nContent-Length: twelve", 0},
		{"name is a prefix", "HTTP/1.1 200 OK\r\nContent-Length-Hint: 5", 0},
		{"later header wins search", "HTTP/1.1 200 OK\r\nX-Note: Content-Length is fun\r\nContent-Length: 31", 31},
	}
	for _, tc := range cases {
		if got := parseContentLength([]byte(tc.head)); got != tc.want {
			t.Errorf("%s: parseContentLength(%q) = %d, want %d", tc.name, tc.head, got, tc.want)
		}
	}
}
