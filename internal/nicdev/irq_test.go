package nicdev

import (
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/wire"
)

// softirqSink models the baseline's kernel context: it drains the queue on
// each QueueIRQ and re-arms, counting frames seen.
type softirqSink struct {
	nic  *NIC
	got  int
	irqs int
}

func (s *softirqSink) HandleMessage(ctx *sim.Context, msg sim.Message) {
	if irq, ok := msg.(QueueIRQ); ok {
		s.irqs++
		for _, f := range s.nic.DrainQueue(irq.Queue) {
			s.got++
			f.Release()
		}
		s.nic.RearmQueueIRQ(irq.Queue)
	}
}

// queueIRQRun pushes n frames 1µs apart into a single-queue NIC in
// per-queue IRQ mode with the given moderation window, and reports how
// many interrupts the kernel context took to consume them all.
func queueIRQRun(t *testing.T, n int, window sim.Time) (frames, irqs int, stats NICStats) {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 1, 1, 1_000_000_000)
	l := wire.NewLink(s)
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	nic.SetIRQCoalesce(window)
	sink := &softirqSink{nic: nic}
	p := sim.NewProc(m.Thread(0, 0), "ksoftirqd", sink, sim.ProcConfig{})
	nic.SetQueueIRQTarget(0, p)
	for i := 0; i < n; i++ {
		port := uint16(5000 + i)
		at := sim.Time(i) * sim.Microsecond
		s.At(at, func() { nic.Receive(tcpFrame(port, nil)) })
	}
	s.Drain()
	return sink.got, sink.irqs, nic.Stats()
}

func TestQueueIRQCoalesceReducesWakeups(t *testing.T) {
	const n = 32
	frames, irqs, stats := queueIRQRun(t, n, 100*sim.Microsecond)
	if frames != n {
		t.Fatalf("moderated run delivered %d of %d frames", frames, n)
	}
	if irqs >= n/2 {
		t.Fatalf("moderation took %d interrupts for %d frames, want far fewer", irqs, n)
	}
	if stats.IRQDeferred == 0 {
		t.Fatal("moderated burst deferred no interrupts")
	}
}

func TestQueueIRQNoCoalesceByDefault(t *testing.T) {
	const n = 8
	frames, irqs, stats := queueIRQRun(t, n, 0)
	if frames != n {
		t.Fatalf("delivered %d of %d frames", frames, n)
	}
	// 1µs spacing far exceeds the drain time: every frame raises its own
	// interrupt when moderation is off.
	if irqs != n {
		t.Fatalf("unmoderated run took %d interrupts for %d frames, want %d", irqs, n, n)
	}
	if stats.IRQDeferred != 0 {
		t.Fatalf("unmoderated run deferred %d interrupts", stats.IRQDeferred)
	}
}

// driverIRQRun mirrors queueIRQRun for driver mode: frames spaced 1µs with
// a bound replica target, reporting driver dispatches.
func driverIRQRun(t *testing.T, n int, window sim.Time) (frames int, dispatches uint64, stats NICStats) {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 2, 1, 1_000_000_000)
	l := wire.NewLink(s)
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	nic.SetIRQCoalesce(window)
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
	got := 0
	p := sim.NewProc(m.Thread(1, 0), "replica", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		if f, ok := msg.(*proto.Frame); ok {
			got++
			f.Release()
		}
	}), sim.ProcConfig{})
	drv.BindQueue(0, p)
	for i := 0; i < n; i++ {
		port := uint16(6000 + i)
		at := sim.Time(i) * sim.Microsecond
		s.At(at, func() { nic.Receive(tcpFrame(port, nil)) })
	}
	s.Drain()
	return got, drv.Proc().Stats().Dispatches, nic.Stats()
}

func TestDriverIRQCoalesceReducesWakeups(t *testing.T) {
	const n = 32
	frames, moderated, stats := driverIRQRun(t, n, 100*sim.Microsecond)
	if frames != n {
		t.Fatalf("moderated run delivered %d of %d frames", frames, n)
	}
	if stats.IRQDeferred == 0 {
		t.Fatal("moderated burst deferred no interrupts")
	}
	_, unmoderated, _ := driverIRQRun(t, n, 0)
	if moderated >= unmoderated {
		t.Fatalf("moderation did not reduce driver dispatches: %d (window on) vs %d (off)", moderated, unmoderated)
	}
}
