package nicdev

import (
	"neat/internal/sim"
)

// rxReady is the NIC's RX notification to the driver.
type rxReady struct{}

// DriverCosts parameterizes the driver's per-operation cycle budget.
// Defaults are calibrated in internal/experiments/calibrate.go against the
// paper's Table 2 (a single core drives 10G line rate, and a mostly idle
// driver spends most of its active time polling and in the kernel).
type DriverCosts struct {
	PerPacketRx int64 // cycles to fetch + dispatch one RX frame
	PerPacketTx int64 // cycles to post one TX frame
	PollQueue   int64 // cycles to check one (possibly empty) queue
}

// DefaultDriverCosts returns reasonable defaults for a 10G driver,
// calibrated against Table 2: at a few hundred krps of web traffic the
// driver core approaches saturation, while §3.5's observation holds that
// it never becomes the bottleneck in the measured configurations.
func DefaultDriverCosts() DriverCosts {
	return DriverCosts{PerPacketRx: 1400, PerPacketTx: 1100, PollQueue: 600}
}

// DriverStats counts driver activity.
type DriverStats struct {
	RxDispatched uint64
	RxUnbound    uint64 // frames for queues with no live target (recovering replica)
	TxSent       uint64
	Polls        uint64
}

// Driver is the NIC driver process: it drains RX queues, dispatching each
// frame to the replica bound to the frame's queue, and forwards TX requests
// from replicas to the NIC. Per §3.6, a queue whose replica crashed is
// simply unbound: the driver holds packets back (drops them) until the new
// replica announces itself, so the device never needs reconfiguration
// during recovery.
type Driver struct {
	proc    *sim.Proc
	nic     *NIC
	costs   DriverCosts
	targets []*sim.Proc
	stats   DriverStats
}

// NewDriver creates the driver process on the given hardware thread.
func NewDriver(t *sim.HWThread, name string, nic *NIC, costs DriverCosts) *Driver {
	nic.bindDomain(t.Machine().Sim())
	d := &Driver{nic: nic, costs: costs, targets: make([]*sim.Proc, nic.NumQueues())}
	d.proc = sim.NewProc(t, name, d, sim.ProcConfig{
		Component:      "driver",
		WakeCycles:     1400, // enter/exit kernel to halt: MWAIT is privileged
		HaltCycles:     900,
		DispatchCycles: 60,
	})
	nic.driver = d
	return d
}

// Proc returns the driver's process (replicas send TxFrame/TxTSO to it).
func (d *Driver) Proc() *sim.Proc { return d.proc }

// NIC returns the device the driver manages.
func (d *Driver) NIC() *NIC { return d.nic }

// Stats returns a snapshot of driver counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// BindQueue announces proc as the live replica for queue q. A nil proc
// unbinds the queue (replica crashed or terminating).
func (d *Driver) BindQueue(q int, proc *sim.Proc) { d.targets[q] = proc }

// Restart revives a dead driver process in place (the reincarnation-server
// contract: system services keep their IPC endpoint across incarnations,
// so replicas' TX channels stay valid). The fresh incarnation knows no
// queue bindings — the management plane must re-announce every replica and
// then Kick the device. Frames that reached the dead process were lost;
// frames sitting in the NIC's hardware queues survive.
func (d *Driver) Restart() {
	d.proc.Respawn()
	for i := range d.targets {
		d.targets[i] = nil
	}
}

// Kick re-arms the NIC's RX notification after a driver restart, re-firing
// the interrupt if frames accumulated in the hardware queues while the
// driver was down. Call it after the queue bindings are re-announced.
func (d *Driver) Kick() { d.nic.rearm() }

// QueueTarget returns the process bound to queue q, or nil.
func (d *Driver) QueueTarget(q int) *sim.Proc { return d.targets[q] }

// HandleMessage implements sim.Handler.
func (d *Driver) HandleMessage(ctx *sim.Context, msg sim.Message) {
	switch m := msg.(type) {
	case rxReady:
		d.drainRx(ctx)
	case *TxFrame:
		ctx.Charge(d.costs.PerPacketTx)
		d.stats.TxSent++
		d.nic.Transmit(m.Raw)
		m.Raw = nil
		txFramePool.Put(m)
	case TxFrame:
		ctx.Charge(d.costs.PerPacketTx)
		d.stats.TxSent++
		d.nic.Transmit(m.Raw)
	case *TxTSO:
		// One descriptor regardless of payload size: that is the point of
		// TSO — the CPU cost does not scale with the number of segments.
		ctx.Charge(d.costs.PerPacketTx + 150)
		d.stats.TxSent++
		d.nic.SendTSO(*m)
		*m = TxTSO{}
		txTSOPool.Put(m)
	case TxTSO:
		ctx.Charge(d.costs.PerPacketTx + 150)
		d.stats.TxSent++
		d.nic.SendTSO(m)
	}
}

// drainRx polls every RX queue and dispatches all pending frames.
func (d *Driver) drainRx(ctx *sim.Context) {
	nq := d.nic.NumQueues()
	// The driver checks every NIC queue AND every stack's TX ring each
	// activation whether or not it has work — the "polling the 3 stacks
	// and the NIC queues" share of Table 2.
	ctx.ChargeAs(sim.CostPolling, d.costs.PollQueue*int64(2*nq))
	d.stats.Polls += uint64(2 * nq)
	for q := 0; q < nq; q++ {
		qu := &d.nic.queues[q]
		if len(qu.frames) == 0 {
			continue
		}
		// Rotate the queue's two slices: new arrivals append to the spare
		// while this batch is processed, so nothing reallocates.
		frames := qu.frames
		qu.frames = qu.spare[:0]
		d.nic.drainRxStamps(q, len(frames))
		target := d.targets[q]
		for i, f := range frames {
			frames[i] = nil
			if target == nil || target.Dead() {
				d.stats.RxUnbound++
				f.Release()
				continue
			}
			ctx.Charge(d.costs.PerPacketRx)
			d.stats.RxDispatched++
			f.RxQueue = q
			ctx.Send(target, f)
		}
		qu.spare = frames[:0]
	}
	d.nic.rearm()
}
