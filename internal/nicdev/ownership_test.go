package nicdev

import (
	"sync"
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/wire"
)

// TestBatchedHandoffOwnership is the frame-ownership property check for the
// batched delivery path: several simulators run in parallel goroutines,
// all drawing frames from the shared pools, each pushing RX bursts through
// NIC → driver → replica. Every frame carries a payload stamped with a
// value derived from its identity; the replica verifies the stamp on
// delivery — proving no frame was recycled, aliased or clobbered while a
// prior owner still held it — and only then releases it. Run under -race
// this also exercises cross-goroutine pool recycling.
func TestBatchedHandoffOwnership(t *testing.T) {
	const (
		workers = 4
		bursts  = 100
		burstSz = 8
		payload = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := sim.New(seed)
			m := sim.NewMachine(s, "srv", 2, 1, 1_000_000_000)
			l := wire.NewLink(s)
			nic := NewNIC(s, "nic0", macB, l, 1, 1)
			drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
			got := 0
			p := sim.NewProc(m.Thread(1, 0), "replica", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
				f, ok := msg.(*proto.Frame)
				if !ok {
					return
				}
				if f.TCP == nil || len(f.Payload) != payload {
					t.Errorf("malformed delivery: tcp=%v payload len %d, want %d",
						f.TCP != nil, len(f.Payload), payload)
					f.Release()
					return
				}
				// The whole payload must still carry this frame's stamp:
				// the low byte of its source port.
				stamp := byte(f.TCP.SrcPort)
				for j, b := range f.Payload {
					if b != stamp {
						t.Errorf("frame port %d: byte %d clobbered (got %d, want %d)",
							f.TCP.SrcPort, j, b, stamp)
						f.Release()
						return
					}
				}
				got++
				f.Release()
			}), sim.ProcConfig{})
			drv.BindQueue(0, p)
			for i := 0; i < bursts; i++ {
				at := sim.Time(i) * 10 * sim.Microsecond
				base := uint16(1000 + i*burstSz)
				s.At(at, func() {
					// One burst: all frames land in the same RX sweep and
					// reach the replica as one batched delivery.
					for k := 0; k < burstSz; k++ {
						port := base + uint16(k)
						body := make([]byte, payload)
						for j := range body {
							body[j] = byte(port)
						}
						nic.Receive(tcpFrame(port, body))
					}
				})
			}
			s.Drain()
			if got != bursts*burstSz {
				t.Errorf("delivered %d of %d frames", got, bursts*burstSz)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
