package nicdev

import (
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/wire"
)

var (
	macA = proto.MAC{2, 0, 0, 0, 0, 1}
	macB = proto.MAC{2, 0, 0, 0, 0, 2}
	ipA  = proto.IPv4(10, 0, 0, 1)
	ipB  = proto.IPv4(10, 0, 0, 2)
)

func tcpFrame(srcPort uint16, payload []byte) []byte {
	return proto.BuildTCP(
		proto.EthernetHeader{Dst: macB, Src: macA, Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: ipA, Dst: ipB},
		proto.TCPHeader{SrcPort: srcPort, DstPort: 80, Flags: proto.TCPAck},
		payload,
	)
}

// testRig wires a NIC+driver on machine B receiving from a raw port on side A.
type testRig struct {
	s      *sim.Simulator
	link   *wire.Link
	nic    *NIC
	driver *Driver
	// received per replica proc
	got map[string][]*proto.Frame
}

func newRig(t *testing.T, nQueues int) *testRig {
	t.Helper()
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 4, 1, 1_000_000_000)
	l := wire.NewLink(s)
	nic := NewNIC(s, "nic0", macB, l, 1, nQueues)
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
	rig := &testRig{s: s, link: l, nic: nic, driver: drv, got: map[string][]*proto.Frame{}}
	for q := 0; q < nQueues; q++ {
		name := string(rune('A' + q))
		p := sim.NewProc(m.Thread(1+q%3, 0), name, sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
			if rx, ok := msg.(*proto.Frame); ok {
				rig.got[name] = append(rig.got[name], rx)
			}
		}), sim.ProcConfig{})
		drv.BindQueue(q, p)
	}
	return rig
}

func TestRSSSteeringIsFlowStable(t *testing.T) {
	rig := newRig(t, 4)
	// Same flow twice must land on the same queue; spread across flows.
	for i := 0; i < 2; i++ {
		rig.link.Transmit(0, tcpFrame(1111, []byte{byte(i)}))
	}
	rig.s.Drain()
	total := 0
	for name, frames := range rig.got {
		if len(frames) > 0 && len(frames) != 2 {
			t.Fatalf("flow split across queues: %s got %d", name, len(frames))
		}
		total += len(frames)
	}
	if total != 2 {
		t.Fatalf("delivered %d, want 2", total)
	}
}

func TestExactFilterOverridesRSS(t *testing.T) {
	rig := newRig(t, 4)
	flow := proto.Flow{Src: ipA, Dst: ipB, SrcPort: 2222, DstPort: 80, Proto: proto.ProtoTCP}
	// Find the RSS queue, then force a different one by filter.
	rssQ := int(flow.Hash()) % 4
	filterQ := (rssQ + 1) % 4
	if err := rig.nic.InstallFilter(flow, filterQ); err != nil {
		t.Fatal(err)
	}
	rig.link.Transmit(0, tcpFrame(2222, nil))
	rig.s.Drain()
	name := string(rune('A' + filterQ))
	if len(rig.got[name]) != 1 {
		t.Fatalf("filtered frame did not reach queue %d: %v", filterQ, rig.got)
	}
	if rig.nic.Stats().RxFiltered != 1 {
		t.Fatalf("stats: %+v", rig.nic.Stats())
	}
	rig.nic.RemoveFilter(flow)
	rig.link.Transmit(0, tcpFrame(2222, nil))
	rig.s.Drain()
	if rig.nic.Stats().RxHashed != 1 {
		t.Fatal("filter removal did not fall back to RSS")
	}
}

func TestRSSRestrictedQueues(t *testing.T) {
	rig := newRig(t, 4)
	if err := rig.nic.SetRSSQueues([]int{2}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		rig.link.Transmit(0, tcpFrame(uint16(3000+p), nil))
	}
	rig.s.Drain()
	if got := len(rig.got["C"]); got != 16 {
		t.Fatalf("restricted RSS: queue C got %d of 16 (%v)", got, rig.got)
	}
	if err := rig.nic.SetRSSQueues([]int{9}); err == nil {
		t.Fatal("out-of-range RSS queue accepted")
	}
	// Empty RSS set is the explicit drop-all state: unmatched flows are
	// dropped in hardware, exact filters keep steering.
	if err := rig.nic.SetRSSQueues(nil); err != nil {
		t.Fatalf("empty RSS set rejected: %v", err)
	}
	pinned := proto.Flow{Src: ipA, Dst: ipB, SrcPort: 3000, DstPort: 80, Proto: proto.ProtoTCP}
	if err := rig.nic.InstallFilter(pinned, 1); err != nil {
		t.Fatal(err)
	}
	rig.link.Transmit(0, tcpFrame(3000, nil)) // filtered: still delivered
	rig.link.Transmit(0, tcpFrame(4000, nil)) // unmatched: dropped
	rig.s.Drain()
	if got := len(rig.got["B"]); got != 1 {
		t.Fatalf("exact filter stopped steering in drop-all state: %v", rig.got)
	}
	if n := rig.nic.Stats().RxDropNoRSS; n != 1 {
		t.Fatalf("RxDropNoRSS=%d, want 1", n)
	}
}

func TestUnboundQueueDropsUntilRebind(t *testing.T) {
	rig := newRig(t, 1)
	rig.driver.BindQueue(0, nil) // replica crashed
	rig.link.Transmit(0, tcpFrame(1, nil))
	rig.s.Drain()
	if rig.driver.Stats().RxUnbound != 1 {
		t.Fatalf("unbound drop not counted: %+v", rig.driver.Stats())
	}
	// Recovered replica announces itself.
	m := rig.s.Machines()[0]
	var recovered []*proto.Frame
	p := sim.NewProc(m.Thread(2, 0), "recovered", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		if rx, ok := msg.(*proto.Frame); ok {
			recovered = append(recovered, rx)
		}
	}), sim.ProcConfig{})
	rig.driver.BindQueue(0, p)
	rig.link.Transmit(0, tcpFrame(2, nil))
	rig.s.Drain()
	if len(recovered) != 1 {
		t.Fatal("rebound queue did not deliver")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 2, 1, 1_000_000_000)
	l := wire.NewLink(s)
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	nic.queueDepth = 4
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
	_ = drv
	// No driver target and never drained: overflow after 4.
	for i := 0; i < 10; i++ {
		nic.Receive(tcpFrame(uint16(i), nil))
	}
	if nic.Stats().RxDropFull != 6 {
		t.Fatalf("overflow drops = %d, want 6", nic.Stats().RxDropFull)
	}
}

func TestBadFrameCounted(t *testing.T) {
	rig := newRig(t, 1)
	rig.nic.Receive([]byte{1, 2, 3})
	if rig.nic.Stats().RxDropBad != 1 {
		t.Fatalf("bad frame not counted")
	}
}

func TestDriverTransmit(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 2, 1, 1_000_000_000)
	l := wire.NewLink(s)
	var rx [][]byte
	l.Attach(0, portFunc(func(f []byte) { rx = append(rx, f) }))
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
	drv.Proc().Deliver(TxFrame{Raw: tcpFrame(5, []byte("x"))})
	s.Drain()
	if len(rx) != 1 {
		t.Fatalf("tx frames = %d", len(rx))
	}
	if drv.Stats().TxSent != 1 {
		t.Fatalf("driver stats: %+v", drv.Stats())
	}
}

type portFunc func([]byte)

func (f portFunc) Receive(frame []byte) { f(frame) }

func TestTSOSegmentation(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 2, 1, 1_000_000_000)
	l := wire.NewLink(s)
	var frames [][]byte
	l.Attach(0, portFunc(func(f []byte) { frames = append(frames, f) }))
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())

	payload := make([]byte, 3500)
	for i := range payload {
		payload[i] = byte(i)
	}
	drv.Proc().Deliver(TxTSO{
		Eth:     proto.EthernetHeader{Dst: macA, Src: macB, Type: proto.EtherTypeIPv4},
		IP:      proto.IPv4Header{TTL: 64, Src: ipB, Dst: ipA},
		TCP:     proto.TCPHeader{SrcPort: 80, DstPort: 999, Seq: 1000, Flags: proto.TCPAck | proto.TCPPsh, Window: 100},
		Payload: payload,
		MSS:     1460,
	})
	s.Drain()
	if len(frames) != 3 {
		t.Fatalf("TSO produced %d segments, want 3", len(frames))
	}
	var reassembled []byte
	seq := uint32(1000)
	for i, raw := range frames {
		f, err := proto.DecodeFrame(raw)
		if err != nil {
			t.Fatalf("segment %d undecodable: %v", i, err)
		}
		if f.TCP.Seq != seq {
			t.Fatalf("segment %d seq=%d, want %d", i, f.TCP.Seq, seq)
		}
		last := i == len(frames)-1
		if got := f.TCP.Flags&proto.TCPPsh != 0; got != last {
			t.Fatalf("segment %d PSH=%v", i, got)
		}
		reassembled = append(reassembled, f.Payload...)
		seq += uint32(len(f.Payload))
	}
	if len(reassembled) != 3500 {
		t.Fatalf("reassembled %d bytes", len(reassembled))
	}
	for i := range reassembled {
		if reassembled[i] != byte(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	if nic.Stats().TSORequests != 1 || nic.Stats().TSOSegments != 3 {
		t.Fatalf("stats: %+v", nic.Stats())
	}
}

func TestTSOEmptyPayloadSendsOneSegment(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "srv", 1, 1, 1_000_000_000)
	l := wire.NewLink(s)
	var frames [][]byte
	l.Attach(0, portFunc(func(f []byte) { frames = append(frames, f) }))
	nic := NewNIC(s, "nic0", macB, l, 1, 1)
	drv := NewDriver(m.Thread(0, 0), "nicdrv", nic, DefaultDriverCosts())
	drv.Proc().Deliver(TxTSO{
		Eth: proto.EthernetHeader{Dst: macA, Src: macB, Type: proto.EtherTypeIPv4},
		IP:  proto.IPv4Header{TTL: 64, Src: ipB, Dst: ipA},
		TCP: proto.TCPHeader{SrcPort: 80, DstPort: 999, Flags: proto.TCPFin | proto.TCPAck},
	})
	s.Drain()
	if len(frames) != 1 {
		t.Fatalf("frames=%d, want 1", len(frames))
	}
	f, err := proto.DecodeFrame(frames[0])
	if err != nil || f.TCP.Flags&proto.TCPFin == 0 {
		t.Fatalf("FIN-only TSO broken: %v %+v", err, f)
	}
}

func TestDriverCostCategories(t *testing.T) {
	rig := newRig(t, 4)
	for i := 0; i < 50; i++ {
		rig.link.Transmit(0, tcpFrame(uint16(100+i), nil))
	}
	rig.s.Drain()
	st := rig.driver.Proc().Stats()
	if st.CyclesByCat[sim.CostPolling] == 0 {
		t.Fatal("driver charged no polling cycles")
	}
	if st.CyclesByCat[sim.CostKernel] == 0 {
		t.Fatal("driver charged no kernel cycles")
	}
	if st.CyclesByCat[sim.CostProcessing] == 0 {
		t.Fatal("driver charged no processing cycles")
	}
}

func TestFlowTrackingPinsFlowsAcrossRSSChanges(t *testing.T) {
	rig := newRig(t, 4)
	rig.nic.EnableFlowTracking(128)
	// First packet of the flow: RSS picks a queue and the NIC pins it.
	rig.link.Transmit(0, tcpFrame(7100, nil))
	rig.s.Drain()
	if rig.nic.NumTrackedFlows() != 1 {
		t.Fatalf("tracked=%d", rig.nic.NumTrackedFlows())
	}
	var owner string
	for name, frames := range rig.got {
		if len(frames) == 1 {
			owner = name
		}
	}
	// Shrink the RSS set to one other queue (lazy termination would do
	// this); the tracked flow must keep hitting its original queue.
	other := (int(owner[0]-'A') + 1) % 4
	if err := rig.nic.SetRSSQueues([]int{other}); err != nil {
		t.Fatal(err)
	}
	rig.link.Transmit(0, tcpFrame(7100, []byte("x")))
	rig.s.Drain()
	if got := len(rig.got[owner]); got != 2 {
		t.Fatalf("tracked flow migrated away from %s: %v", owner, rig.got)
	}
	if rig.nic.Stats().TrackHits != 1 {
		t.Fatalf("stats: %+v", rig.nic.Stats())
	}
}

func TestFlowTrackingEviction(t *testing.T) {
	rig := newRig(t, 2)
	rig.nic.EnableFlowTracking(4)
	for p := 0; p < 10; p++ {
		rig.link.Transmit(0, tcpFrame(uint16(7200+p), nil))
	}
	rig.s.Drain()
	if rig.nic.NumTrackedFlows() != 4 {
		t.Fatalf("tracked=%d, want table capped at 4", rig.nic.NumTrackedFlows())
	}
	if rig.nic.Stats().TrackEvictions != 6 {
		t.Fatalf("evictions=%d", rig.nic.Stats().TrackEvictions)
	}
	// Disabling clears the table.
	rig.nic.EnableFlowTracking(0)
	if rig.nic.NumTrackedFlows() != 0 {
		t.Fatal("disable did not clear")
	}
}

func TestExactFilterBeatsTracking(t *testing.T) {
	rig := newRig(t, 2)
	rig.nic.EnableFlowTracking(16)
	flow := proto.Flow{Src: ipA, Dst: ipB, SrcPort: 7300, DstPort: 80, Proto: proto.ProtoTCP}
	rig.link.Transmit(0, tcpFrame(7300, nil)) // now tracked on RSS queue
	rig.s.Drain()
	want := (int(flow.Hash()) % 2) // its RSS queue
	filterQ := 1 - want
	rig.nic.InstallFilter(flow, filterQ)
	rig.link.Transmit(0, tcpFrame(7300, nil))
	rig.s.Drain()
	name := string(rune('A' + filterQ))
	if len(rig.got[name]) != 1 {
		t.Fatalf("exact filter did not override tracking: %v", rig.got)
	}
}
