// Package nicdev models the Intel i82599-class 10G NIC of the paper's
// testbed together with its driver process.
//
// The NIC is the hardware half of NEaT's partitioning story (§3.1, §4):
// it owns multiple RX/TX queue pairs — one pair per network stack replica —
// and steers every incoming packet to the queue of the replica that owns
// the packet's flow, using exact-match flow-director filters when
// installed and a 5-tuple RSS hash over the enabled queues otherwise.
// Because the hardware enforces flow affinity, the replicas never need to
// talk to each other.
//
// The driver is a normal isolated process (the paper runs exactly one; §3.5
// argues a single core suffices for 10G). It moves packets between NIC
// queues and replica processes and accounts its cycles in the categories of
// the paper's Table 2: useful processing, polling, and kernel
// suspend/resume time.
package nicdev

import (
	"fmt"
	"sync"

	"neat/internal/bufpool"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/wire"
)

// RX frames are delivered by the driver to the replica owning the frame's
// queue as bare *proto.Frame messages, with Frame.RxQueue stamped by the
// driver. The NIC pre-decodes the frame (hardware parses headers anyway for
// classification); replicas charge their own protocol-processing cycles.

// TxFrame asks the driver to transmit a fully serialized frame. Hot paths
// send the pooled pointer form (NewTxFrame); the driver recycles the box
// after transmitting. The value form also works, for hand-built test
// traffic.
type TxFrame struct {
	Raw []byte
}

// txFramePool and txTSOPool recycle TX request boxes. They are sync.Pools
// (not per-NIC freelists) because parallel experiment sweeps run many
// simulators at once; within one simulator a box has exactly one owner at a
// time, handed from the sending replica to the driver.
var (
	txFramePool = sync.Pool{New: func() any { return new(TxFrame) }}
	txTSOPool   = sync.Pool{New: func() any { return new(TxTSO) }}
)

// NewTxFrame returns a pooled TX request carrying raw. Ownership of the box
// passes to the driver with the send; the driver returns it to the pool
// after posting the frame.
func NewTxFrame(raw []byte) *TxFrame {
	m := txFramePool.Get().(*TxFrame)
	m.Raw = raw
	return m
}

// NewTxTSO returns a pooled TSO request. Ownership follows NewTxFrame.
func NewTxTSO(t TxTSO) *TxTSO {
	m := txTSOPool.Get().(*TxTSO)
	*m = t
	return m
}

// TxTSO asks the driver to transmit a large TCP send using TCP segmentation
// offload: the NIC slices Payload into MSS-sized segments, cloning the
// prototype headers and advancing sequence numbers in hardware. This is the
// feature that lets small configurations saturate 10 Gb/s in §6 with large
// files.
type TxTSO struct {
	Eth     proto.EthernetHeader
	IP      proto.IPv4Header
	TCP     proto.TCPHeader
	Payload []byte
	MSS     int
}

// DefaultQueueDepth is the per-RX-queue capacity in frames; overflow is
// dropped by the hardware, as on a real NIC under overload.
const DefaultQueueDepth = 512

// NICStats counts NIC-level events.
type NICStats struct {
	RxFrames       uint64
	RxDropFull     uint64 // RX queue overflow drops
	RxDropBad      uint64 // undecodable frames
	RxDropNoRSS    uint64 // unmatched flows dropped while the RSS set is empty
	RxFiltered     uint64 // frames steered by an exact filter
	RxHashed       uint64 // frames steered by RSS
	TxFrames       uint64
	TSORequests    uint64
	TSOSegments    uint64
	TrackHits      uint64
	TrackInserts   uint64
	TrackEvictions uint64
	IRQDeferred    uint64 // interrupts held back by the moderation window
}

// RSSPolicy steers unpinned flows to a queue: the software-programmable
// half of the RSS indirection. QueueFor maps a flow hash to the RX queue
// that should own it, or -1 to drop (no queue can accept new flows). The
// flow-placement plane (internal/steer) provides implementations; when no
// policy is installed the NIC falls back to its built-in
// rssQueues[hash%len] indirection table.
type RSSPolicy interface {
	QueueFor(hash uint32) int
}

// NIC is the device model. It is not a process: it is hardware that reacts
// to wire deliveries and driver register writes instantly (plus a small
// fixed pipeline latency).
type NIC struct {
	sim  *sim.Simulator
	port wire.Endpoint

	Name string
	MAC  proto.MAC

	// PipelineLatency is the RX classification + DMA latency.
	PipelineLatency sim.Time

	queues []rxQueue
	// rxqHop holds one fixed trace-hop name per RX queue so the traced
	// path allocates no strings per frame.
	rxqHop     []string
	filters    map[proto.Flow]int
	rssQueues  []int // queues participating in RSS for unmatched flows
	rssView    []int // cached copy handed out by RSSQueues
	rssPolicy  RSSPolicy
	driver     *Driver
	intrArmed  bool
	queueDepth int

	// Per-queue IRQ mode (Linux-baseline softirq model; see irq.go).
	irqTargets []*sim.Proc
	irqArmed   []bool
	// irqMsgs holds one pre-boxed QueueIRQ per queue so a delivery never
	// allocates; irqNext is the per-vector moderation horizon.
	irqMsgs []sim.Message
	irqNext []sim.Time
	// irqWindow is the interrupt-moderation window (0 = off); drvNext is
	// the driver vector's moderation horizon.
	irqWindow sim.Time
	drvNext   sim.Time

	// Hardware flow tracking (§4 extension; see EnableFlowTracking).
	// trackOrder is a FIFO of live flows; trackHead indexes its logical
	// front and the dead prefix is compacted away periodically.
	trackMax   int
	tracked    map[proto.Flow]int
	trackOrder []proto.Flow
	trackHead  int

	stats NICStats
}

type rxQueue struct {
	frames []*proto.Frame
	// spare is the previously drained slice, recycled at the next drain so
	// steady-state enqueueing never reallocates.
	spare []*proto.Frame
	// at/spareAt are hardware-enqueue stamps parallel to frames/spare,
	// populated only while a tracer is installed and recycled the same way.
	at      []sim.Time
	spareAt []sim.Time
}

// NewNIC creates a NIC with n RX/TX queue pairs attached to the given link
// side. Initially all queues participate in RSS. It is the historical
// point-to-point constructor, kept as a thin wrapper over NewNICAt.
func NewNIC(s *sim.Simulator, name string, mac proto.MAC, l *wire.Link, side int, nQueues int) *NIC {
	return NewNICAt(s, name, mac, l.End(side), nQueues)
}

// NewNICAt creates a NIC attached to a named wire endpoint — one side of a
// point-to-point link or the machine-facing side of a switch access link.
// The NIC does not care which: the endpoint is its port.
func NewNICAt(s *sim.Simulator, name string, mac proto.MAC, port wire.Endpoint, nQueues int) *NIC {
	n := &NIC{
		sim:             s,
		port:            port,
		Name:            name,
		MAC:             mac,
		PipelineLatency: 500 * sim.Nanosecond,
		queues:          make([]rxQueue, nQueues),
		filters:         make(map[proto.Flow]int),
		queueDepth:      DefaultQueueDepth,
		intrArmed:       true,
	}
	for q := 0; q < nQueues; q++ {
		n.rssQueues = append(n.rssQueues, q)
		n.rxqHop = append(n.rxqHop, fmt.Sprintf("%s.rxq%d", name, q))
	}
	port.Attach(n)
	return n
}

// bindDomain moves the NIC into the scheduling domain of the machine that
// hosts it: all its timers and deliveries land on ds, and the link endpoint
// is bound so cross-domain links switch to mailbox delivery. In the default
// sequential mode ds is the constructing simulator and nothing changes.
func (n *NIC) bindDomain(ds *sim.Simulator) {
	n.sim = ds
	n.port.Bind(ds)
}

// NumQueues returns the number of RX/TX queue pairs.
func (n *NIC) NumQueues() int { return len(n.queues) }

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() NICStats { return n.stats }

// InstallFilter steers all packets of flow (as seen inbound) to queue q.
// Mirrors the i82599 flow-director perfect filters (§4).
func (n *NIC) InstallFilter(flow proto.Flow, q int) error {
	if q < 0 || q >= len(n.queues) {
		return fmt.Errorf("nicdev: queue %d out of range", q)
	}
	n.filters[flow] = q
	return nil
}

// RemoveFilter deletes the exact-match filter for flow.
func (n *NIC) RemoveFilter(flow proto.Flow) { delete(n.filters, flow) }

// NumFilters returns the number of installed exact-match filters.
func (n *NIC) NumFilters() int { return len(n.filters) }

// SetRSSQueues restricts RSS steering of unmatched flows to the given
// queues. NEaT uses this for lazy termination (§3.4): a replica in
// termination state is removed from RSS so it receives no new connections,
// while its exact-match filters keep serving existing ones.
//
// An empty set is the explicit drop-all state: with no replica able to
// accept new connections (all quarantined or terminating), unmatched flows
// are dropped in hardware (counted as RxDropNoRSS) instead of being hashed
// onto a dead queue. Exact-match filters keep steering existing flows.
func (n *NIC) SetRSSQueues(queues []int) error {
	for _, q := range queues {
		if q < 0 || q >= len(n.queues) {
			return fmt.Errorf("nicdev: queue %d out of range", q)
		}
	}
	n.rssQueues = append([]int(nil), queues...)
	n.rssView = nil
	return nil
}

// RSSQueues returns the queues currently participating in RSS. The slice
// is cached between SetRSSQueues calls; callers must not modify it.
func (n *NIC) RSSQueues() []int {
	if n.rssView == nil {
		n.rssView = append([]int(nil), n.rssQueues...)
	}
	return n.rssView
}

// SetRSSPolicy delegates unpinned-flow steering to a placement policy
// (the flow-placement plane). With a policy installed the built-in
// rssQueues indirection is bypassed; exact-match filters and the hardware
// tracking table still take precedence over the policy, exactly as they
// do over RSS. nil restores the built-in indirection.
func (n *NIC) SetRSSPolicy(p RSSPolicy) { n.rssPolicy = p }

// Receive implements wire.Port: hardware classification and enqueue. The
// NIC takes ownership of raw; it travels inside the decoded frame until
// the terminal consumer releases it.
func (n *NIC) Receive(raw []byte) {
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		n.stats.RxDropBad++
		bufpool.Put(raw)
		return
	}
	n.stats.RxFrames++
	q := n.classify(f)
	if q < 0 {
		n.stats.RxDropNoRSS++
		f.Release()
		return
	}
	if len(n.queues[q].frames) >= n.queueDepth {
		n.stats.RxDropFull++
		f.Release()
		return
	}
	n.queues[q].frames = append(n.queues[q].frames, f)
	if n.sim.Tracer() != nil {
		n.queues[q].at = append(n.queues[q].at, n.sim.Now())
	}
	if n.notifyQueue(q) {
		return
	}
	if n.driver != nil && n.intrArmed {
		n.intrArmed = false
		n.raiseDriverIRQ(n.sim.Now()+n.PipelineLatency, false)
	}
}

// classify picks the RX queue for a decoded frame: exact filter first, then
// RSS hash over the enabled queues; non-flow traffic (ARP) goes to queue 0.
// Returns -1 when the flow is unmatched and the RSS set is empty (drop-all).
func (n *NIC) classify(f *proto.Frame) int {
	flow, ok := f.Flow()
	if !ok {
		return 0
	}
	if q, hit := n.filters[flow]; hit {
		n.stats.RxFiltered++
		return q
	}
	if q, hit := n.tracked[flow]; hit {
		n.stats.TrackHits++
		return q
	}
	if n.rssPolicy != nil {
		q := n.rssPolicy.QueueFor(flow.Hash())
		if q < 0 {
			return -1
		}
		n.stats.RxHashed++
		n.trackFlow(flow, q)
		return q
	}
	if len(n.rssQueues) == 0 {
		return -1
	}
	n.stats.RxHashed++
	q := n.rssQueues[int(flow.Hash())%len(n.rssQueues)]
	n.trackFlow(flow, q)
	return q
}

// Transmit puts a serialized frame on the wire.
func (n *NIC) Transmit(raw []byte) {
	n.stats.TxFrames++
	n.port.Transmit(raw)
}

// SendTSO performs TCP segmentation offload in "hardware": the payload is
// cut into MSS-sized segments, each with cloned headers, adjusted sequence
// numbers and recomputed checksums. Only the last segment carries PSH/FIN.
func (n *NIC) SendTSO(t TxTSO) {
	n.stats.TSORequests++
	mss := t.MSS
	if mss <= 0 {
		mss = 1460
	}
	payload := t.Payload
	seq := t.TCP.Seq
	finalFlags := t.TCP.Flags
	for first := true; first || len(payload) > 0; first = false {
		seg := payload
		if len(seg) > mss {
			seg = seg[:mss]
		}
		payload = payload[len(seg):]
		tcp := t.TCP
		tcp.Seq = seq
		if len(payload) > 0 {
			tcp.Flags = finalFlags &^ (proto.TCPPsh | proto.TCPFin)
		} else {
			tcp.Flags = finalFlags
		}
		ip := t.IP
		raw := proto.AppendTCP(bufpool.Get(proto.WireSizeTCP(&tcp, len(seg)))[:0], t.Eth, ip, tcp, seg)
		n.stats.TSOSegments++
		n.Transmit(raw)
		seq += uint32(len(seg))
		if len(payload) == 0 {
			break
		}
	}
}

// drainRxStamps rotates queue q's hardware-enqueue stamp buffers after a
// drain of `drained` frames and, when a tracer is installed, emits one
// RX-queue span per drained frame (queueing = residency in the hardware
// queue; the driver's per-frame cycles are charged to the driver hop).
// A stamp count that does not match the drain (tracer installed or
// removed mid-run) skips emission and resynchronizes the buffers.
func (n *NIC) drainRxStamps(q int, drained int) {
	qu := &n.queues[q]
	at := qu.at
	qu.at = qu.spareAt[:0]
	qu.spareAt = at[:0]
	tr := n.sim.Tracer()
	if tr == nil || len(at) != drained {
		return
	}
	now := n.sim.Now()
	for _, t0 := range at {
		tr.OnSpan(n.rxqHop[q], now-t0, 0)
	}
}

// pendingQueues reports which queues currently hold frames.
func (n *NIC) pendingQueues() bool {
	for i := range n.queues {
		if len(n.queues[i].frames) > 0 {
			return true
		}
	}
	return false
}

// rearm re-enables the RX notification after the driver drained the queues,
// re-firing immediately if frames arrived during the drain (NAPI style).
func (n *NIC) rearm() {
	n.intrArmed = true
	if n.driver != nil && n.pendingQueues() {
		n.intrArmed = false
		n.raiseDriverIRQ(n.sim.Now(), true)
	}
}

// ---- Flow tracking (§4's proposed NIC extension) ----
//
// The paper argues that instead of software frequently updating exact
// filters, the NIC itself should create "tracking" filters from the
// packets it handles, guaranteeing that all packets of a flow follow the
// same route even when the RSS indirection changes. Contemporary hardware
// lacks this; NEaT compensates with driver-managed filters. This model
// implements the proposed extension so the two designs can be compared.

// EnableFlowTracking turns on hardware flow tracking with a bounded table
// of max entries (0 disables). New flows are pinned to the queue RSS
// first assigns them; when the table is full the oldest entry is evicted
// (its flow falls back to RSS).
func (n *NIC) EnableFlowTracking(max int) {
	n.trackMax = max
	if max == 0 {
		n.tracked = nil
		n.trackOrder = nil
		return
	}
	n.tracked = make(map[proto.Flow]int, max)
	n.trackOrder = n.trackOrder[:0]
	n.trackHead = 0
}

// NumTrackedFlows returns the hardware tracking table occupancy.
func (n *NIC) NumTrackedFlows() int { return len(n.tracked) }

// trackFlow records a flow→queue pinning, evicting the oldest when full.
func (n *NIC) trackFlow(flow proto.Flow, q int) {
	if n.trackMax == 0 {
		return
	}
	if len(n.tracked) >= n.trackMax {
		oldest := n.trackOrder[n.trackHead]
		n.trackHead++
		delete(n.tracked, oldest)
		n.stats.TrackEvictions++
		// Compact the evicted prefix once it dominates the slice, keeping
		// memory bounded by the table size instead of the eviction count.
		if n.trackHead*2 >= len(n.trackOrder) {
			n.trackOrder = n.trackOrder[:copy(n.trackOrder, n.trackOrder[n.trackHead:])]
			n.trackHead = 0
		}
	}
	n.tracked[flow] = q
	n.trackOrder = append(n.trackOrder, flow)
	n.stats.TrackInserts++
}
