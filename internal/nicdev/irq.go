package nicdev

import (
	"neat/internal/proto"
	"neat/internal/sim"
)

// Per-queue IRQ mode. The monolithic baseline (Linux model) has no
// dedicated driver process: each RX queue raises an interrupt on the core
// its IRQ affinity names, and that core's kernel context drains the queue
// in softirq context. NEaT never uses this mode — its queues all flow
// through the single driver process.
//
// Interrupt moderation (SetIRQCoalesce) applies to both modes: with a
// non-zero window, a vector that has just fired holds further interrupts
// back until the window elapses, so a burst of frames raises one wakeup
// and the drain handles the whole burst. The deferred refire re-checks the
// queue: if the drain already emptied it the vector simply re-arms. The
// default window of zero preserves the exact legacy interrupt timing.

// QueueIRQ is the message a NIC in per-queue IRQ mode delivers to the
// bound kernel context when queue Q becomes non-empty.
type QueueIRQ struct{ Queue int }

// tagDriverIRQ is the OnEvent tag of the driver-vector refire; queue q's
// refire uses tag 1+q.
const tagDriverIRQ = 0

// SetQueueIRQTarget routes queue q's interrupt to the given process and
// switches the NIC to per-queue IRQ mode for that queue. Pass nil to mask
// the queue.
func (n *NIC) SetQueueIRQTarget(q int, p *sim.Proc) {
	if n.irqTargets == nil {
		n.irqTargets = make([]*sim.Proc, len(n.queues))
		n.irqArmed = make([]bool, len(n.queues))
		n.irqMsgs = make([]sim.Message, len(n.queues))
		n.irqNext = make([]sim.Time, len(n.queues))
		for i := range n.irqArmed {
			n.irqArmed[i] = true
			// Box each queue's interrupt message once; every delivery of
			// queue i reuses the same boxed value.
			n.irqMsgs[i] = QueueIRQ{Queue: i}
		}
	}
	n.irqTargets[q] = p
}

// SetIRQCoalesce sets the interrupt-moderation window for every vector of
// this NIC, in the style of the i82599's interrupt throttle register: after
// a vector fires, its next interrupt is held back until window has elapsed,
// and the deferred refire is dropped entirely if the queues were drained in
// the meantime. Zero (the default) disables moderation and preserves the
// exact un-moderated interrupt timing.
func (n *NIC) SetIRQCoalesce(window sim.Time) { n.irqWindow = window }

// DrainQueue removes and returns all frames pending on queue q (the
// kernel context reads the descriptor ring directly). The returned slice
// is only valid until the next DrainQueue of the same queue: the two
// backing slices rotate so steady-state draining never reallocates.
func (n *NIC) DrainQueue(q int) []*proto.Frame {
	qu := &n.queues[q]
	frames := qu.frames
	qu.frames = qu.spare[:0]
	qu.spare = frames[:0]
	n.drainRxStamps(q, len(frames))
	return frames
}

// RearmQueueIRQ re-enables queue q's interrupt after a drain, re-firing
// immediately if frames arrived meanwhile (NAPI semantics).
func (n *NIC) RearmQueueIRQ(q int) {
	if n.irqArmed == nil {
		return
	}
	n.irqArmed[q] = true
	if len(n.queues[q].frames) > 0 && n.irqTargets[q] != nil {
		n.irqArmed[q] = false
		n.raiseQueueIRQ(q, n.sim.Now(), true)
	}
}

// notifyQueue fires the per-queue interrupt if the mode is enabled;
// reports whether per-queue mode consumed the notification.
func (n *NIC) notifyQueue(q int) bool {
	if n.irqTargets == nil {
		return false
	}
	if n.irqTargets[q] != nil && n.irqArmed[q] {
		n.irqArmed[q] = false
		n.raiseQueueIRQ(q, n.sim.Now()+n.PipelineLatency, false)
	}
	return true
}

// raiseQueueIRQ delivers queue q's interrupt at time at — or, when the
// moderation window has not yet elapsed, schedules a refire for when it
// has. The vector stays masked (irqArmed false) either way until the
// drain's rearm.
func (n *NIC) raiseQueueIRQ(q int, at sim.Time, immediate bool) {
	if n.irqWindow > 0 {
		if hold := n.irqNext[q]; at < hold {
			n.stats.IRQDeferred++
			n.sim.AtEvent(hold, n, uint64(1+q))
			return
		}
		n.irqNext[q] = at + n.irqWindow
	}
	if immediate {
		n.irqTargets[q].Deliver(n.irqMsgs[q])
	} else {
		n.sim.DeliverAt(at, n.irqTargets[q], n.irqMsgs[q])
	}
}

// raiseDriverIRQ is the driver-mode counterpart of raiseQueueIRQ: one
// RX notification for all queues, moderated by the same window.
func (n *NIC) raiseDriverIRQ(at sim.Time, immediate bool) {
	if n.irqWindow > 0 {
		if hold := n.drvNext; at < hold {
			n.stats.IRQDeferred++
			n.sim.AtEvent(hold, n, tagDriverIRQ)
			return
		}
		n.drvNext = at + n.irqWindow
	}
	if immediate {
		n.driver.proc.Deliver(rxReady{})
	} else {
		n.sim.DeliverAt(at, n.driver.proc, rxReady{})
	}
}

// OnEvent implements sim.EventHandler: a moderated vector's deferred
// refire. If frames are still pending the interrupt fires now (opening the
// next moderation window); if the consumer drained them in the meantime
// the vector just re-arms and the wakeup is saved entirely.
func (n *NIC) OnEvent(tag uint64) {
	if tag == tagDriverIRQ {
		if n.driver != nil && n.pendingQueues() {
			n.drvNext = n.sim.Now() + n.irqWindow
			n.driver.proc.Deliver(rxReady{})
			return
		}
		n.intrArmed = true
		return
	}
	q := int(tag - 1)
	if len(n.queues[q].frames) > 0 && n.irqTargets[q] != nil {
		n.irqNext[q] = n.sim.Now() + n.irqWindow
		n.irqTargets[q].Deliver(n.irqMsgs[q])
		return
	}
	n.irqArmed[q] = true
}
