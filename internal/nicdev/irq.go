package nicdev

import (
	"neat/internal/proto"
	"neat/internal/sim"
)

// Per-queue IRQ mode. The monolithic baseline (Linux model) has no
// dedicated driver process: each RX queue raises an interrupt on the core
// its IRQ affinity names, and that core's kernel context drains the queue
// in softirq context. NEaT never uses this mode — its queues all flow
// through the single driver process.

// QueueIRQ is the message a NIC in per-queue IRQ mode delivers to the
// bound kernel context when queue Q becomes non-empty.
type QueueIRQ struct{ Queue int }

// SetQueueIRQTarget routes queue q's interrupt to the given process and
// switches the NIC to per-queue IRQ mode for that queue. Pass nil to mask
// the queue.
func (n *NIC) SetQueueIRQTarget(q int, p *sim.Proc) {
	if n.irqTargets == nil {
		n.irqTargets = make([]*sim.Proc, len(n.queues))
		n.irqArmed = make([]bool, len(n.queues))
		for i := range n.irqArmed {
			n.irqArmed[i] = true
		}
	}
	n.irqTargets[q] = p
}

// DrainQueue removes and returns all frames pending on queue q (the
// kernel context reads the descriptor ring directly). The returned slice
// is only valid until the next DrainQueue of the same queue: the two
// backing slices rotate so steady-state draining never reallocates.
func (n *NIC) DrainQueue(q int) []*proto.Frame {
	qu := &n.queues[q]
	frames := qu.frames
	qu.frames = qu.spare[:0]
	qu.spare = frames[:0]
	n.drainRxStamps(q, len(frames))
	return frames
}

// RearmQueueIRQ re-enables queue q's interrupt after a drain, re-firing
// immediately if frames arrived meanwhile (NAPI semantics).
func (n *NIC) RearmQueueIRQ(q int) {
	if n.irqArmed == nil {
		return
	}
	n.irqArmed[q] = true
	if len(n.queues[q].frames) > 0 && n.irqTargets[q] != nil {
		n.irqArmed[q] = false
		n.irqTargets[q].Deliver(QueueIRQ{Queue: q})
	}
}

// notifyQueue fires the per-queue interrupt if the mode is enabled;
// reports whether per-queue mode consumed the notification.
func (n *NIC) notifyQueue(q int) bool {
	if n.irqTargets == nil {
		return false
	}
	if n.irqTargets[q] != nil && n.irqArmed[q] {
		n.irqArmed[q] = false
		n.sim.DeliverAt(n.sim.Now()+n.PipelineLatency, n.irqTargets[q], QueueIRQ{Queue: q})
	}
	return true
}
