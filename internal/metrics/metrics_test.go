package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neat/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 45*sim.Microsecond || mean > 56*sim.Microsecond {
		t.Fatalf("mean=%v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*sim.Microsecond || p50 > 80*sim.Microsecond {
		t.Fatalf("p50=%v", p50)
	}
	if h.Quantile(1.0) != h.Max() && h.Quantile(1.0) > h.Max() {
		t.Fatalf("p100=%v > max=%v", h.Quantile(1.0), h.Max())
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Observe(sim.Time(rng.Intn(1_000_000_000) + 1))
		}
		last := sim.Time(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Quantile(1.0) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileResolution(t *testing.T) {
	// Samples at a single value: every quantile lands within one bucket
	// (≈√2 resolution) of it.
	var h Histogram
	v := 3 * sim.Millisecond
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	got := h.Quantile(0.5)
	if got < v/2 || got > v*2 {
		t.Fatalf("p50=%v for constant %v", got, v)
	}
}

func TestRates(t *testing.T) {
	if r := Rate(500, sim.Second); r != 500 {
		t.Fatalf("rate=%v", r)
	}
	if r := KRate(500_000, sim.Second); r != 500 {
		t.Fatalf("krate=%v", r)
	}
	if Rate(5, 0) != 0 {
		t.Fatal("zero window")
	}
}

func TestCPUSampler(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 2, 1, 1_000_000_000)
	busy := sim.NewProc(m.Thread(0, 0), "busy", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(1000)
		ctx.TimerAfter(1000, "again") // 50% duty cycle
	}), sim.ProcConfig{})
	sampler := NewCPUSampler(m)
	busy.Deliver("go")
	s.RunFor(sim.Millisecond)
	u := sampler.Utilization()
	if len(u) != 2 {
		t.Fatalf("threads=%d", len(u))
	}
	if u[0] < 0.4 || u[0] > 0.6 {
		t.Fatalf("busy thread utilization=%v", u[0])
	}
	if u[1] != 0 {
		t.Fatalf("idle thread utilization=%v", u[1])
	}
	if sampler.MaxUtilization() != u[0] {
		t.Fatal("max != busiest")
	}
}

func TestBucketMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		d1, d2 := sim.Time(a), sim.Time(b)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return bucketFor(d1) <= bucketFor(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty histogram Quantile(%v)=%v, want 0", q, got)
			}
		}
	})
	t.Run("q0-and-q1-are-exact", func(t *testing.T) {
		var h Histogram
		for _, v := range []sim.Time{7 * sim.Microsecond, 3 * sim.Millisecond, 250 * sim.Microsecond} {
			h.Observe(v)
		}
		if got := h.Quantile(0); got != 7*sim.Microsecond {
			t.Fatalf("Quantile(0)=%v, want exact min %v", got, 7*sim.Microsecond)
		}
		if got := h.Quantile(-0.5); got != h.Min() {
			t.Fatalf("Quantile(-0.5)=%v, want min", got)
		}
		if got := h.Quantile(1); got != 3*sim.Millisecond {
			t.Fatalf("Quantile(1)=%v, want exact max %v", got, 3*sim.Millisecond)
		}
		if got := h.Quantile(1.5); got != h.Max() {
			t.Fatalf("Quantile(1.5)=%v, want max", got)
		}
	})
	t.Run("single-sample-stays-in-range", func(t *testing.T) {
		var h Histogram
		h.Observe(5 * sim.Microsecond)
		for _, q := range []float64{0.01, 0.5, 0.99} {
			got := h.Quantile(q)
			if got != 5*sim.Microsecond {
				t.Fatalf("Quantile(%v)=%v, want the only sample %v", q, got, 5*sim.Microsecond)
			}
		}
	})
	t.Run("single-bucket-clamps-to-observed", func(t *testing.T) {
		// All samples in one bucket but not equal: estimates must stay
		// inside [min, max], not report the bucket's upper bound.
		var h Histogram
		h.Observe(1000 * sim.Microsecond)
		h.Observe(1100 * sim.Microsecond)
		h.Observe(1300 * sim.Microsecond)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			got := h.Quantile(q)
			if got < h.Min() || got > h.Max() {
				t.Fatalf("Quantile(%v)=%v outside [%v, %v]", q, got, h.Min(), h.Max())
			}
		}
	})
	t.Run("sub-microsecond", func(t *testing.T) {
		var h Histogram
		h.Observe(10)
		h.Observe(20)
		for _, q := range []float64{0.5, 0.99} {
			if got := h.Quantile(q); got < 10 || got > 20 {
				t.Fatalf("Quantile(%v)=%v outside observed [10ns, 20ns]", q, got)
			}
		}
	})
}

func TestHistogramMergeAssociative(t *testing.T) {
	// Merge must be associative and the identity must hold: (a∪b)∪c equals
	// a∪(b∪c) equals observing everything into one histogram, and merging
	// an empty histogram changes nothing.
	cases := []struct {
		name    string
		a, b, c []sim.Time
	}{
		{"all-empty", nil, nil, nil},
		{"left-empty", nil, []sim.Time{sim.Microsecond}, []sim.Time{sim.Millisecond}},
		{"middle-empty", []sim.Time{5 * sim.Microsecond}, nil, []sim.Time{9 * sim.Second}},
		{"disjoint-ranges", []sim.Time{1, 2, 3}, []sim.Time{sim.Millisecond}, []sim.Time{sim.Second, 2 * sim.Second}},
		{"overlapping", []sim.Time{10 * sim.Microsecond, 20 * sim.Microsecond},
			[]sim.Time{15 * sim.Microsecond}, []sim.Time{12 * sim.Microsecond, 18 * sim.Microsecond}},
		{"identical", []sim.Time{sim.Millisecond}, []sim.Time{sim.Millisecond}, []sim.Time{sim.Millisecond}},
	}
	fill := func(vs []sim.Time) *Histogram {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
		}
		return &h
	}
	same := func(x, y *Histogram) bool {
		return x.Count() == y.Count() && x.Min() == y.Min() && x.Max() == y.Max() &&
			x.Mean() == y.Mean() && x.Quantile(0.5) == y.Quantile(0.5) &&
			x.Quantile(0.99) == y.Quantile(0.99)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			left := fill(tc.a) // (a ∪ b) ∪ c
			left.Merge(fill(tc.b))
			left.Merge(fill(tc.c))
			bc := fill(tc.b) // a ∪ (b ∪ c)
			bc.Merge(fill(tc.c))
			right := fill(tc.a)
			right.Merge(bc)
			all := fill(append(append(append([]sim.Time(nil), tc.a...), tc.b...), tc.c...))
			if !same(left, right) {
				t.Fatalf("(a∪b)∪c = %v, a∪(b∪c) = %v", left, right)
			}
			if !same(left, all) {
				t.Fatalf("merged = %v, direct = %v", left, all)
			}
			id := fill(tc.a)
			id.Merge(&Histogram{})
			if !same(id, fill(tc.a)) {
				t.Fatalf("merging empty changed %v", id)
			}
		})
	}
}

func TestHistogramMergeProperty(t *testing.T) {
	// Property: merging two histograms preserves count, sum-of-means, min
	// and max.
	f := func(xs, ys []uint32) bool {
		var a, b, all Histogram
		for _, x := range xs {
			a.Observe(sim.Time(x) + 1)
			all.Observe(sim.Time(x) + 1)
		}
		for _, y := range ys {
			b.Observe(sim.Time(y) + 1)
			all.Observe(sim.Time(y) + 1)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if a.Count() == 0 {
			return true
		}
		return a.Min() == all.Min() && a.Max() == all.Max() && a.Mean() == all.Mean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
