package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neat/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 45*sim.Microsecond || mean > 56*sim.Microsecond {
		t.Fatalf("mean=%v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*sim.Microsecond || p50 > 80*sim.Microsecond {
		t.Fatalf("p50=%v", p50)
	}
	if h.Quantile(1.0) != h.Max() && h.Quantile(1.0) > h.Max() {
		t.Fatalf("p100=%v > max=%v", h.Quantile(1.0), h.Max())
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Observe(sim.Time(rng.Intn(1_000_000_000) + 1))
		}
		last := sim.Time(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Quantile(1.0) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileResolution(t *testing.T) {
	// Samples at a single value: every quantile lands within one bucket
	// (≈√2 resolution) of it.
	var h Histogram
	v := 3 * sim.Millisecond
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	got := h.Quantile(0.5)
	if got < v/2 || got > v*2 {
		t.Fatalf("p50=%v for constant %v", got, v)
	}
}

func TestRates(t *testing.T) {
	if r := Rate(500, sim.Second); r != 500 {
		t.Fatalf("rate=%v", r)
	}
	if r := KRate(500_000, sim.Second); r != 500 {
		t.Fatalf("krate=%v", r)
	}
	if Rate(5, 0) != 0 {
		t.Fatal("zero window")
	}
}

func TestCPUSampler(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "m", 2, 1, 1_000_000_000)
	busy := sim.NewProc(m.Thread(0, 0), "busy", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(1000)
		ctx.TimerAfter(1000, "again") // 50% duty cycle
	}), sim.ProcConfig{})
	sampler := NewCPUSampler(m)
	busy.Deliver("go")
	s.RunFor(sim.Millisecond)
	u := sampler.Utilization()
	if len(u) != 2 {
		t.Fatalf("threads=%d", len(u))
	}
	if u[0] < 0.4 || u[0] > 0.6 {
		t.Fatalf("busy thread utilization=%v", u[0])
	}
	if u[1] != 0 {
		t.Fatalf("idle thread utilization=%v", u[1])
	}
	if sampler.MaxUtilization() != u[0] {
		t.Fatal("max != busiest")
	}
}

func TestBucketMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		d1, d2 := sim.Time(a), sim.Time(b)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return bucketFor(d1) <= bucketFor(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeProperty(t *testing.T) {
	// Property: merging two histograms preserves count, sum-of-means, min
	// and max.
	f := func(xs, ys []uint32) bool {
		var a, b, all Histogram
		for _, x := range xs {
			a.Observe(sim.Time(x) + 1)
			all.Observe(sim.Time(x) + 1)
		}
		for _, y := range ys {
			b.Observe(sim.Time(y) + 1)
			all.Observe(sim.Time(y) + 1)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if a.Count() == 0 {
			return true
		}
		return a.Min() == all.Min() && a.Max() == all.Max() && a.Mean() == all.Mean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
