// Package metrics provides the measurement primitives of the experiment
// harness: latency histograms with percentile estimation, windowed rate
// counters, and CPU utilization sampling over the simulated machines —
// the moral equivalent of httperf's reports and the statistical profiler
// used for the paper's Table 2.
package metrics

import (
	"fmt"
	"math"

	"neat/internal/sim"
)

// Histogram is a log-bucketed latency histogram (nanoseconds). Buckets
// grow by ~2x from 1 µs to ~17 s, giving better than 2x resolution for
// percentiles, plus exact min/max/mean.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     float64
	min     sim.Time
	max     sim.Time
}

const numBuckets = 48

// bucketFor maps a duration to a bucket with half-power-of-two resolution.
func bucketFor(d sim.Time) int {
	if d < sim.Microsecond {
		return 0
	}
	us := float64(d) / float64(sim.Microsecond)
	b := int(2 * math.Log2(us))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketUpper returns the representative upper value of bucket b.
func bucketUpper(b int) sim.Time {
	return sim.Time(float64(sim.Microsecond) * math.Pow(2, float64(b+1)/2))
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Time) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += float64(d)
	h.buckets[bucketFor(d)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.count))
}

// Min returns the smallest sample.
func (h *Histogram) Min() sim.Time { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile estimates the q-quantile. Out-of-range q values clamp to the
// exact extremes: q <= 0 returns Min and q >= 1 returns Max (both exact,
// not bucket estimates). An empty histogram returns 0 for any q. Bucket
// estimates are clamped into [Min, Max], so a single-sample or
// single-bucket histogram never reports a value outside its observed
// range.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < numBuckets; b++ {
		cum += h.buckets[b]
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// CPUSampler captures per-hardware-thread utilization over a window.
type CPUSampler struct {
	machine *sim.Machine
	start   sim.Time
	busy0   []sim.Time
}

// NewCPUSampler starts sampling machine utilization now.
func NewCPUSampler(m *sim.Machine) *CPUSampler {
	s := &CPUSampler{machine: m, start: m.Sim().Now()}
	for _, t := range m.Threads() {
		s.busy0 = append(s.busy0, t.BusyTotal())
	}
	return s
}

// Utilization returns per-thread utilization [0,1] since the sampler
// started, in core-major order.
func (s *CPUSampler) Utilization() []float64 {
	now := s.machine.Sim().Now()
	out := make([]float64, 0, len(s.busy0))
	for i, t := range s.machine.Threads() {
		out = append(out, sim.Utilization(s.busy0[i], t.BusyTotal(), s.start, now))
	}
	return out
}

// MaxUtilization returns the busiest thread's utilization.
func (s *CPUSampler) MaxUtilization() float64 {
	m := 0.0
	for _, u := range s.Utilization() {
		if u > m {
			m = u
		}
	}
	return m
}

// Rate converts a count over a simulated window to events/second.
func Rate(count uint64, window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// KRate is Rate scaled to kilo-events/second (the paper reports krps).
func KRate(count uint64, window sim.Time) float64 {
	return Rate(count, window) / 1000
}
