package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is the central instrument store of the observability layer:
// named counters, gauges and histograms, created on first use and
// enumerated in deterministic (sorted) order. One registry describes one
// measured system; experiment beds merge several (server plane, client
// plane, load generators) under distinct name prefixes.
//
// A Registry is not synchronized: like the simulator it describes, it is
// single-threaded. Parallel experiment sweeps give every sweep point its
// own registry, which is what keeps concurrent runs byte-identical to
// sequential ones.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter is a monotonically increasing named count.
type Counter struct{ v uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Set overwrites the counter (used by pull-style collection, where the
// registry mirrors live counters owned by the components themselves).
func (c *Counter) Set(v uint64) { c.v = v }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a named instantaneous value.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetCounter is shorthand for Counter(name).Set(v).
func (r *Registry) SetCounter(name string, v uint64) { r.Counter(name).Set(v) }

// SetGauge is shorthand for Gauge(name).Set(v).
func (r *Registry) SetGauge(name string, v float64) { r.Gauge(name).Set(v) }

// CounterNames returns all counter names, sorted.
func (r *Registry) CounterNames() []string { return sortedKeysC(r.counters) }

// GaugeNames returns all gauge names, sorted.
func (r *Registry) GaugeNames() []string { return sortedKeysG(r.gauges) }

// HistogramNames returns all histogram names, sorted.
func (r *Registry) HistogramNames() []string { return sortedKeysH(r.hists) }

func sortedKeysC(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysG(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysH(m map[string]*Histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Absorb copies every instrument of other into r under the given name
// prefix, summing counters and merging histograms that already exist.
// It is how an experiment bed assembles one registry out of the server
// system, the client system and the load generators.
func (r *Registry) Absorb(prefix string, other *Registry) {
	for _, name := range other.CounterNames() {
		r.Counter(prefix + name).Add(other.counters[name].Value())
	}
	for _, name := range other.GaugeNames() {
		r.Gauge(prefix + name).Set(other.gauges[name].Value())
	}
	for _, name := range other.HistogramNames() {
		r.Histogram(prefix + name).Merge(other.hists[name])
	}
}

// Filter returns a new registry holding only the instruments whose name
// starts with prefix (e.g. "watchdog." to isolate detector statistics).
// Instruments are copied: mutating the result does not touch r.
func (r *Registry) Filter(prefix string) *Registry {
	out := NewRegistry()
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			out.Counter(name).Set(c.Value())
		}
	}
	for name, g := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			out.Gauge(name).Set(g.Value())
		}
	}
	for name, h := range r.hists {
		if strings.HasPrefix(name, prefix) {
			out.Histogram(name).Merge(h)
		}
	}
	return out
}

// String renders every instrument in sorted order, one per line — the
// deterministic dump format used by tests and the CLIs.
func (r *Registry) String() string {
	var b strings.Builder
	for _, name := range r.CounterNames() {
		fmt.Fprintf(&b, "%-44s %d\n", name, r.counters[name].Value())
	}
	for _, name := range r.GaugeNames() {
		fmt.Fprintf(&b, "%-44s %.3f\n", name, r.gauges[name].Value())
	}
	for _, name := range r.HistogramNames() {
		fmt.Fprintf(&b, "%-44s %s\n", name, r.hists[name].String())
	}
	return b.String()
}
