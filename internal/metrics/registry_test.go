package metrics

import (
	"strings"
	"testing"

	"neat/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if r.Counter("a.b") != c {
		t.Fatal("Counter did not return the existing instrument")
	}
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Fatalf("counter=%d, want 5", got)
	}
	g := r.Gauge("u")
	g.Set(0.75)
	if r.Gauge("u").Value() != 0.75 {
		t.Fatal("gauge lost its value")
	}
	h := r.Histogram("lat")
	h.Observe(sim.Microsecond)
	if r.Histogram("lat").Count() != 1 {
		t.Fatal("histogram lost its sample")
	}
	// Distinct namespaces: the same name may exist in all three kinds.
	r.SetGauge("a.b", 1)
	if r.Counter("a.b").Value() != 5 {
		t.Fatal("gauge clobbered the same-named counter")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n)
		r.Gauge(n)
		r.Histogram(n)
	}
	want := []string{"alpha", "mid", "zeta"}
	for _, got := range [][]string{r.CounterNames(), r.GaugeNames(), r.HistogramNames()} {
		if len(got) != len(want) {
			t.Fatalf("names=%v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("names=%v, want %v", got, want)
			}
		}
	}
}

func TestRegistryAbsorb(t *testing.T) {
	a := NewRegistry()
	a.SetCounter("reqs", 10)
	a.Histogram("lat").Observe(sim.Microsecond)

	b := NewRegistry()
	b.SetCounter("reqs", 32)
	b.SetGauge("util", 0.5)
	b.Histogram("lat").Observe(sim.Millisecond)

	r := NewRegistry()
	r.SetCounter("srv.reqs", 100) // pre-existing: counters sum
	r.Absorb("srv.", a)
	r.Absorb("srv.", b)
	if got := r.Counter("srv.reqs").Value(); got != 142 {
		t.Fatalf("srv.reqs=%d, want 100+10+32", got)
	}
	if got := r.Gauge("srv.util").Value(); got != 0.5 {
		t.Fatalf("srv.util=%v", got)
	}
	h := r.Histogram("srv.lat")
	if h.Count() != 2 || h.Min() != sim.Microsecond || h.Max() != sim.Millisecond {
		t.Fatalf("srv.lat=%v", h)
	}
}

func TestRegistryStringDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.SetCounter("z.last", 3)
		r.SetCounter("a.first", 1)
		r.SetGauge("g", 2.5)
		r.Histogram("h").Observe(5 * sim.Microsecond)
		return r
	}
	s1, s2 := build().String(), build().String()
	if s1 != s2 {
		t.Fatalf("String not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	// Counters first (sorted), then gauges, then histograms.
	lines := strings.Split(strings.TrimRight(s1, "\n"), "\n")
	if len(lines) != 4 ||
		!strings.HasPrefix(lines[0], "a.first") ||
		!strings.HasPrefix(lines[1], "z.last") ||
		!strings.HasPrefix(lines[2], "g") ||
		!strings.HasPrefix(lines[3], "h") {
		t.Fatalf("unexpected dump:\n%s", s1)
	}
}
