// Package report renders experiment results — the tables and figure data
// series of §6 — as aligned text for the harness output and EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"

	"neat/internal/metrics"
	"neat/internal/sim"
)

// Table is a simple aligned-text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row (stringified cells).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Metrics renders a registry as an instrument/value table: counters
// first, then gauges, then histogram summaries, each group in sorted
// name order (the registry's own deterministic enumeration).
func Metrics(title string, r *metrics.Registry) *Table {
	t := &Table{Title: title, Columns: []string{"instrument", "value"}}
	for _, name := range r.CounterNames() {
		t.AddRow(name, r.Counter(name).Value())
	}
	for _, name := range r.GaugeNames() {
		t.AddRow(name, fmt.Sprintf("%.3f", r.Gauge(name).Value()))
	}
	for _, name := range r.HistogramNames() {
		t.AddRow(name, r.Histogram(name).String())
	}
	return t
}

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MaxY returns the peak Y value.
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewSeries creates and registers a series.
func (f *Figure) NewSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as a table of X vs one column per series.
func (f *Figure) String() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	t := Table{Title: fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel)}
	t.Columns = append(t.Columns, f.XLabel)
	for _, s := range f.Series {
		t.Columns = append(t.Columns, s.Label)
	}
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.1f", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	if x >= 1000 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%g", x)
}

// Bytes formats a byte count with adaptive units (file-size axis labels).
func Bytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Topology renders a machine's core/thread → process placement, the
// textual equivalent of the paper's configuration diagrams (Figures 1, 2,
// 3, 6, 8 and 10).
func Topology(m *sim.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d cores × %d threads @ %.2f GHz)\n",
		m.Name, m.NumCores(), m.Core(0).NumThreads(), float64(m.FreqHz)/1e9)
	for c := 0; c < m.NumCores(); c++ {
		core := m.Core(c)
		for t := 0; t < core.NumThreads(); t++ {
			th := core.Thread(t)
			var names []string
			for _, p := range th.Procs() {
				if p.Dead() {
					names = append(names, p.Name+"†")
					continue
				}
				names = append(names, p.Name)
			}
			label := strings.Join(names, ", ")
			if label == "" {
				label = "-"
			}
			fmt.Fprintf(&b, "  c%d.t%d  %s\n", c, t, label)
		}
	}
	return b.String()
}
