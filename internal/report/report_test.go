package report

import (
	"strings"
	"testing"

	"neat/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Demo", Columns: []string{"name", "krps"}}
	tab.AddRow("defaults", 184.1)
	tab.AddRow("tuned", 224.0)
	out := tab.String()
	for _, want := range []string{"Demo", "name", "krps", "defaults", "184.1", "224.0", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
}

func TestTableCellTypes(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b", "c"}}
	tab.AddRow(42, "str", 3.5)
	if got := tab.Rows[0]; got[0] != "42" || got[1] != "str" || got[2] != "3.5" {
		t.Fatalf("row: %v", got)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{Title: "Scaling", XLabel: "#webs", YLabel: "krps"}
	a := fig.NewSeries("NEaT 2x")
	a.Add(1, 50)
	a.Add(2, 100)
	b := fig.NewSeries("Multi 1x")
	b.Add(1, 48)
	b.Add(3, 150)
	out := fig.String()
	for _, want := range []string{"Scaling", "#webs", "NEaT 2x", "Multi 1x", "50.0", "150.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// X values are unioned and sorted: 1, 2, 3.
	idx1 := strings.Index(out, "\n1 ")
	idx3 := strings.Index(out, "\n3 ")
	if idx1 < 0 || idx3 < 0 || idx1 > idx3 {
		t.Fatalf("x ordering wrong:\n%s", out)
	}
	if a.MaxY() != 100 || b.MaxY() != 150 {
		t.Fatalf("MaxY: %v %v", a.MaxY(), b.MaxY())
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[int]string{1: "1B", 999: "999B", 1 << 10: "1K", 100 << 10: "100K", 10 << 20: "10M"}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d)=%q want %q", in, got, want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(6) != "6" || trimFloat(0.5) != "0.5" || trimFloat(10485760) != "10485760" {
		t.Fatalf("trimFloat: %q %q %q", trimFloat(6), trimFloat(0.5), trimFloat(10485760))
	}
}

func TestTopology(t *testing.T) {
	s := sim.New(1)
	m := sim.NewMachine(s, "xeon", 2, 2, 2_260_000_000)
	a := sim.NewProc(m.Thread(0, 0), "nicdrv", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {}), sim.ProcConfig{})
	sim.NewProc(m.Thread(0, 1), "syscall", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {}), sim.ProcConfig{})
	a.Kill()
	out := Topology(m)
	for _, want := range []string{"xeon", "c0.t0", "nicdrv†", "syscall", "c1.t1  -"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
