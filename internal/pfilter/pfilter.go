// Package pfilter implements the packet filter component of a stack
// replica (§3.7: "additional UDP and packet filter components are also
// present and isolated from the rest of the stack"). The filter is a
// stateless ordered rule table evaluated on every inbound packet before it
// reaches IP — stateless by design, so a crashed filter process is
// recreated from its rule configuration with no visible state loss.
package pfilter

import (
	"fmt"

	"neat/internal/proto"
)

// Action is a filter verdict.
type Action int

// Verdicts.
const (
	Accept Action = iota
	Drop
)

// String names the action.
func (a Action) String() string {
	if a == Accept {
		return "accept"
	}
	return "drop"
}

// Rule matches packets; zero fields are wildcards.
type Rule struct {
	Action  Action
	Proto   proto.IPProto // 0 = any
	Src     proto.Addr    // zero = any
	SrcMask proto.Addr    // zero with Src set = exact host
	DstPort uint16        // 0 = any
	SrcPort uint16        // 0 = any
	// Comment labels the rule in String().
	Comment string
}

// matches reports whether the rule applies to the frame.
func (r *Rule) matches(f *proto.Frame) bool {
	if f.IP == nil {
		return false // ARP and friends are never filtered
	}
	if r.Proto != 0 && f.IP.Protocol != r.Proto {
		return false
	}
	if r.Src != (proto.Addr{}) {
		mask := r.SrcMask.Uint32()
		if mask == 0 {
			mask = 0xffffffff
		}
		if f.IP.Src.Uint32()&mask != r.Src.Uint32()&mask {
			return false
		}
	}
	fl, ok := f.Flow()
	if !ok && (r.DstPort != 0 || r.SrcPort != 0) {
		return false
	}
	if r.DstPort != 0 && fl.DstPort != r.DstPort {
		return false
	}
	if r.SrcPort != 0 && fl.SrcPort != r.SrcPort {
		return false
	}
	return true
}

// String renders the rule.
func (r *Rule) String() string {
	return fmt.Sprintf("%s proto=%v src=%s sport=%d dport=%d %s",
		r.Action, r.Proto, r.Src, r.SrcPort, r.DstPort, r.Comment)
}

// Stats counts filter activity.
type Stats struct {
	Checked  uint64
	Accepted uint64
	Dropped  uint64
}

// Filter is an ordered rule table with a default-accept policy.
type Filter struct {
	rules   []Rule
	Default Action
	stats   Stats
}

// New creates an empty filter that accepts by default.
func New() *Filter { return &Filter{Default: Accept} }

// Append adds a rule at the end of the table.
func (f *Filter) Append(r Rule) { f.rules = append(f.rules, r) }

// NumRules returns the rule count.
func (f *Filter) NumRules() int { return len(f.rules) }

// Clear removes all rules.
func (f *Filter) Clear() { f.rules = nil }

// Stats returns a snapshot of the counters.
func (f *Filter) Stats() Stats { return f.stats }

// Check evaluates the table and returns the verdict for the frame.
// The first matching rule wins.
func (f *Filter) Check(fr *proto.Frame) Action {
	f.stats.Checked++
	verdict := f.Default
	for i := range f.rules {
		if f.rules[i].matches(fr) {
			verdict = f.rules[i].Action
			break
		}
	}
	if verdict == Accept {
		f.stats.Accepted++
	} else {
		f.stats.Dropped++
	}
	return verdict
}
