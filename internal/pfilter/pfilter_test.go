package pfilter

import (
	"testing"

	"neat/internal/proto"
)

var (
	ipA = proto.IPv4(10, 0, 0, 1)
	ipB = proto.IPv4(10, 0, 0, 2)
	ipC = proto.IPv4(192, 168, 7, 9)
)

func tcpFrame(t *testing.T, src proto.Addr, srcPort, dstPort uint16) *proto.Frame {
	t.Helper()
	raw := proto.BuildTCP(
		proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: src, Dst: ipA},
		proto.TCPHeader{SrcPort: srcPort, DstPort: dstPort, Flags: proto.TCPSyn}, nil)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func udpFrame(t *testing.T, dstPort uint16) *proto.Frame {
	t.Helper()
	raw := proto.BuildUDP(
		proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: ipB, Dst: ipA},
		proto.UDPHeader{SrcPort: 5, DstPort: dstPort}, nil)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultAccept(t *testing.T) {
	f := New()
	if f.Check(tcpFrame(t, ipB, 1, 80)) != Accept {
		t.Fatal("default policy not accept")
	}
	st := f.Stats()
	if st.Checked != 1 || st.Accepted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFirstMatchWins(t *testing.T) {
	f := New()
	f.Append(Rule{Action: Accept, Proto: proto.ProtoTCP, DstPort: 22, Comment: "allow ssh"})
	f.Append(Rule{Action: Drop, Proto: proto.ProtoTCP, Comment: "drop tcp"})
	if f.Check(tcpFrame(t, ipB, 1, 22)) != Accept {
		t.Fatal("earlier accept rule ignored")
	}
	if f.Check(tcpFrame(t, ipB, 1, 80)) != Drop {
		t.Fatal("later drop rule ignored")
	}
}

func TestProtoSelective(t *testing.T) {
	f := New()
	f.Append(Rule{Action: Drop, Proto: proto.ProtoUDP})
	if f.Check(udpFrame(t, 53)) != Drop {
		t.Fatal("UDP not dropped")
	}
	if f.Check(tcpFrame(t, ipB, 1, 53)) != Accept {
		t.Fatal("TCP wrongly dropped")
	}
}

func TestSourceHostAndSubnetMatch(t *testing.T) {
	f := New()
	f.Append(Rule{Action: Drop, Src: ipC}) // exact host
	if f.Check(tcpFrame(t, ipC, 1, 80)) != Drop {
		t.Fatal("host rule missed")
	}
	if f.Check(tcpFrame(t, ipB, 1, 80)) != Accept {
		t.Fatal("host rule overmatched")
	}

	g := New()
	g.Append(Rule{Action: Drop, Src: proto.IPv4(192, 168, 0, 0), SrcMask: proto.IPv4(255, 255, 0, 0)})
	if g.Check(tcpFrame(t, ipC, 1, 80)) != Drop {
		t.Fatal("subnet rule missed")
	}
	if g.Check(tcpFrame(t, ipB, 1, 80)) != Accept {
		t.Fatal("subnet rule overmatched")
	}
}

func TestPortMatching(t *testing.T) {
	f := New()
	f.Append(Rule{Action: Drop, SrcPort: 6666})
	f.Append(Rule{Action: Drop, DstPort: 23})
	if f.Check(tcpFrame(t, ipB, 6666, 80)) != Drop {
		t.Fatal("src port rule missed")
	}
	if f.Check(tcpFrame(t, ipB, 1, 23)) != Drop {
		t.Fatal("dst port rule missed")
	}
	if f.Check(tcpFrame(t, ipB, 1, 80)) != Accept {
		t.Fatal("port rules overmatched")
	}
}

func TestARPNeverFiltered(t *testing.T) {
	f := New()
	f.Default = Drop
	raw := proto.BuildARP(
		proto.EthernetHeader{Dst: proto.BroadcastMAC, Type: proto.EtherTypeARP},
		proto.ARPPacket{Op: proto.ARPRequest, SenderIP: ipB, TargetIP: ipA})
	fr, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	// ARP has no IP layer: rules never match, so the default applies —
	// but a deny-all rule list must not panic on it.
	f.Append(Rule{Action: Accept, Proto: proto.ProtoTCP})
	if got := f.Check(fr); got != Drop {
		t.Fatalf("ARP verdict %v (default drop)", got)
	}
}

func TestClearAndCounts(t *testing.T) {
	f := New()
	f.Append(Rule{Action: Drop})
	if f.NumRules() != 1 {
		t.Fatal("rule not added")
	}
	f.Clear()
	if f.NumRules() != 0 {
		t.Fatal("rules not cleared")
	}
	if f.Check(tcpFrame(t, ipB, 1, 80)) != Accept {
		t.Fatal("cleared filter should accept")
	}
	st := f.Stats()
	if st.Checked != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Action: Drop, Proto: proto.ProtoTCP, DstPort: 80, Comment: "no http"}
	if s := r.String(); s == "" {
		t.Fatal("empty rule string")
	}
	if Accept.String() != "accept" || Drop.String() != "drop" {
		t.Fatal("action names")
	}
}
