package steer

import (
	"math/rand"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		name string
		want PolicyKind
		ok   bool
	}{
		{"", PolicyHash, true},
		{"hash", PolicyHash, true},
		{"ring", PolicyRing, true},
		{"least-loaded", PolicyLeastLoaded, true},
		{"leastloaded", PolicyLeastLoaded, true},
		{"p2c", PolicyLeastLoaded, true},
		{"round-robin", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.name)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", c.name)
		}
	}
	for _, k := range []PolicyKind{PolicyHash, PolicyRing, PolicyLeastLoaded} {
		if got, err := ParsePolicy(k.String()); err != nil || got != k {
			t.Errorf("round-trip %v: got %v, %v", k, got, err)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{Policy: PolicyLeastLoaded}, rng, nil); err == nil {
		t.Error("least-loaded without load function accepted")
	}
	if _, err := New(Config{Policy: PolicyKind(99)}, rng, nil); err == nil {
		t.Error("unknown policy kind accepted")
	}
	if _, err := New(Config{DrainDeadline: -1}, rng, nil); err == nil {
		t.Error("negative drain deadline accepted")
	}
	if _, err := New(Config{Policy: PolicyRing, RingVNodes: -3}, rng, nil); err == nil {
		t.Error("negative vnode count accepted")
	}
}

// TestHashPolicyMatchesLegacyRSS pins the byte-identity contract: the
// default policy must reproduce the NIC's historical
// rssQueues[hash%len(rssQueues)] indirection exactly.
func TestHashPolicyMatchesLegacyRSS(t *testing.T) {
	p := NewHashPolicy(rand.New(rand.NewSource(1)))
	for _, active := range [][]int{{0}, {0, 1}, {0, 2, 5}, {1, 3, 4, 7}} {
		p.SetActive(active)
		for h := uint32(0); h < 10_000; h++ {
			want := active[int(h)%len(active)]
			if got := p.QueueFor(h); got != want {
				t.Fatalf("active=%v hash=%d: got %d, want %d", active, h, got, want)
			}
		}
	}
	p.SetActive(nil)
	if got := p.QueueFor(7); got != -1 {
		t.Fatalf("empty set: got %d, want -1 (drop-all)", got)
	}
	if got := p.PickConnect(); got != -1 {
		t.Fatalf("empty set connect: got %d, want -1", got)
	}
}

// TestHashPolicyConnectDrawPattern pins the RNG contract: PickConnect
// consumes exactly one Intn(len(active)) draw, so a system built on the
// placement plane replays the same placement sequence as the pre-plane
// management code for the same simulator seed.
func TestHashPolicyConnectDrawPattern(t *testing.T) {
	p := NewHashPolicy(rand.New(rand.NewSource(42)))
	p.SetActive([]int{2, 3, 5})
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		want := []int{2, 3, 5}[ref.Intn(3)]
		if got := p.PickConnect(); got != want {
			t.Fatalf("draw %d: got %d, want %d", i, got, want)
		}
	}
}

// TestRingBoundedRemap is the acceptance assertion for the consistent
// hash ring: adding or removing a single slot out of N must remap at most
// 2/N of the unpinned flow space (the ideal is 1/N; 2/N allows vnode
// placement variance), where modulo hashing remaps the vast majority.
func TestRingBoundedRemap(t *testing.T) {
	const samples = 200_000
	rng := rand.New(rand.NewSource(7))
	hashes := make([]uint32, samples)
	for i := range hashes {
		hashes[i] = rng.Uint32()
	}
	for _, n := range []int{3, 4, 6, 8} {
		before := make([]int, n)
		for i := range before {
			before[i] = i
		}
		p := NewRingPolicy(rand.New(rand.NewSource(1)), DefaultRingVNodes)
		p.SetActive(before)
		was := make([]int, samples)
		for i, h := range hashes {
			was[i] = p.QueueFor(h)
		}

		check := func(label string, active []int, nowN int) {
			t.Helper()
			p.SetActive(active)
			moved := 0
			inSet := map[int]bool{}
			for _, s := range active {
				inSet[s] = true
			}
			for i, h := range hashes {
				got := p.QueueFor(h)
				// Flows whose old owner left the set MUST move; they do
				// not count against the remap budget.
				if !inSet[was[i]] {
					continue
				}
				if got != was[i] {
					moved++
				}
			}
			frac := float64(moved) / float64(samples)
			bound := 2.0 / float64(nowN)
			if frac > bound {
				t.Errorf("N=%d %s: %.4f of surviving-owner flows remapped, bound %.4f",
					n, label, frac, bound)
			}
		}

		// Scale-up: add slot n.
		grown := append(append([]int{}, before...), n)
		check("add", grown, n+1)
		// Scale-down: remove the highest slot.
		check("remove", before[:n-1], n-1)
	}
}

// TestRingDisjointMembershipDisjointOwnership sanity-checks the ring maps
// only onto current members and covers the whole hash space.
func TestRingCoversActiveSet(t *testing.T) {
	p := NewRingPolicy(rand.New(rand.NewSource(1)), DefaultRingVNodes)
	active := []int{0, 2, 5, 6}
	p.SetActive(active)
	seen := map[int]int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100_000; i++ {
		q := p.QueueFor(rng.Uint32())
		seen[q]++
	}
	for _, s := range active {
		if seen[s] == 0 {
			t.Errorf("slot %d never chosen", s)
		}
	}
	for q := range seen {
		found := false
		for _, s := range active {
			if q == s {
				found = true
			}
		}
		if !found {
			t.Errorf("non-member slot %d chosen", q)
		}
	}
	p.SetActive(nil)
	if got := p.QueueFor(1); got != -1 {
		t.Fatalf("empty ring: got %d, want -1", got)
	}
}

// TestRingDeterministic: the ring depends only on membership, not on the
// order or history of SetActive calls.
func TestRingDeterministic(t *testing.T) {
	a := NewRingPolicy(rand.New(rand.NewSource(1)), 32)
	b := NewRingPolicy(rand.New(rand.NewSource(99)), 32)
	a.SetActive([]int{0, 1, 2, 3})
	a.SetActive([]int{0, 1, 2}) // shrink then regrow: history must not matter
	a.SetActive([]int{0, 1, 2, 3})
	b.SetActive([]int{0, 1, 2, 3})
	for h := uint32(0); h < 50_000; h++ {
		if a.QueueFor(h) != b.QueueFor(h) {
			t.Fatalf("hash %d: ring differs with same membership", h)
		}
	}
}

// TestLeastLoadedPrefersIdleSlot: with a skewed load vector, both the
// packet path and the connect path steer towards the idle slot.
func TestLeastLoadedPrefersIdleSlot(t *testing.T) {
	loads := map[int]int{0: 100, 1: 100, 2: 0}
	p := NewLeastLoadedPolicy(rand.New(rand.NewSource(1)),
		func(slot int) int { return loads[slot] })
	p.SetActive([]int{0, 1, 2})

	conn := map[int]int{}
	for i := 0; i < 3000; i++ {
		q := p.PickConnect()
		if q < 0 {
			t.Fatal("no slot chosen")
		}
		conn[q]++
	}
	// Power-of-two-choices: slot 2 wins every comparison it appears in
	// (~2/3 of draws); the loaded slots split the rest.
	if conn[2] < conn[0]+conn[1] {
		t.Fatalf("connect placement not skew-resistant: %v", conn)
	}

	queue := map[int]int{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		queue[p.QueueFor(rng.Uint32())]++
	}
	if queue[2] < queue[0] || queue[2] < queue[1] {
		t.Fatalf("queue placement not skew-resistant: %v", queue)
	}
}

// TestLeastLoadedQueueForStable: with loads and membership frozen, a
// flow's hash always maps to the same slot (packets of one flow must not
// scatter before their filter lands).
func TestLeastLoadedQueueForStable(t *testing.T) {
	p := NewLeastLoadedPolicy(rand.New(rand.NewSource(1)),
		func(slot int) int { return slot * 10 })
	p.SetActive([]int{0, 1, 2, 3})
	for h := uint32(0); h < 20_000; h++ {
		if p.QueueFor(h) != p.QueueFor(h) {
			t.Fatalf("hash %d: unstable placement", h)
		}
	}
}

// TestLeastLoadedStickyAcrossLoadFlips: a flow keeps its slot even when
// the load ranking inverts mid-handshake (the filter that pins it only
// exists once the connection establishes), but loses it when the slot
// leaves the active set.
func TestLeastLoadedStickyAcrossLoadFlips(t *testing.T) {
	loads := map[int]int{0: 0, 1: 100}
	p := NewLeastLoadedPolicy(rand.New(rand.NewSource(1)),
		func(slot int) int { return loads[slot] })
	p.SetActive([]int{0, 1})
	first := p.QueueFor(77)
	loads[0], loads[1] = loads[1], loads[0]
	if got := p.QueueFor(77); got != first {
		t.Fatalf("load flip re-steered the flow: %d -> %d", first, got)
	}
	p.SetActive([]int{0, 1}) // same membership: sticky entries survive
	if got := p.QueueFor(77); got != first {
		t.Fatalf("SetActive with same membership re-steered the flow: %d -> %d", first, got)
	}
	other := 1 - first
	p.SetActive([]int{other}) // the flow's slot left: entry purged
	if got := p.QueueFor(77); got != other {
		t.Fatalf("after slot %d left: got %d, want %d", first, got, other)
	}
}

func TestLeastLoadedPickRetire(t *testing.T) {
	loads := map[int]int{0: 5, 1: 2, 2: 9}
	p := NewLeastLoadedPolicy(rand.New(rand.NewSource(1)),
		func(slot int) int { return loads[slot] })
	p.SetActive([]int{0, 1, 2})
	if got := p.PickRetire(); got != 1 {
		t.Fatalf("PickRetire = %d, want 1 (least loaded)", got)
	}
	p.SetActive(nil)
	if got := p.PickRetire(); got != -1 {
		t.Fatalf("PickRetire on empty set = %d, want -1", got)
	}
}

func TestHashAndRingPickRetireHighest(t *testing.T) {
	for _, p := range []Placer{
		NewHashPolicy(rand.New(rand.NewSource(1))),
		NewRingPolicy(rand.New(rand.NewSource(1)), 16),
	} {
		p.SetActive([]int{1, 4, 6})
		if got := p.PickRetire(); got != 6 {
			t.Fatalf("%s: PickRetire = %d, want 6", p.Name(), got)
		}
	}
}
