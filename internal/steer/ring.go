package steer

import (
	"math/rand"
	"sort"
)

// RingPolicy places unpinned flows on a consistent-hash ring: each active
// slot owns VNodes points on a 32-bit ring, and a flow hash is served by
// the first point clockwise from it. The payoff over modulo hashing is
// bounded remap: adding or removing one of N slots moves only that slot's
// arcs — an expected 1/N of the unpinned flow space — where the modulo
// changes the mapping of almost every hash. That matters across scale
// events for packets not yet covered by an exact filter (SYN
// retransmits, flows evicted from the hardware tracking table): with the
// ring they keep landing on the queue that owns their state.
//
// Connect-side placement stays uniformly random (same draw pattern as
// HashPolicy): the connecting replica is chosen before any flow hash
// exists, and randomness preserves §3.8's unpredictability.
type RingPolicy struct {
	activeSet
	rng    *rand.Rand
	vnodes int
	points []ringPoint // sorted by hash; rebuilt on SetActive
}

type ringPoint struct {
	hash uint32
	slot int
}

// NewRingPolicy builds a consistent-hash-ring policy with vnodes virtual
// nodes per slot (DefaultRingVNodes when 0).
func NewRingPolicy(rng *rand.Rand, vnodes int) *RingPolicy {
	if vnodes <= 0 {
		vnodes = DefaultRingVNodes
	}
	return &RingPolicy{rng: rng, vnodes: vnodes}
}

// Name implements Placer.
func (p *RingPolicy) Name() string { return "ring" }

// SetActive implements Placer, rebuilding the ring. Point positions
// depend only on (slot, vnode), so the same membership always yields the
// same ring, and a membership delta moves only the delta's points.
func (p *RingPolicy) SetActive(slots []int) {
	p.activeSet.SetActive(slots)
	p.points = p.points[:0]
	for _, s := range slots {
		for v := 0; v < p.vnodes; v++ {
			p.points = append(p.points, ringPoint{hash: pointHash(s, v), slot: s})
		}
	}
	sort.Slice(p.points, func(i, j int) bool {
		if p.points[i].hash != p.points[j].hash {
			return p.points[i].hash < p.points[j].hash
		}
		return p.points[i].slot < p.points[j].slot
	})
}

// QueueFor implements Placer: the first ring point clockwise from hash.
func (p *RingPolicy) QueueFor(hash uint32) int {
	if len(p.points) == 0 {
		return -1
	}
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= hash })
	if i == len(p.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return p.points[i].slot
}

// PickConnect implements Placer: a uniformly random active slot.
func (p *RingPolicy) PickConnect() int {
	if len(p.active) == 0 {
		return -1
	}
	return p.active[p.rng.Intn(len(p.active))]
}

// PickRetire implements Placer: the highest-indexed active slot.
func (p *RingPolicy) PickRetire() int { return p.retireHighest() }

// pointHash positions vnode v of slot s on the ring: FNV-1a over the
// (slot, vnode) pair, matching the spirit of proto.Flow.Hash so flow and
// point hashes share one 32-bit space.
func pointHash(slot, vnode int) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range [8]byte{
		byte(slot >> 24), byte(slot >> 16), byte(slot >> 8), byte(slot),
		byte(vnode >> 24), byte(vnode >> 16), byte(vnode >> 8), byte(vnode),
	} {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}
