package steer

import "math/rand"

// LeastLoadedPolicy places new flows by power-of-two-choices over live
// per-replica connection counts (the figure the metrics registry exports
// as core.replicaN.connections): sample two candidates, keep the less
// loaded. Two choices are enough to collapse the max-load gap from
// Θ(log n / log log n) to Θ(log log n) versus one random choice, which
// makes the policy skew-resistant — a slot pinned under elephant flows
// stops attracting new ones.
//
//   - PickConnect samples its two candidates uniformly from the
//     simulator's seeded RNG (two draws per connect).
//   - QueueFor derives both candidates deterministically from the flow
//     hash (no RNG on the packet path) and then sticks: the winning slot
//     is remembered per flow hash, so a flow's handshake packets keep
//     landing on one replica even when the load ranking flips between
//     them. Without the flow table, a SYN and its ACK could be steered
//     to different replicas — the exact-match filter that pins the flow
//     (§3.4) is only installed once the connection establishes. Entries
//     whose slot leaves the active set are purged on SetActive (those
//     flows re-steer, like unpinned flows under RSS reprogramming).
type LeastLoadedPolicy struct {
	activeSet
	rng   *rand.Rand
	load  LoadFunc
	flows map[uint32]int // sticky placement per flow hash
}

// flowTableCap bounds the sticky table; past it the table is reset
// wholesale (deterministically) rather than grown without bound.
const flowTableCap = 1 << 20

// NewLeastLoadedPolicy builds the power-of-two-choices policy. load
// reports live connections per slot; rng is the simulator's seeded RNG.
func NewLeastLoadedPolicy(rng *rand.Rand, load LoadFunc) *LeastLoadedPolicy {
	return &LeastLoadedPolicy{rng: rng, load: load, flows: make(map[uint32]int)}
}

// SetActive implements Placer, additionally purging sticky entries whose
// slot left the set.
func (p *LeastLoadedPolicy) SetActive(slots []int) {
	p.activeSet.SetActive(slots)
	in := make(map[int]bool, len(slots))
	for _, s := range slots {
		in[s] = true
	}
	for h, q := range p.flows {
		if !in[q] {
			delete(p.flows, h)
		}
	}
}

// Name implements Placer.
func (p *LeastLoadedPolicy) Name() string { return "least-loaded" }

// QueueFor implements Placer: two hash-derived candidates, less loaded
// wins, primary candidate on ties; the winner is sticky per flow hash.
func (p *LeastLoadedPolicy) QueueFor(hash uint32) int {
	n := len(p.active)
	if n == 0 {
		return -1
	}
	if q, ok := p.flows[hash]; ok {
		return q
	}
	if n == 1 {
		q := p.active[0]
		p.remember(hash, q)
		return q
	}
	c1 := p.active[int(hash)%n]
	c2 := p.active[int(remix(hash))%n]
	if c2 == c1 {
		c2 = p.active[(int(hash)%n+1)%n]
	}
	q := c1
	if p.load(c2) < p.load(c1) {
		q = c2
	}
	p.remember(hash, q)
	return q
}

// remember records a flow's sticky placement, resetting the table first
// when it hits the cap.
func (p *LeastLoadedPolicy) remember(hash uint32, q int) {
	if len(p.flows) >= flowTableCap {
		p.flows = make(map[uint32]int)
	}
	p.flows[hash] = q
}

// PickConnect implements Placer: two random candidates, less loaded wins,
// lower slot index on ties.
func (p *LeastLoadedPolicy) PickConnect() int {
	n := len(p.active)
	if n == 0 {
		return -1
	}
	if n == 1 {
		return p.active[0]
	}
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	c1, c2 := p.active[i], p.active[j]
	l1, l2 := p.load(c1), p.load(c2)
	if l2 < l1 || (l2 == l1 && c2 < c1) {
		return c2
	}
	return c1
}

// PickRetire implements Placer: the active slot with the fewest live
// connections — the cheapest drain (lowest index on ties).
func (p *LeastLoadedPolicy) PickRetire() int {
	best := -1
	bestLoad := 0
	for _, s := range p.active {
		if l := p.load(s); best < 0 || l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// remix decorrelates the second hash candidate from the first
// (Knuth-multiplicative step plus an xorshift).
func remix(h uint32) uint32 {
	h *= 2654435761
	h ^= h >> 15
	h *= 2246822519
	h ^= h >> 13
	return h
}
