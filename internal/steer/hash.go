package steer

import "math/rand"

// HashPolicy is the paper's placement: unpinned inbound flows are steered
// by hash modulo the active set (the i82599's RSS indirection programmed
// with the active queues), and each new outbound connection goes to a
// uniformly random active replica (§3.8: random placement gives load
// balancing and address-space unpredictability).
//
// It is the default, and it is byte-identical to the behaviour the
// repository had before the placement plane existed: QueueFor reproduces
// the NIC's rssQueues[hash%len] lookup exactly, and PickConnect consumes
// exactly one rng.Intn draw per connect, like the management plane's old
// inline selection.
type HashPolicy struct {
	activeSet
	rng *rand.Rand
}

// NewHashPolicy builds the modulo-hash policy drawing connect-side
// randomness from rng (the simulator's seeded RNG).
func NewHashPolicy(rng *rand.Rand) *HashPolicy {
	return &HashPolicy{rng: rng}
}

// Name implements Placer.
func (p *HashPolicy) Name() string { return "hash" }

// QueueFor implements Placer: hash modulo the active set.
func (p *HashPolicy) QueueFor(hash uint32) int {
	if len(p.active) == 0 {
		return -1
	}
	return p.active[int(hash)%len(p.active)]
}

// PickConnect implements Placer: a uniformly random active slot.
func (p *HashPolicy) PickConnect() int {
	if len(p.active) == 0 {
		return -1
	}
	return p.active[p.rng.Intn(len(p.active))]
}

// PickRetire implements Placer: the highest-indexed active slot.
func (p *HashPolicy) PickRetire() int { return p.retireHighest() }
