// Package steer is NEaT's flow-placement plane: the single authority for
// deciding which replica slot owns a flow or connection.
//
// The paper's whole scalability argument rests on partitioning flows
// across replicas (§4): every packet of a flow must reach the replica
// that owns the flow's state, and new flows must spread across replicas.
// Before this package those decisions were smeared across four layers —
// the NIC's RSS indirection, the management plane's connect routing, the
// SYSCALL server and the autoscaler — which meant they could drift apart
// and none could be swapped or tuned. Now they all consult one Placer:
//
//   - the NIC asks QueueFor(hash) to steer an unpinned inbound flow;
//   - the SYSCALL server (via core.System.ConnectTarget) asks PickConnect
//     for each new outbound connection;
//   - scale-down (manual or autoscaler-driven) asks PickRetire which
//     replica should drain.
//
// Established connections are never moved by a policy change: the NIC's
// exact-match flow-director filters (or the §4 hardware tracking table)
// pin them to their owning queue, so the Placer only governs *unpinned*
// flows — the first packets of new connections and any flow the NIC has
// no filter for.
//
// Three policies are provided:
//
//   - HashPolicy (default): modulo-hash over the active set, plus a
//     uniformly random connect-side choice. Byte-identical to the
//     behaviour the repository had before this package existed.
//   - RingPolicy: a consistent-hash ring with virtual nodes. Adding or
//     removing one replica remaps only O(1/N) of the unpinned flow space
//     instead of rehashing almost everything, which keeps pre-filter
//     packets (SYN retransmits, flows the filter table evicted) landing
//     on the right queue across scale events.
//   - LeastLoadedPolicy: power-of-two-choices over live per-replica
//     connection counts (the same figure the metrics registry exports as
//     core.replicaN.connections). Skew-resistant: elephant-heavy slots
//     stop attracting new flows.
//
// All randomness is drawn from the *rand.Rand handed to New — the
// simulator's seeded RNG — so placement is reproducible run-to-run and
// participates in the byte-identity determinism oracles.
package steer

import (
	"fmt"
	"math/rand"

	"neat/internal/sim"
)

// PolicyKind enumerates the built-in placement policies.
type PolicyKind int

// The built-in policies.
const (
	// PolicyHash is modulo-hash placement over the active set — the
	// paper's behaviour and the default.
	PolicyHash PolicyKind = iota
	// PolicyRing is consistent-hash-ring placement with bounded remap.
	PolicyRing
	// PolicyLeastLoaded is power-of-two-choices over live per-replica
	// connection counts.
	PolicyLeastLoaded
)

// String names the policy kind as accepted by ParsePolicy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyHash:
		return "hash"
	case PolicyRing:
		return "ring"
	case PolicyLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// ParsePolicy maps a policy name ("hash", "ring", "least-loaded"; ""
// defaults to hash) to its kind.
func ParsePolicy(name string) (PolicyKind, error) {
	switch name {
	case "", "hash":
		return PolicyHash, nil
	case "ring":
		return PolicyRing, nil
	case "least-loaded", "leastloaded", "p2c":
		return PolicyLeastLoaded, nil
	default:
		return 0, fmt.Errorf("steer: unknown policy %q (want hash, ring or least-loaded)", name)
	}
}

// DefaultRingVNodes is the virtual-node count per slot for PolicyRing.
// 64 vnodes keep the expected remap fraction on a single slot add/remove
// within a few percent of the ideal 1/N.
const DefaultRingVNodes = 64

// Config selects and tunes the placement policy for one system. The zero
// value is the paper's behaviour: hash placement, drain without deadline.
type Config struct {
	// Policy picks the placement policy (default PolicyHash).
	Policy PolicyKind
	// RingVNodes is the virtual-node count per slot for PolicyRing
	// (default DefaultRingVNodes; ignored by the other policies).
	RingVNodes int
	// DrainDeadline bounds graceful scale-down drain: a retiring replica
	// serves its established connections until they finish, but once the
	// deadline fires the stragglers are dropped and the replica retires.
	// 0 (the default) drains without a deadline — the paper's lazy
	// termination, which never forces a connection closed.
	DrainDeadline sim.Time
}

// LoadFunc reports the live connection count of a replica slot; the
// management plane supplies it (same source as the registry gauge
// core.replicaN.connections). It must tolerate any slot index.
type LoadFunc func(slot int) int

// Placer is the placement authority. Implementations are not safe for
// concurrent use; in this repository every consumer lives on the same
// simulator goroutine.
//
// Slot indices double as NIC queue indices throughout (slot i is bound to
// RX/TX queue pair i), so QueueFor's return value is used directly as the
// hardware queue.
type Placer interface {
	// Name returns the policy name (ParsePolicy-compatible).
	Name() string
	// SetActive installs the set of slots eligible for NEW flows, in
	// ascending slot order. Terminating (draining), recovering and
	// quarantined slots are excluded by the caller; their established
	// connections keep flowing via their exact-match filters.
	SetActive(slots []int)
	// Active returns the current eligible set (ascending). Callers must
	// not modify the returned slice.
	Active() []int
	// QueueFor maps an unpinned inbound flow hash to the slot/queue that
	// should own it, or -1 when no slot is eligible (the NIC's drop-all
	// state).
	QueueFor(hash uint32) int
	// PickConnect returns the slot that should own a new outbound
	// connection, or -1 when no slot is eligible.
	PickConnect() int
	// PickRetire returns the active slot a scale-down should drain, or
	// -1 when none is eligible. HashPolicy and RingPolicy retire the
	// highest-indexed slot (the historical choice); LeastLoadedPolicy
	// retires the slot with the fewest live connections (cheapest drain).
	PickRetire() int
}

// New builds the placer selected by cfg. rng must be the simulator's
// seeded RNG (determinism oracle); load is consulted by PolicyLeastLoaded
// and may be nil for the other policies.
func New(cfg Config, rng *rand.Rand, load LoadFunc) (Placer, error) {
	if cfg.DrainDeadline < 0 {
		return nil, fmt.Errorf("steer: negative drain deadline %v", cfg.DrainDeadline)
	}
	switch cfg.Policy {
	case PolicyHash:
		return NewHashPolicy(rng), nil
	case PolicyRing:
		v := cfg.RingVNodes
		if v == 0 {
			v = DefaultRingVNodes
		}
		if v < 0 {
			return nil, fmt.Errorf("steer: negative ring vnode count %d", v)
		}
		return NewRingPolicy(rng, v), nil
	case PolicyLeastLoaded:
		if load == nil {
			return nil, fmt.Errorf("steer: least-loaded policy needs a load function")
		}
		return NewLeastLoadedPolicy(rng, load), nil
	default:
		return nil, fmt.Errorf("steer: unknown policy kind %d", int(cfg.Policy))
	}
}

// NewDeterministic builds the placer selected by cfg without the
// simulator's RNG, for consumers that must be bit-reproducible across
// scheduling engines — the switch's farm-level L4 services, whose
// placement must be byte-identical between the sequential and PDES
// runs of a cluster. QueueFor is a pure function of (hash, active set)
// for the hash and ring policies, so they qualify unchanged; their
// connect-side choice runs on a private fixed-seed stream (farm-level
// steering never calls PickConnect, but the interface stays total).
// PolicyLeastLoaded is rejected: live load observation is inherently
// engine-order-dependent.
func (cfg Config) NewDeterministic() (Placer, error) {
	if cfg.Policy == PolicyLeastLoaded {
		return nil, fmt.Errorf("steer: least-loaded policy is not deterministic across engines (use hash or ring)")
	}
	return New(cfg, rand.New(rand.NewSource(1)), nil)
}

// activeSet is the shared active-slot bookkeeping embedded by every policy.
type activeSet struct {
	active []int
}

func (a *activeSet) SetActive(slots []int) {
	a.active = append(a.active[:0], slots...)
}

func (a *activeSet) Active() []int { return a.active }

// retireHighest is the historical scale-down victim choice: the
// highest-indexed active slot.
func (a *activeSet) retireHighest() int {
	if len(a.active) == 0 {
		return -1
	}
	return a.active[len(a.active)-1]
}
