package tcpeng

import (
	"fmt"

	"neat/internal/proto"
	"neat/internal/sim"
)

// Conn is one TCP protocol control block. All of a connection's state lives
// here, inside exactly one engine, inside exactly one replica — the paper's
// partitioning unit.
type Conn struct {
	engine *Engine
	ID     uint64
	key    connKey
	state  State

	// Listener that spawned this connection (passive opens only).
	Listener *Listener
	// Intrusive links in the listener's embryonic arrival list, live only
	// while state == SYN_RCVD. O(1) unlink keeps mass handshake completion
	// linear — a slice queue made million-connection storms quadratic.
	embPrev, embNext *Conn
	// Ctx is opaque owner context (socket bookkeeping in the stack).
	Ctx interface{}

	iss, irs uint32 // initial send/recv sequence numbers
	mss      int    // effective MSS (min of ours and peer's)

	snd struct {
		una, nxt       uint32 // oldest unacked, next to send
		wnd            uint32 // peer's advertised window (scaled)
		wndShift       uint8  // peer's window scale
		cwnd           uint32 // congestion window (bytes)
		ssthresh       uint32
		inFastRecovery bool
		recover        uint32 // recovery point for Reno
		dupAcks        int

		bufMax int

		finQueued bool // app closed; FIN after buffer drains
		finSent   bool
		finSeq    uint32 // seq of FIN when queued
	}

	rcv struct {
		nxt               uint32
		wndShift          uint8
		bufMax            int
		finSeen           bool
		finSeq            uint32
		lastWndAdvertised uint32
	}

	// bufs is the lazily attached buffer block (send/receive buffers and
	// the reassembly list). It stays nil until the connection buffers its
	// first byte, so embryonic, idle and TIME_WAIT connections cost only
	// this compact struct; on removal the block returns to the engine pool.
	bufs *connBufs

	// RTT estimation (RFC 6298).
	srtt, rttvar sim.Time
	rto          sim.Time
	rexmitCount  int      // consecutive RTO firings without progress
	rttSeq       uint32   // sequence being timed
	rttAt        sim.Time // when it was sent
	rttTiming    bool

	// Delayed ACK bookkeeping.
	ackPending  int // segments received since last ACK sent
	delAckArmed bool

	// Timers are the intrusive per-connection timer nodes, indexed by
	// TimerKind. The Env arms and stops through them with zero allocations:
	// each node carries its own simulator timer and doubles as the fire
	// message (see ConnTimer).
	Timers [NumTimers]ConnTimer

	// Resource-guard bookkeeping (server side only; see GuardConfig).
	guardPhase   guardPhase
	lastActivity sim.Time // arrival time of the last inbound segment

	userClosed bool
	removed    bool
	// Err is set when the connection dies abnormally.
	Err error
}

// ooSeg is an out-of-order segment held for reassembly.
type ooSeg struct {
	seq  uint32
	data []byte
}

// connBufs is a connection's buffer block: send/receive byte buffers plus
// the out-of-order reassembly list. Blocks are pooled per engine and
// attached to a Conn only when it first buffers data.
type connBufs struct {
	snd []byte  // unacked+unsent bytes; snd[0] is seq snd.una
	rcv []byte  // in-order data awaiting Recv
	oo  []ooSeg // out-of-order segments, sorted by seq
}

// recycle empties the block for reuse. Slices already handed out (Recv
// results, marshalled segments) live strictly before the current bases or
// were copied by the env, so reusing the remaining capacity is safe.
func (b *connBufs) recycle() {
	b.snd = b.snd[:0]
	b.rcv = b.rcv[:0]
	for i := range b.oo {
		b.oo[i] = ooSeg{}
	}
	b.oo = b.oo[:0]
}

// sndBuf returns the send buffer (nil when no block is attached).
func (c *Conn) sndBuf() []byte {
	if c.bufs == nil {
		return nil
	}
	return c.bufs.snd
}

// rcvBuf returns the receive buffer (nil when no block is attached).
func (c *Conn) rcvBuf() []byte {
	if c.bufs == nil {
		return nil
	}
	return c.bufs.rcv
}

// ensureBufs attaches the buffer block, recycling a pooled one if possible.
func (c *Conn) ensureBufs() *connBufs {
	if c.bufs == nil {
		c.bufs = c.engine.getBufs()
	}
	return c.bufs
}

// guardPhase tracks which resource-guard deadline a connection is under.
type guardPhase uint8

const (
	guardNone   guardPhase = iota
	guardHeader            // must deliver HeaderMinBytes by HeaderDeadline
	guardIdle              // must show inbound activity within IdleDeadline
)

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Engine returns the owning engine.
func (c *Conn) Engine() *Engine { return c.engine }

// LocalAddr returns the local address and port.
func (c *Conn) LocalAddr() (proto.Addr, uint16) { return c.key.localAddr, c.key.localPort }

// RemoteAddr returns the remote address and port.
func (c *Conn) RemoteAddr() (proto.Addr, uint16) { return c.key.remoteAddr, c.key.remotePort }

// Flow returns the connection's flow with the local endpoint as source.
func (c *Conn) Flow() proto.Flow { return c.key.flow() }

// InboundFlow returns the flow as the NIC sees arriving packets (remote as
// source) — the key NEaT installs in the flow-director filter (§4).
func (c *Conn) InboundFlow() proto.Flow { return c.key.flow().Reverse() }

// MSS returns the effective maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// String summarizes the connection.
func (c *Conn) String() string {
	return fmt.Sprintf("%s %s:%d<>%s:%d", c.state,
		c.key.localAddr, c.key.localPort, c.key.remoteAddr, c.key.remotePort)
}

// Input demultiplexes one inbound TCP frame into the engine.
func (e *Engine) Input(f *proto.Frame) {
	if f.TCP == nil || f.IP == nil {
		return
	}
	e.stats.SegsIn++
	h := f.TCP
	k := connKey{
		localAddr: f.IP.Dst, localPort: h.DstPort,
		remoteAddr: f.IP.Src, remotePort: h.SrcPort,
	}
	if c, ok := e.conns[k]; ok {
		c.input(h, f.Payload)
		return
	}
	// No PCB: a SYN may create one via a listener.
	if h.Flags&proto.TCPSyn != 0 && h.Flags&proto.TCPAck == 0 {
		if l := e.lookupListener(f.IP.Dst, h.DstPort); l != nil && !l.closed {
			e.passiveOpen(l, k, h)
			return
		}
	}
	// An ACK with no PCB may complete a stateless SYN-cookie handshake.
	if e.cfg.Guard.SynCookies &&
		h.Flags&proto.TCPAck != 0 && h.Flags&(proto.TCPSyn|proto.TCPRst) == 0 {
		if l := e.lookupListener(f.IP.Dst, h.DstPort); l != nil && !l.closed {
			if e.completeCookie(l, k, h, f.Payload) {
				return
			}
		}
	}
	e.stats.SegsToClosedPort++
	if h.Flags&proto.TCPRst == 0 {
		e.sendRST(k, h)
	}
}

// passiveOpen handles a SYN to a listening port.
func (e *Engine) passiveOpen(l *Listener, k connKey, h *proto.TCPHeader) {
	g := e.cfg.Guard
	if g.SynCookies && l.embryonic >= g.SynCookieWatermark {
		e.sendSynCookie(k, h) // stateless: no PCB until the ACK validates
		return
	}
	if g.MaxConnsPerSource > 0 && e.perSource[k.remoteAddr] >= g.MaxConnsPerSource {
		e.stats.SrcCapped++
		return // drop the SYN; a legitimate client retransmits
	}
	if g.SynBacklog > 0 && l.embryonic >= g.SynBacklog {
		// Deterministic oldest-first shedding: the oldest half-open
		// connection is the likeliest to be abandoned (a flood SYN never
		// completes), so recycle its slot for the newcomer. Shed silently —
		// the victim's source is probably spoofed, and an RST would only
		// burn an ARP lookup.
		old := l.embHead
		e.stats.SynShed++
		old.destroy(ErrConnClosed, false)
	}
	if l.embryonic+len(l.acceptQ) >= l.backlog {
		e.stats.DroppedSynBacklog++
		return // silently drop; client retransmits (SYN flood behaviour)
	}
	c := e.newConn(k)
	c.Listener = l
	l.embryonic++
	l.pushEmbryonic(c)
	e.perSource[k.remoteAddr]++
	c.lastActivity = e.env.Now()
	c.state = StateSynRcvd
	c.irs = h.Seq
	c.rcv.nxt = h.Seq + 1
	c.iss = e.env.RandUint32()
	c.snd.una = c.iss
	c.snd.nxt = c.iss + 1
	c.applyPeerOptions(h)
	c.rto = e.cfg.InitialRTO
	c.sendFlags(proto.TCPSyn|proto.TCPAck, c.iss, c.rcv.nxt, true)
	e.env.ArmTimer(c, TimerRexmit, c.rto)
}

// applyPeerOptions ingests MSS and window scale from a SYN/SYN-ACK.
func (c *Conn) applyPeerOptions(h *proto.TCPHeader) {
	if h.Opts.MSS != 0 && int(h.Opts.MSS) < c.mss {
		c.mss = int(h.Opts.MSS)
	}
	if h.Opts.HasWScale {
		c.snd.wndShift = h.Opts.WScale
	} else {
		c.rcv.wndShift = 0 // peer can't scale: don't scale ours either
	}
	c.snd.cwnd = uint32(c.engine.cfg.InitialCwndMSS * c.mss)
	c.snd.wnd = uint32(h.Window) << c.snd.wndShift
}

// sendRST replies RST to a segment that has no connection.
func (e *Engine) sendRST(k connKey, h *proto.TCPHeader) {
	e.stats.ResetsOut++
	var hdr proto.TCPHeader
	hdr.SrcPort, hdr.DstPort = k.localPort, k.remotePort
	hdr.Flags = proto.TCPRst | proto.TCPAck
	hdr.Seq = h.Ack
	hdr.Ack = h.Seq + segLen(h, 0)
	e.stats.SegsOut++
	e.env.SendSegment(nil, OutSegment{
		Src: k.localAddr, Dst: k.remoteAddr, Hdr: hdr, MSS: e.cfg.MSS,
	})
}

// segLen returns the sequence space a header consumes beyond payload.
func segLen(h *proto.TCPHeader, payload uint32) uint32 {
	n := payload
	if h.Flags&proto.TCPSyn != 0 {
		n++
	}
	if h.Flags&proto.TCPFin != 0 {
		n++
	}
	return n
}

// input runs the state machine for one segment on an existing PCB.
func (c *Conn) input(h *proto.TCPHeader, payload []byte) {
	e := c.engine
	c.lastActivity = e.env.Now()
	switch c.state {
	case StateSynSent:
		c.inputSynSent(h)
		return
	case StateClosed:
		return
	}

	// RST processing: any acceptable RST kills the connection.
	if h.Flags&proto.TCPRst != 0 {
		if c.seqAcceptable(h.Seq, 0) || h.Seq == c.rcv.nxt {
			e.stats.ResetsIn++
			c.destroy(ErrReset, true)
		}
		return
	}

	// TIME_WAIT: just re-ACK (the peer may have lost our last ACK).
	if c.state == StateTimeWait {
		if h.Flags&proto.TCPFin != 0 {
			c.sendAck()
		}
		return
	}

	// Sequence acceptability; pure-ACK at exactly rcv.nxt is always fine.
	plen := uint32(len(payload))
	if !c.seqAcceptable(h.Seq, plen+boolBit(h.Flags&proto.TCPFin != 0)) {
		// Out-of-window: send a corrective ACK (also handles old dup SYNs).
		c.sendAck()
		return
	}

	// SYN retransmit in SYN_RCVD: re-send SYN|ACK.
	if h.Flags&proto.TCPSyn != 0 && c.state == StateSynRcvd && h.Seq == c.irs {
		c.sendFlags(proto.TCPSyn|proto.TCPAck, c.iss, c.rcv.nxt, true)
		return
	}

	if h.Flags&proto.TCPAck == 0 {
		return // every segment past SYN must carry ACK
	}
	if !c.processAck(h) {
		return // connection destroyed or segment unacceptable
	}
	if len(payload) > 0 || h.Flags&proto.TCPFin != 0 {
		c.processData(h, payload)
	}
	c.trySend() // ACK may have opened window / freed buffer
	c.maybeSendAck()
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// seqAcceptable implements the RFC 793 window check.
func (c *Conn) seqAcceptable(seq, length uint32) bool {
	wnd := c.recvWindow()
	if length == 0 {
		if wnd == 0 {
			return seq == c.rcv.nxt
		}
		return proto.SeqGEQ(seq, c.rcv.nxt) && proto.SeqLT(seq, c.rcv.nxt+wnd) ||
			proto.SeqLT(seq, c.rcv.nxt) // old duplicate: still ACK it
	}
	if wnd == 0 {
		return false
	}
	segEnd := seq + length - 1
	startsIn := proto.SeqGEQ(seq, c.rcv.nxt) && proto.SeqLT(seq, c.rcv.nxt+wnd)
	endsIn := proto.SeqGEQ(segEnd, c.rcv.nxt) && proto.SeqLT(segEnd, c.rcv.nxt+wnd)
	return startsIn || endsIn
}

// inputSynSent handles segments while actively opening.
func (c *Conn) inputSynSent(h *proto.TCPHeader) {
	e := c.engine
	ackOK := h.Flags&proto.TCPAck != 0 &&
		proto.SeqGT(h.Ack, c.iss) && proto.SeqLEQ(h.Ack, c.snd.nxt)
	if h.Flags&proto.TCPRst != 0 {
		if ackOK {
			e.stats.ResetsIn++
			c.destroy(ErrReset, true)
		}
		return
	}
	if h.Flags&proto.TCPSyn == 0 || !ackOK {
		return
	}
	c.irs = h.Seq
	c.rcv.nxt = h.Seq + 1
	c.snd.una = h.Ack
	c.applyPeerOptions(h)
	c.measureRTT(h.Ack)
	e.env.StopTimer(c, TimerRexmit)
	c.state = StateEstablished
	e.stats.EstablishedTransitons++
	c.sendAck()
	e.env.Connected(c)
	c.trySend()
}

// processAck handles the ACK field: snd.una advance, RTT, Reno, state
// transitions for FIN acknowledgment. Returns false if c was destroyed.
func (c *Conn) processAck(h *proto.TCPHeader) bool {
	e := c.engine
	ack := h.Ack
	if proto.SeqGT(ack, c.snd.nxt) {
		c.sendAck() // acks the future: corrective ACK
		return false
	}

	// Window update (RFC 1122 ordering checks elided: sim links don't
	// reorder within a direction).
	c.snd.wnd = uint32(h.Window) << c.snd.wndShift

	if proto.SeqLEQ(ack, c.snd.una) {
		if ack == c.snd.una && c.bytesInFlight() > 0 {
			c.onDupAck()
		}
		return true
	}

	// New data acknowledged.
	c.rexmitCount = 0
	acked := ack - c.snd.una
	c.measureRTT(ack)
	c.advanceSendBuffer(acked, ack)
	c.renoOnAck(acked, ack)

	// SYN_RCVD → ESTABLISHED.
	if c.state == StateSynRcvd {
		c.state = StateEstablished
		e.stats.EstablishedTransitons++
		e.stats.AcceptedConns++
		if c.Listener != nil {
			c.Listener.embryonic--
			c.Listener.dropEmbryonic(c)
			if len(c.Listener.acceptQ) >= c.Listener.backlog {
				e.stats.AcceptQueueOverflow++
				c.Abort()
				return false
			}
			c.Listener.acceptQ = append(c.Listener.acceptQ, c)
			e.env.Accepted(c)
			e.armGuard(c)
		}
	}

	// FIN acknowledgment transitions.
	if c.snd.finSent && ack == c.snd.nxt {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.destroy(nil, false)
			return false
		}
	}

	// Retransmission timer: restart if data remains, stop otherwise.
	if c.bytesInFlight() > 0 || (c.snd.finSent && c.snd.una != c.snd.nxt) {
		e.env.ArmTimer(c, TimerRexmit, c.rto)
	} else {
		e.env.StopTimer(c, TimerRexmit)
	}
	return true
}

// bytesInFlight returns unacknowledged payload bytes.
func (c *Conn) bytesInFlight() uint32 {
	fl := c.snd.nxt - c.snd.una
	if c.snd.finSent && fl > 0 {
		fl-- // FIN occupies sequence space but not payload
	}
	if c.state == StateSynSent || c.state == StateSynRcvd {
		return 0
	}
	return fl
}

// advanceSendBuffer trims acked bytes and notifies the socket.
func (c *Conn) advanceSendBuffer(acked, ack uint32) {
	dataAcked := acked
	if c.snd.finSent && ack == c.snd.nxt {
		dataAcked-- // final byte was the FIN
	}
	if int(dataAcked) > len(c.sndBuf()) {
		dataAcked = uint32(len(c.sndBuf()))
	}
	if dataAcked > 0 {
		c.bufs.snd = c.bufs.snd[dataAcked:]
	}
	c.snd.una = ack
	if dataAcked > 0 {
		c.engine.env.SendSpace(c)
	}
}

// processData ingests payload and FIN.
func (c *Conn) processData(h *proto.TCPHeader, payload []byte) {
	e := c.engine
	seq := h.Seq
	fin := h.Flags&proto.TCPFin != 0
	// The FIN occupies the sequence number right after the (untrimmed)
	// payload of this segment.
	finSeq := h.Seq + uint32(len(payload))

	// Trim anything before rcv.nxt (retransmitted overlap).
	if proto.SeqLT(seq, c.rcv.nxt) {
		skip := c.rcv.nxt - seq
		if skip >= uint32(len(payload)) {
			payload = nil
		} else {
			payload = payload[skip:]
		}
		seq = c.rcv.nxt
		e.stats.SegmentsTrimmed++
	}

	if len(payload) > 0 {
		if seq == c.rcv.nxt {
			c.appendInOrder(payload)
			c.mergeOutOfOrder()
		} else if proto.SeqGT(seq, c.rcv.nxt) {
			e.stats.OutOfOrderIn++
			c.insertOutOfOrder(seq, payload)
			c.ackPending = 2 // force immediate dup-ACK
		}
	}

	if fin && !proto.SeqLT(finSeq, c.rcv.nxt) {
		c.rcv.finSeen = true
		c.rcv.finSeq = finSeq
	}
	c.maybeProcessFin()
}

// appendInOrder moves in-order payload into the receive buffer.
func (c *Conn) appendInOrder(payload []byte) {
	b := c.ensureBufs()
	space := c.rcv.bufMax - len(b.rcv)
	if space < len(payload) {
		payload = payload[:space] // peer overran our window; drop excess
	}
	if len(payload) == 0 {
		return
	}
	b.rcv = append(b.rcv, payload...)
	c.rcv.nxt += uint32(len(payload))
	c.engine.stats.DataBytesIn += uint64(len(payload))
	c.ackPending++
	c.engine.env.DataReadable(c)
}

// insertOutOfOrder stores a future segment sorted by sequence.
func (c *Conn) insertOutOfOrder(seq uint32, payload []byte) {
	b := c.ensureBufs()
	if len(b.oo) > 64 {
		return // bound memory; peer will retransmit
	}
	data := append([]byte(nil), payload...)
	at := len(b.oo)
	for i, s := range b.oo {
		if proto.SeqLT(seq, s.seq) {
			at = i
			break
		}
	}
	b.oo = append(b.oo, ooSeg{})
	copy(b.oo[at+1:], b.oo[at:])
	b.oo[at] = ooSeg{seq: seq, data: data}
}

// mergeOutOfOrder pulls newly contiguous segments into the buffer.
func (c *Conn) mergeOutOfOrder() {
	b := c.bufs
	if b == nil {
		return
	}
	for len(b.oo) > 0 {
		s := b.oo[0]
		if proto.SeqGT(s.seq, c.rcv.nxt) {
			return
		}
		b.oo = b.oo[1:]
		if proto.SeqLEQ(s.seq+uint32(len(s.data)), c.rcv.nxt) {
			continue // fully duplicate
		}
		c.appendInOrder(s.data[c.rcv.nxt-s.seq:])
	}
}

// maybeProcessFin consumes the peer FIN once all data before it arrived.
func (c *Conn) maybeProcessFin() {
	if !c.rcv.finSeen || c.rcv.nxt != c.rcv.finSeq {
		return
	}
	e := c.engine
	e.stats.FinsIn++
	c.rcv.nxt++ // FIN consumes one sequence number
	c.ackPending = 2

	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
		e.env.DataReadable(c) // EOF is readable
	case StateFinWait1:
		if c.snd.finSent && c.snd.una == c.snd.nxt {
			c.enterTimeWait()
		} else {
			c.state = StateClosing
		}
		e.env.ConnClosed(c, false)
	case StateFinWait2:
		c.enterTimeWait()
		e.env.ConnClosed(c, false)
	}
}

// enterTimeWait moves to TIME_WAIT and arms the reaper.
func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	e := c.engine
	e.env.StopTimer(c, TimerRexmit)
	e.env.ArmTimer(c, TimerTimeWait, e.cfg.TimeWait)
}

// destroy tears down a connection immediately (RST in/out or LastAck done).
func (c *Conn) destroy(err error, reset bool) {
	if c.state == StateClosed {
		return
	}
	wasEmbryonic := c.state == StateSynRcvd
	wasVisible := c.state == StateEstablished || c.state == StateSynRcvd ||
		c.state == StateSynSent || c.state == StateCloseWait ||
		c.state == StateFinWait1 || c.state == StateFinWait2 || c.state == StateClosing
	c.state = StateClosed
	c.Err = err
	if c.Listener != nil {
		if wasEmbryonic {
			// A SYN_RCVD connection dying (SYN-ACK retry exhaustion, peer
			// RST, guard shed) must release its backlog slot, or a flood of
			// abandoned handshakes wedges the listener permanently.
			c.Listener.embryonic--
			c.Listener.dropEmbryonic(c)
		}
		// Remove from accept queue if never accepted.
		q := c.Listener.acceptQ
		for i, qc := range q {
			if qc == c {
				c.Listener.acceptQ = append(q[:i], q[i+1:]...)
				break
			}
		}
	}
	if wasVisible {
		c.engine.env.ConnClosed(c, reset)
	}
	c.engine.remove(c)
}
