package tcpeng

import (
	"bytes"
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
)

// swapEngineB replaces B's engine with a fresh one (a "crashed and
// respawned" TCP component) and invalidates the old engine's timers.
func swapEngineB(h *harness, cfg Config) *Engine {
	h.b.gen = map[timerKey]int{}
	h.b.armed = map[timerKey]bool{}
	h.b.engine = NewEngine(h.b, h.b.addr, cfg)
	return h.b.engine
}

func TestSnapshotRestoreQuiescentConnectionsSurvive(t *testing.T) {
	h := newHarness(40)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)

	// Establish 3 connections and exchange some data, then go quiescent.
	type pair struct{ cli, srv *Conn }
	var pairs []pair
	for i := 0; i < 3; i++ {
		cli, srv := h.connectPair(80)
		if srv == nil {
			t.Fatal("no connection")
		}
		cli.Send([]byte("warmup"))
		pairs = append(pairs, pair{cli, srv})
	}
	h.run(h.now + 100*sim.Millisecond) // all data acked, fully quiescent

	snap := h.b.engine.Snapshot()
	if len(snap.Conns) != 3 || len(snap.Listeners) != 1 {
		t.Fatalf("snapshot: %d conns, %d listeners", len(snap.Conns), len(snap.Listeners))
	}
	if snap.StateBytes() < 3*256 {
		t.Fatalf("state bytes: %d", snap.StateBytes())
	}

	// Crash: new engine, restore the checkpoint.
	fresh := swapEngineB(h, defCfg())
	if got := fresh.Restore(snap); got != 3 {
		t.Fatalf("restored %d", got)
	}
	h.run(h.now + 100*sim.Millisecond) // resynchronization ACKs settle

	// All three connections still carry data in BOTH directions.
	for i, p := range pairs {
		// Find the restored server conn (same 4-tuple, new object).
		la, lp := p.cli.LocalAddr()
		var srv *Conn
		for _, c := range snapshot(fresh.conns) {
			ra, rp := c.RemoteAddr()
			if ra == la && rp == lp {
				srv = c
			}
		}
		if srv == nil {
			t.Fatalf("conn %d not in restored engine", i)
		}
		if srv.State() != StateEstablished {
			t.Fatalf("conn %d state %v", i, srv.State())
		}
		before := len(h.b.recvData[srv])
		p.cli.Send([]byte("post-restore"))
		h.runUntil(func() bool { return len(h.b.recvData[srv]) >= before+12 }, 2*sim.Second)
		if got := h.b.recvData[srv][before:]; !bytes.Equal(got, []byte("post-restore")) {
			t.Fatalf("conn %d client->server broken after restore: %q", i, got)
		}
		srv.Send([]byte("server-side"))
		want := "server-side"
		h.runUntil(func() bool {
			return bytes.HasSuffix(h.a.recvData[p.cli], []byte(want))
		}, 2*sim.Second)
		if !bytes.HasSuffix(h.a.recvData[p.cli], []byte(want)) {
			t.Fatalf("conn %d server->client broken after restore", i)
		}
	}
	// The restored listener accepts new connections too.
	cli, srv := h.connectPair(80)
	if srv == nil || cli.State() != StateEstablished {
		t.Fatal("restored listener does not accept")
	}
}

func TestSnapshotRestoreWithUnackedDataRetransmits(t *testing.T) {
	h := newHarness(41)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)

	// Server sends data but the checkpoint happens BEFORE the ACK comes
	// back: black-hole the wire, send, snapshot, crash, restore, unplug.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return true }
	srv.Send(bytes.Repeat([]byte("x"), 5000))
	snap := h.b.engine.Snapshot()
	var inflight int
	for _, cs := range snap.Conns {
		inflight += len(cs.SndBuf)
	}
	if inflight != 5000 {
		t.Fatalf("snapshot captured %d unacked bytes", inflight)
	}

	fresh := swapEngineB(h, defCfg())
	fresh.Restore(snap)
	h.Drop = nil
	h.run(h.now + 2*sim.Second) // RTO retransmissions resynchronize

	if got := len(h.a.recvData[cli]); got != 5000 {
		t.Fatalf("client received %d of 5000 after restore", got)
	}
	if fresh.Stats().Retransmits == 0 {
		t.Fatal("restore did not retransmit")
	}
}

func TestRestorePreservesConnIDAndCtx(t *testing.T) {
	h := newHarness(42)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	_, srv := h.connectPair(80)
	srv.Ctx = "socket-bookkeeping"
	oldID := srv.ID

	snap := h.b.engine.Snapshot()
	fresh := swapEngineB(h, defCfg())
	fresh.Restore(snap)
	var restored *Conn
	for _, c := range snapshot(fresh.conns) {
		restored = c
	}
	if restored.ID != oldID {
		t.Fatalf("ConnID changed: %d -> %d", oldID, restored.ID)
	}
	if restored.Ctx != "socket-bookkeeping" {
		t.Fatalf("Ctx lost: %v", restored.Ctx)
	}
	// New conns after restore never collide with preserved IDs.
	c2, _ := fresh.Connect(h.a.addr, 9999)
	if c2.ID <= oldID {
		t.Fatalf("ID allocator rewound: %d", c2.ID)
	}
}

// TestRestoreRebindSingleRexmitFiring is the regression test for the
// timer-leak across checkpoint/restore re-binds: the old engine's armed
// rexmit timer survives the swap (this harness does NOT invalidate it, unlike
// swapEngineB) and fires into the respawned engine with the old conn. The
// engine-identity guard in OnTimer must reject that stale firing, so exactly
// one retransmission — the restored conn's own — happens at the first RTO.
func TestRestoreRebindSingleRexmitFiring(t *testing.T) {
	h := newHarness(44)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)

	// Unacked data in flight: the server's rexmit timer is pending.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return true }
	srv.Send(bytes.Repeat([]byte("z"), 1000))
	snap := h.b.engine.Snapshot()

	// Crash + respawn WITHOUT invalidating the old engine's timers: the
	// leaked firing must be neutralized by the engine itself.
	fresh := NewEngine(h.b, h.b.addr, defCfg())
	h.b.engine = fresh
	fresh.Restore(snap)

	// Both the leaked timer and the restored conn's timer fire at +50ms
	// (InitialRTO). Keep the wire black-holed and count firings.
	h.run(h.now + 60*sim.Millisecond)
	st := fresh.Stats()
	if st.Retransmits != 1 {
		t.Fatalf("want exactly 1 rexmit firing after restore, got %d", st.Retransmits)
	}
	if st.SpuriousTimerFirings == 0 {
		t.Fatal("leaked old-engine timer was not rejected")
	}

	// Unplug: the restored conn resynchronizes and delivers everything.
	h.Drop = nil
	h.run(h.now + 2*sim.Second)
	if got := len(h.a.recvData[cli]); got != 1000 {
		t.Fatalf("client received %d of 1000 after rebind", got)
	}
}

func TestRetriesExceededKillsStalledConn(t *testing.T) {
	cfg := defCfg()
	cfg.MaxRetries = 3
	cfg.MaxRTO = 50 * sim.Millisecond
	h := newHarness(43)
	h.build(cfg, defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, _ := h.connectPair(80)
	// Black-hole everything: the client retransmits, backs off, gives up.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return true }
	cli.Send([]byte("into the void"))
	h.run(h.now + 5*sim.Second)
	if cli.State() != StateClosed {
		t.Fatalf("stalled conn still %v", cli.State())
	}
	if h.a.engine.Stats().RetriesExceeded != 1 {
		t.Fatalf("stats: %+v", h.a.engine.Stats())
	}
}
