package tcpeng

import (
	"math/rand"
	"sort"

	"neat/internal/proto"
	"neat/internal/sim"
)

// The test harness wires two engines back-to-back through a fake
// environment with a manual clock: segments are serialized with the real
// proto marshalling, carried with a fixed one-way latency, and can be
// dropped, duplicated or reordered by per-test hooks.

const harnessLatency = 50 * sim.Microsecond

type hEvent struct {
	at  sim.Time
	seq int
	fn  func()
}

type harness struct {
	now   sim.Time
	seq   int
	queue []hEvent
	rng   *rand.Rand

	a, b *fakeEnv
	// DupAll duplicates every delivered segment (arriving twice).
	DupAll bool
	// Drop is consulted per transmitted segment (after serialization).
	Drop func(from *fakeEnv, f *proto.Frame) bool
	// ExtraDelay adds jitter per segment (reordering when > latency).
	ExtraDelay func(from *fakeEnv, f *proto.Frame) sim.Time
}

func newHarness(seed int64) *harness {
	h := &harness{rng: rand.New(rand.NewSource(seed))}
	h.a = newFakeEnv(h, "A", proto.IPv4(10, 0, 0, 1))
	h.b = newFakeEnv(h, "B", proto.IPv4(10, 0, 0, 2))
	return h
}

func (h *harness) at(t sim.Time, fn func()) {
	h.seq++
	h.queue = append(h.queue, hEvent{at: t, seq: h.seq, fn: fn})
	sort.Slice(h.queue, func(i, j int) bool {
		if h.queue[i].at != h.queue[j].at {
			return h.queue[i].at < h.queue[j].at
		}
		return h.queue[i].seq < h.queue[j].seq
	})
}

// step runs one event; returns false when idle.
func (h *harness) step() bool {
	if len(h.queue) == 0 {
		return false
	}
	e := h.queue[0]
	h.queue = h.queue[1:]
	if e.at > h.now {
		h.now = e.at
	}
	e.fn()
	return true
}

// run executes events until idle or the deadline passes.
func (h *harness) run(until sim.Time) {
	for len(h.queue) > 0 && h.queue[0].at <= until {
		h.step()
	}
	if h.now < until && len(h.queue) == 0 {
		h.now = until
	}
}

// runWhile steps until cond is false or idle or maxTime reached.
func (h *harness) runUntil(cond func() bool, maxTime sim.Time) bool {
	for !cond() {
		if len(h.queue) == 0 || h.queue[0].at > maxTime {
			return cond()
		}
		h.step()
	}
	return true
}

type timerKey struct {
	conn *Conn
	kind TimerKind
}

type fakeEnv struct {
	h      *harness
	name   string
	addr   proto.Addr
	engine *Engine
	peer   *fakeEnv
	rng    *rand.Rand

	gen   map[timerKey]int
	armed map[timerKey]bool

	accepted  []*Conn
	connected []*Conn
	closed    map[*Conn]bool
	resets    map[*Conn]bool
	removed   int
	readable  map[*Conn]int
	sendSpace map[*Conn]int

	// autoRecv drains receive buffers into recvData as data arrives
	// (push-mode sockets). Tests exercising flow control unset it.
	autoRecv bool
	recvData map[*Conn][]byte

	segsSent int
}

func newFakeEnv(h *harness, name string, addr proto.Addr) *fakeEnv {
	e := &fakeEnv{
		h: h, name: name, addr: addr,
		rng:       rand.New(rand.NewSource(int64(len(name)) + 7)),
		gen:       map[timerKey]int{},
		armed:     map[timerKey]bool{},
		closed:    map[*Conn]bool{},
		resets:    map[*Conn]bool{},
		readable:  map[*Conn]int{},
		sendSpace: map[*Conn]int{},
		recvData:  map[*Conn][]byte{},
		autoRecv:  true,
	}
	return e
}

func (e *fakeEnv) Now() sim.Time { return e.h.now }

func (e *fakeEnv) SendSegment(c *Conn, seg OutSegment) {
	e.segsSent++
	// Serialize through the real codec; split TSO like the NIC would.
	payloads := [][]byte{seg.Payload}
	if seg.TSO && len(seg.Payload) > seg.MSS {
		payloads = nil
		p := seg.Payload
		for len(p) > 0 {
			n := seg.MSS
			if n > len(p) {
				n = len(p)
			}
			payloads = append(payloads, p[:n])
			p = p[n:]
		}
	}
	seqNo := seg.Hdr.Seq
	for i, pl := range payloads {
		hdr := seg.Hdr
		hdr.Seq = seqNo
		if i < len(payloads)-1 {
			hdr.Flags &^= proto.TCPFin | proto.TCPPsh
		}
		raw := proto.BuildTCP(
			proto.EthernetHeader{Type: proto.EtherTypeIPv4},
			proto.IPv4Header{TTL: 64, Src: seg.Src, Dst: seg.Dst},
			hdr, pl)
		f, err := proto.DecodeFrame(raw)
		if err != nil {
			panic("harness: produced undecodable frame: " + err.Error())
		}
		if e.h.Drop != nil && e.h.Drop(e, f) {
			seqNo += uint32(len(pl))
			continue
		}
		delay := harnessLatency
		if e.h.ExtraDelay != nil {
			delay += e.h.ExtraDelay(e, f)
		}
		peer := e.peer
		e.h.at(e.h.now+delay, func() { peer.engine.Input(f) })
		if e.h.DupAll {
			e.h.at(e.h.now+delay+harnessLatency/2, func() { peer.engine.Input(f) })
		}
		seqNo += uint32(len(pl))
	}
}

func (e *fakeEnv) ArmTimer(c *Conn, k TimerKind, d sim.Time) {
	key := timerKey{c, k}
	e.gen[key]++
	g := e.gen[key]
	e.armed[key] = true
	e.h.at(e.h.now+d, func() {
		if e.gen[key] == g && e.armed[key] {
			e.armed[key] = false
			e.engine.OnTimer(c, k)
		}
	})
}

func (e *fakeEnv) StopTimer(c *Conn, k TimerKind) { e.armed[timerKey{c, k}] = false }

func (e *fakeEnv) Accepted(c *Conn)  { e.accepted = append(e.accepted, c) }
func (e *fakeEnv) Connected(c *Conn) { e.connected = append(e.connected, c) }

func (e *fakeEnv) DataReadable(c *Conn) {
	e.readable[c]++
	if e.autoRecv {
		e.recvData[c] = append(e.recvData[c], c.Recv(0)...)
	}
}

func (e *fakeEnv) SendSpace(c *Conn)            { e.sendSpace[c]++ }
func (e *fakeEnv) ConnClosed(c *Conn, rst bool) { e.closed[c] = true; e.resets[c] = rst }
func (e *fakeEnv) ConnRemoved(c *Conn)          { e.removed++ }
func (e *fakeEnv) RandUint32() uint32           { return e.rng.Uint32() }

// build creates the two engines with the given configs and links the envs.
func (h *harness) build(cfgA, cfgB Config) {
	h.a.engine = NewEngine(h.a, h.a.addr, cfgA)
	h.b.engine = NewEngine(h.b, h.b.addr, cfgB)
	h.a.peer = h.b
	h.b.peer = h.a
}

// connectPair establishes one connection from A to B:port and returns
// (client, server) conns, or nils on failure.
func (h *harness) connectPair(port uint16) (*Conn, *Conn) {
	nc, na := len(h.a.connected), len(h.b.accepted)
	cli, err := h.a.engine.Connect(h.b.addr, port)
	if err != nil {
		return nil, nil
	}
	ok := h.runUntil(func() bool {
		return len(h.a.connected) > nc && len(h.b.accepted) > na
	}, 10*sim.Second)
	if !ok {
		return cli, nil
	}
	return cli, h.b.accepted[len(h.b.accepted)-1]
}
