package tcpeng

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"neat/internal/proto"
	"neat/internal/sim"
)

func defCfg() Config { return DefaultConfig() }

func TestHandshake(t *testing.T) {
	h := newHarness(1)
	h.build(defCfg(), defCfg())
	if _, err := h.b.engine.Listen(proto.Addr{}, 80, 16); err != nil {
		t.Fatal(err)
	}
	cli, srv := h.connectPair(80)
	if srv == nil {
		t.Fatal("handshake did not complete")
	}
	if cli.State() != StateEstablished || srv.State() != StateEstablished {
		t.Fatalf("states: cli=%v srv=%v", cli.State(), srv.State())
	}
	if cli.MSS() != 1460 || srv.MSS() != 1460 {
		t.Fatalf("MSS negotiation: %d/%d", cli.MSS(), srv.MSS())
	}
	_, lp := cli.LocalAddr()
	if lp < 32768 {
		t.Fatalf("ephemeral port %d", lp)
	}
	if h.b.engine.NumEstablished() != 1 {
		t.Fatalf("established=%d", h.b.engine.NumEstablished())
	}
}

func TestConnectToClosedPortResets(t *testing.T) {
	h := newHarness(1)
	h.build(defCfg(), defCfg())
	cli, err := h.a.engine.Connect(h.b.addr, 81)
	if err != nil {
		t.Fatal(err)
	}
	h.runUntil(func() bool { return cli.State() == StateClosed }, sim.Second)
	if cli.State() != StateClosed || cli.Err != ErrReset {
		t.Fatalf("state=%v err=%v", cli.State(), cli.Err)
	}
	if h.a.engine.Stats().ResetsIn == 0 {
		t.Fatal("no RST counted")
	}
	if h.a.engine.NumConns() != 0 {
		t.Fatal("PCB leaked after reset")
	}
}

func TestSmallDataBothDirections(t *testing.T) {
	h := newHarness(2)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	if srv == nil {
		t.Fatal("no connection")
	}
	if n := cli.Send([]byte("hello server")); n != 12 {
		t.Fatalf("Send took %d", n)
	}
	h.runUntil(func() bool { return len(h.b.recvData[srv]) == 12 }, sim.Second)
	if string(h.b.recvData[srv]) != "hello server" {
		t.Fatalf("server got %q", h.b.recvData[srv])
	}
	srv.Send([]byte("hello client"))
	h.runUntil(func() bool { return len(h.a.recvData[cli]) == 12 }, sim.Second)
	if string(h.a.recvData[cli]) != "hello client" {
		t.Fatalf("client got %q", h.a.recvData[cli])
	}
}

func TestLargeTransferSegmentsAndReassembles(t *testing.T) {
	h := newHarness(3)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	if srv == nil {
		t.Fatal("no connection")
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// Feed through the bounded send buffer as space frees.
	sent := 0
	feed := func() {
		for sent < len(payload) {
			n := cli.Send(payload[sent:])
			if n == 0 {
				break
			}
			sent += n
		}
	}
	feed()
	for !h.runUntil(func() bool { return len(h.b.recvData[srv]) == len(payload) }, 30*sim.Second) {
		if sent == len(payload) {
			break
		}
		feed()
	}
	// Keep feeding on send-space events.
	for i := 0; i < 10000 && len(h.b.recvData[srv]) < len(payload); i++ {
		feed()
		if !h.step() {
			break
		}
	}
	got := h.b.recvData[srv]
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	st := h.a.engine.Stats()
	if st.SegsOut < 700 {
		t.Fatalf("expected ~719 data segments, sent %d", st.SegsOut)
	}
	if st.Retransmits != 0 {
		t.Fatalf("lossless link retransmitted %d", st.Retransmits)
	}
}

func TestTSOSendsSuperSegments(t *testing.T) {
	cfg := defCfg()
	cfg.TSO = true
	h := newHarness(4)
	h.build(cfg, defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	sent := 0
	for i := 0; i < 50000 && len(h.b.recvData[srv]) < len(payload); i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && sent == len(payload) {
			break
		}
	}
	if !bytes.Equal(h.b.recvData[srv], payload) {
		t.Fatalf("TSO transfer corrupted: %d bytes", len(h.b.recvData[srv]))
	}
	// With TSO the engine emits far fewer (super)segments than payload/MSS.
	if st := h.a.engine.Stats(); st.SegsOut > 40 {
		t.Fatalf("TSO did not coalesce: %d segments out", st.SegsOut)
	}
}

func TestLostDataSegmentRecovered(t *testing.T) {
	h := newHarness(5)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	dropped := false
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		// Drop the first data segment from A once.
		if from == h.a && len(f.Payload) > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	payload := make([]byte, 20*1460) // enough following segments for dup-ACKs
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	sent := 0
	for i := 0; i < 50000 && len(h.b.recvData[srv]) < len(payload); i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && sent == len(payload) {
			break
		}
	}
	if !bytes.Equal(h.b.recvData[srv], payload) {
		t.Fatalf("recovery failed: got %d of %d", len(h.b.recvData[srv]), len(payload))
	}
	if !dropped {
		t.Fatal("drop hook never fired")
	}
	st := h.a.engine.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmission counted")
	}
	if h.b.engine.Stats().OutOfOrderIn == 0 {
		t.Fatal("receiver saw no out-of-order segments")
	}
}

func TestFastRetransmitPreferredOverRTO(t *testing.T) {
	h := newHarness(6)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	var seenData int
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		if from == h.a && len(f.Payload) > 0 {
			seenData++
			return seenData == 3 // drop the 3rd data segment
		}
		return false
	}
	payload := make([]byte, 30*1460)
	sent := 0
	start := h.now
	for i := 0; i < 50000 && len(h.b.recvData[srv]) < len(payload); i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && sent == len(payload) {
			break
		}
	}
	if len(h.b.recvData[srv]) != len(payload) {
		t.Fatalf("incomplete: %d", len(h.b.recvData[srv]))
	}
	st := h.a.engine.Stats()
	if st.FastRetransmits == 0 {
		t.Fatal("expected a fast retransmit")
	}
	// Fast retransmit should finish well before the 50ms initial RTO.
	if h.now-start > 40*sim.Millisecond {
		t.Fatalf("recovery took %v — looks like an RTO, not fast retransmit", h.now-start)
	}
}

func TestSynLossRecoveredByRTO(t *testing.T) {
	h := newHarness(7)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	first := true
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		if f.TCP.Flags&proto.TCPSyn != 0 && f.TCP.Flags&proto.TCPAck == 0 && first {
			first = false
			return true
		}
		return false
	}
	cli, srv := h.connectPair(80)
	if srv == nil || cli.State() != StateEstablished {
		t.Fatal("connect did not survive SYN loss")
	}
	if h.a.engine.Stats().Retransmits == 0 {
		t.Fatal("SYN retransmit not counted")
	}
}

func TestBacklogLimitsEmbryonic(t *testing.T) {
	h := newHarness(8)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 2)
	// Block SYN-ACKs so connections stay embryonic.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		return from == h.b && f.TCP.Flags&proto.TCPSyn != 0
	}
	for i := 0; i < 5; i++ {
		h.a.engine.Connect(h.b.addr, 80)
	}
	h.run(h.now + 20*sim.Millisecond)
	if got := h.b.engine.Stats().DroppedSynBacklog; got < 3 {
		t.Fatalf("backlog drops = %d, want >= 3", got)
	}
}

func TestOrderlyCloseBothSides(t *testing.T) {
	h := newHarness(9)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	cli.Send([]byte("bye"))
	h.runUntil(func() bool { return len(h.b.recvData[srv]) == 3 }, sim.Second)

	cli.Close()
	h.runUntil(func() bool { return srv.State() == StateCloseWait }, sim.Second)
	if cli.State() != StateFinWait2 && cli.State() != StateFinWait1 {
		t.Fatalf("client state %v", cli.State())
	}
	srv.Close()
	h.runUntil(func() bool { return cli.State() == StateTimeWait }, sim.Second)
	if srv.State() != StateLastAck && srv.State() != StateClosed {
		t.Fatalf("server state %v", srv.State())
	}
	// TIME_WAIT reaps; both engines end with zero PCBs.
	h.run(h.now + 2*defCfg().TimeWait)
	if h.a.engine.NumConns() != 0 || h.b.engine.NumConns() != 0 {
		t.Fatalf("PCBs leaked: a=%d b=%d", h.a.engine.NumConns(), h.b.engine.NumConns())
	}
	if h.a.engine.Stats().TimeWaitReaped != 1 {
		t.Fatalf("TIME_WAIT reap count: %+v", h.a.engine.Stats())
	}
}

func TestHalfCloseDeliversDataAfterFin(t *testing.T) {
	h := newHarness(10)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	cli.Close() // client half-closes immediately
	h.runUntil(func() bool { return srv.State() == StateCloseWait }, sim.Second)
	// Server can still send.
	srv.Send([]byte("late data"))
	h.runUntil(func() bool { return len(h.a.recvData[cli]) == 9 }, sim.Second)
	if string(h.a.recvData[cli]) != "late data" {
		t.Fatalf("half-close data: %q", h.a.recvData[cli])
	}
	srv.Close()
	h.run(h.now + sim.Second)
	if h.b.engine.NumConns() != 0 {
		t.Fatal("server PCB leaked")
	}
}

func TestAbortSendsRST(t *testing.T) {
	h := newHarness(11)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	cli.Abort()
	h.runUntil(func() bool { return srv.State() == StateClosed }, sim.Second)
	if !h.b.resets[srv] {
		t.Fatal("server not notified of reset")
	}
	if h.a.engine.NumConns() != 0 || h.b.engine.NumConns() != 0 {
		t.Fatal("PCBs leaked after abort")
	}
}

func TestFlowControlZeroWindowAndResume(t *testing.T) {
	cfgB := defCfg()
	cfgB.RecvBuf = 4096 // tiny receive buffer
	h := newHarness(12)
	h.build(defCfg(), cfgB)
	h.b.autoRecv = false // pull mode: data accumulates
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	sent := 0
	pump := func(n int) {
		for i := 0; i < n; i++ {
			if sent < len(payload) {
				sent += cli.Send(payload[sent:])
			}
			if !h.step() {
				break
			}
		}
	}
	pump(2000)
	if srv.RecvAvailable() != 4096 {
		t.Fatalf("receiver buffered %d, want full 4096", srv.RecvAvailable())
	}
	if h.b.engine.Stats().ZeroWindowAdvertised == 0 {
		t.Fatal("zero window never advertised")
	}
	// Drain and let the transfer finish.
	var got []byte
	for i := 0; i < 200000 && len(got) < len(payload); i++ {
		got = append(got, srv.Recv(0)...)
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && len(got) == len(payload) {
			break
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("flow-controlled transfer corrupted: %d of %d", len(got), len(payload))
	}
}

func TestPersistProbeSurvivesLostWindowUpdate(t *testing.T) {
	cfgB := defCfg()
	cfgB.RecvBuf = 2048
	h := newHarness(13)
	h.build(defCfg(), cfgB)
	h.b.autoRecv = false
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)

	payload := make([]byte, 8192)
	sent := 0
	for i := 0; i < 5000; i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() {
			break
		}
	}
	// Receiver full; drop the next window-update ACK so the sender must
	// discover the open window via persist probing.
	dropNextAck := true
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		if from == h.b && dropNextAck && len(f.Payload) == 0 {
			dropNextAck = false
			return true
		}
		return false
	}
	srv.Recv(0) // open the window (update gets dropped)
	var got int
	for i := 0; i < 200000; i++ {
		got += len(srv.Recv(0))
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if len(h.queue) == 0 {
			break
		}
		h.step()
		if sent == len(payload) && got >= len(payload)-2048 && srv.RecvAvailable() == 0 && cli.SendSpaceFree() == cfgB.SendBuf {
			break
		}
	}
	if h.a.engine.Stats().PersistProbes == 0 && h.a.engine.Stats().Retransmits == 0 {
		t.Fatal("sender never probed/retried after lost window update")
	}
}

func TestReorderingToleratedByOutOfOrderQueue(t *testing.T) {
	h := newHarness(14)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	h.ExtraDelay = func(from *fakeEnv, f *proto.Frame) sim.Time {
		if from == h.a && len(f.Payload) > 0 && h.rng.Intn(4) == 0 {
			return 120 * sim.Microsecond // push past later segments
		}
		return 0
	}
	payload := make([]byte, 50*1460)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	sent := 0
	for i := 0; i < 100000 && len(h.b.recvData[srv]) < len(payload); i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && sent == len(payload) {
			break
		}
	}
	if !bytes.Equal(h.b.recvData[srv], payload) {
		t.Fatalf("reordered transfer corrupted (%d bytes)", len(h.b.recvData[srv]))
	}
	if h.b.engine.Stats().OutOfOrderIn == 0 {
		t.Fatal("no reordering actually happened")
	}
}

func TestLossyLinkPropertyTransferIntact(t *testing.T) {
	// Property-style: across several seeds, a 5%-lossy link still delivers
	// the exact byte stream.
	for seed := int64(20); seed < 26; seed++ {
		h := newHarness(seed)
		h.build(defCfg(), defCfg())
		h.b.engine.Listen(proto.Addr{}, 80, 16)
		cli, srv := h.connectPair(80)
		if srv == nil {
			t.Fatalf("seed %d: no connection", seed)
		}
		h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
			return h.rng.Float64() < 0.05
		}
		payload := make([]byte, 64*1024)
		for i := range payload {
			payload[i] = byte(int(seed) + i*3)
		}
		sent := 0
		for i := 0; i < 400000 && len(h.b.recvData[srv]) < len(payload); i++ {
			if sent < len(payload) {
				sent += cli.Send(payload[sent:])
			}
			if !h.step() && sent == len(payload) {
				break
			}
		}
		if !bytes.Equal(h.b.recvData[srv], payload) {
			t.Fatalf("seed %d: lossy transfer corrupted: %d of %d bytes",
				seed, len(h.b.recvData[srv]), len(payload))
		}
	}
}

func TestListenerCloseStopsAccepting(t *testing.T) {
	h := newHarness(15)
	h.build(defCfg(), defCfg())
	l, _ := h.b.engine.Listen(proto.Addr{}, 80, 16)
	l.Close()
	cli, _ := h.a.engine.Connect(h.b.addr, 80)
	h.runUntil(func() bool { return cli.State() == StateClosed }, sim.Second)
	if cli.Err != ErrReset {
		t.Fatalf("connect to closed listener: err=%v", cli.Err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	h := newHarness(16)
	h.build(defCfg(), defCfg())
	if _, err := h.b.engine.Listen(proto.Addr{}, 80, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := h.b.engine.Listen(proto.Addr{}, 80, 16); err != ErrPortInUse {
		t.Fatalf("want ErrPortInUse, got %v", err)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	h := newHarness(17)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 1024)
	seen := map[uint16]bool{}
	for i := 0; i < 200; i++ {
		c, err := h.a.engine.Connect(h.b.addr, 80)
		if err != nil {
			t.Fatal(err)
		}
		_, p := c.LocalAddr()
		if seen[p] {
			t.Fatalf("ephemeral port %d reused while live", p)
		}
		seen[p] = true
	}
}

func TestDelayedAckFiresOnTimer(t *testing.T) {
	h := newHarness(18)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	_ = srv
	cli.Send([]byte("x")) // single small segment: receiver delays the ACK
	h.run(h.now + 20*sim.Millisecond)
	if h.b.engine.Stats().DelayedAcksSent == 0 {
		t.Fatal("delayed ACK never fired")
	}
	if cli.SendSpaceFree() != defCfg().SendBuf {
		t.Fatal("segment never acked")
	}
}

func TestShutdownAbortsEverything(t *testing.T) {
	h := newHarness(19)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 64)
	for i := 0; i < 5; i++ {
		h.connectPair(80)
	}
	if h.b.engine.NumConns() != 5 {
		t.Fatalf("conns=%d", h.b.engine.NumConns())
	}
	h.b.engine.Shutdown()
	if h.b.engine.NumConns() != 0 {
		t.Fatalf("Shutdown left %d conns", h.b.engine.NumConns())
	}
	h.run(h.now + sim.Second)
	// All clients saw resets.
	for c, rst := range h.a.resets {
		if !rst {
			t.Fatalf("client %v closed without reset", c)
		}
	}
}

func TestCrashWithoutShutdownLeavesPeerRetrying(t *testing.T) {
	// This is the paper's replica-crash model: state vanishes with no RST.
	h := newHarness(21)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	_ = srv
	// "Crash": drop the server engine silently by blackholing its input.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return from == h.a || from == h.b }
	cli.Send([]byte("doomed"))
	h.run(h.now + 300*sim.Millisecond)
	if h.a.engine.Stats().Retransmits == 0 {
		t.Fatal("client did not retransmit into the void")
	}
	if cli.State() != StateEstablished {
		t.Fatalf("client prematurely dropped: %v", cli.State())
	}
}

func TestStateStrings(t *testing.T) {
	if StateEstablished.String() != "Established" || StateTimeWait.String() != "TimeWait" {
		t.Fatal("state names broken")
	}
	if State(99).String() == "" {
		t.Fatal("unknown state unnamed")
	}
}

func TestWindowShift(t *testing.T) {
	if windowShift(65535) != 0 {
		t.Fatalf("shift(65535)=%d", windowShift(65535))
	}
	if windowShift(256<<10) == 0 {
		t.Fatal("large buffer needs scaling")
	}
	if s := windowShift(1 << 30); s > 14 {
		t.Fatalf("shift capped at 14, got %d", s)
	}
}

func TestRSTInSynRcvdFreesEmbryonic(t *testing.T) {
	h := newHarness(30)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 4)
	// Hold the handshake: drop the client's final ACK so the server conn
	// stays in SYN_RCVD, then let the client abort with RST.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		return from == h.a && f.TCP.Flags == proto.TCPAck && len(f.Payload) == 0
	}
	cli, _ := h.a.engine.Connect(h.b.addr, 80)
	h.run(h.now + 5*sim.Millisecond)
	if h.b.engine.NumConns() != 1 {
		t.Fatalf("server conns=%d", h.b.engine.NumConns())
	}
	h.Drop = nil
	cli.Abort()
	h.run(h.now + 20*sim.Millisecond)
	if h.b.engine.NumConns() != 0 {
		t.Fatalf("RST did not clear SYN_RCVD conn: %d", h.b.engine.NumConns())
	}
}

func TestPeerWithoutWindowScale(t *testing.T) {
	// A SYN without the WScale option must disable scaling both ways.
	h := newHarness(31)
	h.build(defCfg(), defCfg())
	l, _ := h.b.engine.Listen(proto.Addr{}, 80, 4)
	_ = l
	// Black-hole B's replies: A's engine has no PCB for this crafted flow
	// and would RST the embryonic connection away.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return true }
	syn := proto.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 100,
		Flags: proto.TCPSyn, Window: 4096, Opts: proto.TCPOptions{MSS: 1000}}
	raw := proto.BuildTCP(proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: h.a.addr, Dst: h.b.addr}, syn, nil)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	h.b.engine.Input(f)
	h.run(h.now + sim.Millisecond)
	// The SYN-ACK the server sent must still carry MSS but effectively a
	// conn whose peer window is unscaled.
	conns := h.b.engine.NumConns()
	if conns != 1 {
		t.Fatalf("conns=%d", conns)
	}
	// Grab the server conn and check negotiated values.
	for _, c := range snapshot(h.b.engine.conns) {
		if c.MSS() != 1000 {
			t.Fatalf("mss=%d, want 1000", c.MSS())
		}
		if c.snd.wndShift != 0 || c.rcv.wndShift != 0 {
			t.Fatalf("window scaling not disabled: snd=%d rcv=%d", c.snd.wndShift, c.rcv.wndShift)
		}
		if c.snd.wnd != 4096 {
			t.Fatalf("peer window=%d", c.snd.wnd)
		}
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	cfg := defCfg()
	cfg.NoDelay = false // Nagle on
	h := newHarness(32)
	h.build(cfg, defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	segsBefore := h.a.engine.Stats().SegsOut
	// Ten 10-byte writes back to back: Nagle must coalesce the trailing
	// nine while the first is in flight.
	for i := 0; i < 10; i++ {
		cli.Send([]byte("0123456789"))
	}
	h.runUntil(func() bool { return len(h.b.recvData[srv]) == 100 }, sim.Second)
	dataSegs := h.a.engine.Stats().SegsOut - segsBefore
	if dataSegs > 4 {
		t.Fatalf("Nagle off? %d segments for 10 small writes", dataSegs)
	}
	if string(h.b.recvData[srv]) != strings.Repeat("0123456789", 10) {
		t.Fatal("coalesced stream corrupted")
	}
}

func TestTimeWaitReAcksRetransmittedFin(t *testing.T) {
	h := newHarness(33)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	// Client closes; drop the client's final ACK of the server FIN once so
	// the server retransmits its FIN into the client's TIME_WAIT.
	dropped := false
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		if from == h.a && f.TCP.Flags == proto.TCPAck && cli.State() == StateTimeWait && !dropped {
			dropped = true
			return true
		}
		return false
	}
	cli.Close()
	h.runUntil(func() bool { return srv.State() == StateCloseWait }, sim.Second)
	srv.Close()
	h.run(h.now + sim.Second)
	if !dropped {
		t.Skip("final ACK was never the dropped one on this seed")
	}
	// Both sides still converge to fully closed.
	if h.a.engine.NumConns() != 0 || h.b.engine.NumConns() != 0 {
		t.Fatalf("PCBs leaked after FIN retransmit: a=%d b=%d",
			h.a.engine.NumConns(), h.b.engine.NumConns())
	}
}

func TestRetransmitTrimStats(t *testing.T) {
	h := newHarness(34)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli, srv := h.connectPair(80)
	// Duplicate every data segment: the receiver must trim overlaps.
	h.ExtraDelay = nil
	dup := true
	h.Drop = nil
	h.DupAll = dup
	payload := make([]byte, 10*1460)
	for i := range payload {
		payload[i] = byte(i)
	}
	sent := 0
	for i := 0; i < 100000 && len(h.b.recvData[srv]) < len(payload); i++ {
		if sent < len(payload) {
			sent += cli.Send(payload[sent:])
		}
		if !h.step() && sent == len(payload) {
			break
		}
	}
	if !bytes.Equal(h.b.recvData[srv], payload) {
		t.Fatalf("duplicated stream corrupted: %d bytes", len(h.b.recvData[srv]))
	}
	h.run(h.now + sim.Second) // drain the queued duplicate deliveries
	// Every segment arrived twice; the receiver saw ~2x the sender's
	// output and swallowed the duplicates without corrupting the stream.
	in, out := h.b.engine.Stats().SegsIn, h.a.engine.Stats().SegsOut
	if in < out*3/2 {
		t.Fatalf("duplication not observed: in=%d out=%d", in, out)
	}
	if uint64(len(h.b.recvData[srv])) != h.b.engine.Stats().DataBytesIn {
		t.Fatalf("duplicate bytes leaked into the stream: %d vs %d",
			len(h.b.recvData[srv]), h.b.engine.Stats().DataBytesIn)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		h := newHarness(77)
		h.build(defCfg(), defCfg())
		h.b.engine.Listen(proto.Addr{}, 80, 64)
		for i := 0; i < 10; i++ {
			cli, _ := h.connectPair(80)
			cli.Send(bytes.Repeat([]byte{byte(i)}, 5000))
		}
		h.run(h.now + sim.Second)
		sa, sb := h.a.engine.Stats(), h.b.engine.Stats()
		return sa.SegsOut + sb.SegsOut, sb.DataBytesIn
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic engine: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestWindowShiftProperty(t *testing.T) {
	f := func(buf uint32) bool {
		b := int(buf % (1 << 26))
		s := windowShift(b)
		// The shifted window must fit the 16-bit field, with the minimum
		// shift that achieves it (unless capped at 14).
		if b>>s > 0xffff {
			return s == 14
		}
		return s == 0 || (b>>(s-1)) > 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmeticProperties(t *testing.T) {
	trichotomy := func(a, b uint32) bool {
		lt, gt := proto.SeqLT(a, b), proto.SeqGT(a, b)
		if a == b {
			return !lt && !gt && proto.SeqLEQ(a, b) && proto.SeqGEQ(a, b)
		}
		return lt != gt // exactly one holds for distinct points
	}
	if err := quick.Check(trichotomy, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	shiftInvariance := func(a, b, d uint32) bool {
		// Ordering is invariant under adding the same offset (mod 2^32) as
		// long as the distance stays within half the space.
		if a-b == 1<<31 || b-a == 1<<31 {
			return true // boundary: ordering ambiguous by definition
		}
		return proto.SeqLT(a, b) == proto.SeqLT(a+d, b+d)
	}
	if err := quick.Check(shiftInvariance, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChunkedTransferProperty(t *testing.T) {
	// Property: any random write segmentation over a lossy link delivers
	// the identical byte stream.
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		h := newHarness(seed)
		h.build(defCfg(), defCfg())
		h.b.engine.Listen(proto.Addr{}, 80, 16)
		cli, srv := h.connectPair(80)
		if srv == nil {
			return false
		}
		h.Drop = func(from *fakeEnv, f *proto.Frame) bool { return h.rng.Float64() < 0.02 }
		var want []byte
		for _, sz := range sizes {
			chunk := bytes.Repeat([]byte{byte(sz)}, int(sz%3000)+1)
			want = append(want, chunk...)
		}
		sent := 0
		for i := 0; i < 500000 && len(h.b.recvData[srv]) < len(want); i++ {
			if sent < len(want) {
				sent += cli.Send(want[sent:])
			}
			if !h.step() && sent == len(want) {
				break
			}
		}
		return bytes.Equal(h.b.recvData[srv], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
