package tcpeng

import (
	"neat/internal/proto"
	"neat/internal/sim"
)

// Send appends data to the send buffer and transmits what the windows
// allow. It returns the number of bytes accepted (0 when the buffer is
// full — the socket layer blocks the app until SendSpace fires).
func (c *Conn) Send(data []byte) int {
	if c.userClosed || (c.state != StateEstablished && c.state != StateCloseWait) {
		return 0
	}
	b := c.ensureBufs()
	space := c.snd.bufMax - len(b.snd)
	if space <= 0 {
		return 0
	}
	if len(data) > space {
		data = data[:space]
	}
	b.snd = append(b.snd, data...)
	c.trySend()
	return len(data)
}

// SendSpaceFree returns the free bytes in the send buffer.
func (c *Conn) SendSpaceFree() int { return c.snd.bufMax - len(c.sndBuf()) }

// Recv takes up to max bytes of in-order received data. A growing receive
// window is re-advertised opportunistically by the next outbound segment.
func (c *Conn) Recv(max int) []byte {
	avail := len(c.rcvBuf())
	if max <= 0 || max > avail {
		max = avail
	}
	if max == 0 {
		return nil
	}
	out := c.bufs.rcv[:max:max]
	c.bufs.rcv = c.bufs.rcv[max:]
	// If the window was closed and now reopened substantially, send a
	// window update so the peer resumes.
	if c.rcv.lastWndAdvertised == 0 && c.recvWindow() >= uint32(c.mss) {
		c.sendAck()
	}
	return out
}

// RecvAvailable returns buffered in-order bytes not yet taken by Recv.
func (c *Conn) RecvAvailable() int { return len(c.rcvBuf()) }

// EOF reports whether the peer's FIN has been fully received and all data
// consumed.
func (c *Conn) EOF() bool {
	return c.rcv.finSeen && c.rcv.nxt == c.rcv.finSeq+1 && len(c.rcvBuf()) == 0
}

// Close performs an orderly close: any buffered data is still delivered,
// then a FIN is sent.
func (c *Conn) Close() {
	if c.userClosed {
		return
	}
	c.userClosed = true
	switch c.state {
	case StateSynSent:
		c.destroy(ErrConnClosed, false)
		return
	case StateEstablished, StateSynRcvd:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		return
	}
	c.snd.finQueued = true
	c.trySend()
}

// Abort sends RST and destroys the connection immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	if c.state != StateSynSent && c.state != StateTimeWait {
		c.engine.stats.ResetsOut++
		c.engine.stats.SegsOut++
		var hdr proto.TCPHeader
		hdr.SrcPort, hdr.DstPort = c.key.localPort, c.key.remotePort
		hdr.Flags = proto.TCPRst | proto.TCPAck
		hdr.Seq = c.snd.nxt
		hdr.Ack = c.rcv.nxt
		c.engine.env.SendSegment(c, OutSegment{
			Src: c.key.localAddr, Dst: c.key.remoteAddr, Hdr: hdr, MSS: c.mss,
		})
	}
	c.destroy(ErrConnClosed, true)
}

// recvWindow returns the receive window we can advertise.
func (c *Conn) recvWindow() uint32 {
	w := c.rcv.bufMax - len(c.rcvBuf())
	if w < 0 {
		w = 0
	}
	return uint32(w)
}

// advertisedWindow computes the window field (scaled) and records it.
func (c *Conn) advertisedWindow() uint16 {
	w := c.recvWindow()
	c.rcv.lastWndAdvertised = w
	if w == 0 {
		c.engine.stats.ZeroWindowAdvertised++
	}
	scaled := w >> c.rcv.wndShift
	if scaled > 0xffff {
		scaled = 0xffff
	}
	return uint16(scaled)
}

// sendFlags emits a control segment (SYN, SYN|ACK, bare ACK, ...).
// syn selects SYN options (MSS + window scale offer).
func (c *Conn) sendFlags(flags uint8, seq, ack uint32, syn bool) {
	e := c.engine
	var hdr proto.TCPHeader
	hdr.SrcPort, hdr.DstPort = c.key.localPort, c.key.remotePort
	hdr.Flags = flags
	hdr.Seq = seq
	hdr.Ack = ack
	hdr.Window = c.advertisedWindow()
	if syn {
		hdr.Opts.MSS = uint16(e.cfg.MSS)
		hdr.Opts.HasWScale = true
		hdr.Opts.WScale = c.rcv.wndShift
		// SYN segments advertise the unscaled window.
		w := c.recvWindow()
		if w > 0xffff {
			w = 0xffff
		}
		hdr.Window = uint16(w)
	}
	e.stats.SegsOut++
	e.env.SendSegment(c, OutSegment{
		Src: c.key.localAddr, Dst: c.key.remoteAddr, Hdr: hdr, MSS: c.mss,
	})
	c.ackPending = 0
	if c.delAckArmed {
		c.delAckArmed = false
		e.env.StopTimer(c, TimerDelAck)
	}
}

// sendAck emits an immediate bare ACK.
func (c *Conn) sendAck() {
	c.sendFlags(proto.TCPAck, c.snd.nxt, c.rcv.nxt, false)
}

// maybeSendAck implements delayed ACKs: every second segment immediately,
// otherwise after DelAckDelay.
func (c *Conn) maybeSendAck() {
	if c.ackPending == 0 {
		return
	}
	if c.ackPending >= 2 {
		c.sendAck()
		return
	}
	if !c.delAckArmed {
		c.delAckArmed = true
		c.engine.env.ArmTimer(c, TimerDelAck, c.engine.cfg.DelAckDelay)
	}
}

// trySend transmits as much buffered data (and the queued FIN) as the
// congestion and peer windows allow.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateLastAck && c.state != StateClosing {
		return
	}
	e := c.engine
	for {
		inFlight := c.snd.nxt - c.snd.una
		if c.snd.finSent {
			break // everything including FIN is out
		}
		wnd := c.snd.wnd
		if c.snd.cwnd < wnd {
			wnd = c.snd.cwnd
		}
		var avail uint32
		if wnd > inFlight {
			avail = wnd - inFlight
		}
		unsent := uint32(len(c.sndBuf())) - inFlight
		if unsent == 0 && !c.snd.finQueued {
			break
		}

		// Zero/insufficient window: wait for ACKs, or arm the persist
		// timer when the peer closed the window completely.
		if avail == 0 {
			if c.snd.wnd == 0 && inFlight == 0 && unsent > 0 {
				e.env.ArmTimer(c, TimerPersist, e.cfg.PersistInterval)
			}
			break
		}

		chunk := unsent
		if chunk > avail {
			chunk = avail
		}
		maxSeg := uint32(c.mss)
		if e.cfg.TSO {
			maxSeg = uint32(e.cfg.TSOMax)
		}
		if chunk > maxSeg {
			chunk = maxSeg
		}

		// Nagle: without NoDelay, hold small segments while data is in
		// flight.
		if chunk < uint32(c.mss) && inFlight > 0 && !e.cfg.NoDelay &&
			chunk == unsent && !c.snd.finQueued {
			break
		}

		fin := false
		if c.snd.finQueued && chunk == unsent {
			fin = true // FIN rides the last segment
		}
		if chunk == 0 && !fin {
			break
		}
		c.emitData(c.snd.nxt, chunk, fin)
		c.snd.nxt += chunk
		if fin {
			c.snd.finSent = true
			c.snd.finSeq = c.snd.nxt
			c.snd.nxt++
			e.stats.FinsOut++
		}
		e.env.ArmTimer(c, TimerRexmit, c.rto)
		// Time one segment per window for RTT.
		if !c.rttTiming && chunk > 0 {
			c.rttTiming = true
			c.rttSeq = c.snd.nxt
			c.rttAt = e.env.Now()
		}
		if fin {
			break
		}
	}
}

// emitData sends payload bytes [seq, seq+n) from the send buffer.
func (c *Conn) emitData(seq, n uint32, fin bool) {
	e := c.engine
	off := seq - c.snd.una
	payload := c.sndBuf()[off : off+n]
	var hdr proto.TCPHeader
	hdr.SrcPort, hdr.DstPort = c.key.localPort, c.key.remotePort
	hdr.Flags = proto.TCPAck | proto.TCPPsh
	if fin {
		hdr.Flags |= proto.TCPFin
	}
	hdr.Seq = seq
	hdr.Ack = c.rcv.nxt
	hdr.Window = c.advertisedWindow()
	e.stats.SegsOut++
	e.stats.DataBytesOut += uint64(n)
	// Payload is a view into the send buffer: the environment marshals
	// (copies) it into the outbound frame, and the buffer bytes it covers
	// stay in place until the segment is acked, so no defensive copy.
	e.env.SendSegment(c, OutSegment{
		Src: c.key.localAddr, Dst: c.key.remoteAddr, Hdr: hdr,
		Payload: payload,
		TSO:     e.cfg.TSO && int(n) > c.mss,
		MSS:     c.mss,
	})
	c.ackPending = 0
	if c.delAckArmed {
		c.delAckArmed = false
		e.env.StopTimer(c, TimerDelAck)
	}
}

// retransmit resends one MSS from snd.una (and the FIN if due).
func (c *Conn) retransmit() {
	e := c.engine
	inFlightSeq := c.snd.nxt - c.snd.una
	if inFlightSeq == 0 {
		return
	}
	n := uint32(len(c.sndBuf()))
	if n > uint32(c.mss) {
		n = uint32(c.mss)
	}
	dataOutstanding := inFlightSeq
	if c.snd.finSent {
		dataOutstanding--
	}
	if n > dataOutstanding {
		n = dataOutstanding
	}
	fin := false
	if c.snd.finSent && n == dataOutstanding {
		fin = true
	}
	if n == 0 && !fin {
		return
	}
	e.stats.Retransmits++
	c.emitData(c.snd.una, n, fin)
	// Karn's algorithm: don't time retransmitted sequences.
	c.rttTiming = false
}

// measureRTT updates srtt/rttvar/rto per RFC 6298 when the timed segment
// is acknowledged.
func (c *Conn) measureRTT(ack uint32) {
	if !c.rttTiming || proto.SeqLT(ack, c.rttSeq) {
		return
	}
	c.rttTiming = false
	r := c.engine.env.Now() - c.rttAt
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.engine.cfg.MinRTO {
		rto = c.engine.cfg.MinRTO
	}
	if rto > c.engine.cfg.MaxRTO {
		rto = c.engine.cfg.MaxRTO
	}
	c.rto = rto
}

// SRTT returns the smoothed round-trip time estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// renoOnAck grows cwnd (slow start / congestion avoidance) and exits fast
// recovery when the recovery point is passed.
func (c *Conn) renoOnAck(acked, ack uint32) {
	mss := uint32(c.mss)
	if c.snd.inFastRecovery {
		if proto.SeqGEQ(ack, c.snd.recover) {
			c.snd.inFastRecovery = false
			c.snd.dupAcks = 0
			c.snd.cwnd = c.snd.ssthresh
		} else {
			// Partial ACK: retransmit next hole immediately.
			c.retransmit()
			return
		}
	}
	c.snd.dupAcks = 0
	if c.snd.cwnd < c.snd.ssthresh {
		c.snd.cwnd += acked // slow start
	} else {
		// Congestion avoidance: ~1 MSS per RTT.
		add := mss * mss / c.snd.cwnd
		if add == 0 {
			add = 1
		}
		c.snd.cwnd += add
	}
	if max := uint32(c.snd.bufMax) * 2; c.snd.cwnd > max {
		c.snd.cwnd = max
	}
}

// onDupAck counts duplicate ACKs and triggers Reno fast retransmit.
func (c *Conn) onDupAck() {
	e := c.engine
	e.stats.DupAcksIn++
	if c.snd.inFastRecovery {
		c.snd.cwnd += uint32(c.mss) // inflate
		c.trySend()
		return
	}
	c.snd.dupAcks++
	if c.snd.dupAcks == 3 {
		e.stats.FastRetransmits++
		fl := c.snd.nxt - c.snd.una
		half := fl / 2
		if half < 2*uint32(c.mss) {
			half = 2 * uint32(c.mss)
		}
		c.snd.ssthresh = half
		c.snd.recover = c.snd.nxt
		c.snd.inFastRecovery = true
		c.retransmit()
		c.snd.cwnd = c.snd.ssthresh + 3*uint32(c.mss)
	}
}

// OnTimer must be called by the Env owner when a previously armed timer
// fires. It dispatches to the protocol action for the timer kind. The
// engine-identity check rejects fires that leaked across a checkpoint/
// restore re-bind: a timer armed by a previous engine incarnation must not
// drive protocol actions against the engine that restored the connection.
func (e *Engine) OnTimer(c *Conn, k TimerKind) {
	if c.engine != e || c.state == StateClosed || c.removed {
		e.stats.SpuriousTimerFirings++
		return
	}
	switch k {
	case TimerRexmit:
		e.onRexmitTimeout(c)
	case TimerPersist:
		e.onPersist(c)
	case TimerDelAck:
		c.delAckArmed = false
		if c.ackPending > 0 {
			e.stats.DelayedAcksSent++
			c.sendAck()
		}
	case TimerTimeWait:
		e.stats.TimeWaitReaped++
		c.destroy(nil, false)
	case TimerGuard:
		e.onGuardTimer(c)
	}
}

// armGuard starts deadline policing on a freshly accepted server-side
// connection. Called only from the passive-establishment path, so active
// (client) connections are never reaped by their own engine's guards.
func (e *Engine) armGuard(c *Conn) {
	g := e.cfg.Guard
	switch {
	case g.HeaderDeadline > 0:
		c.guardPhase = guardHeader
		e.env.ArmTimer(c, TimerGuard, g.HeaderDeadline)
	case g.IdleDeadline > 0:
		c.guardPhase = guardIdle
		e.env.ArmTimer(c, TimerGuard, g.IdleDeadline)
	}
}

// onGuardTimer enforces the header-progress and idle deadlines.
//
// The header phase checks a cumulative payload floor, not mere progress:
// a slowloris client trickling one header byte per tick advances rcv.nxt
// every time, but still dies at the deadline with < HeaderMinBytes
// delivered. The idle phase then polices total inbound silence — any
// segment (bare ACKs during a long download included) counts as activity,
// so a legitimately receiving client is never reaped.
func (e *Engine) onGuardTimer(c *Conn) {
	g := e.cfg.Guard
	if c.state != StateEstablished {
		// The connection is closing (or already past ESTABLISHED): the
		// FIN/TIME_WAIT teardown legitimately receives nothing, and the
		// regular rexmit/TIME_WAIT machinery bounds its lifetime. Disarm.
		c.guardPhase = guardNone
		return
	}
	switch c.guardPhase {
	case guardHeader:
		if c.rcv.nxt-c.irs-1 < uint32(g.HeaderMinBytes) {
			e.stats.SlowlorisReaped++
			c.Abort()
			return
		}
		if g.IdleDeadline > 0 {
			c.guardPhase = guardIdle
			e.env.ArmTimer(c, TimerGuard, g.IdleDeadline)
		} else {
			c.guardPhase = guardNone
		}
	case guardIdle:
		idle := e.env.Now() - c.lastActivity
		if idle >= g.IdleDeadline {
			e.stats.SlowlorisReaped++
			c.Abort()
			return
		}
		e.env.ArmTimer(c, TimerGuard, g.IdleDeadline-idle)
	}
}

// onRexmitTimeout handles RTO expiry: exponential backoff, cwnd collapse,
// retransmission of the oldest segment (or SYN).
func (e *Engine) onRexmitTimeout(c *Conn) {
	switch c.state {
	case StateSynSent:
		c.rto *= 2
		if c.rto > e.cfg.MaxRTO {
			c.destroy(ErrConnClosed, false)
			return
		}
		e.stats.Retransmits++
		c.sendFlags(proto.TCPSyn, c.iss, 0, true)
		e.env.ArmTimer(c, TimerRexmit, c.rto)
		return
	case StateSynRcvd:
		c.rto *= 2
		if c.rto > e.cfg.MaxRTO {
			c.destroy(ErrConnClosed, false)
			return
		}
		e.stats.Retransmits++
		c.sendFlags(proto.TCPSyn|proto.TCPAck, c.iss, c.rcv.nxt, true)
		e.env.ArmTimer(c, TimerRexmit, c.rto)
		return
	}
	if c.snd.nxt == c.snd.una {
		return // nothing outstanding
	}
	c.rexmitCount++
	if c.rexmitCount > e.cfg.MaxRetries {
		e.stats.RetriesExceeded++
		c.destroy(ErrConnClosed, false)
		return
	}
	// Collapse to slow start.
	fl := c.snd.nxt - c.snd.una
	half := fl / 2
	if half < 2*uint32(c.mss) {
		half = 2 * uint32(c.mss)
	}
	c.snd.ssthresh = half
	c.snd.cwnd = uint32(c.mss)
	c.snd.inFastRecovery = false
	c.snd.dupAcks = 0
	c.rto *= 2
	if c.rto > e.cfg.MaxRTO {
		c.rto = e.cfg.MaxRTO
	}
	c.retransmit()
	e.env.ArmTimer(c, TimerRexmit, c.rto)
}

// onPersist sends a zero-window probe while the peer advertises zero.
func (e *Engine) onPersist(c *Conn) {
	if c.snd.wnd > 0 {
		c.trySend()
		return
	}
	inFlight := c.snd.nxt - c.snd.una
	if uint32(len(c.sndBuf())) <= inFlight {
		return // nothing unsent to probe with
	}
	e.stats.PersistProbes++
	// Probe with one byte beyond the window (classic BSD behaviour). The
	// receiver will drop the byte but ACK, and the retransmission timer
	// recovers the byte once the window reopens.
	c.emitData(c.snd.nxt, 1, false)
	c.snd.nxt++
	e.env.ArmTimer(c, TimerRexmit, c.rto)
	e.env.ArmTimer(c, TimerPersist, e.cfg.PersistInterval)
}
