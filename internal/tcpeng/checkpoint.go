package tcpeng

import (
	"neat/internal/proto"
	"neat/internal/sim"
)

// Checkpoint-based stateful recovery.
//
// The paper's NEaT uses stateless recovery: a crashed TCP component loses
// its connections (§3.6). §2.1 and §6.6 discuss the alternative the
// literature offers — checkpointing [CRIU, Giuffrida et al.] — noting it
// "typically incurs nontrivial run-time and recovery-time overhead ...
// trading off performance for reliability". This file implements that
// alternative so the trade-off can actually be measured (see the
// checkpoint ablation benchmark).
//
// Semantics: Snapshot captures every established (or half-closed)
// connection — sequence state, negotiated options and both buffers — plus
// the listener table. Restore rebuilds the PCBs in a fresh engine and
// marks all previously-sent-but-unacknowledged data as in flight again, so
// standard retransmission resynchronizes with the peer. Anything that
// happened after the snapshot is lost: data the replica ACKed to the peer
// after the snapshot cannot be recovered (the peer has discarded it), and
// such connections stall and die once MaxRetries is exceeded. This
// output-commit problem is exactly why checkpointing TCP is hard; the
// interval controls the exposure window.

// ConnSnapshot is one connection's checkpointed state.
type ConnSnapshot struct {
	LocalAddr  proto.Addr
	LocalPort  uint16
	RemoteAddr proto.Addr
	RemotePort uint16

	State State // StateEstablished or StateCloseWait
	MSS   int

	SndUna      uint32
	SndWnd      uint32
	SndWndShift uint8
	RcvNxt      uint32
	RcvWndShift uint8

	SndBuf []byte // unacknowledged + unsent bytes (seq of [0] = SndUna)
	RcvBuf []byte // received, not yet consumed by the socket layer

	// ConnID preserves the socket-layer handle across the restore.
	ConnID uint64
	// Ctx carries the socket bookkeeping (opaque to the engine).
	Ctx interface{}
}

// ListenerSnapshot is one listening socket's checkpointed state.
type ListenerSnapshot struct {
	Addr    proto.Addr
	Port    uint16
	Backlog int
	Ctx     interface{}
}

// Snapshot is a consistent engine checkpoint.
type Snapshot struct {
	Conns     []ConnSnapshot
	Listeners []ListenerSnapshot
	// Owner is the process that produced the snapshot (set by the stack
	// layer; used to tell applications a connection moved).
	Owner *sim.Proc
}

// Snapshot captures the engine's recoverable state. Connections in
// transient states (handshakes, closing exchanges, TIME_WAIT) are skipped:
// they either re-establish on retransmission or are already past
// app-visible life.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{}
	for _, c := range e.conns {
		if c.state != StateEstablished && c.state != StateCloseWait {
			continue
		}
		s.Conns = append(s.Conns, ConnSnapshot{
			LocalAddr: c.key.localAddr, LocalPort: c.key.localPort,
			RemoteAddr: c.key.remoteAddr, RemotePort: c.key.remotePort,
			State: c.state, MSS: c.mss,
			SndUna: c.snd.una, SndWnd: c.snd.wnd, SndWndShift: c.snd.wndShift,
			RcvNxt: c.rcv.nxt, RcvWndShift: c.rcv.wndShift,
			SndBuf: append([]byte(nil), c.sndBuf()...),
			RcvBuf: append([]byte(nil), c.rcvBuf()...),
			ConnID: c.ID,
			Ctx:    c.Ctx,
		})
	}
	for _, l := range e.listeners {
		s.Listeners = append(s.Listeners, ListenerSnapshot{
			Addr: l.key.addr, Port: l.key.port, Backlog: l.backlog, Ctx: l.Ctx,
		})
	}
	return s
}

// StateBytes estimates the checkpoint's size (buffer bytes + fixed PCB
// cost); the caller charges checkpointing cycles proportional to it.
func (s *Snapshot) StateBytes() int {
	n := 0
	for _, c := range s.Conns {
		n += len(c.SndBuf) + len(c.RcvBuf) + 256
	}
	return n
}

// Restore rebuilds the snapshot's listeners and connections in e (a fresh
// engine). Restored connections keep their ConnID and Ctx; all
// unacknowledged data is queued for retransmission. Returns the number of
// connections restored.
func (e *Engine) Restore(s *Snapshot) int {
	for _, ls := range s.Listeners {
		if l, err := e.Listen(ls.Addr, ls.Port, ls.Backlog); err == nil {
			l.Ctx = ls.Ctx
		}
	}
	restored := 0
	for _, cs := range s.Conns {
		k := connKey{localAddr: cs.LocalAddr, localPort: cs.LocalPort,
			remoteAddr: cs.RemoteAddr, remotePort: cs.RemotePort}
		if _, dup := e.conns[k]; dup {
			continue
		}
		c := e.newConn(k)
		// Preserve the socket-layer identity.
		c.ID = cs.ConnID
		c.Ctx = cs.Ctx
		if cs.ConnID >= e.nextID {
			e.nextID = cs.ConnID + 1
		}
		c.state = cs.State
		c.mss = cs.MSS
		c.snd.una = cs.SndUna
		// Everything buffered counts as "sent": the peer may have seen any
		// prefix of it. Standard retransmission fills whatever is missing.
		c.snd.nxt = cs.SndUna + uint32(len(cs.SndBuf))
		c.snd.wnd = cs.SndWnd
		c.snd.wndShift = cs.SndWndShift
		c.snd.cwnd = uint32(e.cfg.InitialCwndMSS * c.mss)
		c.rcv.nxt = cs.RcvNxt
		c.rcv.wndShift = cs.RcvWndShift
		if len(cs.SndBuf) > 0 || len(cs.RcvBuf) > 0 {
			b := c.ensureBufs()
			b.snd = append(b.snd, cs.SndBuf...)
			b.rcv = append(b.rcv, cs.RcvBuf...)
		}
		c.rto = e.cfg.InitialRTO
		restored++
		// Kick resynchronization: if data is outstanding, the RTO will
		// retransmit from SndUna; otherwise probe the peer with a bare ACK
		// so a diverged peer answers (and a healthy one ignores it).
		if c.snd.nxt != c.snd.una {
			e.env.ArmTimer(c, TimerRexmit, c.rto)
		}
		c.sendAck()
	}
	return restored
}
